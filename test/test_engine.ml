(* End-to-end tests: the full engine on the TPC-H workload, all
   execution modes differentially against each other and against the
   Volcano / vectorized baselines, plus adaptive-specific behaviour. *)

module Driver = Aeq_exec.Driver

(* One small shared engine for the whole binary (loading data is the
   expensive part). *)
let engine =
  lazy
    (let e = Aeq.Engine.create ~n_threads:4 ~cost_model:Aeq_backend.Cost_model.off () in
     Aeq.Engine.load_tpch e ~scale_factor:0.002;
     e)

let norm_rows (r : Driver.result) =
  List.sort compare (List.map Array.to_list r.Driver.rows)

let test_modes_agree () =
  let e = Lazy.force engine in
  List.iter
    (fun (name, sql) ->
      let reference = norm_rows (Aeq.Engine.query e ~mode:Driver.Bytecode sql) in
      List.iter
        (fun mode ->
          let got = norm_rows (Aeq.Engine.query e ~mode sql) in
          if got <> reference then Alcotest.failf "%s: %s differs from bytecode" name (Driver.mode_name mode))
        [ Driver.Unopt; Driver.Opt; Driver.Adaptive ])
    (Aeq_workload.Queries.tpch @ Aeq_workload.Queries.metadata)

let test_baselines_agree () =
  let e = Lazy.force engine in
  let catalog = Aeq.Engine.catalog e in
  List.iter
    (fun (name, sql) ->
      let plan = Aeq.Engine.plan e sql in
      let reference = norm_rows (Aeq.Engine.query e ~mode:Driver.Adaptive sql) in
      let volcano =
        List.sort compare (List.map Array.to_list (Aeq_baseline.Volcano.execute catalog plan))
      in
      let vector =
        List.sort compare
          (List.map Array.to_list (Aeq_baseline.Vectorized.execute catalog plan))
      in
      if volcano <> reference then Alcotest.failf "%s: volcano mismatch" name;
      if vector <> reference then Alcotest.failf "%s: vectorized mismatch" name)
    (Aeq_workload.Queries.tpch @ Aeq_workload.Queries.metadata)

let test_q1_shape () =
  let e = Lazy.force engine in
  let r = Aeq.Engine.query e ~mode:Driver.Adaptive (Aeq_workload.Queries.tpch_q 1) in
  Alcotest.(check int) "three groups" 3 (List.length r.Driver.rows);
  Alcotest.(check int) "ten columns" 10 (List.length r.Driver.names);
  (* groups sorted by returnflag/linestatus; counts positive *)
  List.iter
    (fun row ->
      Alcotest.(check bool) "count positive" true (Int64.compare row.(9) 0L > 0))
    r.Driver.rows

let test_count_star () =
  let e = Lazy.force engine in
  let r = Aeq.Engine.query e "select count(*) as n from lineitem" in
  match r.Driver.rows with
  | [ [| n |] ] ->
    let tbl = Aeq_storage.Catalog.table (Aeq.Engine.catalog e) "lineitem" in
    Alcotest.(check int64) "count(*)" (Int64.of_int tbl.Aeq_storage.Table.n_rows) n
  | _ -> Alcotest.fail "expected one row"

let test_order_and_limit () =
  let e = Lazy.force engine in
  let r =
    Aeq.Engine.query e "select o_orderkey, o_totalprice from orders order by o_totalprice desc limit 5"
  in
  Alcotest.(check int) "limit" 5 (List.length r.Driver.rows);
  let prices = List.map (fun row -> row.(1)) r.Driver.rows in
  let sorted_desc = List.sort (fun a b -> Int64.compare b a) prices in
  Alcotest.(check bool) "descending" true (prices = sorted_desc)

let test_overflow_propagates () =
  let e = Lazy.force engine in
  (* o_totalprice * o_totalprice * huge constant overflows int64 *)
  match
    Aeq.Engine.query e
      "select sum(o_totalprice * o_totalprice * 99999999999.0) from orders"
  with
  | _ -> Alcotest.fail "expected overflow trap"
  | exception Aeq_exec.Query_error.Error (Aeq_exec.Query_error.Trap m) ->
    Alcotest.(check string) "structured trap" "integer overflow" m

let test_adaptive_compiles_large_pipeline () =
  (* with the paper cost model, a long scan should trigger compilation *)
  let e = Aeq.Engine.create ~n_threads:4 ~cost_model:Aeq_backend.Cost_model.off () in
  Aeq.Engine.load_tpch e ~scale_factor:0.02;
  let r =
    Aeq.Engine.query e ~mode:Driver.Adaptive ~collect_trace:true
      "select sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) from lineitem"
  in
  (* driver pipeline is the second of three; it should have upgraded *)
  Alcotest.(check bool) "some pipeline compiled" true
    (List.exists (fun m -> m <> "bytecode") r.Driver.stats.Driver.final_modes);
  (match r.Driver.trace with
  | Some tr ->
    let evs = Aeq_exec.Trace.events tr in
    Alcotest.(check bool) "compile event recorded" true
      (List.exists
         (fun ev -> match ev.Aeq_exec.Trace.kind with
           | Aeq_exec.Trace.Ev_compile _ -> true
           | _ -> false)
         evs)
  | None -> Alcotest.fail "trace missing");
  Aeq.Engine.close e

let test_adaptive_stays_interpreted_when_tiny () =
  let e = Lazy.force engine in
  let r =
    Aeq.Engine.query e ~mode:Driver.Adaptive
      "select n_name, r_name from nation join region on n_regionkey = r_regionkey order by n_name"
  in
  Alcotest.(check int) "25 rows" 25 (List.length r.Driver.rows);
  List.iter
    (fun m -> Alcotest.(check string) "stays bytecode" "bytecode" m)
    r.Driver.stats.Driver.final_modes

let test_query_cache_hit_skips_compilation () =
  (* acceptance: a cached re-execution's codegen + translation +
     compilation is < 10% of the cold run's, with identical rows *)
  let e = Aeq.Engine.create ~n_threads:2 ~cost_model:Aeq_backend.Cost_model.default () in
  Aeq.Engine.load_tpch e ~scale_factor:0.01;
  let sql = "select sum(l_extendedprice * (1 - l_discount)) from lineitem" in
  let cost (r : Driver.result) =
    r.Driver.stats.Driver.codegen_seconds +. r.Driver.stats.Driver.bc_seconds
    +. r.Driver.stats.Driver.compile_seconds
  in
  let r1 = Aeq.Engine.query e ~mode:Driver.Opt sql in
  let r2 = Aeq.Engine.query e ~mode:Driver.Opt sql in
  Alcotest.(check bool) "cold run pays compilation" true (cost r1 > 0.0);
  Alcotest.(check bool) "warm run under 10% of cold" true (cost r2 < 0.1 *. cost r1);
  Alcotest.(check (float 0.0)) "no codegen on hit" 0.0 r2.Driver.stats.Driver.codegen_seconds;
  Alcotest.(check (float 0.0)) "no translation on hit" 0.0 r2.Driver.stats.Driver.bc_seconds;
  Alcotest.(check (float 0.0)) "no recompilation on hit" 0.0
    r2.Driver.stats.Driver.compile_seconds;
  Alcotest.(check bool) "same rows" true (r1.Driver.rows = r2.Driver.rows);
  let st = Aeq.Engine.cache_stats e in
  Alcotest.(check int) "one miss" 1 st.Aeq.Engine.misses;
  Alcotest.(check int) "one hit" 1 st.Aeq.Engine.hits;
  Aeq.Engine.close e

let test_cache_lru_and_prepare () =
  let e = Aeq.Engine.create ~n_threads:2 ~cost_model:Aeq_backend.Cost_model.off () in
  Aeq.Engine.load_tpch e ~scale_factor:0.002;
  Aeq.Engine.set_plan_cache_capacity e 2;
  let nation = "select count(*) from nation" in
  Aeq.Engine.prepare e nation;
  let st = Aeq.Engine.cache_stats e in
  Alcotest.(check int) "prepare misses once" 1 st.Aeq.Engine.misses;
  Alcotest.(check int) "prepared but unexecuted" 0 (Aeq.Engine.cached_executions e nation);
  Aeq.Engine.prepare e nation;
  let st = Aeq.Engine.cache_stats e in
  Alcotest.(check int) "second prepare hits" 1 st.Aeq.Engine.hits;
  ignore (Aeq.Engine.query e "select count(*) from region");
  ignore (Aeq.Engine.query e "select count(*) from part");
  (* capacity 2: the least-recently-used statement (nation) is gone *)
  let st = Aeq.Engine.cache_stats e in
  Alcotest.(check int) "bounded to capacity" 2 st.Aeq.Engine.entries;
  Alcotest.(check int) "one eviction" 1 st.Aeq.Engine.evictions;
  Alcotest.(check int) "evicted statement forgotten" 0 (Aeq.Engine.cached_executions e nation);
  ignore (Aeq.Engine.query e nation);
  let st = Aeq.Engine.cache_stats e in
  Alcotest.(check int) "evicted statement re-prepared" 4 st.Aeq.Engine.misses;
  Aeq.Engine.close e

let test_explain () =
  let e = Lazy.force engine in
  let text = Aeq.Engine.explain e (Aeq_workload.Queries.tpch_q 5) in
  Alcotest.(check bool) "mentions pipelines" true
    (String.length text > 100 && String.split_on_char '\n' text |> List.length > 5)

let test_plan_errors () =
  let e = Lazy.force engine in
  let fails sql =
    match Aeq.Engine.plan e sql with
    | _ -> Alcotest.failf "expected plan error for %s" sql
    | exception Aeq_plan.Planner.Plan_error _ -> ()
  in
  fails "select nope from lineitem";
  fails "select l_quantity from lineitem, orders";
  (* cross product *)
  fails "select a, b, c from lineitem group by l_orderkey, l_partkey, l_suppkey"

let test_large_query_runs () =
  let e = Lazy.force engine in
  let sql = Aeq_workload.Queries.large_query 30 in
  let r = Aeq.Engine.query e ~mode:Driver.Bytecode sql in
  Alcotest.(check int) "one row" 1 (List.length r.Driver.rows);
  Alcotest.(check int) "30 aggregates" 30 (List.length r.Driver.names)

let () =
  Alcotest.run "engine"
    [
      ( "differential",
        [
          Alcotest.test_case "all modes agree (28 queries)" `Slow test_modes_agree;
          Alcotest.test_case "baselines agree (28 queries)" `Slow test_baselines_agree;
        ] );
      ( "results",
        [
          Alcotest.test_case "q1 shape" `Quick test_q1_shape;
          Alcotest.test_case "count(*)" `Quick test_count_star;
          Alcotest.test_case "order/limit" `Quick test_order_and_limit;
          Alcotest.test_case "overflow traps" `Quick test_overflow_propagates;
          Alcotest.test_case "large generated query" `Quick test_large_query_runs;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "compiles hot pipeline" `Quick test_adaptive_compiles_large_pipeline;
          Alcotest.test_case "tiny stays interpreted" `Quick test_adaptive_stays_interpreted_when_tiny;
        ] );
      ( "prepared cache",
        [
          Alcotest.test_case "cache hit skips compilation" `Quick
            test_query_cache_hit_skips_compilation;
          Alcotest.test_case "lru bound and prepare" `Quick test_cache_lru_and_prepare;
        ] );
      ( "planner",
        [
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "plan errors" `Quick test_plan_errors;
        ] );
    ]

(* Tests for the static verification suite: the dataflow framework and
   precise liveness, the deep SSA verifier, the bytecode verifier
   (structural + abstract interpretation + allocation cross-check),
   pass-manager pinpointing under AEQ_VERIFY, and translation
   validation across the three execution engines. *)

module A = Aeq_mem.Arena
module BC = Aeq_vm.Bytecode
module BV = Aeq_vm.Bc_verify

let no_symbols : Aeq_vm.Rt_fn.resolver = fun _ -> None

let translate ?strategy f =
  Aeq_vm.Translate.translate ?strategy ~symbols:no_symbols f

let vid = function Instr.Vreg id -> id | _ -> assert false

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains what sub s =
  if not (contains s sub) then
    Alcotest.failf "%s: expected %S within:\n%s" what sub s

(* --- builders -------------------------------------------------------- *)

(* Counted loop summing 0..n-1; returns (f, i_phi, acc_phi, acc') ids. *)
let build_sum_loop () =
  let b = Builder.create ~name:"sum" ~params:[ Types.I64 ] in
  let head = Builder.new_block b in
  let body = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.br b head;
  Builder.switch_to b head;
  let i = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let acc = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let c = Builder.icmp b Instr.Slt Types.I64 i (Builder.param b 0) in
  Builder.condbr b c ~if_true:body ~if_false:exit;
  Builder.switch_to b body;
  let acc' = Builder.binop b Instr.Add Types.I64 acc i in
  let i' = Builder.binop b Instr.Add Types.I64 i (Instr.Imm 1L) in
  Builder.br b head;
  Builder.add_phi_incoming b ~block:head ~dst:i ~pred:body i';
  Builder.add_phi_incoming b ~block:head ~dst:acc ~pred:body acc';
  Builder.switch_to b exit;
  Builder.ret b acc;
  let f = Builder.finish b in
  Layout.normalize f;
  (f, vid i, vid acc, vid acc')

(* Two chained diamonds: the second one's φ inputs derive from the
   first one's φ — a small φ-web. *)
let build_phi_web () =
  let b = Builder.create ~name:"phiweb" ~params:[ Types.I64 ] in
  let t1 = Builder.new_block b in
  let e1 = Builder.new_block b in
  let j1 = Builder.new_block b in
  let t2 = Builder.new_block b in
  let e2 = Builder.new_block b in
  let j2 = Builder.new_block b in
  let p = Builder.param b 0 in
  let c = Builder.icmp b Instr.Slt Types.I64 p (Instr.Imm 10L) in
  Builder.condbr b c ~if_true:t1 ~if_false:e1;
  Builder.switch_to b t1;
  let a1 = Builder.binop b Instr.Add Types.I64 p (Instr.Imm 1L) in
  Builder.br b j1;
  Builder.switch_to b e1;
  let a2 = Builder.binop b Instr.Mul Types.I64 p (Instr.Imm 3L) in
  Builder.br b j1;
  Builder.switch_to b j1;
  let x =
    Builder.phi b Types.I64 [ (t1, a1); (e1, a2) ]
  in
  let c2 = Builder.icmp b Instr.Sgt Types.I64 x (Instr.Imm 100L) in
  Builder.condbr b c2 ~if_true:t2 ~if_false:e2;
  Builder.switch_to b t2;
  let b1 = Builder.binop b Instr.Sub Types.I64 x (Instr.Imm 7L) in
  Builder.br b j2;
  Builder.switch_to b e2;
  let b2 = Builder.binop b Instr.Add Types.I64 x x in
  Builder.br b j2;
  Builder.switch_to b j2;
  let y = Builder.phi b Types.I64 [ (t2, b1); (e2, b2) ] in
  let r = Builder.binop b Instr.Add Types.I64 x y in
  Builder.ret b r;
  let f = Builder.finish b in
  Layout.normalize f;
  f

(* Register pressure: many simultaneously-live values, consumed in
   reverse definition order so none can be released early. *)
let build_pressure () =
  let b = Builder.create ~name:"pressure" ~params:[ Types.I64 ] in
  let p = Builder.param b 0 in
  let vs =
    List.init 12 (fun k ->
        Builder.binop b Instr.Add Types.I64 p (Instr.Imm (Int64.of_int (k + 1))))
  in
  let acc =
    List.fold_left
      (fun acc v -> Builder.binop b Instr.Add Types.I64 v acc)
      (Instr.Imm 0L) (List.rev vs)
  in
  Builder.ret b acc;
  let f = Builder.finish b in
  Layout.normalize f;
  f

(* Fig. 10 shape: a value defined before a loop, used one level deeper
   inside it — its lifetime must cover the whole loop (back edge). *)
let build_loop_backedge () =
  let b = Builder.create ~name:"fig10" ~params:[ Types.I64 ] in
  let v = Builder.binop b Instr.Add Types.I64 (Builder.param b 0) (Instr.Imm 7L) in
  let head = Builder.new_block b in
  let body = Builder.new_block b in
  let latch = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.br b head;
  Builder.switch_to b head;
  let i = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let acc = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let c = Builder.icmp b Instr.Slt Types.I64 i (Instr.Imm 10L) in
  Builder.condbr b c ~if_true:body ~if_false:exit;
  Builder.switch_to b body;
  let u = Builder.binop b Instr.Add Types.I64 v i in
  Builder.br b latch;
  Builder.switch_to b latch;
  let acc' = Builder.binop b Instr.Add Types.I64 acc u in
  let i' = Builder.binop b Instr.Add Types.I64 i (Instr.Imm 1L) in
  Builder.br b head;
  Builder.add_phi_incoming b ~block:head ~dst:i ~pred:latch i';
  Builder.add_phi_incoming b ~block:head ~dst:acc ~pred:latch acc';
  Builder.switch_to b exit;
  Builder.ret b acc;
  let f = Builder.finish b in
  Layout.normalize f;
  f

let all_strategies =
  [
    ("loop-aware", Aeq_vm.Regalloc.Loop_aware);
    ("window1", Aeq_vm.Regalloc.Window 1);
    ("window4", Aeq_vm.Regalloc.Window 4);
    ("no-reuse", Aeq_vm.Regalloc.No_reuse);
  ]

(* --- dataflow framework / liveness ----------------------------------- *)

let test_bitset () =
  let module B = Dataflow.Bitset in
  let s = B.create 300 in
  List.iter (B.add s) [ 0; 31; 32; 63; 64; 299 ];
  Alcotest.(check (list int)) "elements" [ 0; 31; 32; 63; 64; 299 ] (B.elements s);
  Alcotest.(check int) "cardinal" 6 (B.cardinal s);
  Alcotest.(check bool) "mem 64" true (B.mem s 64);
  Alcotest.(check bool) "mem 65" false (B.mem s 65);
  B.remove s 63;
  Alcotest.(check bool) "removed" false (B.mem s 63);
  let t = B.create 300 in
  B.add t 7;
  Alcotest.(check bool) "union grows" true (B.union_into ~into:t s);
  Alcotest.(check bool) "union fixpoint" false (B.union_into ~into:t s);
  Alcotest.(check bool) "subset absorbed" false (B.union_into ~into:t (B.copy s));
  Alcotest.(check bool) "not equal" false (B.equal s t);
  B.add s 7;
  Alcotest.(check bool) "equal after add" true (B.equal s t)

let test_liveness_sum_loop () =
  let f, i, acc, acc' = build_sum_loop () in
  let lv = Analysis.liveness f in
  let head =
    (Array.to_list f.Func.blocks
    |> List.find (fun (b : Block.t) -> Array.length b.Block.phis > 0))
      .Block.id
  in
  let body =
    (Array.to_list f.Func.blocks
    |> List.find (fun (b : Block.t) ->
           b.Block.id <> 0 && List.mem head (Block.successors b)))
      .Block.id
  in
  let module B = Dataflow.Bitset in
  (* φ destinations are written by the predecessors: live into the head *)
  Alcotest.(check bool) "i live into head" true (B.mem lv.Analysis.live_in.(head) i);
  Alcotest.(check bool) "acc live into head" true (B.mem lv.Analysis.live_in.(head) acc);
  (* ... and therefore out of the entry block *)
  Alcotest.(check bool) "i live out of entry" true (B.mem lv.Analysis.live_out.(0) i);
  (* the bound parameter is live from function entry *)
  Alcotest.(check bool) "param live at entry" true (B.mem lv.Analysis.live_in.(0) 0);
  (* the body-local sum is consumed by the φ copy at the body's end:
     live nowhere else *)
  Alcotest.(check bool) "acc' not live into body" false
    (B.mem lv.Analysis.live_in.(body) acc');
  Alcotest.(check bool) "acc' not live into head" false
    (B.mem lv.Analysis.live_in.(head) acc')

(* --- deep SSA verifier ----------------------------------------------- *)

let test_verify_collects_all () =
  let f, _, _, _ = build_sum_loop () in
  f.Func.blocks.(1).Block.term <- Instr.Br 99;
  f.Func.blocks.(2).Block.term <- Instr.Br 98;
  let errs = Verify.errors (Verify.diagnostics f) in
  Alcotest.(check bool) "at least two errors" true (List.length errs >= 2);
  let rendered = Verify.report errs in
  check_contains "report" "missing block 99" rendered;
  check_contains "report" "missing block 98" rendered;
  (match Verify.check f with
  | Ok () -> Alcotest.fail "check accepted a broken function"
  | Error m -> check_contains "check message" "missing block" m);
  Alcotest.(check bool) "run raises" true
    (try
       Verify.run f;
       false
     with Verify.Ill_formed _ -> true)

let test_verify_dominance () =
  (* join uses a value defined only on the then-path: no φ, no dominance *)
  let b = Builder.create ~name:"nodom" ~params:[ Types.I64 ] in
  let then_ = Builder.new_block b in
  let else_ = Builder.new_block b in
  let join = Builder.new_block b in
  let p = Builder.param b 0 in
  let c = Builder.icmp b Instr.Slt Types.I64 p (Instr.Imm 5L) in
  Builder.condbr b c ~if_true:then_ ~if_false:else_;
  Builder.switch_to b then_;
  let v = Builder.binop b Instr.Add Types.I64 p (Instr.Imm 1L) in
  Builder.br b join;
  Builder.switch_to b else_;
  Builder.br b join;
  Builder.switch_to b join;
  let u = Builder.binop b Instr.Add Types.I64 v (Instr.Imm 1L) in
  Builder.ret b u;
  let f = Builder.finish b in
  Layout.normalize f;
  let errs = Verify.errors (Verify.diagnostics f) in
  Alcotest.(check bool) "rejected" true (errs <> []);
  check_contains "dominance" "not dominated" (Verify.report errs)

let test_verify_phi_incoming_mismatch () =
  let b = Builder.create ~name:"phimiss" ~params:[ Types.I64 ] in
  let then_ = Builder.new_block b in
  let else_ = Builder.new_block b in
  let join = Builder.new_block b in
  let p = Builder.param b 0 in
  let c = Builder.icmp b Instr.Slt Types.I64 p (Instr.Imm 5L) in
  Builder.condbr b c ~if_true:then_ ~if_false:else_;
  Builder.switch_to b then_;
  let v = Builder.binop b Instr.Add Types.I64 p (Instr.Imm 1L) in
  Builder.br b join;
  Builder.switch_to b else_;
  Builder.br b join;
  Builder.switch_to b join;
  (* only one of the two predecessors supplies a value *)
  let x = Builder.phi b Types.I64 [ (then_, v) ] in
  Builder.ret b x;
  let f = Builder.finish b in
  Layout.normalize f;
  let errs = Verify.errors (Verify.diagnostics f) in
  Alcotest.(check bool) "rejected" true (errs <> []);
  check_contains "phi mismatch" "incoming" (Verify.report errs)

let test_verify_sibling_phi_hazard () =
  (* Self-loop header d = φ(entry: 0, header: d+1), exit φ x = d: the
     exit edge's copy reads d after the back edge's copy set has
     already overwritten it — the translator would miscompile this, so
     the verifier must reject it. *)
  let b = Builder.create ~name:"lcssa" ~params:[] in
  let head = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.br b head;
  Builder.switch_to b head;
  let d = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let d' = Builder.binop b Instr.Add Types.I64 d (Instr.Imm 1L) in
  let c = Builder.icmp b Instr.Slt Types.I64 d' (Instr.Imm 10L) in
  Builder.condbr b c ~if_true:head ~if_false:exit;
  Builder.add_phi_incoming b ~block:head ~dst:d ~pred:head d';
  Builder.switch_to b exit;
  let x = Builder.phi b Types.I64 [ (head, d) ] in
  Builder.ret b x;
  let f = Builder.finish b in
  Layout.normalize f;
  let errs = Verify.errors (Verify.diagnostics f) in
  Alcotest.(check bool) "rejected" true (errs <> []);
  check_contains "hazard" "sibling" (Verify.report errs)

let test_verify_accepts_corpus () =
  for seed = 0 to 60 do
    let f = Gen_ir.generate ~complexity:15 seed in
    match Verify.errors (Verify.diagnostics f) with
    | [] -> ()
    | errs -> Alcotest.failf "seed %d rejected:\n%s" seed (Verify.report errs)
  done

(* --- bytecode verifier: acceptance ----------------------------------- *)

let test_bc_accepts_generated () =
  for seed = 0 to 60 do
    let f = Gen_ir.generate ~complexity:15 seed in
    List.iter
      (fun (sname, strategy) ->
        let prog = translate ~strategy f in
        match BV.check_translation ~strategy f prog with
        | [] -> ()
        | ds ->
          Alcotest.failf "seed %d (%s) rejected:\n%s" seed sname
            (BV.report prog.BC.name ds))
      all_strategies
  done

let test_bc_accepts_edge_cases () =
  List.iter
    (fun f ->
      List.iter
        (fun (sname, strategy) ->
          let prog = translate ~strategy f in
          (match BV.check_translation ~strategy f prog with
          | [] -> ()
          | ds ->
            Alcotest.failf "%s (%s) rejected:\n%s" f.Func.name sname
              (BV.report prog.BC.name ds));
          (* the strategies must also agree on the answer *)
          let mem = A.create () in
          let r = Aeq_vm.Interp.run prog mem ~args:[| 9L |] () in
          let mem' = A.create () in
          let base = translate f in
          let r' = Aeq_vm.Interp.run base mem' ~args:[| 9L |] () in
          if r <> r' then
            Alcotest.failf "%s: %s disagrees (%Ld vs %Ld)" f.Func.name sname r r')
        all_strategies)
    [
      (let f, _, _, _ = build_sum_loop () in
       f);
      build_phi_web ();
      build_pressure ();
      build_loop_backedge ();
    ]

(* --- bytecode verifier: rejections ----------------------------------- *)

let mutate_code prog idx f =
  let code = Array.copy prog.BC.code in
  code.(idx) <- f code.(idx);
  { prog with BC.code }

let break_first_jump prog =
  let found = ref None in
  Array.iteri
    (fun i (ins : BC.insn) ->
      if !found = None then
        match ins.BC.op with
        | Aeq_vm.Opcode.Jmp -> found := Some (i, fun ins -> { ins with BC.a = 9999 })
        | Aeq_vm.Opcode.CondJmp ->
          found := Some (i, fun ins -> { ins with BC.b = 9999 })
        | Aeq_vm.Opcode.JmpEq | Aeq_vm.Opcode.JmpNe | Aeq_vm.Opcode.JmpSlt
        | Aeq_vm.Opcode.JmpSle | Aeq_vm.Opcode.JmpSgt | Aeq_vm.Opcode.JmpSge ->
          found := Some (i, fun ins -> { ins with BC.c = 9999 })
        | _ -> ())
    prog.BC.code;
  match !found with
  | Some (i, f) -> mutate_code prog i f
  | None -> Alcotest.fail "no jump instruction to mutate"

let test_reject_out_of_bounds_jump () =
  let f, _, _, _ = build_sum_loop () in
  let bad = break_first_jump (translate f) in
  let ds = BV.check_program bad in
  Alcotest.(check bool) "rejected" true (ds <> []);
  check_contains "message" "jump target" (BV.report bad.BC.name ds);
  Alcotest.(check bool) "verify raises" true
    (try
       BV.verify bad;
       false
     with BV.Rejected _ -> true)

let test_reject_read_before_write () =
  (* Slots 0/8 hold the constant pool; 16/24 are dynamic and never
     written before the add reads them. *)
  let insn op a b c = { BC.op; a; b; c; d = 0; e = 0; lit = 0L } in
  let bad =
    {
      BC.name = "rbw";
      code = [| insn Aeq_vm.Opcode.Add_i64 16 16 24; insn Aeq_vm.Opcode.RetVal 16 0 0 |];
      n_reg_bytes = 32;
      const_pool = [| 0L; 1L |];
      param_offsets = [||];
      rt_table = [||];
      messages = [||];
      src_instr_count = 2;
    }
  in
  let ds = BV.check_program bad in
  Alcotest.(check bool) "rejected" true (ds <> []);
  check_contains "message" "before any write" (BV.report bad.BC.name ds)

let test_reject_clobbered_live_register () =
  let f, i, acc, _ = build_sum_loop () in
  (* A distinct slot per value is trivially clobber-free... *)
  let distinct = Array.init f.Func.n_values (fun v -> 8 * v) in
  Alcotest.(check bool) "distinct slots accepted" true
    (BV.check_allocation f ~slot_offset:distinct = []);
  (* ... but merging the two loop φs (live together through the whole
     loop) must be caught. *)
  distinct.(acc) <- distinct.(i);
  let ds = BV.check_allocation f ~slot_offset:distinct in
  Alcotest.(check bool) "rejected" true (ds <> []);
  check_contains "message" "clobbers" (BV.report "sum" ds)

let test_reject_bad_register_offsets () =
  let f, _, _, _ = build_sum_loop () in
  let prog = translate f in
  (* a write beyond the register file *)
  let oob =
    mutate_code prog 0 (fun ins -> { ins with BC.a = prog.BC.n_reg_bytes + 8 })
  in
  check_contains "oob write" "out of bounds" (BV.report "sum" (BV.check_program oob));
  (* a write onto a constant-pool slot *)
  let const_w = mutate_code prog 0 (fun ins -> { ins with BC.a = 0 }) in
  let insn0 = prog.BC.code.(0) in
  (* only meaningful if insn 0 writes a register; the translator's
     first insn of this function is a φ-seeding Mov *)
  Alcotest.(check bool) "first insn is a mov" true (insn0.BC.op = Aeq_vm.Opcode.Mov);
  check_contains "const write" "constant-pool"
    (BV.report "sum" (BV.check_program const_w))

(* --- pass-manager pinpointing ---------------------------------------- *)

let with_verify_level n f =
  let old = Aeq_util.Verify_mode.get () in
  Fun.protect
    ~finally:(fun () -> Aeq_util.Verify_mode.set old)
    (fun () ->
      Aeq_util.Verify_mode.set n;
      f ())

let test_broken_pass_pinpointed () =
  with_verify_level 1 @@ fun () ->
  Alcotest.(check int) "level visible via pass manager" 1
    (Aeq_passes.Pass_manager.verify_level ());
  let f = Gen_ir.generate ~complexity:10 3 in
  let evil (f : Func.t) =
    f.Func.blocks.(0).Block.term <- Instr.Br 99;
    true
  in
  match Aeq_passes.Pass_manager.run_pass ~name:"evil_cfg" evil f with
  | _ -> Alcotest.fail "broken pass not detected"
  | exception Invalid_argument msg ->
    check_contains "names the pass" "pass evil_cfg broke" msg;
    check_contains "carries the diagnostic" "missing block" msg

let test_optimize_verifies_under_level () =
  (* the stock pipeline on the corpus stays clean under verification *)
  with_verify_level 1 @@ fun () ->
  for seed = 0 to 30 do
    let f = Gen_ir.generate ~complexity:15 seed in
    Aeq_passes.Pass_manager.optimize Aeq_passes.Pass_manager.O2 f
  done

(* --- disassembler / opcode sweep ------------------------------------- *)

let test_opcode_all () =
  let all = Aeq_vm.Opcode.all in
  Alcotest.(check int) "complete" Aeq_vm.Opcode.count (List.length all);
  Alcotest.(check bool) "covers the full ISA" true (Aeq_vm.Opcode.count > 100);
  let names = List.map Aeq_vm.Opcode.to_string all in
  Alcotest.(check int) "mnemonics distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n -> Alcotest.(check bool) "mnemonic non-empty" true (String.length n > 0))
    names;
  Alcotest.(check bool) "first is mov" true
    (List.hd all = Aeq_vm.Opcode.Mov);
  Alcotest.(check bool) "last is call_r4" true
    (List.nth all (Aeq_vm.Opcode.count - 1) = Aeq_vm.Opcode.CallR4)

(* --- workload corpus: codegen → verify → disassemble ------------------ *)

let test_workload_corpus () =
  let catalog = Aeq_storage.Catalog.create () in
  Aeq_workload.Tpch.load ~scale_factor:0.001 catalog;
  let ctx =
    Aeq_rt.Context.create
      ~arena:(Aeq_storage.Catalog.arena catalog)
      ~dict:(Aeq_storage.Catalog.dict catalog)
      ~n_threads:1 ()
  in
  let symbols = Aeq_rt.Symbols.resolver ctx in
  let n_workers = ref 0 in
  let opcodes = Hashtbl.create 64 in
  List.iter
    (fun (qname, sql) ->
      let plan = Aeq_plan.Planner.plan_sql catalog sql in
      let layout = Aeq_plan.Physical.layout plan in
      List.iter
        (fun (f : Func.t) ->
          incr n_workers;
          (match Verify.errors (Verify.diagnostics f) with
          | [] -> ()
          | errs ->
            Alcotest.failf "%s worker %s: SSA verifier rejected:\n%s" qname
              f.Func.name (Verify.report errs));
          let prog = Aeq_vm.Translate.translate ~symbols f in
          (match BV.check_translation f prog with
          | [] -> ()
          | ds ->
            Alcotest.failf "%s worker %s: bytecode verifier rejected:\n%s" qname
              f.Func.name (BV.report prog.BC.name ds));
          Array.iter
            (fun (i : BC.insn) -> Hashtbl.replace opcodes i.BC.op ())
            prog.BC.code;
          (* the disassembly must cover every instruction *)
          let text = Aeq_vm.Disasm.program prog in
          let lines =
            String.split_on_char '\n' text
            |> List.filter (fun l -> String.length l > 0)
          in
          if List.length lines < Array.length prog.BC.code then
            Alcotest.failf "%s worker %s: disassembly shorter than the program"
              qname f.Func.name)
        (Aeq_codegen.Codegen.all_workers plan layout))
    Aeq_workload.Queries.tpch;
  Alcotest.(check bool) "several pipelines verified" true (!n_workers >= 20);
  Alcotest.(check bool)
    (Printf.sprintf "broad opcode coverage (%d distinct)" (Hashtbl.length opcodes))
    true
    (Hashtbl.length opcodes > 25)

(* --- translation validation ------------------------------------------ *)

let outcome run =
  match run () with v -> Ok v | exception Trap.Error m -> Error m

let mem_with_scratch () =
  let mem = A.create () in
  let alloc = A.allocator mem in
  let scratch = A.alloc alloc (8 * Gen_ir.n_mem_words) in
  (mem, scratch)

let mem_words mem scratch =
  Array.init Gen_ir.n_mem_words (fun i -> A.get_i64 mem (scratch + (8 * i)))

(* The same generated function under all three engines: the direct IR
   evaluator, the bytecode interpreter, and the closure backend. *)
let differential3 seed =
  let f = Gen_ir.generate ~complexity:15 seed in
  let args =
    [| Int64.of_int (seed * 7919); Int64.of_int (seed lxor 12345); Int64.of_int (-seed) |]
  in
  let mem1, scr1 = mem_with_scratch () in
  let ir_out =
    outcome (fun () ->
        Aeq_vm.Ir_interp.run f mem1 ~symbols:no_symbols
          ~args:(Array.append args [| Int64.of_int scr1 |]))
  in
  let prog = translate f in
  let mem2, scr2 = mem_with_scratch () in
  let vm_out =
    outcome (fun () ->
        Aeq_vm.Interp.run prog mem2 ~args:(Array.append args [| Int64.of_int scr2 |]) ())
  in
  let mem3, scr3 = mem_with_scratch () in
  let cc = Aeq_backend.Closure_compile.compile prog mem3 in
  let cc_out =
    outcome (fun () ->
        Aeq_backend.Closure_compile.run cc
          ~args:(Array.append args [| Int64.of_int scr3 |])
          ())
  in
  let same_results = ir_out = vm_out && vm_out = cc_out in
  let same_memory =
    match ir_out with
    | Ok _ -> mem_words mem1 scr1 = mem_words mem2 scr2 && mem_words mem2 scr2 = mem_words mem3 scr3
    | Error _ -> true (* memory after a trap is unspecified *)
  in
  same_results && same_memory

let prop_three_way =
  QCheck.Test.make ~name:"ir = vm = closures on random programs" ~count:120
    QCheck.small_nat differential3

let test_engine_verify_query () =
  with_verify_level 1 @@ fun () ->
  let engine =
    Aeq.Engine.create ~n_threads:2 ~cost_model:Aeq_backend.Cost_model.default ()
  in
  Fun.protect ~finally:(fun () -> Aeq.Engine.close engine) @@ fun () ->
  Aeq.Engine.load_tpch engine ~scale_factor:0.002;
  List.iter
    (fun sql ->
      match Aeq.Engine.verify_query engine sql with
      | Ok () -> ()
      | Error report -> Alcotest.failf "verify_query %S:\n%s" sql report)
    [
      "select count(*) as c from lineitem";
      "select l_returnflag, count(*) as c, sum(l_quantity) as q from lineitem \
       group by l_returnflag";
    ]

let () =
  Alcotest.run "verify"
    [
      ( "dataflow",
        [
          Alcotest.test_case "bitset" `Quick test_bitset;
          Alcotest.test_case "liveness on sum loop" `Quick test_liveness_sum_loop;
        ] );
      ( "ssa",
        [
          Alcotest.test_case "collects all diagnostics" `Quick test_verify_collects_all;
          Alcotest.test_case "dominance violation" `Quick test_verify_dominance;
          Alcotest.test_case "phi incoming mismatch" `Quick
            test_verify_phi_incoming_mismatch;
          Alcotest.test_case "sibling phi copy hazard" `Quick
            test_verify_sibling_phi_hazard;
          Alcotest.test_case "accepts generated corpus" `Quick test_verify_accepts_corpus;
        ] );
      ( "bytecode",
        [
          Alcotest.test_case "accepts generated corpus" `Quick test_bc_accepts_generated;
          Alcotest.test_case "accepts regalloc edge cases" `Quick
            test_bc_accepts_edge_cases;
          Alcotest.test_case "rejects out-of-bounds jump" `Quick
            test_reject_out_of_bounds_jump;
          Alcotest.test_case "rejects read-before-write" `Quick
            test_reject_read_before_write;
          Alcotest.test_case "rejects clobbered live register" `Quick
            test_reject_clobbered_live_register;
          Alcotest.test_case "rejects bad register offsets" `Quick
            test_reject_bad_register_offsets;
        ] );
      ( "passes",
        [
          Alcotest.test_case "broken pass pinpointed" `Quick test_broken_pass_pinpointed;
          Alcotest.test_case "pipeline clean under verification" `Quick
            test_optimize_verifies_under_level;
        ] );
      ( "disasm",
        [ Alcotest.test_case "opcode table complete" `Quick test_opcode_all ] );
      ( "workload",
        [ Alcotest.test_case "tpch corpus verified" `Slow test_workload_corpus ] );
      ( "translation-validation",
        [
          QCheck_alcotest.to_alcotest prop_three_way;
          Alcotest.test_case "engine modes agree" `Slow test_engine_verify_query;
        ] );
    ]

(* N-domain parallel query serving over the per-query execution-context
   architecture: correct results under concurrent distinct queries,
   concurrent executions of one cached plan, cross-query isolation
   under traps and injected faults, and arena-lease hygiene (scratch
   returned on success and error paths alike). *)

module CM = Aeq_backend.Cost_model
module Driver = Aeq_exec.Driver
module QE = Aeq_exec.Query_error
module FP = Aeq_util.Failpoints
module A = Aeq_mem.Arena

let with_engine ?(n_threads = 4) ?(sf = 0.005) f =
  let engine = Aeq.Engine.create ~n_threads ~cost_model:CM.off () in
  Aeq.Engine.load_tpch engine ~scale_factor:sf;
  Fun.protect ~finally:(fun () -> Aeq.Engine.close engine) (fun () -> f engine)

let with_clean_failpoints f =
  FP.clear ();
  Fun.protect ~finally:FP.clear f

(* eight distinct statements with different shapes: wide aggregation,
   selective filter, plain counts, a group-by without order (row order
   nondeterministic -> compare sorted) *)
let statements =
  [|
    Aeq_workload.Queries.tpch_q 1;
    Aeq_workload.Queries.tpch_q 6;
    "select count(*) as n from lineitem";
    "select sum(l_quantity) as s from lineitem";
    "select count(*) as n from orders";
    "select sum(l_extendedprice) as s from lineitem";
    "select count(*) as n from customer";
    "select l_returnflag, sum(l_quantity) as s from lineitem group by l_returnflag";
  |]

let sorted_rows (r : Driver.result) = List.sort Stdlib.compare r.Driver.rows

let modes = [| Driver.Bytecode; Driver.Unopt; Driver.Opt; Driver.Adaptive |]

let div0_sql = "select l_quantity / (l_linenumber - l_linenumber) from lineitem"

(* (i) 8 concurrent distinct queries, every mode, all correct *)
let test_concurrent_distinct_queries () =
  with_engine (fun engine ->
      let reference =
        Array.map (fun sql -> sorted_rows (Aeq.Engine.query engine sql)) statements
      in
      let wrong = Atomic.make 0 and failures = Atomic.make 0 in
      let client d () =
        for i = 0 to 2 do
          let mode = modes.((d + i) mod Array.length modes) in
          match Aeq.Engine.query engine ~mode statements.(d) with
          | r -> if sorted_rows r <> reference.(d) then Atomic.incr wrong
          | exception _ -> Atomic.incr failures
        done
      in
      let domains =
        List.init (Array.length statements) (fun d -> Domain.spawn (client d))
      in
      List.iter Domain.join domains;
      Alcotest.(check int) "no failures" 0 (Atomic.get failures);
      Alcotest.(check int) "all results correct" 0 (Atomic.get wrong))

(* (i') the same cached plan executing concurrently with itself — the
   per-execution binding/context split under direct stress *)
let test_concurrent_same_statement () =
  with_engine (fun engine ->
      let sql = statements.(7) in
      let reference = sorted_rows (Aeq.Engine.query engine sql) in
      let wrong = Atomic.make 0 and failures = Atomic.make 0 in
      let client d () =
        for i = 0 to 3 do
          let mode = modes.((d + i) mod Array.length modes) in
          match Aeq.Engine.query engine ~mode sql with
          | r -> if sorted_rows r <> reference then Atomic.incr wrong
          | exception _ -> Atomic.incr failures
        done
      in
      let domains = List.init 8 (fun d -> Domain.spawn (client d)) in
      List.iter Domain.join domains;
      Alcotest.(check int) "no failures" 0 (Atomic.get failures);
      Alcotest.(check int) "all executions correct" 0 (Atomic.get wrong);
      Alcotest.(check bool) "served from one cache entry" true
        ((Aeq.Engine.cache_stats engine).Aeq.Engine.hits >= 32))

(* (ii) isolation: domains hammering a trapping query run concurrently
   with domains running sound queries; the trap must neither corrupt
   nor stall the sound ones *)
let test_trap_isolation () =
  with_engine (fun engine ->
      let good = statements.(3) in
      let reference = sorted_rows (Aeq.Engine.query engine good) in
      let wrong = Atomic.make 0
      and good_failed = Atomic.make 0
      and trap_missed = Atomic.make 0 in
      let good_client () =
        for _ = 1 to 6 do
          match Aeq.Engine.query engine good with
          | r -> if sorted_rows r <> reference then Atomic.incr wrong
          | exception _ -> Atomic.incr good_failed
        done
      in
      let trap_client () =
        for _ = 1 to 6 do
          match Aeq.Engine.query engine div0_sql with
          | _ -> Atomic.incr trap_missed
          | exception QE.Error (QE.Trap _) -> ()
          | exception _ -> Atomic.incr trap_missed
        done
      in
      let domains =
        List.init 4 (fun d ->
            Domain.spawn (if d mod 2 = 0 then good_client else trap_client))
      in
      List.iter Domain.join domains;
      Alcotest.(check int) "trapping query always trapped" 0 (Atomic.get trap_missed);
      Alcotest.(check int) "sound queries never failed" 0 (Atomic.get good_failed);
      Alcotest.(check int) "sound queries never corrupted" 0 (Atomic.get wrong))

(* (iii) lease hygiene: after a chaos soak across success, trap,
   injected-fault, and budget-breach paths, every scratch lease is
   back in the pool — chunk count and resident bytes at baseline *)
let test_lease_hygiene_after_chaos () =
  with_engine (fun engine ->
      let arena = Aeq_storage.Catalog.arena (Aeq.Engine.catalog engine) in
      (* warm the plan cache first so the soak measures execution
         scratch only, not one-time preparation *)
      Array.iter (fun sql -> ignore (Aeq.Engine.query engine sql)) statements;
      (try ignore (Aeq.Engine.query engine div0_sql) with QE.Error _ -> ());
      let baseline_chunks = A.live_chunks arena in
      let baseline_resident = A.resident_bytes arena in
      with_clean_failpoints (fun () ->
          FP.set_seed 0x1EA5EL;
          FP.activate "driver.morsel" (FP.Prob_fail 0.02);
          FP.activate "arena.alloc" (FP.Prob_fail 0.02);
          let unexpected = Atomic.make 0 in
          let client d () =
            for i = 0 to 9 do
              let k = (d + i) mod Array.length statements in
              let run () =
                match i mod 5 with
                | 0 -> ignore (Aeq.Engine.query engine div0_sql)
                | 1 ->
                  (* tight budget: some executions die on the
                     memory-budget guard mid-pipeline *)
                  ignore
                    (Aeq.Engine.query engine ~memory_budget_bytes:4096 statements.(k))
                | _ -> ignore (Aeq.Engine.query engine statements.(k))
              in
              match run () with
              | () -> ()
              | exception QE.Error _ -> ()
              | exception _ -> Atomic.incr unexpected
            done
          in
          let domains = List.init 8 (fun d -> Domain.spawn (client d)) in
          List.iter Domain.join domains;
          Alcotest.(check int) "only structured errors under chaos" 0
            (Atomic.get unexpected));
      Alcotest.(check int) "all scratch chunk slots returned" baseline_chunks
        (A.live_chunks arena);
      Alcotest.(check int) "resident bytes back to baseline" baseline_resident
        (A.resident_bytes arena))

let () =
  Alcotest.run "parallel"
    [
      ( "parallel-queries",
        [
          Alcotest.test_case "8 concurrent distinct queries" `Quick
            test_concurrent_distinct_queries;
          Alcotest.test_case "concurrent executions of one cached plan" `Quick
            test_concurrent_same_statement;
          Alcotest.test_case "trap isolation" `Quick test_trap_isolation;
          Alcotest.test_case "lease hygiene after chaos" `Quick
            test_lease_hygiene_after_chaos;
        ] );
    ]

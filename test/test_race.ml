(* Unit tests for the dynamic race detector (Aeq_race): lockset
   violations, happens-before races, the edges that suppress them
   (locks, spawn/join, publication), Domain_local ownership transfer,
   dedup/reset — plus regression tests for the real violations the
   detector and lint surfaced in the engine (atomic arena limits,
   waiter-based backpressure, the metrics registry lock leak). *)

module R = Aeq_race
module A = Aeq_mem.Arena
module Obs = Aeq_obs

(* Each test runs with the detector forced on and drains its own
   reports; location names are per-test so the process-global registry
   never aliases across tests. *)
let with_detector f =
  R.Control.with_enabled true (fun () ->
      R.reset ();
      Fun.protect ~finally:R.reset f)

let reports_for prefix rs =
  List.filter
    (fun (r : R.report) ->
      String.length r.R.r_loc >= String.length prefix
      && String.sub r.R.r_loc 0 (String.length prefix) = prefix)
    rs

let test_disabled_is_silent () =
  R.declare "test.silent" (R.Lock "test.silent.lock");
  let loc = R.locate "test.silent" in
  R.Control.with_enabled false (fun () ->
      R.reset ();
      (* no lock held: a violation if the detector were looking *)
      R.write ~site:"t.a" loc;
      R.read ~site:"t.b" loc;
      Alcotest.(check int) "no reports when disabled" 0 (R.report_count ()))

let test_lockset_violation () =
  R.declare "test.ls" (R.Lock "test.ls.lock");
  let l = R.Lock.create "test.ls.lock" in
  let loc = R.locate "test.ls" in
  with_detector (fun () ->
      R.Lock.with_ l (fun () -> R.write ~site:"t.guarded" loc);
      Alcotest.(check int) "guarded write is clean" 0 (R.report_count ());
      R.write ~site:"t.unguarded" loc;
      let rs = R.take_reports () in
      Alcotest.(check int) "one report" 1 (List.length rs);
      let r = List.hd rs in
      Alcotest.(check string) "names the location" "test.ls" r.R.r_loc;
      Alcotest.(check bool) "lockset kind" true (r.R.r_kind = `Lockset);
      Alcotest.(check string) "names the site" "t.unguarded" r.R.r_site_b)

let test_lock_edges_suppress_race () =
  R.declare "test.lockhb" (R.Lock "test.lockhb.lock");
  let l = R.Lock.create "test.lockhb.lock" in
  let loc = R.locate "test.lockhb" in
  with_detector (fun () ->
      let cell = ref 0 in
      let worker () =
        for _ = 1 to 100 do
          R.Lock.with_ l (fun () ->
              R.write ~site:"t.incr" loc;
              incr cell)
        done
      in
      let d1 = R.spawn worker and d2 = R.spawn worker in
      R.join d1;
      R.join d2;
      Alcotest.(check int) "both ran" 200 !cell;
      Alcotest.(check int) "no reports through the lock" 0 (R.report_count ()))

let test_happens_before_race () =
  R.declare "test.hb" R.Single_writer;
  let loc = R.locate "test.hb" in
  with_detector (fun () ->
      let d1 = R.spawn (fun () -> R.write ~site:"t.w1" loc)
      and d2 = R.spawn (fun () -> R.write ~site:"t.w2" loc) in
      R.join d1;
      R.join d2;
      let rs = reports_for "test.hb" (R.take_reports ()) in
      Alcotest.(check bool) "concurrent writes race" true (rs <> []);
      let r = List.hd rs in
      Alcotest.(check bool) "race kind" true (r.R.r_kind = `Race);
      Alcotest.(check bool) "both sites named" true
        (List.mem r.R.r_site_a [ "t.w1"; "t.w2" ]
        && List.mem r.R.r_site_b [ "t.w1"; "t.w2" ]
        && r.R.r_site_a <> r.R.r_site_b))

let test_spawn_join_edges () =
  R.declare "test.fork" R.Single_writer;
  let loc = R.locate "test.fork" in
  with_detector (fun () ->
      R.write ~site:"t.parent-before" loc;
      let d = R.spawn (fun () -> R.write ~site:"t.child" loc) in
      R.join d;
      R.write ~site:"t.parent-after" loc;
      Alcotest.(check int) "fork/join order all reports" 0 (R.report_count ()))

let test_domain_local_transfer () =
  R.declare "test.dl" R.Domain_local;
  let loc = R.locate "test.dl" in
  with_detector (fun () ->
      (* ownership transfer through the spawn edge: fine *)
      R.write ~site:"t.owner" loc;
      let d = R.spawn (fun () -> R.write ~site:"t.heir" loc) in
      R.join d;
      Alcotest.(check int) "hb transfer is clean" 0 (R.report_count ()));
  R.declare "test.dl2" R.Domain_local;
  let loc2 = R.locate "test.dl2" in
  with_detector (fun () ->
      (* two unordered domains: the second write is a stolen ownership *)
      let d1 = R.spawn (fun () -> R.write ~site:"t.a" loc2)
      and d2 = R.spawn (fun () -> R.write ~site:"t.b" loc2) in
      R.join d1;
      R.join d2;
      Alcotest.(check bool) "unordered transfer reported" true
        (reports_for "test.dl2" (R.take_reports ()) <> []))

let test_publication_edge () =
  R.declare "test.pub" R.Single_writer;
  with_detector (fun () ->
      let loc = R.locate "test.pub" in
      let flag = Atomic.make false in
      let producer () =
        R.write ~site:"t.produce" loc;
        R.publish ();
        Atomic.set flag true
      in
      let consumer () =
        while not (Atomic.get flag) do
          Domain.cpu_relax ()
        done;
        R.consume ();
        R.read ~site:"t.consume" loc
      in
      let d1 = R.spawn producer and d2 = R.spawn consumer in
      R.join d1;
      R.join d2;
      Alcotest.(check int) "published read is ordered" 0 (R.report_count ()));
  (* the same shape WITHOUT the publication edge must be flagged: the
     atomic flag alone is invisible to the detector by design *)
  R.declare "test.pub2" R.Single_writer;
  with_detector (fun () ->
      let loc = R.locate "test.pub2" in
      let flag = Atomic.make false in
      let producer () =
        R.write ~site:"t.produce" loc;
        Atomic.set flag true
      in
      let consumer () =
        while not (Atomic.get flag) do
          Domain.cpu_relax ()
        done;
        R.read ~site:"t.consume" loc
      in
      let d1 = R.spawn producer and d2 = R.spawn consumer in
      R.join d1;
      R.join d2;
      Alcotest.(check bool) "unpublished read reported" true
        (reports_for "test.pub2" (R.take_reports ()) <> []))

let test_dedup_and_reset () =
  R.declare "test.dedup" (R.Lock "test.dedup.lock");
  let loc = R.locate "test.dedup" in
  with_detector (fun () ->
      R.write ~site:"t.same" loc;
      R.write ~site:"t.same" loc;
      R.write ~site:"t.same" loc;
      Alcotest.(check int) "identical violations dedup" 1
        (List.length (R.take_reports ()));
      R.reset ();
      R.write ~site:"t.same" loc;
      Alcotest.(check int) "reset re-arms the dedup table" 1
        (List.length (R.take_reports ())))

let test_registry () =
  R.declare "test.reg" R.Atomic;
  R.declare "test.reg" R.Atomic (* idempotent *);
  Alcotest.check_raises "conflicting redeclare rejected"
    (Invalid_argument
       (Printf.sprintf "Aeq_race.declare: test.reg redeclared as %s (was %s)"
          (R.discipline_to_string (R.Lock "x"))
          (R.discipline_to_string R.Atomic)))
    (fun () -> R.declare "test.reg" (R.Lock "x"));
  Alcotest.check_raises "undeclared locate rejected"
    (Invalid_argument "Aeq_race.locate: undeclared location test.nosuch")
    (fun () -> ignore (R.locate "test.nosuch"));
  (* module initializers of linked subsystems feed the registry *)
  Alcotest.(check bool) "disciplines lists the arena's locations" true
    (List.mem_assoc "arena.chunk_table" (R.disciplines ())
    && List.mem_assoc "obs.metrics.registry" (R.disciplines ()))

(* ---- regressions for the violations the analyses surfaced ----------- *)

(* The scratch-limit fields used to be plain mutable fields read off-lock
   by every lease_chunk; now they are atomics. Hammer reconfiguration
   against allocation traffic with the detector armed: no reports. *)
let test_arena_limit_reconfig_is_clean () =
  with_detector (fun () ->
      let arena = A.create ~chunk_size:4096 () in
      let stop = Atomic.make false in
      let tuner =
        R.spawn (fun () ->
            while not (Atomic.get stop) do
              A.set_scratch_limit arena ~block_seconds:0.001 (Some (1 lsl 20));
              A.set_scratch_limit arena None
            done)
      in
      for _ = 1 to 50 do
        let lease = A.lease arena in
        let alloc = A.lease_allocator lease in
        ignore (A.alloc alloc 1024);
        ignore (A.alloc alloc 8192);
        A.release lease
      done;
      Atomic.set stop true;
      R.join tuner;
      let rs = R.take_reports () in
      Alcotest.(check (list string)) "no arena reports"
        [] (List.map R.report_to_string rs))

(* Backpressure used to poll on Unix.sleepf; now the blocked grab parks
   on a waiter that [release] wakes. The loser must proceed promptly
   once the winner releases — well inside the blocking deadline. *)
let test_backpressure_wake_is_prompt () =
  let arena = A.create ~chunk_size:4096 () in
  A.set_scratch_limit arena ~block_seconds:5.0 (Some 6000);
  let winner = A.lease arena in
  ignore (A.alloc (A.lease_allocator winner) 4000);
  let elapsed = Atomic.make 0.0 in
  let loser =
    R.spawn (fun () ->
        let t0 = Unix.gettimeofday () in
        let lease = A.lease arena in
        ignore (A.alloc (A.lease_allocator lease) 4000);
        Atomic.set elapsed (Unix.gettimeofday () -. t0);
        A.release lease)
  in
  (* give the loser time to hit the cap and park *)
  ignore (Unix.select [] [] [] 0.05);
  A.release winner;
  R.join loser;
  A.set_scratch_limit arena None;
  Alcotest.(check bool)
    (Printf.sprintf "woken well before the 5s deadline (%.3fs)"
       (Atomic.get elapsed))
    true
    (Atomic.get elapsed < 2.0);
  Alcotest.(check bool) "the wait actually blocked at the cap" true
    (A.backpressure_waits arena >= 1);
  Alcotest.(check (list string)) "arena coherent" [] (A.check arena)

(* Metrics.register used to take the registry lock with a bare
   lock/unlock pair; histogram bucket validation raising inside leaked
   the lock and wedged every later registration. *)
let test_metrics_register_does_not_leak_lock () =
  (match
     Obs.Metrics.histogram "test_race_bad_hist" ~buckets:[| 2.0; 1.0 |]
   with
  | _ -> Alcotest.fail "descending buckets must be rejected"
  | exception Invalid_argument _ -> ());
  (* if the registry lock leaked, this would deadlock *)
  Obs.Metrics.inc (Obs.Metrics.counter "test_race_after_bad_hist");
  Alcotest.(check int) "registry still serviceable" 1
    (Obs.Metrics.value (Obs.Metrics.counter "test_race_after_bad_hist"))

let () =
  Alcotest.run "race"
    [
      ( "detector",
        [
          Alcotest.test_case "disabled is silent" `Quick test_disabled_is_silent;
          Alcotest.test_case "lockset violation" `Quick test_lockset_violation;
          Alcotest.test_case "lock edges suppress races" `Quick
            test_lock_edges_suppress_race;
          Alcotest.test_case "happens-before race" `Quick test_happens_before_race;
          Alcotest.test_case "spawn/join edges" `Quick test_spawn_join_edges;
          Alcotest.test_case "domain-local ownership" `Quick
            test_domain_local_transfer;
          Alcotest.test_case "publication edge" `Quick test_publication_edge;
          Alcotest.test_case "dedup and reset" `Quick test_dedup_and_reset;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "fixed-violations",
        [
          Alcotest.test_case "arena limit reconfig" `Quick
            test_arena_limit_reconfig_is_clean;
          Alcotest.test_case "backpressure wake" `Quick
            test_backpressure_wake_is_prompt;
          Alcotest.test_case "metrics register lock" `Quick
            test_metrics_register_does_not_leak_lock;
        ] );
    ]

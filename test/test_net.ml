(* Tests for the network serving front-end (lib/net): protocol codec
   round-trips, hostile-input totality (malformed / truncated /
   oversized frames can never crash a domain — structured error or
   clean close, and the supervisor crash log stays empty), the
   end-to-end wire path against a live engine (results match a direct
   query), prepared statements and paging over the wire, the
   connection limit (structured Overloaded at the edge), out-of-band
   cancellation of an in-flight query, and graceful drain over the
   wire (SIGTERM: the in-flight query completes its response, new
   connections are refused, the server exits within the deadline). *)

module P = Aeq_net.Protocol
module Server = Aeq_net.Server
module Client = Aeq_net.Client
module FP = Aeq_util.Failpoints
module Sup = Aeq_exec.Supervisor
module QE = Aeq_exec.Query_error

let eventually ?(seconds = 10.0) name cond =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "%s: condition not reached within %.1fs" name seconds
    else begin
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

let small_engine () =
  let e = Aeq.Engine.create ~n_threads:2 () in
  Aeq.Engine.load_tpch e ~scale_factor:0.002;
  e

let with_server ?(config = { Server.default_config with port = 0 }) engine f =
  let server = Server.start ~config:{ config with port = 0 } engine in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Client.error_to_string e)

(* ---- codec round-trips ------------------------------------------------ *)

let payload_of_frame frame =
  (* strip the 4-byte length prefix the encoders prepend *)
  String.sub frame 4 (String.length frame - 4)

let roundtrip_request r =
  match P.decode_request (payload_of_frame (P.encode_request r)) with
  | Ok r' -> Alcotest.(check bool) "request round-trips" true (r = r')
  | Error m -> Alcotest.failf "request failed to decode: %s" m

let roundtrip_response r =
  match P.decode_response (payload_of_frame (P.encode_response r)) with
  | Ok r' -> Alcotest.(check bool) "response round-trips" true (r = r')
  | Error m -> Alcotest.failf "response failed to decode: %s" m

let all_errs =
  [
    P.Trap "division by zero";
    P.Compile_failed ("opt", "backend exploded");
    P.Timeout 1.5;
    P.Cancelled;
    P.Memory_budget_exceeded { budget_bytes = 1024; used_bytes = 2048 };
    P.Overloaded { queue_depth = 9; capacity = 8 };
    P.Rejected "draining";
    P.Worker_crashed { domain = "dispatcher-0"; detail = "Injected_crash" };
    P.Parse_failed "unexpected token";
    P.Plan_failed "no such table";
    P.Protocol_violation "frame too large";
    P.Server_error "catch-all";
  ]

let test_roundtrip_requests () =
  List.iter roundtrip_request
    [
      P.Hello { client = "t"; priority = P.Low; deadline_seconds = None };
      P.Hello { client = ""; priority = P.Normal; deadline_seconds = Some 2.5 };
      P.Hello { client = "x"; priority = P.High; deadline_seconds = Some 0.001 };
      P.Prepare "select 1";
      P.Execute "select count(*) from lineitem";
      P.Execute_prepared 7;
      P.Fetch 128;
      P.Cancel;
      P.Close;
    ]

let test_roundtrip_responses () =
  List.iter roundtrip_response
    ([
       P.Hello_ok { server = "aeq"; version = P.version; fetch_size = 256 };
       P.Prepare_ok { stmt_id = 3; cached = true };
       P.Prepare_ok { stmt_id = 1; cached = false };
       P.Result
         {
           names = [ "a"; "b" ];
           dtypes = [ "int64"; "string" ];
           total_rows = 3;
           rows = [ [ "1"; "x" ]; [ "2"; "y" ] ];
           more = true;
           exec_seconds = 0.125;
         };
       P.Result
         {
           names = [];
           dtypes = [];
           total_rows = 0;
           rows = [];
           more = false;
           exec_seconds = 0.0;
         };
       P.Rows { rows = [ [ "tab\there"; "newline\nthere" ]; [ ""; "" ] ]; more = false };
       P.Ack;
     ]
    @ List.map (fun e -> P.Err e) all_errs)

(* ---- hostile input: decode is total ----------------------------------- *)

let test_fuzz_decode () =
  let rng = Aeq_util.Prng.create 0xF00DL in
  for _ = 1 to 2000 do
    let len = Aeq_util.Prng.int rng 65 in
    let payload = String.init len (fun _ -> Char.chr (Aeq_util.Prng.int rng 256)) in
    (match P.decode_request payload with Ok _ | Error _ -> ());
    match P.decode_response payload with Ok _ | Error _ -> ()
  done;
  (* every truncation of every valid frame decodes to Error or Ok,
     never an exception *)
  let victims =
    List.map P.encode_request
      [
        P.Hello { client = "trunc"; priority = P.High; deadline_seconds = Some 1. };
        P.Execute "select 1";
        P.Fetch 10;
      ]
    @ List.map P.encode_response
        [
          P.Result
            {
              names = [ "a" ];
              dtypes = [ "int64" ];
              total_rows = 1;
              rows = [ [ "1" ] ];
              more = false;
              exec_seconds = 0.5;
            };
          P.Err (P.Overloaded { queue_depth = 1; capacity = 1 });
        ]
  in
  List.iter
    (fun frame ->
      let payload = payload_of_frame frame in
      for cut = 0 to String.length payload - 1 do
        let sub = String.sub payload 0 cut in
        (match P.decode_request sub with Ok _ | Error _ -> ());
        match P.decode_response sub with Ok _ | Error _ -> ()
      done;
      (* trailing garbage must be rejected, not ignored *)
      let padded = payload ^ "\x00" in
      match (P.decode_request padded, P.decode_response padded) with
      | Error _, Error _ -> ()
      | _ -> Alcotest.fail "trailing bytes were accepted")
    victims;
  (* a hostile list count must not drive a huge allocation *)
  let bomb = "\x84" ^ "\xff\xff\xff\xff" in
  (match P.decode_response bomb with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hostile row count accepted")

(* ---- framed socket I/O ------------------------------------------------- *)

let test_frame_io () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let frame = P.encode_request (P.Execute "select 1") in
      (match P.write_frame a frame with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "write failed");
      (match P.read_frame b with
      | Ok payload ->
        Alcotest.(check string) "payload survives" (payload_of_frame frame) payload
      | Error _ -> Alcotest.fail "read failed");
      (* a declared length over the bound is refused without reading it *)
      let huge = Bytes.create 4 in
      Bytes.set_uint8 huge 0 0x7f;
      ignore (Unix.write a huge 0 4);
      (match P.read_frame ~max_bytes:1024 b with
      | Error (`Too_large n) ->
        Alcotest.(check bool) "declared length reported" true (n > 1024)
      | _ -> Alcotest.fail "oversized frame not refused");
      (* EOF surfaces as `Eof *)
      Unix.close a;
      match P.read_frame b with
      | Error `Eof -> ()
      | _ -> Alcotest.fail "closed peer not reported as Eof")

(* ---- end-to-end over the wire ------------------------------------------ *)

let test_end_to_end () =
  let e = small_engine () in
  Fun.protect ~finally:(fun () -> Aeq.Engine.close e) @@ fun () ->
  with_server e @@ fun server ->
  let port = Server.port server in
  let sql = "select l_returnflag, count(*) from lineitem group by l_returnflag" in
  (* direct execution is the reference *)
  let direct = Aeq.Engine.query e sql in
  let expect =
    List.map (String.split_on_char '\t') (Aeq.Engine.render_rows e direct)
  in
  let c = ok_or_fail "connect" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let r = ok_or_fail "execute" (Client.execute c sql) in
  Alcotest.(check (list string)) "names" direct.Aeq_exec.Driver.names r.Client.names;
  Alcotest.(check int) "row count" (List.length expect) (List.length r.Client.rows);
  let sorted = List.sort compare in
  Alcotest.(check bool) "rows match direct execution" true
    (sorted expect = sorted r.Client.rows);
  (* errors come back structured, and the session survives them *)
  (match Client.execute c "select broken syntax from" with
  | Error (Client.Wire (P.Parse_failed _)) -> ()
  | Error err ->
    Alcotest.failf "expected Parse_failed, got %s" (Client.error_to_string err)
  | Ok _ -> Alcotest.fail "garbage SQL executed");
  (match Client.execute c "select count(*) from no_such_table" with
  | Error (Client.Wire (P.Plan_failed _)) -> ()
  | Error err ->
    Alcotest.failf "expected Plan_failed, got %s" (Client.error_to_string err)
  | Ok _ -> Alcotest.fail "unknown table executed");
  let again = ok_or_fail "execute after errors" (Client.execute c sql) in
  Alcotest.(check int) "session survived the errors"
    (List.length expect) (List.length again.Client.rows)

let test_prepared_and_paging () =
  let e = small_engine () in
  Fun.protect ~finally:(fun () -> Aeq.Engine.close e) @@ fun () ->
  let config = { Server.default_config with port = 0; fetch_size = 2 } in
  with_server ~config e @@ fun server ->
  let port = Server.port server in
  let sql = "select l_orderkey from lineitem order by l_orderkey limit 7" in
  let c1 = ok_or_fail "connect c1" (Client.connect ~port ()) in
  let stmt, cached1 = ok_or_fail "prepare" (Client.prepare c1 sql) in
  Alcotest.(check bool) "first prepare is a compile" false cached1;
  (* paging: fetch_size 2 and 7 rows means Result + 3 Fetch pages *)
  let r = ok_or_fail "execute prepared" (Client.execute_prepared c1 stmt) in
  Alcotest.(check int) "all pages fetched" 7 (List.length r.Client.rows);
  Client.close c1;
  (* a second session sees the plan-cache hit *)
  let c2 = ok_or_fail "connect c2" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  let _, cached2 = ok_or_fail "re-prepare" (Client.prepare c2 sql) in
  Alcotest.(check bool) "second session finds it cached" true cached2;
  (* unknown prepared handle: structured violation, then close *)
  match Client.execute_prepared c2 999 with
  | Error (Client.Wire (P.Protocol_violation _)) -> ()
  | Error err ->
    Alcotest.failf "expected Protocol_violation, got %s" (Client.error_to_string err)
  | Ok _ -> Alcotest.fail "unknown statement executed"

(* ---- connection limit --------------------------------------------------- *)

let test_connection_limit () =
  let e = small_engine () in
  Fun.protect ~finally:(fun () -> Aeq.Engine.close e) @@ fun () ->
  let config = { Server.default_config with port = 0; max_connections = 1 } in
  with_server ~config e @@ fun server ->
  let port = Server.port server in
  let c1 = ok_or_fail "first connection" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c1) @@ fun () ->
  (match Client.connect ~port () with
  | Error (Client.Wire (P.Overloaded { queue_depth; capacity })) ->
    Alcotest.(check int) "capacity reported" 1 capacity;
    Alcotest.(check bool) "depth reported" true (queue_depth >= 1)
  | Error err ->
    Alcotest.failf "expected Overloaded, got %s" (Client.error_to_string err)
  | Ok c2 ->
    Client.close c2;
    Alcotest.fail "connection over the limit was accepted");
  Alcotest.(check int) "shed counter" 1 (Server.connections_shed server);
  (* the slot frees up when the session closes *)
  Client.close c1;
  eventually "slot released" (fun () -> Server.active_sessions server = 0);
  let c3 = ok_or_fail "connection after release" (Client.connect ~port ()) in
  Client.close c3

(* ---- hostile bytes over a live socket ----------------------------------- *)

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let read_response_payload fd =
  match P.read_frame fd with
  | Ok payload -> Some payload
  | Error _ -> None

let test_malformed_over_socket () =
  Sup.clear_crash_log ();
  let e = small_engine () in
  Fun.protect ~finally:(fun () -> Aeq.Engine.close e) @@ fun () ->
  with_server e @@ fun server ->
  let port = Server.port server in
  let rng = Aeq_util.Prng.create 0xBEEFL in
  for _ = 1 to 25 do
    let fd = raw_connect port in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let len = 1 + Aeq_util.Prng.int rng 48 in
        let garbage =
          String.init len (fun _ -> Char.chr (Aeq_util.Prng.int rng 256))
        in
        let frame = Bytes.create (4 + len) in
        Bytes.set_int32_be frame 0 (Int32.of_int len);
        Bytes.blit_string garbage 0 frame 4 len;
        ignore (Unix.write fd frame 0 (Bytes.length frame));
        (* the server must answer with a structured error frame or
           close — it never crashes *)
        match read_response_payload fd with
        | None -> ()
        | Some payload -> (
          match P.decode_response payload with
          | Ok (P.Err _) -> ()
          | Ok _ -> Alcotest.fail "garbage was answered with a success frame"
          | Error m -> Alcotest.failf "server sent a malformed frame: %s" m))
  done;
  (* an oversized declared length is refused as a violation *)
  let fd = raw_connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let frame = Bytes.create 4 in
      Bytes.set_int32_be frame 0 0x7fff_ffffl;
      ignore (Unix.write fd frame 0 4);
      match read_response_payload fd with
      | Some payload -> (
        match P.decode_response payload with
        | Ok (P.Err (P.Protocol_violation _)) -> ()
        | _ -> Alcotest.fail "oversized frame not answered with a violation")
      | None -> ());
  (* a live session stays alive after all that hostility *)
  let c = ok_or_fail "connect after fuzz" (Client.connect ~port ()) in
  let r =
    ok_or_fail "query after fuzz" (Client.execute c "select count(*) from region")
  in
  Alcotest.(check int) "one row" 1 (List.length r.Client.rows);
  Client.close c;
  Alcotest.(check int) "no domain crashed during the fuzz" 0
    (List.length (Sup.crash_log ()))

(* ---- out-of-band cancel -------------------------------------------------- *)

let test_cancel_in_flight () =
  FP.clear ();
  Fun.protect ~finally:FP.clear @@ fun () ->
  let e = small_engine () in
  Fun.protect ~finally:(fun () -> Aeq.Engine.close e) @@ fun () ->
  with_server e @@ fun server ->
  let port = Server.port server in
  let c = ok_or_fail "connect" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* slow every morsel down so the query is reliably in flight when
     the cancel frame arrives *)
  FP.activate "driver.morsel" (FP.Delay 0.02);
  let result = ref None in
  let runner =
    Thread.create
      (fun () -> result := Some (Client.execute c "select count(*) from lineitem"))
      ()
  in
  Thread.delay 0.1;
  (match Client.cancel c with
  | Ok () -> ()
  | Error err -> Alcotest.failf "cancel failed: %s" (Client.error_to_string err));
  Thread.join runner;
  match !result with
  | Some (Error (Client.Wire P.Cancelled)) -> ()
  | Some (Error (Client.Wire (P.Timeout _))) ->
    Alcotest.fail "query timed out before the cancel took effect"
  | Some (Ok _) -> Alcotest.fail "query completed despite the cancel"
  | Some (Error err) ->
    Alcotest.failf "expected Cancelled, got %s" (Client.error_to_string err)
  | None -> Alcotest.fail "runner thread produced nothing"

(* ---- drain over the wire -------------------------------------------------- *)

let test_drain_over_the_wire () =
  FP.clear ();
  Fun.protect ~finally:FP.clear @@ fun () ->
  let e = small_engine () in
  let config = { Server.default_config with port = 0 } in
  let server = Server.start ~config e in
  let port = Server.port server in
  Server.install_signal_handlers ~deadline_seconds:15.0 server;
  let c = ok_or_fail "connect" (Client.connect ~port ()) in
  (* keep a query in flight across the SIGTERM *)
  FP.activate "driver.morsel" (FP.Delay 0.005);
  let result = ref None in
  let runner =
    Thread.create
      (fun () -> result := Some (Client.execute c "select count(*) from lineitem"))
      ()
  in
  Thread.delay 0.08;
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  (* the in-flight query still completes its response *)
  Thread.join runner;
  (match !result with
  | Some (Ok r) -> Alcotest.(check int) "in-flight rows arrive" 1 (List.length r.Client.rows)
  | Some (Error err) ->
    Alcotest.failf "in-flight query lost to the drain: %s"
      (Client.error_to_string err)
  | None -> Alcotest.fail "runner produced nothing");
  FP.clear ();
  (* the server reaches Stopped within the deadline and the engine is
     closed behind it *)
  let t0 = Unix.gettimeofday () in
  Server.wait server;
  Alcotest.(check bool) "drain finished inside the deadline" true
    (Unix.gettimeofday () -. t0 < 15.0);
  Alcotest.(check bool) "engine closed by the drain" true (Aeq.Engine.closed e);
  (* new connections are refused outright *)
  (match Client.connect ~port () with
  | Ok c2 ->
    Client.close c2;
    Alcotest.fail "connection accepted after drain"
  | Error (Client.Transport _) -> ()
  | Error (Client.Wire err) ->
    Alcotest.failf "expected a refused connect, got %s" (P.err_to_string err));
  Client.close c

let () =
  Alcotest.run "net"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trips" `Quick test_roundtrip_requests;
          Alcotest.test_case "response round-trips" `Quick test_roundtrip_responses;
          Alcotest.test_case "hostile decode is total" `Quick test_fuzz_decode;
          Alcotest.test_case "framed socket io" `Quick test_frame_io;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end" `Quick test_end_to_end;
          Alcotest.test_case "prepared + paging" `Quick test_prepared_and_paging;
          Alcotest.test_case "connection limit" `Quick test_connection_limit;
          Alcotest.test_case "malformed over socket" `Quick test_malformed_over_socket;
          Alcotest.test_case "cancel in flight" `Quick test_cancel_in_flight;
          Alcotest.test_case "drain over the wire" `Quick test_drain_over_the_wire;
        ] );
    ]

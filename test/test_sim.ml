(* Deterministic concurrency simulation of the real engine (Aeq_sim).

   Four pillars:
   (a) replayability — the same seed produces the same schedule, the
       same yield trace and the same query results, bit for bit;
   (b) bug-finding power — with the historical shared-context bug
       reintroduced behind [Context.unsafe_global_current], a seed
       sweep finds the race within the CI budget, and the shrunk
       schedule still reproduces it;
   (c) resource exhaustion — a scratch cap below what a query needs
       yields a structured [Memory_budget_exceeded], never a crash, a
       hang or a leak; with the cap above one query but below two,
       backpressure lets the loser proceed when the winner releases;
   (d) targeted interleavings — a forced schedule drives the
       release-vs-grab race deterministically into [Stale_allocator].

   Every simulated engine runs with [n_threads = 1]: the pool spawns
   no worker domains, so pipeline jobs execute inline inside the
   simulated tasks and the token-passing scheduler sees every step. *)

module Sim = Aeq_sim.Sched
module CM = Aeq_backend.Cost_model
module Driver = Aeq_exec.Driver
module QE = Aeq_exec.Query_error
module A = Aeq_mem.Arena

let sf = 0.002

let fresh_engine ?chunk_size () =
  let engine = Aeq.Engine.create ~n_threads:1 ~cost_model:CM.off ?chunk_size () in
  Aeq.Engine.load_tpch engine ~scale_factor:sf;
  engine

let with_engine ?chunk_size f =
  let engine = fresh_engine ?chunk_size () in
  Fun.protect ~finally:(fun () -> Aeq.Engine.close engine) (fun () -> f engine)

let arena_of engine = Aeq_storage.Catalog.arena (Aeq.Engine.catalog engine)

let checkers engine =
  let arena = arena_of engine in
  let pool = Aeq.Engine.pool engine in
  [
    (fun () -> A.check arena);
    (fun () -> Aeq_exec.Pool.check pool);
    (fun () -> Aeq.Engine.check engine);
  ]

let sorted (r : Driver.result) = List.sort Stdlib.compare r.Driver.rows

let sql_count = "select count(*) as n from lineitem"

let sql_sum = "select sum(l_quantity) as s from lineitem"

let sql_group =
  "select l_returnflag, sum(l_quantity) as s from lineitem group by l_returnflag"

(* reference results, computed once on a plain sequential engine *)
let reference =
  lazy
    (with_engine (fun engine ->
         List.map
           (fun sql ->
             (sql, sorted (Aeq.Engine.query engine ~mode:Driver.Bytecode sql)))
           [ sql_count; sql_sum; sql_group ]))

let expected sql = List.assoc sql (Lazy.force reference)

(* a task that runs one query and records how it went *)
let query_task engine sql log name =
 fun () ->
  match Aeq.Engine.query engine ~mode:Driver.Bytecode sql with
  | r ->
    if sorted r = expected sql then log := (name, "ok") :: !log
    else log := (name, "WRONG RESULT") :: !log
  | exception QE.Error e -> log := (name, "error: " ^ QE.to_string e) :: !log

(* ---- (a) seed replayability ------------------------------------------ *)

let run_pair ~seed ?schedule () =
  (* force the reference OUTSIDE the simulation: Lazy is not
     domain-safe, and two simulated tasks racing the first force would
     fail inside the harness rather than the engine *)
  ignore (Lazy.force reference);
  with_engine (fun engine ->
      let log = ref [] in
      let outcome =
        Sim.run ?schedule ~checkers:(checkers engine) ~seed
          ~tasks:
            [
              ("count", query_task engine sql_count log "count");
              ("sum", query_task engine sql_sum log "sum");
              ("group", query_task engine sql_group log "group");
            ]
          ()
      in
      (outcome, List.sort compare !log))

let test_seed_replayability () =
  let o1, log1 = run_pair ~seed:0xD15EA5EL ()
  and o2, log2 = run_pair ~seed:0xD15EA5EL () in
  Alcotest.(check bool) "no failure on the sound engine" false (Sim.failed o1);
  Alcotest.(check (list (pair string string))) "same results" log1 log2;
  Alcotest.(check (list int)) "same schedule" o1.Sim.schedule o2.Sim.schedule;
  Alcotest.(check (list (pair string string)))
    "same yield trace" o1.Sim.trace o2.Sim.trace;
  Alcotest.(check int) "same step count" o1.Sim.steps o2.Sim.steps;
  (* a different seed must take a different interleaving (the
     scheduler is actually exercising choice, not round-robin) *)
  let o3, log3 = run_pair ~seed:0xFEEDL () in
  Alcotest.(check bool) "other seed still sound" false (Sim.failed o3);
  Alcotest.(check (list (pair string string))) "results seed-independent" log1 log3;
  Alcotest.(check bool)
    "different seed, different schedule" true
    (o1.Sim.schedule <> o3.Sim.schedule)

(* ---- (b) finding the historical shared-context race ------------------ *)

(* One run of the two-query workload with the pre-per-query-context
   bug reintroduced. Returns (bug observed?, outcome). The bug
   manifests as a wrong result (one query's writes routed into the
   other's runtime objects) or as a structured error (allocating
   through the victim's already-released lease). *)
let race_run ~seed ?schedule () =
  Atomic.set Aeq_rt.Context.unsafe_global_current true;
  Fun.protect
    ~finally:(fun () -> Atomic.set Aeq_rt.Context.unsafe_global_current false)
    (fun () ->
      with_engine (fun engine ->
          let log = ref [] in
          let outcome =
            Sim.run ?schedule ~checkers:(checkers engine) ~seed
              ~tasks:
                [
                  ("count", query_task engine sql_count log "count");
                  ("sum", query_task engine sql_sum log "sum");
                ]
              ()
          in
          let bug =
            Sim.failed outcome
            || List.exists (fun (_, s) -> s <> "ok") !log
          in
          (bug, outcome)))

let seed_budget = 40

let test_finds_shared_context_race () =
  ignore (Lazy.force reference);
  let found = ref None in
  let seed = ref 1 in
  while !found = None && !seed <= seed_budget do
    let bug, outcome = race_run ~seed:(Int64.of_int !seed) () in
    if bug then found := Some (Int64.of_int !seed, outcome);
    incr seed
  done;
  match !found with
  | None ->
    Alcotest.failf "race not found within %d seeds — the simulator lost its teeth"
      seed_budget
  | Some (seed, outcome) ->
    (* replaying the recorded schedule must reproduce the bug... *)
    let bug_again, _ = race_run ~seed ~schedule:outcome.Sim.schedule () in
    Alcotest.(check bool) "recorded schedule replays the bug" true bug_again;
    (* ...and so must the shrunk schedule, with fewer decisions *)
    let replay sched = fst (race_run ~seed ~schedule:sched ()) in
    let shrunk = Sim.shrink ~budget:40 ~replay outcome.Sim.schedule in
    Alcotest.(check bool)
      (Printf.sprintf "shrunk repro (%d -> %d decisions) still fails"
         (List.length outcome.Sim.schedule)
         (List.length shrunk))
      true (replay shrunk);
    Alcotest.(check bool)
      "shrinking did not grow the schedule" true
      (List.length shrunk <= List.length outcome.Sim.schedule);
    (* the repro line is what a human pastes into a replay *)
    Alcotest.(check bool) "repro string mentions the seed" true
      (String.length (Sim.repro_string outcome) > 0)

(* ---- (b2) the dynamic race detector inside the simulator ------------- *)

(* The detector catches the same resurrected bug a different way: not
   by its symptom (wrong rows, stale lease) but by the access pattern
   itself — two sim tasks touching the Domain_local
   [rt.context.global_current] with no happens-before edge. Sim tasks
   run in raw-spawned domains on purpose: only the token hand-off
   orders them in real time, and the detector rightly does not treat
   that as synchronization. *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let detector_reported outcome =
  List.exists
    (fun (_, m) ->
      contains m "race:" && contains m "rt.context.global_current")
    outcome.Sim.invariant_failures

let detector_race_run ~seed ?schedule () =
  Aeq_race.Control.with_enabled true (fun () ->
      Atomic.set Aeq_rt.Context.unsafe_global_current true;
      Fun.protect
        ~finally:(fun () ->
          Atomic.set Aeq_rt.Context.unsafe_global_current false)
        (fun () ->
          with_engine (fun engine ->
              let log = ref [] in
              let outcome =
                Sim.run ?schedule ~checkers:(checkers engine) ~seed
                  ~tasks:
                    [
                      ("count", query_task engine sql_count log "count");
                      ("sum", query_task engine sql_sum log "sum");
                    ]
                  ()
              in
              (detector_reported outcome, outcome))))

let test_detector_flags_context_race () =
  ignore (Lazy.force reference);
  let found = ref None in
  let seed = ref 1 in
  while !found = None && !seed <= seed_budget do
    let hit, outcome = detector_race_run ~seed:(Int64.of_int !seed) () in
    if hit then found := Some (Int64.of_int !seed, outcome);
    incr seed
  done;
  match !found with
  | None ->
    Alcotest.failf
      "detector missed the shared-context race within %d seeds" seed_budget
  | Some (seed, outcome) ->
    Alcotest.(check bool) "a race is a failure" true (Sim.failed outcome);
    (* the recorded schedule replays the detector report *)
    let hit_again, _ =
      detector_race_run ~seed ~schedule:outcome.Sim.schedule ()
    in
    Alcotest.(check bool) "recorded schedule replays the report" true hit_again;
    (* and the report survives shrinking, like any other failure *)
    let replay sched = fst (detector_race_run ~seed ~schedule:sched ()) in
    let shrunk = Sim.shrink ~budget:40 ~replay outcome.Sim.schedule in
    Alcotest.(check bool)
      (Printf.sprintf "shrunk repro (%d -> %d decisions) still reports"
         (List.length outcome.Sim.schedule)
         (List.length shrunk))
      true (replay shrunk)

(* the sound engine must be silent under the detector: every lock goes
   through Aeq_race.Lock and every publication through publish/consume,
   so a report here is a false positive (or a real bug) *)
let test_detector_no_false_positives () =
  ignore (Lazy.force reference);
  Aeq_race.Control.with_enabled true (fun () ->
      for seed = 1 to 6 do
        let o, log = run_pair ~seed:(Int64.of_int seed) () in
        List.iter
          (fun (steps, m) ->
            if contains m "race:" then
              Alcotest.failf "seed %d step %d: detector false positive: %s"
                seed steps m)
          o.Sim.invariant_failures;
        if Sim.failed o then
          Alcotest.failf "seed %d failed under the detector: %s" seed
            (Sim.repro_string o);
        List.iter
          (fun (name, s) ->
            if s <> "ok" then Alcotest.failf "seed %d task %s: %s" seed name s)
          log
      done)

(* the same workload with the flag OFF must be sound on every seed the
   finder needed — the finder detects the bug, not the harness *)
let test_no_false_positives () =
  ignore (Lazy.force reference);
  for seed = 1 to 10 do
    let o, log = run_pair ~seed:(Int64.of_int seed) () in
    if Sim.failed o then
      Alcotest.failf "seed %d failed on the sound engine: %s" seed
        (Sim.repro_string o);
    List.iter
      (fun (name, s) ->
        if s <> "ok" then Alcotest.failf "seed %d task %s: %s" seed name s)
      log
  done

(* ---- (c) scratch-cap exhaustion under simulation --------------------- *)

let test_scratch_cap_structured_failure () =
  with_engine ~chunk_size:(64 * 1024) (fun engine ->
      (* warm the plan so the simulated run measures execution only *)
      ignore (Aeq.Engine.query engine ~mode:Driver.Bytecode sql_group);
      let arena = arena_of engine in
      let chunks0 = A.live_chunks arena and resident0 = A.resident_bytes arena in
      (* cap below one scratch chunk: every execution must fail — with
         the structured error, not a crash or a hang. Short deadline in
         virtual time (~200 scheduler steps). *)
      Aeq.Engine.set_scratch_limit ~block_seconds:0.002 engine (Some 4096);
      let got = ref [] in
      let task () =
        match Aeq.Engine.query engine ~mode:Driver.Bytecode sql_group with
        | _ -> got := "rows" :: !got
        | exception QE.Error (QE.Memory_budget_exceeded _) ->
          got := "budget" :: !got
        | exception e -> got := Printexc.to_string e :: !got
      in
      let outcome =
        Sim.run ~checkers:(checkers engine) ~seed:0xCAFEL
          ~tasks:[ ("starved-a", task); ("starved-b", task) ]
          ()
      in
      Aeq.Engine.set_scratch_limit engine None;
      Alcotest.(check bool) "simulation completed" false (Sim.failed outcome);
      Alcotest.(check (list string))
        "both executions failed with the structured error"
        [ "budget"; "budget" ] !got;
      Alcotest.(check int) "no chunk leaked" chunks0 (A.live_chunks arena);
      Alcotest.(check int) "resident back to baseline" resident0
        (A.resident_bytes arena);
      Alcotest.(check int) "scratch drained" 0 (A.scratch_resident_bytes arena);
      Alcotest.(check bool) "rejections counted" true
        (A.limit_rejections arena >= 2);
      Alcotest.(check (list string)) "arena coherent" [] (A.check arena))

let test_scratch_cap_backpressure_in_sim () =
  with_engine ~chunk_size:(64 * 1024) (fun engine ->
      ignore (Aeq.Engine.query engine ~mode:Driver.Bytecode sql_count);
      ignore (Aeq.Engine.query engine ~mode:Driver.Bytecode sql_sum);
      let arena = arena_of engine in
      let chunks0 = A.live_chunks arena and resident0 = A.resident_bytes arena in
      (* room for one query's scratch but not two: the loser waits at
         the cap and proceeds when the winner releases — a generous
         deadline (10k virtual-time steps) makes rejection the
         exception, not the rule *)
      Aeq.Engine.set_scratch_limit ~block_seconds:0.1 engine (Some (96 * 1024));
      let log = ref [] in
      let outcome =
        Sim.run ~checkers:(checkers engine) ~seed:0xB10CL
          ~tasks:
            [
              ("first", query_task engine sql_count log "first");
              ("second", query_task engine sql_sum log "second");
            ]
          ()
      in
      Aeq.Engine.set_scratch_limit engine None;
      Alcotest.(check bool) "simulation completed" false (Sim.failed outcome);
      List.iter
        (fun (name, s) ->
          (* correct rows, or a structured budget error — nothing else *)
          if s <> "ok" && not (String.length s >= 5 && String.sub s 0 5 = "error")
          then Alcotest.failf "task %s: %s" name s)
        !log;
      Alcotest.(check int) "no chunk leaked" chunks0 (A.live_chunks arena);
      Alcotest.(check int) "resident back to baseline" resident0
        (A.resident_bytes arena);
      Alcotest.(check (list string)) "arena coherent" [] (A.check arena))

(* ---- (d) forced-schedule Stale_allocator ----------------------------- *)

let test_forced_stale_allocator () =
  let run_once () =
    let arena = A.create ~chunk_size:1024 () in
    let lease = A.lease arena in
    let alloc = A.lease_allocator lease in
    let events = ref [] in
    let query () =
      (* two grabs, each yielding at [arena.alloc]; the reaper strikes
         between them *)
      match
        ignore (A.alloc alloc 900);
        events := "first-alloc-ok" :: !events;
        ignore (A.alloc alloc 900)
      with
      | () -> events := "second-alloc-ok" :: !events
      | exception A.Stale_allocator -> events := "stale" :: !events
    in
    let reaper () =
      A.release lease;
      events := "released" :: !events
    in
    (* decisions: run the query through its first grab and up to the
       second, slip the reaper's release in between, then let the
       query resume into the staled lease; the round-robin tail
       finishes whatever is left *)
    let schedule = [ 0; 0; 1; 1; 0 ] in
    let outcome =
      Sim.run ~schedule
        ~checkers:[ (fun () -> A.check arena) ]
        ~seed:0L
        ~tasks:[ ("query", query); ("reaper", reaper) ]
        ()
    in
    (outcome, List.rev !events, A.live_chunks arena, A.check arena)
  in
  let o1, ev1, chunks1, errs1 = run_once () in
  let o2, ev2, _, _ = run_once () in
  Alcotest.(check bool) "no harness failure" false (Sim.failed o1);
  Alcotest.(check (list string)) "deterministic events" ev1 ev2;
  Alcotest.(check (list int)) "deterministic schedule" o1.Sim.schedule o2.Sim.schedule;
  Alcotest.(check bool)
    (Printf.sprintf "stale raced grab detected (events: %s)"
       (String.concat "," ev1))
    true
    (List.mem "stale" ev1);
  (* the raced grab must not have leaked a slot past the release *)
  Alcotest.(check int) "no slot leaked by the raced grab" 1 chunks1;
  Alcotest.(check (list string)) "arena coherent" [] errs1

(* ---- randomized sweep (CI artifact producer) ------------------------- *)

(* Opt-in via AEQ_SIM_SWEEP=<n seeds>. Runs the sound engine (no bug
   flag) across a seed range; any failure is shrunk and written to
   AEQ_SIM_REPRO (default sim_repro.txt) so CI can upload it. *)
let test_sweep () =
  match Sys.getenv_opt "AEQ_SIM_SWEEP" with
  | None | Some "" -> ()
  | Some n ->
    ignore (Lazy.force reference);
    let n = match int_of_string_opt n with Some n when n > 0 -> n | _ -> 25 in
    let base = 0x5EED_0000 in
    for i = 1 to n do
      let seed = Int64.of_int (base + i) in
      let o, log = run_pair ~seed () in
      let bad = List.filter (fun (_, s) -> s <> "ok") log in
      if Sim.failed o || bad <> [] then begin
        let replay sched =
          let o, log = run_pair ~seed ~schedule:sched () in
          Sim.failed o || List.exists (fun (_, s) -> s <> "ok") log
        in
        let shrunk = Sim.shrink ~budget:60 ~replay o.Sim.schedule in
        let path =
          Option.value (Sys.getenv_opt "AEQ_SIM_REPRO") ~default:"sim_repro.txt"
        in
        let oc = open_out path in
        Printf.fprintf oc "%s\nshrunk=[%s]\ntasks: %s\n" (Sim.repro_string o)
          (String.concat ";" (List.map string_of_int shrunk))
          (String.concat ", "
             (List.map (fun (t, s) -> t ^ ": " ^ s) (bad @ [])));
        close_out oc;
        Alcotest.failf "sweep seed 0x%Lx failed; shrunk repro in %s" seed path
      end
    done

let () =
  Alcotest.run "sim"
    [
      ( "determinism",
        [
          Alcotest.test_case "seed replayability" `Quick test_seed_replayability;
          Alcotest.test_case "no false positives" `Quick test_no_false_positives;
        ] );
      ( "race-finding",
        [
          Alcotest.test_case "finds the shared-context race" `Quick
            test_finds_shared_context_race;
          Alcotest.test_case "forced-schedule stale allocator" `Quick
            test_forced_stale_allocator;
          Alcotest.test_case "detector flags the context race" `Quick
            test_detector_flags_context_race;
          Alcotest.test_case "detector: no false positives" `Quick
            test_detector_no_false_positives;
        ] );
      ( "exhaustion",
        [
          Alcotest.test_case "scratch cap: structured failure" `Quick
            test_scratch_cap_structured_failure;
          Alcotest.test_case "scratch cap: backpressure" `Quick
            test_scratch_cap_backpressure_in_sim;
        ] );
      ( "sweep", [ Alcotest.test_case "randomized sweep" `Quick test_sweep ] );
    ]

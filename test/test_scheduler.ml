(* Tests for concurrent query serving: the admission queue (priorities,
   bounds, shedding, deadlines), the compile-path circuit breaker,
   transient-failure retry, the watchdog, probabilistic failpoints,
   the now-thread-safe engine plan cache, and a chaos soak. *)

module Sched = Aeq_exec.Scheduler
module Driver = Aeq_exec.Driver
module QE = Aeq_exec.Query_error
module FP = Aeq_util.Failpoints
module CM = Aeq_backend.Cost_model
module Clock = Aeq_util.Clock

let with_clean_failpoints f =
  FP.clear ();
  Fun.protect ~finally:FP.clear f

let eager_model =
  {
    CM.default with
    CM.simulate = false;
    unopt_base = 0.0;
    unopt_per_instr = 0.0;
    opt_base = 0.0;
    opt_per_instr = 0.0;
    opt_quad = 0.0;
    speedup_unopt = 10.0;
    speedup_opt = 20.0;
  }

(* ---- a fake execution core ------------------------------------------ *)
(* Scheduler semantics (queueing, breaker, retry, watchdog) are tested
   against a scripted [exec] — no engine, no SQL. The "sql" strings are
   commands: ok | sleep:<s> | transient:<n>:<tag> | compile:<tag> |
   fatal. *)

let ok_result () =
  {
    Driver.names = [ "x" ];
    dtypes = [ Aeq_storage.Dtype.Int ];
    rows = [ [| 42L |] ];
    stats =
      {
        Driver.codegen_seconds = 0.0;
        bc_seconds = 0.0;
        compile_seconds = 0.0;
        exec_seconds = 0.0;
        total_seconds = 0.0;
        rows_out = 1;
        final_modes = [];
        prepared_reuse = false;
        compile_failures = 0;
      };
    trace = None;
    final_cm_modes = [];
  }

(* sleep in small cancellable steps, like morsel boundaries *)
let rec csleep cancel remaining =
  if Aeq_exec.Cancel.cancelled cancel then QE.raise_error QE.Cancelled
  else if remaining > 0.0 then begin
    Unix.sleepf (Stdlib.min 0.002 remaining);
    csleep cancel (remaining -. 0.002)
  end

type harness = {
  h_lock : Mutex.t;
  mutable h_served : string list; (* reverse dispatch order *)
  h_counts : (string, int) Hashtbl.t; (* executions per command, incl. retries *)
  mutable h_compile_broken : bool;
}

let make_harness () =
  { h_lock = Mutex.create (); h_served = []; h_counts = Hashtbl.create 8;
    h_compile_broken = false }

let harness_exec h ~mode ~cancel sql =
  let n =
    Mutex.lock h.h_lock;
    h.h_served <- sql :: h.h_served;
    let n = (match Hashtbl.find_opt h.h_counts sql with Some n -> n | None -> 0) + 1 in
    Hashtbl.replace h.h_counts sql n;
    Mutex.unlock h.h_lock;
    n
  in
  match String.split_on_char ':' sql with
  | "ok" :: _ -> ok_result ()
  | "sleep" :: d :: _ ->
    csleep cancel (float_of_string d);
    ok_result ()
  | "transient" :: k :: _ ->
    if n <= int_of_string k then QE.raise_error (QE.Trap "injected fault (scripted)")
    else ok_result ()
  | "compile" :: _ ->
    if h.h_compile_broken && mode <> Driver.Bytecode then
      QE.raise_error (QE.Compile_failed (CM.Unopt, "scripted compile failure"))
    else ok_result ()
  | "fatal" :: _ -> QE.raise_error (QE.Trap "real bug")
  | _ -> ok_result ()

let with_sched ?(config = Sched.default_config) ?arena h f =
  let s = Sched.create ~config ?arena ~exec:(harness_exec h) () in
  Fun.protect ~finally:(fun () -> Sched.shutdown s) (fun () -> f s)

let served h =
  Mutex.lock h.h_lock;
  let l = List.rev h.h_served in
  Mutex.unlock h.h_lock;
  l

let check_ok name = function
  | Ok r -> Alcotest.(check bool) name true (r.Driver.rows = [ [| 42L |] ])
  | Error e -> Alcotest.failf "%s: unexpected error %s" name (QE.to_string e)

let check_rejected name = function
  | Ok _ -> Alcotest.failf "%s: expected Rejected, got rows" name
  | Error (QE.Rejected _) -> ()
  | Error e -> Alcotest.failf "%s: expected Rejected, got %s" name (QE.to_string e)

(* ---- probabilistic failpoints (satellite) ---------------------------- *)

(* synthetic sites: the catalog rejects unknown names *)
let () =
  List.iter FP.register_site [ "p.never"; "p.always"; "p.half"; "p.rep"; "a"; "b"; "x" ]

let test_prob_failpoints () =
  with_clean_failpoints (fun () ->
      FP.set_seed 7L;
      FP.activate "p.never" (FP.Prob_fail 0.0);
      for _ = 1 to 50 do
        FP.hit "p.never"
      done;
      Alcotest.(check int) "p=0 never fires" 0 (FP.fired "p.never");
      FP.activate "p.always" (FP.Prob_fail 1.0);
      for _ = 1 to 50 do
        match FP.hit "p.always" with
        | () -> Alcotest.fail "p=1 must always fire"
        | exception FP.Injected _ -> ()
      done;
      Alcotest.(check int) "p=1 always fires" 50 (FP.fired "p.always");
      FP.activate "p.half" (FP.Prob_fail 0.5);
      let fired = ref 0 in
      for _ = 1 to 200 do
        match FP.hit "p.half" with () -> () | exception FP.Injected _ -> incr fired
      done;
      Alcotest.(check bool)
        (Printf.sprintf "p=0.5 fired %d/200" !fired)
        true
        (!fired > 50 && !fired < 150);
      (* same seed, same draws *)
      FP.set_seed 7L;
      FP.activate "p.rep" (FP.Prob_fail 0.5);
      let first = ref [] in
      for _ = 1 to 20 do
        first := (match FP.hit "p.rep" with () -> false | exception FP.Injected _ -> true) :: !first
      done;
      FP.set_seed 7L;
      let again = ref [] in
      for _ = 1 to 20 do
        again := (match FP.hit "p.rep" with () -> false | exception FP.Injected _ -> true) :: !again
      done;
      Alcotest.(check bool) "seeded draws reproducible" true (!first = !again))

let test_prob_failpoints_parse () =
  with_clean_failpoints (fun () ->
      FP.set_from_string "a=p:0.0, b=p:1.0";
      FP.hit "a";
      (match FP.hit "b" with
      | () -> Alcotest.fail "b=p:1.0 must fire"
      | exception FP.Injected _ -> ());
      List.iter
        (fun bad ->
          match FP.set_from_string bad with
          | () -> Alcotest.failf "accepted %S" bad
          | exception Invalid_argument _ -> ())
        [ "x=p:1.5"; "x=p:-0.1"; "x=p:huge" ];
      match FP.activate "x" (FP.Prob_fail 2.0) with
      | () -> Alcotest.fail "activate must validate the probability"
      | exception Invalid_argument _ -> ())

(* ---- basic serving --------------------------------------------------- *)

let test_submit_await () =
  let h = make_harness () in
  with_sched h (fun s ->
      let tk = Sched.submit s "ok:basic" in
      check_ok "basic outcome" (Sched.await tk);
      Alcotest.(check bool) "waited >= 0" true (Sched.wait_seconds tk >= 0.0);
      Alcotest.(check bool) "not degraded" false (Sched.was_degraded tk);
      check_ok "run" (Sched.run s "ok:run");
      let st = Sched.stats s in
      Alcotest.(check int) "admitted" 2 st.Sched.admitted;
      Alcotest.(check int) "completed" 2 st.Sched.completed;
      Alcotest.(check int) "failed" 0 st.Sched.failed;
      Alcotest.(check string) "breaker closed" "closed"
        (Sched.breaker_state_name st.Sched.breaker_state))

let test_priority_order () =
  let h = make_harness () in
  with_sched h (fun s ->
      let blocker = Sched.submit s "sleep:0.2" in
      Unix.sleepf 0.05 (* the blocker is now running, the queue is free *);
      let low = Sched.submit ~priority:Sched.Low s "ok:low" in
      let high = Sched.submit ~priority:Sched.High s "ok:high" in
      check_ok "high" (Sched.await high);
      check_ok "low" (Sched.await low);
      check_ok "blocker" (Sched.await blocker);
      Alcotest.(check (list string)) "high dispatched before low"
        [ "sleep:0.2"; "ok:high"; "ok:low" ]
        (served h))

let test_overload_reject_and_shed () =
  let h = make_harness () in
  let config = { Sched.default_config with Sched.queue_capacity = 2 } in
  with_sched ~config h (fun s ->
      let blocker = Sched.submit s "sleep:0.3" in
      Unix.sleepf 0.05;
      let n1 = Sched.submit s "ok:n1" in
      let n2 = Sched.submit s "ok:n2" in
      (* full queue + equal priority: fail fast, in bounded time *)
      let t0 = Clock.now () in
      (match Sched.submit s "ok:n3" with
      | _ -> Alcotest.fail "expected Overloaded"
      | exception QE.Error (QE.Overloaded { queue_depth; capacity }) ->
        Alcotest.(check int) "capacity echoed" 2 capacity;
        Alcotest.(check int) "depth echoed" 2 queue_depth);
      Alcotest.(check bool) "rejection is immediate" true (Clock.now () -. t0 < 0.1);
      (* a higher-priority submission sheds the oldest Normal instead *)
      let hi = Sched.submit ~priority:Sched.High s "ok:hi" in
      check_rejected "n1 was shed" (Sched.await n1);
      check_ok "hi served" (Sched.await hi);
      check_ok "n2 served" (Sched.await n2);
      check_ok "blocker served" (Sched.await blocker);
      (* Low never sheds anything *)
      let b2 = Sched.submit s "sleep:0.3" in
      Unix.sleepf 0.05;
      let q1 = Sched.submit s "ok:q1" in
      let q2 = Sched.submit s "ok:q2" in
      (match Sched.submit ~priority:Sched.Low s "ok:lo" with
      | _ -> Alcotest.fail "low must not shed normal"
      | exception QE.Error (QE.Overloaded _) -> ());
      check_ok "q1" (Sched.await q1);
      check_ok "q2" (Sched.await q2);
      check_ok "b2" (Sched.await b2);
      let st = Sched.stats s in
      Alcotest.(check int) "one shed" 1 st.Sched.shed;
      Alcotest.(check int) "two rejected" 2 st.Sched.rejected;
      Alcotest.(check int) "max depth bounded" 2 st.Sched.max_queue_depth)

let test_overload_degrades_to_bytecode () =
  let h = make_harness () in
  let config = { Sched.default_config with Sched.shed_queue_depth = 0 } in
  with_sched ~config h (fun s ->
      let blocker = Sched.submit s "sleep:0.2" in
      Unix.sleepf 0.05;
      let a1 = Sched.submit s "ok:a1" in
      let a2 = Sched.submit s "ok:a2" in
      check_ok "a1" (Sched.await a1);
      check_ok "a2" (Sched.await a2);
      check_ok "blocker" (Sched.await blocker);
      (* a1 was dispatched while a2 still queued (depth 1 > 0): degraded;
         a2 went out with an empty queue: full service *)
      Alcotest.(check bool) "a1 degraded" true (Sched.was_degraded a1);
      Alcotest.(check bool) "a2 not degraded" false (Sched.was_degraded a2);
      Alcotest.(check int) "degraded counted" 1 (Sched.stats s).Sched.degraded);
  (* arena pressure: resident bytes over the threshold degrade too *)
  let arena = Aeq_mem.Arena.create () in
  let h2 = make_harness () in
  let config = { Sched.default_config with Sched.shed_resident_bytes = Some 0 } in
  with_sched ~config ~arena h2 (fun s ->
      let tk = Sched.submit s "ok:mem" in
      check_ok "served under memory pressure" (Sched.await tk);
      Alcotest.(check bool) "degraded by resident bytes" true (Sched.was_degraded tk))

(* ---- circuit breaker ------------------------------------------------- *)

let test_breaker_trip_and_recover () =
  let h = make_harness () in
  let config =
    {
      Sched.default_config with
      Sched.breaker_threshold = 2;
      breaker_cooldown = 0.5;
      breaker_cooldown_max = 1.0;
      max_retries = 0;
    }
  in
  with_sched ~config h (fun s ->
      h.h_compile_broken <- true;
      (match Sched.run s "compile:t1" with
      | Error (QE.Compile_failed _) -> ()
      | _ -> Alcotest.fail "t1 must fail compile");
      Alcotest.(check int) "not yet tripped" 0 (Sched.stats s).Sched.breaker_trips;
      (match Sched.run s "compile:t2" with
      | Error (QE.Compile_failed _) -> ()
      | _ -> Alcotest.fail "t2 must fail compile");
      let st = Sched.stats s in
      Alcotest.(check int) "tripped once" 1 st.Sched.breaker_trips;
      Alcotest.(check string) "open" "open"
        (Sched.breaker_state_name st.Sched.breaker_state);
      (* open breaker: immediate dispatches run bytecode-only, so the
         broken compile path is not exercised *)
      let deg = Sched.submit s "compile:deg" in
      check_ok "served degraded while open" (Sched.await deg);
      Alcotest.(check bool) "degraded while open" true (Sched.was_degraded deg);
      (* past the cooldown, one probe goes through; still broken, so the
         breaker re-opens with a doubled cooldown *)
      Unix.sleepf 0.6;
      (match Sched.run s "compile:probe1" with
      | Error (QE.Compile_failed _) -> ()
      | Ok _ -> Alcotest.fail "probe against a broken path must fail"
      | Error e -> Alcotest.failf "expected Compile_failed, got %s" (QE.to_string e));
      let st = Sched.stats s in
      Alcotest.(check int) "re-opened" 2 st.Sched.breaker_trips;
      Alcotest.(check string) "open again" "open"
        (Sched.breaker_state_name st.Sched.breaker_state);
      (* path repaired: the next probe closes the breaker *)
      h.h_compile_broken <- false;
      Unix.sleepf 1.1;
      let probe = Sched.submit s "compile:probe2" in
      check_ok "successful probe" (Sched.await probe);
      Alcotest.(check bool) "probe ran at full service" false
        (Sched.was_degraded probe);
      Alcotest.(check string) "closed after recovery" "closed"
        (Sched.breaker_state_name (Sched.stats s).Sched.breaker_state);
      (* and stays closed for regular traffic *)
      check_ok "regular traffic" (Sched.run s "compile:after"))

(* ---- retry ----------------------------------------------------------- *)

let test_retry_transient () =
  let h = make_harness () in
  let config =
    { Sched.default_config with Sched.max_retries = 2; retry_backoff = 0.002 }
  in
  with_sched ~config h (fun s ->
      let tk = Sched.submit s "transient:1:a" in
      check_ok "retried to success" (Sched.await tk);
      Alcotest.(check int) "one retry" 1 (Sched.retries tk);
      (* budget exhausted: the transient error surfaces *)
      let tk2 = Sched.submit s "transient:9:b" in
      (match Sched.await tk2 with
      | Error (QE.Trap _) -> ()
      | _ -> Alcotest.fail "budget exhaustion must surface the trap");
      Alcotest.(check int) "both retries burned" 2 (Sched.retries tk2);
      (* non-transient failures never retry *)
      let tk3 = Sched.submit s "fatal:c" in
      (match Sched.await tk3 with
      | Error (QE.Trap _) -> ()
      | _ -> Alcotest.fail "fatal must fail");
      Alcotest.(check int) "no retry for real bugs" 0 (Sched.retries tk3);
      Alcotest.(check int) "retried counter" 3 (Sched.stats s).Sched.retried)

let test_retry_bounded_by_deadline () =
  let h = make_harness () in
  let config =
    { Sched.default_config with Sched.max_retries = 2; retry_backoff = 0.5 }
  in
  with_sched ~config h (fun s ->
      (* backoff would land past the deadline: fail now instead *)
      let tk = Sched.submit ~deadline_seconds:0.1 s "transient:1:d" in
      (match Sched.await tk with
      | Error (QE.Trap _) -> ()
      | _ -> Alcotest.fail "no retry budget within the deadline");
      Alcotest.(check int) "no retries" 0 (Sched.retries tk))

(* ---- deadlines & watchdog -------------------------------------------- *)

let test_watchdog_cancels_overdue () =
  let h = make_harness () in
  let config =
    { Sched.default_config with Sched.deadline_grace = 0.02; watchdog_period = 0.005 }
  in
  with_sched ~config h (fun s ->
      let t0 = Clock.now () in
      let tk = Sched.submit ~deadline_seconds:0.05 s "sleep:5" in
      (match Sched.await tk with
      | Error (QE.Timeout allowance) ->
        Alcotest.(check (float 1e-9)) "allowance echoed" 0.05 allowance
      | Ok _ -> Alcotest.fail "must time out"
      | Error e -> Alcotest.failf "expected Timeout, got %s" (QE.to_string e));
      Alcotest.(check bool) "cancelled promptly, not after 5 s" true
        (Clock.now () -. t0 < 1.0);
      Alcotest.(check int) "watchdog counted" 1 (Sched.stats s).Sched.watchdog_cancels)

let test_deadline_expires_in_queue () =
  let h = make_harness () in
  with_sched h (fun s ->
      let blocker = Sched.submit s "sleep:0.3" in
      Unix.sleepf 0.05;
      let tk = Sched.submit ~deadline_seconds:0.05 s "ok:late" in
      check_rejected "expired in queue" (Sched.await tk);
      check_ok "blocker unaffected" (Sched.await blocker);
      Alcotest.(check int) "expired counted" 1 (Sched.stats s).Sched.expired;
      (* the expired ticket never reached the fake core *)
      Alcotest.(check bool) "never executed" true
        (not (List.mem "ok:late" (served h))))

let test_client_cancel_queued () =
  let h = make_harness () in
  with_sched h (fun s ->
      let blocker = Sched.submit s "sleep:0.2" in
      Unix.sleepf 0.05;
      let tk = Sched.submit s "sleep:0.2" in
      Sched.cancel tk;
      (match Sched.await tk with
      | Error QE.Cancelled -> ()
      | Ok _ -> Alcotest.fail "cancelled ticket must not produce rows"
      | Error e -> Alcotest.failf "expected Cancelled, got %s" (QE.to_string e));
      check_ok "blocker" (Sched.await blocker))

(* ---- shutdown -------------------------------------------------------- *)

let test_shutdown_drains () =
  let h = make_harness () in
  let s = Sched.create ~exec:(harness_exec h) () in
  let blocker = Sched.submit s "sleep:0.15" in
  Unix.sleepf 0.05;
  let q1 = Sched.submit s "ok:s1" in
  let q2 = Sched.submit s "ok:s2" in
  Sched.shutdown s;
  Sched.shutdown s (* idempotent *);
  check_ok "in-flight query finished" (Sched.await blocker);
  check_rejected "queued q1 drained" (Sched.await q1);
  check_rejected "queued q2 drained" (Sched.await q2);
  match Sched.submit s "ok:late" with
  | _ -> Alcotest.fail "submit after shutdown must raise"
  | exception QE.Error (QE.Rejected _) -> ()

(* ---- engine integration ---------------------------------------------- *)

let with_engine ?(n_threads = 2) ?(cost_model = CM.off) ?(sf = 0.005) f =
  let engine = Aeq.Engine.create ~n_threads ~cost_model () in
  Aeq.Engine.load_tpch engine ~scale_factor:sf;
  Fun.protect ~finally:(fun () -> Aeq.Engine.close engine) (fun () -> f engine)

let soak_statements =
  [
    Aeq_workload.Queries.tpch_q 1;
    Aeq_workload.Queries.tpch_q 6;
    "select count(*) as n from lineitem";
  ]

(* satellite: the plan cache and its counters are now mutex-guarded —
   hammer prepare/query from several domains at once *)
let test_engine_concurrent_cache () =
  with_engine (fun engine ->
      let stmts = Array.of_list soak_statements in
      let reference = Array.map (fun sql -> (Aeq.Engine.query engine sql).Driver.rows) stmts in
      let errors = Atomic.make 0 in
      let worker d () =
        for i = 0 to 9 do
          let k = (d + i) mod Array.length stmts in
          if i mod 3 = 0 then Aeq.Engine.prepare engine stmts.(k)
          else
            match Aeq.Engine.query engine stmts.(k) with
            | r -> if r.Driver.rows <> reference.(k) then Atomic.incr errors
            | exception _ -> Atomic.incr errors
        done
      in
      let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
      List.iter Domain.join domains;
      Alcotest.(check int) "all concurrent queries correct" 0 (Atomic.get errors);
      let cs = Aeq.Engine.cache_stats engine in
      Alcotest.(check int) "cache holds the three statements" 3 cs.Aeq.Engine.entries;
      Alcotest.(check bool) "hits counted without tearing" true
        (cs.Aeq.Engine.hits >= 20))

let test_engine_scheduler_deadline () =
  with_engine (fun engine ->
      Aeq.Engine.set_scheduler_config engine
        {
          Sched.default_config with
          Sched.deadline_grace = 0.02;
          watchdog_period = 0.005;
        };
      with_clean_failpoints (fun () ->
          FP.activate "driver.morsel" (FP.Delay 0.005);
          match
            Aeq.Engine.query_concurrent engine ~mode:Driver.Bytecode
              ~deadline_seconds:0.05 "select sum(l_quantity) as s from lineitem"
          with
          | Error (QE.Timeout _) -> ()
          | Ok _ -> Alcotest.fail "must time out"
          | Error e -> Alcotest.failf "expected Timeout, got %s" (QE.to_string e));
      Alcotest.(check bool) "watchdog fired" true
        ((Aeq.Engine.scheduler_stats engine).Sched.watchdog_cancels >= 1);
      (* the engine serves correct answers afterwards *)
      match Aeq.Engine.query_concurrent engine "select count(*) as n from lineitem" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "clean query after timeout: %s" (QE.to_string e))

(* the acceptance scenario: concurrent clients, probabilistic faults on
   the compile and morsel paths; no hangs, no leaks, every response is
   correct rows or a structured error, and the breaker observably trips
   and recovers *)
let test_chaos_soak () =
  with_engine ~cost_model:eager_model (fun engine ->
      Aeq.Engine.set_scheduler_config engine
        {
          Sched.default_config with
          Sched.queue_capacity = 32;
          shed_queue_depth = 24;
          breaker_threshold = 3;
          breaker_cooldown = 0.1;
          breaker_cooldown_max = 0.4;
          max_retries = 2;
          retry_backoff = 0.005;
          seed = 0xC4A05L;
        };
      let stmts = Array.of_list soak_statements in
      let reference = Array.map (fun sql -> (Aeq.Engine.query engine sql).Driver.rows) stmts in
      let arena = Aeq_storage.Catalog.arena (Aeq.Engine.catalog engine) in
      let chunks_baseline = Aeq_mem.Arena.live_chunks arena in
      with_clean_failpoints (fun () ->
          FP.set_seed 0xC4A05L;
          FP.activate "compile.unopt" (FP.Prob_fail 0.3);
          FP.activate "compile.opt" (FP.Prob_fail 0.3);
          FP.activate "driver.morsel" (FP.Prob_fail 0.005);
          let wrong = Atomic.make 0 and errs = Atomic.make 0 in
          let client c () =
            for i = 0 to 11 do
              let k = (c + i) mod Array.length stmts in
              match Aeq.Engine.query_concurrent engine stmts.(k) with
              | Ok r -> if r.Driver.rows <> reference.(k) then Atomic.incr wrong
              | Error (QE.Trap _ | QE.Compile_failed _ | QE.Overloaded _ | QE.Rejected _) ->
                Atomic.incr errs
              | Error e ->
                Alcotest.failf "unexpected error class under chaos: %s" (QE.to_string e)
            done
          in
          let domains = List.init 8 (fun c -> Domain.spawn (client c)) in
          List.iter Domain.join domains;
          Alcotest.(check int) "every Ok response had correct rows" 0 (Atomic.get wrong);
          Alcotest.(check int) "no arena chunk leak across 96 chaotic queries"
            chunks_baseline
            (Aeq_mem.Arena.live_chunks arena);
          let st = Aeq.Engine.scheduler_stats engine in
          Alcotest.(check int) "all submissions accounted for"
            (8 * 12)
            (st.Sched.completed + st.Sched.failed + st.Sched.rejected
            + st.Sched.shed + st.Sched.expired));
      (* breaker trips: force the compile path hard down and burn it
         with fresh statements (fresh text = not yet blacklisted) *)
      with_clean_failpoints (fun () ->
          FP.activate "compile.unopt" FP.Fail;
          FP.activate "compile.opt" FP.Fail;
          let i = ref 0 in
          while
            (Aeq.Engine.scheduler_stats engine).Sched.breaker_trips = 0 && !i < 8
          do
            incr i;
            let sql =
              Printf.sprintf
                "select sum(l_quantity) as s from lineitem where l_orderkey > %d" (- !i)
            in
            match Aeq.Engine.query_concurrent engine sql with
            | Ok _ | Error _ -> ()
          done;
          Alcotest.(check bool) "breaker tripped" true
            ((Aeq.Engine.scheduler_stats engine).Sched.breaker_trips >= 1));
      (* ... and recovers once the path heals: half-open probes succeed
         and close it *)
      let i = ref 0 in
      while
        Sched.breaker_state_name
          (Aeq.Engine.scheduler_stats engine).Sched.breaker_state
        <> "closed"
        && !i < 12
      do
        incr i;
        Unix.sleepf 0.15;
        let sql =
          Printf.sprintf
            "select sum(l_quantity) as s from lineitem where l_partkey > %d" (- !i)
        in
        match Aeq.Engine.query_concurrent engine sql with Ok _ | Error _ -> ()
      done;
      Alcotest.(check string) "breaker recovered" "closed"
        (Sched.breaker_state_name
           (Aeq.Engine.scheduler_stats engine).Sched.breaker_state);
      match Aeq.Engine.query_concurrent engine "select count(*) as n from lineitem" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "healthy after chaos: %s" (QE.to_string e))

let () =
  Alcotest.run "scheduler"
    [
      ( "failpoints",
        [
          Alcotest.test_case "probabilistic" `Quick test_prob_failpoints;
          Alcotest.test_case "probabilistic parse" `Quick test_prob_failpoints_parse;
        ] );
      ( "admission",
        [
          Alcotest.test_case "submit/await" `Quick test_submit_await;
          Alcotest.test_case "priority order" `Quick test_priority_order;
          Alcotest.test_case "reject and shed" `Quick test_overload_reject_and_shed;
          Alcotest.test_case "overload degrades" `Quick test_overload_degrades_to_bytecode;
        ] );
      ( "breaker",
        [ Alcotest.test_case "trip and recover" `Quick test_breaker_trip_and_recover ] );
      ( "retry",
        [
          Alcotest.test_case "transient" `Quick test_retry_transient;
          Alcotest.test_case "deadline bound" `Quick test_retry_bounded_by_deadline;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "watchdog cancel" `Quick test_watchdog_cancels_overdue;
          Alcotest.test_case "queue expiry" `Quick test_deadline_expires_in_queue;
          Alcotest.test_case "client cancel" `Quick test_client_cancel_queued;
        ] );
      ( "lifecycle",
        [ Alcotest.test_case "shutdown drains" `Quick test_shutdown_drains ] );
      ( "engine",
        [
          Alcotest.test_case "concurrent plan cache" `Quick test_engine_concurrent_cache;
          Alcotest.test_case "scheduler deadline" `Quick test_engine_scheduler_deadline;
          Alcotest.test_case "chaos soak" `Slow test_chaos_soak;
        ] );
    ]

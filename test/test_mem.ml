(* Unit and property tests for the chunked arena. *)

module A = Aeq_mem.Arena

let test_roundtrip () =
  let arena = A.create () in
  let alloc = A.allocator arena in
  let p = A.alloc alloc 64 in
  A.set_i64 arena p 0x1122334455667788L;
  Alcotest.(check int64) "i64" 0x1122334455667788L (A.get_i64 arena p);
  A.set_i32 arena (p + 8) 0xDEADBEEFl;
  Alcotest.(check int32) "i32" 0xDEADBEEFl (A.get_i32 arena (p + 8));
  A.set_i16 arena (p + 12) 0xCAFE;
  Alcotest.(check int) "i16" 0xCAFE (A.get_i16 arena (p + 12));
  A.set_i8 arena (p + 14) 0xAB;
  Alcotest.(check int) "i8" 0xAB (A.get_i8 arena (p + 14));
  A.set_f64 arena (p + 16) 3.25;
  Alcotest.(check (float 0.0)) "f64" 3.25 (A.get_f64 arena (p + 16))

let test_zeroed_and_aligned () =
  let arena = A.create () in
  let alloc = A.allocator arena in
  for i = 1 to 100 do
    let p = A.alloc alloc ~align:8 (i * 3) in
    Alcotest.(check bool) "aligned" true ((p land 7) = 0);
    Alcotest.(check int64) "zeroed" 0L (A.get_i64 arena p)
  done

let test_null_never_allocated () =
  let arena = A.create () in
  let alloc = A.allocator arena in
  for _ = 1 to 1000 do
    let p = A.alloc alloc 16 in
    Alcotest.(check bool) "non-null" true (p <> A.null)
  done

let test_large_allocation_dedicated_chunk () =
  let arena = A.create ~chunk_size:1024 () in
  let alloc = A.allocator arena in
  let big = A.alloc alloc (10 * 1024) in
  (* Write across the whole allocation; must stay within one chunk. *)
  for i = 0 to (10 * 1024 / 8) - 1 do
    A.set_i64 arena (big + (8 * i)) (Int64.of_int i)
  done;
  for i = 0 to (10 * 1024 / 8) - 1 do
    Alcotest.(check int64) "big roundtrip" (Int64.of_int i) (A.get_i64 arena (big + (8 * i)))
  done

let test_pointers_stable_across_growth () =
  let arena = A.create ~chunk_size:256 () in
  let alloc = A.allocator arena in
  let first = A.alloc alloc 64 in
  A.set_i64 arena first 99L;
  (* Force many new chunks. *)
  for _ = 1 to 100 do
    ignore (A.alloc alloc 200)
  done;
  Alcotest.(check int64) "old pointer still valid" 99L (A.get_i64 arena first)

let test_blit_and_fill () =
  let arena = A.create () in
  let alloc = A.allocator arena in
  let src = A.alloc alloc 32 and dst = A.alloc alloc 32 in
  A.set_i64 arena src 7L;
  A.set_i64 arena (src + 8) 8L;
  A.blit arena ~src ~dst ~len:16;
  Alcotest.(check int64) "blit word0" 7L (A.get_i64 arena dst);
  Alcotest.(check int64) "blit word1" 8L (A.get_i64 arena (dst + 8));
  A.fill_zero arena dst 16;
  Alcotest.(check int64) "filled" 0L (A.get_i64 arena dst)

let test_concurrent_allocators () =
  (* Several domains allocating concurrently; all pointers must stay
     distinct and usable — the invariant pipeline workers rely on. *)
  let arena = A.create ~chunk_size:4096 () in
  let n_domains = 4 and per = 500 in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            let alloc = A.allocator arena in
            let ptrs = Array.init per (fun i ->
                let p = A.alloc alloc 16 in
                A.set_i64 arena p (Int64.of_int ((d * 1_000_000) + i));
                p)
            in
            ptrs))
  in
  let all = List.concat_map (fun d -> Array.to_list (Domain.join d)) domains in
  let sorted = List.sort_uniq compare all in
  Alcotest.(check int) "all pointers distinct" (n_domains * per) (List.length sorted);
  (* Values written by each domain survived everyone else's growth. *)
  List.iteri
    (fun _ p ->
      let v = A.get_i64 arena p in
      Alcotest.(check bool) "tag intact" true (Int64.compare v 0L >= 0))
    all

let test_lease_release_returns_chunks () =
  let arena = A.create ~chunk_size:1024 () in
  let base_alloc = A.allocator arena in
  ignore (A.alloc base_alloc 64);
  let chunks0 = A.live_chunks arena and resident0 = A.resident_bytes arena in
  let lease = A.lease arena in
  let alloc = A.lease_allocator lease in
  (* spill across several scratch chunks *)
  let ptrs = Array.init 8 (fun i ->
      let p = A.alloc alloc 900 in
      A.set_i64 arena p (Int64.of_int i);
      p)
  in
  Array.iteri
    (fun i p -> Alcotest.(check int64) "scratch intact" (Int64.of_int i) (A.get_i64 arena p))
    ptrs;
  Alcotest.(check bool) "resident grew" true (A.resident_bytes arena > resident0);
  Alcotest.(check bool) "chunks grew" true (A.live_chunks arena > chunks0);
  Alcotest.(check bool) "lease metered" true (A.lease_used lease >= 8 * 900);
  A.release lease;
  Alcotest.(check bool) "lease stale after release" true (A.lease_stale lease);
  Alcotest.(check int) "chunks returned" chunks0 (A.live_chunks arena);
  Alcotest.(check int) "resident back to baseline" resident0 (A.resident_bytes arena);
  A.release lease (* idempotent *)

let test_stale_allocator_raises () =
  let arena = A.create ~chunk_size:1024 () in
  let lease = A.lease arena in
  let alloc = A.lease_allocator lease in
  ignore (A.alloc alloc 64);
  A.release lease;
  Alcotest.check_raises "alloc on released lease" A.Stale_allocator (fun () ->
      ignore (A.alloc alloc 8));
  (* reset stales the base lease's allocators too *)
  let base_alloc = A.allocator arena in
  ignore (A.alloc base_alloc 64);
  A.reset arena;
  Alcotest.check_raises "alloc after reset" A.Stale_allocator (fun () ->
      ignore (A.alloc base_alloc 8));
  (* a fresh allocator on the post-reset arena works *)
  ignore (A.alloc (A.allocator arena) 8)

let test_lease_slot_recycling () =
  let arena = A.create ~chunk_size:1024 () in
  let chunks0 = A.live_chunks arena in
  let peak = ref 0 in
  for _ = 1 to 20 do
    let lease = A.lease arena in
    let alloc = A.lease_allocator lease in
    for _ = 1 to 6 do
      let p = A.alloc alloc 900 in
      A.set_i64 arena p 0x5EEDL
    done;
    peak := max !peak (A.live_chunks arena);
    A.release lease
  done;
  Alcotest.(check int) "no slot leak over cycles" chunks0 (A.live_chunks arena);
  (* recycling means the peak never exceeds one lease's working set
     plus the base, even after 20 cycles *)
  Alcotest.(check bool) "slots recycled, not accreted" true (!peak <= chunks0 + 8);
  (* recycled chunks come back zeroed for the next lease *)
  let lease = A.lease arena in
  let p = A.alloc (A.lease_allocator lease) 900 in
  Alcotest.(check int64) "recycled chunk zeroed" 0L (A.get_i64 arena p);
  A.release lease

let test_concurrent_leases_isolated () =
  let arena = A.create ~chunk_size:4096 () in
  let chunks0 = A.live_chunks arena in
  let n_domains = 4 and per = 300 in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            let lease = A.lease arena in
            let alloc = A.lease_allocator lease in
            let ok = ref true in
            let ptrs = Array.init per (fun i ->
                let p = A.alloc alloc 32 in
                A.set_i64 arena p (Int64.of_int ((d * 1_000_000) + i));
                p)
            in
            Array.iteri
              (fun i p ->
                if A.get_i64 arena p <> Int64.of_int ((d * 1_000_000) + i) then
                  ok := false)
              ptrs;
            A.release lease;
            !ok))
  in
  List.iteri
    (fun d dom ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d saw only its own writes" d)
        true (Domain.join dom))
    domains;
  Alcotest.(check int) "all leases returned" chunks0 (A.live_chunks arena)

let test_reset_with_live_lease_raises () =
  let arena = A.create ~chunk_size:1024 () in
  let lease = A.lease arena in
  ignore (A.alloc (A.lease_allocator lease) 64);
  Alcotest.(check int) "one live lease" 1 (A.live_leases arena);
  (match A.reset arena with
  | () -> Alcotest.fail "reset must refuse while a scratch lease is live"
  | exception Invalid_argument _ -> ());
  (* the refused reset must not have disturbed the lease *)
  ignore (A.alloc (A.lease_allocator lease) 64);
  A.release lease;
  Alcotest.(check int) "lease accounted" 0 (A.live_leases arena);
  A.reset arena;
  (* post-reset arena is clean and usable *)
  ignore (A.alloc (A.allocator arena) 8);
  Alcotest.(check (list string)) "coherent after reset" [] (A.check arena)

let test_scratch_cap_rejects () =
  let arena = A.create ~chunk_size:1024 () in
  (* base-lease allocations are not metered by the cap *)
  A.set_scratch_limit arena ~block_seconds:0.01 (Some 4096);
  ignore (A.alloc (A.allocator arena) 2048);
  let lease = A.lease arena in
  let alloc = A.lease_allocator lease in
  let chunks0 = A.live_chunks arena and resident0 = A.resident_bytes arena in
  (* fill the cap, then one grab over it must fail structurally *)
  ignore (A.alloc alloc 900);
  ignore (A.alloc alloc 900);
  ignore (A.alloc alloc 900);
  ignore (A.alloc alloc 900);
  (match A.alloc alloc 900 with
  | _ -> Alcotest.fail "allocation over the cap must fail"
  | exception A.Scratch_limit_exceeded { limit_bytes; _ } ->
    Alcotest.(check int) "limit reported" 4096 limit_bytes);
  Alcotest.(check bool) "wait counted" true (A.backpressure_waits arena >= 1);
  Alcotest.(check bool) "reject counted" true (A.limit_rejections arena >= 1);
  Alcotest.(check bool) "under pressure" true (A.scratch_under_pressure arena);
  Alcotest.(check (list string)) "coherent at the cap" [] (A.check arena);
  (* the failed grab took nothing: release restores the baseline *)
  A.release lease;
  Alcotest.(check int) "chunks back" chunks0 (A.live_chunks arena);
  Alcotest.(check int) "resident back" resident0 (A.resident_bytes arena);
  Alcotest.(check int) "scratch fully drained" 0 (A.scratch_resident_bytes arena)

let test_scratch_cap_backpressure_unblocks () =
  (* A waiter at the cap must proceed once a concurrent lease releases
     within the deadline — the backpressure path, not the reject path. *)
  let arena = A.create ~chunk_size:1024 () in
  A.set_scratch_limit arena ~block_seconds:5.0 (Some 2048);
  let hog = A.lease arena in
  ignore (A.alloc (A.lease_allocator hog) 900);
  ignore (A.alloc (A.lease_allocator hog) 900);
  let release_started = Atomic.make false in
  let releaser =
    Domain.spawn (fun () ->
        Atomic.set release_started true;
        Unix.sleepf 0.02;
        A.release hog)
  in
  while not (Atomic.get release_started) do
    Domain.cpu_relax ()
  done;
  let lease = A.lease arena in
  (* blocks at the cap until the hog releases, then succeeds *)
  let p = A.alloc (A.lease_allocator lease) 900 in
  Alcotest.(check bool) "allocated after unblock" true (p <> A.null);
  Alcotest.(check bool) "wait was counted" true (A.backpressure_waits arena >= 1);
  Alcotest.(check int) "no rejection" 0 (A.limit_rejections arena);
  Domain.join releaser;
  A.release lease;
  Alcotest.(check (list string)) "coherent after backpressure" [] (A.check arena)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"arena i64 roundtrip (random offsets)" ~count:200
    QCheck.(list int64)
    (fun xs ->
      let arena = A.create () in
      let alloc = A.allocator arena in
      let cells = List.map (fun v ->
          let p = A.alloc alloc 8 in
          A.set_i64 arena p v;
          (p, v))
          xs
      in
      List.for_all (fun (p, v) -> Int64.equal (A.get_i64 arena p) v) cells)

let () =
  Alcotest.run "mem"
    [
      ( "arena",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "zeroed+aligned" `Quick test_zeroed_and_aligned;
          Alcotest.test_case "null" `Quick test_null_never_allocated;
          Alcotest.test_case "large alloc" `Quick test_large_allocation_dedicated_chunk;
          Alcotest.test_case "stable pointers" `Quick test_pointers_stable_across_growth;
          Alcotest.test_case "blit/fill" `Quick test_blit_and_fill;
          Alcotest.test_case "concurrent allocators" `Quick test_concurrent_allocators;
          Alcotest.test_case "lease release returns chunks" `Quick
            test_lease_release_returns_chunks;
          Alcotest.test_case "stale allocator raises" `Quick test_stale_allocator_raises;
          Alcotest.test_case "lease slot recycling" `Quick test_lease_slot_recycling;
          Alcotest.test_case "concurrent leases isolated" `Quick
            test_concurrent_leases_isolated;
          Alcotest.test_case "reset with live lease raises" `Quick
            test_reset_with_live_lease_raises;
          Alcotest.test_case "scratch cap rejects" `Quick test_scratch_cap_rejects;
          Alcotest.test_case "scratch cap backpressure unblocks" `Quick
            test_scratch_cap_backpressure_unblocks;
          QCheck_alcotest.to_alcotest prop_roundtrip_random;
        ] );
    ]

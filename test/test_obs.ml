(* Tests for the observability subsystem: the JSON codec, the metrics
   registry (including its Prometheus exposition and multi-domain
   safety), lifecycle spans, the adaptive decision log, the Chrome
   trace exporter, and the engine-level reset semantics. *)

module M = Aeq_obs.Metrics
module J = Aeq_obs.Json
module Span = Aeq_obs.Span
module DL = Aeq_obs.Decision_log
module Control = Aeq_obs.Control
module CM = Aeq_backend.Cost_model
module Driver = Aeq_exec.Driver

(* ---- JSON codec --------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd\tü");
        ("n", J.Num 3.25);
        ("i", J.Num 42.0);
        ("neg", J.Num (-17.0));
        ("b", J.Bool true);
        ("z", J.Null);
        ("arr", J.Arr [ J.Num 1.0; J.Str ""; J.Obj []; J.Arr [] ]);
      ]
  in
  match J.parse (J.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error m -> Alcotest.fail ("parse failed: " ^ m)

let test_json_parse_rejects_garbage () =
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.fail ("accepted garbage: " ^ s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_unicode_escape () =
  match J.parse {|"Aé"|} with
  | Ok (J.Str s) -> Alcotest.(check string) "decoded" "A\xc3\xa9" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error m -> Alcotest.fail m

let test_json_rejects_nonfinite () =
  Alcotest.check_raises "nan" (Invalid_argument "Json.to_string: non-finite number")
    (fun () -> ignore (J.to_string (J.Num Float.nan)))

(* ---- metrics registry --------------------------------------------- *)

let test_counter_gauge_histogram () =
  let r = M.create () in
  let c = M.counter ~registry:r "c_total" in
  M.inc c;
  M.add c 4;
  Alcotest.(check int) "counter" 5 (M.value c);
  (* get-or-create: same identity, same cell *)
  M.inc (M.counter ~registry:r "c_total");
  Alcotest.(check int) "shared" 6 (M.value c);
  (* distinct labels are distinct series *)
  let c2 = M.counter ~registry:r ~labels:[ ("k", "v") ] "c_total" in
  M.inc c2;
  Alcotest.(check int) "unlabelled untouched" 6 (M.value c);
  let g = M.gauge ~registry:r "g" in
  M.set g 42;
  Alcotest.(check int) "gauge" 42 (M.gauge_value g);
  let h = M.histogram ~registry:r ~buckets:[| 0.1; 1.0 |] "h_seconds" in
  M.observe h 0.0625;
  M.observe h 0.5;
  M.observe h 5.0;
  let samples = M.snapshot ~registry:r () in
  let hist = List.find (fun s -> s.M.s_name = "h_seconds") samples in
  (match hist.M.s_value with
  | M.Histogram { buckets; sum; count } ->
    Alcotest.(check int) "count" 3 count;
    Alcotest.(check (float 1e-9)) "sum" 5.5625 sum;
    Alcotest.(check int) "bucket count" 3 (Array.length buckets);
    Alcotest.(check int) "cumulative le=0.1" 1 (snd buckets.(0));
    Alcotest.(check int) "cumulative le=1" 2 (snd buckets.(1));
    Alcotest.(check int) "cumulative +Inf" 3 (snd buckets.(2))
  | _ -> Alcotest.fail "expected a histogram sample")

let test_prometheus_exposition_golden () =
  let r = M.create () in
  let c =
    M.counter ~registry:r ~help:"Requests served."
      ~labels:[ ("mode", "a\"b\\c\nd") ]
      "req_total"
  in
  M.add c 3;
  M.set (M.gauge ~registry:r ~help:"Queue depth." "depth") 7;
  let h = M.histogram ~registry:r ~help:"Latency." ~buckets:[| 0.1; 1.0 |] "lat_seconds" in
  M.observe h 0.0625;
  M.observe h 0.5;
  M.observe h 5.0;
  let expected =
    String.concat ""
      [
        "# HELP depth Queue depth.\n";
        "# TYPE depth gauge\n";
        "depth 7\n";
        "# HELP lat_seconds Latency.\n";
        "# TYPE lat_seconds histogram\n";
        "lat_seconds_bucket{le=\"0.1\"} 1\n";
        "lat_seconds_bucket{le=\"1\"} 2\n";
        "lat_seconds_bucket{le=\"+Inf\"} 3\n";
        "lat_seconds_sum 5.5625\n";
        "lat_seconds_count 3\n";
        "# HELP req_total Requests served.\n";
        "# TYPE req_total counter\n";
        "req_total{mode=\"a\\\"b\\\\c\\nd\"} 3\n";
      ]
  in
  Alcotest.(check string) "exposition" expected (M.render_prometheus ~registry:r ())

let test_metrics_multi_domain_hammer () =
  (* satellite (a): telemetry bumped from worker domains must not lose
     updates — 4 domains hammer one counter and one histogram *)
  let r = M.create () in
  let c = M.counter ~registry:r "hammer_total" in
  let h = M.histogram ~registry:r ~buckets:[| 1.0 |] "hammer_seconds" in
  let per_domain = 50_000 in
  let worker () =
    for _ = 1 to per_domain do
      M.inc c;
      M.observe h 0.5
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Alcotest.(check int) "counter" (4 * per_domain) (M.value c);
  match
    (List.find (fun s -> s.M.s_name = "hammer_seconds") (M.snapshot ~registry:r ()))
      .M.s_value
  with
  | M.Histogram { buckets; sum; count } ->
    Alcotest.(check int) "histogram count" (4 * per_domain) count;
    Alcotest.(check (float 1e-6)) "histogram sum" (0.5 *. float_of_int (4 * per_domain)) sum;
    Alcotest.(check int) "first bucket" (4 * per_domain) (snd buckets.(0))
  | _ -> Alcotest.fail "expected a histogram sample"

let test_metrics_reset () =
  let r = M.create () in
  let c = M.counter ~registry:r "c_total" in
  M.add c 9;
  let g = M.gauge ~registry:r "g" in
  M.set g 5;
  M.gauge_fn ~registry:r "g_fn" (fun () -> 11);
  let h = M.histogram ~registry:r ~buckets:[| 1.0 |] "h_seconds" in
  M.observe h 0.5;
  M.reset ~registry:r ();
  Alcotest.(check int) "counter zeroed" 0 (M.value c);
  Alcotest.(check int) "gauge kept" 5 (M.gauge_value g);
  let samples = M.snapshot ~registry:r () in
  (match (List.find (fun s -> s.M.s_name = "g_fn") samples).M.s_value with
  | M.Gauge v -> Alcotest.(check int) "callback gauge still registered" 11 v
  | _ -> Alcotest.fail "expected gauge");
  match (List.find (fun s -> s.M.s_name = "h_seconds") samples).M.s_value with
  | M.Histogram { sum; count; _ } ->
    Alcotest.(check int) "histogram count zeroed" 0 count;
    Alcotest.(check (float 0.0)) "histogram sum zeroed" 0.0 sum
  | _ -> Alcotest.fail "expected histogram"

(* ---- spans -------------------------------------------------------- *)

let test_spans_record_and_drop () =
  Control.with_enabled true (fun () ->
      Span.set_capacity 16;
      Span.clear ();
      for i = 1 to 40 do
        Span.record "s" ~t0:(float_of_int i) ~t1:(float_of_int i +. 0.5)
      done;
      let spans = Span.snapshot () in
      Alcotest.(check int) "ring keeps capacity" 16 (List.length spans);
      Alcotest.(check int) "drops counted" 24 (Span.dropped ());
      (* early spans are the retained ones, sorted by start *)
      (match spans with
      | first :: _ -> Alcotest.(check (float 0.0)) "earliest kept" 1.0 first.Span.sp_t0
      | [] -> Alcotest.fail "no spans");
      Span.set_capacity 8192;
      Span.clear ())

let test_spans_disabled_noop () =
  Control.with_enabled false (fun () ->
      Span.clear ();
      let r = Span.with_span "x" (fun () -> 41 + 1) in
      Alcotest.(check int) "value passes through" 42 r;
      Span.record "x" ~t0:0.0 ~t1:1.0;
      Alcotest.(check int) "nothing recorded" 0 (List.length (Span.snapshot ())))

let test_spans_record_on_raise () =
  Control.with_enabled true (fun () ->
      Span.clear ();
      (try Span.with_span "fails" (fun () -> failwith "boom") with Failure _ -> ());
      match Span.snapshot () with
      | [ sp ] ->
        Alcotest.(check string) "span name" "fails" sp.Span.sp_name;
        Alcotest.(check bool) "positive duration" true (sp.Span.sp_t1 >= sp.Span.sp_t0);
        Span.clear ()
      | l -> Alcotest.fail (Printf.sprintf "expected 1 span, got %d" (List.length l)))

(* ---- decision log ------------------------------------------------- *)

let entry_at t =
  {
    DL.d_time = t;
    d_pipeline = 0;
    d_mode = "bytecode";
    d_processed = 100;
    d_remaining = 900;
    d_rate = 1e6;
    d_stay_seconds = 0.9;
    d_candidates = [];
    d_action = DL.Stay;
    d_reason = "test";
  }

let test_decision_log_bounded () =
  Control.with_enabled true (fun () ->
      DL.clear ();
      DL.set_capacity 16;
      for i = 1 to 40 do
        DL.log (entry_at (float_of_int i))
      done;
      Alcotest.(check int) "bounded" 16 (List.length (DL.snapshot ()));
      Alcotest.(check int) "drops counted" 24 (DL.dropped ());
      DL.clear ();
      DL.set_capacity 8192);
  Control.with_enabled false (fun () ->
      DL.log (entry_at 0.0);
      Alcotest.(check int) "disabled: no entry" 0 (List.length (DL.snapshot ())))

(* The Fig. 7 evaluation with its working shown: stay-projection and
   candidate totals must follow the paper's formulas, and the decision
   must pick the cheapest projection. *)
let test_evaluate_shows_its_working () =
  let model = CM.default in
  let remaining = 10_000_000 and rate = 1e6 and w = 4 and n_instrs = 1000 in
  let ev =
    Aeq_exec.Adaptive.evaluate ~model ~current_mode:CM.Bytecode ~n_instrs ~remaining
      ~rate ~n_threads:w ()
  in
  let fw = float_of_int w in
  Alcotest.(check (float 1e-9))
    "stay projection"
    (float_of_int remaining /. rate /. fw)
    ev.Aeq_exec.Adaptive.ev_stay_seconds;
  let check_candidate mode =
    let c =
      List.find
        (fun c -> c.Aeq_exec.Adaptive.cand_mode = mode)
        ev.Aeq_exec.Adaptive.ev_candidates
    in
    let compile = CM.compile_time model mode n_instrs in
    let during = (fw -. 1.0) *. rate *. compile in
    let leftover = Stdlib.max (float_of_int remaining -. during) 0.0 in
    let cand_rate = rate *. CM.speedup model mode /. CM.speedup model CM.Bytecode in
    let expected = compile +. (leftover /. cand_rate /. fw) in
    Alcotest.(check (float 1e-9))
      (CM.mode_name mode ^ " projection")
      expected c.Aeq_exec.Adaptive.cand_seconds;
    Alcotest.(check bool)
      (CM.mode_name mode ^ " not blacklisted")
      false c.Aeq_exec.Adaptive.cand_blacklisted;
    c
  in
  let cu = check_candidate CM.Unopt in
  let co = check_candidate CM.Opt in
  (* 10 s of bytecode work: some compiled candidate must win, and the
     decision must be the argmin of the projections *)
  match ev.Aeq_exec.Adaptive.ev_decision with
  | Aeq_exec.Adaptive.Compile m ->
    let best =
      if co.Aeq_exec.Adaptive.cand_seconds <= cu.Aeq_exec.Adaptive.cand_seconds then CM.Opt
      else CM.Unopt
    in
    Alcotest.(check string) "argmin chosen" (CM.mode_name best) (CM.mode_name m)
  | Aeq_exec.Adaptive.Do_nothing -> Alcotest.fail "10 s of work must trigger compilation"

let test_decision_log_records_promotion () =
  (* satellite (d): a forced bytecode→compiled promotion must land in
     the decision log with the extrapolation that justified it *)
  Control.with_enabled true (fun () ->
      DL.clear ();
      Span.clear ();
      (* huge claimed speedups, real (unsimulated) compile latencies:
         the first evaluation with a rate sample promotes *)
      let cost_model = CM.with_speedups CM.off ~unopt:50.0 ~opt:100.0 in
      let e = Aeq.Engine.create ~n_threads:2 ~cost_model () in
      Aeq.Engine.load_tpch e ~scale_factor:0.01;
      let _r =
        Aeq.Engine.query e ~mode:Driver.Adaptive "select count(*) from lineitem"
      in
      let entries = DL.snapshot () in
      Alcotest.(check bool) "controller evaluations logged" true (entries <> []);
      let promotions =
        List.filter
          (fun d -> match d.DL.d_action with DL.Promote _ -> true | DL.Stay -> false)
          entries
      in
      Alcotest.(check bool) "a promotion was logged" true (promotions <> []);
      List.iter
        (fun d ->
          Alcotest.(check string) "reason" "extrapolated win" d.DL.d_reason;
          Alcotest.(check bool) "had a rate sample" true (d.DL.d_rate > 0.0);
          let target =
            match d.DL.d_action with DL.Promote m -> m | DL.Stay -> assert false
          in
          let cand =
            List.find (fun c -> c.DL.c_mode = target) d.DL.d_candidates
          in
          (* the log must show the win it claims: the chosen candidate's
             projected total beats staying put and every rival *)
          Alcotest.(check bool)
            "candidate beats staying" true
            (cand.DL.c_total_seconds < d.DL.d_stay_seconds);
          List.iter
            (fun c ->
              Alcotest.(check bool) "candidate is argmin" true
                (cand.DL.c_total_seconds <= c.DL.c_total_seconds))
            d.DL.d_candidates)
        promotions;
      DL.clear ();
      Span.clear ();
      Aeq.Engine.close e)

(* ---- Chrome trace export ------------------------------------------ *)

let test_chrome_trace_roundtrip () =
  Control.with_enabled true (fun () ->
      DL.clear ();
      Span.clear ();
      let cost_model = CM.with_speedups CM.off ~unopt:50.0 ~opt:100.0 in
      let e = Aeq.Engine.create ~n_threads:2 ~cost_model () in
      Aeq.Engine.load_tpch e ~scale_factor:0.01;
      let r =
        Aeq.Engine.query e ~mode:Driver.Adaptive ~collect_trace:true
          "select count(*) from lineitem"
      in
      let doc = Aeq_exec.Trace_export.chrome_json ?trace:r.Driver.trace () in
      (match J.parse doc with
      | Error m -> Alcotest.fail ("trace does not parse: " ^ m)
      | Ok j ->
        let events =
          match J.member "traceEvents" j with
          | Some arr -> J.to_list arr
          | None -> []
        in
        Alcotest.(check bool) "has events" true (events <> []);
        let cat ev = Option.bind (J.member "cat" ev) J.to_str in
        let has c = List.exists (fun ev -> cat ev = Some c) events in
        Alcotest.(check bool) "morsel events" true (has "morsel");
        Alcotest.(check bool) "lifecycle spans" true (has "span");
        Alcotest.(check bool) "adaptive decisions" true (has "adaptive");
        Alcotest.(check bool) "compile bursts" true (has "compile");
        (* timestamps are rebased: all non-negative *)
        List.iter
          (fun ev ->
            match Option.bind (J.member "ts" ev) J.to_float with
            | Some ts -> if ts < -1e-6 then Alcotest.fail "negative timestamp"
            | None -> Alcotest.fail "event without ts")
          events);
      DL.clear ();
      Span.clear ();
      Aeq.Engine.close e)

(* ---- execution trace bounds (satellite b) ------------------------- *)

let test_trace_capped_with_dropped_counter () =
  let tr = Aeq_exec.Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    let t = float_of_int i in
    Aeq_exec.Trace.record tr ~pipeline:0 ~tid:0 ~t0:t ~t1:(t +. 0.5)
      (Aeq_exec.Trace.Ev_morsel CM.Bytecode)
  done;
  Alcotest.(check int) "kept" 4 (Aeq_exec.Trace.n_events tr);
  Alcotest.(check int) "dropped" 6 (Aeq_exec.Trace.dropped tr);
  let evs = Aeq_exec.Trace.events tr in
  Alcotest.(check int) "events list capped" 4 (List.length evs);
  let sorted = List.sort (fun a b -> compare a.Aeq_exec.Trace.t0 b.Aeq_exec.Trace.t0) evs in
  Alcotest.(check bool) "events come out sorted" true (evs = sorted)

(* ---- engine-level reset (satellite c) ----------------------------- *)

let test_engine_reset_stats () =
  Control.with_enabled true (fun () ->
      M.reset ();
      let e = Aeq.Engine.create ~n_threads:2 ~cost_model:CM.off () in
      Aeq.Engine.load_tpch e ~scale_factor:0.002;
      let sql = "select count(*) from region" in
      ignore (Aeq.Engine.query e sql);
      ignore (Aeq.Engine.query e sql);
      let count_queries () =
        List.fold_left
          (fun acc s ->
            match (s.M.s_name, s.M.s_value) with
            | "aeq_queries_total", M.Counter v -> acc + v
            | _ -> acc)
          0
          (Aeq.Engine.metrics ())
      in
      Alcotest.(check int) "queries counted" 2 (count_queries ());
      Alcotest.(check int) "cache hit counted" 1 (Aeq.Engine.cache_stats e).Aeq.Engine.hits;
      Aeq.Engine.reset_stats e;
      Alcotest.(check int) "query counter zeroed" 0 (count_queries ());
      let cs = Aeq.Engine.cache_stats e in
      Alcotest.(check int) "cache hits zeroed" 0 cs.Aeq.Engine.hits;
      Alcotest.(check int) "cache misses zeroed" 0 cs.Aeq.Engine.misses;
      (* the cache itself survives the reset: re-running is still a hit *)
      ignore (Aeq.Engine.query e sql);
      Alcotest.(check int) "entry survived reset" 1 (Aeq.Engine.cache_stats e).Aeq.Engine.hits;
      Aeq.Engine.close e)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_parse_rejects_garbage;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
          Alcotest.test_case "rejects non-finite" `Quick test_json_rejects_nonfinite;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter/gauge/histogram" `Quick test_counter_gauge_histogram;
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_exposition_golden;
          Alcotest.test_case "multi-domain hammer" `Quick test_metrics_multi_domain_hammer;
          Alcotest.test_case "reset" `Quick test_metrics_reset;
        ] );
      ( "spans",
        [
          Alcotest.test_case "record and drop" `Quick test_spans_record_and_drop;
          Alcotest.test_case "disabled no-op" `Quick test_spans_disabled_noop;
          Alcotest.test_case "records on raise" `Quick test_spans_record_on_raise;
        ] );
      ( "decision-log",
        [
          Alcotest.test_case "bounded" `Quick test_decision_log_bounded;
          Alcotest.test_case "evaluate shows its working" `Quick
            test_evaluate_shows_its_working;
          Alcotest.test_case "records promotion" `Quick test_decision_log_records_promotion;
        ] );
      ( "chrome-trace",
        [ Alcotest.test_case "roundtrip" `Quick test_chrome_trace_roundtrip ] );
      ( "trace-bounds",
        [
          Alcotest.test_case "capped with dropped counter" `Quick
            test_trace_capped_with_dropped_counter;
        ] );
      ( "engine",
        [ Alcotest.test_case "reset_stats" `Quick test_engine_reset_stats ] );
    ]

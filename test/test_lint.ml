(* Unit tests for the static concurrency lint (Aeq_lint.Lint): each
   rule flags its seeded violation and passes the disciplined
   equivalent, [@lint.allow] waives one subtree, syntax errors degrade
   to a "parse" finding, and the DESIGN.md table extractor feeds the
   registry-coverage cross-check. *)

module L = Aeq_lint.Lint

let scan ?rules src = L.lint_source ?rules ~filename:"test.ml" src
let rules_of sc = List.map (fun f -> f.L.f_rule) sc.L.sc_findings

let check_rules msg expected sc =
  Alcotest.(check (list string)) msg expected (rules_of sc)

let test_raw_mutex () =
  check_rules "Mutex.lock flagged" [ "raw-mutex"; "raw-mutex" ]
    (scan "let f m = Mutex.lock m; Mutex.unlock m");
  check_rules "Mutex.create flagged" [ "raw-mutex" ]
    (scan "let m = Mutex.create ()");
  check_rules "Condition.wait flagged" [ "raw-mutex" ]
    (scan "let f c m = Condition.wait c m");
  check_rules "Aeq_race.Lock is the disciplined spelling" []
    (scan
       "let l = Aeq_race.Lock.create \"x\"\n\
        let f () = Aeq_race.Lock.with_ l (fun () -> ())\n\
        let g c = Aeq_race.Lock.wait c l");
  (* the rule list is honoured: same source, rule off *)
  check_rules "rule selection" []
    (scan ~rules:[ "sleep-in-exec" ] "let m = Mutex.create ()")

let test_yield_in_lock () =
  check_rules "yield inside with_ flagged" [ "yield-in-lock" ]
    (scan
       "let f l = Aeq_race.Lock.with_ l (fun () -> Aeq_util.Yieldpoint.yield \
        ())");
  check_rules "yield inside with_lock helper flagged" [ "yield-in-lock" ]
    (scan "let f t = with_lock t (fun () -> Yieldpoint.yield ())");
  check_rules "yield outside a critical section is fine" []
    (scan "let f () = Aeq_util.Yieldpoint.yield ()");
  check_rules "yield after the critical section is fine" []
    (scan
       "let f l = Aeq_race.Lock.with_ l (fun () -> ()); Yieldpoint.yield ()")

let test_sleep_in_exec () =
  check_rules "Unix.sleepf flagged" [ "sleep-in-exec" ]
    (scan "let f () = Unix.sleepf 0.01");
  check_rules "Unix.sleep flagged" [ "sleep-in-exec" ]
    (scan "let f () = Unix.sleep 1");
  check_rules "Waiter.wait is the disciplined spelling" []
    (scan "let f w = ignore (Aeq_util.Waiter.wait w 0.01)")

let test_failpoint_literal () =
  let sc = scan "let f () = Aeq_util.Failpoints.hit \"compile.opt\"" in
  check_rules "literal site is clean" [] sc;
  Alcotest.(check (list string))
    "literal site collected" [ "compile.opt" ]
    (List.map fst sc.L.sc_hit_sites);
  check_rules "computed site flagged" [ "failpoint-literal" ]
    (scan "let f m = Aeq_util.Failpoints.hit (site_of m)");
  check_rules "bare reference flagged" [ "failpoint-literal" ]
    (scan "let f = List.iter Aeq_util.Failpoints.hit")

let test_declare_literal () =
  let sc =
    scan "let () = Aeq_race.declare \"x.y\" (Aeq_race.Lock \"x.lock\")"
  in
  check_rules "literal declare is clean" [] sc;
  Alcotest.(check (list string))
    "declare collected" [ "x.y" ]
    (List.map fst sc.L.sc_declares);
  check_rules "computed declare flagged" [ "declare-literal" ]
    (scan "let f n = Aeq_race.declare (prefix ^ n) Aeq_race.Atomic")

let test_waiver () =
  check_rules "lint.allow waives the annotated subtree" []
    (scan "let m = (Mutex.create () [@lint.allow \"raw-mutex\"])");
  check_rules "waiver is rule-specific" [ "raw-mutex" ]
    (scan "let m = (Mutex.create () [@lint.allow \"sleep-in-exec\"])");
  check_rules "waiver does not leak past its subtree" [ "raw-mutex" ]
    (scan
       "let a = (Mutex.create () [@lint.allow \"raw-mutex\"])\n\
        let b = Mutex.create ()")

let test_parse_error () =
  let sc = scan "let f = (" in
  check_rules "syntax error degrades to one parse finding" [ "parse" ] sc;
  Alcotest.(check bool) "message mentions syntax" true
    (match sc.L.sc_findings with
    | [ f ] ->
      String.length f.L.f_msg >= 6 && String.sub f.L.f_msg 0 6 = "syntax"
    | _ -> false)

let test_design_table () =
  let md =
    "# Design\n\n\
     ## Concurrency analysis: locking discipline\n\n\
     | Location | Guard | Checked by |\n\
     |---|---|---|\n\
     | `a.one` | lock `a.lock` | both |\n\
     | `b.two` | atomic | detector |\n\n\
     ## Next section\n\n\
     | `not.me` | spurious | table |\n"
  in
  Alcotest.(check (list string))
    "names from the discipline table only" [ "a.one"; "b.two" ]
    (L.design_table_names md);
  Alcotest.(check (list string))
    "no table, no names" []
    (L.design_table_names "# Design\n\nprose only\n")

(* the shipped tree must stay clean under the same per-file scoping the
   CLI applies — a cheap in-process mirror of CI's `aeq_lint --root .` *)
let test_shipped_tree_is_clean () =
  (* cwd is _build/default/test under `dune runtest`, the repo root
     when run by hand *)
  let root = if Sys.file_exists "lib" then "lib" else "../lib" in
  if not (Sys.file_exists root) then Alcotest.skip ()
  else begin
    let read path =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let rec walk dir =
      Array.fold_left
        (fun acc name ->
          let path = Filename.concat dir name in
          if Sys.is_directory path then acc @ walk path
          else if Filename.check_suffix name ".ml" then acc @ [ path ]
          else acc)
        []
        (Sys.readdir dir)
    in
    let under sub path =
      let needle = "/" ^ sub ^ "/" in
      let l = String.length needle and n = String.length path in
      let rec at i =
        i + l <= n && (String.sub path i l = needle || at (i + 1))
      in
      at 0
    in
    List.iter
      (fun path ->
        let rules =
          if under "race" path || under "sim" path then
            [ "failpoint-literal"; "declare-literal" ]
          else if under "exec" path || under "mem" path then L.all_rules
          else List.filter (fun r -> r <> "sleep-in-exec") L.all_rules
        in
        let sc = L.lint_source ~rules ~filename:path (read path) in
        List.iter
          (fun f -> Alcotest.failf "%s" (L.finding_to_string f))
          sc.L.sc_findings)
      (walk root)
  end

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "raw-mutex" `Quick test_raw_mutex;
          Alcotest.test_case "yield-in-lock" `Quick test_yield_in_lock;
          Alcotest.test_case "sleep-in-exec" `Quick test_sleep_in_exec;
          Alcotest.test_case "failpoint-literal" `Quick test_failpoint_literal;
          Alcotest.test_case "declare-literal" `Quick test_declare_literal;
          Alcotest.test_case "waiver" `Quick test_waiver;
          Alcotest.test_case "parse error" `Quick test_parse_error;
        ] );
      ( "integration",
        [
          Alcotest.test_case "design table" `Quick test_design_table;
          Alcotest.test_case "shipped tree clean" `Quick
            test_shipped_tree_is_clean;
        ] );
    ]

(* Tests for the execution framework: worker pool, progress tracking,
   the Fig. 7 extrapolation model, morsel accounting across mode
   switches ("no work lost"), and the plan-cache mode memory. *)

module CM = Aeq_backend.Cost_model
module Driver = Aeq_exec.Driver

(* ---- pool --------------------------------------------------------- *)

(* The pool is cooperative: workers join an open job while the caller
   (tid 0) is still running it. To assert that every tid participates
   we gate the job body on a barrier — no participant can leave until
   all [n] have joined, so all [n] must join. *)
let barrier n =
  let arrived = Atomic.make 0 in
  fun () ->
    Atomic.incr arrived;
    while Atomic.get arrived < n do
      Domain.cpu_relax ()
    done

let test_pool_runs_all_tids () =
  let pool = Aeq_exec.Pool.create ~n_threads:4 () in
  let seen = Array.make 4 0 in
  for _ = 1 to 2 do
    let gate = barrier 4 in
    Aeq_exec.Pool.run pool (fun ~tid ->
        gate ();
        seen.(tid) <- seen.(tid) + 1)
  done;
  Alcotest.(check (array int)) "each tid ran twice" [| 2; 2; 2; 2 |] seen;
  Aeq_exec.Pool.shutdown pool

let test_pool_propagates_exceptions () =
  let pool = Aeq_exec.Pool.create ~n_threads:3 () in
  let gate = barrier 3 in
  (match
     Aeq_exec.Pool.run pool (fun ~tid ->
         gate ();
         if tid = 2 then failwith "boom")
   with
  | () -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  (* pool remains usable afterwards *)
  let count = Atomic.make 0 in
  let gate = barrier 3 in
  Aeq_exec.Pool.run pool (fun ~tid ->
      ignore tid;
      gate ();
      Atomic.incr count);
  Alcotest.(check int) "usable after error" 3 (Atomic.get count);
  Aeq_exec.Pool.shutdown pool

let test_pool_main_thread_exception () =
  (* thread 0 is the caller: its exception must propagate like any
     worker's, and the pool must survive *)
  let pool = Aeq_exec.Pool.create ~n_threads:3 () in
  (match Aeq_exec.Pool.run pool (fun ~tid -> if tid = 0 then failwith "main-boom") with
  | () -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "message" "main-boom" m);
  let count = Atomic.make 0 in
  let gate = barrier 3 in
  Aeq_exec.Pool.run pool (fun ~tid ->
      ignore tid;
      gate ();
      Atomic.incr count);
  Alcotest.(check int) "usable after error" 3 (Atomic.get count);
  Aeq_exec.Pool.shutdown pool

let test_pool_single_thread_inline () =
  let pool = Aeq_exec.Pool.create ~n_threads:1 () in
  let ran = ref false in
  Aeq_exec.Pool.run pool (fun ~tid ->
      Alcotest.(check int) "tid 0" 0 tid;
      ran := true);
  Alcotest.(check bool) "ran" true !ran;
  Aeq_exec.Pool.shutdown pool

let test_pool_concurrent_jobs () =
  (* multi-tenancy: two jobs submitted from two domains overlap in
     time and both complete with their own work intact; a failure in
     one job stays in that job *)
  let pool = Aeq_exec.Pool.create ~n_threads:4 () in
  let a_total = Atomic.make 0 and b_total = Atomic.make 0 in
  let submit total fail_this =
    Domain.spawn (fun () ->
        match
          Aeq_exec.Pool.run pool (fun ~tid ->
              ignore tid;
              for _ = 1 to 1000 do
                Atomic.incr total
              done;
              if fail_this then failwith "job-b-boom")
        with
        | () -> `Ok
        | exception Failure m -> `Failed m)
  in
  let da = submit a_total false and db = submit b_total true in
  (match Domain.join da with
  | `Ok -> ()
  | `Failed m -> Alcotest.failf "job A caught job B's error: %s" m);
  (match Domain.join db with
  | `Failed "job-b-boom" -> ()
  | `Failed m -> Alcotest.failf "wrong error: %s" m
  | `Ok -> Alcotest.fail "job B should have failed");
  (* every participant of job A did its full work *)
  Alcotest.(check int) "job A work multiple of 1000" 0 (Atomic.get a_total mod 1000);
  Alcotest.(check bool) "job A ran at least once" true (Atomic.get a_total >= 1000);
  Alcotest.(check int) "no jobs left in flight" 0 (Aeq_exec.Pool.active_jobs pool);
  Aeq_exec.Pool.shutdown pool

(* ---- progress ------------------------------------------------------ *)

let test_progress_rates () =
  let p = Aeq_exec.Progress.create ~total_rows:1000 ~n_threads:2 in
  Alcotest.(check int) "remaining" 1000 (Aeq_exec.Progress.remaining p);
  Aeq_exec.Progress.note_morsel p ~tid:0 ~rows:100 ~seconds:0.01;
  Aeq_exec.Progress.note_morsel p ~tid:1 ~rows:300 ~seconds:0.01;
  Alcotest.(check int) "processed" 400 (Aeq_exec.Progress.processed p);
  Alcotest.(check int) "remaining" 600 (Aeq_exec.Progress.remaining p);
  (* rates: 10k/s and 30k/s -> avg 20k/s *)
  Alcotest.(check (float 1.0)) "avg rate" 20000.0 (Aeq_exec.Progress.avg_rate p);
  Aeq_exec.Progress.reset_rates p;
  Alcotest.(check (float 0.0)) "rates reset" 0.0 (Aeq_exec.Progress.avg_rate p)

(* ---- the Fig. 7 decision model -------------------------------------- *)

let extrapolate = Aeq_exec.Adaptive.extrapolate ~model:CM.default ~n_instrs:1000

let test_decide_nothing_when_tiny () =
  (* 1000 remaining tuples at 1M/s: 1 ms of work left; compiling costs
     several ms -> keep interpreting *)
  match
    extrapolate ~current_mode:CM.Bytecode ~remaining:1_000 ~rate:1e6 ~n_threads:4 ()
  with
  | Aeq_exec.Adaptive.Do_nothing -> ()
  | Aeq_exec.Adaptive.Compile _ -> Alcotest.fail "should not compile a tiny remainder"

let test_decide_compile_when_huge () =
  (* 100M remaining tuples at 1M/s: 100 s of work -> optimized pays *)
  match
    extrapolate ~current_mode:CM.Bytecode ~remaining:100_000_000 ~rate:1e6 ~n_threads:4 ()
  with
  | Aeq_exec.Adaptive.Compile CM.Opt -> ()
  | Aeq_exec.Adaptive.Compile (CM.Unopt | CM.Bytecode) ->
    Alcotest.fail "expected optimized for huge work"
  | Aeq_exec.Adaptive.Do_nothing -> Alcotest.fail "must compile 100s of work"

let test_decide_unopt_in_between () =
  (* medium-sized remainder: unoptimized should win over both *)
  let d = extrapolate ~current_mode:CM.Bytecode ~remaining:400_000 ~rate:1e6 ~n_threads:4 () in
  match d with
  | Aeq_exec.Adaptive.Compile CM.Unopt -> ()
  | Aeq_exec.Adaptive.Compile (CM.Opt | CM.Bytecode) ->
    Alcotest.fail "opt too aggressive here"
  | Aeq_exec.Adaptive.Do_nothing -> Alcotest.fail "should compile medium remainder"

let test_decide_never_downgrades () =
  (match extrapolate ~current_mode:CM.Opt ~remaining:100_000_000 ~rate:1e6 ~n_threads:4 () with
  | Aeq_exec.Adaptive.Do_nothing -> ()
  | _ -> Alcotest.fail "already optimal");
  match extrapolate ~current_mode:CM.Unopt ~remaining:1_000 ~rate:1e6 ~n_threads:4 () with
  | Aeq_exec.Adaptive.Do_nothing -> ()
  | _ -> Alcotest.fail "no upgrade for tiny remainder"

let test_decide_no_rate_no_decision () =
  match extrapolate ~current_mode:CM.Bytecode ~remaining:1_000_000 ~rate:0.0 ~n_threads:4 () with
  | Aeq_exec.Adaptive.Do_nothing -> ()
  | _ -> Alcotest.fail "cannot extrapolate without a rate"

(* Regression for the mis-extrapolation bug: the measured rate is in
   the *current* mode's units, so a candidate's speedup (stated vs
   bytecode) must be divided by the current mode's speedup. With the
   old formula the Unopt->Opt estimate used the full 5x instead of
   5/3.6 = 1.39x and upgraded near-finished pipelines. Numbers below
   (default model, 1000 instrs, 1 thread, 1M rows/s):
   opt compile = 75.5 ms; 120k rows remaining = 120 ms left.
   buggy estimate: 75.5 + 120/5      =  99.5 ms -> upgrade (wrong)
   fixed estimate: 75.5 + 120/1.389  = 161.9 ms -> keep Unopt *)

let test_relative_speedup_blocks_eager_upgrade () =
  match
    extrapolate ~current_mode:CM.Unopt ~remaining:120_000 ~rate:1e6 ~n_threads:1 ()
  with
  | Aeq_exec.Adaptive.Do_nothing -> ()
  | Aeq_exec.Adaptive.Compile _ ->
    Alcotest.fail
      "Unopt->Opt upgraded on the vs-bytecode speedup (5x) instead of the relative \
       gain (1.39x)"

let test_relative_speedup_still_upgrades_when_profitable () =
  (* 1M rows remaining = 1 s left; 75.5 + 1000/1.389 = 795 ms: the
     relative gain still pays for itself *)
  match
    extrapolate ~current_mode:CM.Unopt ~remaining:1_000_000 ~rate:1e6 ~n_threads:1 ()
  with
  | Aeq_exec.Adaptive.Compile CM.Opt -> ()
  | Aeq_exec.Adaptive.Compile (CM.Unopt | CM.Bytecode) -> Alcotest.fail "expected Opt"
  | Aeq_exec.Adaptive.Do_nothing ->
    Alcotest.fail "a genuinely profitable Unopt->Opt upgrade must still happen"

let test_monotone_in_remaining () =
  (* once compilation pays off, it keeps paying off for more work *)
  let compiled_at = ref None in
  List.iter
    (fun remaining ->
      match
        (extrapolate ~current_mode:CM.Bytecode ~remaining ~rate:1e6 ~n_threads:4 (),
         !compiled_at)
      with
      | Aeq_exec.Adaptive.Compile _, None -> compiled_at := Some remaining
      | Aeq_exec.Adaptive.Do_nothing, Some at ->
        Alcotest.failf "compiled at %d but not at %d" at remaining
      | _ -> ())
    [ 1_000; 10_000; 100_000; 1_000_000; 10_000_000; 100_000_000 ];
  Alcotest.(check bool) "compiles eventually" true (!compiled_at <> None)

(* ---- no lost work across mode switches ------------------------------ *)

let test_no_lost_work () =
  (* Count every processed row through a runtime-visible aggregate and
     force mode switches mid-pipeline via a cost model with absurdly
     fast compilation, so the controller upgrades eagerly. *)
  let eager =
    {
      CM.default with
      CM.simulate = false;
      unopt_base = 0.0;
      unopt_per_instr = 0.0;
      opt_base = 0.0;
      opt_per_instr = 0.0;
      opt_quad = 0.0;
      speedup_unopt = 10.0;
      speedup_opt = 20.0;
    }
  in
  let engine = Aeq.Engine.create ~n_threads:4 ~cost_model:eager () in
  Aeq.Engine.load_tpch engine ~scale_factor:0.01;
  let tbl = Aeq_storage.Catalog.table (Aeq.Engine.catalog engine) "lineitem" in
  let r =
    Aeq.Engine.query engine ~mode:Driver.Adaptive "select count(*) as n from lineitem"
  in
  (match r.Driver.rows with
  | [ [| n |] ] ->
    Alcotest.(check int64) "every row counted exactly once"
      (Int64.of_int tbl.Aeq_storage.Table.n_rows)
      n
  | _ -> Alcotest.fail "one row expected");
  (* the eager model must actually have switched modes *)
  Alcotest.(check bool) "a switch happened" true
    (List.exists (fun m -> m <> "bytecode") r.Driver.stats.Driver.final_modes);
  Aeq.Engine.close engine

(* ---- plan cache mode memory ----------------------------------------- *)

let test_plan_cache_promotion () =
  let eager =
    {
      CM.default with
      CM.simulate = false;
      unopt_base = 0.0;
      unopt_per_instr = 0.0;
      opt_base = 0.0;
      opt_per_instr = 0.0;
      opt_quad = 0.0;
      speedup_unopt = 10.0;
      speedup_opt = 20.0;
    }
  in
  let engine = Aeq.Engine.create ~n_threads:2 ~cost_model:eager () in
  Aeq.Engine.load_tpch engine ~scale_factor:0.01;
  let sql = "select sum(l_quantity) from lineitem" in
  let r1 = Aeq.Engine.query engine sql in
  Alcotest.(check int) "first execution" 1 (Aeq.Engine.cached_executions engine sql);
  let r2 = Aeq.Engine.query engine sql in
  Alcotest.(check int) "second execution" 2 (Aeq.Engine.cached_executions engine sql);
  Alcotest.(check bool) "same result" true (r1.Driver.rows = r2.Driver.rows);
  (* second run starts at least as compiled as the first ended *)
  let rank = function "bytecode" -> 0 | "unoptimized" -> 1 | _ -> 2 in
  List.iter2
    (fun m1 m2 ->
      Alcotest.(check bool) "mode memory kept" true (rank m2 >= rank m1))
    r1.Driver.stats.Driver.final_modes r2.Driver.stats.Driver.final_modes;
  Aeq.Engine.close engine

(* ---- prepared statements (compiled-artifact cache) ------------------ *)

let test_prepared_artifact_reuse () =
  let engine = Aeq.Engine.create ~n_threads:2 ~cost_model:CM.off () in
  Aeq.Engine.load_tpch engine ~scale_factor:0.005;
  let catalog = Aeq.Engine.catalog engine in
  let pool = Aeq.Engine.pool engine in
  let plan = Aeq.Engine.plan engine "select sum(l_quantity) from lineitem" in
  let p =
    Driver.prepare ~cost_model:CM.off catalog plan
      ~n_threads:(Aeq_exec.Pool.n_threads pool)
  in
  Alcotest.(check int) "unexecuted" 0 (Driver.prepared_executions p);
  let r1 = Driver.execute_prepared p ~mode:Driver.Opt ~pool in
  let r2 = Driver.execute_prepared p ~mode:Driver.Opt ~pool in
  Alcotest.(check int) "executed twice" 2 (Driver.prepared_executions p);
  Alcotest.(check bool) "same rows" true (r1.Driver.rows = r2.Driver.rows);
  Alcotest.(check bool) "cold run pays codegen" true
    (r1.Driver.stats.Driver.codegen_seconds > 0.0);
  Alcotest.(check bool) "cold run not flagged as reuse" false
    r1.Driver.stats.Driver.prepared_reuse;
  (* the compiled artifacts survived: nothing is rebuilt *)
  Alcotest.(check (float 0.0)) "no codegen on reuse" 0.0
    r2.Driver.stats.Driver.codegen_seconds;
  Alcotest.(check (float 0.0)) "no translation on reuse" 0.0
    r2.Driver.stats.Driver.bc_seconds;
  Alcotest.(check (float 0.0)) "no recompilation on reuse" 0.0
    r2.Driver.stats.Driver.compile_seconds;
  Alcotest.(check bool) "reuse flagged" true r2.Driver.stats.Driver.prepared_reuse;
  (* every pipeline is still in the statically-requested mode *)
  List.iter
    (fun m -> Alcotest.(check bool) "stays optimized" true (m = CM.Opt))
    (Driver.prepared_modes p);
  Aeq.Engine.close engine

let test_prepared_mode_switches () =
  (* the same prepared statement can serve every execution mode; a
     bytecode run after a compiled one must reinstall the interpreter *)
  let engine = Aeq.Engine.create ~n_threads:2 ~cost_model:CM.off () in
  Aeq.Engine.load_tpch engine ~scale_factor:0.002;
  let catalog = Aeq.Engine.catalog engine in
  let pool = Aeq.Engine.pool engine in
  let plan = Aeq.Engine.plan engine "select count(*) from orders" in
  let p =
    Driver.prepare ~cost_model:CM.off catalog plan
      ~n_threads:(Aeq_exec.Pool.n_threads pool)
  in
  let r_opt = Driver.execute_prepared p ~mode:Driver.Opt ~pool in
  let r_bc = Driver.execute_prepared p ~mode:Driver.Bytecode ~pool in
  let r_un = Driver.execute_prepared p ~mode:Driver.Unopt ~pool in
  Alcotest.(check bool) "opt = bytecode rows" true (r_opt.Driver.rows = r_bc.Driver.rows);
  Alcotest.(check bool) "unopt = bytecode rows" true (r_un.Driver.rows = r_bc.Driver.rows);
  List.iter
    (fun m -> Alcotest.(check string) "back to bytecode" "bytecode" m)
    r_bc.Driver.stats.Driver.final_modes;
  List.iter
    (fun m -> Alcotest.(check string) "unoptimized installed" "unoptimized" m)
    r_un.Driver.stats.Driver.final_modes;
  Aeq.Engine.close engine

let test_trace_render () =
  let tr = Aeq_exec.Trace.create () in
  let t0 = Aeq_exec.Trace.epoch tr in
  Aeq_exec.Trace.record tr ~pipeline:0 ~tid:0 ~t0 ~t1:(t0 +. 0.01) (Aeq_exec.Trace.Ev_morsel CM.Bytecode);
  Aeq_exec.Trace.record tr ~pipeline:0 ~tid:1 ~t0:(t0 +. 0.002) ~t1:(t0 +. 0.008)
    (Aeq_exec.Trace.Ev_compile CM.Opt);
  let s = Aeq_exec.Trace.render tr ~n_threads:2 in
  Alcotest.(check bool) "has morsel lane" true (String.contains s 'b');
  Alcotest.(check bool) "has compile burst" true (String.contains s 'C');
  Alcotest.(check int) "two events" 2 (List.length (Aeq_exec.Trace.events tr))

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "all tids" `Quick test_pool_runs_all_tids;
          Alcotest.test_case "exceptions" `Quick test_pool_propagates_exceptions;
          Alcotest.test_case "main-thread exception" `Quick test_pool_main_thread_exception;
          Alcotest.test_case "single thread" `Quick test_pool_single_thread_inline;
          Alcotest.test_case "concurrent jobs" `Quick test_pool_concurrent_jobs;
        ] );
      ("progress", [ Alcotest.test_case "rates" `Quick test_progress_rates ]);
      ( "fig7 model",
        [
          Alcotest.test_case "tiny -> nothing" `Quick test_decide_nothing_when_tiny;
          Alcotest.test_case "huge -> optimized" `Quick test_decide_compile_when_huge;
          Alcotest.test_case "medium -> unoptimized" `Quick test_decide_unopt_in_between;
          Alcotest.test_case "never downgrades" `Quick test_decide_never_downgrades;
          Alcotest.test_case "no rate, no decision" `Quick test_decide_no_rate_no_decision;
          Alcotest.test_case "relative speedup blocks eager upgrade" `Quick
            test_relative_speedup_blocks_eager_upgrade;
          Alcotest.test_case "relative speedup keeps profitable upgrade" `Quick
            test_relative_speedup_still_upgrades_when_profitable;
          Alcotest.test_case "monotone in remaining" `Quick test_monotone_in_remaining;
        ] );
      ( "switching",
        [
          Alcotest.test_case "no lost work" `Quick test_no_lost_work;
          Alcotest.test_case "plan-cache mode memory" `Quick test_plan_cache_promotion;
        ] );
      ( "prepared",
        [
          Alcotest.test_case "artifact reuse" `Quick test_prepared_artifact_reuse;
          Alcotest.test_case "mode switches" `Quick test_prepared_mode_switches;
        ] );
      ("trace", [ Alcotest.test_case "render" `Quick test_trace_render ]);
    ]

(* Tests for the fault-tolerance layer: the failpoint registry, the
   structured query-error taxonomy, cancellation / timeouts / memory
   budgets, compile-failure degradation with blacklisting, and —
   crucially — that the engine stays healthy after every fault. *)

module CM = Aeq_backend.Cost_model
module Driver = Aeq_exec.Driver
module QE = Aeq_exec.Query_error
module FP = Aeq_util.Failpoints

(* every test must leave the global registry clean *)
let with_clean_failpoints f =
  FP.clear ();
  Fun.protect ~finally:FP.clear f

let eager_model =
  (* free + instant compilation with large modelled speedups: the
     adaptive controller upgrades as soon as it may *)
  {
    CM.default with
    CM.simulate = false;
    unopt_base = 0.0;
    unopt_per_instr = 0.0;
    opt_base = 0.0;
    opt_per_instr = 0.0;
    opt_quad = 0.0;
    speedup_unopt = 10.0;
    speedup_opt = 20.0;
  }

let check_query_error name expected f =
  match f () with
  | _ -> Alcotest.failf "%s: expected %s, query succeeded" name expected
  | exception QE.Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: got %s, expected %s" name (QE.to_string e) expected)
      true
      (String.length expected = 0
      ||
      match (e, expected) with
      | QE.Trap _, "trap" -> true
      | QE.Compile_failed _, "compile_failed" -> true
      | QE.Timeout _, "timeout" -> true
      | QE.Cancelled, "cancelled" -> true
      | QE.Memory_budget_exceeded _, "memory" -> true
      | _ -> false)

(* ---- failpoint registry --------------------------------------------- *)

(* synthetic sites for registry-mechanics tests: the catalog rejects
   unknown names, so tests register theirs explicitly *)
let () = List.iter FP.register_site [ "site.a"; "site.n"; "a"; "b"; "c" ]

let test_failpoints_basic () =
  with_clean_failpoints (fun () ->
      Alcotest.(check bool) "disarmed" false (FP.armed ());
      FP.hit "nowhere";
      FP.activate "site.a" FP.Fail;
      Alcotest.(check bool) "armed" true (FP.armed ());
      (* persistent: fires on every hit *)
      (match FP.hit "site.a" with
      | () -> Alcotest.fail "expected Injected"
      | exception FP.Injected s -> Alcotest.(check string) "site name" "site.a" s);
      (match FP.hit "site.a" with
      | () -> Alcotest.fail "persistent site must keep firing"
      | exception FP.Injected _ -> ());
      Alcotest.(check int) "hits" 2 (FP.hits "site.a");
      Alcotest.(check int) "fired" 2 (FP.fired "site.a");
      FP.deactivate "site.a";
      FP.hit "site.a";
      Alcotest.(check bool) "disarmed again" false (FP.armed ()))

let test_failpoints_nth_hit () =
  with_clean_failpoints (fun () ->
      FP.activate ~on_hit:3 ~persistent:false "site.n" FP.Fail;
      FP.hit "site.n";
      FP.hit "site.n";
      (match FP.hit "site.n" with
      | () -> Alcotest.fail "third hit must fire"
      | exception FP.Injected _ -> ());
      (* one-shot: the fourth hit passes *)
      FP.hit "site.n";
      Alcotest.(check int) "hits counted" 4 (FP.hits "site.n");
      Alcotest.(check int) "fired once" 1 (FP.fired "site.n"))

let test_failpoints_parse () =
  with_clean_failpoints (fun () ->
      FP.set_from_string "a=fail, b=delay:0.0 ; c=fail@2";
      (match FP.hit "a" with
      | () -> Alcotest.fail "a must fire"
      | exception FP.Injected _ -> ());
      FP.hit "b" (* zero delay: returns *);
      FP.hit "c";
      (match FP.hit "c" with
      | () -> Alcotest.fail "c must fire on hit 2"
      | exception FP.Injected _ -> ());
      FP.hit "c" (* @N is one-shot *);
      List.iter
        (fun bad ->
          match FP.set_from_string bad with
          | () -> Alcotest.failf "accepted %S" bad
          | exception Invalid_argument _ -> ())
        [ "nonsense"; "x=explode"; "x=fail@zero"; "x=delay:-1" ];
      (* unknown site names are rejected with the catalog in the
         message — a typo'd site used to arm nothing, silently *)
      (match FP.activate "driver.morsle" FP.Fail with
      | () -> Alcotest.fail "typo'd site must be rejected"
      | exception Invalid_argument m ->
        let has_needle needle =
          let nl = String.length needle and ml = String.length m in
          let rec go i =
            i + nl <= ml && (String.sub m i nl = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool)
          "message lists valid sites" true
          (has_needle "driver.morsel" && has_needle "arena.lease")))

(* ---- pool lifecycle -------------------------------------------------- *)

let test_pool_closed () =
  let pool = Aeq_exec.Pool.create ~n_threads:2 () in
  Alcotest.(check bool) "open" false (Aeq_exec.Pool.closed pool);
  Aeq_exec.Pool.shutdown pool;
  Aeq_exec.Pool.shutdown pool (* idempotent *);
  Alcotest.(check bool) "closed" true (Aeq_exec.Pool.closed pool);
  match Aeq_exec.Pool.run pool (fun ~tid -> ignore tid) with
  | () -> Alcotest.fail "run on a closed pool must raise"
  | exception Invalid_argument _ -> ()

let test_engine_close_idempotent () =
  let engine = Aeq.Engine.create ~n_threads:2 ~cost_model:CM.off () in
  Aeq.Engine.load_tpch engine ~scale_factor:0.001;
  Aeq.Engine.close engine;
  Aeq.Engine.close engine;
  Alcotest.(check bool) "closed" true (Aeq.Engine.closed engine);
  match Aeq.Engine.query engine "select count(*) from lineitem" with
  | _ -> Alcotest.fail "query on a closed engine must raise"
  | exception Invalid_argument _ -> ()

(* ---- shared engine for the end-to-end fault tests ------------------- *)

let with_engine ?(n_threads = 2) ?(cost_model = CM.off) ?(sf = 0.005) f =
  let engine = Aeq.Engine.create ~n_threads ~cost_model () in
  Aeq.Engine.load_tpch engine ~scale_factor:sf;
  Fun.protect ~finally:(fun () -> Aeq.Engine.close engine) (fun () -> f engine)

let count_lineitem engine =
  let tbl = Aeq_storage.Catalog.table (Aeq.Engine.catalog engine) "lineitem" in
  Int64.of_int tbl.Aeq_storage.Table.n_rows

let check_clean_query name engine =
  let r = Aeq.Engine.query engine "select count(*) as n from lineitem" in
  match r.Driver.rows with
  | [ [| n |] ] -> Alcotest.(check int64) name (count_lineitem engine) n
  | _ -> Alcotest.failf "%s: one row expected" name

(* ---- runtime traps end-to-end --------------------------------------- *)

let div0_sql = "select l_quantity / (l_linenumber - l_linenumber) from lineitem"

let test_trap_all_modes () =
  with_engine (fun engine ->
      List.iter
        (fun mode ->
          (match Aeq.Engine.query engine ~mode div0_sql with
          | _ -> Alcotest.failf "%s: division by zero must trap" (Driver.mode_name mode)
          | exception QE.Error (QE.Trap m) ->
            Alcotest.(check string)
              (Driver.mode_name mode ^ " trap message")
              "division by zero" m);
          (* the engine answers the next query correctly after the trap *)
          check_clean_query ("clean after " ^ Driver.mode_name mode) engine)
        [ Driver.Bytecode; Driver.Unopt; Driver.Opt; Driver.Adaptive ])

let test_trap_does_not_poison_cache () =
  (* regression for the arena-mark leak: a trapping query used to skip
     the truncate and leave the cached prepared statement dirty *)
  with_engine (fun engine ->
      let arena = Aeq_storage.Catalog.arena (Aeq.Engine.catalog engine) in
      check_query_error "first trap" "trap" (fun () ->
          Aeq.Engine.query engine ~mode:Driver.Bytecode div0_sql);
      let chunks_after_first = Aeq_mem.Arena.live_chunks arena in
      (* cache-hit re-executions of the trapping text keep trapping
         cleanly and keep releasing their scratch *)
      for _ = 1 to 3 do
        check_query_error "repeat trap" "trap" (fun () ->
            Aeq.Engine.query engine ~mode:Driver.Bytecode div0_sql)
      done;
      Alcotest.(check int) "no arena chunk leak across trapped executions"
        chunks_after_first
        (Aeq_mem.Arena.live_chunks arena);
      Alcotest.(check bool) "trapping text was served from the cache" true
        ((Aeq.Engine.cache_stats engine).Aeq.Engine.hits >= 3);
      check_clean_query "clean after repeated traps" engine)

(* ---- injected morsel trap + recovery from the plan cache ------------ *)

let test_morsel_trap_then_recover () =
  with_engine (fun engine ->
      let sql = "select sum(l_quantity) as s from lineitem" in
      let reference = Aeq.Engine.query engine sql in
      with_clean_failpoints (fun () ->
          FP.activate ~on_hit:3 ~persistent:false "driver.morsel" FP.Fail;
          check_query_error "morsel trap" "trap" (fun () ->
              Aeq.Engine.query engine sql);
          Alcotest.(check int) "failpoint fired" 1 (FP.fired "driver.morsel");
          (* same text again, served from the plan cache: correct *)
          let r = Aeq.Engine.query engine sql in
          Alcotest.(check bool) "correct rows after injected trap" true
            (r.Driver.rows = reference.Driver.rows)))

(* ---- compile-failure degradation ------------------------------------ *)

let test_static_compile_failure_degrades () =
  with_engine (fun engine ->
      with_clean_failpoints (fun () ->
          FP.activate "compile.opt" FP.Fail;
          FP.activate "compile.unopt" FP.Fail;
          let sql = "select count(*) as n from orders" in
          (* strict mode surfaces the structured error *)
          check_query_error "strict" "compile_failed" (fun () ->
              Aeq.Engine.query engine ~mode:Driver.Opt ~on_compile_failure:`Fail sql);
          (* default: degrade to bytecode, correct result *)
          List.iter
            (fun mode ->
              let r = Aeq.Engine.query engine ~mode sql in
              Alcotest.(check bool)
                (Driver.mode_name mode ^ " counted a failure")
                true
                (r.Driver.stats.Driver.compile_failures >= 1);
              List.iter
                (fun m ->
                  Alcotest.(check string)
                    (Driver.mode_name mode ^ " degraded to bytecode")
                    "bytecode" m)
                r.Driver.stats.Driver.final_modes;
              match r.Driver.rows with
              | [ [| n |] ] ->
                let tbl =
                  Aeq_storage.Catalog.table (Aeq.Engine.catalog engine) "orders"
                in
                Alcotest.(check int64)
                  (Driver.mode_name mode ^ " correct degraded result")
                  (Int64.of_int tbl.Aeq_storage.Table.n_rows)
                  n
              | _ -> Alcotest.fail "one row expected")
            [ Driver.Opt; Driver.Unopt ]))

let test_adaptive_degrades_and_never_retries () =
  (* the acceptance scenario: Opt compilation is forced to fail; an
     adaptive query completes correctly in a degraded mode, the
     blacklisted mode is attempted exactly once (no retry storm), and
     re-executions never try it again *)
  with_engine ~n_threads:2 ~cost_model:eager_model ~sf:0.01 (fun engine ->
      let sql = "select sum(l_quantity) as s from lineitem" in
      let reference = Aeq.Engine.query engine ~mode:Driver.Bytecode sql in
      with_clean_failpoints (fun () ->
          FP.activate "compile.opt" FP.Fail;
          let r1 = Aeq.Engine.query engine ~mode:Driver.Adaptive sql in
          Alcotest.(check bool) "correct rows under forced Opt failure" true
            (r1.Driver.rows = reference.Driver.rows);
          Alcotest.(check bool) "no pipeline ended optimized" true
            (List.for_all (fun m -> m <> "optimized") r1.Driver.stats.Driver.final_modes);
          let attempts_run1 = FP.hits "compile.opt" in
          let n_pipelines = List.length r1.Driver.stats.Driver.final_modes in
          Alcotest.(check bool) "opt was attempted" true (attempts_run1 >= 1);
          Alcotest.(check bool)
            "attempted at most once per pipeline (no retry storm)" true
            (attempts_run1 <= n_pipelines);
          (* the eager model still upgrades: degraded means unopt here *)
          Alcotest.(check bool) "a degraded (non-opt) upgrade still happened" true
            (List.exists (fun m -> m = "unoptimized") r1.Driver.stats.Driver.final_modes);
          (* re-execution from the plan cache: blacklisted mode never retried *)
          let r2 = Aeq.Engine.query engine ~mode:Driver.Adaptive sql in
          Alcotest.(check bool) "correct rows on re-execution" true
            (r2.Driver.rows = reference.Driver.rows);
          Alcotest.(check int) "blacklisted mode not re-attempted" attempts_run1
            (FP.hits "compile.opt");
          (* a full TPC-H query under the same forced failure *)
          let q1 = Aeq_workload.Queries.tpch_q 1 in
          let ref_q1 = Aeq.Engine.query engine ~mode:Driver.Bytecode q1 in
          let adp_q1 = Aeq.Engine.query engine ~mode:Driver.Adaptive q1 in
          Alcotest.(check bool) "tpch q1 correct under forced Opt failure" true
            (adp_q1.Driver.rows = ref_q1.Driver.rows);
          Alcotest.(check bool) "tpch q1: no pipeline ended optimized" true
            (List.for_all
               (fun m -> m <> "optimized")
               adp_q1.Driver.stats.Driver.final_modes)))

(* ---- timeout, cancellation, memory budget --------------------------- *)

let test_timeout () =
  with_engine (fun engine ->
      with_clean_failpoints (fun () ->
          FP.activate "driver.morsel" (FP.Delay 0.005);
          check_query_error "timeout" "timeout" (fun () ->
              Aeq.Engine.query engine ~mode:Driver.Bytecode ~timeout_seconds:0.01
                "select sum(l_quantity) from lineitem")));
  (* fresh closure: failpoints cleared; engine from the same scope *)
  with_engine (fun engine -> check_clean_query "clean after timeout" engine)

let test_cancel_before_start () =
  with_engine (fun engine ->
      let c = Aeq_exec.Cancel.create () in
      Aeq_exec.Cancel.cancel c;
      check_query_error "pre-cancelled" "cancelled" (fun () ->
          Aeq.Engine.query engine ~cancel:c "select count(*) from lineitem");
      check_clean_query "clean after cancel" engine)

let test_cancel_mid_query () =
  with_engine ~sf:0.01 (fun engine ->
      with_clean_failpoints (fun () ->
          (* slow morsels so the query would run for a long time *)
          FP.activate "driver.morsel" (FP.Delay 0.002);
          let c = Aeq_exec.Cancel.create () in
          let canceller =
            Domain.spawn (fun () ->
                let t0 = Aeq_util.Clock.now () in
                while Aeq_util.Clock.now () -. t0 < 0.02 do
                  Domain.cpu_relax ()
                done;
                Aeq_exec.Cancel.cancel c)
          in
          let t0 = Aeq_util.Clock.now () in
          check_query_error "mid-query cancel" "cancelled" (fun () ->
              Aeq.Engine.query engine ~mode:Driver.Bytecode ~cancel:c
                "select sum(l_quantity) from lineitem");
          Domain.join canceller;
          (* all domains stopped at a morsel boundary instead of
             draining the remaining morsels *)
          Alcotest.(check bool) "stopped promptly" true
            (Aeq_util.Clock.now () -. t0 < 5.0));
      check_clean_query "clean after mid-query cancel" engine)

let test_memory_budget () =
  with_engine (fun engine ->
      let sql = "select l_returnflag, sum(l_quantity) from lineitem group by l_returnflag" in
      (match
         Aeq.Engine.query engine ~mode:Driver.Bytecode ~memory_budget_bytes:64 sql
       with
      | _ -> Alcotest.fail "64-byte budget must be exceeded"
      | exception QE.Error (QE.Memory_budget_exceeded { budget_bytes; used_bytes }) ->
        Alcotest.(check int) "budget echoed" 64 budget_bytes;
        Alcotest.(check bool) "used exceeds budget" true (used_bytes > budget_bytes));
      (* same text, no budget: runs fine from the same cache entry *)
      let r = Aeq.Engine.query engine ~mode:Driver.Bytecode sql in
      Alcotest.(check bool) "rows produced without budget" true
        (r.Driver.stats.Driver.rows_out > 0);
      check_clean_query "clean after budget breach" engine)

(* ---- arena allocation failure --------------------------------------- *)

let test_arena_alloc_failure () =
  with_engine (fun engine ->
      with_clean_failpoints (fun () ->
          FP.activate "arena.alloc" FP.Fail;
          check_query_error "arena fault" "trap" (fun () ->
              Aeq.Engine.query engine ~mode:Driver.Bytecode
                "select sum(l_quantity) from lineitem"));
      check_clean_query "clean after arena fault" engine)

(* ---- lease-leak regression across every injected site --------------- *)

module A = Aeq_mem.Arena

(* For each fault-injection site on the execution path: inject, check
   the failure surfaces with the structured contract (or is swallowed,
   for [arena.release], whose reclamation is unconditional), then
   check the arena is at its exact pre-fault baseline — no chunk, no
   byte, no lease left behind — and that the engine still answers
   correctly. Guards the [Fun.protect] windows the driver maintains
   around lease ownership. *)
let test_fault_at_each_site_no_leak () =
  with_engine (fun engine ->
      let arena = Aeq_storage.Catalog.arena (Aeq.Engine.catalog engine) in
      check_clean_query "warm" engine;
      let baseline_chunks = A.live_chunks arena
      and baseline_resident = A.resident_bytes arena
      and baseline_leases = A.live_leases arena in
      with_clean_failpoints (fun () ->
          List.iteri
            (fun i (site, swallowed) ->
              FP.activate site FP.Fail;
              let sql =
                (* single-flight only fires on a cache miss; give it a
                   fresh text each time *)
                if site = "compile.singleflight" then
                  Printf.sprintf
                    "select count(*) as n from lineitem where l_linenumber > -%d"
                    (i + 1)
                else "select count(*) as n from lineitem"
              in
              (match Aeq.Engine.query engine sql with
              | _ ->
                if not swallowed then
                  Alcotest.failf "%s: expected an injected failure" site
              | exception QE.Error (QE.Trap _) ->
                if swallowed then
                  Alcotest.failf "%s: swallowed fault must not surface" site
              | exception e ->
                Alcotest.failf "%s: unstructured exception %s" site
                  (Printexc.to_string e));
              Alcotest.(check bool) (site ^ ": failpoint fired") true
                (FP.fired site >= 1);
              FP.deactivate site;
              check_clean_query (site ^ ": clean after fault") engine;
              Alcotest.(check int)
                (site ^ ": live chunks at baseline")
                baseline_chunks (A.live_chunks arena);
              Alcotest.(check int)
                (site ^ ": resident bytes at baseline")
                baseline_resident (A.resident_bytes arena);
              Alcotest.(check int)
                (site ^ ": no lease outstanding")
                baseline_leases (A.live_leases arena);
              Alcotest.(check int)
                (site ^ ": no scratch resident")
                0
                (A.scratch_resident_bytes arena);
              Alcotest.(check (list string)) (site ^ ": arena coherent") []
                (A.check arena))
            [
              ("arena.lease", false);
              ("arena.alloc", false);
              ("arena.release", true);
              ("driver.morsel", false);
              ("pool.pick", false);
              ("compile.singleflight", false);
            ]))

let () =
  Alcotest.run "guardrails"
    [
      ( "failpoints",
        [
          Alcotest.test_case "basic" `Quick test_failpoints_basic;
          Alcotest.test_case "nth hit" `Quick test_failpoints_nth_hit;
          Alcotest.test_case "parse" `Quick test_failpoints_parse;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "pool closed" `Quick test_pool_closed;
          Alcotest.test_case "engine close idempotent" `Quick test_engine_close_idempotent;
        ] );
      ( "traps",
        [
          Alcotest.test_case "all modes" `Quick test_trap_all_modes;
          Alcotest.test_case "cache stays healthy" `Quick test_trap_does_not_poison_cache;
          Alcotest.test_case "morsel trap recovery" `Quick test_morsel_trap_then_recover;
        ] );
      ( "compile failures",
        [
          Alcotest.test_case "static degrade / strict fail" `Quick
            test_static_compile_failure_degrades;
          Alcotest.test_case "adaptive degrade, no retry" `Quick
            test_adaptive_degrades_and_never_retries;
        ] );
      ( "limits",
        [
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "cancel before start" `Quick test_cancel_before_start;
          Alcotest.test_case "cancel mid-query" `Quick test_cancel_mid_query;
          Alcotest.test_case "memory budget" `Quick test_memory_budget;
        ] );
      ( "arena",
        [ Alcotest.test_case "alloc failure" `Quick test_arena_alloc_failure ] );
      ( "lease hygiene",
        [
          Alcotest.test_case "fault at each site leaks nothing" `Quick
            test_fault_at_each_site_no_leak;
        ] );
    ]

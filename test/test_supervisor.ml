(* Tests for the supervision layer: crash barriers and in-domain
   restarts (Supervisor), restart budgets and give-up escalation,
   dispatcher/watchdog/pool-worker crash reclaim (no hung awaits, no
   leaked state), engine health states, graceful drain, and a seeded
   crash-injection sweep (AEQ_CRASH_SWEEP overrides the seed count). *)

module Sup = Aeq_exec.Supervisor
module Sched = Aeq_exec.Scheduler
module Pool = Aeq_exec.Pool
module Driver = Aeq_exec.Driver
module QE = Aeq_exec.Query_error
module FP = Aeq_util.Failpoints
module Waiter = Aeq_util.Waiter
module CM = Aeq_backend.Cost_model
module A = Aeq_mem.Arena
module Sim = Aeq_sim.Sched

let with_clean_failpoints f =
  FP.clear ();
  Sup.clear_crash_log ();
  Fun.protect ~finally:FP.clear f

(* poll until [cond] holds, or fail after [seconds] *)
let eventually ?(seconds = 5.0) name cond =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "%s: condition not reached within %.1fs" name seconds
    else begin
      Unix.sleepf 0.001;
      go ()
    end
  in
  go ()

(* ---- Waiter ---------------------------------------------------------- *)

let test_waiter () =
  let w = Waiter.create () in
  let t0 = Unix.gettimeofday () in
  Alcotest.(check bool) "timeout returns false" false (Waiter.wait w 0.02);
  Alcotest.(check bool)
    "timeout actually waited" true
    (Unix.gettimeofday () -. t0 >= 0.015);
  Waiter.wake w;
  Alcotest.(check bool) "wake returns true" true (Waiter.wait w 5.0);
  Alcotest.(check bool) "wake is consumed" false (Waiter.wait w 0.01);
  (* wake from another domain interrupts a long wait promptly *)
  let d =
    Domain.spawn (fun () ->
        Unix.sleepf 0.02;
        Waiter.wake w)
  in
  let t0 = Unix.gettimeofday () in
  Alcotest.(check bool) "cross-domain wake" true (Waiter.wait w 10.0);
  Alcotest.(check bool)
    "woken early, not at timeout" true
    (Unix.gettimeofday () -. t0 < 5.0);
  Domain.join d;
  Waiter.dispose w;
  Waiter.dispose w (* idempotent *)

(* ---- Supervisor unit -------------------------------------------------- *)

exception Boom

let fast_policy =
  { Sup.max_restarts = 8; window_seconds = 10.0; backoff_base = 0.001; backoff_max = 0.01 }

let test_supervisor_restarts () =
  with_clean_failpoints (fun () ->
      let runs = Atomic.make 0 in
      let stop = Atomic.make false in
      let crash_seen = Atomic.make 0 in
      let sv =
        Sup.spawn ~policy:fast_policy ~name:"unit.crasher"
          ~on_crash:(fun _ -> Atomic.incr crash_seen)
          (fun () ->
            let n = Atomic.fetch_and_add runs 1 in
            if n < 3 then raise Boom
            else
              while not (Atomic.get stop) do
                Unix.sleepf 0.001
              done)
      in
      eventually "body survived three crashes" (fun () -> Atomic.get runs >= 4);
      Alcotest.(check int) "three crashes caught" 3 (Sup.crashes sv);
      Alcotest.(check int) "three restarts consumed" 3 (Sup.restarts sv);
      Alcotest.(check string) "running again" "running" (Sup.state_name (Sup.state sv));
      Alcotest.(check int) "on_crash ran per crash" 3 (Atomic.get crash_seen);
      Alcotest.(check (option string)) "healthy" None (Sup.health_reason sv);
      Atomic.set stop true;
      Sup.stop sv;
      Sup.join sv;
      Alcotest.(check string) "stopped" "stopped" (Sup.state_name (Sup.state sv));
      (* crash log recorded every catch, newest first, all restarts *)
      let log = Sup.crash_log () in
      Alcotest.(check int) "crash log has all three" 3 (List.length log);
      List.iter
        (fun c ->
          Alcotest.(check string) "log domain" "unit.crasher" c.Sup.cr_domain;
          Alcotest.(check bool) "logged as restarted" true (c.Sup.cr_action = Sup.Restarted))
        log)

let test_supervisor_gives_up () =
  with_clean_failpoints (fun () ->
      let policy = { fast_policy with Sup.max_restarts = 2 } in
      let gave_up = Atomic.make false in
      let sv =
        Sup.spawn ~policy ~name:"unit.crashloop"
          ~on_give_up:(fun _ -> Atomic.set gave_up true)
          (fun () -> raise Boom)
      in
      eventually "budget exhausts" (fun () -> Sup.state sv = Sup.Failed);
      Sup.stop sv;
      Sup.join sv;
      Alcotest.(check bool) "on_give_up fired" true (Atomic.get gave_up);
      Alcotest.(check int) "crashes = budget + 1" 3 (Sup.crashes sv);
      Alcotest.(check int) "restarts = budget" 2 (Sup.restarts sv);
      (match Sup.health_reason sv with
      | Some r ->
        Alcotest.(check bool)
          "reason mentions the budget" true
          (String.length r > 0)
      | None -> Alcotest.fail "Failed supervisor must report a health reason");
      let newest = List.hd (Sup.crash_log ()) in
      Alcotest.(check bool) "last entry gave up" true (newest.Sup.cr_action = Sup.Gave_up))

(* deterministic replay: the inline supervised loop under the simulator
   takes the same schedule to the same crash/restart sequence *)
let test_supervisor_sim_deterministic () =
  with_clean_failpoints (fun () ->
      let run_once () =
        Sup.clear_crash_log ();
        let policy =
          (* zero backoff: virtual time advances only 0.1ns per clock
             read, so a real pause would livelock the simulation *)
          { Sup.max_restarts = 4; window_seconds = 10.0; backoff_base = 0.0;
            backoff_max = 0.0 }
        in
        let trace = ref [] in
        let crashed = ref false in
        let sv =
          Sup.create ~policy ~name:"sim.supervised"
            ~on_crash:(fun _ -> trace := "crash" :: !trace)
            (fun () ->
              Aeq_util.Yieldpoint.yield "test.body";
              if not !crashed then begin
                crashed := true;
                raise Boom
              end;
              trace := "done" :: !trace)
        in
        let peer_steps = ref 0 in
        let outcome =
          Sim.run ~seed:11L
            ~tasks:
              [
                ("supervised", fun () -> Sup.run sv);
                ( "peer",
                  fun () ->
                    for _ = 1 to 5 do
                      incr peer_steps;
                      Aeq_util.Yieldpoint.yield "test.peer"
                    done );
              ]
            ()
        in
        Alcotest.(check bool) "sim run clean" false (Sim.failed outcome);
        Alcotest.(check string) "stopped" "stopped" (Sup.state_name (Sup.state sv));
        (List.rev !trace, Sup.crashes sv, List.length (Sup.crash_log ()))
      in
      let a = run_once () in
      let b = run_once () in
      Alcotest.(check bool) "same seed, same crash/restart sequence" true (a = b);
      let trace, crashes, logged = a in
      Alcotest.(check (list string)) "crash then restart then done"
        [ "crash"; "done" ] trace;
      Alcotest.(check int) "one crash" 1 crashes;
      Alcotest.(check int) "one log entry" 1 logged)

(* ---- scripted scheduler harness -------------------------------------- *)

let ok_result () =
  {
    Driver.names = [ "x" ];
    dtypes = [ Aeq_storage.Dtype.Int ];
    rows = [ [| 42L |] ];
    stats =
      {
        Driver.codegen_seconds = 0.0;
        bc_seconds = 0.0;
        compile_seconds = 0.0;
        exec_seconds = 0.0;
        total_seconds = 0.0;
        rows_out = 1;
        final_modes = [];
        prepared_reuse = false;
        compile_failures = 0;
      };
    trace = None;
    final_cm_modes = [];
  }

let rec csleep cancel remaining =
  if Aeq_exec.Cancel.cancelled cancel then QE.raise_error QE.Cancelled
  else if remaining > 0.0 then begin
    Unix.sleepf (Stdlib.min 0.002 remaining);
    csleep cancel (remaining -. 0.002)
  end

let harness_exec ~mode:_ ~cancel sql =
  match String.split_on_char ':' sql with
  | "sleep" :: d :: _ ->
    csleep cancel (float_of_string d);
    ok_result ()
  | _ -> ok_result ()

let sup_config =
  {
    Sched.default_config with
    dispatchers = 1;
    watchdog_period = 0.01;
    restart_policy = fast_policy;
  }

let with_sched ?(config = sup_config) f =
  let s = Sched.create ~config ~exec:harness_exec () in
  Fun.protect ~finally:(fun () -> Sched.shutdown s) (fun () -> f s)

(* ---- dispatcher crash reclaim ---------------------------------------- *)

let test_dispatcher_crash_completes_ticket () =
  with_clean_failpoints (fun () ->
      with_sched (fun s ->
          FP.activate ~persistent:false "sched.dispatch" FP.Crash;
          (match Sched.run s "ok" with
          | Error (QE.Worker_crashed { domain; _ }) ->
            Alcotest.(check bool)
              "crash names the dispatcher" true
              (String.length domain > 0
              && String.sub domain 0 9 = "scheduler")
          | Error e ->
            Alcotest.failf "expected Worker_crashed, got %s" (QE.to_string e)
          | Ok _ -> Alcotest.fail "expected Worker_crashed, got rows");
          (* the dispatcher restarted: the next query is served *)
          (match Sched.run s "ok" with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "post-restart query failed: %s" (QE.to_string e));
          let st = Sched.stats s in
          Alcotest.(check int) "one crashed ticket" 1 st.Sched.crashed_tickets;
          Alcotest.(check bool) "crash counted" true (st.Sched.domain_crashes >= 1);
          Alcotest.(check bool) "restart counted" true (st.Sched.domain_restarts >= 1);
          Alcotest.(check bool)
            "crash log names the site" true
            (List.exists
               (fun c -> c.Sup.cr_domain = "scheduler.dispatcher-0")
               (Sup.crash_log ()))))

(* Worker_crashed is transient, so a scheduler with retry budget gives
   the same client a second attempt on a crash mid-one-shot. Here the
   one-shot crash hits attempt #1; attempt #2 succeeds. *)
let test_dispatcher_crash_then_healthy_serving () =
  with_clean_failpoints (fun () ->
      with_sched (fun s ->
          FP.activate ~persistent:false ~on_hit:2 "sched.dispatch" FP.Crash;
          (match Sched.run s "ok" with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "first query failed: %s" (QE.to_string e));
          (* second dispatch crashes; every later one is clean *)
          let outcomes = List.init 5 (fun _ -> Sched.run s "ok") in
          let crashed, ok =
            List.partition (function Error (QE.Worker_crashed _) -> true | _ -> false)
              outcomes
          in
          Alcotest.(check int) "exactly one crash victim" 1 (List.length crashed);
          List.iter
            (function
              | Ok _ -> ()
              | Error e -> Alcotest.failf "unexpected error %s" (QE.to_string e))
            ok))

(* ---- watchdog crash restart ------------------------------------------ *)

let test_watchdog_crash_restart () =
  with_clean_failpoints (fun () ->
      with_sched (fun s ->
          FP.activate ~persistent:false "sched.watchdog" FP.Crash;
          eventually "watchdog crash caught" (fun () ->
              List.exists
                (fun c -> c.Sup.cr_domain = "scheduler.watchdog")
                (Sup.crash_log ()));
          (* the restarted watchdog still enforces deadlines *)
          match Sched.run s ~deadline_seconds:0.05 "sleep:5" with
          | Error (QE.Timeout _) | Error QE.Cancelled -> ()
          | Error e -> Alcotest.failf "expected Timeout, got %s" (QE.to_string e)
          | Ok _ -> Alcotest.fail "expected the watchdog to cancel the query"))

(* ---- pool worker crash reclaim --------------------------------------- *)

let test_pool_worker_crash () =
  with_clean_failpoints (fun () ->
      let p = Pool.create ~restart_policy:fast_policy ~n_threads:2 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown p)
        (fun () ->
          let worker_crashed () =
            List.exists (fun sv -> Sup.crashes sv > 0) (Pool.supervisors p)
          in
          (match
             Pool.run p (fun ~tid ->
                 if tid > 0 then raise (FP.Injected_crash "pool worker bug")
                 else
                   (* keep the job open until the worker joined and
                      crashed, so the barrier must be woken by reclaim *)
                   let deadline = Unix.gettimeofday () +. 5.0 in
                   while
                     (not (worker_crashed ())) && Unix.gettimeofday () < deadline
                   do
                     Unix.sleepf 0.001
                   done)
           with
          | () -> Alcotest.fail "expected Worker_crashed from Pool.run"
          | exception QE.Error (QE.Worker_crashed { domain; _ }) ->
            Alcotest.(check bool)
              "crash names the worker" true
              (String.length domain >= 4 && String.sub domain 0 4 = "pool"));
          Alcotest.(check (list string)) "accounting coherent" [] (Pool.check p);
          (* the worker restarted and serves again *)
          eventually "worker healthy again" (fun () -> Pool.health_reasons p = []);
          let hits = Atomic.make 0 in
          Pool.run p (fun ~tid:_ -> Atomic.incr hits);
          Alcotest.(check bool) "pool serves after restart" true (Atomic.get hits >= 1)))

(* ---- health state machine -------------------------------------------- *)

let test_health_degraded_and_back () =
  with_clean_failpoints (fun () ->
      (* slow restart so the Backing_off window is observable *)
      let config =
        {
          sup_config with
          Sched.restart_policy =
            { fast_policy with Sup.backoff_base = 0.2; backoff_max = 0.2 };
        }
      in
      with_sched ~config (fun s ->
          Alcotest.(check (list string)) "healthy at start" [] (Sched.health_reasons s);
          FP.activate ~persistent:false "sched.dispatch" FP.Crash;
          (match Sched.run s "ok" with
          | Error (QE.Worker_crashed _) -> ()
          | _ -> Alcotest.fail "expected the dispatcher to crash");
          eventually "degraded during backoff" (fun () -> Sched.health_reasons s <> []);
          eventually "serving again after restart" (fun () ->
              Sched.health_reasons s = []);
          match Sched.run s "ok" with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "post-recovery query failed: %s" (QE.to_string e)))

(* ---- graceful drain --------------------------------------------------- *)

let test_scheduler_drain () =
  with_clean_failpoints (fun () ->
      with_sched (fun s ->
          let tk = Sched.submit s "sleep:0.1" in
          let drain_clean = ref false in
          let d = Domain.spawn (fun () -> drain_clean := Sched.drain ~deadline_seconds:10.0 s) in
          eventually "drain closes admission" (fun () -> Sched.draining s);
          (* new work is rejected while draining *)
          (match Sched.run s "ok" with
          | Error (QE.Rejected reason) ->
            Alcotest.(check string) "rejected as draining" "draining" reason
          | Error e -> Alcotest.failf "expected Rejected, got %s" (QE.to_string e)
          | Ok _ -> Alcotest.fail "draining scheduler must reject new work");
          (* ... but the in-flight query finishes normally *)
          (match Sched.await tk with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "in-flight query lost to drain: %s" (QE.to_string e));
          Domain.join d;
          Alcotest.(check bool) "drain reached quiescence" true !drain_clean))

let test_engine_drain () =
  with_clean_failpoints (fun () ->
      let engine = Aeq.Engine.create ~n_threads:1 ~cost_model:CM.off () in
      Aeq.Engine.load_tpch engine ~scale_factor:0.002;
      Alcotest.(check string)
        "serving" "serving"
        (Aeq.Engine.health_name (Aeq.Engine.health engine));
      let sql = "select count(*) as n from lineitem" in
      (match Aeq.Engine.query_concurrent engine sql with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "warmup failed: %s" (QE.to_string e));
      let flushed = ref false in
      let clean =
        Aeq.Engine.drain ~deadline_seconds:10.0 ~flush:(fun () -> flushed := true) engine
      in
      Alcotest.(check bool) "drain clean" true clean;
      Alcotest.(check bool) "flush ran" true !flushed;
      Alcotest.(check bool) "engine closed" true (Aeq.Engine.closed engine);
      Alcotest.(check string)
        "stopped" "stopped"
        (Aeq.Engine.health_name (Aeq.Engine.health engine));
      (* direct queries are refused after the drain *)
      match Aeq.Engine.query engine sql with
      | _ -> Alcotest.fail "drained engine must reject queries"
      | exception QE.Error (QE.Rejected _) -> ())

(* ---- seeded crash-injection sweep ------------------------------------ *)

(* Every builtin site, dispatcher/watchdog/worker domains, random hit
   counts, concurrent clients: no await may hang, every client gets
   rows or a structured error, and at quiescence the arena has no
   leaked leases and every supervised domain is healthy again. *)
let crash_sweep_seeds () =
  match Sys.getenv_opt "AEQ_CRASH_SWEEP" with
  | Some n -> (try Stdlib.max 1 (int_of_string n) with _ -> 25)
  | None -> 25

let test_crash_sweep () =
  with_clean_failpoints (fun () ->
      let engine = Aeq.Engine.create ~n_threads:2 ~cost_model:CM.off () in
      Aeq.Engine.load_tpch engine ~scale_factor:0.002;
      Aeq.Engine.set_scheduler_config engine
        {
          Sched.default_config with
          dispatchers = 2;
          queue_capacity = 64;
          watchdog_period = 0.01;
          restart_policy =
            (* generous budget: the sweep injects one crash per seed
               and must never exhaust a supervisor *)
            { Sup.max_restarts = 10_000; window_seconds = 10.0;
              backoff_base = 0.0005; backoff_max = 0.005 };
        };
      let arena = Aeq_storage.Catalog.arena (Aeq.Engine.catalog engine) in
      let sites = FP.valid_sites () in
      (* warm up, then snapshot the lease baseline *)
      (match Aeq.Engine.query_concurrent engine "select count(*) as n from lineitem" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "sweep warmup failed: %s" (QE.to_string e));
      let quiesce () =
        eventually "scheduler quiescent" (fun () ->
            let st = Aeq.Engine.scheduler_stats engine in
            st.Sched.in_flight = 0 && st.Sched.queue_depth = 0)
      in
      quiesce ();
      let lease_baseline = A.live_leases arena in
      let seeds = crash_sweep_seeds () in
      let hung = ref [] in
      for seed = 0 to seeds - 1 do
        let site = List.nth sites (seed mod List.length sites) in
        let on_hit = 1 + (seed mod 5) in
        FP.clear ();
        FP.activate ~persistent:false ~on_hit site FP.Crash;
        (* vary the text so each seed exercises a fresh prepare too *)
        let sql =
          Printf.sprintf "select count(*) as n from lineitem where l_quantity < %d"
            (10 + seed)
        in
        let results = Array.make 4 None in
        let clients =
          List.init 4 (fun c ->
              Domain.spawn (fun () ->
                  for _ = 1 to 5 do
                    let r =
                      Aeq.Engine.query_concurrent engine ~deadline_seconds:30.0 sql
                    in
                    results.(c) <- Some r
                  done))
        in
        List.iter Domain.join clients;
        Array.iteri
          (fun c r ->
            match r with
            | None -> hung := Printf.sprintf "seed %d client %d: no outcome" seed c :: !hung
            | Some (Ok _) | Some (Error _) -> ())
          results;
        quiesce ()
      done;
      FP.clear ();
      Alcotest.(check (list string)) "every await resolved" [] !hung;
      (* quiescence invariants: nothing leaked, everybody healthy *)
      eventually "leases back to baseline" (fun () ->
          A.live_leases arena <= lease_baseline);
      Alcotest.(check (list string)) "arena coherent" [] (A.check arena);
      Alcotest.(check (list string))
        "pool coherent" []
        (Pool.check (Aeq.Engine.pool engine));
      eventually "engine healthy after the sweep" (fun () ->
          match Aeq.Engine.health engine with
          | Aeq.Engine.Serving -> true
          | _ -> false);
      let st = Aeq.Engine.scheduler_stats engine in
      Alcotest.(check bool)
        "restart budget observable in stats" true
        (st.Sched.domain_crashes >= 1 && st.Sched.domain_restarts >= 1);
      (* and the engine still serves *)
      (match Aeq.Engine.query_concurrent engine "select count(*) as n from lineitem" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "engine broken after sweep: %s" (QE.to_string e));
      Aeq.Engine.close engine)

let () =
  Alcotest.run "supervisor"
    [
      ("waiter", [ Alcotest.test_case "timed wait + wake" `Quick test_waiter ]);
      ( "supervisor",
        [
          Alcotest.test_case "restarts within budget" `Quick test_supervisor_restarts;
          Alcotest.test_case "gives up past budget" `Quick test_supervisor_gives_up;
          Alcotest.test_case "deterministic under sim" `Quick
            test_supervisor_sim_deterministic;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "dispatcher crash completes ticket" `Quick
            test_dispatcher_crash_completes_ticket;
          Alcotest.test_case "crash mid-stream" `Quick
            test_dispatcher_crash_then_healthy_serving;
          Alcotest.test_case "watchdog crash restart" `Quick test_watchdog_crash_restart;
          Alcotest.test_case "health degraded and back" `Quick
            test_health_degraded_and_back;
          Alcotest.test_case "graceful drain" `Quick test_scheduler_drain;
        ] );
      ("pool", [ Alcotest.test_case "worker crash reclaim" `Quick test_pool_worker_crash ]);
      ( "engine",
        [
          Alcotest.test_case "drain closes admission" `Quick test_engine_drain;
          Alcotest.test_case "crash sweep" `Slow test_crash_sweep;
        ] );
    ]

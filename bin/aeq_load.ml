(* The open-loop load generator CLI: drive a running aeq_server at a
   fixed offered rate and report the latency distribution.

     dune exec bin/aeq_load.exe -- --port 7878 --rate 100 \
       --duration 10 --connections 16 --out BENCH_serving.json

   Latency is measured from each arrival's *scheduled* instant
   (seeded Poisson process), so queueing delay behind a saturated
   server is reported, not silently absorbed — the coordinated-
   omission-free complement to aeq_cli's closed-loop --clients. *)

open Cmdliner

let run host port rate duration connections seed sql tpch prepared priority
    deadline out =
  let statements =
    match (tpch, sql) with
    | [], [] -> [ "select count(*) from lineitem" ]
    | tpch, sql -> List.map Aeq_workload.Queries.tpch_q tpch @ sql
  in
  let priority =
    match priority with
    | "low" -> Aeq_net.Protocol.Low
    | "high" -> Aeq_net.Protocol.High
    | _ -> Aeq_net.Protocol.Normal
  in
  let cfg =
    {
      Aeq_net.Loadgen.host;
      port;
      rate;
      duration_seconds = duration;
      connections;
      seed = Int64.of_int seed;
      statements;
      use_prepared = prepared;
      priority;
      deadline_seconds = deadline;
    }
  in
  let s = Aeq_net.Loadgen.run cfg in
  let json =
    Aeq_net.Loadgen.summary_to_json
      ~extra:
        [
          ("rate_requested_qps", Printf.sprintf "%.9g" rate);
          ("connections", string_of_int connections);
          ("seed", string_of_int seed);
        ]
      s
  in
  (match out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    close_out oc;
    Printf.printf "wrote %s\n" path);
  Printf.printf
    "offered %.1f qps, achieved %.1f qps (%d/%d completed, %d attempted)\n\
     latency p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n%!"
    s.Aeq_net.Loadgen.offered_rate s.achieved_rate s.completed s.offered
    s.attempted (s.p50_seconds *. 1e3) (s.p95_seconds *. 1e3)
    (s.p99_seconds *. 1e3) (s.max_seconds *. 1e3);
  if s.failed <> [] then begin
    print_string "errors:";
    List.iter (fun (l, c) -> Printf.printf " %s=%d" l c) s.failed;
    print_newline ()
  end;
  if s.connect_errors > 0 then
    Printf.printf "connect errors: %d\n" s.connect_errors

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")

let port = Arg.(value & opt int 7878 & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")

let rate =
  Arg.(
    value & opt float 50.0
    & info [ "rate" ] ~docv:"QPS" ~doc:"Offered arrival rate (Poisson), queries/second.")

let duration =
  Arg.(
    value & opt float 5.0
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Arrival schedule length.")

let connections =
  Arg.(
    value & opt int 8
    & info [ "connections" ] ~docv:"N" ~doc:"Wire connections (worker threads).")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Arrival schedule seed.")

let sql =
  Arg.(
    value & opt_all string []
    & info [ "sql" ] ~docv:"SQL" ~doc:"Statement to drive (repeatable; round-robin).")

let tpch =
  Arg.(
    value & opt_all int []
    & info [ "tpch" ] ~docv:"N" ~doc:"TPC-H query number to drive (repeatable).")

let prepared =
  Arg.(
    value & flag
    & info [ "prepared" ] ~doc:"Prepare once per connection, then Execute_prepared.")

let priority =
  Arg.(
    value & opt string "normal"
    & info [ "priority" ] ~docv:"CLASS" ~doc:"Admission class: low, normal or high.")

let deadline =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Per-query deadline.")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON summary here (e.g. BENCH_serving.json).")

let cmd =
  let doc = "open-loop load generator for aeq_server" in
  Cmd.v
    (Cmd.info "aeq_load" ~doc)
    Term.(
      const run $ host $ port $ rate $ duration $ connections $ seed $ sql
      $ tpch $ prepared $ priority $ deadline $ out)

let () = Stdlib.exit (Cmd.eval cmd)

(* Concurrency-discipline lint CLI.

   Walks lib/**/*.ml under --root, applies the per-file rules
   (Aeq_lint.Lint), then runs the whole-tree cross-checks:

   - failpoint catalog: every literal [Failpoints.hit] site in the
     tree must be in [Failpoints.builtin_sites], and every catalog
     entry must have at least one hit site — a dead catalog entry
     means the chaos suite arms a site that can never fire;
   - registry coverage: every location in DESIGN.md's "Locking
     discipline" table must be declared to [Aeq_race], and every
     declaration must be documented in the table.

   Scoping: lib/race and lib/sim implement (respectively: are exempt
   from) the locking discipline, so the raw-mutex and yield-in-lock
   rules skip them; the sleep rule applies to the supervised execution
   layers (lib/exec, lib/mem) where an uninterruptible sleep can stall
   shutdown or crash reclaim.

   Exit 0 clean, 1 on findings, 2 on usage/IO errors. *)

let usage = "aeq_lint [--root DIR] [--quiet]"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec ml_files dir =
  match Sys.readdir dir with
  | entries ->
    Array.sort compare entries;
    Array.fold_left
      (fun acc name ->
        let path = Filename.concat dir name in
        if Sys.is_directory path then acc @ ml_files path
        else if Filename.check_suffix name ".ml" then acc @ [ path ]
        else acc)
      [] entries
  | exception Sys_error _ -> []

let under sub path =
  (* true when [path] contains ".../<sub>/..." *)
  let needle = Filename.concat sub "" in
  let needle = "/" ^ needle in
  let l = String.length needle and n = String.length path in
  let rec at i = i + l <= n && (String.sub path i l = needle || at (i + 1)) in
  at 0

let rules_for path =
  let open Aeq_lint.Lint in
  if under "race" path || under "sim" path then
    [ "failpoint-literal"; "declare-literal" ]
  else if under "exec" path || under "mem" path then all_rules
  else List.filter (fun r -> r <> "sleep-in-exec") all_rules

let () =
  let root = ref "." in
  let quiet = ref false in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root (default: .)");
      ("--quiet", Arg.Set quiet, " print nothing on success");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let lib = Filename.concat !root "lib" in
  if not (Sys.file_exists lib && Sys.is_directory lib) then begin
    Printf.eprintf "aeq_lint: no lib/ under %s\n" !root;
    exit 2
  end;
  let files = ml_files lib in
  let findings = ref [] in
  let hits = ref [] in
  let declares = ref [] in
  List.iter
    (fun path ->
      let scan =
        Aeq_lint.Lint.lint_source ~rules:(rules_for path) ~filename:path
          (read_file path)
      in
      findings := !findings @ scan.sc_findings;
      hits := !hits @ List.map (fun (s, l) -> (s, path, l)) scan.sc_hit_sites;
      declares :=
        !declares @ List.map (fun (s, l) -> (s, path, l)) scan.sc_declares)
    files;
  (* per-file findings stay typed; tree-level cross-check problems are
     plain lines *)
  let tree_problems = ref [] in
  let tree fmt =
    Printf.ksprintf (fun m -> tree_problems := !tree_problems @ [ m ]) fmt
  in
  (* failpoint catalog, both directions *)
  let catalog = Aeq_util.Failpoints.builtin_sites in
  List.iter
    (fun (site, path, line) ->
      if not (List.mem site catalog) then
        tree "%s:%d: [failpoint-catalog] hit site %S is not in \
              Failpoints.builtin_sites"
          path line site)
    !hits;
  List.iter
    (fun site ->
      if not (List.exists (fun (s, _, _) -> s = site) !hits) then
        tree "lib/util/failpoints.ml: [failpoint-catalog] catalog site %S has \
              no Failpoints.hit call in lib/ — dead catalog entry"
          site)
    catalog;
  (* registry coverage vs DESIGN.md *)
  let design_path = Filename.concat !root "DESIGN.md" in
  (if Sys.file_exists design_path then begin
     let table = Aeq_lint.Lint.design_table_names (read_file design_path) in
     if table = [] then
       tree "%s: [registry-coverage] no \"Locking discipline\" table found"
         design_path;
     List.iter
       (fun name ->
         if not (List.exists (fun (d, _, _) -> d = name) !declares) then
           tree "%s: [registry-coverage] location %S is documented but never \
                 declared to Aeq_race"
             design_path name)
       table;
     List.iter
       (fun (name, path, line) ->
         if not (List.mem name table) then
           tree "%s:%d: [registry-coverage] location %S is declared but \
                 missing from DESIGN.md's locking-discipline table"
             path line name)
       !declares
   end
   else tree "%s: [registry-coverage] DESIGN.md not found" design_path);
  let n_findings = List.length !findings + List.length !tree_problems in
  List.iter
    (fun f -> print_endline (Aeq_lint.Lint.finding_to_string f))
    !findings;
  List.iter print_endline !tree_problems;
  if n_findings = 0 then begin
    if not !quiet then
      Printf.printf "aeq_lint: %d files, %d hit sites, %d declared locations — clean\n"
        (List.length files) (List.length !hits) (List.length !declares);
    exit 0
  end
  else begin
    Printf.eprintf "aeq_lint: %d finding(s)\n" n_findings;
    exit 1
  end

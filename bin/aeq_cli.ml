(* Command-line front end: run SQL against a generated TPC-H database
   in any execution mode, with EXPLAIN and execution traces.

     dune exec bin/aeq_cli.exe -- --sf 0.01 --mode adaptive \
       "select count(*) from lineitem"
     dune exec bin/aeq_cli.exe -- --explain "select ..."
     dune exec bin/aeq_cli.exe -- --trace --mode adaptive --tpch 11 *)

open Cmdliner

(* Graceful drain on SIGTERM/SIGINT: the first signal asks the serve
   loop to stop issuing queries and makes exit go through
   [Engine.drain] (admission closed, in-flight work finishes, metrics
   flushed); a second signal gives up waiting and exits hard. *)
let drain_requested = Atomic.make false

let install_drain_handlers () =
  let handle _ =
    if Atomic.get drain_requested then Stdlib.exit 130
    else Atomic.set drain_requested true
  in
  try
    Sys.set_signal Sys.sigterm (Sys.Signal_handle handle);
    Sys.set_signal Sys.sigint (Sys.Signal_handle handle)
  with Invalid_argument _ | Sys_error _ -> ()

let mode_conv =
  let parse = function
    | "bytecode" -> Ok Aeq_exec.Driver.Bytecode
    | "unopt" | "unoptimized" -> Ok Aeq_exec.Driver.Unopt
    | "opt" | "optimized" -> Ok Aeq_exec.Driver.Opt
    | "adaptive" -> Ok Aeq_exec.Driver.Adaptive
    | s -> Error (`Msg ("unknown mode " ^ s))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Aeq_exec.Driver.mode_name m))

(* Closed-loop concurrent serving: [clients] domains each submit
   [iters] queries through the engine's scheduler and wait for the
   answer before sending the next. *)
let serve_clients engine ~clients ~iters ~mode ~deadline sql =
  Printf.printf "serving %d closed-loop clients x %d queries ...\n%!" clients iters;
  let per_client = Array.make clients [] in
  let ok = Atomic.make 0 and failed = Atomic.make 0 in
  let t0 = Aeq_util.Clock.now () in
  let client c () =
    let i = ref 0 in
    (* a requested drain stops the closed loop between queries; the
       in-flight one still completes through the scheduler *)
    while !i < iters && not (Atomic.get drain_requested) do
      let t = Aeq_util.Clock.now () in
      (match
         Aeq.Engine.query_concurrent engine ~mode ?deadline_seconds:deadline sql
       with
      | Ok _ -> Atomic.incr ok
      | Error e ->
        Atomic.incr failed;
        if c = 0 && !i = 0 then
          Printf.printf "client error: %s\n%!" (Aeq_exec.Query_error.to_string e));
      per_client.(c) <- (Aeq_util.Clock.now () -. t) :: per_client.(c);
      incr i
    done
  in
  let domains = List.init clients (fun c -> Domain.spawn (client c)) in
  List.iter Domain.join domains;
  let wall = Aeq_util.Clock.now () -. t0 in
  let lat = List.concat (Array.to_list per_client) in
  let issued = List.length lat in
  let pct p = Aeq_util.Stats.percentile p lat *. 1e3 in
  Printf.printf "%d ok, %d failed in %.2f s | %.1f q/s | p50 %.2f ms | p99 %.2f ms\n"
    (Atomic.get ok) (Atomic.get failed) wall
    (float_of_int issued /. wall)
    (pct 0.5) (pct 0.99);
  let s = Aeq.Engine.scheduler_stats engine in
  Printf.printf
    "scheduler: admitted %d | rejected %d | shed %d | expired %d | retried %d | degraded \
     %d | watchdog cancels %d | breaker trips %d (%s) | max depth %d | avg wait %.2f ms\n"
    s.Aeq_exec.Scheduler.admitted s.Aeq_exec.Scheduler.rejected
    s.Aeq_exec.Scheduler.shed s.Aeq_exec.Scheduler.expired
    s.Aeq_exec.Scheduler.retried s.Aeq_exec.Scheduler.degraded
    s.Aeq_exec.Scheduler.watchdog_cancels s.Aeq_exec.Scheduler.breaker_trips
    (Aeq_exec.Scheduler.breaker_state_name s.Aeq_exec.Scheduler.breaker_state)
    s.Aeq_exec.Scheduler.max_queue_depth
    (s.Aeq_exec.Scheduler.avg_wait_seconds *. 1e3)

let run sf threads mode explain trace verify tpch_n timeout mem_budget failpoints
    strict_compile clients iters obs trace_out metrics_out show_health sql =
  install_drain_handlers ();
  (match failpoints with
  | Some spec -> Aeq_util.Failpoints.set_from_string spec
  | None -> ());
  if verify then Aeq_util.Verify_mode.set (Stdlib.max 1 (Aeq_util.Verify_mode.get ()));
  (* exporters need the spans/decisions/metrics recorded, so the flags
     imply observability; turn it on before the engine registers its
     instruments *)
  if obs || trace_out <> None || metrics_out <> None then
    Aeq_obs.Control.set_enabled true;
  (* a Chrome trace needs the per-morsel event stream too *)
  let trace = trace || trace_out <> None in
  let failed = ref false in
  let engine = Aeq.Engine.create ~n_threads:threads () in
  Printf.printf "loading TPC-H sf=%.3f ...\n%!" sf;
  Aeq.Engine.load_tpch engine ~scale_factor:sf;
  let sql =
    match (tpch_n, sql) with
    | Some n, _ -> Aeq_workload.Queries.tpch_q n
    | None, Some s -> s
    | None, None -> "select count(*) as lineitems from lineitem"
  in
  if explain then print_endline (Aeq.Engine.explain engine sql)
  else if verify then begin
    (* translation validation: the verify level armed above makes every
       pass and every bytecode translation self-check on the way, and
       the engine then diffs the four execution modes' results *)
    Printf.printf "verifying across execution modes (verify level %d) ...\n%!"
      (Aeq_util.Verify_mode.get ());
    match Aeq.Engine.verify_query engine sql with
    | Ok () ->
      print_endline "verification passed: bytecode, unopt, opt and adaptive agree"
    | Error report ->
      Printf.printf "verification FAILED:\n%s\n" report;
      failed := true
  end
  else if clients > 0 then
    serve_clients engine ~clients ~iters ~mode ~deadline:timeout sql
  else begin
    let on_compile_failure = if strict_compile then `Fail else `Degrade in
    match
      Aeq.Engine.query engine ~mode ~collect_trace:trace ?timeout_seconds:timeout
        ?memory_budget_bytes:mem_budget ~on_compile_failure sql
    with
    | result ->
      print_endline (String.concat "\t" result.Aeq_exec.Driver.names);
      List.iter print_endline (Aeq.Engine.render_rows engine result);
      let st = result.Aeq_exec.Driver.stats in
      Printf.printf
        "-- %d rows | total %.2f ms (codegen %.2f, bytecode %.2f, compile %.2f, exec %.2f)\n"
        st.Aeq_exec.Driver.rows_out
        (st.Aeq_exec.Driver.total_seconds *. 1e3)
        (st.Aeq_exec.Driver.codegen_seconds *. 1e3)
        (st.Aeq_exec.Driver.bc_seconds *. 1e3)
        (st.Aeq_exec.Driver.compile_seconds *. 1e3)
        (st.Aeq_exec.Driver.exec_seconds *. 1e3);
      Printf.printf "-- pipeline modes: %s\n"
        (String.concat ", " st.Aeq_exec.Driver.final_modes);
      (match result.Aeq_exec.Driver.trace with
      | Some tr ->
        if trace_out = None then
          print_string (Aeq_exec.Trace.render tr ~n_threads:threads)
      | None -> ());
      (match trace_out with
      | Some path ->
        Aeq_exec.Trace_export.write_file ?trace:result.Aeq_exec.Driver.trace path;
        Printf.printf "-- wrote Chrome trace to %s (chrome://tracing, Perfetto)\n" path
      | None -> ())
    | exception Aeq_exec.Query_error.Error e ->
      Printf.printf "query error: %s\n" (Aeq_exec.Query_error.to_string e)
    | exception Aeq_ir.Trap.Error m -> Printf.printf "runtime error: %s\n" m
    | exception Aeq_plan.Planner.Plan_error m -> Printf.printf "planning error: %s\n" m
    | exception Aeq_sql.Parser.Parse_error m -> Printf.printf "parse error: %s\n" m
  end;
  if show_health then begin
    let h = Aeq.Engine.health engine in
    Printf.printf "health: %s\n" (Aeq.Engine.health_name h);
    (match h with
    | Aeq.Engine.Degraded reasons ->
      List.iter (fun r -> Printf.printf "  - %s\n" r) reasons
    | _ -> ());
    let crashes = Aeq_exec.Supervisor.crash_log () in
    if crashes <> [] then
      Printf.printf "  %d supervised domain crash(es) recorded\n"
        (List.length crashes)
  end;
  let flush () =
    match metrics_out with
    | Some path ->
      Aeq.Engine.dump_metrics path;
      Printf.printf "-- wrote Prometheus metrics to %s\n" path
    | None -> ()
  in
  if Atomic.get drain_requested then begin
    Printf.printf "signal received: draining ...\n%!";
    let clean = Aeq.Engine.drain ~deadline_seconds:10.0 ~flush engine in
    Printf.printf "drain %s\n"
      (if clean then "completed cleanly" else "forced at deadline")
  end
  else begin
    flush ();
    Aeq.Engine.close engine
  end;
  if !failed then exit 1

let cmd =
  let sf = Arg.(value & opt float 0.01 & info [ "sf" ] ~doc:"TPC-H scale factor.") in
  let threads = Arg.(value & opt int 4 & info [ "threads"; "j" ] ~doc:"Worker threads.") in
  let mode =
    Arg.(
      value
      & opt mode_conv Aeq_exec.Driver.Adaptive
      & info [ "mode"; "m" ] ~doc:"Execution mode: bytecode|unopt|opt|adaptive.")
  in
  let explain = Arg.(value & flag & info [ "explain" ] ~doc:"Print the plan, do not run.") in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Render the execution trace.") in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Translation validation: arm the static verifiers (as if \
             \\$(b,AEQ_VERIFY=1)) so every optimization pass and bytecode \
             translation self-checks, run the query in all four execution modes \
             and require identical results. Exits nonzero on divergence.")
  in
  let tpch_n =
    Arg.(value & opt (some int) None & info [ "tpch" ] ~doc:"Run TPC-H query N (1..22).")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~doc:"Abort the query after this many seconds.")
  in
  let mem_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "mem-budget" ] ~doc:"Per-query arena scratch budget in bytes.")
  in
  let failpoints =
    Arg.(
      value
      & opt (some string) None
      & info [ "failpoints" ]
          ~doc:
            "Arm fault-injection sites, e.g. \
             'compile.opt=fail,driver.morsel=fail\\@5' (same syntax as \
             \\$(b,AEQ_FAILPOINTS)).")
  in
  let strict_compile =
    Arg.(
      value & flag
      & info [ "strict-compile" ]
          ~doc:
            "Fail the query when a requested compilation fails instead of degrading \
             to bytecode.")
  in
  let clients =
    Arg.(
      value & opt int 0
      & info [ "clients" ]
          ~doc:
            "Serve the query to N closed-loop clients through the scheduler \
             (admission control, shedding, circuit breaker) and report \
             throughput, p50/p99 and serving stats. $(b,--timeout) becomes \
             the per-query deadline. Closed loop means each client waits \
             for its answer before sending the next query, so the offered \
             rate adapts to the engine and queueing delay is never \
             measured (coordinated omission); for a fixed offered rate \
             measured from the scheduled arrival instant, drive \
             $(b,aeq_server) with the open-loop $(b,aeq_load).")
  in
  let iters =
    Arg.(
      value & opt int 20
      & info [ "iters" ] ~doc:"Queries per client in $(b,--clients) mode.")
  in
  let obs =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Enable the observability subsystem (metrics, lifecycle spans, \
             adaptive decision log) as if \\$(b,AEQ_OBS=1). Implied by \
             $(b,--trace-out) and $(b,--metrics-out).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON file merging morsel/compile events, \
             query lifecycle spans and adaptive decisions; open it in \
             chrome://tracing or Perfetto. Implies $(b,--trace) and $(b,--obs).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the metrics registry in Prometheus text exposition format on \
             exit. Implies $(b,--obs).")
  in
  let show_health =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "Print the engine health state (serving|degraded|draining|stopped) \
             after the run, with one reason per crashed or failed serving \
             domain and the supervised crash count.")
  in
  let sql = Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL") in
  Cmd.v
    (Cmd.info "aeq_cli" ~doc:"Adaptive compiled query engine (ICDE'18 reproduction)")
    Term.(
      const run $ sf $ threads $ mode $ explain $ trace $ verify $ tpch_n $ timeout
      $ mem_budget $ failpoints $ strict_compile $ clients $ iters $ obs $ trace_out
      $ metrics_out $ show_health $ sql)

let () = exit (Cmd.eval cmd)

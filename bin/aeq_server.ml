(* The wire server binary: load a TPC-H database, bind the wire and
   metrics listeners, serve until SIGTERM/SIGINT drains it.

     dune exec bin/aeq_server.exe -- --sf 0.01 --port 7878 \
       --metrics-port 9187
     curl -s localhost:9187/metrics | head *)

open Cmdliner

let serve port metrics_port sf threads max_connections queue_capacity
    dispatchers fetch_size drain_deadline =
  let engine = Aeq.Engine.create ?n_threads:threads () in
  Aeq.Engine.load_tpch engine ~scale_factor:sf;
  (match (queue_capacity, dispatchers) with
  | None, None -> ()
  | qc, d ->
    let base = Aeq_exec.Scheduler.default_config in
    Aeq.Engine.set_scheduler_config engine
      {
        base with
        queue_capacity = Option.value ~default:base.queue_capacity qc;
        dispatchers = Option.value ~default:base.dispatchers d;
      });
  let config =
    {
      Aeq_net.Server.default_config with
      port;
      metrics_port;
      max_connections;
      fetch_size;
    }
  in
  let server = Aeq_net.Server.start ~config engine in
  Aeq_net.Server.install_signal_handlers ~deadline_seconds:drain_deadline
    server;
  Printf.printf "aeq_server: serving on 127.0.0.1:%d%s (sf=%g, %d threads, %d \
                 connections max)\n%!"
    (Aeq_net.Server.port server)
    (match Aeq_net.Server.metrics_port server with
    | Some p -> Printf.sprintf ", metrics on 127.0.0.1:%d" p
    | None -> "")
    sf (Aeq.Engine.n_threads engine) max_connections;
  Aeq_net.Server.wait server;
  print_endline "aeq_server: stopped"

let port =
  Arg.(value & opt int 7878 & info [ "port" ] ~docv:"PORT" ~doc:"Wire port (0 = ephemeral).")

let metrics_port =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:"HTTP port for /metrics and /healthz (0 = ephemeral; omit to disable).")

let sf =
  Arg.(value & opt float 0.01 & info [ "sf" ] ~docv:"SF" ~doc:"TPC-H scale factor.")

let threads =
  Arg.(
    value
    & opt (some int) None
    & info [ "threads" ] ~docv:"N" ~doc:"Worker pool size (default: cores, max 8).")

let max_connections =
  Arg.(
    value & opt int 64
    & info [ "max-connections" ] ~docv:"N"
        ~doc:"Connection limit; excess connections are shed with a structured \
              Overloaded frame.")

let queue_capacity =
  Arg.(
    value
    & opt (some int) None
    & info [ "queue-capacity" ] ~docv:"N" ~doc:"Admission queue bound.")

let dispatchers =
  Arg.(
    value
    & opt (some int) None
    & info [ "dispatchers" ] ~docv:"N" ~doc:"Dispatcher domains.")

let fetch_size =
  Arg.(value & opt int 256 & info [ "fetch-size" ] ~docv:"ROWS" ~doc:"Rows per result page.")

let drain_deadline =
  Arg.(
    value & opt float 30.0
    & info [ "drain-deadline" ] ~docv:"SECONDS"
        ~doc:"SIGTERM drain deadline: in-flight queries get this long to finish.")

let cmd =
  let doc = "serve the adaptive query engine over the wire protocol" in
  Cmd.v
    (Cmd.info "aeq_server" ~doc)
    Term.(
      const serve $ port $ metrics_port $ sf $ threads $ max_connections
      $ queue_capacity $ dispatchers $ fetch_size $ drain_deadline)

let () = Stdlib.exit (Cmd.eval cmd)

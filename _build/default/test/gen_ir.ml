(* Random structured IR program generator for differential testing.

   Programs take three i64 parameters plus a pointer to a 64-word
   scratch buffer. Control flow is structured (diamonds and counted
   loops), so every generated program terminates. Division operands
   are masked to be non-zero, and checked arithmetic usually operates
   on masked (small) operands so traps stay rare but possible. *)

module P = Aeq_util.Prng

let n_mem_words = 64

let mask_small b v =
  (* v & 0xFFFF — keeps checked arithmetic below any overflow bound *)
  Builder.binop b Instr.And Types.I64 v (Instr.Imm 0xFFFFL)

let safe_divisor b v =
  (* (v & 7) + 1: non-zero, small *)
  let m = Builder.binop b Instr.And Types.I64 v (Instr.Imm 7L) in
  Builder.binop b Instr.Add Types.I64 m (Instr.Imm 1L)

let mem_addr b ~membase idx_v =
  (* membase + (idx & 63) * 8 *)
  let idx = Builder.binop b Instr.And Types.I64 idx_v (Instr.Imm 63L) in
  Builder.gep b ~base:membase ~index:idx ~scale:8 ~offset:0

type ctx = {
  b : Builder.t;
  rng : P.t;
  mutable pool : Instr.value list; (* i64 values in scope *)
  mutable fpool : Instr.value list; (* f64 values in scope *)
  membase : Instr.value;
}

let pick ctx = P.pick ctx.rng (Array.of_list ctx.pool)

let push ctx v = ctx.pool <- v :: ctx.pool

let arith_ops =
  [| Instr.Add; Instr.Sub; Instr.Mul; Instr.And; Instr.Or; Instr.Xor |]

let cmp_ops = [| Instr.Eq; Instr.Ne; Instr.Slt; Instr.Sle; Instr.Sgt; Instr.Sge; Instr.Ult; Instr.Ule; Instr.Ugt; Instr.Uge |]

let emit_arith ctx =
  let a = pick ctx and b = pick ctx in
  match P.int ctx.rng 6 with
  | 0 | 1 -> push ctx (Builder.binop ctx.b (P.pick ctx.rng arith_ops) Types.I64 a b)
  | 2 ->
    let d = safe_divisor ctx.b b in
    push ctx (Builder.binop ctx.b (if P.bool ctx.rng then Instr.Div else Instr.Rem) Types.I64 a d)
  | 3 ->
    let sh = Builder.binop ctx.b Instr.And Types.I64 b (Instr.Imm 31L) in
    let op = P.pick ctx.rng [| Instr.Shl; Instr.LShr; Instr.AShr |] in
    push ctx (Builder.binop ctx.b op Types.I64 a sh)
  | 4 ->
    (* narrow-width arithmetic through casts *)
    let ty = P.pick ctx.rng [| Types.I8; Types.I16; Types.I32 |] in
    let na = Builder.cast ctx.b Instr.Trunc ~from_ty:Types.I64 ~to_ty:ty a in
    let nb = Builder.cast ctx.b Instr.Trunc ~from_ty:Types.I64 ~to_ty:ty b in
    let r = Builder.binop ctx.b (P.pick ctx.rng arith_ops) ty na nb in
    let wide =
      if P.bool ctx.rng then Builder.cast ctx.b Instr.Sext ~from_ty:ty ~to_ty:Types.I64 r
      else Builder.cast ctx.b Instr.Zext ~from_ty:ty ~to_ty:Types.I64 r
    in
    push ctx wide
  | _ ->
    let cond = Builder.icmp ctx.b (P.pick ctx.rng cmp_ops) Types.I64 a b in
    push ctx (Builder.select ctx.b Types.I64 cond a b)

let emit_checked ctx =
  let a = pick ctx and b = pick ctx in
  let a = mask_small ctx.b a and b = mask_small ctx.b b in
  let op = P.pick ctx.rng [| Instr.OAdd; Instr.OSub; Instr.OMul |] in
  push ctx (Builder.checked ctx.b op Types.I64 a b)

let emit_float ctx =
  let take_f () =
    match ctx.fpool with
    | [] -> Builder.cast ctx.b Instr.SiToFp ~from_ty:Types.I64 ~to_ty:Types.F64 (pick ctx)
    | l -> P.pick ctx.rng (Array.of_list l)
  in
  let x = take_f () and y = take_f () in
  let op = P.pick ctx.rng [| Instr.FAdd; Instr.FSub; Instr.FMul |] in
  let r = Builder.fbinop ctx.b op x y in
  ctx.fpool <- r :: ctx.fpool;
  if P.bool ctx.rng then begin
    let c =
      Builder.fcmp ctx.b
        (P.pick ctx.rng [| Instr.FEq; Instr.FNe; Instr.FLt; Instr.FLe; Instr.FGt; Instr.FGe |])
        r y
    in
    push ctx (Builder.cast ctx.b Instr.Zext ~from_ty:Types.I1 ~to_ty:Types.I64 c)
  end

let emit_mem ctx =
  let addr = mem_addr ctx.b ~membase:ctx.membase (pick ctx) in
  if P.bool ctx.rng then Builder.store ctx.b Types.I64 ~addr (pick ctx)
  else push ctx (Builder.load ctx.b Types.I64 addr)

let rec emit_if ctx depth =
  let cond = Builder.icmp ctx.b (P.pick ctx.rng cmp_ops) Types.I64 (pick ctx) (pick ctx) in
  let then_b = Builder.new_block ctx.b in
  let else_b = Builder.new_block ctx.b in
  let join_b = Builder.new_block ctx.b in
  Builder.condbr ctx.b cond ~if_true:then_b ~if_false:else_b;
  let saved_pool = ctx.pool in
  let saved_fpool = ctx.fpool in
  Builder.switch_to ctx.b then_b;
  emit_stmts ctx (depth - 1) (1 + P.int ctx.rng 3);
  let then_v = pick ctx in
  let then_end = Builder.current_block ctx.b in
  Builder.br ctx.b join_b;
  ctx.pool <- saved_pool;
  ctx.fpool <- saved_fpool;
  Builder.switch_to ctx.b else_b;
  emit_stmts ctx (depth - 1) (1 + P.int ctx.rng 3);
  let else_v = pick ctx in
  let else_end = Builder.current_block ctx.b in
  Builder.br ctx.b join_b;
  ctx.pool <- saved_pool;
  ctx.fpool <- saved_fpool;
  Builder.switch_to ctx.b join_b;
  push ctx (Builder.phi ctx.b Types.I64 [ (then_end, then_v); (else_end, else_v) ])

and emit_loop ctx depth =
  let trip = Int64.of_int (1 + P.int ctx.rng 8) in
  let init = pick ctx in
  let pre = Builder.current_block ctx.b in
  let head = Builder.new_block ctx.b in
  let body = Builder.new_block ctx.b in
  let exit = Builder.new_block ctx.b in
  Builder.br ctx.b head;
  Builder.switch_to ctx.b head;
  let i = Builder.phi ctx.b Types.I64 [ (pre, Instr.Imm 0L) ] in
  let acc = Builder.phi ctx.b Types.I64 [ (pre, init) ] in
  let cont = Builder.icmp ctx.b Instr.Slt Types.I64 i (Instr.Imm trip) in
  Builder.condbr ctx.b cont ~if_true:body ~if_false:exit;
  Builder.switch_to ctx.b body;
  let saved_pool = ctx.pool in
  let saved_fpool = ctx.fpool in
  push ctx acc;
  push ctx i;
  emit_stmts ctx (depth - 1) (1 + P.int ctx.rng 3);
  let acc' = Builder.binop ctx.b Instr.Add Types.I64 (pick ctx) acc in
  let i' = Builder.binop ctx.b Instr.Add Types.I64 i (Instr.Imm 1L) in
  let body_end = Builder.current_block ctx.b in
  Builder.br ctx.b head;
  Builder.add_phi_incoming ctx.b ~block:head ~dst:i ~pred:body_end i';
  Builder.add_phi_incoming ctx.b ~block:head ~dst:acc ~pred:body_end acc';
  ctx.pool <- saved_pool;
  ctx.fpool <- saved_fpool;
  Builder.switch_to ctx.b exit;
  push ctx acc

and emit_stmt ctx depth =
  match P.int ctx.rng (if depth > 0 then 8 else 6) with
  | 0 | 1 -> emit_arith ctx
  | 2 -> emit_checked ctx
  | 3 -> emit_float ctx
  | 4 | 5 -> emit_mem ctx
  | 6 -> emit_if ctx depth
  | _ -> emit_loop ctx depth

and emit_stmts ctx depth n =
  for _ = 1 to n do
    emit_stmt ctx depth
  done

let generate ?(complexity = 12) seed =
  let rng = P.create (Int64.of_int seed) in
  let b = Builder.create ~name:(Printf.sprintf "rand_%d" seed)
      ~params:[ Types.I64; Types.I64; Types.I64; Types.Ptr ]
  in
  let ctx =
    {
      b;
      rng;
      pool = [ Builder.param b 0; Builder.param b 1; Builder.param b 2; Instr.Imm 5L; Instr.Imm (-3L) ];
      fpool = [];
      membase = Builder.param b 3;
    }
  in
  emit_stmts ctx 2 complexity;
  (* Fold a sample of the pool into the result so most computed values
     are live at the end. *)
  let result =
    List.fold_left
      (fun acc v -> Builder.binop ctx.b Instr.Xor Types.I64 acc v)
      (pick ctx)
      (List.filteri (fun i _ -> i mod 3 = 0) ctx.pool)
  in
  Builder.ret ctx.b result;
  let f = Builder.finish b in
  Layout.normalize f;
  Verify.run f;
  f

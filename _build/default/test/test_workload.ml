(* Sanity tests for the TPC-H-style generator: cardinality scaling,
   referential integrity, value domains, determinism. *)

module Table = Aeq_storage.Table

let make sf =
  let c = Aeq_storage.Catalog.create () in
  Aeq_workload.Tpch.load ~scale_factor:sf c;
  c

let catalog = lazy (make 0.005)

let tbl name = Aeq_storage.Catalog.table (Lazy.force catalog) name

let rows name = (tbl name).Table.n_rows

let test_cardinalities_scale () =
  Alcotest.(check int) "region" 5 (rows "region");
  Alcotest.(check int) "nation" 25 (rows "nation");
  Alcotest.(check int) "supplier" 50 (rows "supplier");
  Alcotest.(check int) "customer" 750 (rows "customer");
  Alcotest.(check int) "orders" 7500 (rows "orders");
  Alcotest.(check int) "partsupp = 4x part" (4 * rows "part") (rows "partsupp");
  (* lineitem has 1-7 lines per order *)
  Alcotest.(check bool) "lineitem fanout" true
    (rows "lineitem" >= rows "orders" && rows "lineitem" <= 7 * rows "orders")

let arena () = Aeq_storage.Catalog.arena (Lazy.force catalog)

let test_referential_integrity () =
  let a = arena () in
  let li = tbl "lineitem" and orders = tbl "orders" and part = tbl "part" in
  let ok = ref true in
  for r = 0 to li.Table.n_rows - 1 do
    let okey = Int64.to_int (Table.get a li ~col:0 ~row:r) in
    let pkey = Int64.to_int (Table.get a li ~col:1 ~row:r) in
    if okey < 0 || okey >= orders.Table.n_rows then ok := false;
    if pkey < 0 || pkey >= part.Table.n_rows then ok := false
  done;
  Alcotest.(check bool) "lineitem FKs in range" true !ok;
  let cust = tbl "customer" in
  let ok = ref true in
  for r = 0 to orders.Table.n_rows - 1 do
    let ckey = Int64.to_int (Table.get a orders ~col:1 ~row:r) in
    if ckey < 0 || ckey >= cust.Table.n_rows then ok := false
  done;
  Alcotest.(check bool) "orders FKs in range" true !ok

let test_value_domains () =
  let a = arena () in
  let li = tbl "lineitem" in
  let qty_col = Table.column_index li "l_quantity" in
  let disc_col = Table.column_index li "l_discount" in
  let ship_col = Table.column_index li "l_shipdate" in
  let ok = ref true in
  for r = 0 to li.Table.n_rows - 1 do
    let q = Table.get a li ~col:qty_col ~row:r in
    let d = Table.get a li ~col:disc_col ~row:r in
    let s = Int64.to_int (Table.get a li ~col:ship_col ~row:r) in
    (* quantity in [1, 50] (scaled), discount in [0, 0.10] *)
    if Int64.compare q 100L < 0 || Int64.compare q 5000L > 0 then ok := false;
    if Int64.compare d 0L < 0 || Int64.compare d 10L > 0 then ok := false;
    (* ship dates within 1992-01-01 .. 1998-12-31 *)
    if s < 8035 || s > 10591 then ok := false
  done;
  Alcotest.(check bool) "domains" true !ok

let test_returnflag_skew () =
  (* Q1 depends on A/F, N/O, R/F groups existing *)
  let a = arena () in
  let li = tbl "lineitem" in
  let dict = Aeq_storage.Catalog.dict (Lazy.force catalog) in
  let flag_col = Table.column_index li "l_returnflag" in
  let counts = Hashtbl.create 4 in
  for r = 0 to li.Table.n_rows - 1 do
    let f = Aeq_rt.Dict.decode dict (Table.get a li ~col:flag_col ~row:r) in
    Hashtbl.replace counts f (1 + Option.value ~default:0 (Hashtbl.find_opt counts f))
  done;
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " present") true (Hashtbl.mem counts f))
    [ "A"; "N"; "R" ]

let test_deterministic () =
  let c1 = make 0.002 and c2 = make 0.002 in
  let t1 = Aeq_storage.Catalog.table c1 "lineitem"
  and t2 = Aeq_storage.Catalog.table c2 "lineitem" in
  Alcotest.(check int) "same row count" t1.Table.n_rows t2.Table.n_rows;
  let a1 = Aeq_storage.Catalog.arena c1 and a2 = Aeq_storage.Catalog.arena c2 in
  let same = ref true in
  for r = 0 to t1.Table.n_rows - 1 do
    for col = 0 to Array.length t1.Table.columns - 1 do
      if not (Int64.equal (Table.get a1 t1 ~col ~row:r) (Table.get a2 t2 ~col ~row:r)) then
        same := false
    done
  done;
  Alcotest.(check bool) "bit-identical data" true !same

let test_seed_changes_data () =
  let c1 = make 0.002 in
  let c3 = Aeq_storage.Catalog.create () in
  Aeq_workload.Tpch.load ~seed:99L ~scale_factor:0.002 c3;
  let t1 = Aeq_storage.Catalog.table c1 "orders"
  and t3 = Aeq_storage.Catalog.table c3 "orders" in
  let a1 = Aeq_storage.Catalog.arena c1 and a3 = Aeq_storage.Catalog.arena c3 in
  let diff = ref false in
  for r = 0 to Stdlib.min t1.Table.n_rows t3.Table.n_rows - 1 do
    if not (Int64.equal (Table.get a1 t1 ~col:3 ~row:r) (Table.get a3 t3 ~col:3 ~row:r))
    then diff := true
  done;
  Alcotest.(check bool) "different seeds differ" true !diff

let () =
  Alcotest.run "workload"
    [
      ( "tpch",
        [
          Alcotest.test_case "cardinalities" `Quick test_cardinalities_scale;
          Alcotest.test_case "referential integrity" `Quick test_referential_integrity;
          Alcotest.test_case "value domains" `Quick test_value_domains;
          Alcotest.test_case "returnflag skew" `Quick test_returnflag_skew;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seeded" `Quick test_seed_changes_data;
        ] );
    ]

(* Tests for the bytecode VM: translation, interpretation, register
   allocation, macro-op fusion — differentially against the direct IR
   evaluator, across all allocation strategies. *)

module A = Aeq_mem.Arena

let no_symbols : Aeq_vm.Rt_fn.resolver = fun _ -> None

let run_vm ?strategy ?fuse f mem args =
  let prog = Aeq_vm.Translate.translate ?strategy ?fuse ~symbols:no_symbols f in
  Aeq_vm.Interp.run prog mem ~args ()

(* --- hand-written programs ----------------------------------------- *)

let build_add_checked () =
  let b = Builder.create ~name:"addchk" ~params:[ Types.I64; Types.I64 ] in
  let r = Builder.checked b Instr.OAdd Types.I64 (Builder.param b 0) (Builder.param b 1) in
  Builder.ret b r;
  let f = Builder.finish b in
  Layout.normalize f;
  Verify.run f;
  f

let build_sum_loop () =
  let b = Builder.create ~name:"sum" ~params:[ Types.I64 ] in
  let head = Builder.new_block b in
  let body = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.br b head;
  Builder.switch_to b head;
  let i = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let acc = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let c = Builder.icmp b Instr.Slt Types.I64 i (Builder.param b 0) in
  Builder.condbr b c ~if_true:body ~if_false:exit;
  Builder.switch_to b body;
  let acc' = Builder.binop b Instr.Add Types.I64 acc i in
  let i' = Builder.binop b Instr.Add Types.I64 i (Instr.Imm 1L) in
  Builder.br b head;
  Builder.add_phi_incoming b ~block:head ~dst:i ~pred:body i';
  Builder.add_phi_incoming b ~block:head ~dst:acc ~pred:body acc';
  Builder.switch_to b exit;
  Builder.ret b acc;
  let f = Builder.finish b in
  Layout.normalize f;
  Verify.run f;
  f

(* Sums an i64 column through fused gep+load. *)
let build_column_sum () =
  let b = Builder.create ~name:"colsum" ~params:[ Types.Ptr; Types.I64 ] in
  let head = Builder.new_block b in
  let body = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.br b head;
  Builder.switch_to b head;
  let i = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let acc = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let c = Builder.icmp b Instr.Slt Types.I64 i (Builder.param b 1) in
  Builder.condbr b c ~if_true:body ~if_false:exit;
  Builder.switch_to b body;
  let addr = Builder.gep b ~base:(Builder.param b 0) ~index:i ~scale:8 ~offset:0 in
  let v = Builder.load b Types.I64 addr in
  let acc' = Builder.binop b Instr.Add Types.I64 acc v in
  let i' = Builder.binop b Instr.Add Types.I64 i (Instr.Imm 1L) in
  Builder.br b head;
  Builder.add_phi_incoming b ~block:head ~dst:i ~pred:body i';
  Builder.add_phi_incoming b ~block:head ~dst:acc ~pred:body acc';
  Builder.switch_to b exit;
  Builder.ret b acc;
  let f = Builder.finish b in
  Layout.normalize f;
  Verify.run f;
  f

(* --- unit tests ----------------------------------------------------- *)

let test_checked_add_ok () =
  let mem = A.create () in
  let r = run_vm (build_add_checked ()) mem [| 20L; 22L |] in
  Alcotest.(check int64) "20+22" 42L r

let test_checked_add_overflow () =
  let mem = A.create () in
  Alcotest.check_raises "overflow traps" (Trap.Error "integer overflow") (fun () ->
      ignore (run_vm (build_add_checked ()) mem [| Int64.max_int; 1L |]))

let test_checked_fusion_applied () =
  let prog = Aeq_vm.Translate.translate ~symbols:no_symbols (build_add_checked ()) in
  let has_chk =
    Array.exists
      (fun (i : Aeq_vm.Bytecode.insn) -> i.op = Aeq_vm.Opcode.AddChk_i64)
      prog.Aeq_vm.Bytecode.code
  in
  Alcotest.(check bool) "AddChk_i64 emitted" true has_chk

let test_sum_loop () =
  let mem = A.create () in
  Alcotest.(check int64) "sum 0..9" 45L (run_vm (build_sum_loop ()) mem [| 10L |]);
  Alcotest.(check int64) "sum empty" 0L (run_vm (build_sum_loop ()) mem [| 0L |]);
  Alcotest.(check int64) "sum 0..999" 499500L (run_vm (build_sum_loop ()) mem [| 1000L |])

let test_cmp_branch_fusion_applied () =
  let prog = Aeq_vm.Translate.translate ~symbols:no_symbols (build_sum_loop ()) in
  let has_fused =
    Array.exists
      (fun (i : Aeq_vm.Bytecode.insn) -> i.op = Aeq_vm.Opcode.JmpSlt)
      prog.Aeq_vm.Bytecode.code
  in
  Alcotest.(check bool) "JmpSlt emitted" true has_fused

let test_column_sum_and_loadidx_fusion () =
  let mem = A.create () in
  let alloc = A.allocator mem in
  let n = 100 in
  let col = A.alloc alloc (8 * n) in
  for i = 0 to n - 1 do
    A.set_i64 mem (col + (8 * i)) (Int64.of_int (i * i))
  done;
  let f = build_column_sum () in
  let expected = ref 0L in
  for i = 0 to n - 1 do
    expected := Int64.add !expected (Int64.of_int (i * i))
  done;
  Alcotest.(check int64) "column sum" !expected
    (run_vm f mem [| Int64.of_int col; Int64.of_int n |]);
  let prog = Aeq_vm.Translate.translate ~symbols:no_symbols f in
  let has_loadidx =
    Array.exists
      (fun (i : Aeq_vm.Bytecode.insn) -> i.op = Aeq_vm.Opcode.LoadIdx64)
      prog.Aeq_vm.Bytecode.code
  in
  Alcotest.(check bool) "LoadIdx64 emitted" true has_loadidx

let test_runtime_call () =
  (* A generated function calling back into a "C++" helper. *)
  let b = Builder.create ~name:"callrt" ~params:[ Types.I64 ] in
  let r =
    Builder.call b Types.I64 "triple" [ (Builder.param b 0, Types.I64) ]
  in
  let r2 = Builder.binop b Instr.Add Types.I64 r (Instr.Imm 1L) in
  Builder.call_void b "observe" [ (r2, Types.I64) ];
  Builder.ret b r2;
  let f = Builder.finish b in
  Layout.normalize f;
  Verify.run f;
  let observed = ref 0L in
  let symbols = function
    | "triple" -> Some (Aeq_vm.Rt_fn.F1 (fun x -> Int64.mul 3L x))
    | "observe" ->
      Some
        (Aeq_vm.Rt_fn.F1
           (fun x ->
             observed := x;
             0L))
    | _ -> None
  in
  let mem = A.create () in
  let prog = Aeq_vm.Translate.translate ~symbols f in
  let r = Aeq_vm.Interp.run prog mem ~args:[| 7L |] () in
  Alcotest.(check int64) "3*7+1" 22L r;
  Alcotest.(check int64) "side effect seen" 22L !observed

let test_division_by_zero_traps () =
  let b = Builder.create ~name:"div" ~params:[ Types.I64; Types.I64 ] in
  let r = Builder.binop b Instr.Div Types.I64 (Builder.param b 0) (Builder.param b 1) in
  Builder.ret b r;
  let f = Builder.finish b in
  Layout.normalize f;
  let mem = A.create () in
  Alcotest.(check int64) "7/2" 3L (run_vm f mem [| 7L; 2L |]);
  Alcotest.check_raises "div by zero" (Trap.Error "division by zero") (fun () ->
      ignore (run_vm f mem [| 7L; 0L |]))

let test_disasm_smoke () =
  let prog = Aeq_vm.Translate.translate ~symbols:no_symbols (build_sum_loop ()) in
  let text = Aeq_vm.Disasm.program prog in
  Alcotest.(check bool) "has content" true (String.length text > 50)

(* --- register allocation ------------------------------------------- *)

let regfile_size strategy f =
  let prog = Aeq_vm.Translate.translate ~strategy ~symbols:no_symbols f in
  prog.Aeq_vm.Bytecode.n_reg_bytes

let test_regalloc_ordering () =
  (* loop-aware <= window <= no-reuse on a corpus of random programs *)
  for seed = 0 to 30 do
    let f = Gen_ir.generate ~complexity:20 seed in
    let la = regfile_size Aeq_vm.Regalloc.Loop_aware f in
    let w = regfile_size (Aeq_vm.Regalloc.Window 4) f in
    let nr = regfile_size Aeq_vm.Regalloc.No_reuse f in
    if not (la <= w && w <= nr) then
      Alcotest.failf "seed %d: loop-aware %d, window %d, no-reuse %d" seed la w nr
  done

let test_liveness_covers_uses () =
  (* Every use of a value must fall inside its computed block interval. *)
  for seed = 0 to 30 do
    let f = Gen_ir.generate ~complexity:15 seed in
    let dom = Dom.compute f in
    let loops = Loops.compute f dom in
    let iv = Aeq_vm.Regalloc.block_intervals f loops in
    let check_value blk = function
      | Instr.Vreg v ->
        let lo, hi = iv.(v) in
        if not (lo <= blk && blk <= hi) then
          Alcotest.failf "seed %d: value %%%d used in block %d outside [%d,%d]" seed v blk
            lo hi
      | Instr.Imm _ | Instr.Fimm _ -> ()
    in
    Array.iter
      (fun (b : Block.t) ->
        Array.iter
          (fun (p : Instr.phi) ->
            Array.iter (fun (pred, v) -> check_value pred v) p.Instr.incoming)
          b.Block.phis;
        Array.iter
          (fun i -> List.iter (check_value b.Block.id) (Instr.operands i))
          b.Block.instrs;
        match b.Block.term with
        | Instr.CondBr { cond; _ } -> check_value b.Block.id cond
        | Instr.Ret (Some v) -> check_value b.Block.id v
        | _ -> ())
      f.Func.blocks
  done

let test_loop_extension_fig10 () =
  (* The Fig. 10 scenario: a value defined before a loop and used
     inside it must live until the loop's last block. *)
  let b = Builder.create ~name:"fig10" ~params:[ Types.I64 ] in
  let v = Builder.binop b Instr.Add Types.I64 (Builder.param b 0) (Instr.Imm 7L) in
  let head = Builder.new_block b in
  let body = Builder.new_block b in
  let latch = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.br b head;
  Builder.switch_to b head;
  let i = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let acc = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let c = Builder.icmp b Instr.Slt Types.I64 i (Instr.Imm 10L) in
  Builder.condbr b c ~if_true:body ~if_false:exit;
  Builder.switch_to b body;
  (* v used here, one loop level deeper than its definition *)
  let u = Builder.binop b Instr.Add Types.I64 v i in
  Builder.br b latch;
  Builder.switch_to b latch;
  let acc' = Builder.binop b Instr.Add Types.I64 acc u in
  let i' = Builder.binop b Instr.Add Types.I64 i (Instr.Imm 1L) in
  Builder.br b head;
  Builder.add_phi_incoming b ~block:head ~dst:i ~pred:latch i';
  Builder.add_phi_incoming b ~block:head ~dst:acc ~pred:latch acc';
  Builder.switch_to b exit;
  Builder.ret b acc;
  let f = Builder.finish b in
  Layout.normalize f;
  Verify.run f;
  let dom = Dom.compute f in
  let loops = Loops.compute f dom in
  let iv = Aeq_vm.Regalloc.block_intervals f loops in
  let v_id = match v with Instr.Vreg id -> id | _ -> assert false in
  let _, hi = iv.(v_id) in
  (* the latch is the last loop block; v must live through it *)
  let latch_id =
    (* find the block whose successor list contains a smaller id (back edge source) *)
    Array.to_list f.Func.blocks
    |> List.find (fun (blk : Block.t) ->
           List.exists (fun s -> s <= blk.Block.id) (Block.successors blk))
  in
  Alcotest.(check bool) "lifetime extended to loop end" true (hi >= latch_id.Block.id)

(* --- arithmetic semantics boundaries --------------------------------- *)

let test_overflow_boundaries () =
  let module S = Semantics in
  (* add: max+1 overflows, max+0 does not; min-1 overflows *)
  Alcotest.(check bool) "max+1" true (S.add_ovf ~width:64 Int64.max_int 1L);
  Alcotest.(check bool) "max+0" false (S.add_ovf ~width:64 Int64.max_int 0L);
  Alcotest.(check bool) "min+(-1)" true (S.add_ovf ~width:64 Int64.min_int (-1L));
  Alcotest.(check bool) "min+max" false (S.add_ovf ~width:64 Int64.min_int Int64.max_int);
  Alcotest.(check bool) "sub min-1" true (S.sub_ovf ~width:64 Int64.min_int 1L);
  Alcotest.(check bool) "sub max-(-1)" true (S.sub_ovf ~width:64 Int64.max_int (-1L));
  Alcotest.(check bool) "sub max-0" false (S.sub_ovf ~width:64 Int64.max_int 0L);
  (* mul: the classic min * -1 case *)
  Alcotest.(check bool) "min*-1" true (S.mul_ovf ~width:64 Int64.min_int (-1L));
  Alcotest.(check bool) "-1*min" true (S.mul_ovf ~width:64 (-1L) Int64.min_int);
  Alcotest.(check bool) "2^31*2^31" true
    (S.mul_ovf ~width:64 0x100000000L 0x100000000L);
  Alcotest.(check bool) "2^31*2^31 fits 64? no" true
    (S.mul_ovf ~width:64 4294967296L 4294967296L);
  Alcotest.(check bool) "3*5" false (S.mul_ovf ~width:64 3L 5L);
  (* 32-bit widths *)
  Alcotest.(check bool) "i32 max+1" true (S.add_ovf ~width:32 2147483647L 1L);
  Alcotest.(check bool) "i32 max+0" false (S.add_ovf ~width:32 2147483647L 0L);
  Alcotest.(check bool) "i32 mul" true (S.mul_ovf ~width:32 65536L 65536L)

let test_narrow_canonical_forms () =
  let module S = Semantics in
  (* canonical i8 values are sign-extended *)
  Alcotest.(check int64) "127+1 wraps to -128" (-128L) (S.add ~width:8 127L 1L);
  Alcotest.(check int64) "i16 wrap" (-32768L) (S.add ~width:16 32767L 1L);
  Alcotest.(check int64) "i32 wrap" (-2147483648L) (S.add ~width:32 2147483647L 1L);
  (* lshr operates on the masked width *)
  Alcotest.(check int64) "lshr i8 of -1" 127L (S.lshr ~width:8 (-1L) 1L);
  Alcotest.(check int64) "lshr i64 of -1" Int64.max_int (S.lshr ~width:64 (-1L) 1L);
  (* unsigned compares at narrow widths *)
  Alcotest.(check bool) "-1 >u 1 at i8" true (S.ucmp ~width:8 (-1L) 1L > 0);
  Alcotest.(check bool) "-1 >u 1 at i64" true (S.ucmp ~width:64 (-1L) 1L > 0)

let test_division_semantics () =
  let module S = Semantics in
  (* OCaml/C truncating division semantics *)
  Alcotest.(check int64) "-7/2" (-3L) (S.div ~width:64 (-7L) 2L);
  Alcotest.(check int64) "-7 rem 2" (-1L) (S.rem ~width:64 (-7L) 2L);
  Alcotest.(check int64) "7/-2" (-3L) (S.div ~width:64 7L (-2L));
  Alcotest.check_raises "div by zero" (Trap.Error "division by zero") (fun () ->
      ignore (S.div ~width:64 1L 0L))

(* For widths below 64 the overflow predicates can be checked against
   exact integer arithmetic (the values fit in OCaml's int). *)
let exact_range width =
  let bound = 1 lsl (width - 1) in
  (-bound, bound - 1)

let prop_ovf_exact_narrow =
  QCheck.Test.make ~name:"overflow flags exact at i8/i16/i32" ~count:2000
    QCheck.(triple (int_bound 2) int int)
    (fun (wsel, a, b) ->
      let width = [| 8; 16; 32 |].(wsel) in
      let lo, hi = exact_range width in
      let a = (a mod (hi - lo + 1)) + lo and b = (b mod (hi - lo + 1)) + lo in
      let a = if a < lo then a + (hi - lo + 1) else a in
      let b = if b < lo then b + (hi - lo + 1) else b in
      let ia = Int64.of_int a and ib = Int64.of_int b in
      let outside v = v < lo || v > hi in
      Semantics.add_ovf ~width ia ib = outside (a + b)
      && Semantics.sub_ovf ~width ia ib = outside (a - b)
      && Semantics.mul_ovf ~width ia ib = outside (a * b))

let prop_exhaustive_i8 =
  QCheck.Test.make ~name:"i8 arithmetic exhaustive vs reference" ~count:1
    QCheck.unit
    (fun () ->
      let ok = ref true in
      for a = -128 to 127 do
        for b = -128 to 127 do
          let ia = Int64.of_int a and ib = Int64.of_int b in
          let wrap v = ((v + 128) land 255) - 128 in
          if Semantics.add ~width:8 ia ib <> Int64.of_int (wrap (a + b)) then ok := false;
          if Semantics.sub ~width:8 ia ib <> Int64.of_int (wrap (a - b)) then ok := false;
          if Semantics.mul ~width:8 ia ib <> Int64.of_int (wrap (a * b)) then ok := false;
          let ucmp_ref = compare (a land 255) (b land 255) in
          let ucmp_got = Semantics.ucmp ~width:8 ia ib in
          if compare ucmp_got 0 <> compare ucmp_ref 0 then ok := false
        done
      done;
      !ok)

(* --- differential properties ---------------------------------------- *)

let run_ir f mem args = Aeq_vm.Ir_interp.run f mem ~symbols:no_symbols ~args

let outcome run =
  match run () with
  | v -> Ok v
  | exception Trap.Error m -> Error m

let mem_with_scratch () =
  let mem = A.create () in
  let alloc = A.allocator mem in
  let scratch = A.alloc alloc (8 * Gen_ir.n_mem_words) in
  (mem, scratch)

let mem_words mem scratch =
  Array.init Gen_ir.n_mem_words (fun i -> A.get_i64 mem (scratch + (8 * i)))

let differential_one ?strategy ?fuse seed =
  let f = Gen_ir.generate ~complexity:15 seed in
  let args =
    [| Int64.of_int (seed * 7919); Int64.of_int (seed lxor 12345); Int64.of_int (-seed) |]
  in
  let mem1, scr1 = mem_with_scratch () in
  let ref_out = outcome (fun () -> run_ir f mem1 (Array.append args [| Int64.of_int scr1 |])) in
  let mem2, scr2 = mem_with_scratch () in
  let vm_out =
    outcome (fun () -> run_vm ?strategy ?fuse f mem2 (Array.append args [| Int64.of_int scr2 |]))
  in
  let same_result = ref_out = vm_out in
  let same_memory =
    match ref_out with
    | Ok _ -> mem_words mem1 scr1 = mem_words mem2 scr2
    | Error _ -> true (* memory state after trap is unspecified *)
  in
  same_result && same_memory

let prop_vm_matches_ir strategy fuse name =
  QCheck.Test.make ~name ~count:150 QCheck.small_nat (fun seed ->
      differential_one ~strategy ~fuse seed)

let () =
  Alcotest.run "vm"
    [
      ( "exec",
        [
          Alcotest.test_case "checked add" `Quick test_checked_add_ok;
          Alcotest.test_case "checked overflow" `Quick test_checked_add_overflow;
          Alcotest.test_case "sum loop" `Quick test_sum_loop;
          Alcotest.test_case "column sum" `Quick test_column_sum_and_loadidx_fusion;
          Alcotest.test_case "runtime call" `Quick test_runtime_call;
          Alcotest.test_case "div by zero" `Quick test_division_by_zero_traps;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "overflow-check fused" `Quick test_checked_fusion_applied;
          Alcotest.test_case "cmp+br fused" `Quick test_cmp_branch_fusion_applied;
          Alcotest.test_case "disasm" `Quick test_disasm_smoke;
        ] );
      ( "regalloc",
        [
          Alcotest.test_case "strategy ordering" `Quick test_regalloc_ordering;
          Alcotest.test_case "liveness covers uses" `Quick test_liveness_covers_uses;
          Alcotest.test_case "fig10 loop extension" `Quick test_loop_extension_fig10;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "overflow boundaries" `Quick test_overflow_boundaries;
          Alcotest.test_case "narrow canonical forms" `Quick test_narrow_canonical_forms;
          Alcotest.test_case "division" `Quick test_division_semantics;
          QCheck_alcotest.to_alcotest prop_ovf_exact_narrow;
          QCheck_alcotest.to_alcotest prop_exhaustive_i8;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest
            (prop_vm_matches_ir Aeq_vm.Regalloc.Loop_aware true "vm=ir (loop-aware, fused)");
          QCheck_alcotest.to_alcotest
            (prop_vm_matches_ir Aeq_vm.Regalloc.Loop_aware false "vm=ir (loop-aware, unfused)");
          QCheck_alcotest.to_alcotest
            (prop_vm_matches_ir (Aeq_vm.Regalloc.Window 4) true "vm=ir (window)");
          QCheck_alcotest.to_alcotest
            (prop_vm_matches_ir Aeq_vm.Regalloc.No_reuse true "vm=ir (no-reuse)");
        ] );
    ]

(* Tests for the closure backend and compile drivers: equivalence with
   the bytecode interpreter across modes, cost-model shape, and
   calibration sanity. *)

module A = Aeq_mem.Arena
module CM = Aeq_backend.Cost_model

let no_symbols : Aeq_vm.Rt_fn.resolver = fun _ -> None

let outcome run = match run () with v -> Ok v | exception Trap.Error m -> Error m

let run_all_modes seed =
  let f = Gen_ir.generate ~complexity:15 seed in
  let args =
    [| Int64.of_int (seed * 131); Int64.of_int (seed lxor 777); Int64.of_int (seed - 40) |]
  in
  let with_mem k =
    let mem = A.create () in
    let scratch = A.alloc (A.allocator mem) (8 * Gen_ir.n_mem_words) in
    let full_args = Array.append args [| Int64.of_int scratch |] in
    let out = k mem full_args in
    let words = Array.init Gen_ir.n_mem_words (fun i -> A.get_i64 mem (scratch + (8 * i))) in
    (out, words)
  in
  let ir =
    with_mem (fun mem full ->
        outcome (fun () -> Aeq_vm.Ir_interp.run f mem ~symbols:no_symbols ~args:full))
  in
  let bc =
    with_mem (fun mem full ->
        let prog = Aeq_vm.Translate.translate ~symbols:no_symbols f in
        outcome (fun () -> Aeq_vm.Interp.run prog mem ~args:full ()))
  in
  let unopt =
    with_mem (fun mem full ->
        let c =
          Aeq_backend.Compiler.compile ~cost_model:CM.off ~symbols:no_symbols ~mem
            ~mode:CM.Unopt f
        in
        outcome (fun () -> Aeq_backend.Closure_compile.run c.Aeq_backend.Compiler.exec ~args:full ()))
  in
  let opt =
    with_mem (fun mem full ->
        let c =
          Aeq_backend.Compiler.compile ~cost_model:CM.off ~symbols:no_symbols ~mem
            ~mode:CM.Opt f
        in
        outcome (fun () -> Aeq_backend.Closure_compile.run c.Aeq_backend.Compiler.exec ~args:full ()))
  in
  (ir, bc, unopt, opt)

let modes_agree seed =
  let (ir_o, ir_m), (bc_o, bc_m), (u_o, u_m), (o_o, o_m) = run_all_modes seed in
  ir_o = bc_o && bc_o = u_o && u_o = o_o
  && match ir_o with Ok _ -> ir_m = bc_m && bc_m = u_m && u_m = o_m | Error _ -> true

let prop_all_modes_agree =
  QCheck.Test.make ~name:"bytecode = unopt = opt = IR on random programs" ~count:150
    QCheck.small_nat modes_agree

let test_unopt_runs_simple () =
  let b = Builder.create ~name:"s" ~params:[ Types.I64 ] in
  let r = Builder.binop b Instr.Mul Types.I64 (Builder.param b 0) (Instr.Imm 7L) in
  Builder.ret b r;
  let f = Builder.finish b in
  Layout.normalize f;
  let mem = A.create () in
  let c =
    Aeq_backend.Compiler.compile ~cost_model:CM.off ~symbols:no_symbols ~mem ~mode:CM.Unopt f
  in
  Alcotest.(check int64) "6*7" 42L
    (Aeq_backend.Closure_compile.run c.Aeq_backend.Compiler.exec ~args:[| 6L |] ())

let test_opt_shrinks_ir () =
  (* a function with foldable constants and CSE opportunities *)
  let b = Builder.create ~name:"shrink" ~params:[ Types.I64 ] in
  let p = Builder.param b 0 in
  let a1 = Builder.binop b Instr.Add Types.I64 p (Instr.Imm 1L) in
  let a2 = Builder.binop b Instr.Add Types.I64 p (Instr.Imm 1L) in
  let c1 = Builder.binop b Instr.Mul Types.I64 (Instr.Imm 6L) (Instr.Imm 7L) in
  let r1 = Builder.binop b Instr.Add Types.I64 a1 a2 in
  let r2 = Builder.binop b Instr.Add Types.I64 r1 c1 in
  Builder.ret b r2;
  let f = Builder.finish b in
  Layout.normalize f;
  let mem = A.create () in
  let c =
    Aeq_backend.Compiler.compile ~cost_model:CM.off ~symbols:no_symbols ~mem ~mode:CM.Opt f
  in
  Alcotest.(check bool) "fewer instructions after O2" true
    (c.Aeq_backend.Compiler.n_instrs_after < Func.n_instrs f);
  Alcotest.(check int64) "still correct" (Int64.of_int ((10 + 1) * 2 + 42))
    (Aeq_backend.Closure_compile.run c.Aeq_backend.Compiler.exec ~args:[| 10L |] ())

let test_cost_model_shape () =
  let m = CM.default in
  (* bytecode < unopt < opt at every size *)
  List.iter
    (fun n ->
      let bc = CM.compile_time m CM.Bytecode n in
      let u = CM.compile_time m CM.Unopt n in
      let o = CM.compile_time m CM.Opt n in
      Alcotest.(check bool) "bc < unopt" true (bc < u);
      Alcotest.(check bool) "unopt < opt" true (u < o))
    [ 100; 1_000; 10_000; 100_000 ];
  (* the quadratic term dominates for mega-functions: opt(10k) > 4x opt(2.5k) x 4 *)
  let o1 = CM.compile_time m CM.Opt 10_000 and o2 = CM.compile_time m CM.Opt 100_000 in
  Alcotest.(check bool) "superlinear growth" true (o2 > 10.0 *. o1);
  (* unopt is near-linear: 10x size is < 15x time *)
  let u1 = CM.compile_time m CM.Unopt 10_000 and u2 = CM.compile_time m CM.Unopt 100_000 in
  Alcotest.(check bool) "unopt near-linear" true (u2 < 15.0 *. u1)

let test_simulated_latency_enforced () =
  let b = Builder.create ~name:"lat" ~params:[ Types.I64 ] in
  Builder.ret b (Builder.param b 0);
  let f = Builder.finish b in
  Layout.normalize f;
  let mem = A.create () in
  (* tiny function: modelled opt time still has its base cost *)
  let c =
    Aeq_backend.Compiler.compile ~cost_model:CM.default ~symbols:no_symbols ~mem
      ~mode:CM.Opt f
  in
  Alcotest.(check bool) "at least base latency" true
    (c.Aeq_backend.Compiler.compile_seconds >= CM.default.CM.opt_base *. 0.9)

let test_calibration_sane () =
  let cal = Aeq_backend.Calibration.measure () in
  Alcotest.(check bool) "unopt faster than bytecode" true
    (cal.Aeq_backend.Calibration.speedup_unopt > 1.0);
  Alcotest.(check bool) "opt at least unopt (roughly)" true
    (cal.Aeq_backend.Calibration.speedup_opt > 1.0)

let () =
  Alcotest.run "backend"
    [
      ( "closure",
        [
          Alcotest.test_case "unopt runs" `Quick test_unopt_runs_simple;
          Alcotest.test_case "opt shrinks IR" `Quick test_opt_shrinks_ir;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "shape" `Quick test_cost_model_shape;
          Alcotest.test_case "simulated latency" `Quick test_simulated_latency_enforced;
          Alcotest.test_case "calibration" `Quick test_calibration_sane;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_all_modes_agree ]);
    ]

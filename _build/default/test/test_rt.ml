(* Tests for the query runtime: hash-join table, aggregation tables,
   dictionary, output buffers. *)

module A = Aeq_mem.Arena
module HT = Aeq_rt.Hash_table

let test_ht_basic () =
  let arena = A.create () in
  let alloc = A.allocator arena in
  let ht = HT.create arena ~expected_entries:100 ~payload_bytes:8 in
  for i = 0 to 99 do
    let p = HT.insert ht ~allocator:alloc ~key:(Int64.of_int (i mod 10)) in
    A.set_i64 arena p (Int64.of_int i)
  done;
  Alcotest.(check int) "size" 100 (HT.size ht);
  (* key 3 has 10 matches *)
  let count = ref 0 in
  let e = ref (HT.lookup ht ~key:3L) in
  while !e <> A.null do
    let v = A.get_i64 arena (!e + HT.payload_offset) in
    Alcotest.(check int) "payload key residue" 3 (Int64.to_int v mod 10);
    incr count;
    e := HT.next_match ht ~entry:!e
  done;
  Alcotest.(check int) "10 matches" 10 !count;
  Alcotest.(check int) "missing key" A.null (HT.lookup ht ~key:77L)

let test_ht_concurrent_build () =
  let arena = A.create () in
  let ht = HT.create arena ~expected_entries:4000 ~payload_bytes:8 in
  let n_domains = 4 and per = 1000 in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            let alloc = A.allocator arena in
            for i = 0 to per - 1 do
              let key = Int64.of_int ((d * per) + i) in
              let p = HT.insert ht ~allocator:alloc ~key in
              A.set_i64 arena p key
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "all inserted" (n_domains * per) (HT.size ht);
  for k = 0 to (n_domains * per) - 1 do
    let e = HT.lookup ht ~key:(Int64.of_int k) in
    if e = A.null then Alcotest.failf "key %d missing" k;
    let v = A.get_i64 arena (e + HT.payload_offset) in
    Alcotest.(check int64) "payload" (Int64.of_int k) v
  done

let test_agg_merge () =
  let arena = A.create () in
  let alloc = A.allocator arena in
  let agg =
    Aeq_rt.Agg.create arena ~n_threads:3 ~key_arity:1
      ~accs:[ Aeq_rt.Agg.Sum; Aeq_rt.Agg.Count; Aeq_rt.Agg.Min; Aeq_rt.Agg.Max ]
  in
  (* three "threads" each add values for keys 0..4 *)
  for tid = 0 to 2 do
    for i = 0 to 99 do
      let key = Int64.of_int (i mod 5) in
      let row = Aeq_rt.Agg.get_group agg ~tid ~allocator:alloc ~k1:key ~k2:0L in
      let v = Int64.of_int ((tid * 100) + i) in
      A.set_i64 arena row (Int64.add (A.get_i64 arena row) v);
      A.set_i64 arena (row + 8) (Int64.add (A.get_i64 arena (row + 8)) 1L);
      if Int64.compare v (A.get_i64 arena (row + 16)) < 0 then A.set_i64 arena (row + 16) v;
      if Int64.compare v (A.get_i64 arena (row + 24)) > 0 then A.set_i64 arena (row + 24) v
    done
  done;
  Aeq_rt.Agg.merge agg;
  Alcotest.(check int) "5 groups" 5 (Aeq_rt.Agg.n_groups agg);
  let n, cols = Aeq_rt.Agg.materialize agg ~allocator:alloc in
  Alcotest.(check int) "materialized rows" 5 n;
  (* total count across groups = 300 *)
  let total = ref 0L in
  for i = 0 to n - 1 do
    total := Int64.add !total (A.get_i64 arena (cols.(2) + (8 * i)))
  done;
  Alcotest.(check int64) "count sums to 300" 300L !total

let test_dict () =
  let d = Aeq_rt.Dict.create () in
  let a = Aeq_rt.Dict.encode d "hello" in
  let b = Aeq_rt.Dict.encode d "world" in
  let a' = Aeq_rt.Dict.encode d "hello" in
  Alcotest.(check int64) "stable" a a';
  Alcotest.(check bool) "distinct" true (not (Int64.equal a b));
  Alcotest.(check string) "decode" "world" (Aeq_rt.Dict.decode d b);
  let bm = Aeq_rt.Dict.codes_matching d (fun s -> String.length s = 5) in
  Alcotest.(check bool) "hello matches" true (Aeq_rt.Bitmap.get bm (Int64.to_int a));
  Alcotest.(check int) "both match" 2 (Aeq_rt.Bitmap.cardinality bm)

let test_output () =
  let arena = A.create () in
  let alloc = A.allocator arena in
  let out = Aeq_rt.Output.create arena ~n_threads:2 ~row_bytes:16 in
  for i = 0 to 9 do
    let p = Aeq_rt.Output.row out ~tid:(i mod 2) ~allocator:alloc in
    A.set_i64 arena p (Int64.of_int i)
  done;
  Alcotest.(check int) "count" 10 (Aeq_rt.Output.count out);
  let rows = Aeq_rt.Output.rows out in
  Alcotest.(check int) "rows array" 10 (Array.length rows);
  let seen = Array.to_list rows |> List.map (fun p -> A.get_i64 arena p) |> List.sort compare in
  Alcotest.(check bool) "all values present" true
    (seen = List.init 10 (fun i -> Int64.of_int i))

let test_year_of () =
  (* 1970-01-01 = 0, 1998-09-02, 1992-01-01 *)
  Alcotest.(check int64) "1970" 1970L (Aeq_rt.Symbols.year_of_days 0L);
  Alcotest.(check int64) "1992" 1992L (Aeq_rt.Symbols.year_of_days 8035L);
  Alcotest.(check int64) "1998" 1998L (Aeq_rt.Symbols.year_of_days 10471L)

let () =
  Alcotest.run "rt"
    [
      ( "hash table",
        [
          Alcotest.test_case "basic" `Quick test_ht_basic;
          Alcotest.test_case "concurrent build" `Quick test_ht_concurrent_build;
        ] );
      ("agg", [ Alcotest.test_case "merge/materialize" `Quick test_agg_merge ]);
      ("dict", [ Alcotest.test_case "encode/decode/match" `Quick test_dict ]);
      ("output", [ Alcotest.test_case "rows" `Quick test_output ]);
      ("dates", [ Alcotest.test_case "year_of" `Quick test_year_of ]);
    ]

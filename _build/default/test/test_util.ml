(* Unit tests for aeq_util: PRNG determinism/distribution, statistics. *)

let test_prng_deterministic () =
  let a = Aeq_util.Prng.create 42L and b = Aeq_util.Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Aeq_util.Prng.next_int64 a) (Aeq_util.Prng.next_int64 b)
  done

let test_prng_bounds () =
  let g = Aeq_util.Prng.create 7L in
  for _ = 1 to 1000 do
    let x = Aeq_util.Prng.int g 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10);
    let y = Aeq_util.Prng.int_in g 5 9 in
    Alcotest.(check bool) "in closed range" true (y >= 5 && y <= 9);
    let f = Aeq_util.Prng.float g 2.5 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.5)
  done

let test_prng_split_independent () =
  let g = Aeq_util.Prng.create 1L in
  let h = Aeq_util.Prng.split g in
  let x = Aeq_util.Prng.next_int64 g and y = Aeq_util.Prng.next_int64 h in
  Alcotest.(check bool) "streams differ" true (not (Int64.equal x y))

let test_zipf_skew () =
  let g = Aeq_util.Prng.create 3L in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Aeq_util.Prng.zipf g ~n:100 ~theta:0.9 in
    Alcotest.(check bool) "zipf in range" true (k >= 0 && k < 100);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "head heavier than tail" true (counts.(0) > 10 * counts.(99))

let test_shuffle_permutation () =
  let g = Aeq_util.Prng.create 9L in
  let a = Array.init 50 Fun.id in
  Aeq_util.Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Aeq_util.Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Aeq_util.Stats.geomean [])

let test_linear_fit () =
  let pts = [ (1.0, 3.0); (2.0, 5.0); (3.0, 7.0); (4.0, 9.0) ] in
  let intercept, slope = Aeq_util.Stats.linear_fit pts in
  Alcotest.(check (float 1e-9)) "slope" 2.0 slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 intercept

let test_median_percentile () =
  Alcotest.(check (float 1e-9)) "median odd" 3.0 (Aeq_util.Stats.median [ 5.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Aeq_util.Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Aeq_util.Stats.percentile 0.0 [ 2.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "p100" 3.0 (Aeq_util.Stats.percentile 1.0 [ 2.0; 1.0; 3.0 ])

let test_clock_monotone () =
  let t0 = Aeq_util.Clock.now () in
  Aeq_util.Clock.busy_wait 0.002;
  let t1 = Aeq_util.Clock.now () in
  Alcotest.(check bool) "busy_wait advances clock" true (t1 -. t0 >= 0.0015)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "zipf" `Quick test_zipf_skew;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "linear_fit" `Quick test_linear_fit;
          Alcotest.test_case "median/percentile" `Quick test_median_percentile;
        ] );
      ("clock", [ Alcotest.test_case "busy_wait" `Quick test_clock_monotone ]);
    ]

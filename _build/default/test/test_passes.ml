(* Tests for the optimization passes: unit behaviours plus the
   end-to-end property that the full O2 pipeline preserves semantics
   on random programs. *)

module A = Aeq_mem.Arena
module PM = Aeq_passes.Pass_manager

let no_symbols : Aeq_vm.Rt_fn.resolver = fun _ -> None

(* straight-line function: ret (p0 + 2) * 3 + 0 with foldable junk *)
let build_foldable () =
  let b = Builder.create ~name:"fold" ~params:[ Types.I64 ] in
  let two = Builder.binop b Instr.Add Types.I64 (Instr.Imm 1L) (Instr.Imm 1L) in
  let x = Builder.binop b Instr.Add Types.I64 (Builder.param b 0) two in
  let y = Builder.binop b Instr.Mul Types.I64 x (Instr.Imm 3L) in
  let z = Builder.binop b Instr.Add Types.I64 y (Instr.Imm 0L) in
  let dead = Builder.binop b Instr.Mul Types.I64 z (Instr.Imm 100L) in
  ignore dead;
  Builder.ret b z;
  let f = Builder.finish b in
  Layout.normalize f;
  f

let test_const_fold_folds () =
  let f = build_foldable () in
  let before = Analysis.instruction_count f in
  let changed = Aeq_passes.Const_fold.run f in
  Alcotest.(check bool) "changed" true changed;
  ignore before;
  (* 1+1 folded away; x+0 gone *)
  Verify.run f

let test_dce_removes_dead () =
  let f = build_foldable () in
  let changed = Aeq_passes.Dce.run f in
  Alcotest.(check bool) "changed" true changed;
  let count = Analysis.instruction_count f in
  (* dead multiply removed *)
  let still_has_dead_mul =
    let found = ref false in
    Func.iter_instrs f (fun _ i ->
        match i with Instr.Binop { op = Instr.Mul; b = Instr.Imm 100L; _ } -> found := true | _ -> ());
    !found
  in
  Alcotest.(check bool) "dead mul removed" false still_has_dead_mul;
  Alcotest.(check bool) "smaller" true (count < 7);
  Verify.run f

let test_cse_dedups () =
  let b = Builder.create ~name:"cse" ~params:[ Types.I64; Types.I64 ] in
  let p0 = Builder.param b 0 and p1 = Builder.param b 1 in
  let x = Builder.binop b Instr.Add Types.I64 p0 p1 in
  let y = Builder.binop b Instr.Add Types.I64 p0 p1 in
  let z = Builder.binop b Instr.Mul Types.I64 x y in
  Builder.ret b z;
  let f = Builder.finish b in
  Layout.normalize f;
  let changed = Aeq_passes.Cse.run f in
  Alcotest.(check bool) "changed" true changed;
  ignore (Aeq_passes.Dce.run f);
  let adds = ref 0 in
  Func.iter_instrs f (fun _ i ->
      match i with Instr.Binop { op = Instr.Add; _ } -> incr adds | _ -> ());
  Alcotest.(check int) "one add left" 1 !adds;
  Verify.run f

let test_cse_commutative () =
  let b = Builder.create ~name:"csec" ~params:[ Types.I64; Types.I64 ] in
  let p0 = Builder.param b 0 and p1 = Builder.param b 1 in
  let x = Builder.binop b Instr.Mul Types.I64 p0 p1 in
  let y = Builder.binop b Instr.Mul Types.I64 p1 p0 in
  let z = Builder.binop b Instr.Add Types.I64 x y in
  Builder.ret b z;
  let f = Builder.finish b in
  Layout.normalize f;
  ignore (Aeq_passes.Cse.run f);
  ignore (Aeq_passes.Dce.run f);
  let muls = ref 0 in
  Func.iter_instrs f (fun _ i ->
      match i with Instr.Binop { op = Instr.Mul; _ } -> incr muls | _ -> ());
  Alcotest.(check int) "commutated mul deduped" 1 !muls

let test_simplify_cfg_constant_branch () =
  let b = Builder.create ~name:"scfg" ~params:[ Types.I64 ] in
  let t = Builder.new_block b in
  let e = Builder.new_block b in
  Builder.condbr b (Instr.Imm 1L) ~if_true:t ~if_false:e;
  Builder.switch_to b t;
  Builder.ret b (Instr.Imm 42L);
  Builder.switch_to b e;
  Builder.ret b (Instr.Imm 7L);
  let f = Builder.finish b in
  Layout.normalize f;
  ignore (Aeq_passes.Simplify_cfg.run f);
  Layout.normalize f;
  (* the constant branch is rewritten, the dead block pruned, and the
     taken block merged into the entry *)
  Alcotest.(check int) "single block remains" 1 (Func.n_blocks f);
  (match (Func.block f 0).Block.term with
  | Instr.Ret (Some (Instr.Imm 42L)) -> ()
  | _ -> Alcotest.fail "expected ret 42");
  Verify.run f

let test_sched_preserves_order_of_memops () =
  let b = Builder.create ~name:"sched" ~params:[ Types.Ptr ] in
  let p = Builder.param b 0 in
  Builder.store b Types.I64 ~addr:p (Instr.Imm 1L);
  let v = Builder.load b Types.I64 p in
  Builder.store b Types.I64 ~addr:p (Instr.Imm 2L);
  let w = Builder.load b Types.I64 p in
  let r = Builder.binop b Instr.Add Types.I64 v w in
  Builder.ret b r;
  let f = Builder.finish b in
  Layout.normalize f;
  ignore (Aeq_passes.Sched.run f);
  Verify.run f;
  (* memory ops must still appear in original relative order *)
  let mem_seq = ref [] in
  Func.iter_instrs f (fun _ i ->
      match i with
      | Instr.Store { v = Instr.Imm n; _ } -> mem_seq := ("s" ^ Int64.to_string n) :: !mem_seq
      | Instr.Load _ -> mem_seq := "l" :: !mem_seq
      | _ -> ());
  Alcotest.(check (list string)) "order kept" [ "s1"; "l"; "s2"; "l" ] (List.rev !mem_seq)

(* O2 pipeline must not change observable behaviour. *)
let o2_differential seed =
  let f = Gen_ir.generate ~complexity:15 seed in
  let clone = Func.copy f in
  PM.optimize ~check:true PM.O2 clone;
  let args =
    [| Int64.of_int (seed * 31); Int64.of_int (seed lxor 9999); Int64.of_int (3 - seed) |]
  in
  let run func =
    let mem = A.create () in
    let scratch = A.alloc (A.allocator mem) (8 * Gen_ir.n_mem_words) in
    let full_args = Array.append args [| Int64.of_int scratch |] in
    let out =
      match Aeq_vm.Ir_interp.run func mem ~symbols:no_symbols ~args:full_args with
      | v -> Ok v
      | exception Trap.Error m -> Error m
    in
    let words = Array.init Gen_ir.n_mem_words (fun i -> A.get_i64 mem (scratch + (8 * i))) in
    (out, words)
  in
  let out1, mem1 = run f in
  let out2, mem2 = run clone in
  out1 = out2 && (match out1 with Ok _ -> mem1 = mem2 | Error _ -> true)

let prop_o2_preserves_semantics =
  QCheck.Test.make ~name:"O2 pipeline preserves semantics" ~count:150 QCheck.small_nat
    o2_differential

let prop_o2_never_grows =
  QCheck.Test.make ~name:"O2 never increases instruction count" ~count:50 QCheck.small_nat
    (fun seed ->
      let f = Gen_ir.generate ~complexity:15 seed in
      let before = Analysis.instruction_count f in
      PM.optimize PM.O2 f;
      Analysis.instruction_count f <= before)

let () =
  Alcotest.run "passes"
    [
      ( "unit",
        [
          Alcotest.test_case "const fold" `Quick test_const_fold_folds;
          Alcotest.test_case "dce" `Quick test_dce_removes_dead;
          Alcotest.test_case "cse" `Quick test_cse_dedups;
          Alcotest.test_case "cse commutative" `Quick test_cse_commutative;
          Alcotest.test_case "simplify-cfg constant branch" `Quick
            test_simplify_cfg_constant_branch;
          Alcotest.test_case "sched keeps memory order" `Quick
            test_sched_preserves_order_of_memops;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_o2_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_o2_never_grows;
        ] );
    ]

(* Tests for the IR layer: builder, verifier, RPO reordering,
   dominators, loop detection. *)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A diamond: entry -> (then | else) -> join. *)
let build_diamond () =
  let b = Builder.create ~name:"diamond" ~params:[ Types.I64 ] in
  let then_b = Builder.new_block b in
  let else_b = Builder.new_block b in
  let join_b = Builder.new_block b in
  let cond = Builder.icmp b Instr.Sgt Types.I64 (Builder.param b 0) (Instr.Imm 0L) in
  Builder.condbr b cond ~if_true:then_b ~if_false:else_b;
  Builder.switch_to b then_b;
  let tv = Builder.binop b Instr.Add Types.I64 (Builder.param b 0) (Instr.Imm 1L) in
  Builder.br b join_b;
  Builder.switch_to b else_b;
  let ev = Builder.binop b Instr.Sub Types.I64 (Builder.param b 0) (Instr.Imm 1L) in
  Builder.br b join_b;
  Builder.switch_to b join_b;
  let r = Builder.phi b Types.I64 [ (then_b, tv); (else_b, ev) ] in
  Builder.ret b r;
  let f = Builder.finish b in
  Cfg.reorder_rpo f;
  f

(* A counted loop: entry -> head -> (body -> head | exit). *)
let build_loop () =
  let b = Builder.create ~name:"loop" ~params:[ Types.I64 ] in
  let head = Builder.new_block b in
  let body = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.br b head;
  Builder.switch_to b head;
  let i = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let acc = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let c = Builder.icmp b Instr.Slt Types.I64 i (Builder.param b 0) in
  Builder.condbr b c ~if_true:body ~if_false:exit;
  Builder.switch_to b body;
  let acc' = Builder.binop b Instr.Add Types.I64 acc i in
  let i' = Builder.binop b Instr.Add Types.I64 i (Instr.Imm 1L) in
  Builder.br b head;
  Builder.add_phi_incoming b ~block:head ~dst:i ~pred:body i';
  Builder.add_phi_incoming b ~block:head ~dst:acc ~pred:body acc';
  Builder.switch_to b exit;
  Builder.ret b acc;
  let f = Builder.finish b in
  Cfg.reorder_rpo f;
  f

let test_verify_accepts () =
  Verify.run (build_diamond ());
  Verify.run (build_loop ())

let test_verify_rejects_double_def () =
  let f = build_diamond () in
  (* Duplicate an instruction so its dst is defined twice. *)
  let blk = Func.block f 1 in
  blk.Block.instrs <- Array.append blk.Block.instrs blk.Block.instrs;
  match Verify.check f with
  | Ok () -> Alcotest.fail "expected double-definition to be rejected"
  | Error msg ->
    Alcotest.(check bool) "mentions double definition" true
      (contains_substring msg "defined twice")

let test_verify_rejects_bad_target () =
  let f = build_diamond () in
  let blk = Func.block f 1 in
  blk.Block.term <- Instr.Br 99;
  (match Verify.check f with
  | Ok () -> Alcotest.fail "expected ill-formed"
  | Error _ -> ())

let test_rpo_entry_first () =
  let f = build_loop () in
  Alcotest.(check int) "entry is 0" 0 (Func.block f 0).Block.id;
  (* RPO of entry->head->body->exit: every edge except back edges goes
     forward. *)
  Array.iter
    (fun (b : Block.t) ->
      List.iter
        (fun s ->
          if s <= b.Block.id then
            (* must be a back edge: the target dominates the source *)
            let dom = Dom.compute f in
            Alcotest.(check bool) "backward edge is a back edge" true
              (Dom.is_ancestor dom ~ancestor:s b.Block.id))
        (Block.successors b))
    f.Func.blocks

let test_rpo_drops_unreachable () =
  let b = Builder.create ~name:"unreach" ~params:[] in
  let dead = Builder.new_block b in
  Builder.ret_void b;
  Builder.switch_to b dead;
  Builder.ret_void b;
  let f = Builder.finish b in
  Alcotest.(check int) "two blocks before" 2 (Func.n_blocks f);
  Cfg.reorder_rpo f;
  Alcotest.(check int) "one block after" 1 (Func.n_blocks f)

let test_dominators_diamond () =
  let f = build_diamond () in
  let dom = Dom.compute f in
  (* Entry dominates everything; join's idom is the entry. *)
  for blk = 0 to Func.n_blocks f - 1 do
    Alcotest.(check bool) "entry dominates" true (Dom.is_ancestor dom ~ancestor:0 blk)
  done;
  (* Find the join block: the one with the phi. *)
  let join =
    Array.to_list f.Func.blocks
    |> List.find (fun (b : Block.t) -> Array.length b.Block.phis > 0)
  in
  Alcotest.(check int) "join idom = entry" 0 (Dom.idom dom join.Block.id);
  (* then/else do not dominate each other *)
  let then_else =
    Array.to_list f.Func.blocks
    |> List.filter (fun (b : Block.t) ->
           b.Block.id <> 0 && b.Block.id <> join.Block.id)
    |> List.map (fun (b : Block.t) -> b.Block.id)
  in
  match then_else with
  | [ x; y ] ->
    Alcotest.(check bool) "no cross-domination" false (Dom.is_ancestor dom ~ancestor:x y);
    Alcotest.(check bool) "no cross-domination" false (Dom.is_ancestor dom ~ancestor:y x)
  | _ -> Alcotest.fail "unexpected structure"

let test_loops_simple () =
  let f = build_loop () in
  let dom = Dom.compute f in
  let loops = Loops.compute f dom in
  (* Root pseudo-loop + one real loop. *)
  Alcotest.(check int) "two loops" 2 (Array.length (Loops.loops loops));
  let l = (Loops.loops loops).(1) in
  Alcotest.(check int) "loop depth" 1 l.Loops.depth;
  Alcotest.(check int) "loop parent is root" 0 l.Loops.parent;
  Alcotest.(check bool) "head flagged" true (Loops.is_loop_head loops l.Loops.head);
  (* body inside loop, exit outside *)
  Alcotest.(check bool) "head..last covers body" true (l.Loops.last >= l.Loops.head)

let test_loops_nested () =
  (* Two nested counted loops. *)
  let b = Builder.create ~name:"nested" ~params:[ Types.I64 ] in
  let oh = Builder.new_block b in
  let ob = Builder.new_block b in
  let ih = Builder.new_block b in
  let ib = Builder.new_block b in
  let oe = Builder.new_block b in
  let fin = Builder.new_block b in
  Builder.br b oh;
  Builder.switch_to b oh;
  let i = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let ci = Builder.icmp b Instr.Slt Types.I64 i (Builder.param b 0) in
  Builder.condbr b ci ~if_true:ob ~if_false:fin;
  Builder.switch_to b ob;
  Builder.br b ih;
  Builder.switch_to b ih;
  let j = Builder.phi b Types.I64 [ (ob, Instr.Imm 0L) ] in
  let cj = Builder.icmp b Instr.Slt Types.I64 j (Instr.Imm 3L) in
  Builder.condbr b cj ~if_true:ib ~if_false:oe;
  Builder.switch_to b ib;
  let j' = Builder.binop b Instr.Add Types.I64 j (Instr.Imm 1L) in
  Builder.br b ih;
  Builder.add_phi_incoming b ~block:ih ~dst:j ~pred:ib j';
  Builder.switch_to b oe;
  let i' = Builder.binop b Instr.Add Types.I64 i (Instr.Imm 1L) in
  Builder.br b oh;
  Builder.add_phi_incoming b ~block:oh ~dst:i ~pred:oe i';
  Builder.switch_to b fin;
  Builder.ret b i;
  let f = Builder.finish b in
  Cfg.reorder_rpo f;
  Verify.run f;
  let dom = Dom.compute f in
  let loops = Loops.compute f dom in
  Alcotest.(check int) "three loops (root+outer+inner)" 3 (Array.length (Loops.loops loops));
  let depths =
    Array.to_list (Loops.loops loops) |> List.map (fun l -> l.Loops.depth) |> List.sort compare
  in
  Alcotest.(check (list int)) "depths 0,1,2" [ 0; 1; 2 ] depths;
  (* lca of inner and outer is outer *)
  let by_depth d =
    let arr = Loops.loops loops in
    let rec find i = if arr.(i).Loops.depth = d then i else find (i + 1) in
    find 0
  in
  let outer = by_depth 1 and inner = by_depth 2 in
  Alcotest.(check int) "lca(inner,outer)" outer (Loops.lca loops inner outer);
  Alcotest.(check int) "outermost_below root from inner" outer
    (Loops.outermost_below loops ~ancestor:(by_depth 0) inner)

let test_pp_smoke () =
  let s = Pp.func_to_string (build_loop ()) in
  Alcotest.(check bool) "mentions phi" true (contains_substring s "phi");
  Alcotest.(check bool) "mentions add" true (contains_substring s "add")

let test_analysis_counts () =
  let f = build_loop () in
  Alcotest.(check bool) "instrs > 0" true (Analysis.instruction_count f > 0);
  Alcotest.(check int) "blocks" 4 (Analysis.block_count f)

let prop_random_programs_verify =
  QCheck.Test.make ~name:"random programs are well-formed" ~count:100 QCheck.small_nat
    (fun seed ->
      let f = Gen_ir.generate seed in
      match Verify.check f with Ok () -> true | Error _ -> false)

let prop_layout_idempotent =
  QCheck.Test.make ~name:"Layout.normalize is idempotent" ~count:50 QCheck.small_nat
    (fun seed ->
      let f = Gen_ir.generate seed in
      (* generate already normalizes once *)
      let before = Pp.func_to_string f in
      Layout.normalize f;
      String.equal before (Pp.func_to_string f))

let prop_layout_loops_contiguous =
  QCheck.Test.make ~name:"normalized layout has contiguous loops" ~count:100
    QCheck.small_nat (fun seed ->
      let f = Gen_ir.generate ~complexity:20 seed in
      let dom = Dom.compute f in
      let loops = Loops.compute f dom in
      Loops.contiguous loops)

let () =
  Alcotest.run "ir"
    [
      ( "verify",
        [
          Alcotest.test_case "accepts well-formed" `Quick test_verify_accepts;
          Alcotest.test_case "rejects double def" `Quick test_verify_rejects_double_def;
          Alcotest.test_case "rejects bad target" `Quick test_verify_rejects_bad_target;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "rpo entry first" `Quick test_rpo_entry_first;
          Alcotest.test_case "rpo drops unreachable" `Quick test_rpo_drops_unreachable;
        ] );
      ("dom", [ Alcotest.test_case "diamond" `Quick test_dominators_diamond ]);
      ( "loops",
        [
          Alcotest.test_case "simple" `Quick test_loops_simple;
          Alcotest.test_case "nested" `Quick test_loops_nested;
        ] );
      ( "misc",
        [
          Alcotest.test_case "pp" `Quick test_pp_smoke;
          Alcotest.test_case "analysis" `Quick test_analysis_counts;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_programs_verify;
          QCheck_alcotest.to_alcotest prop_layout_idempotent;
          QCheck_alcotest.to_alcotest prop_layout_loops_contiguous;
        ] );
    ]

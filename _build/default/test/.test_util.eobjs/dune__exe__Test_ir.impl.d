test/test_ir.ml: Alcotest Analysis Array Block Builder Cfg Dom Func Gen_ir Instr Layout List Loops Pp QCheck QCheck_alcotest String Types Verify

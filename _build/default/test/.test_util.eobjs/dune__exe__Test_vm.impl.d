test/test_vm.ml: Aeq_mem Aeq_vm Alcotest Array Block Builder Dom Func Gen_ir Instr Int64 Layout List Loops QCheck QCheck_alcotest Semantics String Trap Types Verify

test/test_backend.ml: Aeq_backend Aeq_mem Aeq_vm Alcotest Array Builder Func Gen_ir Instr Int64 Layout List QCheck QCheck_alcotest Trap Types

test/test_passes.ml: Aeq_mem Aeq_passes Aeq_vm Alcotest Analysis Array Block Builder Func Gen_ir Instr Int64 Layout List QCheck QCheck_alcotest Trap Types Verify

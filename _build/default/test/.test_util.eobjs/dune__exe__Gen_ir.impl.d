test/gen_ir.ml: Aeq_util Array Builder Instr Int64 Layout List Printf Types Verify

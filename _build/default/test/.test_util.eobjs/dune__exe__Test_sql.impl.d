test/test_sql.ml: Aeq_sql Aeq_workload Alcotest List Printexc

test/test_rt.ml: Aeq_mem Aeq_rt Alcotest Array Domain Int64 List String

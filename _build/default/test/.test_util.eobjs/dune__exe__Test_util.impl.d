test/test_util.ml: Aeq_util Alcotest Array Fun Int64

test/test_exec.ml: Aeq Aeq_backend Aeq_exec Aeq_storage Alcotest Array Atomic Int64 List String

test/test_mem.ml: Aeq_mem Alcotest Array Domain Int64 List QCheck QCheck_alcotest

test/test_plan.ml: Aeq_plan Aeq_rt Aeq_sql Aeq_storage Aeq_workload Alcotest Array Lazy List String

test/test_workload.ml: Aeq_rt Aeq_storage Aeq_workload Alcotest Array Hashtbl Int64 Lazy List Option Stdlib

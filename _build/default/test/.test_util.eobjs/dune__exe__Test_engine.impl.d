test/test_engine.ml: Aeq Aeq_backend Aeq_baseline Aeq_exec Aeq_plan Aeq_storage Aeq_workload Alcotest Array Int64 Lazy List String Trap

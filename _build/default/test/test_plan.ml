(* Unit tests for the planner: join ordering, filter placement,
   payload computation, aggregate rewriting, scalar evaluation. *)

module P = Aeq_plan.Physical
module Sc = Aeq_plan.Scalar
module Dtype = Aeq_storage.Dtype

let catalog =
  lazy
    (let c = Aeq_storage.Catalog.create () in
     Aeq_workload.Tpch.load ~scale_factor:0.001 c;
     c)

let plan sql = Aeq_plan.Planner.plan_sql (Lazy.force catalog) sql

let table_of_tref p i = (fst p.P.pl_trefs.(i)).Aeq_storage.Table.name

let test_single_table_single_pipeline () =
  let p = plan "select l_orderkey from lineitem where l_quantity > 10" in
  Alcotest.(check int) "one pipeline" 1 (List.length p.P.pl_pipelines);
  let pipe = List.hd p.P.pl_pipelines in
  Alcotest.(check int) "one scan filter" 1 (List.length pipe.P.p_scan_filters);
  Alcotest.(check int) "no probes" 0 (List.length pipe.P.p_probes)

let test_join_builds_smaller_side () =
  let p =
    plan "select l_orderkey from lineitem join orders on l_orderkey = o_orderkey"
  in
  (* lineitem is larger: orders must be the build side, lineitem the driver *)
  Alcotest.(check int) "two pipelines" 2 (List.length p.P.pl_pipelines);
  Alcotest.(check int) "one hash table" 1 (Array.length p.P.pl_hts);
  Alcotest.(check string) "build side is orders" "orders"
    (table_of_tref p p.P.pl_hts.(0).P.ht_build_tref);
  let driver = List.nth p.P.pl_pipelines 1 in
  (match driver.P.p_source with
  | P.Src_scan { tref } -> Alcotest.(check string) "driver is lineitem" "lineitem" (table_of_tref p tref)
  | _ -> Alcotest.fail "driver must scan")

let test_local_filters_go_to_build_pipeline () =
  let p =
    plan
      "select l_orderkey from lineitem join orders on l_orderkey = o_orderkey \
       where o_orderdate < date '1995-01-01' and l_quantity > 5"
  in
  let build = List.nth p.P.pl_pipelines 0 and driver = List.nth p.P.pl_pipelines 1 in
  Alcotest.(check int) "order filter at build" 1 (List.length build.P.p_scan_filters);
  Alcotest.(check int) "lineitem filter at driver scan" 1 (List.length driver.P.p_scan_filters)

let test_q5_snowflake_shape () =
  let p = plan (Aeq_workload.Queries.tpch_q 5) in
  (* 6 tables: 5 build pipelines + driver + aggregate scan *)
  Alcotest.(check int) "7 pipelines" 7 (List.length p.P.pl_pipelines);
  Alcotest.(check int) "5 hash tables" 5 (Array.length p.P.pl_hts);
  (* every build keys on the built table's primary key (column 0): the
     key-first heuristic must leave c_nationkey = s_nationkey as a
     residual filter rather than building customers by nation *)
  Array.iter
    (fun spec ->
      match spec.P.ht_key with
      | Sc.Col { col; _ } -> Alcotest.(check int) "pk build" 0 col
      | _ -> Alcotest.fail "expected simple column key")
    p.P.pl_hts;
  (* the residual c_nationkey = s_nationkey filter lives on a probe *)
  let driver = List.nth p.P.pl_pipelines 5 in
  let probe_filters =
    List.concat_map (fun pr -> pr.P.pr_filters) driver.P.p_probes
  in
  Alcotest.(check bool) "residual join filter attached" true (probe_filters <> [])

let test_payload_contains_downstream_columns () =
  let p =
    plan
      "select n_name, sum(l_quantity) from lineitem \
       join supplier on l_suppkey = s_suppkey \
       join nation on s_nationkey = n_nationkey group by n_name"
  in
  (* supplier's payload must carry s_nationkey (needed to probe nation) *)
  let supp_ht =
    Array.to_list p.P.pl_hts
    |> List.find (fun s -> String.equal (table_of_tref p s.P.ht_build_tref) "supplier")
  in
  let supp_tbl = Aeq_storage.Catalog.table (Lazy.force catalog) "supplier" in
  let nat_col = Aeq_storage.Table.column_index supp_tbl "s_nationkey" in
  Alcotest.(check bool) "s_nationkey in payload" true
    (List.mem_assoc nat_col supp_ht.P.ht_payload);
  (* nation's payload must carry n_name (projection) *)
  let nat_ht =
    Array.to_list p.P.pl_hts
    |> List.find (fun s -> String.equal (table_of_tref p s.P.ht_build_tref) "nation")
  in
  let nat_tbl = Aeq_storage.Catalog.table (Lazy.force catalog) "nation" in
  let name_col = Aeq_storage.Table.column_index nat_tbl "n_name" in
  Alcotest.(check bool) "n_name in payload" true (List.mem_assoc name_col nat_ht.P.ht_payload)

let test_avg_becomes_sum_count () =
  let p = plan "select avg(l_quantity) from lineitem" in
  match p.P.pl_agg with
  | Some cfg ->
    let kinds = List.map fst cfg.P.agg_accs in
    Alcotest.(check bool) "sum present" true (List.mem Aeq_rt.Agg.Sum kinds);
    Alcotest.(check bool) "count present" true (List.mem Aeq_rt.Agg.Count kinds)
  | None -> Alcotest.fail "aggregation expected"

let test_shared_aggregates_dedup () =
  (* avg and sum of the same argument share one Sum accumulator, and
     the row count accumulator is shared with count *)
  let p = plan "select sum(l_quantity), avg(l_quantity), count(*) from lineitem" in
  match p.P.pl_agg with
  | Some cfg -> Alcotest.(check int) "two accumulators" 2 (List.length cfg.P.agg_accs)
  | None -> Alcotest.fail "aggregation expected"

let test_decimal_promotion () =
  (* int literal compared with a decimal column must be rescaled *)
  let p = plan "select count(*) from lineitem where l_quantity < 24" in
  let pipe = List.hd p.P.pl_pipelines in
  match pipe.P.p_scan_filters with
  | [ Sc.Bin (Aeq_sql.Ast.Lt, _, Sc.Const (n, Dtype.Decimal), _) ] ->
    Alcotest.(check int64) "24 scaled to 2400" 2400L n
  | _ -> Alcotest.fail "expected rescaled literal"

let test_having_on_agg_scan () =
  let p = plan (Aeq_workload.Queries.tpch_q 11) in
  let agg_scan = List.nth p.P.pl_pipelines (List.length p.P.pl_pipelines - 1) in
  (match agg_scan.P.p_source with
  | P.Src_agg_scan _ -> ()
  | _ -> Alcotest.fail "last pipeline must scan the aggregate");
  Alcotest.(check int) "having became its scan filter" 1
    (List.length agg_scan.P.p_scan_filters)

let test_scalar_eval_decimal_rules () =
  let eval s =
    Aeq_plan.Scalar_eval.eval
      ~col:(fun ~tref:_ ~col:_ -> 0L)
      ~acol:(fun _ -> 0L)
      ~pred:(fun _ _ -> false)
      s
  in
  (* 1.50 * 2.00 = 3.00 (fixed point) *)
  let m =
    Sc.Bin (Aeq_sql.Ast.Mul, Sc.Const (150L, Dtype.Decimal), Sc.Const (200L, Dtype.Decimal), Dtype.Decimal)
  in
  Alcotest.(check int64) "decimal mul" 300L (eval m);
  (* 3.00 / 2.00 = 1.50 *)
  let d =
    Sc.Bin (Aeq_sql.Ast.Div, Sc.Const (300L, Dtype.Decimal), Sc.Const (200L, Dtype.Decimal), Dtype.Decimal)
  in
  Alcotest.(check int64) "decimal div" 150L (eval d);
  (* decimal / int keeps the scale: 3.00 / 2 = 1.50 *)
  let d2 =
    Sc.Bin (Aeq_sql.Ast.Div, Sc.Const (300L, Dtype.Decimal), Sc.Const (2L, Dtype.Int), Dtype.Decimal)
  in
  Alcotest.(check int64) "decimal/int div" 150L (eval d2)

let test_explain_structure () =
  let text = Aeq_plan.Explain.to_string (plan (Aeq_workload.Queries.tpch_q 3)) in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check bool) "mentions probes" true
    (List.exists (fun l -> String.length l > 7 && String.sub l 2 5 = "probe") lines)

let () =
  Alcotest.run "plan"
    [
      ( "shapes",
        [
          Alcotest.test_case "single table" `Quick test_single_table_single_pipeline;
          Alcotest.test_case "build smaller side" `Quick test_join_builds_smaller_side;
          Alcotest.test_case "filter placement" `Quick test_local_filters_go_to_build_pipeline;
          Alcotest.test_case "q5 snowflake" `Quick test_q5_snowflake_shape;
          Alcotest.test_case "payload columns" `Quick test_payload_contains_downstream_columns;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "avg = sum/count" `Quick test_avg_becomes_sum_count;
          Alcotest.test_case "accumulator dedup" `Quick test_shared_aggregates_dedup;
          Alcotest.test_case "having placement" `Quick test_having_on_agg_scan;
        ] );
      ( "scalars",
        [
          Alcotest.test_case "decimal promotion" `Quick test_decimal_promotion;
          Alcotest.test_case "decimal arithmetic" `Quick test_scalar_eval_decimal_rules;
        ] );
      ("explain", [ Alcotest.test_case "structure" `Quick test_explain_structure ]);
    ]

(* Tests for the SQL frontend: lexer, parser, and date handling. *)

module Ast = Aeq_sql.Ast
module Lexer = Aeq_sql.Lexer
module Parser = Aeq_sql.Parser

let test_lexer_basic () =
  let toks = Lexer.tokenize "select a, b from t where x >= 1.50 and y <> 'it''s'" in
  let n_idents =
    List.length (List.filter (function Lexer.Ident _ -> true | _ -> false) toks)
  in
  Alcotest.(check int) "idents" 9 n_idents;
  Alcotest.(check bool) "decimal scaled" true
    (List.exists (function Lexer.Dec_tok 150L -> true | _ -> false) toks);
  Alcotest.(check bool) "escaped quote" true
    (List.exists (function Lexer.Str_tok "it's" -> true | _ -> false) toks)

let test_lexer_comment () =
  let toks = Lexer.tokenize "select -- a comment\n 1" in
  Alcotest.(check bool) "comment skipped" true
    (List.exists (function Lexer.Int_tok 1L -> true | _ -> false) toks)

let test_parse_simple () =
  let q = Parser.parse "select a as x, sum(b) from t where c > 3 group by a order by x limit 5" in
  Alcotest.(check int) "select items" 2 (List.length q.Ast.select);
  Alcotest.(check int) "group keys" 1 (List.length q.Ast.group_by);
  Alcotest.(check int) "order keys" 1 (List.length q.Ast.order_by);
  Alcotest.(check (option int)) "limit" (Some 5) q.Ast.limit;
  match (List.hd q.Ast.select).Ast.alias with
  | Some "x" -> ()
  | _ -> Alcotest.fail "alias lost"

let test_parse_joins () =
  let q =
    Parser.parse
      "select a from t1 join t2 on t1.k = t2.k join t3 on t2.j = t3.j where t1.x < 9"
  in
  Alcotest.(check int) "three tables" 3 (List.length q.Ast.from);
  Alcotest.(check int) "two on-conditions" 2 (List.length q.Ast.join_on)

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3 = 7 and not 1 > 2" in
  (* structure: ((1 + (2*3)) = 7) and (not (1 > 2)) *)
  match e with
  | Ast.Bin (Ast.And, Ast.Bin (Ast.Eq, Ast.Bin (Ast.Add, _, Ast.Bin (Ast.Mul, _, _)), _), Ast.Not _)
    ->
    ()
  | _ -> Alcotest.failf "unexpected tree: %s" (Ast.expr_to_string e)

let test_parse_between_in_like () =
  let e = Parser.parse_expr "a between 1 and 5" in
  (match e with Ast.Between _ -> () | _ -> Alcotest.fail "between");
  let e = Parser.parse_expr "a in (1, 2, 3)" in
  (match e with Ast.In_list (_, [ _; _; _ ]) -> () | _ -> Alcotest.fail "in");
  let e = Parser.parse_expr "a not like 'x%'" in
  (match e with Ast.Not (Ast.Like (_, "x%")) -> () | _ -> Alcotest.fail "not like");
  let e = Parser.parse_expr "extract(year from d)" in
  match e with Ast.Extract_year _ -> () | _ -> Alcotest.fail "extract"

let test_parse_case () =
  let e = Parser.parse_expr "case when a > 1 then 2 when a > 0 then 1 else 0 end" in
  match e with
  | Ast.Case ([ _; _ ], Some (Ast.Lit_int 0L)) -> ()
  | _ -> Alcotest.fail "case structure"

let test_date_literal () =
  (match Parser.parse_expr "date '1970-01-01'" with
  | Ast.Lit_date 0 -> ()
  | Ast.Lit_date d -> Alcotest.failf "epoch = %d" d
  | _ -> Alcotest.fail "not a date");
  (match Parser.parse_expr "date '1992-01-01'" with
  | Ast.Lit_date 8035 -> ()
  | Ast.Lit_date d -> Alcotest.failf "1992-01-01 = %d" d
  | _ -> Alcotest.fail "not a date");
  match Parser.parse_expr "date '1998-12-31'" with
  | Ast.Lit_date 10591 -> ()
  | Ast.Lit_date d -> Alcotest.failf "1998-12-31 = %d" d
  | _ -> Alcotest.fail "not a date"

let test_parse_errors () =
  let fails s =
    match Parser.parse s with
    | _ -> Alcotest.failf "expected parse error for %s" s
    | exception (Parser.Parse_error _ | Lexer.Lex_error _) -> ()
  in
  fails "select";
  fails "select a from";
  fails "select a from t where";
  fails "select a from t limit x";
  (* 'trailing' would be a table alias; actual trailing tokens fail *)
  fails "select a from t where 1 = 1 1"

let test_all_tpch_parse () =
  List.iter
    (fun (name, sql) ->
      match Aeq_sql.Parser.parse sql with
      | _ -> ()
      | exception e -> Alcotest.failf "%s does not parse: %s" name (Printexc.to_string e))
    (Aeq_workload.Queries.tpch @ Aeq_workload.Queries.metadata)

let test_large_query_parses () =
  let sql = Aeq_workload.Queries.large_query 50 in
  let q = Aeq_sql.Parser.parse sql in
  Alcotest.(check int) "50 aggregates" 50 (List.length q.Ast.select)

let () =
  Alcotest.run "sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "comments" `Quick test_lexer_comment;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "joins" `Quick test_parse_joins;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "between/in/like" `Quick test_parse_between_in_like;
          Alcotest.test_case "case" `Quick test_parse_case;
          Alcotest.test_case "dates" `Quick test_date_literal;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "tpch suite parses" `Quick test_all_tpch_parse;
          Alcotest.test_case "large query parses" `Quick test_large_query_parses;
        ] );
    ]

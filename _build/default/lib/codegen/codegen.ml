module P = Aeq_plan.Physical
module Sc = Aeq_plan.Scalar
module Dtype = Aeq_storage.Dtype
module Ast = Aeq_sql.Ast

type scope = { cache : (int * int, Instr.value) Hashtbl.t }

type ctx = {
  b : Builder.t;
  plan : P.t;
  layout : P.layout;
  state : Instr.value;
  tid : Instr.value;
  row : Instr.value;
  source_tref : int; (* tref scanned by this pipeline; -1 for agg scan *)
  bases : (int, Instr.value) Hashtbl.t; (* state slot -> base pointer *)
  mutable payloads : (int * (int * Instr.value)) list; (* tref -> (ht idx, entry value) *)
  mutable scopes : scope list;
  mutable cond_depth : int; (* >0 inside CASE arms: no caching *)
}

let i64 = Types.I64

let push_scope ctx = ctx.scopes <- { cache = Hashtbl.create 16 } :: ctx.scopes

let pop_scope ctx =
  match ctx.scopes with [] -> invalid_arg "Codegen: scope underflow" | _ :: rest -> ctx.scopes <- rest

let cache_find ctx key =
  let rec go = function
    | [] -> None
    | s :: rest -> (
      match Hashtbl.find_opt s.cache key with Some v -> Some v | None -> go rest)
  in
  go ctx.scopes

let cache_store ctx key v =
  if ctx.cond_depth = 0 then
    match ctx.scopes with [] -> () | s :: _ -> Hashtbl.replace s.cache key v

(* Base pointer for a state slot, loaded once in the entry block. *)
let base ctx slot =
  match Hashtbl.find_opt ctx.bases slot with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Codegen: slot %d not preloaded" slot)

let load_source_cell ctx slot =
  let base = base ctx slot in
  let addr = Builder.gep ctx.b ~base ~index:ctx.row ~scale:8 ~offset:0 in
  Builder.load ctx.b i64 addr

let gen_col ctx ~tref ~col =
  let key = (tref, col) in
  match cache_find ctx key with
  | Some v -> v
  | None ->
    let v =
      if tref = ctx.source_tref then
        load_source_cell ctx (P.slot_of_col ctx.layout ~tref ~col)
      else begin
        match List.assoc_opt tref ctx.payloads with
        | Some (ht_idx, entry) ->
          let spec = ctx.plan.P.pl_hts.(ht_idx) in
          let off =
            match List.assoc_opt col spec.P.ht_payload with
            | Some o -> o
            | None ->
              invalid_arg
                (Printf.sprintf "Codegen: t%d.c%d not in ht%d payload" tref col ht_idx)
          in
          let addr =
            Builder.gep ctx.b ~base:entry ~index:(Instr.Imm 0L) ~scale:0
              ~offset:(Aeq_rt.Hash_table.payload_offset + off)
          in
          Builder.load ctx.b i64 addr
        | None ->
          invalid_arg (Printf.sprintf "Codegen: t%d not available at this point" tref)
      end
    in
    cache_store ctx key v;
    v

let gen_acol ctx idx =
  let key = (-2, idx) in
  match cache_find ctx key with
  | Some v -> v
  | None ->
    let v = load_source_cell ctx (P.slot_of_agg_col ctx.layout idx) in
    cache_store ctx key v;
    v

let scale_imm = Instr.Imm (Int64.of_int Dtype.scale)

(* Booleans are I1 values (0/1). *)
let rec gen ctx (s : Sc.t) : Instr.value =
  match s with
  | Sc.Col { tref; col; _ } -> gen_col ctx ~tref ~col
  | Sc.Acol { idx; _ } -> gen_acol ctx idx
  | Sc.Const (n, _) -> Instr.Imm n
  | Sc.Year e ->
    let v = gen ctx e in
    Builder.call ctx.b i64 "year_of" [ (v, i64) ]
  | Sc.Dict_match (id, e) ->
    let code = gen ctx e in
    let r =
      Builder.call ctx.b i64 "dict_match" [ (Instr.Imm (Int64.of_int id), i64); (code, i64) ]
    in
    Builder.cast ctx.b Instr.Trunc ~from_ty:i64 ~to_ty:Types.I1 r
  | Sc.Not e ->
    let v = gen ctx e in
    Builder.binop ctx.b Instr.Xor Types.I1 v (Instr.Imm 1L)
  | Sc.Bin (op, a, b, _) -> (
    let da = Sc.dtype a and db = Sc.dtype b in
    let va = gen ctx a in
    let vb = gen ctx b in
    match op with
    | Ast.And -> Builder.binop ctx.b Instr.And Types.I1 va vb
    | Ast.Or -> Builder.binop ctx.b Instr.Or Types.I1 va vb
    | Ast.Add -> Builder.checked ctx.b Instr.OAdd i64 va vb
    | Ast.Sub -> Builder.checked ctx.b Instr.OSub i64 va vb
    | Ast.Mul ->
      let m = Builder.checked ctx.b Instr.OMul i64 va vb in
      if Dtype.equal da Dtype.Decimal && Dtype.equal db Dtype.Decimal then
        Builder.binop ctx.b Instr.Div i64 m scale_imm
      else m
    | Ast.Div ->
      if Dtype.equal db Dtype.Decimal then begin
        let scaled = Builder.checked ctx.b Instr.OMul i64 va scale_imm in
        Builder.binop ctx.b Instr.Div i64 scaled vb
      end
      else Builder.binop ctx.b Instr.Div i64 va vb
    | Ast.Eq -> Builder.icmp ctx.b Instr.Eq i64 va vb
    | Ast.Ne -> Builder.icmp ctx.b Instr.Ne i64 va vb
    | Ast.Lt -> Builder.icmp ctx.b Instr.Slt i64 va vb
    | Ast.Le -> Builder.icmp ctx.b Instr.Sle i64 va vb
    | Ast.Gt -> Builder.icmp ctx.b Instr.Sgt i64 va vb
    | Ast.Ge -> Builder.icmp ctx.b Instr.Sge i64 va vb)
  | Sc.Case (whens, els, _) ->
    (* chained conditional blocks merging in a φ *)
    let join = Builder.new_block ctx.b in
    let depth0 = ctx.cond_depth in
    ctx.cond_depth <- depth0 + 1;
    let incoming = ref [] in
    let rec arms = function
      | [] ->
        let v = gen ctx els in
        incoming := (Builder.current_block ctx.b, v) :: !incoming;
        Builder.br ctx.b join
      | (c, v) :: rest ->
        let cond = gen ctx c in
        let arm = Builder.new_block ctx.b in
        let next = Builder.new_block ctx.b in
        Builder.condbr ctx.b cond ~if_true:arm ~if_false:next;
        Builder.switch_to ctx.b arm;
        let value = gen ctx v in
        incoming := (Builder.current_block ctx.b, value) :: !incoming;
        Builder.br ctx.b join;
        Builder.switch_to ctx.b next;
        arms rest
    in
    arms whens;
    ctx.cond_depth <- depth0;
    Builder.switch_to ctx.b join;
    Builder.phi ctx.b i64 (List.rev !incoming)

(* Evaluate a boolean filter; on failure jump to [fail]; continue in a
   fresh block on success. *)
let gen_filter ctx filter ~fail =
  let v = gen ctx filter in
  let pass = Builder.new_block ctx.b in
  Builder.condbr ctx.b v ~if_true:pass ~if_false:fail;
  Builder.switch_to ctx.b pass

let gen_sink ctx (sink : P.sink) =
  match sink with
  | P.S_build { ht; key; payload } ->
    let k = gen ctx key in
    let p =
      Builder.call ctx.b i64 "ht_insert"
        [ (Instr.Imm (Int64.of_int ht), i64); (ctx.tid, i64); (k, i64) ]
    in
    List.iter
      (fun (off, v) ->
        let value = gen ctx v in
        let addr = Builder.gep ctx.b ~base:p ~index:(Instr.Imm 0L) ~scale:0 ~offset:off in
        Builder.store ctx.b i64 ~addr value)
      payload
  | P.S_agg { agg; keys; accs } ->
    let k1 = match keys with k :: _ -> gen ctx k | [] -> Instr.Imm 0L in
    let k2 = match keys with _ :: k :: _ -> gen ctx k | _ -> Instr.Imm 0L in
    let row =
      Builder.call ctx.b i64 "agg_get"
        [ (Instr.Imm (Int64.of_int agg), i64); (ctx.tid, i64); (k1, i64); (k2, i64) ]
    in
    List.iteri
      (fun i (kind, arg) ->
        let addr = Builder.gep ctx.b ~base:row ~index:(Instr.Imm 0L) ~scale:0 ~offset:(8 * i) in
        let cur = Builder.load ctx.b i64 addr in
        let next =
          match (kind, arg) with
          | Aeq_rt.Agg.Count, _ -> Builder.binop ctx.b Instr.Add i64 cur (Instr.Imm 1L)
          | Aeq_rt.Agg.Sum, Some s ->
            let v = gen ctx s in
            Builder.checked ctx.b Instr.OAdd i64 cur v
          | Aeq_rt.Agg.Min, Some s ->
            let v = gen ctx s in
            let c = Builder.icmp ctx.b Instr.Slt i64 v cur in
            Builder.select ctx.b i64 c v cur
          | Aeq_rt.Agg.Max, Some s ->
            let v = gen ctx s in
            let c = Builder.icmp ctx.b Instr.Sgt i64 v cur in
            Builder.select ctx.b i64 c v cur
          | (Aeq_rt.Agg.Sum | Aeq_rt.Agg.Min | Aeq_rt.Agg.Max), None ->
            invalid_arg "Codegen: aggregate without argument"
        in
        Builder.store ctx.b i64 ~addr next)
      accs
  | P.S_out { out; exprs } ->
    let r =
      Builder.call ctx.b i64 "out_row"
        [ (Instr.Imm (Int64.of_int out), i64); (ctx.tid, i64) ]
    in
    List.iteri
      (fun i e ->
        let v = gen ctx e in
        let addr = Builder.gep ctx.b ~base:r ~index:(Instr.Imm 0L) ~scale:0 ~offset:(8 * i) in
        Builder.store ctx.b i64 ~addr v)
      exprs

(* Nested probe loops, innermost runs the sink. [continue_target] is
   where a rejected/finished row goes (enclosing probe's next-match
   block or the row-advance block). *)
let rec gen_probes ctx probes ~continue_target ~sink =
  match probes with
  | [] -> gen_sink ctx sink
  | (probe : P.probe) :: rest ->
    let key = gen ctx probe.P.pr_key in
    let ht_imm = Instr.Imm (Int64.of_int probe.P.pr_ht) in
    let first = Builder.call ctx.b i64 "ht_lookup" [ (ht_imm, i64); (key, i64) ] in
    let match_head = Builder.new_block ctx.b in
    let match_body = Builder.new_block ctx.b in
    let match_cont = Builder.new_block ctx.b in
    let from = Builder.current_block ctx.b in
    Builder.br ctx.b match_head;
    Builder.switch_to ctx.b match_head;
    let entry = Builder.phi ctx.b i64 [ (from, first) ] in
    let is_null = Builder.icmp ctx.b Instr.Eq i64 entry (Instr.Imm 0L) in
    Builder.condbr ctx.b is_null ~if_true:continue_target ~if_false:match_body;
    Builder.switch_to ctx.b match_body;
    push_scope ctx;
    ctx.payloads <- (probe.P.pr_tref, (probe.P.pr_ht, entry)) :: ctx.payloads;
    List.iter (fun f -> gen_filter ctx f ~fail:match_cont) probe.P.pr_filters;
    gen_probes ctx rest ~continue_target:match_cont ~sink;
    if not (Builder.terminated ctx.b) then Builder.br ctx.b match_cont;
    ctx.payloads <- List.remove_assoc probe.P.pr_tref ctx.payloads;
    pop_scope ctx;
    Builder.switch_to ctx.b match_cont;
    let next = Builder.call ctx.b i64 "ht_next" [ (ht_imm, i64); (entry, i64) ] in
    Builder.add_phi_incoming ctx.b ~block:match_head ~dst:entry
      ~pred:(Builder.current_block ctx.b)
      next;
    Builder.br ctx.b match_head

let collect_slots plan layout ~pipeline:(p : P.pipeline) =
  (* every state slot the pipeline reads: source columns + agg columns *)
  let slots = Hashtbl.create 32 in
  let source_tref =
    match p.P.p_source with P.Src_scan { tref } -> tref | P.Src_agg_scan _ -> -1
  in
  let rec scan (s : Sc.t) =
    match s with
    | Sc.Col { tref; col; _ } ->
      if tref = source_tref then
        Hashtbl.replace slots (P.slot_of_col layout ~tref ~col) ()
    | Sc.Acol { idx; _ } -> Hashtbl.replace slots (P.slot_of_agg_col layout idx) ()
    | Sc.Const _ -> ()
    | Sc.Bin (_, a, b, _) ->
      scan a;
      scan b
    | Sc.Year e | Sc.Dict_match (_, e) | Sc.Not e -> scan e
    | Sc.Case (whens, els, _) ->
      List.iter
        (fun (c, v) ->
          scan c;
          scan v)
        whens;
      scan els
  in
  List.iter scan p.P.p_scan_filters;
  List.iter
    (fun (pr : P.probe) ->
      scan pr.P.pr_key;
      List.iter scan pr.P.pr_filters)
    p.P.p_probes;
  (match p.P.p_sink with
  | P.S_build { key; payload; _ } ->
    scan key;
    List.iter (fun (_, v) -> scan v) payload
  | P.S_agg { keys; accs; _ } ->
    List.iter scan keys;
    List.iter (fun (_, a) -> match a with Some s -> scan s | None -> ()) accs
  | P.S_out { exprs; _ } -> List.iter scan exprs);
  ignore plan;
  Hashtbl.fold (fun s () acc -> s :: acc) slots [] |> List.sort compare

let pipeline_worker plan layout ~pipeline =
  let p = List.nth plan.P.pl_pipelines pipeline in
  let b =
    Builder.create
      ~name:(Printf.sprintf "worker_%d_%s" pipeline (String.map (fun c -> if c = ' ' then '_' else c) p.P.p_name))
      ~params:[ Types.Ptr; Types.I64; Types.I64; Types.I64 ]
  in
  let source_tref =
    match p.P.p_source with P.Src_scan { tref } -> tref | P.Src_agg_scan _ -> -1
  in
  let state = Builder.param b 0 in
  let begin_ = Builder.param b 1 in
  let end_ = Builder.param b 2 in
  let tid = Builder.param b 3 in
  (* entry: preload base pointers *)
  let bases = Hashtbl.create 32 in
  let slots = collect_slots plan layout ~pipeline:p in
  List.iter
    (fun slot ->
      let addr = Builder.gep b ~base:state ~index:(Instr.Imm 0L) ~scale:0 ~offset:(8 * slot) in
      Hashtbl.replace bases slot (Builder.load b Types.I64 addr))
    slots;
  let head = Builder.new_block b in
  let body = Builder.new_block b in
  let row_next = Builder.new_block b in
  let exit = Builder.new_block b in
  let entry_block = Builder.current_block b in
  Builder.br b head;
  Builder.switch_to b head;
  let row = Builder.phi b Types.I64 [ (entry_block, begin_) ] in
  let more = Builder.icmp b Instr.Slt Types.I64 row end_ in
  Builder.condbr b more ~if_true:body ~if_false:exit;
  (* row_next: advance *)
  Builder.switch_to b row_next;
  let row' = Builder.binop b Instr.Add Types.I64 row (Instr.Imm 1L) in
  Builder.br b head;
  Builder.add_phi_incoming b ~block:head ~dst:row ~pred:row_next row';
  (* exit *)
  Builder.switch_to b exit;
  Builder.ret_void b;
  (* body *)
  Builder.switch_to b body;
  let ctx =
    {
      b;
      plan;
      layout;
      state;
      tid;
      row;
      source_tref;
      bases;
      payloads = [];
      scopes = [];
      cond_depth = 0;
    }
  in
  push_scope ctx;
  List.iter (fun f -> gen_filter ctx f ~fail:row_next) p.P.p_scan_filters;
  gen_probes ctx p.P.p_probes ~continue_target:row_next ~sink:p.P.p_sink;
  if not (Builder.terminated ctx.b) then Builder.br ctx.b row_next;
  let f = Builder.finish b in
  Layout.normalize f;
  Verify.run f;
  f

let all_workers plan layout =
  List.mapi (fun i _ -> pipeline_worker plan layout ~pipeline:i) plan.P.pl_pipelines

(** Data-centric code generation: one IR worker function per pipeline
    (paper Fig. 4).

    Each worker has the signature
    [worker(state : ptr, begin : i64, end : i64, tid : i64)]:
    it processes the morsel [\[begin, end)] of its pipeline's source,
    reading column base pointers from the query-state area, evaluating
    filters, walking join hash tables match by match, and feeding the
    sink (hash-table build, aggregate update, or output row). All
    arithmetic is overflow-checked, as in HyPer.

    The generated functions are pure IR: they can be translated to
    bytecode, compiled unoptimized or optimized, and switched between
    those modes at any morsel boundary. *)

val pipeline_worker :
  Aeq_plan.Physical.t -> Aeq_plan.Physical.layout -> pipeline:int -> Func.t
(** Generate the worker for pipeline index [pipeline]. The result is
    layout-normalized and verified. *)

val all_workers : Aeq_plan.Physical.t -> Aeq_plan.Physical.layout -> Func.t list

lib/codegen/codegen.ml: Aeq_plan Aeq_rt Aeq_sql Aeq_storage Array Builder Hashtbl Instr Int64 Layout List Printf String Types Verify

lib/codegen/codegen.mli: Aeq_plan Func

let geomean = function
  | [] -> 0.0
  | xs ->
    let n = List.length xs in
    let sum = List.fold_left (fun acc x -> acc +. log (Stdlib.max x 1e-12)) 0.0 xs in
    exp (sum /. float_of_int n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let sorted xs = List.sort compare xs

let median xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
    let n = List.length s in
    let arr = Array.of_list s in
    if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let min_max = function
  | [] -> (0.0, 0.0)
  | x :: xs -> List.fold_left (fun (lo, hi) v -> (Stdlib.min lo v, Stdlib.max hi v)) (x, x) xs

let linear_fit pts =
  let n = float_of_int (List.length pts) in
  if n < 2.0 then (0.0, 0.0)
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
    let denom = (n *. sxx) -. (sx *. sx) in
    if abs_float denom < 1e-12 then (sy /. n, 0.0)
    else begin
      let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
      let intercept = (sy -. (slope *. sx)) /. n in
      (intercept, slope)
    end
  end

let percentile p xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
    let arr = Array.of_list s in
    let n = Array.length arr in
    let idx = int_of_float (p *. float_of_int (n - 1)) in
    arr.(Stdlib.max 0 (Stdlib.min (n - 1) idx))

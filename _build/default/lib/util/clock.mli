(** Wall-clock timing helpers used by the progress tracker, the
    adaptive controller and all benchmarks. *)

val now : unit -> float
(** Seconds since an arbitrary epoch, monotonic enough for interval
    measurement. *)

val time_it : (unit -> 'a) -> 'a * float
(** [time_it f] runs [f] and returns its result together with the
    elapsed wall time in seconds. *)

val ms : float -> float
(** Convert seconds to milliseconds. *)

val busy_wait : float -> unit
(** [busy_wait s] spins for [s] seconds. Used by the compile-latency
    cost model to emulate LLVM backend costs (see DESIGN.md). *)

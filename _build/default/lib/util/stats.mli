(** Small statistics helpers for the benchmark harness. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)

val mean : float list -> float

val median : float list -> float

val min_max : float list -> float * float

val linear_fit : (float * float) list -> float * float
(** [linear_fit pts] returns [(intercept, slope)] of the least-squares
    line through [pts]. Used to calibrate the compile-time model
    against measured translation times (paper Fig. 6). *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]]. *)

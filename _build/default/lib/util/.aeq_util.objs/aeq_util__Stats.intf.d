lib/util/stats.mli:

lib/util/prng.mli:

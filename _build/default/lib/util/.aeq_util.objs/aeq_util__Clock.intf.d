lib/util/clock.mli:

lib/util/clock.ml: Sys Unix

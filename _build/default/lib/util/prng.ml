type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create (next_int64 t)

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Chen's approximation of a Zipf draw: invert the CDF of the
   continuous analogue. Accurate enough for generating skewed keys. *)
let zipf t ~n ~theta =
  if theta <= 0.0 then int t n
  else begin
    let u = Stdlib.max 1e-12 (float t 1.0) in
    let alpha = 1.0 -. theta in
    let x = Stdlib.Float.pow (float_of_int n) alpha in
    let v = Stdlib.Float.pow ((x -. 1.0) *. u +. 1.0) (1.0 /. alpha) in
    let k = int_of_float v - 1 in
    if k < 0 then 0 else if k >= n then n - 1 else k
  end

(** Deterministic pseudo-random number generation (splitmix64).

    All data generation in the repository goes through this module so
    that workloads are reproducible across runs and platforms. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing
    [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] draws from a Zipf distribution over
    [\[0, n)] with skew [theta] (0 = uniform). Uses the standard
    rejection-free approximation; adequate for workload skew. *)

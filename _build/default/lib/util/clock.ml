let now () = Unix.gettimeofday ()

let time_it f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

let ms s = s *. 1000.0

let busy_wait s =
  if s > 0.0 then begin
    let deadline = now () +. s in
    while now () < deadline do
      (* A short computation batch between clock reads keeps the spin
         from hammering the VDSO call. *)
      let acc = ref 0 in
      for i = 1 to 500 do
        acc := !acc + i
      done;
      ignore (Sys.opaque_identity !acc)
    done
  end

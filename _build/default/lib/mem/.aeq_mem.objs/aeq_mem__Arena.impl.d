lib/mem/arena.ml: Array Bytes Char Int64 Mutex Stdlib

lib/mem/arena.mli: Bytes

(** Pipeline progress tracking (paper Section III-A).

    Records the total work when a pipeline starts and, after every
    morsel, the per-thread local tuple processing rate. The adaptive
    controller extrapolates the remaining pipeline duration from the
    average rate and the remaining-tuple count. *)

type t

val create : total_rows:int -> n_threads:int -> t

val start_time : t -> float

val note_morsel : t -> tid:int -> rows:int -> seconds:float -> unit

val processed : t -> int

val remaining : t -> int

val avg_rate : t -> float
(** Mean of the per-thread rates observed so far (tuples/second);
    0 if nothing was measured yet. *)

val reset_rates : t -> unit
(** Called after a mode switch so the extrapolation uses post-switch
    rates only (paper Section III-C). *)

lib/exec/adaptive.mli: Aeq_backend Handle Progress

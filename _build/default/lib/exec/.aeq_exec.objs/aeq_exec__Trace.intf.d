lib/exec/trace.mli: Aeq_backend

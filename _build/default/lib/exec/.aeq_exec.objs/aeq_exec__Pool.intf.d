lib/exec/pool.mli:

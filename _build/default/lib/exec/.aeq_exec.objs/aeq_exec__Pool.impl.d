lib/exec/pool.ml: Array Atomic Condition Domain Mutex Stdlib

lib/exec/adaptive.ml: Aeq_backend Aeq_util Atomic Handle Progress Stdlib

lib/exec/handle.mli: Aeq_backend Aeq_mem Aeq_vm Atomic Bytes Func

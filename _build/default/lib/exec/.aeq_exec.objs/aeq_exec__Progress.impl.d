lib/exec/progress.ml: Aeq_util Array Atomic Stdlib

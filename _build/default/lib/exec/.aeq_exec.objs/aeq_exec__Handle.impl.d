lib/exec/handle.ml: Aeq_backend Aeq_vm Atomic Bytes Func Stdlib

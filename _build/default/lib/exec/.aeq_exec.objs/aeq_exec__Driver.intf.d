lib/exec/driver.mli: Aeq_backend Aeq_plan Aeq_storage Pool Trace

lib/exec/driver.ml: Adaptive Aeq_backend Aeq_codegen Aeq_mem Aeq_plan Aeq_rt Aeq_storage Aeq_util Array Atomic Bytes Handle Int64 List Pool Printf Progress Stdlib String Trace

lib/exec/trace.ml: Aeq_backend Aeq_util Array Buffer Bytes List Mutex Printf Stdlib

lib/exec/progress.mli:

module CM = Aeq_backend.Cost_model

type variant =
  | V_bytecode of Aeq_vm.Bytecode.t
  | V_compiled of CM.mode * Aeq_backend.Closure_compile.t

type t = {
  func : Func.t;
  bytecode : Aeq_vm.Bytecode.t;
  current : variant Atomic.t;
  compiling : bool Atomic.t;
  n_instrs : int;
  bc_translate_seconds : float;
  mutable compile_seconds : float;
}

let create ~cost_model ~symbols func =
  let bytecode, bc_seconds =
    Aeq_backend.Compiler.translate_bytecode ~cost_model ~symbols func
  in
  {
    func;
    bytecode;
    current = Atomic.make (V_bytecode bytecode);
    compiling = Atomic.make false;
    n_instrs = Func.n_instrs func;
    bc_translate_seconds = bc_seconds;
    compile_seconds = 0.0;
  }

let mode t =
  match Atomic.get t.current with
  | V_bytecode _ -> CM.Bytecode
  | V_compiled (m, _) -> m

let install t v = Atomic.set t.current v

let ensure_regs regs n =
  if Bytes.length !regs < n then regs := Bytes.make (Stdlib.max n (2 * Bytes.length !regs)) '\000'

let run_morsel t mem ~regs ~args =
  match Atomic.get t.current with
  | V_bytecode bc ->
    ensure_regs regs bc.Aeq_vm.Bytecode.n_reg_bytes;
    ignore (Aeq_vm.Interp.run bc mem ~regs:!regs ~args ())
  | V_compiled (_, c) ->
    ensure_regs regs (Aeq_backend.Closure_compile.n_reg_bytes c);
    ignore (Aeq_backend.Closure_compile.run c ~regs:!regs ~args ())

let promote t ~cost_model ~symbols ~mem ~mode =
  let compiled = Aeq_backend.Compiler.compile ~cost_model ~symbols ~mem ~mode t.func in
  install t (V_compiled (mode, compiled.Aeq_backend.Compiler.exec));
  t.compile_seconds <- t.compile_seconds +. compiled.Aeq_backend.Compiler.compile_seconds;
  compiled.Aeq_backend.Compiler.compile_seconds

(** End-to-end query execution: the queryStart role of the paper's
    Fig. 4, in OCaml (it runs once per query and never pays off to
    compile).

    Sets up the runtime context and objects, generates and translates
    the pipeline workers, then runs each pipeline with morsel-driven
    parallelism. In [Adaptive] mode every pipeline starts in the
    bytecode interpreter on all threads; after each morsel the
    controller may decide to compile, in which case the deciding
    thread compiles (its lane shows a 'C' burst in the trace) while
    the others keep interpreting, and all threads pick up the new
    variant on their next morsel. Static modes compile every pipeline
    up front, single-threaded, exactly like a classical compiling
    engine. *)

type mode = Bytecode | Unopt | Opt | Adaptive

val mode_name : mode -> string

type stats = {
  codegen_seconds : float;
  bc_seconds : float;  (** bytecode translation, all pipelines *)
  compile_seconds : float;  (** machine-code compilation (incl. adaptive) *)
  exec_seconds : float;  (** pipeline execution wall time *)
  total_seconds : float;
  rows_out : int;
  final_modes : string list;  (** execution mode of each pipeline at completion *)
}

type result = {
  names : string list;
  dtypes : Aeq_storage.Dtype.t list;
  rows : int64 array list;  (** ordered, limited *)
  stats : stats;
  trace : Trace.t option;
  final_cm_modes : Aeq_backend.Cost_model.mode list;
      (** machine-readable variant of [stats.final_modes], usable as
          the next execution's [initial_modes] *)
}

val execute :
  ?cost_model:Aeq_backend.Cost_model.t ->
  ?collect_trace:bool ->
  ?initial_modes:Aeq_backend.Cost_model.mode list ->
  Aeq_storage.Catalog.t ->
  Aeq_plan.Physical.t ->
  mode:mode ->
  pool:Pool.t ->
  result
(** Query scratch memory is released (arena truncation) before
    returning; result rows are decoded into OCaml arrays first.

    [initial_modes] (adaptive mode only) pre-compiles the listed
    pipelines before execution starts — the plan-caching extension of
    the paper's Section VI: when a cached query's pipeline ended in a
    compiled mode last time, later executions start there instead of
    re-learning. *)

val row_to_strings : Aeq_storage.Catalog.t -> Aeq_storage.Dtype.t list -> int64 array -> string list
(** Render one result row (decimal scaling, date and dictionary
    decoding). *)

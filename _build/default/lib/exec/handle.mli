(** Worker-function handles (paper Fig. 5).

    A handle stores every available representation of one pipeline's
    worker function. Workers pick the current best variant for every
    morsel; switching execution modes is a single atomic store, and
    because all variants operate on the same arena state, remaining
    morsels continue seamlessly in the new mode. *)

type variant =
  | V_bytecode of Aeq_vm.Bytecode.t
  | V_compiled of Aeq_backend.Cost_model.mode * Aeq_backend.Closure_compile.t

type t = {
  func : Func.t;
  bytecode : Aeq_vm.Bytecode.t;
  current : variant Atomic.t;
  compiling : bool Atomic.t;  (** a compile task is in flight *)
  n_instrs : int;
  bc_translate_seconds : float;
  mutable compile_seconds : float;  (** accumulated compilation latency *)
}

val create :
  cost_model:Aeq_backend.Cost_model.t ->
  symbols:Aeq_vm.Rt_fn.resolver ->
  Func.t ->
  t
(** Translate to bytecode (always available, fast). *)

val mode : t -> Aeq_backend.Cost_model.mode

val install : t -> variant -> unit

val run_morsel :
  t -> Aeq_mem.Arena.t -> regs:Bytes.t ref -> args:int64 array -> unit
(** Execute one morsel with the current variant, growing the caller's
    scratch register file if the variant needs more space. *)

val promote :
  t ->
  cost_model:Aeq_backend.Cost_model.t ->
  symbols:Aeq_vm.Rt_fn.resolver ->
  mem:Aeq_mem.Arena.t ->
  mode:Aeq_backend.Cost_model.mode ->
  float
(** Compile to the given mode (blocking; run it on the thread that
    volunteered) and install the result. Returns the compile latency
    in seconds. *)

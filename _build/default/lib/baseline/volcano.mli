(** Volcano-style tuple-at-a-time interpretation (the "PostgreSQL"
    comparison point of Tables I/II).

    Executes the physical plan one tuple at a time through boxed
    evaluator closures with per-tuple virtual dispatch — no code
    generation, no compilation latency, but substantial interpretation
    overhead per tuple. Single-threaded. *)

val execute :
  Aeq_storage.Catalog.t -> Aeq_plan.Physical.t -> int64 array list
(** Result rows, ordered and limited.
    @raise Aeq_ir.Trap.Error on arithmetic errors. *)

module P = Aeq_plan.Physical
module Table = Aeq_storage.Table
module Dtype = Aeq_storage.Dtype

type db = { catalog : Aeq_storage.Catalog.t; plan : P.t }

let cell db ~tref ~col ~row =
  let tbl = fst db.plan.P.pl_trefs.(tref) in
  Table.get (Aeq_storage.Catalog.arena db.catalog) tbl ~col ~row

let pred db id code = Aeq_rt.Bitmap.get db.plan.P.pl_preds.(id) (Int64.to_int code)

let finish_rows db rows =
  let dtype_arr = Array.of_list db.plan.P.pl_out.P.out_dtypes in
  let dict = Aeq_storage.Catalog.dict db.catalog in
  let compare_rows (a : int64 array) (b : int64 array) =
    let rec go = function
      | [] -> 0
      | (idx, desc) :: rest ->
        let c =
          match dtype_arr.(idx) with
          | Dtype.Str ->
            String.compare (Aeq_rt.Dict.decode dict a.(idx)) (Aeq_rt.Dict.decode dict b.(idx))
          | _ -> Int64.compare a.(idx) b.(idx)
        in
        if c <> 0 then if desc then -c else c else go rest
    in
    go db.plan.P.pl_order_by
  in
  let rows =
    if db.plan.P.pl_order_by = [] then rows else List.stable_sort compare_rows rows
  in
  match db.plan.P.pl_limit with
  | Some n -> List.filteri (fun i _ -> i < n) rows
  | None -> rows

let group_key_of keys eval_key =
  match keys with
  | [] -> (0L, 0L)
  | [ _ ] -> (eval_key 0, 0L)
  | _ -> (eval_key 0, eval_key 1)

let acc_init = function
  | Aeq_rt.Agg.Sum | Aeq_rt.Agg.Count -> 0L
  | Aeq_rt.Agg.Min -> Int64.max_int
  | Aeq_rt.Agg.Max -> Int64.min_int

let acc_combine kind acc v =
  match kind with
  | Aeq_rt.Agg.Sum -> Aeq_ir.Semantics.add_chk ~width:64 acc v
  | Aeq_rt.Agg.Count -> Int64.add acc 1L
  | Aeq_rt.Agg.Min -> if Int64.compare v acc < 0 then v else acc
  | Aeq_rt.Agg.Max -> if Int64.compare v acc > 0 then v else acc

module P = Aeq_plan.Physical
module Sc = Aeq_plan.Scalar
module Table = Aeq_storage.Table
module Ast = Aeq_sql.Ast
module S = Aeq_ir.Semantics
module Dtype = Aeq_storage.Dtype

(* A tuple set: aligned row-id vectors, one per available table
   instance. *)
type tset = { n : int; rows : (int * int array) list (* tref -> row ids *) }

let scale = Int64.of_int Dtype.scale

(* Vectorised scalar evaluation over a tuple set. *)
let rec eval_vec db (ts : tset) ~acols (s : Sc.t) : int64 array =
  match s with
  | Sc.Col { tref; col; _ } -> (
    match List.assoc_opt tref ts.rows with
    | Some ids -> Array.map (fun row -> Common.cell db ~tref ~col ~row) ids
    | None -> invalid_arg "Vectorized: column of unavailable table")
  | Sc.Acol { idx; _ } -> (
    match acols with
    | Some cols -> Array.map (fun row -> (cols : int64 array array).(idx).(row)) (snd (List.hd ts.rows))
    | None -> invalid_arg "Vectorized: no aggregate context")
  | Sc.Const (v, _) -> Array.make ts.n v
  | Sc.Year e -> Array.map Aeq_rt.Symbols.year_of_days (eval_vec db ts ~acols e)
  | Sc.Dict_match (id, e) ->
    Array.map
      (fun code -> if Common.pred db id code then 1L else 0L)
      (eval_vec db ts ~acols e)
  | Sc.Not e -> Array.map (fun v -> if Int64.equal v 0L then 1L else 0L) (eval_vec db ts ~acols e)
  | Sc.Case (whens, els, _) ->
    let result = eval_vec db ts ~acols els in
    let decided = Array.make ts.n false in
    List.iter
      (fun (c, v) ->
        let cv = eval_vec db ts ~acols c in
        let vv = eval_vec db ts ~acols v in
        for i = 0 to ts.n - 1 do
          if (not decided.(i)) && not (Int64.equal cv.(i) 0L) then begin
            result.(i) <- vv.(i);
            decided.(i) <- true
          end
        done)
      whens;
    result
  | Sc.Bin (op, a, b, _) ->
    let da = Sc.dtype a and db_ = Sc.dtype b in
    let va = eval_vec db ts ~acols a and vb = eval_vec db ts ~acols b in
    let map2 f = Array.init ts.n (fun i -> f va.(i) vb.(i)) in
    (match op with
    | Ast.And -> map2 Int64.logand
    | Ast.Or -> map2 Int64.logor
    | Ast.Add -> map2 (S.add_chk ~width:64)
    | Ast.Sub -> map2 (S.sub_chk ~width:64)
    | Ast.Mul ->
      if Dtype.equal da Dtype.Decimal && Dtype.equal db_ Dtype.Decimal then
        map2 (fun x y -> Int64.div (S.mul_chk ~width:64 x y) scale)
      else map2 (S.mul_chk ~width:64)
    | Ast.Div ->
      if Dtype.equal db_ Dtype.Decimal then
        map2 (fun x y ->
            if Int64.equal y 0L then Aeq_ir.Trap.division_by_zero ()
            else Int64.div (S.mul_chk ~width:64 x scale) y)
      else
        map2 (fun x y ->
            if Int64.equal y 0L then Aeq_ir.Trap.division_by_zero () else Int64.div x y)
    | Ast.Eq -> map2 (fun x y -> S.bool_i64 (Int64.equal x y))
    | Ast.Ne -> map2 (fun x y -> S.bool_i64 (not (Int64.equal x y)))
    | Ast.Lt -> map2 (fun x y -> S.bool_i64 (Int64.compare x y < 0))
    | Ast.Le -> map2 (fun x y -> S.bool_i64 (Int64.compare x y <= 0))
    | Ast.Gt -> map2 (fun x y -> S.bool_i64 (Int64.compare x y > 0))
    | Ast.Ge -> map2 (fun x y -> S.bool_i64 (Int64.compare x y >= 0)))

let select ts keep =
  let idx = ref [] in
  for i = ts.n - 1 downto 0 do
    if keep.(i) then idx := i :: !idx
  done;
  let idx = Array.of_list !idx in
  {
    n = Array.length idx;
    rows = List.map (fun (t, ids) -> (t, Array.map (fun i -> ids.(i)) idx)) ts.rows;
  }

let filter db ts ~acols f =
  let v = eval_vec db ts ~acols f in
  select ts (Array.map (fun x -> not (Int64.equal x 0L)) v)

let execute catalog (plan : P.t) =
  let db = { Common.catalog; plan } in
  let hts = Array.map (fun _ -> Hashtbl.create 1024) plan.P.pl_hts in
  let groups : (int64 * int64, int64 array) Hashtbl.t = Hashtbl.create 256 in
  let out_rows = ref [] in
  let run_scan_pipeline (p : P.pipeline) =
    let tref = match p.P.p_source with P.Src_scan { tref } -> tref | _ -> assert false in
    let n = (fst plan.P.pl_trefs.(tref)).Table.n_rows in
    let ts = ref { n; rows = [ (tref, Array.init n Fun.id) ] } in
    (* scan filters, column at a time *)
    List.iter (fun f -> ts := filter db !ts ~acols:None f) p.P.p_scan_filters;
    (* joins: expand the tuple set per probe *)
    List.iter
      (fun (pr : P.probe) ->
        let keys = eval_vec db !ts ~acols:None pr.P.pr_key in
        let out_idx = ref [] and out_match = ref [] in
        for i = Array.length keys - 1 downto 0 do
          List.iter
            (fun build_row ->
              out_idx := i :: !out_idx;
              out_match := build_row :: !out_match)
            (Hashtbl.find_all hts.(pr.P.pr_ht) keys.(i))
        done;
        let idx = Array.of_list !out_idx and matches = Array.of_list !out_match in
        ts :=
          {
            n = Array.length idx;
            rows =
              (pr.P.pr_tref, matches)
              :: List.map (fun (t, ids) -> (t, Array.map (fun i -> ids.(i)) idx)) !ts.rows;
          };
        List.iter (fun f -> ts := filter db !ts ~acols:None f) pr.P.pr_filters)
      p.P.p_probes;
    (* sink *)
    match p.P.p_sink with
    | P.S_build { ht; key; _ } ->
      let keys = eval_vec db !ts ~acols:None key in
      let ids = List.assoc tref !ts.rows in
      Array.iteri (fun i k -> Hashtbl.add hts.(ht) k ids.(i)) keys
    | P.S_agg { keys; accs; _ } ->
      let kvecs = List.map (eval_vec db !ts ~acols:None) keys in
      let avecs =
        List.map
          (fun (_, arg) -> Option.map (eval_vec db !ts ~acols:None) arg)
          accs
      in
      for i = 0 to !ts.n - 1 do
        let key =
          Common.group_key_of keys (fun k -> (List.nth kvecs k).(i))
        in
        let row =
          match Hashtbl.find_opt groups key with
          | Some r -> r
          | None ->
            let r =
              Array.of_list (List.map (fun (kind, _) -> Common.acc_init kind) accs)
            in
            Hashtbl.replace groups key r;
            r
        in
        List.iteri
          (fun j (kind, _) ->
            let v = match List.nth avecs j with Some vec -> vec.(i) | None -> 0L in
            row.(j) <- Common.acc_combine kind row.(j) v)
          accs
      done
    | P.S_out { exprs; _ } ->
      let vecs = List.map (eval_vec db !ts ~acols:None) exprs in
      for i = !ts.n - 1 downto 0 do
        out_rows := Array.of_list (List.map (fun v -> v.(i)) vecs) :: !out_rows
      done
  in
  let run_agg_scan (p : P.pipeline) =
    let key_arity = match plan.P.pl_agg with Some c -> c.P.agg_key_arity | None -> 0 in
    let n_accs =
      match plan.P.pl_agg with Some c -> List.length c.P.agg_accs | None -> 0
    in
    (* materialise groups as columns *)
    let n = Hashtbl.length groups in
    let cols = Array.init (key_arity + n_accs) (fun _ -> Array.make (Stdlib.max 1 n) 0L) in
    let i = ref 0 in
    Hashtbl.iter
      (fun (k1, k2) accs ->
        if key_arity >= 1 then cols.(0).(!i) <- k1;
        if key_arity >= 2 then cols.(1).(!i) <- k2;
        Array.iteri (fun j v -> cols.(key_arity + j).(!i) <- v) accs;
        incr i)
      groups;
    let ts = ref { n; rows = [ (-1, Array.init n Fun.id) ] } in
    List.iter (fun f -> ts := filter db !ts ~acols:(Some cols) f) p.P.p_scan_filters;
    match p.P.p_sink with
    | P.S_out { exprs; _ } ->
      let vecs = List.map (eval_vec db !ts ~acols:(Some cols)) exprs in
      for i = !ts.n - 1 downto 0 do
        out_rows := Array.of_list (List.map (fun v -> v.(i)) vecs) :: !out_rows
      done
    | _ -> invalid_arg "Vectorized: aggregate scan must output"
  in
  List.iter
    (fun (p : P.pipeline) ->
      match p.P.p_source with
      | P.Src_scan _ -> run_scan_pipeline p
      | P.Src_agg_scan _ -> run_agg_scan p)
    plan.P.pl_pipelines;
  Common.finish_rows db (List.rev !out_rows)

(** Column-at-a-time execution (the "MonetDB" comparison point).

    Every operator materialises full intermediate vectors: filters
    produce selection vectors, joins produce aligned row-id vectors
    for each table instance, expressions evaluate into value vectors.
    No per-tuple interpretation overhead, but full materialisation
    between operators. Single-threaded. *)

val execute :
  Aeq_storage.Catalog.t -> Aeq_plan.Physical.t -> int64 array list
(** @raise Aeq_ir.Trap.Error on arithmetic errors. *)

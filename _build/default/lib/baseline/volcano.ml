module P = Aeq_plan.Physical
module Sc = Aeq_plan.Scalar
module Table = Aeq_storage.Table

let execute catalog (plan : P.t) =
  let db = { Common.catalog; plan } in
  (* current tuple: row index per table instance, -1 = unavailable *)
  let n_trefs = Array.length plan.P.pl_trefs in
  let cursor = Array.make n_trefs (-1) in
  let acol_env = ref (fun (_ : int) : int64 -> invalid_arg "no aggregate context") in
  let eval s =
    Aeq_plan.Scalar_eval.eval
      ~col:(fun ~tref ~col ->
        let row = cursor.(tref) in
        if row < 0 then invalid_arg "Volcano: column of unavailable table";
        Common.cell db ~tref ~col ~row)
      ~acol:(fun idx -> !acol_env idx)
      ~pred:(fun id code -> Common.pred db id code)
      s
  in
  let eval_bool s = not (Int64.equal (eval s) 0L) in
  (* hash tables: key -> build row indices *)
  let hts = Array.map (fun _ -> Hashtbl.create 1024) plan.P.pl_hts in
  (* aggregation state *)
  let groups : (int64 * int64, int64 array) Hashtbl.t = Hashtbl.create 256 in
  let out_rows = ref [] in
  let run_pipeline (p : P.pipeline) =
    let scan_rows, set_cursor =
      match p.P.p_source with
      | P.Src_scan { tref } ->
        ( (fst plan.P.pl_trefs.(tref)).Table.n_rows,
          fun row -> cursor.(tref) <- row )
      | P.Src_agg_scan _ -> invalid_arg "handled separately"
    in
    let rec probe_loop probes k =
      match probes with
      | [] -> k ()
      | (pr : P.probe) :: rest ->
        let key = eval pr.P.pr_key in
        let matches = Hashtbl.find_all hts.(pr.P.pr_ht) key in
        List.iter
          (fun build_row ->
            cursor.(pr.P.pr_tref) <- build_row;
            if List.for_all eval_bool pr.P.pr_filters then probe_loop rest k;
            cursor.(pr.P.pr_tref) <- -1)
          matches
    in
    let sink () =
      match p.P.p_sink with
      | P.S_build { ht; key; _ } ->
        (* payload is implicit: we keep the build row index *)
        let src_tref =
          match p.P.p_source with P.Src_scan { tref } -> tref | _ -> assert false
        in
        Hashtbl.add hts.(ht) (eval key) cursor.(src_tref)
      | P.S_agg { keys; accs; _ } ->
        let k = Common.group_key_of keys (fun i -> eval (List.nth keys i)) in
        let row =
          match Hashtbl.find_opt groups k with
          | Some r -> r
          | None ->
            let r = Array.of_list (List.map (fun (kind, _) -> Common.acc_init kind) accs) in
            Hashtbl.replace groups k r;
            r
        in
        List.iteri
          (fun i (kind, arg) ->
            let v = match arg with Some s -> eval s | None -> 0L in
            row.(i) <- Common.acc_combine kind row.(i) v)
          accs
      | P.S_out { exprs; _ } ->
        out_rows := Array.of_list (List.map eval exprs) :: !out_rows
    in
    for row = 0 to scan_rows - 1 do
      set_cursor row;
      if List.for_all eval_bool p.P.p_scan_filters then probe_loop p.P.p_probes sink
    done;
    set_cursor (-1)
  in
  let run_agg_scan (p : P.pipeline) =
    let key_arity =
      match plan.P.pl_agg with Some c -> c.P.agg_key_arity | None -> 0
    in
    Hashtbl.iter
      (fun (k1, k2) accs ->
        (acol_env :=
           fun idx ->
             if idx = 0 && key_arity >= 1 then k1
             else if idx = 1 && key_arity >= 2 then k2
             else accs.(idx - key_arity));
        if List.for_all eval_bool p.P.p_scan_filters then begin
          match p.P.p_sink with
          | P.S_out { exprs; _ } ->
            out_rows := Array.of_list (List.map eval exprs) :: !out_rows
          | _ -> invalid_arg "Volcano: aggregate scan must output"
        end)
      groups
  in
  List.iter
    (fun (p : P.pipeline) ->
      match p.P.p_source with
      | P.Src_scan _ -> run_pipeline p
      | P.Src_agg_scan _ -> run_agg_scan p)
    plan.P.pl_pipelines;
  Common.finish_rows db (List.rev !out_rows)

lib/baseline/common.ml: Aeq_ir Aeq_plan Aeq_rt Aeq_storage Array Int64 List String

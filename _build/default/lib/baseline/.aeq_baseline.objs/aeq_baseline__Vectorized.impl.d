lib/baseline/vectorized.ml: Aeq_ir Aeq_plan Aeq_rt Aeq_sql Aeq_storage Array Common Fun Hashtbl Int64 List Option Stdlib

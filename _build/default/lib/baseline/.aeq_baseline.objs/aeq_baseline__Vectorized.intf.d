lib/baseline/vectorized.mli: Aeq_plan Aeq_storage

lib/baseline/volcano.ml: Aeq_plan Aeq_storage Array Common Hashtbl Int64 List

lib/baseline/common.mli: Aeq_plan Aeq_rt Aeq_storage

lib/baseline/volcano.mli: Aeq_plan Aeq_storage

(** Shared helpers for the baseline engines: both interpret the same
    physical plan and the same {!Aeq_plan.Scalar_eval} semantics as
    the compiling engine, so result comparison is exact. *)

type db = {
  catalog : Aeq_storage.Catalog.t;
  plan : Aeq_plan.Physical.t;
}

val cell : db -> tref:int -> col:int -> row:int -> int64

val pred : db -> int -> int64 -> bool

val finish_rows :
  db -> int64 array list -> int64 array list
(** Apply ORDER BY and LIMIT exactly like the main driver. *)

val group_key_of : Aeq_plan.Scalar.t list -> (int -> int64) -> int64 * int64
(** Evaluate up to two group keys with the given scalar evaluator
    applied per key index. *)

val acc_init : Aeq_rt.Agg.acc_kind -> int64

val acc_combine : Aeq_rt.Agg.acc_kind -> int64 -> int64 -> int64
(** Fold one value into an accumulator (Sum adds with overflow check,
    Count increments, Min/Max compare). *)

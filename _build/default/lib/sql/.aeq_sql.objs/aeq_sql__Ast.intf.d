lib/sql/ast.mli:

lib/sql/lexer.mli:

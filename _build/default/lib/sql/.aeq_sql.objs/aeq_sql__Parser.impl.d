lib/sql/parser.ml: Ast Format Int64 Lexer List String

lib/sql/ast.ml: Int64 List Printf String

lib/sql/lexer.ml: Aeq_storage Buffer Int64 List Printf String

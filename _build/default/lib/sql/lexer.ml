type token =
  | Ident of string
  | Int_tok of int64
  | Dec_tok of int64
  | Str_tok of string
  | Sym of string
  | Eof

exception Lex_error of string

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (Ident (String.lowercase_ascii (String.sub src start (!i - start))))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        let int_part = Int64.of_string (String.sub src start (!i - start)) in
        incr i;
        let fstart = !i in
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        let frac = String.sub src fstart (!i - fstart) in
        let scale = Aeq_storage.Dtype.scale in
        (* keep the first two fractional digits (fixed-point scale 100) *)
        let frac2 =
          if String.length frac >= 2 then String.sub frac 0 2
          else frac ^ String.make (2 - String.length frac) '0'
        in
        push
          (Dec_tok
             (Int64.add
                (Int64.mul int_part (Int64.of_int scale))
                (Int64.of_string frac2)))
      end
      else push (Int_tok (Int64.of_string (String.sub src start (!i - start))))
    end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        if !i >= n then raise (Lex_error "unterminated string literal")
        else if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            incr i;
            fin := true
          end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      push (Str_tok (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" ->
        push (Sym (if two = "!=" then "<>" else two));
        i := !i + 2
      | _ -> (
        match c with
        | '(' | ')' | ',' | '+' | '-' | '*' | '/' | '=' | '<' | '>' | '.' | ';' ->
          push (Sym (String.make 1 c));
          incr i
        | _ -> raise (Lex_error (Printf.sprintf "unexpected character %c at %d" c !i)))
    end
  done;
  List.rev (Eof :: !toks)

(** Hand-written SQL lexer. *)

type token =
  | Ident of string  (** lower-cased *)
  | Int_tok of int64
  | Dec_tok of int64  (** scaled fixed-point *)
  | Str_tok of string
  | Sym of string  (** punctuation / operators *)
  | Eof

exception Lex_error of string

val tokenize : string -> token list

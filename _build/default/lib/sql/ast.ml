type binop = Add | Sub | Mul | Div | Eq | Ne | Lt | Le | Gt | Ge | And | Or

type agg_fn = Sum | Min | Max | Count | Avg

type expr =
  | Col of string option * string
  | Lit_int of int64
  | Lit_dec of int64
  | Lit_str of string
  | Lit_date of int
  | Bin of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Between of expr * expr * expr
  | In_list of expr * expr list
  | Like of expr * string
  | Extract_year of expr
  | Case of (expr * expr) list * expr option
  | Agg of agg_fn * expr option

type select_item = { expr : expr; alias : string option }

type order_item = { key : expr; desc : bool }

type query = {
  select : select_item list;
  from : (string * string option) list;
  join_on : expr list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  limit : int option;
}

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "and"
  | Or -> "or"

let agg_name = function Sum -> "sum" | Min -> "min" | Max -> "max" | Count -> "count" | Avg -> "avg"

let rec expr_to_string = function
  | Col (None, c) -> c
  | Col (Some t, c) -> t ^ "." ^ c
  | Lit_int n -> Int64.to_string n
  | Lit_dec n -> Printf.sprintf "%Ld.%02Ld" (Int64.div n 100L) (Int64.rem (Int64.abs n) 100L)
  | Lit_str s -> "'" ^ s ^ "'"
  | Lit_date d -> Printf.sprintf "date(%d)" d
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_name op) (expr_to_string b)
  | Neg e -> "-" ^ expr_to_string e
  | Not e -> "not " ^ expr_to_string e
  | Between (e, lo, hi) ->
    Printf.sprintf "(%s between %s and %s)" (expr_to_string e) (expr_to_string lo)
      (expr_to_string hi)
  | In_list (e, xs) ->
    Printf.sprintf "(%s in (%s))" (expr_to_string e)
      (String.concat ", " (List.map expr_to_string xs))
  | Like (e, p) -> Printf.sprintf "(%s like '%s')" (expr_to_string e) p
  | Extract_year e -> Printf.sprintf "extract(year from %s)" (expr_to_string e)
  | Case (whens, els) ->
    let w =
      List.map
        (fun (c, v) -> Printf.sprintf "when %s then %s" (expr_to_string c) (expr_to_string v))
        whens
    in
    let e = match els with Some e -> " else " ^ expr_to_string e | None -> "" in
    "case " ^ String.concat " " w ^ e ^ " end"
  | Agg (fn, Some e) -> Printf.sprintf "%s(%s)" (agg_name fn) (expr_to_string e)
  | Agg (fn, None) -> agg_name fn ^ "(*)"

exception Parse_error of string

type state = { mutable toks : Lexer.token list }

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let peek st = match st.toks with [] -> Lexer.Eof | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect_sym st s =
  match peek st with
  | Lexer.Sym x when String.equal x s -> advance st
  | t ->
    fail "expected '%s', found %s" s
      (match t with
      | Lexer.Ident i -> i
      | Lexer.Sym x -> x
      | Lexer.Int_tok n -> Int64.to_string n
      | Lexer.Dec_tok _ -> "<decimal>"
      | Lexer.Str_tok s -> "'" ^ s ^ "'"
      | Lexer.Eof -> "<eof>")

let accept_sym st s =
  match peek st with
  | Lexer.Sym x when String.equal x s ->
    advance st;
    true
  | _ -> false

let accept_kw st kw =
  match peek st with
  | Lexer.Ident i when String.equal i kw ->
    advance st;
    true
  | _ -> false

let expect_kw st kw = if not (accept_kw st kw) then fail "expected keyword %s" kw

let expect_ident st =
  match peek st with
  | Lexer.Ident i ->
    advance st;
    i
  | _ -> fail "expected identifier"

let parse_date_literal s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
    try
      let y = int_of_string y and m = int_of_string m and d = int_of_string d in
      (* days-from-civil (Hinnant) *)
      let y' = if m <= 2 then y - 1 else y in
      let era = (if y' >= 0 then y' else y' - 399) / 400 in
      let yoe = y' - (era * 400) in
      let mp = if m > 2 then m - 3 else m + 9 in
      let doy = (((153 * mp) + 2) / 5) + d - 1 in
      let doe = (365 * yoe) + (yoe / 4) - (yoe / 100) + doy in
      (era * 146097) + doe - 719468
    with _ -> fail "malformed date literal '%s'" s)
  | _ -> fail "malformed date literal '%s'" s

let is_agg = function
  | "sum" | "min" | "max" | "count" | "avg" -> true
  | _ -> false

let agg_of = function
  | "sum" -> Ast.Sum
  | "min" -> Ast.Min
  | "max" -> Ast.Max
  | "count" -> Ast.Count
  | "avg" -> Ast.Avg
  | a -> fail "unknown aggregate %s" a

(* expression precedence:
   or < and < not < comparison/between/in/like < additive < multiplicative < unary *)
let rec parse_or st =
  let lhs = parse_and st in
  if accept_kw st "or" then Ast.Bin (Ast.Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "and" then Ast.Bin (Ast.And, lhs, parse_and st) else lhs

and parse_not st = if accept_kw st "not" then Ast.Not (parse_not st) else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  match peek st with
  | Lexer.Sym "=" ->
    advance st;
    Ast.Bin (Ast.Eq, lhs, parse_add st)
  | Lexer.Sym "<>" ->
    advance st;
    Ast.Bin (Ast.Ne, lhs, parse_add st)
  | Lexer.Sym "<" ->
    advance st;
    Ast.Bin (Ast.Lt, lhs, parse_add st)
  | Lexer.Sym "<=" ->
    advance st;
    Ast.Bin (Ast.Le, lhs, parse_add st)
  | Lexer.Sym ">" ->
    advance st;
    Ast.Bin (Ast.Gt, lhs, parse_add st)
  | Lexer.Sym ">=" ->
    advance st;
    Ast.Bin (Ast.Ge, lhs, parse_add st)
  | Lexer.Ident "between" ->
    advance st;
    let lo = parse_add st in
    expect_kw st "and";
    let hi = parse_add st in
    Ast.Between (lhs, lo, hi)
  | Lexer.Ident "in" ->
    advance st;
    expect_sym st "(";
    let rec items acc =
      let e = parse_or st in
      if accept_sym st "," then items (e :: acc) else List.rev (e :: acc)
    in
    let xs = items [] in
    expect_sym st ")";
    Ast.In_list (lhs, xs)
  | Lexer.Ident "like" -> (
    advance st;
    match peek st with
    | Lexer.Str_tok p ->
      advance st;
      Ast.Like (lhs, p)
    | _ -> fail "LIKE expects a string literal")
  | Lexer.Ident "not" -> (
    advance st;
    match peek st with
    | Lexer.Ident "like" -> (
      advance st;
      match peek st with
      | Lexer.Str_tok p ->
        advance st;
        Ast.Not (Ast.Like (lhs, p))
      | _ -> fail "LIKE expects a string literal")
    | Lexer.Ident "in" ->
      advance st;
      expect_sym st "(";
      let rec items acc =
        let e = parse_or st in
        if accept_sym st "," then items (e :: acc) else List.rev (e :: acc)
      in
      let xs = items [] in
      expect_sym st ")";
      Ast.Not (Ast.In_list (lhs, xs))
    | Lexer.Ident "between" ->
      advance st;
      let lo = parse_add st in
      expect_kw st "and";
      let hi = parse_add st in
      Ast.Not (Ast.Between (lhs, lo, hi))
    | _ -> fail "expected LIKE/IN/BETWEEN after NOT"
  )
  | _ -> lhs

and parse_add st =
  let rec go lhs =
    match peek st with
    | Lexer.Sym "+" ->
      advance st;
      go (Ast.Bin (Ast.Add, lhs, parse_mul st))
    | Lexer.Sym "-" ->
      advance st;
      go (Ast.Bin (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Lexer.Sym "*" ->
      advance st;
      go (Ast.Bin (Ast.Mul, lhs, parse_unary st))
    | Lexer.Sym "/" ->
      advance st;
      go (Ast.Bin (Ast.Div, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  if accept_sym st "-" then Ast.Neg (parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.Int_tok n ->
    advance st;
    Ast.Lit_int n
  | Lexer.Dec_tok n ->
    advance st;
    Ast.Lit_dec n
  | Lexer.Str_tok s ->
    advance st;
    Ast.Lit_str s
  | Lexer.Sym "(" ->
    advance st;
    let e = parse_or st in
    expect_sym st ")";
    e
  | Lexer.Ident "date" -> (
    advance st;
    match peek st with
    | Lexer.Str_tok s ->
      advance st;
      Ast.Lit_date (parse_date_literal s)
    | _ -> fail "DATE expects a string literal")
  | Lexer.Ident "extract" ->
    advance st;
    expect_sym st "(";
    expect_kw st "year";
    expect_kw st "from";
    let e = parse_or st in
    expect_sym st ")";
    Ast.Extract_year e
  | Lexer.Ident "case" ->
    advance st;
    let rec whens acc =
      if accept_kw st "when" then begin
        let c = parse_or st in
        expect_kw st "then";
        let v = parse_or st in
        whens ((c, v) :: acc)
      end
      else List.rev acc
    in
    let ws = whens [] in
    if ws = [] then fail "CASE requires at least one WHEN";
    let els = if accept_kw st "else" then Some (parse_or st) else None in
    expect_kw st "end";
    Ast.Case (ws, els)
  | Lexer.Ident name when is_agg name && (match st.toks with _ :: Lexer.Sym "(" :: _ -> true | _ -> false)
    ->
    advance st;
    expect_sym st "(";
    let arg =
      if accept_sym st "*" then None
      else begin
        ignore (accept_kw st "distinct");
        Some (parse_or st)
      end
    in
    expect_sym st ")";
    Ast.Agg (agg_of name, arg)
  | Lexer.Ident name -> (
    advance st;
    if accept_sym st "." then begin
      let col = expect_ident st in
      Ast.Col (Some name, col)
    end
    else Ast.Col (None, name))
  | t ->
    fail "unexpected token in expression: %s"
      (match t with Lexer.Sym s -> s | Lexer.Eof -> "<eof>" | _ -> "<token>")

let parse_select_item st =
  let e = parse_or st in
  let alias =
    if accept_kw st "as" then Some (expect_ident st)
    else
      match peek st with
      | Lexer.Ident i
        when not
               (List.mem i
                  [ "from"; "where"; "group"; "having"; "order"; "limit"; "join"; "on" ]) ->
        advance st;
        Some i
      | _ -> None
  in
  { Ast.expr = e; alias }

let parse_table_ref st =
  let name = expect_ident st in
  let alias =
    match peek st with
    | Lexer.Ident i
      when not
             (List.mem i
                [ "where"; "group"; "having"; "order"; "limit"; "join"; "inner"; "on"; "left" ])
      ->
      advance st;
      Some i
    | _ -> (if accept_kw st "as" then Some (expect_ident st) else None)
  in
  (name, alias)

let parse_query st =
  expect_kw st "select";
  let rec items acc =
    let it = parse_select_item st in
    if accept_sym st "," then items (it :: acc) else List.rev (it :: acc)
  in
  let select = items [] in
  expect_kw st "from";
  let from = ref [ parse_table_ref st ] in
  let join_on = ref [] in
  let rec more () =
    if accept_sym st "," then begin
      from := parse_table_ref st :: !from;
      more ()
    end
    else if accept_kw st "join" || (accept_kw st "inner" && accept_kw st "join") then begin
      from := parse_table_ref st :: !from;
      expect_kw st "on";
      join_on := parse_or st :: !join_on;
      more ()
    end
  in
  more ();
  let where = if accept_kw st "where" then Some (parse_or st) else None in
  let group_by =
    if accept_kw st "group" then begin
      expect_kw st "by";
      let rec keys acc =
        let e = parse_or st in
        if accept_sym st "," then keys (e :: acc) else List.rev (e :: acc)
      in
      keys []
    end
    else []
  in
  let having = if accept_kw st "having" then Some (parse_or st) else None in
  let order_by =
    if accept_kw st "order" then begin
      expect_kw st "by";
      let rec keys acc =
        let e = parse_or st in
        let desc = if accept_kw st "desc" then true else (ignore (accept_kw st "asc"); false) in
        if accept_sym st "," then keys ({ Ast.key = e; desc } :: acc)
        else List.rev ({ Ast.key = e; desc } :: acc)
      in
      keys []
    end
    else []
  in
  let limit =
    if accept_kw st "limit" then begin
      match peek st with
      | Lexer.Int_tok n ->
        advance st;
        Some (Int64.to_int n)
      | _ -> fail "LIMIT expects an integer"
    end
    else None
  in
  ignore (accept_sym st ";");
  (match peek st with Lexer.Eof -> () | _ -> fail "trailing tokens after query");
  {
    Ast.select;
    from = List.rev !from;
    join_on = List.rev !join_on;
    where;
    group_by;
    having;
    order_by;
    limit;
  }

let parse src =
  let st = { toks = Lexer.tokenize src } in
  parse_query st

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_or st in
  (match peek st with Lexer.Eof -> () | _ -> fail "trailing tokens after expression");
  e

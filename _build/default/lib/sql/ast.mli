(** Abstract syntax of the supported SQL subset:

    SELECT expr [AS alias], ...
    FROM tbl [alias] (, tbl [alias] | JOIN tbl [alias] ON cond)*
    [WHERE cond] [GROUP BY exprs] [HAVING cond]
    [ORDER BY expr [DESC], ...] [LIMIT n]

    with arithmetic, comparisons, AND/OR/NOT, BETWEEN, IN lists, LIKE
    (evaluated over the dictionary at plan time), EXTRACT(YEAR FROM e),
    simple CASE WHEN, and the aggregates SUM/MIN/MAX/COUNT/AVG. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type agg_fn = Sum | Min | Max | Count | Avg

type expr =
  | Col of string option * string  (** qualifier, column *)
  | Lit_int of int64
  | Lit_dec of int64  (** scaled by {!Aeq_storage.Dtype.scale} *)
  | Lit_str of string
  | Lit_date of int  (** days since 1970-01-01 *)
  | Bin of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Between of expr * expr * expr
  | In_list of expr * expr list
  | Like of expr * string
  | Extract_year of expr
  | Case of (expr * expr) list * expr option
  | Agg of agg_fn * expr option  (** [None] means COUNT over all rows *)

type select_item = { expr : expr; alias : string option }

type order_item = { key : expr; desc : bool }

type query = {
  select : select_item list;
  from : (string * string option) list;
  join_on : expr list;  (** ON conditions, folded into WHERE conjuncts *)
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  limit : int option;
}

val expr_to_string : expr -> string
(** Debug printer. *)

val binop_name : binop -> string

val agg_name : agg_fn -> string

(** Recursive-descent parser for the SQL subset (see {!Ast}). *)

exception Parse_error of string

val parse : string -> Ast.query
(** @raise Parse_error / Lexer.Lex_error on malformed input. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (tests). *)

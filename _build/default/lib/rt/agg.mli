(** Grouped aggregation tables.

    Each worker thread owns a private group table ("thread-local
    aggregation"), so generated code updates accumulators with plain
    loads and stores — no atomics in the per-tuple path. After the
    pipeline barrier the driver merges the thread tables and
    materialises the groups into arena columns, which the next
    pipeline scans like a table.

    Accumulator rows live in the arena; the group map (composite key →
    row pointer) is an OCaml hash table per thread. *)

type acc_kind = Sum | Count | Min | Max
(** AVG is compiled as Sum + Count with a final division in the
    aggregate-scan pipeline. *)

type t

val create :
  Aeq_mem.Arena.t -> n_threads:int -> key_arity:int -> accs:acc_kind list -> t
(** [key_arity] is 0, 1 or 2 (0 = global aggregate: a single group). *)

val get_group :
  t -> tid:int -> allocator:Aeq_mem.Arena.allocator -> k1:int64 -> k2:int64 -> Aeq_mem.Arena.ptr
(** Accumulator row for the group, created (with per-kind initial
    values) on first touch. Accumulator [i] is at byte offset [8*i]. *)

val merge : t -> unit
(** Fold every thread's groups into thread 0 (per-kind combination).
    Call after the pipeline barrier, single-threaded. *)

val materialize : t -> allocator:Aeq_mem.Arena.allocator -> int * Aeq_mem.Arena.ptr array
(** After [merge]: [(n_groups, columns)] where columns are
    [key1; key2; acc0; acc1; ...] (keys only up to [key_arity]),
    each a dense arena column of [n_groups] i64 values. *)

val n_groups : t -> int
(** Total groups in thread 0 (valid after [merge]). *)

(** Global string dictionary.

    Strings are dictionary-encoded at load time: each distinct string
    gets a dense int64 code, and string-typed columns store codes.
    Equality on strings becomes integer equality in generated code;
    LIKE and other string predicates are evaluated once over the
    dictionary at plan time, yielding a code bitmap the generated code
    consults through the [dict_match] runtime helper. *)

type t

val create : unit -> t

val encode : t -> string -> int64
(** Intern; stable across calls. *)

val decode : t -> int64 -> string

val find : t -> string -> int64 option
(** Code for an existing string; [None] if never interned. *)

val size : t -> int

val codes_matching : t -> (string -> bool) -> Bitmap.t
(** Evaluate a predicate over every interned string (plan-time). *)

module A = Aeq_mem.Arena

type per_thread = { mutable rev_rows : A.ptr list; mutable n : int }

type t = { row_bytes : int; threads : per_thread array }

let create _arena ~n_threads ~row_bytes =
  {
    row_bytes;
    threads = Array.init (Stdlib.max 1 n_threads) (fun _ -> { rev_rows = []; n = 0 });
  }

let row t ~tid ~allocator =
  let p = A.alloc allocator t.row_bytes in
  let pt = t.threads.(tid) in
  pt.rev_rows <- p :: pt.rev_rows;
  pt.n <- pt.n + 1;
  p

let rows t =
  let total = Array.fold_left (fun acc pt -> acc + pt.n) 0 t.threads in
  let out = Array.make total A.null in
  let i = ref 0 in
  Array.iter
    (fun pt ->
      List.iter
        (fun p ->
          out.(!i) <- p;
          incr i)
        (List.rev pt.rev_rows))
    t.threads;
  out

let count t = Array.fold_left (fun acc pt -> acc + pt.n) 0 t.threads

let row_bytes t = t.row_bytes

(** Per-thread output row buffers.

    A pipeline that produces query results reserves one fixed-width
    row per result tuple ([row] helper) and fills it with stores. Rows
    live in the arena; the driver collects them after the pipeline
    completes, then sorts / limits / decodes on the OCaml side. *)

type t

val create : Aeq_mem.Arena.t -> n_threads:int -> row_bytes:int -> t

val row : t -> tid:int -> allocator:Aeq_mem.Arena.allocator -> Aeq_mem.Arena.ptr
(** Reserve one zeroed row. *)

val rows : t -> Aeq_mem.Arena.ptr array
(** All reserved rows (across threads, unordered). *)

val count : t -> int

val row_bytes : t -> int

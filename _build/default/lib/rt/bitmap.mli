(** Dense bitmaps over dictionary codes, used for plan-time-evaluated
    string predicates (LIKE, IN over strings). *)

type t

val create : int -> t

val set : t -> int -> unit

val get : t -> int -> bool

val cardinality : t -> int

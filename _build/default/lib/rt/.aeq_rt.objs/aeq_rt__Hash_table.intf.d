lib/rt/hash_table.mli: Aeq_mem

lib/rt/bitmap.mli:

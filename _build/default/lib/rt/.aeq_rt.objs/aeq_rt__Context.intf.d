lib/rt/context.mli: Aeq_mem Agg Bitmap Dict Hash_table Output

lib/rt/symbols.ml: Aeq_mem Aeq_vm Agg Array Bitmap Context Hash_table Int64 Output

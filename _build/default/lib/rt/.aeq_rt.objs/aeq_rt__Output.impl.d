lib/rt/output.ml: Aeq_mem Array List Stdlib

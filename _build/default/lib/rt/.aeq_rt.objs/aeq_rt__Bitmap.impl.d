lib/rt/bitmap.ml: Bytes Char

lib/rt/agg.ml: Aeq_mem Array Hashtbl Int64 Stdlib

lib/rt/dict.ml: Array Bitmap Hashtbl Int64

lib/rt/output.mli: Aeq_mem

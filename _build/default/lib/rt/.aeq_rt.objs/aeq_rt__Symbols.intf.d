lib/rt/symbols.mli: Aeq_vm Context

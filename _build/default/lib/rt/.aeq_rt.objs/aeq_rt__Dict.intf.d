lib/rt/dict.mli: Bitmap

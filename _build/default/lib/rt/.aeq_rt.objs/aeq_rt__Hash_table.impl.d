lib/rt/hash_table.ml: Aeq_mem Array Atomic Int64 Mutex Stdlib

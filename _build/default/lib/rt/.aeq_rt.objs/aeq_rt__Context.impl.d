lib/rt/context.ml: Aeq_mem Agg Array Bitmap Dict Hash_table Output Stdlib

lib/rt/agg.mli: Aeq_mem

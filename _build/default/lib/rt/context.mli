(** Per-query runtime context: the arena, one allocator per worker
    thread, and registries of runtime objects (join tables,
    aggregation tables, output buffers, dictionary-predicate bitmaps).
    Generated code refers to objects by small integer ids; the
    {!Symbols} resolver closes over the context to dispatch them. *)

type t = {
  arena : Aeq_mem.Arena.t;
  dict : Dict.t;
  n_threads : int;
  allocators : Aeq_mem.Arena.allocator array;
  mutable hts : Hash_table.t array;
  mutable aggs : Agg.t array;
  mutable outs : Output.t array;
  mutable preds : Bitmap.t array;
}

val create : arena:Aeq_mem.Arena.t -> dict:Dict.t -> n_threads:int -> t

val register_ht : t -> Hash_table.t -> int

val register_agg : t -> Agg.t -> int

val register_out : t -> Output.t -> int

val register_pred : t -> Bitmap.t -> int

val allocator : t -> tid:int -> Aeq_mem.Arena.allocator

(** The runtime symbol table: the "exported C++ functions" generated
    code may call (paper Section IV-E). All three execution modes
    dispatch through the same closures, so helper behaviour is
    identical by construction.

    Exposed helpers (all [int64] calling convention):
    - [ht_insert  (ht, tid, key) -> payload_ptr]
    - [ht_lookup  (ht, key) -> entry_ptr | 0]
    - [ht_next    (ht, entry) -> entry_ptr | 0]
    - [agg_get    (agg, tid, k1, k2) -> acc_row_ptr]
    - [out_row    (out, tid) -> row_ptr]
    - [dict_match (pred, code) -> 0|1]
    - [year_of    (days) -> year] (dates are days since 1970-01-01) *)

val resolver : Context.t -> Aeq_vm.Rt_fn.resolver

val year_of_days : int64 -> int64
(** Exposed for the baseline engines so all engines share date
    semantics. *)

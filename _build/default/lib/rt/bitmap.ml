type t = { bits : Bytes.t; n : int }

let create n = { bits = Bytes.make ((n / 8) + 1) '\000'; n }

let set t i =
  if i >= 0 && i < t.n then begin
    let b = Char.code (Bytes.get t.bits (i / 8)) in
    Bytes.set t.bits (i / 8) (Char.chr (b lor (1 lsl (i mod 8))))
  end

let get t i =
  i >= 0 && i < t.n && Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let cardinality t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if get t i then incr c
  done;
  !c

type t = {
  by_string : (string, int64) Hashtbl.t;
  mutable by_code : string array;
  mutable n : int;
}

let create () = { by_string = Hashtbl.create 1024; by_code = Array.make 1024 ""; n = 0 }

let encode t s =
  match Hashtbl.find_opt t.by_string s with
  | Some c -> c
  | None ->
    let c = t.n in
    if c >= Array.length t.by_code then begin
      let bigger = Array.make (2 * Array.length t.by_code) "" in
      Array.blit t.by_code 0 bigger 0 t.n;
      t.by_code <- bigger
    end;
    t.by_code.(c) <- s;
    t.n <- c + 1;
    let code = Int64.of_int c in
    Hashtbl.replace t.by_string s code;
    code

let decode t c =
  let i = Int64.to_int c in
  if i < 0 || i >= t.n then invalid_arg "Dict.decode: unknown code";
  t.by_code.(i)

let find t s = Hashtbl.find_opt t.by_string s

let size t = t.n

let codes_matching t pred =
  let bm = Bitmap.create t.n in
  for c = 0 to t.n - 1 do
    if pred t.by_code.(c) then Bitmap.set bm c
  done;
  bm

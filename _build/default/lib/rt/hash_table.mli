(** Chaining hash-join table over arena memory.

    Entries live in the arena ([next][key][payload...]), so generated
    code in any execution mode reads them with plain loads; bucket
    heads and stripe locks live on the OCaml side. Inserts during the
    build pipeline are thread-safe (striped locks); probes happen
    after the pipeline barrier and are lock-free. *)

type t

val create :
  Aeq_mem.Arena.t -> expected_entries:int -> payload_bytes:int -> t

val payload_offset : int
(** Byte offset of the payload within an entry (16). *)

val insert : t -> allocator:Aeq_mem.Arena.allocator -> key:int64 -> Aeq_mem.Arena.ptr
(** Reserve an entry for [key] and return a pointer to its payload
    region (zeroed). The caller fills the payload with stores; nothing
    reads it until the build pipeline completes. *)

val lookup : t -> key:int64 -> Aeq_mem.Arena.ptr
(** First entry whose key equals [key], or [Arena.null]. The result
    points at the entry; payload at [+ payload_offset]. *)

val next_match : t -> entry:Aeq_mem.Arena.ptr -> Aeq_mem.Arena.ptr
(** Next entry in the same bucket with the same key, or null. *)

val size : t -> int
(** Number of entries inserted. *)

module A = Aeq_mem.Arena

type acc_kind = Sum | Count | Min | Max

type t = {
  arena : A.t;
  key_arity : int;
  accs : acc_kind array;
  row_bytes : int;
  tables : (Int64.t * Int64.t, A.ptr) Hashtbl.t array; (* per thread *)
}

let init_value = function
  | Sum | Count -> 0L
  | Min -> Int64.max_int
  | Max -> Int64.min_int

let create arena ~n_threads ~key_arity ~accs =
  let accs = Array.of_list accs in
  {
    arena;
    key_arity;
    accs;
    row_bytes = 8 * Array.length accs;
    tables = Array.init (Stdlib.max 1 n_threads) (fun _ -> Hashtbl.create 64);
  }

let new_row t ~allocator =
  let row = A.alloc allocator t.row_bytes in
  Array.iteri (fun i k -> A.set_i64 t.arena (row + (8 * i)) (init_value k)) t.accs;
  row

let get_group t ~tid ~allocator ~k1 ~k2 =
  let tbl = t.tables.(tid) in
  match Hashtbl.find_opt tbl (k1, k2) with
  | Some row -> row
  | None ->
    let row = new_row t ~allocator in
    Hashtbl.replace tbl (k1, k2) row;
    row

let combine t ~into ~from =
  Array.iteri
    (fun i kind ->
      let o = 8 * i in
      let a = A.get_i64 t.arena (into + o) and b = A.get_i64 t.arena (from + o) in
      let r =
        match kind with
        | Sum | Count -> Int64.add a b
        | Min -> if Int64.compare b a < 0 then b else a
        | Max -> if Int64.compare b a > 0 then b else a
      in
      A.set_i64 t.arena (into + o) r)
    t.accs

let merge t =
  let main = t.tables.(0) in
  for tid = 1 to Array.length t.tables - 1 do
    Hashtbl.iter
      (fun key row ->
        match Hashtbl.find_opt main key with
        | Some existing -> combine t ~into:existing ~from:row
        | None -> Hashtbl.replace main key row)
      t.tables.(tid);
    Hashtbl.reset t.tables.(tid)
  done

let n_groups t = Hashtbl.length t.tables.(0)

let materialize t ~allocator =
  let main = t.tables.(0) in
  let n = Hashtbl.length main in
  let n_cols = t.key_arity + Array.length t.accs in
  let cols = Array.init n_cols (fun _ -> A.alloc allocator (8 * Stdlib.max 1 n)) in
  let idx = ref 0 in
  Hashtbl.iter
    (fun (k1, k2) row ->
      let i = !idx in
      incr idx;
      if t.key_arity >= 1 then A.set_i64 t.arena (cols.(0) + (8 * i)) k1;
      if t.key_arity >= 2 then A.set_i64 t.arena (cols.(1) + (8 * i)) k2;
      Array.iteri
        (fun j _ ->
          A.set_i64 t.arena
            (cols.(t.key_arity + j) + (8 * i))
            (A.get_i64 t.arena (row + (8 * j))))
        t.accs)
    main;
  (n, cols)

(* Structural keys: the instruction with its destination masked to 0,
   commutative operands normalised. Instructions are pure data, so
   polymorphic hashing/equality is exact. *)
let key_of (i : Instr.t) : Instr.t option =
  match i with
  | Instr.Load _ | Instr.Store _ | Instr.Call _ -> None
  | Instr.Binop ({ op; a; b; _ } as r) ->
    let a, b =
      match op with
      | Instr.Add | Instr.Mul | Instr.And | Instr.Or | Instr.Xor ->
        if compare a b <= 0 then (a, b) else (b, a)
      | Instr.Sub | Instr.Div | Instr.Rem | Instr.Shl | Instr.LShr | Instr.AShr -> (a, b)
    in
    Some (Instr.Binop { r with dst = 0; a; b })
  | Instr.OvfFlag _ | Instr.Fbinop _ | Instr.Icmp _ | Instr.Fcmp _ | Instr.Select _
  | Instr.Cast _ | Instr.Gep _ ->
    Some (Instr.with_dst i 0)

let run (f : Func.t) =
  let dom = Dom.compute f in
  let subst = Subst.create f in
  let table : (Instr.t, int) Hashtbl.t = Hashtbl.create 256 in
  let changed = ref false in
  (* DFS over the dominator tree; entries added in a block are removed
     when backtracking (scoped table). *)
  let rec visit blk_id =
    let b = Func.block f blk_id in
    let added = ref [] in
    let kept =
      Array.to_list b.Block.instrs
      |> List.filter_map (fun i ->
             let i =
               Instr.with_operands i (List.map (Subst.resolve subst) (Instr.operands i))
             in
             match (key_of i, Instr.dst_of i) with
             | Some k, Some d -> (
               match Hashtbl.find_opt table k with
               | Some prior ->
                 Subst.set subst d (Instr.Vreg prior);
                 changed := true;
                 None
               | None ->
                 Hashtbl.add table k d;
                 added := k :: !added;
                 Some i)
             | _ -> Some i)
    in
    b.Block.instrs <- Array.of_list kept;
    List.iter visit (Dom.children dom blk_id);
    List.iter (Hashtbl.remove table) !added
  in
  visit 0;
  Subst.apply subst f;
  !changed

(** Within-block list scheduler.

    Reorders each block's instructions by critical-path height over
    the local dependence graph (def-use edges; memory operations and
    calls keep their relative order via chain edges). Semantics are
    preserved exactly; the point in this reproduction is fidelity of
    the *compile-time* profile: list scheduling's ready-list scan is
    O(n²) in block size, the super-linear behaviour that makes
    optimized compilation of machine-generated mega-queries explode
    (paper Fig. 15) while bytecode translation stays linear.

    Returns [true] if any instruction moved. *)

val run : Func.t -> bool

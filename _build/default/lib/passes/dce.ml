let run (f : Func.t) =
  let changed = ref false in
  let round () =
    let uses = Array.make f.Func.n_values 0 in
    let count = function
      | Instr.Vreg v -> uses.(v) <- uses.(v) + 1
      | Instr.Imm _ | Instr.Fimm _ -> ()
    in
    Array.iter
      (fun (b : Block.t) ->
        Array.iter
          (fun (p : Instr.phi) -> Array.iter (fun (_, v) -> count v) p.incoming)
          b.Block.phis;
        Array.iter (fun i -> List.iter count (Instr.operands i)) b.Block.instrs;
        match b.Block.term with
        | Instr.CondBr { cond; _ } -> count cond
        | Instr.Ret (Some v) -> count v
        | Instr.Br _ | Instr.Ret None | Instr.Abort _ -> ())
      f.Func.blocks;
    let removed = ref false in
    Array.iter
      (fun (b : Block.t) ->
        let keep_instr i =
          Instr.has_side_effect i
          || match Instr.dst_of i with Some d -> uses.(d) > 0 | None -> true
        in
        let n0 = Array.length b.Block.instrs in
        b.Block.instrs <- Array.of_list (List.filter keep_instr (Array.to_list b.Block.instrs));
        if Array.length b.Block.instrs <> n0 then removed := true;
        (* a φ used only by itself is dead too *)
        let keep_phi (p : Instr.phi) =
          let self_uses =
            Array.to_list p.incoming
            |> List.filter (fun (_, v) -> Instr.value_equal v (Instr.Vreg p.dst))
            |> List.length
          in
          uses.(p.dst) > self_uses
        in
        let p0 = Array.length b.Block.phis in
        b.Block.phis <- Array.of_list (List.filter keep_phi (Array.to_list b.Block.phis));
        if Array.length b.Block.phis <> p0 then removed := true)
      f.Func.blocks;
    !removed
  in
  while round () do
    changed := true
  done;
  !changed

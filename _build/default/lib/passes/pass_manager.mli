(** Optimization pipeline driver, mirroring the paper's two compiler
    configurations: unoptimized compilation runs no IR passes at all
    (LLVM fast-isel style), optimized compilation runs the hand-picked
    pass list HyPer uses — "peephole optimizations, reassociate
    expressions, common subexpression elimination, control flow graph
    simplification, aggressive dead code elimination" — here:
    constant folding + identities, dominator-scoped CSE, CFG
    simplification and DCE iterated to a fixpoint, followed by the
    (quadratic) block scheduler. *)

type level = O0 | O2

val optimize : ?check:bool -> level -> Func.t -> unit
(** Run the pipeline in place. The function is re-laid-out
    ({!Layout.normalize}) afterwards. [check] (default false) verifies
    well-formedness after every pass — used in tests. *)

(** Constant folding and algebraic simplification.

    Folds pure instructions whose operands are all literals, plus a
    handful of safe identities (x+0, x*1, x*0, x&0, x|0, select of
    equal arms, casts of literals). Never folds operations that could
    trap at runtime (division by a zero literal, checked arithmetic) —
    those keep their runtime behaviour.

    Returns [true] if anything changed. *)

val run : Func.t -> bool

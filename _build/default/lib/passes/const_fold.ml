module S = Semantics

let width_of = function
  | Types.I1 | Types.I8 -> 8
  | Types.I16 -> 16
  | Types.I32 -> 32
  | Types.I64 | Types.Ptr -> 64
  | Types.F64 -> 64

let fold_binop (op : Instr.binop) ty a b =
  let w = width_of ty in
  match op with
  | Instr.Add -> Some (S.add ~width:w a b)
  | Sub -> Some (S.sub ~width:w a b)
  | Mul -> Some (S.mul ~width:w a b)
  | Div -> if Int64.equal b 0L then None else Some (S.div ~width:w a b)
  | Rem -> if Int64.equal b 0L then None else Some (S.rem ~width:w a b)
  | And -> Some (Int64.logand a b)
  | Or -> Some (Int64.logor a b)
  | Xor -> Some (Int64.logxor a b)
  | Shl -> Some (S.shl ~width:w a b)
  | LShr -> Some (S.lshr ~width:w a b)
  | AShr -> Some (Int64.shift_right a (Int64.to_int b land 63))

let fold_icmp (op : Instr.icmp) ty a b =
  let w = width_of ty in
  let r =
    match op with
    | Instr.Eq -> Int64.equal a b
    | Ne -> not (Int64.equal a b)
    | Slt -> Int64.compare a b < 0
    | Sle -> Int64.compare a b <= 0
    | Sgt -> Int64.compare a b > 0
    | Sge -> Int64.compare a b >= 0
    | Ult -> S.ucmp ~width:w a b < 0
    | Ule -> S.ucmp ~width:w a b <= 0
    | Ugt -> S.ucmp ~width:w a b > 0
    | Uge -> S.ucmp ~width:w a b >= 0
  in
  S.bool_i64 r

let lit = function
  | Instr.Imm n -> Some n
  | Instr.Fimm x -> Some (Int64.bits_of_float x)
  | Instr.Vreg _ -> None

(* Algebraic identities that are safe for all operand values. *)
let identity (op : Instr.binop) a b =
  match (op, a, b) with
  | Instr.Add, v, Instr.Imm 0L | Instr.Add, Instr.Imm 0L, v -> Some v
  | Instr.Sub, v, Instr.Imm 0L -> Some v
  | Instr.Mul, _, Instr.Imm 0L | Instr.Mul, Instr.Imm 0L, _ -> Some (Instr.Imm 0L)
  | Instr.Mul, v, Instr.Imm 1L | Instr.Mul, Instr.Imm 1L, v -> Some v
  | Instr.And, _, Instr.Imm 0L | Instr.And, Instr.Imm 0L, _ -> Some (Instr.Imm 0L)
  | Instr.Or, v, Instr.Imm 0L | Instr.Or, Instr.Imm 0L, v -> Some v
  | Instr.Xor, v, Instr.Imm 0L | Instr.Xor, Instr.Imm 0L, v -> Some v
  | (Instr.Shl | Instr.LShr | Instr.AShr), v, Instr.Imm 0L -> Some v
  | _ -> None

let run (f : Func.t) =
  let subst = Subst.create f in
  let changed = ref false in
  let fold_instr (i : Instr.t) =
    match i with
    | Instr.Binop { op; ty; dst; a; b } -> (
      match (lit a, lit b) with
      | Some x, Some y -> (
        match fold_binop op ty x y with
        | Some r ->
          Subst.set subst dst (Instr.Imm r);
          None
        | None -> Some i)
      | _ -> (
        match identity op a b with
        | Some v ->
          Subst.set subst dst v;
          None
        | None -> Some i))
    | Instr.Icmp { op; ty; dst; a; b } -> (
      match (lit a, lit b) with
      | Some x, Some y ->
        Subst.set subst dst (Instr.Imm (fold_icmp op ty x y));
        None
      | _ -> if Instr.value_equal a b then begin
          (* x==x is true, x<x is false, for non-float types *)
          match op with
          | Instr.Eq | Instr.Sle | Instr.Sge | Instr.Ule | Instr.Uge ->
            Subst.set subst dst (Instr.Imm 1L);
            None
          | Instr.Ne | Instr.Slt | Instr.Sgt | Instr.Ult | Instr.Ugt ->
            Subst.set subst dst (Instr.Imm 0L);
            None
        end
        else Some i)
    | Instr.Select { dst; cond; a; b; _ } -> (
      match lit cond with
      | Some c ->
        Subst.set subst dst (if Int64.equal c 0L then b else a);
        None
      | None ->
        if Instr.value_equal a b then begin
          Subst.set subst dst a;
          None
        end
        else Some i)
    | Instr.Cast { op; from_ty; to_ty; dst; v } -> (
      match lit v with
      | Some x ->
        let r =
          match op with
          | Instr.Bitcast -> Some x
          | Instr.SiToFp -> Some (Int64.bits_of_float (Int64.to_float x))
          | Instr.FpToSi -> Some (Int64.of_float (Int64.float_of_bits x))
          | Instr.Zext -> (
            match from_ty with
            | Types.I1 | Types.I64 | Types.Ptr -> Some x
            | Types.I8 -> Some (Int64.logand x 0xFFL)
            | Types.I16 -> Some (Int64.logand x 0xFFFFL)
            | Types.I32 -> Some (Int64.logand x 0xFFFFFFFFL)
            | Types.F64 -> None)
          | Instr.Sext -> (
            match from_ty with Types.I1 -> Some (Int64.neg x) | _ -> Some x)
          | Instr.Trunc -> (
            match to_ty with
            | Types.I1 -> Some (Int64.logand x 1L)
            | Types.I8 -> Some (S.sext8 x)
            | Types.I16 -> Some (S.sext16 x)
            | Types.I32 -> Some (S.sext32 x)
            | Types.I64 | Types.Ptr -> Some x
            | Types.F64 -> None)
        in
        (match r with
        | Some r ->
          Subst.set subst dst (Instr.Imm r);
          None
        | None -> Some i)
      | None -> Some i)
    | Instr.Gep { dst; base; index; scale; offset } -> (
      match (lit base, lit index) with
      | Some b, Some ix ->
        Subst.set subst dst
          (Instr.Imm (Int64.add b (Int64.of_int ((Int64.to_int ix * scale) + offset))));
        None
      | _ -> Some i)
    | Instr.Fbinop { op; dst; a; b } -> (
      match (lit a, lit b) with
      | Some x, Some y ->
        let fx = Int64.float_of_bits x and fy = Int64.float_of_bits y in
        let r =
          match op with
          | Instr.FAdd -> fx +. fy
          | FSub -> fx -. fy
          | FMul -> fx *. fy
          | FDiv -> fx /. fy
        in
        Subst.set subst dst (Instr.Fimm r);
        None
      | _ -> Some i)
    | Instr.Fcmp { op; dst; a; b } -> (
      match (lit a, lit b) with
      | Some x, Some y ->
        let fx = Int64.float_of_bits x and fy = Int64.float_of_bits y in
        let r =
          match op with
          | Instr.FEq -> fx = fy
          | FNe -> fx <> fy
          | FLt -> fx < fy
          | FLe -> fx <= fy
          | FGt -> fx > fy
          | FGe -> fx >= fy
        in
        Subst.set subst dst (Instr.Imm (S.bool_i64 r));
        None
      | _ -> Some i)
    | Instr.OvfFlag _ | Instr.Load _ | Instr.Store _ | Instr.Call _ -> Some i
  in
  Array.iter
    (fun (b : Block.t) ->
      let kept =
        Array.to_list b.Block.instrs
        |> List.filter_map (fun i ->
               (* resolve operands through pending substitutions first so
                  chains fold in one round *)
               let i = Instr.with_operands i (List.map (Subst.resolve subst) (Instr.operands i)) in
               match fold_instr i with
               | Some i -> Some i
               | None ->
                 changed := true;
                 None)
      in
      b.Block.instrs <- Array.of_list kept)
    f.Func.blocks;
  Subst.apply subst f;
  (* φ nodes whose incomings are all the same operand collapse. *)
  let phi_subst = Subst.create f in
  Array.iter
    (fun (b : Block.t) ->
      let kept =
        Array.to_list b.Block.phis
        |> List.filter_map (fun (p : Instr.phi) ->
               match Array.to_list p.incoming with
               | (_, v0) :: rest
                 when List.for_all (fun (_, v) -> Instr.value_equal v v0) rest
                      && not
                           (List.exists
                              (fun (_, v) -> Instr.value_equal v (Instr.Vreg p.dst))
                              ((0, v0) :: rest))
                      && not (Instr.value_equal v0 (Instr.Vreg p.dst)) ->
                 Subst.set phi_subst p.dst v0;
                 changed := true;
                 None
               | _ -> Some p)
      in
      b.Block.phis <- Array.of_list kept)
    f.Func.blocks;
  Subst.apply phi_subst f;
  !changed

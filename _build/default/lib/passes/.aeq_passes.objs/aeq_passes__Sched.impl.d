lib/passes/sched.ml: Array Block Func Hashtbl Instr List

lib/passes/cse.mli: Func

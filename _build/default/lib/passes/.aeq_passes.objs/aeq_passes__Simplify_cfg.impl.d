lib/passes/simplify_cfg.ml: Array Block Cfg Func Instr Int64 List

lib/passes/cse.ml: Array Block Dom Func Hashtbl Instr List Subst

lib/passes/simplify_cfg.mli: Func

lib/passes/subst.ml: Array Block Func Instr List

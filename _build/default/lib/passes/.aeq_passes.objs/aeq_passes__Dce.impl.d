lib/passes/dce.ml: Array Block Func Instr List

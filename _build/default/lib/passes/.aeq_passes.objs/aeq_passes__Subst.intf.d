lib/passes/subst.mli: Func Instr

lib/passes/const_fold.ml: Array Block Func Instr Int64 List Semantics Subst Types

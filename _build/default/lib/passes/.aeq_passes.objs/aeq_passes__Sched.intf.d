lib/passes/sched.mli: Func

lib/passes/const_fold.mli: Func

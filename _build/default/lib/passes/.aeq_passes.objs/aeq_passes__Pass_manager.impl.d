lib/passes/pass_manager.ml: Const_fold Cse Dce Func Layout Printf Sched Simplify_cfg Verify

lib/passes/pass_manager.mli: Func

lib/passes/dce.mli: Func

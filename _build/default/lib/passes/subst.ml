type t = { map : Instr.value option array; mutable count : int }

let create (f : Func.t) = { map = Array.make f.Func.n_values None; count = 0 }

let set t v repl =
  t.map.(v) <- Some repl;
  t.count <- t.count + 1

let is_empty t = t.count = 0

let rec resolve t = function
  | Instr.Vreg v as orig -> (
    match t.map.(v) with Some r when r <> orig -> resolve t r | _ -> orig)
  | other -> other

let apply t (f : Func.t) =
  if not (is_empty t) then
    Array.iter
      (fun (b : Block.t) ->
        b.Block.phis <-
          Array.map
            (fun (p : Instr.phi) ->
              { p with Instr.incoming = Array.map (fun (pred, v) -> (pred, resolve t v)) p.incoming })
            b.Block.phis;
        b.Block.instrs <-
          Array.map
            (fun i -> Instr.with_operands i (List.map (resolve t) (Instr.operands i)))
            b.Block.instrs;
        b.Block.term <-
          (match b.Block.term with
          | Instr.CondBr { cond; if_true; if_false } ->
            Instr.CondBr { cond = resolve t cond; if_true; if_false }
          | Instr.Ret (Some v) -> Instr.Ret (Some (resolve t v))
          | (Instr.Br _ | Instr.Ret None | Instr.Abort _) as term -> term))
      f.Func.blocks

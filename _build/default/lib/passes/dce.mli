(** Dead-code elimination: removes pure instructions and φ nodes whose
    results are never used, iterating until a fixpoint so chains of
    dead values disappear. Stores, calls and terminators are roots.

    Returns [true] if anything was removed. *)

val run : Func.t -> bool

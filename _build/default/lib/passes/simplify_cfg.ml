(* Drop the φ incoming edge from [pred] in block [target]. *)
let drop_phi_edge (f : Func.t) ~target ~pred =
  let b = Func.block f target in
  b.Block.phis <-
    Array.map
      (fun (p : Instr.phi) ->
        {
          p with
          Instr.incoming = Array.of_list (Array.to_list p.incoming |> List.filter (fun (q, _) -> q <> pred));
        })
      b.Block.phis

let run (f : Func.t) =
  let changed = ref false in
  (* 1. constant conditions *)
  Array.iter
    (fun (b : Block.t) ->
      match b.Block.term with
      | Instr.CondBr { cond = Instr.Imm c; if_true; if_false } ->
        let taken, dropped = if Int64.equal c 0L then (if_false, if_true) else (if_true, if_false) in
        if dropped <> taken then drop_phi_edge f ~target:dropped ~pred:b.Block.id;
        b.Block.term <- Instr.Br taken;
        changed := true
      | Instr.CondBr { cond = _; if_true; if_false } when if_true = if_false ->
        let has_phis = Array.length (Func.block f if_true).Block.phis > 0 in
        if not has_phis then begin
          b.Block.term <- Instr.Br if_true;
          changed := true
        end
      | _ -> ())
    f.Func.blocks;
  (* 2. merge straight-line pairs *)
  let preds = Cfg.predecessors f in
  Array.iter
    (fun (b : Block.t) ->
      match b.Block.term with
      | Instr.Br t
        when t <> b.Block.id
             && (match preds.(t) with [ p ] -> p = b.Block.id | _ -> false)
             && Array.length (Func.block f t).Block.phis = 0 ->
        let tb = Func.block f t in
        b.Block.instrs <- Array.append b.Block.instrs tb.Block.instrs;
        b.Block.term <- tb.Block.term;
        (* successor φs referring to [t] must now refer to [b] *)
        List.iter
          (fun s ->
            let sb = Func.block f s in
            sb.Block.phis <-
              Array.map
                (fun (p : Instr.phi) ->
                  {
                    p with
                    Instr.incoming =
                      Array.map
                        (fun (q, v) -> ((if q = t then b.Block.id else q), v))
                        p.incoming;
                  })
                sb.Block.phis)
          (Block.successors tb);
        (* orphan [t] so layout prunes it *)
        tb.Block.instrs <- [||];
        tb.Block.term <- Instr.Ret None;
        changed := true
      | _ -> ())
    f.Func.blocks;
  !changed

(** Value substitution support shared by the rewriting passes.

    A pass records replacements (value id → replacement operand);
    [apply] rewrites every operand in the function through the map,
    following chains. *)

type t

val create : Func.t -> t

val set : t -> int -> Instr.value -> unit
(** [set t v repl] replaces every use of [Vreg v] by [repl]. *)

val is_empty : t -> bool

val resolve : t -> Instr.value -> Instr.value
(** Follow replacement chains to a fixpoint. *)

val apply : t -> Func.t -> unit
(** Rewrite all operands (instructions, φs, terminators). Does not
    delete the now-dead defining instructions — run DCE after. *)

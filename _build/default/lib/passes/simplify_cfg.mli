(** Control-flow simplification:
    - conditional branches on literal conditions become plain branches;
    - conditional branches with identical targets become plain branches
      (only when the target has no φs, which would need edge identity);
    - a block with a single successor that has a single predecessor and
      no φs is merged with it.

    Unreachable blocks left behind are pruned by the caller's
    {!Layout.normalize}. Returns [true] if anything changed. *)

val run : Func.t -> bool

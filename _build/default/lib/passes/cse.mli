(** Dominator-scoped common-subexpression elimination.

    Walks the dominator tree with a scoped hash table keyed on
    (opcode, type, operands); a pure instruction whose key was already
    defined in a dominating position is replaced by the earlier value.
    Loads, stores and calls are never touched (no memory dependence
    analysis); overflow flags and GEPs are pure and participate.

    Returns [true] if anything changed. *)

val run : Func.t -> bool

(* Instructions that must keep their relative order: memory accesses,
   calls, and operations that can trap (a division moved across a
   store would change which effects precede the trap). *)
let is_ordered = function
  | Instr.Load _ | Instr.Store _ | Instr.Call _ -> true
  | Instr.Binop { op = Instr.Div | Instr.Rem; _ } -> true
  | _ -> false

let run (f : Func.t) =
  let changed = ref false in
  Array.iter
    (fun (b : Block.t) ->
      let instrs = b.Block.instrs in
      let n = Array.length instrs in
      if n > 1 then begin
        (* def position within the block *)
        let def_at = Hashtbl.create (2 * n) in
        Array.iteri
          (fun i ins ->
            match Instr.dst_of ins with Some d -> Hashtbl.replace def_at d i | None -> ())
          instrs;
        (* deps.(j) = indices that must precede j *)
        let deps = Array.make n [] in
        let last_mem = ref (-1) in
        for j = 0 to n - 1 do
          List.iter
            (fun v ->
              match v with
              | Instr.Vreg r -> (
                match Hashtbl.find_opt def_at r with
                | Some i when i < j -> deps.(j) <- i :: deps.(j)
                | _ -> ())
              | Instr.Imm _ | Instr.Fimm _ -> ())
            (Instr.operands instrs.(j));
          if is_ordered instrs.(j) then begin
            if !last_mem >= 0 then deps.(j) <- !last_mem :: deps.(j);
            last_mem := j
          end
        done;
        (* critical-path height *)
        let height = Array.make n 1 in
        let succs = Array.make n [] in
        for j = 0 to n - 1 do
          List.iter (fun i -> succs.(i) <- j :: succs.(i)) deps.(j)
        done;
        for j = n - 1 downto 0 do
          List.iter (fun s -> if height.(s) + 1 > height.(j) then height.(j) <- height.(s) + 1) succs.(j)
        done;
        (* O(n^2) list scheduling: prefer a ready consumer of the
           value just defined (keeps producer/consumer pairs adjacent,
           which both helps register pressure and preserves the
           bytecode translator's fusion opportunities), else the
           greatest critical-path height (ties: original order). *)
        let indeg = Array.map List.length deps in
        let scheduled = Array.make n false in
        let order = Array.make n 0 in
        let last = ref (-1) in
        for slot = 0 to n - 1 do
          let best = ref (-1) in
          let chained = ref (-1) in
          for j = 0 to n - 1 do
            if (not scheduled.(j)) && indeg.(j) = 0 then begin
              if !best < 0 || height.(j) > height.(!best) then best := j;
              if !last >= 0 && !chained < 0 && List.mem !last deps.(j) then chained := j
            end
          done;
          let pick = if !chained >= 0 then !chained else !best in
          assert (pick >= 0);
          scheduled.(pick) <- true;
          order.(slot) <- pick;
          last := pick;
          List.iter (fun s -> indeg.(s) <- indeg.(s) - 1) succs.(pick)
        done;
        let any_moved = ref false in
        Array.iteri (fun slot j -> if slot <> j then any_moved := true) order;
        if !any_moved then begin
          b.Block.instrs <- Array.map (fun j -> instrs.(j)) order;
          changed := true
        end
      end)
    f.Func.blocks;
  !changed

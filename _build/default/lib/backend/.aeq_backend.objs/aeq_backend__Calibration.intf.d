lib/backend/calibration.mli:

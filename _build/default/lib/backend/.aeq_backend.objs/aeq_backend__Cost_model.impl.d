lib/backend/cost_model.ml:

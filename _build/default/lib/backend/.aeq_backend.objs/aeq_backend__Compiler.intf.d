lib/backend/compiler.mli: Aeq_mem Aeq_vm Closure_compile Cost_model Func

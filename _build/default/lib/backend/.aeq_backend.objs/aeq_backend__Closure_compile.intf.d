lib/backend/closure_compile.mli: Aeq_mem Aeq_vm Bytes

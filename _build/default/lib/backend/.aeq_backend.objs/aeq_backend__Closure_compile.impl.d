lib/backend/closure_compile.ml: Aeq_mem Aeq_vm Array Bytes Int64 List Semantics Stdlib Trap

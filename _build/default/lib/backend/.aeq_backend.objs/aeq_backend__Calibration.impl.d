lib/backend/calibration.ml: Aeq_mem Aeq_util Aeq_vm Builder Closure_compile Compiler Cost_model Instr Int64 Layout Stdlib Types

lib/backend/compiler.ml: Aeq_passes Aeq_util Aeq_vm Closure_compile Cost_model Func Stdlib

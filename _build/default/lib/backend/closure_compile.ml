module A = Aeq_mem.Arena
module S = Semantics
module B = Aeq_vm.Bytecode
module Op = Aeq_vm.Opcode
module Rt_fn = Aeq_vm.Rt_fn

type t = {
  prog : B.t;
  chunks : (Bytes.t -> int) array;
  result_off : int;
  total_reg_bytes : int;
}

(* Compiled code accesses its register file without bounds checks —
   the analogue of machine code addressing its stack frame directly.
   Offsets are produced by the register allocator and validated by the
   sized scratch buffer, never by user input. *)
external unsafe_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"

external unsafe_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let[@inline] g regs off = unsafe_get64 regs off

let[@inline] s regs off v = unsafe_set64 regs off v

let[@inline] gf regs off = Int64.float_of_bits (unsafe_get64 regs off)

let[@inline] sf regs off v = unsafe_set64 regs off (Int64.bits_of_float v)

let[@inline] gp regs off = Int64.to_int (unsafe_get64 regs off)

(* Non-control instructions compile to [Bytes.t -> unit] with every
   operand offset and literal captured. *)
let step_of mem (i : B.insn) : Bytes.t -> unit =
  let a = i.B.a and b = i.B.b and c = i.B.c and d = i.B.d and e = i.B.e in
  match i.B.op with
  | Op.Mov -> fun regs -> s regs a (g regs b)
  | Op.Add_i8 -> fun regs -> s regs a (S.add ~width:8 (g regs b) (g regs c))
  | Op.Add_i16 -> fun regs -> s regs a (S.add ~width:16 (g regs b) (g regs c))
  | Op.Add_i32 -> fun regs -> s regs a (S.add ~width:32 (g regs b) (g regs c))
  | Op.Add_i64 -> fun regs -> s regs a (Int64.add (g regs b) (g regs c))
  | Op.Sub_i8 -> fun regs -> s regs a (S.sub ~width:8 (g regs b) (g regs c))
  | Op.Sub_i16 -> fun regs -> s regs a (S.sub ~width:16 (g regs b) (g regs c))
  | Op.Sub_i32 -> fun regs -> s regs a (S.sub ~width:32 (g regs b) (g regs c))
  | Op.Sub_i64 -> fun regs -> s regs a (Int64.sub (g regs b) (g regs c))
  | Op.Mul_i8 -> fun regs -> s regs a (S.mul ~width:8 (g regs b) (g regs c))
  | Op.Mul_i16 -> fun regs -> s regs a (S.mul ~width:16 (g regs b) (g regs c))
  | Op.Mul_i32 -> fun regs -> s regs a (S.mul ~width:32 (g regs b) (g regs c))
  | Op.Mul_i64 -> fun regs -> s regs a (Int64.mul (g regs b) (g regs c))
  | Op.Div_i8 -> fun regs -> s regs a (S.div ~width:8 (g regs b) (g regs c))
  | Op.Div_i16 -> fun regs -> s regs a (S.div ~width:16 (g regs b) (g regs c))
  | Op.Div_i32 -> fun regs -> s regs a (S.div ~width:32 (g regs b) (g regs c))
  | Op.Div_i64 -> fun regs -> s regs a (S.div ~width:64 (g regs b) (g regs c))
  | Op.Rem_i8 -> fun regs -> s regs a (S.rem ~width:8 (g regs b) (g regs c))
  | Op.Rem_i16 -> fun regs -> s regs a (S.rem ~width:16 (g regs b) (g regs c))
  | Op.Rem_i32 -> fun regs -> s regs a (S.rem ~width:32 (g regs b) (g regs c))
  | Op.Rem_i64 -> fun regs -> s regs a (S.rem ~width:64 (g regs b) (g regs c))
  | Op.And64 -> fun regs -> s regs a (Int64.logand (g regs b) (g regs c))
  | Op.Or64 -> fun regs -> s regs a (Int64.logor (g regs b) (g regs c))
  | Op.Xor64 -> fun regs -> s regs a (Int64.logxor (g regs b) (g regs c))
  | Op.Shl_i8 -> fun regs -> s regs a (S.shl ~width:8 (g regs b) (g regs c))
  | Op.Shl_i16 -> fun regs -> s regs a (S.shl ~width:16 (g regs b) (g regs c))
  | Op.Shl_i32 -> fun regs -> s regs a (S.shl ~width:32 (g regs b) (g regs c))
  | Op.Shl_i64 -> fun regs -> s regs a (S.shl ~width:64 (g regs b) (g regs c))
  | Op.LShr_i8 -> fun regs -> s regs a (S.lshr ~width:8 (g regs b) (g regs c))
  | Op.LShr_i16 -> fun regs -> s regs a (S.lshr ~width:16 (g regs b) (g regs c))
  | Op.LShr_i32 -> fun regs -> s regs a (S.lshr ~width:32 (g regs b) (g regs c))
  | Op.LShr_i64 -> fun regs -> s regs a (S.lshr ~width:64 (g regs b) (g regs c))
  | Op.AShr64 ->
    fun regs -> s regs a (Int64.shift_right (g regs b) (Int64.to_int (g regs c) land 63))
  | Op.AddChk_i32 -> fun regs -> s regs a (S.add_chk ~width:32 (g regs b) (g regs c))
  | Op.AddChk_i64 -> fun regs -> s regs a (S.add_chk ~width:64 (g regs b) (g regs c))
  | Op.SubChk_i32 -> fun regs -> s regs a (S.sub_chk ~width:32 (g regs b) (g regs c))
  | Op.SubChk_i64 -> fun regs -> s regs a (S.sub_chk ~width:64 (g regs b) (g regs c))
  | Op.MulChk_i32 -> fun regs -> s regs a (S.mul_chk ~width:32 (g regs b) (g regs c))
  | Op.MulChk_i64 -> fun regs -> s regs a (S.mul_chk ~width:64 (g regs b) (g regs c))
  | Op.OvfAdd_i32 ->
    fun regs -> s regs a (S.bool_i64 (S.add_ovf ~width:32 (g regs b) (g regs c)))
  | Op.OvfAdd_i64 ->
    fun regs -> s regs a (S.bool_i64 (S.add_ovf ~width:64 (g regs b) (g regs c)))
  | Op.OvfSub_i32 ->
    fun regs -> s regs a (S.bool_i64 (S.sub_ovf ~width:32 (g regs b) (g regs c)))
  | Op.OvfSub_i64 ->
    fun regs -> s regs a (S.bool_i64 (S.sub_ovf ~width:64 (g regs b) (g regs c)))
  | Op.OvfMul_i32 ->
    fun regs -> s regs a (S.bool_i64 (S.mul_ovf ~width:32 (g regs b) (g regs c)))
  | Op.OvfMul_i64 ->
    fun regs -> s regs a (S.bool_i64 (S.mul_ovf ~width:64 (g regs b) (g regs c)))
  | Op.FAdd -> fun regs -> sf regs a (gf regs b +. gf regs c)
  | Op.FSub -> fun regs -> sf regs a (gf regs b -. gf regs c)
  | Op.FMul -> fun regs -> sf regs a (gf regs b *. gf regs c)
  | Op.FDiv -> fun regs -> sf regs a (gf regs b /. gf regs c)
  | Op.CmpEq -> fun regs -> s regs a (S.bool_i64 (Int64.equal (g regs b) (g regs c)))
  | Op.CmpNe -> fun regs -> s regs a (S.bool_i64 (not (Int64.equal (g regs b) (g regs c))))
  | Op.CmpSlt -> fun regs -> s regs a (S.bool_i64 (Int64.compare (g regs b) (g regs c) < 0))
  | Op.CmpSle -> fun regs -> s regs a (S.bool_i64 (Int64.compare (g regs b) (g regs c) <= 0))
  | Op.CmpSgt -> fun regs -> s regs a (S.bool_i64 (Int64.compare (g regs b) (g regs c) > 0))
  | Op.CmpSge -> fun regs -> s regs a (S.bool_i64 (Int64.compare (g regs b) (g regs c) >= 0))
  | Op.CmpUlt_i8 -> fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:8 (g regs b) (g regs c) < 0))
  | Op.CmpUlt_i16 ->
    fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:16 (g regs b) (g regs c) < 0))
  | Op.CmpUlt_i32 ->
    fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:32 (g regs b) (g regs c) < 0))
  | Op.CmpUlt_i64 ->
    fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:64 (g regs b) (g regs c) < 0))
  | Op.CmpUle_i8 -> fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:8 (g regs b) (g regs c) <= 0))
  | Op.CmpUle_i16 ->
    fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:16 (g regs b) (g regs c) <= 0))
  | Op.CmpUle_i32 ->
    fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:32 (g regs b) (g regs c) <= 0))
  | Op.CmpUle_i64 ->
    fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:64 (g regs b) (g regs c) <= 0))
  | Op.CmpUgt_i8 -> fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:8 (g regs b) (g regs c) > 0))
  | Op.CmpUgt_i16 ->
    fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:16 (g regs b) (g regs c) > 0))
  | Op.CmpUgt_i32 ->
    fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:32 (g regs b) (g regs c) > 0))
  | Op.CmpUgt_i64 ->
    fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:64 (g regs b) (g regs c) > 0))
  | Op.CmpUge_i8 -> fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:8 (g regs b) (g regs c) >= 0))
  | Op.CmpUge_i16 ->
    fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:16 (g regs b) (g regs c) >= 0))
  | Op.CmpUge_i32 ->
    fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:32 (g regs b) (g regs c) >= 0))
  | Op.CmpUge_i64 ->
    fun regs -> s regs a (S.bool_i64 (S.ucmp ~width:64 (g regs b) (g regs c) >= 0))
  | Op.FCmpEq -> fun regs -> s regs a (S.bool_i64 (gf regs b = gf regs c))
  | Op.FCmpNe -> fun regs -> s regs a (S.bool_i64 (gf regs b <> gf regs c))
  | Op.FCmpLt -> fun regs -> s regs a (S.bool_i64 (gf regs b < gf regs c))
  | Op.FCmpLe -> fun regs -> s regs a (S.bool_i64 (gf regs b <= gf regs c))
  | Op.FCmpGt -> fun regs -> s regs a (S.bool_i64 (gf regs b > gf regs c))
  | Op.FCmpGe -> fun regs -> s regs a (S.bool_i64 (gf regs b >= gf regs c))
  | Op.SelectOp ->
    fun regs -> s regs a (if Int64.equal (g regs b) 0L then g regs d else g regs c)
  | Op.Zext8 -> fun regs -> s regs a (Int64.logand (g regs b) 0xFFL)
  | Op.Zext16 -> fun regs -> s regs a (Int64.logand (g regs b) 0xFFFFL)
  | Op.Zext32 -> fun regs -> s regs a (Int64.logand (g regs b) 0xFFFFFFFFL)
  | Op.Trunc1 -> fun regs -> s regs a (Int64.logand (g regs b) 1L)
  | Op.Trunc8 -> fun regs -> s regs a (S.sext8 (g regs b))
  | Op.Trunc16 -> fun regs -> s regs a (S.sext16 (g regs b))
  | Op.Trunc32 -> fun regs -> s regs a (S.sext32 (g regs b))
  | Op.SiToFp -> fun regs -> sf regs a (Int64.to_float (g regs b))
  | Op.FpToSi -> fun regs -> s regs a (Int64.of_float (gf regs b))
  | Op.Load8 -> fun regs -> s regs a (S.sext8 (Int64.of_int (A.get_i8 mem (gp regs b))))
  | Op.Load16 -> fun regs -> s regs a (S.sext16 (Int64.of_int (A.get_i16 mem (gp regs b))))
  | Op.Load32 -> fun regs -> s regs a (Int64.of_int32 (A.get_i32 mem (gp regs b)))
  | Op.Load64 -> fun regs -> s regs a (A.get_i64 mem (gp regs b))
  | Op.Store8 -> fun regs -> A.set_i8 mem (gp regs b) (Int64.to_int (g regs a) land 0xff)
  | Op.Store16 -> fun regs -> A.set_i16 mem (gp regs b) (Int64.to_int (g regs a) land 0xffff)
  | Op.Store32 -> fun regs -> A.set_i32 mem (gp regs b) (Int64.to_int32 (g regs a))
  | Op.Store64 -> fun regs -> A.set_i64 mem (gp regs b) (g regs a)
  | Op.Gep ->
    let scale = B.unpack_scale i.B.lit and offset = B.unpack_offset i.B.lit in
    fun regs ->
      s regs a
        (Int64.add (g regs b) (Int64.of_int ((Int64.to_int (g regs c) * scale) + offset)))
  | Op.GepConst ->
    let lit = i.B.lit in
    fun regs -> s regs a (Int64.add (g regs b) lit)
  | Op.LoadIdx8 ->
    let scale = B.unpack_scale i.B.lit and offset = B.unpack_offset i.B.lit in
    fun regs ->
      s regs a
        (S.sext8
           (Int64.of_int (A.get_i8 mem (gp regs b + (Int64.to_int (g regs c) * scale) + offset))))
  | Op.LoadIdx16 ->
    let scale = B.unpack_scale i.B.lit and offset = B.unpack_offset i.B.lit in
    fun regs ->
      s regs a
        (S.sext16
           (Int64.of_int (A.get_i16 mem (gp regs b + (Int64.to_int (g regs c) * scale) + offset))))
  | Op.LoadIdx32 ->
    let scale = B.unpack_scale i.B.lit and offset = B.unpack_offset i.B.lit in
    fun regs ->
      s regs a
        (Int64.of_int32 (A.get_i32 mem (gp regs b + (Int64.to_int (g regs c) * scale) + offset)))
  | Op.LoadIdx64 ->
    let scale = B.unpack_scale i.B.lit and offset = B.unpack_offset i.B.lit in
    fun regs ->
      s regs a (A.get_i64 mem (gp regs b + (Int64.to_int (g regs c) * scale) + offset))
  | Op.StoreIdx8 ->
    let scale = B.unpack_scale i.B.lit and offset = B.unpack_offset i.B.lit in
    fun regs ->
      A.set_i8 mem
        (gp regs b + (Int64.to_int (g regs c) * scale) + offset)
        (Int64.to_int (g regs a) land 0xff)
  | Op.StoreIdx16 ->
    let scale = B.unpack_scale i.B.lit and offset = B.unpack_offset i.B.lit in
    fun regs ->
      A.set_i16 mem
        (gp regs b + (Int64.to_int (g regs c) * scale) + offset)
        (Int64.to_int (g regs a) land 0xffff)
  | Op.StoreIdx32 ->
    let scale = B.unpack_scale i.B.lit and offset = B.unpack_offset i.B.lit in
    fun regs ->
      A.set_i32 mem
        (gp regs b + (Int64.to_int (g regs c) * scale) + offset)
        (Int64.to_int32 (g regs a))
  | Op.StoreIdx64 ->
    let scale = B.unpack_scale i.B.lit and offset = B.unpack_offset i.B.lit in
    fun regs ->
      A.set_i64 mem (gp regs b + (Int64.to_int (g regs c) * scale) + offset) (g regs a)
  | Op.CallV0 | Op.CallV1 | Op.CallV2 | Op.CallV3 | Op.CallV4 | Op.CallV5 | Op.CallR0
  | Op.CallR1 | Op.CallR2 | Op.CallR3 | Op.CallR4 | Op.Jmp | Op.CondJmp | Op.JmpEq
  | Op.JmpNe | Op.JmpSlt | Op.JmpSle | Op.JmpSgt | Op.JmpSge | Op.RetVal | Op.RetVoid
  | Op.AbortOp ->
    ignore (d, e);
    invalid_arg "Closure_compile.step_of: control or call instruction"

(* Calls resolve their runtime target variant once at compile time. *)
let call_step (prog : B.t) (i : B.insn) : Bytes.t -> unit =
  let a = i.B.a and b = i.B.b and c = i.B.c and d = i.B.d and e = i.B.e in
  let fn = prog.B.rt_table.(Int64.to_int i.B.lit) in
  match (i.B.op, fn) with
  | Op.CallV0, Rt_fn.F0 f -> fun _ -> ignore (f ())
  | Op.CallV1, Rt_fn.F1 f -> fun regs -> ignore (f (g regs a))
  | Op.CallV2, Rt_fn.F2 f -> fun regs -> ignore (f (g regs a) (g regs b))
  | Op.CallV3, Rt_fn.F3 f -> fun regs -> ignore (f (g regs a) (g regs b) (g regs c))
  | Op.CallV4, Rt_fn.F4 f ->
    fun regs -> ignore (f (g regs a) (g regs b) (g regs c) (g regs d))
  | Op.CallV5, Rt_fn.F5 f ->
    fun regs -> ignore (f (g regs a) (g regs b) (g regs c) (g regs d) (g regs e))
  | Op.CallR0, Rt_fn.F0 f -> fun regs -> s regs a (f ())
  | Op.CallR1, Rt_fn.F1 f -> fun regs -> s regs a (f (g regs b))
  | Op.CallR2, Rt_fn.F2 f -> fun regs -> s regs a (f (g regs b) (g regs c))
  | Op.CallR3, Rt_fn.F3 f -> fun regs -> s regs a (f (g regs b) (g regs c) (g regs d))
  | Op.CallR4, Rt_fn.F4 f ->
    fun regs -> s regs a (f (g regs b) (g regs c) (g regs d) (g regs e))
  | _ -> invalid_arg "Closure_compile.call_step: arity mismatch"

(* Superinstruction fusion: the closure backend's analogue of machine
   code keeping a producer's result in a register for its consumer.
   The fused closure computes the first instruction's result into an
   unboxed local, still writes its register slot (other readers may
   exist), and feeds the consumer without a second dispatch. *)
let fused_pair mem (i1 : B.insn) (i2 : B.insn) : (Bytes.t -> unit) option =
  let open Op in
  match (i1.B.op, i2.B.op) with
  | Mov, Mov ->
    let a1 = i1.B.a and b1 = i1.B.b and a2 = i2.B.a and b2 = i2.B.b in
    Some
      (fun regs ->
        s regs a1 (g regs b1);
        s regs a2 (g regs b2))
  | LoadIdx64, consumer -> (
    let dst = i1.B.a and base = i1.B.b and idx = i1.B.c in
    let scale = B.unpack_scale i1.B.lit and offset = B.unpack_offset i1.B.lit in
    let load regs = A.get_i64 mem (gp regs base + (Int64.to_int (g regs idx) * scale) + offset) in
    let a2 = i2.B.a and b2 = i2.B.b and c2 = i2.B.c in
    let bin f =
      if b2 = dst && c2 = dst then
        Some
          (fun regs ->
            let v = load regs in
            s regs dst v;
            s regs a2 (f v v))
      else if b2 = dst then
        Some
          (fun regs ->
            let v = load regs in
            s regs dst v;
            s regs a2 (f v (g regs c2)))
      else if c2 = dst then
        Some
          (fun regs ->
            let v = load regs in
            s regs dst v;
            s regs a2 (f (g regs b2) v))
      else None
    in
    match consumer with
    | Add_i64 -> bin Int64.add
    | Sub_i64 -> bin Int64.sub
    | Mul_i64 -> bin Int64.mul
    | And64 -> bin Int64.logand
    | Or64 -> bin Int64.logor
    | Xor64 -> bin Int64.logxor
    | AddChk_i64 -> bin (fun a b -> S.add_chk ~width:64 a b)
    | SubChk_i64 -> bin (fun a b -> S.sub_chk ~width:64 a b)
    | MulChk_i64 -> bin (fun a b -> S.mul_chk ~width:64 a b)
    | CmpEq -> bin (fun a b -> S.bool_i64 (Int64.equal a b))
    | CmpNe -> bin (fun a b -> S.bool_i64 (not (Int64.equal a b)))
    | CmpSlt -> bin (fun a b -> S.bool_i64 (Int64.compare a b < 0))
    | CmpSle -> bin (fun a b -> S.bool_i64 (Int64.compare a b <= 0))
    | CmpSgt -> bin (fun a b -> S.bool_i64 (Int64.compare a b > 0))
    | CmpSge -> bin (fun a b -> S.bool_i64 (Int64.compare a b >= 0))
    | _ -> None)
  | And64, (AddChk_i64 | SubChk_i64 | MulChk_i64 | Add_i64 | Mul_i64) -> (
    let dst = i1.B.a and b1 = i1.B.b and c1 = i1.B.c in
    let a2 = i2.B.a and b2 = i2.B.b and c2 = i2.B.c in
    let f =
      match i2.B.op with
      | AddChk_i64 -> fun a b -> S.add_chk ~width:64 a b
      | SubChk_i64 -> fun a b -> S.sub_chk ~width:64 a b
      | MulChk_i64 -> fun a b -> S.mul_chk ~width:64 a b
      | Add_i64 -> Int64.add
      | Mul_i64 -> Int64.mul
      | _ -> assert false
    in
    if b2 = dst && c2 <> dst then
      Some
        (fun regs ->
          let v = Int64.logand (g regs b1) (g regs c1) in
          s regs dst v;
          s regs a2 (f v (g regs c2)))
    else if c2 = dst && b2 <> dst then
      Some
        (fun regs ->
          let v = Int64.logand (g regs b1) (g regs c1) in
          s regs dst v;
          s regs a2 (f (g regs b2) v))
    else None)
  | (CmpEq | CmpNe | CmpSlt | CmpSle | CmpSgt | CmpSge), SelectOp
    when i2.B.b = i1.B.a && i2.B.c <> i1.B.a && i2.B.d <> i1.B.a -> (
    let b1 = i1.B.b and c1 = i1.B.c and dst = i1.B.a in
    let a2 = i2.B.a and c2 = i2.B.c and d2 = i2.B.d in
    let test =
      match i1.B.op with
      | CmpEq -> fun x y -> Int64.equal x y
      | CmpNe -> fun x y -> not (Int64.equal x y)
      | CmpSlt -> fun x y -> Int64.compare x y < 0
      | CmpSle -> fun x y -> Int64.compare x y <= 0
      | CmpSgt -> fun x y -> Int64.compare x y > 0
      | CmpSge -> fun x y -> Int64.compare x y >= 0
      | _ -> assert false
    in
    Some
      (fun regs ->
        let t = test (g regs b1) (g regs c1) in
        s regs dst (S.bool_i64 t);
        s regs a2 (if t then g regs c2 else g regs d2)))
  | (Add_i64 | Sub_i64 | Mul_i64 | And64 | Or64 | Xor64), Mov when i2.B.b = i1.B.a -> (
    let dst = i1.B.a and b1 = i1.B.b and c1 = i1.B.c and a2 = i2.B.a in
    let f =
      match i1.B.op with
      | Add_i64 -> Int64.add
      | Sub_i64 -> Int64.sub
      | Mul_i64 -> Int64.mul
      | And64 -> Int64.logand
      | Or64 -> Int64.logor
      | Xor64 -> Int64.logxor
      | _ -> assert false
    in
    Some
      (fun regs ->
        let v = f (g regs b1) (g regs c1) in
        s regs dst v;
        s regs a2 v))
  | _ -> None

let is_call (i : B.insn) =
  match i.B.op with
  | Op.CallV0 | Op.CallV1 | Op.CallV2 | Op.CallV3 | Op.CallV4 | Op.CallV5 | Op.CallR0
  | Op.CallR1 | Op.CallR2 | Op.CallR3 | Op.CallR4 ->
    true
  | _ -> false

let is_control (i : B.insn) =
  match i.B.op with
  | Op.Jmp | Op.CondJmp | Op.JmpEq | Op.JmpNe | Op.JmpSlt | Op.JmpSle | Op.JmpSgt
  | Op.JmpSge | Op.RetVal | Op.RetVoid | Op.AbortOp ->
    true
  | _ -> false

let compile (prog : B.t) mem =
  let code = prog.B.code in
  let n = Array.length code in
  let result_off = prog.B.n_reg_bytes in
  let total_reg_bytes = result_off + 8 in
  (* chunk leaders: entry, branch targets, fall-through points *)
  let leader = Array.make (Stdlib.max n 1) false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun idx (i : B.insn) ->
      (match i.B.op with
      | Op.Jmp -> if i.B.a < n then leader.(i.B.a) <- true
      | Op.CondJmp ->
        if i.B.b < n then leader.(i.B.b) <- true;
        if i.B.c < n then leader.(i.B.c) <- true
      | Op.JmpEq | Op.JmpNe | Op.JmpSlt | Op.JmpSle | Op.JmpSgt | Op.JmpSge ->
        if i.B.c < n then leader.(i.B.c) <- true;
        if i.B.d < n then leader.(i.B.d) <- true
      | _ -> ());
      if is_control i && idx + 1 < n then leader.(idx + 1) <- true)
    code;
  let chunk_of_code = Array.make (Stdlib.max n 1) (-1) in
  let n_chunks = ref 0 in
  for idx = 0 to n - 1 do
    if leader.(idx) then begin
      chunk_of_code.(idx) <- !n_chunks;
      incr n_chunks
    end
  done;
  let chunks = Array.make (Stdlib.max !n_chunks 1) (fun (_ : Bytes.t) -> -1) in
  let idx = ref 0 in
  while !idx < n do
    let start = !idx in
    let chunk_id = chunk_of_code.(start) in
    (* collect straight-line steps *)
    let steps = ref [] in
    let stop = ref false in
    while not !stop do
      let i = code.(!idx) in
      if is_control i then stop := true
      else begin
        (* try to fuse with the following instruction *)
        let next_ok =
          !idx + 1 < n
          && (not leader.(!idx + 1))
          && (not (is_control code.(!idx + 1)))
          && (not (is_call i))
          && not (is_call code.(!idx + 1))
        in
        let fused = if next_ok then fused_pair mem i code.(!idx + 1) else None in
        (match fused with
        | Some step ->
          steps := step :: !steps;
          idx := !idx + 2
        | None ->
          let step = if is_call i then call_step prog i else step_of mem i in
          steps := step :: !steps;
          incr idx);
        if !idx >= n || leader.(!idx) then stop := true
      end
    done;
    (* terminal closure: Bytes.t -> int *)
    let terminal : Bytes.t -> int =
      if !idx < n && is_control code.(!idx) then begin
        let i = code.(!idx) in
        let a = i.B.a and b = i.B.b and c = i.B.c and d = i.B.d in
        let t = i.B.op in
        incr idx;
        match t with
        | Op.Jmp ->
          let target = chunk_of_code.(a) in
          fun _ -> target
        | Op.CondJmp ->
          let ct = chunk_of_code.(b) and cf = chunk_of_code.(c) in
          fun regs -> if Int64.equal (g regs a) 0L then cf else ct
        | Op.JmpEq ->
          let ct = chunk_of_code.(c) and cf = chunk_of_code.(d) in
          fun regs -> if Int64.equal (g regs a) (g regs b) then ct else cf
        | Op.JmpNe ->
          let ct = chunk_of_code.(c) and cf = chunk_of_code.(d) in
          fun regs -> if Int64.equal (g regs a) (g regs b) then cf else ct
        | Op.JmpSlt ->
          let ct = chunk_of_code.(c) and cf = chunk_of_code.(d) in
          fun regs -> if Int64.compare (g regs a) (g regs b) < 0 then ct else cf
        | Op.JmpSle ->
          let ct = chunk_of_code.(c) and cf = chunk_of_code.(d) in
          fun regs -> if Int64.compare (g regs a) (g regs b) <= 0 then ct else cf
        | Op.JmpSgt ->
          let ct = chunk_of_code.(c) and cf = chunk_of_code.(d) in
          fun regs -> if Int64.compare (g regs a) (g regs b) > 0 then ct else cf
        | Op.JmpSge ->
          let ct = chunk_of_code.(c) and cf = chunk_of_code.(d) in
          fun regs -> if Int64.compare (g regs a) (g regs b) >= 0 then ct else cf
        | Op.RetVal ->
          fun regs ->
            s regs result_off (g regs a);
            -1
        | Op.RetVoid ->
          fun regs ->
            s regs result_off 0L;
            -1
        | Op.AbortOp ->
          let msg = prog.B.messages.(a) in
          fun _ -> raise (Trap.Error msg)
        | _ -> assert false
      end
      else begin
        (* fall through to the next chunk *)
        let next = if !idx < n then chunk_of_code.(!idx) else -1 in
        fun _ -> next
      end
    in
    (* compose the chunk: one closure invocation per instruction, with
       small chunks fully unrolled *)
    let body =
      match Array.of_list (List.rev !steps) with
      | [||] -> terminal
      | [| s1 |] ->
        fun regs ->
          s1 regs;
          terminal regs
      | [| s1; s2 |] ->
        fun regs ->
          s1 regs;
          s2 regs;
          terminal regs
      | [| s1; s2; s3 |] ->
        fun regs ->
          s1 regs;
          s2 regs;
          s3 regs;
          terminal regs
      | [| s1; s2; s3; s4 |] ->
        fun regs ->
          s1 regs;
          s2 regs;
          s3 regs;
          s4 regs;
          terminal regs
      | [| s1; s2; s3; s4; s5 |] ->
        fun regs ->
          s1 regs;
          s2 regs;
          s3 regs;
          s4 regs;
          s5 regs;
          terminal regs
      | [| s1; s2; s3; s4; s5; s6 |] ->
        fun regs ->
          s1 regs;
          s2 regs;
          s3 regs;
          s4 regs;
          s5 regs;
          s6 regs;
          terminal regs
      | arr ->
        let n_steps = Array.length arr in
        fun regs ->
          for k = 0 to n_steps - 1 do
            (Array.unsafe_get arr k) regs
          done;
          terminal regs
    in
    chunks.(chunk_id) <- body
  done;
  { prog; chunks; result_off; total_reg_bytes }

let n_reg_bytes t = t.total_reg_bytes

let scratch t = Bytes.make (Stdlib.max 16 t.total_reg_bytes) '\000'

let run t ?regs ~args () =
  let regs = match regs with Some r -> r | None -> scratch t in
  Array.iteri (fun i c -> s regs (8 * i) c) t.prog.B.const_pool;
  Array.iteri
    (fun i off -> s regs off (if i < Array.length args then args.(i) else 0L))
    t.prog.B.param_offsets;
  let chunks = t.chunks in
  let pc = ref 0 in
  while !pc >= 0 do
    pc := (Array.unsafe_get chunks !pc) regs
  done;
  g regs t.result_off

(** Measures the real throughput ratios between the bytecode
    interpreter and the closure backends on a synthetic arithmetic
    kernel. The paper determines the inter-mode speed-ups empirically
    (Section III-C, "determined empirically in our system"); the
    adaptive controller can feed these measured values into the cost
    model instead of the paper's published 3.6×/5.0×. Results are
    computed once and cached for the process. *)

type t = { speedup_unopt : float; speedup_opt : float }

val measure : unit -> t
(** Cached after the first call (takes a few milliseconds). *)

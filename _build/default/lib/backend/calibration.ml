type t = { speedup_unopt : float; speedup_opt : float }

(* A scan-like kernel: loop over a synthetic column doing a filtered
   checked aggregation — representative of the per-tuple work in
   generated pipelines. *)
let build_kernel () =
  let b = Builder.create ~name:"calib" ~params:[ Types.Ptr; Types.I64 ] in
  let head = Builder.new_block b in
  let body = Builder.new_block b in
  let skip = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.br b head;
  Builder.switch_to b head;
  let i = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let acc = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
  let c = Builder.icmp b Instr.Slt Types.I64 i (Builder.param b 1) in
  Builder.condbr b c ~if_true:body ~if_false:exit;
  Builder.switch_to b body;
  let addr = Builder.gep b ~base:(Builder.param b 0) ~index:i ~scale:8 ~offset:0 in
  let v = Builder.load b Types.I64 addr in
  let keep = Builder.icmp b Instr.Sgt Types.I64 v (Instr.Imm 16L) in
  let masked = Builder.binop b Instr.And Types.I64 v (Instr.Imm 0xFFFFL) in
  let scaled = Builder.checked b Instr.OMul Types.I64 masked (Instr.Imm 3L) in
  let inc = Builder.select b Types.I64 keep scaled (Instr.Imm 1L) in
  let acc' = Builder.binop b Instr.Add Types.I64 acc inc in
  Builder.br b skip;
  Builder.switch_to b skip;
  let i' = Builder.binop b Instr.Add Types.I64 i (Instr.Imm 1L) in
  Builder.br b head;
  Builder.add_phi_incoming b ~block:head ~dst:i ~pred:skip i';
  Builder.add_phi_incoming b ~block:head ~dst:acc ~pred:skip acc';
  Builder.switch_to b exit;
  Builder.ret b acc;
  let f = Builder.finish b in
  Layout.normalize f;
  f

let no_symbols : Aeq_vm.Rt_fn.resolver = fun _ -> None

let time_per_run f =
  (* best of 3 to shave scheduling noise *)
  let best = ref infinity in
  for _ = 1 to 3 do
    let _, dt = Aeq_util.Clock.time_it f in
    if dt < !best then best := dt
  done;
  !best

let measure_uncached () =
  let mem = Aeq_mem.Arena.create () in
  let alloc = Aeq_mem.Arena.allocator mem in
  let n = 50_000 in
  let col = Aeq_mem.Arena.alloc alloc (8 * n) in
  for i = 0 to n - 1 do
    Aeq_mem.Arena.set_i64 mem (col + (8 * i)) (Int64.of_int (i land 1023))
  done;
  let f = build_kernel () in
  let args = [| Int64.of_int col; Int64.of_int n |] in
  let prog = Aeq_vm.Translate.translate ~symbols:no_symbols f in
  let regs = Aeq_vm.Interp.scratch prog in
  let t_bc =
    time_per_run (fun () -> ignore (Aeq_vm.Interp.run prog mem ~regs ~args ()))
  in
  let unopt =
    Compiler.compile ~cost_model:Cost_model.off ~symbols:no_symbols ~mem
      ~mode:Cost_model.Unopt f
  in
  let uregs = Closure_compile.scratch unopt.Compiler.exec in
  let t_unopt =
    time_per_run (fun () -> ignore (Closure_compile.run unopt.Compiler.exec ~regs:uregs ~args ()))
  in
  let opt =
    Compiler.compile ~cost_model:Cost_model.off ~symbols:no_symbols ~mem
      ~mode:Cost_model.Opt f
  in
  let oregs = Closure_compile.scratch opt.Compiler.exec in
  let t_opt =
    time_per_run (fun () -> ignore (Closure_compile.run opt.Compiler.exec ~regs:oregs ~args ()))
  in
  {
    speedup_unopt = Stdlib.max 1.01 (t_bc /. t_unopt);
    speedup_opt = Stdlib.max 1.02 (t_bc /. t_opt);
  }

let cache = ref None

let measure () =
  match !cache with
  | Some t -> t
  | None ->
    let t = measure_uncached () in
    cache := Some t;
    t

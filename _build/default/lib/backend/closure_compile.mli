(** The "machine code" backend: compiles bytecode into chains of OCaml
    closures (threaded code).

    Each straight-line chunk of the program becomes a single composed
    closure with all register offsets, literals and runtime-function
    targets captured as immediates — no per-instruction decode or
    dispatch remains, which is what makes execution faster than the
    interpreter's fetch/decode loop. The compiled form runs over the
    same register-file layout and the same arena as the interpreter,
    so a pipeline can switch from bytecode to compiled code between
    any two morsels without losing work.

    The per-instruction closure construction plus chunk composition is
    the real (measured) component of compile time; the LLVM-magnitude
    cost is modelled on top by {!Cost_model} (see DESIGN.md). *)

type t

val compile : Aeq_vm.Bytecode.t -> Aeq_mem.Arena.t -> t
(** Compile for execution against the given arena (captured). *)

val run : t -> ?regs:Bytes.t -> args:int64 array -> unit -> int64
(** Execute. [regs], if given, must hold at least [n_reg_bytes].
    @raise Trap.Error on overflow / division by zero / abort. *)

val n_reg_bytes : t -> int

val scratch : t -> Bytes.t

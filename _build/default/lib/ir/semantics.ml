let sext8 v = Int64.shift_right (Int64.shift_left v 56) 56

let sext16 v = Int64.shift_right (Int64.shift_left v 48) 48

let sext32 v = Int64.shift_right (Int64.shift_left v 32) 32

let canon ~width v =
  match width with
  | 8 -> sext8 v
  | 16 -> sext16 v
  | 32 -> sext32 v
  | 64 -> v
  | _ -> invalid_arg "Semantics.canon"

let add ~width a b = canon ~width (Int64.add a b)

let sub ~width a b = canon ~width (Int64.sub a b)

let mul ~width a b = canon ~width (Int64.mul a b)

let div ~width a b =
  if Int64.equal b 0L then Trap.division_by_zero () else canon ~width (Int64.div a b)

let rem ~width a b =
  if Int64.equal b 0L then Trap.division_by_zero () else canon ~width (Int64.rem a b)

let shl ~width a b = canon ~width (Int64.shift_left a (Int64.to_int b land 63))

let lshr ~width a b =
  let masked =
    match width with
    | 8 -> Int64.logand a 0xFFL
    | 16 -> Int64.logand a 0xFFFFL
    | 32 -> Int64.logand a 0xFFFFFFFFL
    | _ -> a
  in
  canon ~width (Int64.shift_right_logical masked (Int64.to_int b land 63))

let fits ~width v = Int64.equal (canon ~width v) v

let add_ovf ~width a b =
  if width = 64 then begin
    let r = Int64.add a b in
    (* same-sign operands with a differently-signed result *)
    Int64.logand (Int64.logxor a b) Int64.min_int = 0L
    && Int64.logand (Int64.logxor a r) Int64.min_int <> 0L
  end
  else not (fits ~width (Int64.add a b))

let sub_ovf ~width a b =
  if width = 64 then begin
    let r = Int64.sub a b in
    Int64.logand (Int64.logxor a b) Int64.min_int <> 0L
    && Int64.logand (Int64.logxor a r) Int64.min_int <> 0L
  end
  else not (fits ~width (Int64.sub a b))

let mul_ovf ~width a b =
  if width = 64 then
    if Int64.equal a 0L then false
    else begin
      let r = Int64.mul a b in
      (not (Int64.equal (Int64.div r a) b))
      || (Int64.equal a (-1L) && Int64.equal b Int64.min_int)
      || (Int64.equal b (-1L) && Int64.equal a Int64.min_int)
    end
  else not (fits ~width (Int64.mul a b))

let add_chk ~width a b = if add_ovf ~width a b then Trap.overflow () else Int64.add a b

let sub_chk ~width a b = if sub_ovf ~width a b then Trap.overflow () else Int64.sub a b

let mul_chk ~width a b = if mul_ovf ~width a b then Trap.overflow () else Int64.mul a b

let ucmp ~width a b =
  match width with
  | 64 -> Int64.unsigned_compare a b
  | 8 -> Int64.compare (Int64.logand a 0xFFL) (Int64.logand b 0xFFL)
  | 16 -> Int64.compare (Int64.logand a 0xFFFFL) (Int64.logand b 0xFFFFL)
  | 32 -> Int64.compare (Int64.logand a 0xFFFFFFFFL) (Int64.logand b 0xFFFFFFFFL)
  | _ -> invalid_arg "Semantics.ucmp"

let bool_i64 b = if b then 1L else 0L

let fp_of_bits = Int64.float_of_bits

let bits_of_fp = Int64.bits_of_float

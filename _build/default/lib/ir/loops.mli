(** Loop structure discovery — phase 1 of the paper's linear-time
    liveness algorithm (Fig. 11).

    The whole function body is treated as one pseudo-loop headed by the
    entry block. A block [h] is a loop head iff some jump edge
    [b -> h] has [h] dominating [b]. Each loop's body is its natural
    loop (all blocks reaching a back edge without passing the head);
    heads with several back edges share one loop.

    For lifetime extension the body is summarised as the label
    interval [first..last] (min/max RPO label of any body block). When
    the RPO lays a loop out contiguously — always the case for the
    structured CFGs a query compiler emits — this is exact; otherwise
    it covers a superset of the body, which can only lengthen a
    lifetime, never truncate it, so register allocation stays sound.

    Requires the function to be RPO-ordered. *)

type loop = {
  head : int;  (** block id of the loop head *)
  first : int;  (** smallest body-block label *)
  last : int;  (** largest body-block label *)
  parent : int;  (** index of the enclosing loop, [-1] for the root *)
  depth : int;  (** nesting depth, root pseudo-loop = 0 *)
}

type t

val compute : Func.t -> Dom.t -> t

val loops : t -> loop array
(** All loops; index 0 is the root pseudo-loop spanning the whole
    function. *)

val innermost : t -> int -> int
(** [innermost t b] is the index of the innermost loop whose body
    contains block [b] (exact, by membership). *)

val loop : t -> int -> loop

val lca : t -> int -> int -> int
(** Least common ancestor of two loops in the nesting forest — the
    innermost loop containing both ("C_v" in Fig. 11). *)

val outermost_below : t -> ancestor:int -> int -> int
(** [outermost_below t ~ancestor l]: the outermost loop on the path
    from [l] up to (but excluding) [ancestor]; returns [ancestor] when
    [l = ancestor]. Used to lift a block to "the outermost loop below
    C_v" (Fig. 11). *)

val is_loop_head : t -> int -> bool

val contains : t -> int -> int -> bool
(** [contains t li b]: is block [b] in the body of loop [li]? *)

val contiguous : t -> bool
(** Whether every loop body occupies a contiguous label range — the
    invariant {!Layout.normalize} establishes and the interval-based
    liveness requires. *)

val n_loops : t -> int

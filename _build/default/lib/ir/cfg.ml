let predecessors (f : Func.t) =
  let n = Func.n_blocks f in
  let preds = Array.make n [] in
  Array.iter
    (fun (b : Block.t) ->
      List.iter (fun s -> preds.(s) <- b.Block.id :: preds.(s)) (Block.successors b))
    f.Func.blocks;
  Array.map List.rev preds

let postorder (f : Func.t) =
  let n = Func.n_blocks f in
  let visited = Array.make n false in
  let order = ref [] in
  (* Iterative DFS: the stack holds (block, remaining successors). *)
  let stack = Stack.create () in
  visited.(0) <- true;
  Stack.push (0, ref (Block.successors (Func.block f 0))) stack;
  while not (Stack.is_empty stack) do
    let b, succs = Stack.top stack in
    match !succs with
    | [] ->
      ignore (Stack.pop stack);
      order := b :: !order
    | s :: rest ->
      succs := rest;
      if not visited.(s) then begin
        visited.(s) <- true;
        Stack.push (s, ref (Block.successors (Func.block f s))) stack
      end
  done;
  (* Prepending on pop yields the reversed postorder directly. *)
  !order

let reverse_postorder f = Array.of_list (postorder f)

let apply_order (f : Func.t) order =
  assert (Array.length order > 0 && order.(0) = 0);
  let n_old = Func.n_blocks f in
  let old_to_new = Array.make n_old (-1) in
  Array.iteri (fun new_id old_id -> old_to_new.(old_id) <- new_id) order;
  let reachable old_id = old_to_new.(old_id) >= 0 in
  let new_blocks =
    Array.map
      (fun old_id ->
        let b = Func.block f old_id in
        let phis =
          Array.map
            (fun (p : Instr.phi) ->
              let incoming =
                Array.to_list p.incoming
                |> List.filter (fun (pred, _) -> reachable pred)
                |> List.map (fun (pred, v) -> (old_to_new.(pred), v))
                |> Array.of_list
              in
              { p with Instr.incoming })
            b.Block.phis
        in
        let term =
          match b.Block.term with
          | Instr.Br t -> Instr.Br old_to_new.(t)
          | Instr.CondBr { cond; if_true; if_false } ->
            Instr.CondBr
              { cond; if_true = old_to_new.(if_true); if_false = old_to_new.(if_false) }
          | (Instr.Ret _ | Instr.Abort _) as t -> t
        in
        { b with Block.id = old_to_new.(old_id); phis; term })
      order
  in
  f.Func.blocks <- new_blocks

let reorder_rpo (f : Func.t) = apply_order f (reverse_postorder f)

(** Loop-aware block layout.

    The bytecode translator's liveness algorithm represents lifetimes
    and loops as contiguous block-label intervals (paper Fig. 10/11).
    That representation is sound only if every natural loop body
    occupies a contiguous label range — which a plain reverse
    postorder does not guarantee (a DFS may interleave a loop's blocks
    with its exit path). [normalize] renumbers blocks by laying the
    CFG out recursively along the loop-nesting forest: each loop is
    emitted as one contiguous unit (header first), and the members of
    each nesting level are topologically ordered, so all non-back
    edges still point forward (the order remains a valid RPO).

    Every producer of IR destined for translation must call this
    (codegen does; tests do). Idempotent. *)

val normalize : Func.t -> unit
(** Prune unreachable blocks and renumber so that array order is a
    reverse postorder in which every loop body is contiguous. *)

exception Error of string

let overflow () = raise (Error "integer overflow")

let division_by_zero () = raise (Error "division by zero")

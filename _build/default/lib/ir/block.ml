type t = {
  id : int;
  mutable phis : Instr.phi array;
  mutable instrs : Instr.t array;
  mutable term : Instr.terminator;
}

let successors b =
  match b.term with
  | Instr.Br target -> [ target ]
  | Instr.CondBr { if_true; if_false; _ } -> [ if_true; if_false ]
  | Instr.Ret _ | Instr.Abort _ -> []

let make ~id ~phis ~instrs ~term =
  { id; phis = Array.of_list phis; instrs = Array.of_list instrs; term }

let defined_values b =
  let phi_defs = Array.to_list (Array.map (fun (p : Instr.phi) -> p.dst) b.phis) in
  let instr_defs =
    Array.to_list b.instrs |> List.filter_map (fun i -> Instr.dst_of i)
  in
  phi_defs @ instr_defs

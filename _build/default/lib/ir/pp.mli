(** Human-readable printer for IR functions, in an LLVM-flavoured
    textual syntax. Used by EXPLAIN, the disassembler tests and
    debugging. *)

val value : Format.formatter -> Instr.value -> unit

val instr : Format.formatter -> Instr.t -> unit

val terminator : Format.formatter -> Instr.terminator -> unit

val func : Format.formatter -> Func.t -> unit

val func_to_string : Func.t -> string

(** Runtime query errors raised by every execution backend (bytecode
    interpreter, compiled closures, direct IR evaluation): integer
    overflow of checked arithmetic, division by zero, explicit
    aborts. Raising the same exception from all backends keeps them
    observationally identical. *)

exception Error of string

val overflow : unit -> 'a

val division_by_zero : unit -> 'a

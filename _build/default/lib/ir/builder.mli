(** Imperative construction API for IR functions.

    The query code generator builds workers with this module: create
    blocks, position an insertion point, append typed instructions.
    Values are returned as {!Instr.value}s so they can be used as
    operands directly. [finish] seals the function; callers should
    then run {!Cfg.reorder_rpo} (the bytecode translator requires
    reverse-postorder block numbering). *)

type t

val create : name:string -> params:Types.t list -> t

val param : t -> int -> Instr.value
(** [param b i] is the i-th function parameter. *)

val new_block : t -> int
(** Allocate an empty block and return its id (does not move the
    insertion point). *)

val switch_to : t -> int -> unit
(** Move the insertion point to the given block. *)

val current_block : t -> int

(** {1 Instructions} — each appends at the insertion point and returns
    the defined value. *)

val binop : t -> Instr.binop -> Types.t -> Instr.value -> Instr.value -> Instr.value

val checked : t -> Instr.ovf_op -> Types.t -> Instr.value -> Instr.value -> Instr.value
(** Overflow-checked arithmetic: emits the compute instruction, the
    overflow-flag instruction and a conditional branch to a shared
    trap block — the 4-instruction LLVM pattern of Section IV-F that
    the bytecode translator later fuses into one macro-op. The
    insertion point moves to the continuation block. *)

val fbinop : t -> Instr.fbinop -> Instr.value -> Instr.value -> Instr.value

val icmp : t -> Instr.icmp -> Types.t -> Instr.value -> Instr.value -> Instr.value

val fcmp : t -> Instr.fcmp -> Instr.value -> Instr.value -> Instr.value

val select : t -> Types.t -> Instr.value -> Instr.value -> Instr.value -> Instr.value

val cast : t -> Instr.cast -> from_ty:Types.t -> to_ty:Types.t -> Instr.value -> Instr.value

val load : t -> Types.t -> Instr.value -> Instr.value

val store : t -> Types.t -> addr:Instr.value -> Instr.value -> unit

val gep : t -> base:Instr.value -> index:Instr.value -> scale:int -> offset:int -> Instr.value

val call : t -> Types.t -> string -> (Instr.value * Types.t) list -> Instr.value

val call_void : t -> string -> (Instr.value * Types.t) list -> unit

val phi : t -> Types.t -> (int * Instr.value) list -> Instr.value
(** Append a φ to the current block. Incoming edges may be completed
    later with [add_phi_incoming] (loop back edges). *)

val add_phi_incoming : t -> block:int -> dst:Instr.value -> pred:int -> Instr.value -> unit

(** {1 Terminators} *)

val br : t -> int -> unit

val condbr : t -> Instr.value -> if_true:int -> if_false:int -> unit

val ret : t -> Instr.value -> unit

val ret_void : t -> unit

val abort_ : t -> string -> unit

val terminated : t -> bool
(** Whether the current block already has a terminator. *)

val finish : t -> Func.t
(** Seal the function. Fails if a reachable block lacks a
    terminator. *)

(** Dominator tree with pre/post-order labeling.

    Computed with the Cooper–Harvey–Kennedy iterative algorithm over
    the reverse-postorder numbering (the practical variant of the
    near-linear algorithms the paper cites). Nodes of the tree are
    labeled with pre/post-order numbers so that ancestor queries — the
    loop-head test of Fig. 11 — are O(1), exactly as the paper's
    Fig. 12 illustrates.

    Requires the function to be RPO-ordered ({!Cfg.reorder_rpo}). *)

type t

val compute : Func.t -> t

val idom : t -> int -> int
(** Immediate dominator of a block; the entry is its own idom. *)

val is_ancestor : t -> ancestor:int -> int -> bool
(** [is_ancestor t ~ancestor b]: does [ancestor] dominate [b]
    (reflexively)? O(1) via interval containment. *)

val preorder : t -> int -> int

val postorder_label : t -> int -> int

val children : t -> int -> int list
(** Dominator-tree children. *)

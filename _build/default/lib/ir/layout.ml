(* A member of a nesting level is either a plain block or a whole
   child loop (emitted recursively as one unit). Members are keyed by
   their representative block: the block itself, or the child loop's
   head. *)

let normalize (f : Func.t) =
  Cfg.reorder_rpo f;
  let dom = Dom.compute f in
  let loops = Loops.compute f dom in
  if Loops.contiguous loops && Loops.n_loops loops = 1 then ()
  else begin
    let n = Func.n_blocks f in
    let inner b = Loops.innermost loops b in
    (* The member of block [b] at nesting level [li]: [b] itself if its
       innermost loop is [li], else the ancestor of inner(b) whose
       parent is [li] (represented by that loop's head). Returns None
       if [b] is not in loop [li] at all. *)
    let member_of li b =
      if not (Loops.contains loops li b) then None
      else if inner b = li then Some (`Block b)
      else begin
        let rec ascend l =
          if (Loops.loop loops l).Loops.parent = li then l else ascend (Loops.loop loops l).Loops.parent
        in
        Some (`Child (ascend (inner b)))
      end
    in
    let rep = function `Block b -> b | `Child l -> (Loops.loop loops l).Loops.head in
    let order = ref [] in
    (* Emit the blocks of loop [li] in a topological order of its
       members, header first; child loops are emitted recursively so
       their bodies stay contiguous. *)
    let rec emit_loop li =
      let head = (Loops.loop loops li).Loops.head in
      (* Collect members and build the member DAG. *)
      let members = Hashtbl.create 16 in
      (* rep block -> member *)
      let edges = Hashtbl.create 16 in
      (* rep -> rep list *)
      let indeg = Hashtbl.create 16 in
      for b = 0 to n - 1 do
        match member_of li b with
        | Some m ->
          let r = rep m in
          if not (Hashtbl.mem members r) then begin
            Hashtbl.replace members r m;
            if not (Hashtbl.mem indeg r) then Hashtbl.replace indeg r 0
          end
        | None -> ()
      done;
      for b = 0 to n - 1 do
        if Loops.contains loops li b then
          List.iter
            (fun s ->
              match (member_of li b, member_of li s) with
              | Some mb, Some ms ->
                let rb = rep mb and rs = rep ms in
                if rb <> rs && rs <> head then begin
                  let existing =
                    match Hashtbl.find_opt edges rb with Some l -> l | None -> []
                  in
                  if not (List.mem rs existing) then begin
                    Hashtbl.replace edges rb (rs :: existing);
                    Hashtbl.replace indeg rs
                      (1 + match Hashtbl.find_opt indeg rs with Some d -> d | None -> 0)
                  end
                end
              | _ -> ())
            (Block.successors (Func.block f b))
      done;
      (* Kahn's algorithm, lowest representative first for stability.
         If the member graph has a cycle (irreducible control flow),
         force-release the smallest remaining representative — the
         layout stays a permutation, merely less tight. *)
      let ready = ref [] in
      Hashtbl.iter (fun r d -> if d = 0 then ready := r :: !ready) indeg;
      let remaining = ref (Hashtbl.length members) in
      let emitted = Hashtbl.create 16 in
      let rec emit_member r =
        if Hashtbl.mem emitted r then ()
        else emit_member_now r
      and emit_member_now r =
        Hashtbl.replace emitted r ();
        decr remaining;
        (match Hashtbl.find members r with
        | `Block b -> order := b :: !order
        | `Child l -> emit_loop l);
        List.iter
          (fun s ->
            let d = Hashtbl.find indeg s - 1 in
            Hashtbl.replace indeg s d;
            if d = 0 then ready := s :: !ready)
          (match Hashtbl.find_opt edges r with Some l -> l | None -> [])
      in
      (* head goes first *)
      ready := List.filter (fun r -> r <> head) !ready;
      emit_member head;
      while !remaining > 0 do
        match List.sort compare !ready with
        | r :: rest ->
          ready := rest;
          emit_member r
        | [] ->
          (* cycle: force the smallest unemitted member *)
          let forced = ref (-1) in
          Hashtbl.iter
            (fun r _ ->
              if (not (Hashtbl.mem emitted r)) && (!forced < 0 || r < !forced) then forced := r)
            members;
          emit_member !forced
      done
    in
    emit_loop 0;
    Cfg.apply_order f (Array.of_list (List.rev !order))
  end

(** An IR function in SSA form.

    Parameters are the first value ids ([0 .. n_params-1]). Every
    value id has an entry in the type table. Blocks are stored in an
    array; after {!Cfg.reorder_rpo} the array order is reverse
    postorder, which the bytecode translator requires. *)

type t = {
  name : string;
  params : Types.t array;
  mutable blocks : Block.t array;
  mutable value_ty : Types.t array;
  mutable n_values : int;
}

val create : name:string -> params:Types.t list -> t
(** Function with parameters registered as values [0..] and no
    blocks. *)

val fresh_value : t -> Types.t -> int
(** Register a new SSA value id of the given type. *)

val ty_of : t -> int -> Types.t

val value_of_ty_exn : t -> Instr.value -> Types.t
(** Type of any operand: registered type for [Vreg], [I64] for [Imm]
    and [F64] for [Fimm]. *)

val block : t -> int -> Block.t

val n_blocks : t -> int

val iter_instrs : t -> (Block.t -> Instr.t -> unit) -> unit

val n_instrs : t -> int
(** Total instruction count (φs and terminators included), the size
    measure used by the compile-time model (paper Fig. 6). *)

val copy : t -> t
(** Deep copy. The optimizing compiler clones the function before
    mutating it so the bytecode variant keeps executing the original
    IR. *)

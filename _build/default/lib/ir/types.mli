(** Scalar types of the IR.

    The IR is a typed SSA language mirroring the LLVM subset a
    HyPer-style query compiler emits. Pointers are 64-bit byte offsets
    into the {!Aeq_mem.Arena} (see DESIGN.md). *)

type t =
  | I1  (** booleans / comparison results *)
  | I8
  | I16
  | I32
  | I64
  | F64
  | Ptr  (** arena offset; same width as [I64] *)

val size_of : t -> int
(** Byte width when stored in memory or a register slot. [I1] occupies
    one byte. *)

val slot_size : t -> int
(** Byte width of the register-file slot for a value of this type.
    All slots are 8 bytes — the paper's VM stores every value in a
    fixed-position register; keeping slots uniform keeps offsets
    aligned. *)

val is_integer : t -> bool

val is_float : t -> bool

val equal : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit

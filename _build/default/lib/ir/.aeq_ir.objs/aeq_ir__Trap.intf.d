lib/ir/trap.mli:

lib/ir/layout.mli: Func

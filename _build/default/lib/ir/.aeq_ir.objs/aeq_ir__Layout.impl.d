lib/ir/layout.ml: Array Block Cfg Dom Func Hashtbl List Loops

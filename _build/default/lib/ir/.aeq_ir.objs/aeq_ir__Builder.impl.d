lib/ir/builder.ml: Array Block Func Instr List Printf Types

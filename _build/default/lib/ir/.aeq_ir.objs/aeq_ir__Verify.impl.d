lib/ir/verify.ml: Array Block Cfg Format Func Instr List Printf String Types

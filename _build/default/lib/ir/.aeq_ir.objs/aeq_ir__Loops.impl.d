lib/ir/loops.ml: Array Block Cfg Dom Func Hashtbl List

lib/ir/semantics.mli:

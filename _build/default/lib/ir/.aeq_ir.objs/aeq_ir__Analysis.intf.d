lib/ir/analysis.mli: Func

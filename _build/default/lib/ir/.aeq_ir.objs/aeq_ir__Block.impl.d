lib/ir/block.ml: Array Instr List

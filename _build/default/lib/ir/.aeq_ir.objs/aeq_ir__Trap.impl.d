lib/ir/trap.ml:

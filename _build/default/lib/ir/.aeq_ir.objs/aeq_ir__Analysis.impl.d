lib/ir/analysis.ml: Func Instr List

lib/ir/loops.mli: Dom Func

lib/ir/pp.ml: Array Block Format Func Instr Types

lib/ir/dom.ml: Array Cfg Func List Stack

lib/ir/verify.mli: Func

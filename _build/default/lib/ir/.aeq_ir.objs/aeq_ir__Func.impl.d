lib/ir/func.ml: Array Block Instr Stdlib Types

lib/ir/dom.mli: Func

lib/ir/semantics.ml: Int64 Trap

lib/ir/instr.ml: Array Int64 Option Types

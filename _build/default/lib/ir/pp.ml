open Format

let value fmt = function
  | Instr.Vreg id -> fprintf fmt "%%%d" id
  | Instr.Imm i -> fprintf fmt "%Ld" i
  | Instr.Fimm f -> fprintf fmt "%g" f

let binop_name = function
  | Instr.Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "sdiv"
  | Rem -> "srem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | LShr -> "lshr"
  | AShr -> "ashr"

let ovf_name = function Instr.OAdd -> "add" | OSub -> "sub" | OMul -> "mul"

let fbinop_name = function Instr.FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"

let icmp_name = function
  | Instr.Eq -> "eq"
  | Ne -> "ne"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"
  | Ult -> "ult"
  | Ule -> "ule"
  | Ugt -> "ugt"
  | Uge -> "uge"

let fcmp_name = function
  | Instr.FEq -> "oeq"
  | FNe -> "one"
  | FLt -> "olt"
  | FLe -> "ole"
  | FGt -> "ogt"
  | FGe -> "oge"

let cast_name = function
  | Instr.Zext -> "zext"
  | Sext -> "sext"
  | Trunc -> "trunc"
  | SiToFp -> "sitofp"
  | FpToSi -> "fptosi"
  | Bitcast -> "bitcast"

let instr fmt = function
  | Instr.Binop { op; ty; dst; a; b } ->
    fprintf fmt "%%%d = %s %a %a, %a" dst (binop_name op) Types.pp ty value a value b
  | Instr.OvfFlag { op; ty; dst; a; b } ->
    fprintf fmt "%%%d = %s.ovf %a %a, %a" dst (ovf_name op) Types.pp ty value a value b
  | Instr.Fbinop { op; dst; a; b } ->
    fprintf fmt "%%%d = %s f64 %a, %a" dst (fbinop_name op) value a value b
  | Instr.Icmp { op; ty; dst; a; b } ->
    fprintf fmt "%%%d = icmp %s %a %a, %a" dst (icmp_name op) Types.pp ty value a value b
  | Instr.Fcmp { op; dst; a; b } ->
    fprintf fmt "%%%d = fcmp %s f64 %a, %a" dst (fcmp_name op) value a value b
  | Instr.Select { ty; dst; cond; a; b } ->
    fprintf fmt "%%%d = select %a %a, %a, %a" dst Types.pp ty value cond value a value b
  | Instr.Cast { op; from_ty; to_ty; dst; v } ->
    fprintf fmt "%%%d = %s %a %a to %a" dst (cast_name op) Types.pp from_ty value v Types.pp
      to_ty
  | Instr.Load { ty; dst; addr } -> fprintf fmt "%%%d = load %a, %a" dst Types.pp ty value addr
  | Instr.Store { ty; addr; v } -> fprintf fmt "store %a %a, %a" Types.pp ty value v value addr
  | Instr.Gep { dst; base; index; scale; offset } ->
    fprintf fmt "%%%d = gep %a + %a*%d + %d" dst value base value index scale offset
  | Instr.Call { dst; sym; args; _ } ->
    (match dst with
    | Some (d, ty) -> fprintf fmt "%%%d = call %a @%s(" d Types.pp ty sym
    | None -> fprintf fmt "call void @%s(" sym);
    Array.iteri (fun i a -> fprintf fmt "%s%a" (if i > 0 then ", " else "") value a) args;
    fprintf fmt ")"

let terminator fmt = function
  | Instr.Br t -> fprintf fmt "br label %%b%d" t
  | Instr.CondBr { cond; if_true; if_false } ->
    fprintf fmt "br %a, label %%b%d, label %%b%d" value cond if_true if_false
  | Instr.Ret (Some v) -> fprintf fmt "ret %a" value v
  | Instr.Ret None -> fprintf fmt "ret void"
  | Instr.Abort msg -> fprintf fmt "abort \"%s\"" msg

let phi fmt (p : Instr.phi) =
  fprintf fmt "%%%d = phi %a " p.dst Types.pp p.ty;
  Array.iteri
    (fun i (blk, v) -> fprintf fmt "%s[%a, %%b%d]" (if i > 0 then ", " else "") value v blk)
    p.incoming

let func fmt (f : Func.t) =
  fprintf fmt "define @%s(" f.Func.name;
  Array.iteri
    (fun i ty -> fprintf fmt "%s%a %%%d" (if i > 0 then ", " else "") Types.pp ty i)
    f.Func.params;
  fprintf fmt ") {@.";
  Array.iter
    (fun (b : Block.t) ->
      fprintf fmt "b%d:@." b.id;
      Array.iter (fun p -> fprintf fmt "  %a@." phi p) b.phis;
      Array.iter (fun i -> fprintf fmt "  %a@." instr i) b.instrs;
      fprintf fmt "  %a@." terminator b.term)
    f.Func.blocks;
  fprintf fmt "}@."

let func_to_string f = Format.asprintf "%a" func f

type value = Vreg of int | Imm of int64 | Fimm of float

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | LShr | AShr

type ovf_op = OAdd | OSub | OMul

type fbinop = FAdd | FSub | FMul | FDiv

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type fcmp = FEq | FNe | FLt | FLe | FGt | FGe

type cast = Zext | Sext | Trunc | SiToFp | FpToSi | Bitcast

type t =
  | Binop of { op : binop; ty : Types.t; dst : int; a : value; b : value }
  | OvfFlag of { op : ovf_op; ty : Types.t; dst : int; a : value; b : value }
  | Fbinop of { op : fbinop; dst : int; a : value; b : value }
  | Icmp of { op : icmp; ty : Types.t; dst : int; a : value; b : value }
  | Fcmp of { op : fcmp; dst : int; a : value; b : value }
  | Select of { ty : Types.t; dst : int; cond : value; a : value; b : value }
  | Cast of { op : cast; from_ty : Types.t; to_ty : Types.t; dst : int; v : value }
  | Load of { ty : Types.t; dst : int; addr : value }
  | Store of { ty : Types.t; addr : value; v : value }
  | Gep of { dst : int; base : value; index : value; scale : int; offset : int }
  | Call of {
      dst : (int * Types.t) option;
      sym : string;
      args : value array;
      arg_tys : Types.t array;
    }

type terminator =
  | Br of int
  | CondBr of { cond : value; if_true : int; if_false : int }
  | Ret of value option
  | Abort of string

type phi = { ty : Types.t; dst : int; incoming : (int * value) array }

let dst_of = function
  | Binop { dst; _ }
  | OvfFlag { dst; _ }
  | Fbinop { dst; _ }
  | Icmp { dst; _ }
  | Fcmp { dst; _ }
  | Select { dst; _ }
  | Cast { dst; _ }
  | Load { dst; _ }
  | Gep { dst; _ } ->
    Some dst
  | Store _ -> None
  | Call { dst; _ } -> Option.map fst dst

let operands = function
  | Binop { a; b; _ } | OvfFlag { a; b; _ } | Fbinop { a; b; _ } | Icmp { a; b; _ }
  | Fcmp { a; b; _ } ->
    [ a; b ]
  | Select { cond; a; b; _ } -> [ cond; a; b ]
  | Cast { v; _ } -> [ v ]
  | Load { addr; _ } -> [ addr ]
  | Store { addr; v; _ } -> [ addr; v ]
  | Gep { base; index; _ } -> [ base; index ]
  | Call { args; _ } -> Array.to_list args

let with_operands i ops =
  match (i, ops) with
  | Binop r, [ a; b ] -> Binop { r with a; b }
  | OvfFlag r, [ a; b ] -> OvfFlag { r with a; b }
  | Fbinop r, [ a; b ] -> Fbinop { r with a; b }
  | Icmp r, [ a; b ] -> Icmp { r with a; b }
  | Fcmp r, [ a; b ] -> Fcmp { r with a; b }
  | Select r, [ cond; a; b ] -> Select { r with cond; a; b }
  | Cast r, [ v ] -> Cast { r with v }
  | Load r, [ addr ] -> Load { r with addr }
  | Store r, [ addr; v ] -> Store { r with addr; v }
  | Gep r, [ base; index ] -> Gep { r with base; index }
  | Call r, args -> Call { r with args = Array.of_list args }
  | _ -> invalid_arg "Instr.with_operands: arity mismatch"

let with_dst i d =
  match i with
  | Binop r -> Binop { r with dst = d }
  | OvfFlag r -> OvfFlag { r with dst = d }
  | Fbinop r -> Fbinop { r with dst = d }
  | Icmp r -> Icmp { r with dst = d }
  | Fcmp r -> Fcmp { r with dst = d }
  | Select r -> Select { r with dst = d }
  | Cast r -> Cast { r with dst = d }
  | Load r -> Load { r with dst = d }
  | Gep r -> Gep { r with dst = d }
  | Store _ as s -> s
  | Call r -> Call { r with dst = Option.map (fun (_, ty) -> (d, ty)) r.dst }

let has_side_effect = function
  | Store _ | Call _ -> true
  | Binop _ | OvfFlag _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Load _ | Gep _
    ->
    false

let value_equal a b =
  match (a, b) with
  | Vreg x, Vreg y -> x = y
  | Imm x, Imm y -> Int64.equal x y
  | Fimm x, Fimm y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | (Vreg _ | Imm _ | Fimm _), _ -> false

let result_ty = function
  | Binop { ty; _ } -> Some ty
  | OvfFlag _ -> Some Types.I1
  | Fbinop _ -> Some Types.F64
  | Icmp _ -> Some Types.I1
  | Fcmp _ -> Some Types.I1
  | Select { ty; _ } -> Some ty
  | Cast { to_ty; _ } -> Some to_ty
  | Load { ty; _ } -> Some ty
  | Gep _ -> Some Types.Ptr
  | Store _ -> None
  | Call { dst; _ } -> Option.map snd dst

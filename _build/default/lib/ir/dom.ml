type t = {
  idoms : int array;
  pre : int array;
  post : int array;
  kids : int list array;
}

(* Cooper-Harvey-Kennedy: because blocks are RPO-numbered, walking up
   idom chains while comparing ids finds the common dominator. *)
let intersect idoms a b =
  let a = ref a and b = ref b in
  while !a <> !b do
    while !a > !b do
      a := idoms.(!a)
    done;
    while !b > !a do
      b := idoms.(!b)
    done
  done;
  !a

let compute (f : Func.t) =
  let n = Func.n_blocks f in
  let preds = Cfg.predecessors f in
  let idoms = Array.make n (-1) in
  idoms.(0) <- 0;
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 1 to n - 1 do
      let new_idom =
        List.fold_left
          (fun acc p ->
            if idoms.(p) < 0 then acc
            else match acc with None -> Some p | Some a -> Some (intersect idoms p a))
          None preds.(b)
      in
      match new_idom with
      | None -> ()
      | Some d ->
        if idoms.(b) <> d then begin
          idoms.(b) <- d;
          changed := true
        end
    done
  done;
  let kids = Array.make n [] in
  for b = n - 1 downto 1 do
    if idoms.(b) >= 0 then kids.(idoms.(b)) <- b :: kids.(idoms.(b))
  done;
  (* Pre/post-order labeling by iterative DFS over the dominator tree. *)
  let pre = Array.make n 0 and post = Array.make n 0 in
  let counter = ref 0 in
  let stack = Stack.create () in
  Stack.push (0, ref kids.(0)) stack;
  incr counter;
  pre.(0) <- !counter;
  while not (Stack.is_empty stack) do
    let b, rest = Stack.top stack in
    match !rest with
    | [] ->
      ignore (Stack.pop stack);
      incr counter;
      post.(b) <- !counter
    | c :: more ->
      rest := more;
      incr counter;
      pre.(c) <- !counter;
      Stack.push (c, ref kids.(c)) stack
  done;
  { idoms; pre; post; kids }

let idom t b = t.idoms.(b)

let is_ancestor t ~ancestor b =
  t.pre.(ancestor) <= t.pre.(b) && t.post.(b) <= t.post.(ancestor)

let preorder t b = t.pre.(b)

let postorder_label t b = t.post.(b)

let children t b = t.kids.(b)

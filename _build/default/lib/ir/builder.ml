type bb = {
  id : int;
  mutable rev_phis : Instr.phi list;
  mutable rev_instrs : Instr.t list;
  mutable term : Instr.terminator option;
}

type t = {
  func : Func.t;
  mutable bbs : bb array;
  mutable n_bbs : int;
  mutable cursor : int;
  mutable trap_block : int option; (* shared overflow-trap block *)
}

let create ~name ~params =
  let func = Func.create ~name ~params in
  let entry = { id = 0; rev_phis = []; rev_instrs = []; term = None } in
  { func; bbs = Array.make 8 entry; n_bbs = 1; cursor = 0; trap_block = None }

let param t i =
  if i < 0 || i >= Array.length t.func.Func.params then invalid_arg "Builder.param";
  Instr.Vreg i

let new_block t =
  let id = t.n_bbs in
  if id >= Array.length t.bbs then begin
    let bigger = Array.make (2 * Array.length t.bbs) t.bbs.(0) in
    Array.blit t.bbs 0 bigger 0 t.n_bbs;
    t.bbs <- bigger
  end;
  t.bbs.(id) <- { id; rev_phis = []; rev_instrs = []; term = None };
  t.n_bbs <- id + 1;
  id

let switch_to t id =
  if id < 0 || id >= t.n_bbs then invalid_arg "Builder.switch_to";
  t.cursor <- id

let current_block t = t.cursor

let cur t = t.bbs.(t.cursor)

let emit t i =
  let b = cur t in
  if b.term <> None then invalid_arg ("Builder: emitting into terminated block in " ^ t.func.Func.name);
  b.rev_instrs <- i :: b.rev_instrs

let define t ty = Func.fresh_value t.func ty

let binop t op ty a b =
  let dst = define t ty in
  emit t (Instr.Binop { op; ty; dst; a; b });
  Instr.Vreg dst

let fbinop t op a b =
  let dst = define t Types.F64 in
  emit t (Instr.Fbinop { op; dst; a; b });
  Instr.Vreg dst

let icmp t op ty a b =
  let dst = define t Types.I1 in
  emit t (Instr.Icmp { op; ty; dst; a; b });
  Instr.Vreg dst

let fcmp t op a b =
  let dst = define t Types.I1 in
  emit t (Instr.Fcmp { op; dst; a; b });
  Instr.Vreg dst

let select t ty cond a b =
  let dst = define t ty in
  emit t (Instr.Select { ty; dst; cond; a; b });
  Instr.Vreg dst

let cast t op ~from_ty ~to_ty v =
  let dst = define t to_ty in
  emit t (Instr.Cast { op; from_ty; to_ty; dst; v });
  Instr.Vreg dst

let load t ty addr =
  let dst = define t ty in
  emit t (Instr.Load { ty; dst; addr });
  Instr.Vreg dst

let store t ty ~addr v = emit t (Instr.Store { ty; addr; v })

let gep t ~base ~index ~scale ~offset =
  let dst = define t Types.Ptr in
  emit t (Instr.Gep { dst; base; index; scale; offset });
  Instr.Vreg dst

let call t ty sym args =
  let dst = define t ty in
  let argv = Array.of_list (List.map fst args) in
  let tys = Array.of_list (List.map snd args) in
  emit t (Instr.Call { dst = Some (dst, ty); sym; args = argv; arg_tys = tys });
  Instr.Vreg dst

let call_void t sym args =
  let argv = Array.of_list (List.map fst args) in
  let tys = Array.of_list (List.map snd args) in
  emit t (Instr.Call { dst = None; sym; args = argv; arg_tys = tys })

let phi t ty incoming =
  let dst = define t ty in
  let b = cur t in
  b.rev_phis <- { Instr.ty; dst; incoming = Array.of_list incoming } :: b.rev_phis;
  Instr.Vreg dst

let add_phi_incoming t ~block ~dst ~pred v =
  let dst_id = match dst with Instr.Vreg id -> id | _ -> invalid_arg "add_phi_incoming" in
  let b = t.bbs.(block) in
  b.rev_phis <-
    List.map
      (fun (p : Instr.phi) ->
        if p.dst = dst_id then { p with Instr.incoming = Array.append p.incoming [| (pred, v) |] }
        else p)
      b.rev_phis

let set_term t term =
  let b = cur t in
  if b.term <> None then invalid_arg ("Builder: block already terminated in " ^ t.func.Func.name);
  b.term <- Some term

let br t target = set_term t (Instr.Br target)

let condbr t cond ~if_true ~if_false = set_term t (Instr.CondBr { cond; if_true; if_false })

let ret t v = set_term t (Instr.Ret (Some v))

let ret_void t = set_term t (Instr.Ret None)

let abort_ t msg = set_term t (Instr.Abort msg)

let terminated t = (cur t).term <> None

let trap_block t =
  match t.trap_block with
  | Some id -> id
  | None ->
    let saved = t.cursor in
    let id = new_block t in
    switch_to t id;
    abort_ t "integer overflow";
    switch_to t saved;
    t.trap_block <- Some id;
    id

let checked t op ty a b =
  let bop =
    match op with Instr.OAdd -> Instr.Add | Instr.OSub -> Instr.Sub | Instr.OMul -> Instr.Mul
  in
  let result = binop t bop ty a b in
  let flag_dst = define t Types.I1 in
  emit t (Instr.OvfFlag { op; ty; dst = flag_dst; a; b });
  let trap = trap_block t in
  let cont = new_block t in
  condbr t (Instr.Vreg flag_dst) ~if_true:trap ~if_false:cont;
  switch_to t cont;
  result

let finish t =
  let blocks =
    Array.init t.n_bbs (fun i ->
        let b = t.bbs.(i) in
        let term =
          match b.term with
          | Some term -> term
          | None -> invalid_arg (Printf.sprintf "Builder.finish: block %d of %s not terminated" i t.func.Func.name)
        in
        Block.make ~id:i
          ~phis:(List.rev b.rev_phis)
          ~instrs:(List.rev b.rev_instrs)
          ~term)
  in
  t.func.Func.blocks <- blocks;
  t.func

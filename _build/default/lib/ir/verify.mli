(** Structural and SSA well-formedness checks.

    Run in tests and (cheaply) after code generation: every branch
    target exists, every used value is defined exactly once, operand
    types agree with instruction types, and φ incoming edges exactly
    match the block's predecessors. *)

exception Ill_formed of string

val run : Func.t -> unit
(** @raise Ill_formed with a diagnostic on the first violation. *)

val check : Func.t -> (unit, string) result

(** Cheap size metrics over IR functions.

    [instruction_count] is the measure the paper correlates with
    compilation time (Fig. 6) and that the adaptive controller feeds
    into the compile-cost model. *)

val instruction_count : Func.t -> int
(** φ nodes and terminators included. *)

val block_count : Func.t -> int

val value_count : Func.t -> int

val call_count : Func.t -> int

val module_instruction_count : Func.t list -> int

type t = {
  name : string;
  params : Types.t array;
  mutable blocks : Block.t array;
  mutable value_ty : Types.t array;
  mutable n_values : int;
}

let create ~name ~params =
  let params = Array.of_list params in
  let n = Array.length params in
  let value_ty = Array.make (Stdlib.max 16 (2 * n)) Types.I64 in
  Array.blit params 0 value_ty 0 n;
  { name; params; blocks = [||]; value_ty; n_values = n }

let fresh_value t ty =
  let id = t.n_values in
  if id >= Array.length t.value_ty then begin
    let bigger = Array.make (2 * Array.length t.value_ty) Types.I64 in
    Array.blit t.value_ty 0 bigger 0 (Array.length t.value_ty);
    t.value_ty <- bigger
  end;
  t.value_ty.(id) <- ty;
  t.n_values <- id + 1;
  id

let ty_of t id =
  if id < 0 || id >= t.n_values then invalid_arg "Func.ty_of: unknown value";
  t.value_ty.(id)

let value_of_ty_exn t = function
  | Instr.Vreg id -> ty_of t id
  | Instr.Imm _ -> Types.I64
  | Instr.Fimm _ -> Types.F64

let block t id = t.blocks.(id)

let n_blocks t = Array.length t.blocks

let iter_instrs t f =
  Array.iter (fun b -> Array.iter (fun i -> f b i) b.Block.instrs) t.blocks

let copy t =
  {
    t with
    blocks =
      Array.map
        (fun (b : Block.t) ->
          {
            b with
            Block.phis = Array.copy b.Block.phis;
            instrs = Array.copy b.Block.instrs;
          })
        t.blocks;
    value_ty = Array.copy t.value_ty;
  }

let n_instrs t =
  Array.fold_left
    (fun acc (b : Block.t) -> acc + Array.length b.phis + Array.length b.instrs + 1)
    0 t.blocks

let instruction_count = Func.n_instrs

let block_count = Func.n_blocks

let value_count (f : Func.t) = f.Func.n_values

let call_count (f : Func.t) =
  let n = ref 0 in
  Func.iter_instrs f (fun _ i -> match i with Instr.Call _ -> incr n | _ -> ());
  !n

let module_instruction_count fs = List.fold_left (fun acc f -> acc + instruction_count f) 0 fs

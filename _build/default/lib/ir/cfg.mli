(** Control-flow-graph utilities.

    The translator and the liveness algorithm (paper Fig. 11) require
    blocks numbered in reverse postorder; [reorder_rpo] establishes
    that invariant in place, pruning unreachable blocks. *)

val predecessors : Func.t -> int list array
(** [predecessors f].(b) are the ids of blocks branching to [b]. *)

val reverse_postorder : Func.t -> int array
(** Block ids in reverse postorder starting at the entry. Unreachable
    blocks are absent. *)

val reorder_rpo : Func.t -> unit
(** Renumber blocks so that array order = reverse postorder (entry is
    block 0), rewriting branch targets and φ incoming edges, and
    dropping unreachable blocks (φ edges from dropped blocks are
    removed). After this, [b.id = index] holds again.

    Note: a plain RPO does not guarantee that loop bodies occupy
    contiguous label ranges, which the interval-based liveness of the
    bytecode translator depends on; run {!Layout.normalize} (which
    includes this pass) before translating. *)

val apply_order : Func.t -> int array -> unit
(** [apply_order f order] renumbers blocks so that [order.(i)] becomes
    block [i], rewriting targets and φ edges; blocks absent from
    [order] are dropped. [order.(0)] must be the entry block. *)

type t = I1 | I8 | I16 | I32 | I64 | F64 | Ptr

let size_of = function
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 | F64 | Ptr -> 8

let slot_size _ = 8

let is_integer = function
  | I1 | I8 | I16 | I32 | I64 | Ptr -> true
  | F64 -> false

let is_float = function F64 -> true | I1 | I8 | I16 | I32 | I64 | Ptr -> false

let equal (a : t) (b : t) = a = b

let to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F64 -> "f64"
  | Ptr -> "ptr"

let pp fmt t = Format.pp_print_string fmt (to_string t)

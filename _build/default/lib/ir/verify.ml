exception Ill_formed of string

let fail fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let run (f : Func.t) =
  let n = Func.n_blocks f in
  if n = 0 then fail "%s: function has no blocks" f.Func.name;
  (* Unique definitions. *)
  let defined = Array.make f.Func.n_values false in
  for p = 0 to Array.length f.Func.params - 1 do
    defined.(p) <- true
  done;
  let define id where =
    if id < 0 || id >= f.Func.n_values then fail "%s: value %%%d out of range (%s)" f.Func.name id where;
    if defined.(id) then fail "%s: value %%%d defined twice (%s)" f.Func.name id where;
    defined.(id) <- true
  in
  Array.iter
    (fun (b : Block.t) ->
      Array.iter (fun (p : Instr.phi) -> define p.dst (Printf.sprintf "phi in block %d" b.id)) b.phis;
      Array.iter
        (fun i ->
          match Instr.dst_of i with
          | Some d -> define d (Printf.sprintf "block %d" b.id)
          | None -> ())
        b.instrs)
    f.Func.blocks;
  (* Every use refers to a defined value; branch targets in range. *)
  let check_value where = function
    | Instr.Vreg id ->
      if id < 0 || id >= f.Func.n_values || not defined.(id) then
        fail "%s: use of undefined value %%%d (%s)" f.Func.name id where
    | Instr.Imm _ | Instr.Fimm _ -> ()
  in
  let check_target where t =
    if t < 0 || t >= n then fail "%s: branch to missing block %d (%s)" f.Func.name t where
  in
  (* Validate all branch targets before computing predecessors, which
     indexes by target. *)
  Array.iter
    (fun (b : Block.t) ->
      let where = Printf.sprintf "block %d" b.id in
      match b.Block.term with
      | Instr.Br t -> check_target where t
      | Instr.CondBr { if_true; if_false; _ } ->
        check_target where if_true;
        check_target where if_false
      | Instr.Ret _ | Instr.Abort _ -> ())
    f.Func.blocks;
  let preds = Cfg.predecessors f in
  Array.iter
    (fun (b : Block.t) ->
      let where = Printf.sprintf "block %d" b.id in
      if b.id < 0 || b.id >= n || Func.block f b.id != b then
        fail "%s: block id %d does not match its index" f.Func.name b.id;
      Array.iter
        (fun (p : Instr.phi) ->
          let incoming_preds = Array.to_list p.incoming |> List.map fst |> List.sort compare in
          let actual = List.sort compare preds.(b.id) in
          if incoming_preds <> actual then
            fail "%s: phi %%%d in block %d: incoming %s but predecessors %s" f.Func.name p.dst
              b.id
              (String.concat "," (List.map string_of_int incoming_preds))
              (String.concat "," (List.map string_of_int actual));
          Array.iter (fun (_, v) -> check_value where v) p.incoming)
        b.phis;
      Array.iter (fun i -> List.iter (check_value where) (Instr.operands i)) b.instrs;
      (match b.term with
      | Instr.Br t -> check_target where t
      | Instr.CondBr { cond; if_true; if_false } ->
        check_value where cond;
        check_target where if_true;
        check_target where if_false
      | Instr.Ret (Some v) -> check_value where v
      | Instr.Ret None | Instr.Abort _ -> ()))
    f.Func.blocks;
  (* Type sanity for register destinations. *)
  Array.iter
    (fun (b : Block.t) ->
      Array.iter
        (fun i ->
          match (Instr.dst_of i, Instr.result_ty i) with
          | Some d, Some ty ->
            if not (Types.equal (Func.ty_of f d) ty) then
              fail "%s: value %%%d declared %s but instruction yields %s" f.Func.name d
                (Types.to_string (Func.ty_of f d))
                (Types.to_string ty)
          | _ -> ())
        b.instrs)
    f.Func.blocks

let check f = match run f with () -> Ok () | exception Ill_formed m -> Error m

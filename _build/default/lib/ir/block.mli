(** Basic blocks: φ nodes, a straight-line instruction sequence, one
    terminator. Block ids are indices into the owning function's block
    array; the entry block has id 0. *)

type t = {
  id : int;
  mutable phis : Instr.phi array;
  mutable instrs : Instr.t array;
  mutable term : Instr.terminator;
}

val successors : t -> int list
(** Targets of the terminator, in branch order. *)

val make :
  id:int -> phis:Instr.phi list -> instrs:Instr.t list -> term:Instr.terminator -> t

val defined_values : t -> int list
(** Value ids defined in the block (φs first, then instructions). *)

(** Arithmetic semantics shared by every execution backend.

    Register values are canonical: integers sign-extended to 64 bits,
    booleans 0/1, floats as IEEE bits. Defining each operation once
    and reusing it from the bytecode interpreter, the closure compiler
    and the direct IR evaluator makes the backends behave identically
    by construction — the property mode switching relies on.

    Overflow-checked operations and division raise {!Trap.Error}. *)

val sext8 : int64 -> int64

val sext16 : int64 -> int64

val sext32 : int64 -> int64

val canon : width:int -> int64 -> int64
(** Sign-extend the low [width] bits (8/16/32); identity for 64. *)

val add : width:int -> int64 -> int64 -> int64

val sub : width:int -> int64 -> int64 -> int64

val mul : width:int -> int64 -> int64 -> int64

val div : width:int -> int64 -> int64 -> int64
(** @raise Trap.Error on division by zero. *)

val rem : width:int -> int64 -> int64 -> int64

val shl : width:int -> int64 -> int64 -> int64

val lshr : width:int -> int64 -> int64 -> int64

val add_ovf : width:int -> int64 -> int64 -> bool
(** Would [a + b] overflow a signed [width]-bit integer? *)

val sub_ovf : width:int -> int64 -> int64 -> bool

val mul_ovf : width:int -> int64 -> int64 -> bool

val add_chk : width:int -> int64 -> int64 -> int64
(** @raise Trap.Error on overflow. *)

val sub_chk : width:int -> int64 -> int64 -> int64

val mul_chk : width:int -> int64 -> int64 -> int64

val ucmp : width:int -> int64 -> int64 -> int
(** Unsigned comparison of canonical values at the given width;
    negative/zero/positive like [compare]. *)

val bool_i64 : bool -> int64

val fp_of_bits : int64 -> float

val bits_of_fp : float -> int64

type loop = { head : int; first : int; last : int; parent : int; depth : int }

type t = { loops : loop array; inner : int array; head_set : bool array }

let compute (f : Func.t) dom =
  let n = Func.n_blocks f in
  let preds = Cfg.predecessors f in
  (* Back edges b -> h where h dominates b. *)
  let back_edges = Hashtbl.create 8 in
  Array.iter
    (fun (b : Block.t) ->
      List.iter
        (fun s ->
          if Dom.is_ancestor dom ~ancestor:s b.Block.id then begin
            let sources =
              match Hashtbl.find_opt back_edges s with Some l -> l | None -> []
            in
            Hashtbl.replace back_edges s (b.Block.id :: sources)
          end)
        (Block.successors b))
    f.Func.blocks;
  (* Natural loop bodies: walk predecessors from each back-edge source
     until the head. *)
  let bodies =
    Hashtbl.fold
      (fun head sources acc ->
        let in_body = Array.make n false in
        in_body.(head) <- true;
        let work = ref sources in
        let rec drain () =
          match !work with
          | [] -> ()
          | b :: rest ->
            work := rest;
            if not in_body.(b) then begin
              in_body.(b) <- true;
              List.iter (fun p -> if not in_body.(p) then work := p :: !work) preds.(b)
            end;
            drain ()
        in
        drain ();
        (head, in_body) :: acc)
      back_edges []
  in
  (* The root pseudo-loop covers the whole function. *)
  let all = Array.make n true in
  let bodies = (0, all) :: List.filter (fun (h, _) -> h <> 0) bodies in
  let size body = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 body in
  (* Sort by body size descending: the root comes first, parents before
     children. *)
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare (size b) (size a)) bodies |> Array.of_list
  in
  let n_loops = Array.length sorted in
  let sizes = Array.map (fun (_, body) -> size body) sorted in
  (* innermost membership: later (smaller) loops overwrite earlier ones *)
  let inner = Array.make n 0 in
  Array.iteri
    (fun li (_, body) ->
      for b = 0 to n - 1 do
        if body.(b) then inner.(b) <- li
      done)
    sorted;
  (* parent: the smallest strictly-larger loop containing the head *)
  let parent_of li =
    if li = 0 then -1
    else begin
      let head, _ = sorted.(li) in
      let best = ref 0 in
      for lj = 1 to li - 1 do
        let _, body_j = sorted.(lj) in
        if body_j.(head) && sizes.(lj) > sizes.(li) then best := lj
      done;
      !best
    end
  in
  let parents = Array.init n_loops parent_of in
  let depths = Array.make n_loops 0 in
  for li = 1 to n_loops - 1 do
    depths.(li) <- depths.(parents.(li)) + 1
  done;
  let loops =
    Array.mapi
      (fun li (head, body) ->
        let first = ref (n - 1) and last = ref 0 in
        for b = 0 to n - 1 do
          if body.(b) then begin
            if b < !first then first := b;
            if b > !last then last := b
          end
        done;
        { head; first = !first; last = !last; parent = parents.(li); depth = depths.(li) })
      sorted
  in
  let head_set = Array.make n false in
  head_set.(0) <- true;
  Hashtbl.iter (fun h _ -> head_set.(h) <- true) back_edges;
  { loops; inner; head_set }

let loops t = t.loops

let innermost t b = t.inner.(b)

let loop t i = t.loops.(i)

(* Walk a loop up its ancestor chain until its depth is [target]. *)
let rec ascend t l target =
  if t.loops.(l).depth <= target then l else ascend t t.loops.(l).parent target

let lca t a b =
  let da = t.loops.(a).depth and db = t.loops.(b).depth in
  let a = ref (if da > db then ascend t a db else a) in
  let b = ref (if db > da then ascend t b da else b) in
  while !a <> !b do
    a := t.loops.(!a).parent;
    b := t.loops.(!b).parent
  done;
  !a

let outermost_below t ~ancestor l =
  if l = ancestor then ancestor
  else begin
    let cur = ref l in
    while t.loops.(!cur).parent <> ancestor && t.loops.(!cur).parent >= 0 do
      cur := t.loops.(!cur).parent
    done;
    !cur
  end

let is_loop_head t b = t.head_set.(b)

let contains t li b =
  (* li is an ancestor-or-self of b's innermost loop *)
  let rec ascend_to l = l = li || (l >= 0 && ascend_to t.loops.(l).parent) in
  ascend_to t.inner.(b)

let contiguous t =
  (* every loop's body size must equal its interval width *)
  let n = Array.length t.inner in
  let ok = ref true in
  Array.iteri
    (fun li l ->
      let count = ref 0 in
      for b = 0 to n - 1 do
        if contains t li b then incr count
      done;
      if !count <> l.last - l.first + 1 then ok := false)
    t.loops;
  !ok

let n_loops t = Array.length t.loops

type insn = {
  op : Opcode.t;
  a : int;
  b : int;
  c : int;
  d : int;
  e : int;
  lit : int64;
}

type t = {
  name : string;
  code : insn array;
  n_reg_bytes : int;
  const_pool : int64 array;
  param_offsets : int array;
  rt_table : Rt_fn.t array;
  messages : string array;
  src_instr_count : int;
}

let nop_lit = 0L

let pack_scale_offset ~scale ~offset =
  Int64.logor
    (Int64.logand (Int64.of_int scale) 0xFFFFFFFFL)
    (Int64.shift_left (Int64.of_int offset) 32)

let unpack_scale lit = Int64.to_int (Int64.shift_right (Int64.shift_left lit 32) 32)

let unpack_offset lit = Int64.to_int (Int64.shift_right lit 32)

(** IR → bytecode translation (paper Fig. 9).

    Computes liveness, allocates registers, interns constants into the
    register-file prefix (slots 0 and 1 always hold 0 and 1), then
    walks the blocks in reverse postorder emitting opcodes. φ values
    are propagated by copies at the end of each predecessor block —
    safe without parallel-copy resolution because the allocator makes
    all φ sources and destinations of an edge mutually disjoint.

    Macro-op fusion (Section IV-F) recognises and collapses:
    - overflow-checked arithmetic: [op] + [op.ovf] + branch-to-abort
      becomes one trapping [*Chk] opcode;
    - [gep] immediately feeding a load/store becomes [LoadIdx]/
      [StoreIdx];
    - a comparison immediately feeding the block's conditional branch
      becomes a fused compare-and-jump.

    Fusion requires the intermediate value to have exactly one use.

    @raise Unsupported for constructs the VM has no opcode for
    (checked arithmetic on widths other than 32/64, calls whose arity
    exceeds the call opcodes, unresolved symbols). *)

exception Unsupported of string

val translate :
  ?strategy:Regalloc.strategy ->
  ?fuse:bool ->
  symbols:Rt_fn.resolver ->
  Func.t ->
  Bytecode.t
(** Requires the function to be RPO-ordered ({!Cfg.reorder_rpo}) and
    well-formed ({!Verify.run}). [fuse] defaults to [true]; disabling
    it is used by the fusion ablation benchmark. *)

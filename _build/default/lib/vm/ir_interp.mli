(** Direct interpretation of the IR — the analogue of LLVM's built-in
    interpreter in the paper's Fig. 2 ("LLVM IR" point).

    It walks the pointer-heavy IR structure block by block, resolving
    every operand through boxed environments and re-dispatching on the
    instruction type at every step. Deliberately naive: it is both the
    slow baseline the paper measures against and the semantic
    reference the bytecode/closure backends are property-tested
    against. *)

val run :
  Func.t ->
  Aeq_mem.Arena.t ->
  symbols:Rt_fn.resolver ->
  args:int64 array ->
  int64
(** @raise Trap.Error on overflow / division by zero / abort.
    @raise Invalid_argument on unresolved symbols. *)

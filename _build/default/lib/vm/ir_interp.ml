module A = Aeq_mem.Arena
module S = Semantics

let width_of = function
  | Types.I1 | Types.I8 -> 8
  | Types.I16 -> 16
  | Types.I32 -> 32
  | Types.I64 | Types.Ptr -> 64
  | Types.F64 -> invalid_arg "Ir_interp: float width"

let run (f : Func.t) mem ~symbols ~args =
  (* Environment: one boxed slot per SSA value, looked up through an
     association step per operand — intentionally mimicking the cost
     profile of interpreting LLVM's in-memory IR. *)
  let env = Hashtbl.create (2 * f.Func.n_values) in
  Array.iteri
    (fun i _ -> Hashtbl.replace env i (if i < Array.length args then args.(i) else 0L))
    f.Func.params;
  let value = function
    | Instr.Vreg v -> (
      match Hashtbl.find_opt env v with
      | Some x -> x
      | None -> invalid_arg (Printf.sprintf "Ir_interp: undefined value %%%d" v))
    | Instr.Imm n -> n
    | Instr.Fimm x -> Int64.bits_of_float x
  in
  let set d v = Hashtbl.replace env d v in
  let eval_binop (op : Instr.binop) ty a b =
    let w = width_of ty in
    match op with
    | Instr.Add -> S.add ~width:w a b
    | Sub -> S.sub ~width:w a b
    | Mul -> S.mul ~width:w a b
    | Div -> S.div ~width:w a b
    | Rem -> S.rem ~width:w a b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
    | Shl -> S.shl ~width:w a b
    | LShr -> S.lshr ~width:w a b
    | AShr -> Int64.shift_right a (Int64.to_int b land 63)
  in
  let eval_icmp (op : Instr.icmp) ty a b =
    let w = width_of ty in
    let r =
      match op with
      | Instr.Eq -> Int64.equal a b
      | Ne -> not (Int64.equal a b)
      | Slt -> Int64.compare a b < 0
      | Sle -> Int64.compare a b <= 0
      | Sgt -> Int64.compare a b > 0
      | Sge -> Int64.compare a b >= 0
      | Ult -> S.ucmp ~width:w a b < 0
      | Ule -> S.ucmp ~width:w a b <= 0
      | Ugt -> S.ucmp ~width:w a b > 0
      | Uge -> S.ucmp ~width:w a b >= 0
    in
    S.bool_i64 r
  in
  let exec_instr (i : Instr.t) =
    match i with
    | Instr.Binop { op; ty; dst; a; b } -> set dst (eval_binop op ty (value a) (value b))
    | Instr.OvfFlag { op; ty; dst; a; b } ->
      let w = width_of ty in
      let ovf =
        match op with
        | Instr.OAdd -> S.add_ovf ~width:w (value a) (value b)
        | OSub -> S.sub_ovf ~width:w (value a) (value b)
        | OMul -> S.mul_ovf ~width:w (value a) (value b)
      in
      set dst (S.bool_i64 ovf)
    | Instr.Fbinop { op; dst; a; b } ->
      let x = S.fp_of_bits (value a) and y = S.fp_of_bits (value b) in
      let r =
        match op with
        | Instr.FAdd -> x +. y
        | FSub -> x -. y
        | FMul -> x *. y
        | FDiv -> x /. y
      in
      set dst (S.bits_of_fp r)
    | Instr.Icmp { op; ty; dst; a; b } -> set dst (eval_icmp op ty (value a) (value b))
    | Instr.Fcmp { op; dst; a; b } ->
      let x = S.fp_of_bits (value a) and y = S.fp_of_bits (value b) in
      let r =
        match op with
        | Instr.FEq -> x = y
        | FNe -> x <> y
        | FLt -> x < y
        | FLe -> x <= y
        | FGt -> x > y
        | FGe -> x >= y
      in
      set dst (S.bool_i64 r)
    | Instr.Select { dst; cond; a; b; _ } ->
      set dst (if Int64.equal (value cond) 0L then value b else value a)
    | Instr.Cast { op; from_ty; to_ty; dst; v } -> (
      let x = value v in
      match op with
      | Instr.Bitcast -> set dst x
      | SiToFp -> set dst (S.bits_of_fp (Int64.to_float x))
      | FpToSi -> set dst (Int64.of_float (S.fp_of_bits x))
      | Zext -> (
        match from_ty with
        | Types.I1 | Types.I64 | Types.Ptr -> set dst x
        | Types.I8 -> set dst (Int64.logand x 0xFFL)
        | Types.I16 -> set dst (Int64.logand x 0xFFFFL)
        | Types.I32 -> set dst (Int64.logand x 0xFFFFFFFFL)
        | Types.F64 -> invalid_arg "zext from float")
      | Sext -> (
        match from_ty with
        | Types.I1 -> set dst (Int64.neg x)
        | _ -> set dst x)
      | Trunc -> (
        match to_ty with
        | Types.I1 -> set dst (Int64.logand x 1L)
        | Types.I8 -> set dst (S.sext8 x)
        | Types.I16 -> set dst (S.sext16 x)
        | Types.I32 -> set dst (S.sext32 x)
        | Types.I64 | Types.Ptr -> set dst x
        | Types.F64 -> invalid_arg "trunc to float"))
    | Instr.Load { ty; dst; addr } -> (
      let p = Int64.to_int (value addr) in
      match ty with
      | Types.I1 | Types.I8 -> set dst (S.sext8 (Int64.of_int (A.get_i8 mem p)))
      | Types.I16 -> set dst (S.sext16 (Int64.of_int (A.get_i16 mem p)))
      | Types.I32 -> set dst (Int64.of_int32 (A.get_i32 mem p))
      | Types.I64 | Types.Ptr | Types.F64 -> set dst (A.get_i64 mem p))
    | Instr.Store { ty; addr; v } -> (
      let p = Int64.to_int (value addr) in
      let x = value v in
      match ty with
      | Types.I1 | Types.I8 -> A.set_i8 mem p (Int64.to_int x land 0xff)
      | Types.I16 -> A.set_i16 mem p (Int64.to_int x land 0xffff)
      | Types.I32 -> A.set_i32 mem p (Int64.to_int32 x)
      | Types.I64 | Types.Ptr | Types.F64 -> A.set_i64 mem p x)
    | Instr.Gep { dst; base; index; scale; offset } ->
      set dst
        (Int64.add (value base)
           (Int64.of_int ((Int64.to_int (value index) * scale) + offset)))
    | Instr.Call { dst; sym; args = call_args; _ } -> (
      let fn =
        match symbols sym with
        | Some fn -> fn
        | None -> invalid_arg ("Ir_interp: unresolved symbol " ^ sym)
      in
      let a i = value call_args.(i) in
      let r =
        match (fn, Array.length call_args) with
        | Rt_fn.F0 f, 0 -> f ()
        | Rt_fn.F1 f, 1 -> f (a 0)
        | Rt_fn.F2 f, 2 -> f (a 0) (a 1)
        | Rt_fn.F3 f, 3 -> f (a 0) (a 1) (a 2)
        | Rt_fn.F4 f, 4 -> f (a 0) (a 1) (a 2) (a 3)
        | Rt_fn.F5 f, 5 -> f (a 0) (a 1) (a 2) (a 3) (a 4)
        | _ -> invalid_arg ("Ir_interp: arity mismatch calling " ^ sym)
      in
      match dst with Some (d, _) -> set d r | None -> ())
  in
  let rec exec_block prev cur =
    let blk = Func.block f cur in
    (* φ nodes read their values on the incoming edge, in parallel. *)
    let phi_values =
      Array.map
        (fun (p : Instr.phi) ->
          match Array.find_opt (fun (pred, _) -> pred = prev) p.incoming with
          | Some (_, v) -> (p.dst, value v)
          | None -> invalid_arg (Printf.sprintf "Ir_interp: phi %%%d missing edge %d" p.dst prev))
        blk.Block.phis
    in
    Array.iter (fun (d, v) -> set d v) phi_values;
    Array.iter exec_instr blk.Block.instrs;
    match blk.Block.term with
    | Instr.Br t -> exec_block cur t
    | Instr.CondBr { cond; if_true; if_false } ->
      exec_block cur (if Int64.equal (value cond) 0L then if_false else if_true)
    | Instr.Ret (Some v) -> value v
    | Instr.Ret None -> 0L
    | Instr.Abort m -> raise (Trap.Error m)
  in
  exec_block (-1) 0

let insn (i : Bytecode.insn) =
  Printf.sprintf "%-14s %d %d %d %d %d %Ld" (Opcode.to_string i.op) i.a i.b i.c i.d i.e
    i.lit

let program (p : Bytecode.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "; %s: %d insns, %d reg bytes, %d consts\n" p.Bytecode.name
       (Array.length p.Bytecode.code) p.Bytecode.n_reg_bytes
       (Array.length p.Bytecode.const_pool));
  Array.iteri
    (fun idx i -> Buffer.add_string b (Printf.sprintf "0x%04x %s\n" idx (insn i)))
    p.Bytecode.code;
  Buffer.contents b

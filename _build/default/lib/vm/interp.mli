(** The bytecode interpreter — a single dispatch loop over the
    fixed-length instruction array (paper Fig. 8).

    The register file is a byte buffer; callers running many morsels
    reuse one scratch buffer per worker thread to mimic the paper's
    stack allocation. *)

val run :
  Bytecode.t -> Aeq_mem.Arena.t -> ?regs:Bytes.t -> args:int64 array -> unit -> int64
(** Execute the program; returns the [ret] value ([0L] for void
    functions). [regs], if given, must be at least [n_reg_bytes]
    long.

    @raise Trap.Error on overflow / division by zero / abort. *)

val scratch : Bytecode.t -> Bytes.t
(** A register file large enough for the program. *)

lib/vm/opcode.ml:

lib/vm/rt_fn.ml:

lib/vm/translate.ml: Array Block Bytecode Dom Format Func Hashtbl Instr Int64 List Loops Opcode Regalloc Types

lib/vm/ir_interp.mli: Aeq_mem Func Rt_fn

lib/vm/interp.mli: Aeq_mem Bytecode Bytes

lib/vm/disasm.mli: Bytecode

lib/vm/translate.mli: Bytecode Func Regalloc Rt_fn

lib/vm/regalloc.mli: Func Loops

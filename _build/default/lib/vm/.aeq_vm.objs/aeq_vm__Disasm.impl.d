lib/vm/disasm.ml: Array Buffer Bytecode Opcode Printf

lib/vm/bytecode.mli: Opcode Rt_fn

lib/vm/rt_fn.mli:

lib/vm/ir_interp.ml: Aeq_mem Array Block Func Hashtbl Instr Int64 Printf Rt_fn Semantics Trap Types

lib/vm/bytecode.ml: Int64 Opcode Rt_fn

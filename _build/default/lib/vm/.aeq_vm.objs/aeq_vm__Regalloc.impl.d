lib/vm/regalloc.ml: Array Block Func Instr List Loops

lib/vm/interp.ml: Aeq_mem Array Bytecode Bytes Int64 Opcode Rt_fn Semantics Stdlib Trap

(** Runtime helper functions callable from generated code.

    The paper's generated code calls into precompiled C++ (hash-table
    insertion, output buffers, ...). Here helpers are OCaml closures
    over the query's runtime context, taking and returning [int64]
    (floats pass as IEEE bits, pointers as arena offsets). Arities are
    closed — "as we know all exported functions, we can identify
    missing opcodes at compile time" — so the translator rejects a
    call whose arity has no opcode. *)

type t =
  | F0 of (unit -> int64)
  | F1 of (int64 -> int64)
  | F2 of (int64 -> int64 -> int64)
  | F3 of (int64 -> int64 -> int64 -> int64)
  | F4 of (int64 -> int64 -> int64 -> int64 -> int64)
  | F5 of (int64 -> int64 -> int64 -> int64 -> int64 -> int64)

val arity : t -> int

type resolver = string -> t option
(** Symbol table handed to the translator / compiler. *)

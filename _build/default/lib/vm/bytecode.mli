(** Translated VM programs.

    A program is an array of fixed-length instructions over a byte-
    addressed register file ([a]/[b]/[c]/[d]/[e] are register byte
    offsets, branch targets, or small immediates depending on the
    opcode; [lit] carries literals such as packed GEP scale/offset or
    runtime-function indices). The register file prefix holds the
    constant pool (slots 0 and 1 are always the constants 0 and 1, as
    in the paper) followed by the function parameters. *)

type insn = {
  op : Opcode.t;
  a : int;
  b : int;
  c : int;
  d : int;
  e : int;
  lit : int64;
}

type t = {
  name : string;
  code : insn array;
  n_reg_bytes : int;  (** register-file size — the paper's Sec. IV-C metric *)
  const_pool : int64 array;  (** copied into the register-file prefix on entry *)
  param_offsets : int array;  (** register slot of each parameter *)
  rt_table : Rt_fn.t array;  (** resolved runtime-call targets *)
  messages : string array;  (** abort messages, indexed by [AbortOp.a] *)
  src_instr_count : int;  (** IR size this was translated from *)
}

val nop_lit : int64

val pack_scale_offset : scale:int -> offset:int -> int64
(** GEP literals: scale in the low 32 bits, byte offset in the high
    32, both as signed values with |x| < 2^31. *)

val unpack_scale : int64 -> int

val unpack_offset : int64 -> int

type t =
  | F0 of (unit -> int64)
  | F1 of (int64 -> int64)
  | F2 of (int64 -> int64 -> int64)
  | F3 of (int64 -> int64 -> int64 -> int64)
  | F4 of (int64 -> int64 -> int64 -> int64 -> int64)
  | F5 of (int64 -> int64 -> int64 -> int64 -> int64 -> int64)

let arity = function F0 _ -> 0 | F1 _ -> 1 | F2 _ -> 2 | F3 _ -> 3 | F4 _ -> 4 | F5 _ -> 5

type resolver = string -> t option

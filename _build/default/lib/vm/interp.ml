module A = Aeq_mem.Arena
module S = Semantics

let scratch (p : Bytecode.t) = Bytes.make (Stdlib.max 16 p.Bytecode.n_reg_bytes) '\000'

let[@inline] g regs off = Bytes.get_int64_ne regs off

let[@inline] s regs off v = Bytes.set_int64_ne regs off v

let[@inline] gf regs off = Int64.float_of_bits (Bytes.get_int64_ne regs off)

let[@inline] sf regs off v = Bytes.set_int64_ne regs off (Int64.bits_of_float v)

let[@inline] gp regs off = Int64.to_int (Bytes.get_int64_ne regs off)

let run (p : Bytecode.t) mem ?regs ~args () =
  let regs = match regs with Some r -> r | None -> scratch p in
  Array.iteri (fun i c -> s regs (8 * i) c) p.Bytecode.const_pool;
  Array.iteri
    (fun i off -> s regs off (if i < Array.length args then args.(i) else 0L))
    p.Bytecode.param_offsets;
  let code = p.Bytecode.code in
  let tbl = p.Bytecode.rt_table in
  let rec go ip =
    let i = Array.unsafe_get code ip in
    match i.Bytecode.op with
    | Opcode.Mov ->
      s regs i.a (g regs i.b);
      go (ip + 1)
    | Add_i8 ->
      s regs i.a (S.add ~width:8 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Add_i16 ->
      s regs i.a (S.add ~width:16 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Add_i32 ->
      s regs i.a (S.add ~width:32 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Add_i64 ->
      s regs i.a (Int64.add (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Sub_i8 ->
      s regs i.a (S.sub ~width:8 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Sub_i16 ->
      s regs i.a (S.sub ~width:16 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Sub_i32 ->
      s regs i.a (S.sub ~width:32 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Sub_i64 ->
      s regs i.a (Int64.sub (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Mul_i8 ->
      s regs i.a (S.mul ~width:8 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Mul_i16 ->
      s regs i.a (S.mul ~width:16 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Mul_i32 ->
      s regs i.a (S.mul ~width:32 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Mul_i64 ->
      s regs i.a (Int64.mul (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Div_i8 ->
      s regs i.a (S.div ~width:8 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Div_i16 ->
      s regs i.a (S.div ~width:16 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Div_i32 ->
      s regs i.a (S.div ~width:32 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Div_i64 ->
      s regs i.a (S.div ~width:64 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Rem_i8 ->
      s regs i.a (S.rem ~width:8 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Rem_i16 ->
      s regs i.a (S.rem ~width:16 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Rem_i32 ->
      s regs i.a (S.rem ~width:32 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Rem_i64 ->
      s regs i.a (S.rem ~width:64 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | And64 ->
      s regs i.a (Int64.logand (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Or64 ->
      s regs i.a (Int64.logor (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Xor64 ->
      s regs i.a (Int64.logxor (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Shl_i8 ->
      s regs i.a (S.shl ~width:8 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Shl_i16 ->
      s regs i.a (S.shl ~width:16 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Shl_i32 ->
      s regs i.a (S.shl ~width:32 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | Shl_i64 ->
      s regs i.a (S.shl ~width:64 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | LShr_i8 ->
      s regs i.a (S.lshr ~width:8 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | LShr_i16 ->
      s regs i.a (S.lshr ~width:16 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | LShr_i32 ->
      s regs i.a (S.lshr ~width:32 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | LShr_i64 ->
      s regs i.a (S.lshr ~width:64 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | AShr64 ->
      s regs i.a (Int64.shift_right (g regs i.b) (Int64.to_int (g regs i.c) land 63));
      go (ip + 1)
    | AddChk_i32 ->
      s regs i.a (S.add_chk ~width:32 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | AddChk_i64 ->
      s regs i.a (S.add_chk ~width:64 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | SubChk_i32 ->
      s regs i.a (S.sub_chk ~width:32 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | SubChk_i64 ->
      s regs i.a (S.sub_chk ~width:64 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | MulChk_i32 ->
      s regs i.a (S.mul_chk ~width:32 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | MulChk_i64 ->
      s regs i.a (S.mul_chk ~width:64 (g regs i.b) (g regs i.c));
      go (ip + 1)
    | OvfAdd_i32 ->
      s regs i.a (S.bool_i64 (S.add_ovf ~width:32 (g regs i.b) (g regs i.c)));
      go (ip + 1)
    | OvfAdd_i64 ->
      s regs i.a (S.bool_i64 (S.add_ovf ~width:64 (g regs i.b) (g regs i.c)));
      go (ip + 1)
    | OvfSub_i32 ->
      s regs i.a (S.bool_i64 (S.sub_ovf ~width:32 (g regs i.b) (g regs i.c)));
      go (ip + 1)
    | OvfSub_i64 ->
      s regs i.a (S.bool_i64 (S.sub_ovf ~width:64 (g regs i.b) (g regs i.c)));
      go (ip + 1)
    | OvfMul_i32 ->
      s regs i.a (S.bool_i64 (S.mul_ovf ~width:32 (g regs i.b) (g regs i.c)));
      go (ip + 1)
    | OvfMul_i64 ->
      s regs i.a (S.bool_i64 (S.mul_ovf ~width:64 (g regs i.b) (g regs i.c)));
      go (ip + 1)
    | FAdd ->
      sf regs i.a (gf regs i.b +. gf regs i.c);
      go (ip + 1)
    | FSub ->
      sf regs i.a (gf regs i.b -. gf regs i.c);
      go (ip + 1)
    | FMul ->
      sf regs i.a (gf regs i.b *. gf regs i.c);
      go (ip + 1)
    | FDiv ->
      sf regs i.a (gf regs i.b /. gf regs i.c);
      go (ip + 1)
    | CmpEq ->
      s regs i.a (S.bool_i64 (Int64.equal (g regs i.b) (g regs i.c)));
      go (ip + 1)
    | CmpNe ->
      s regs i.a (S.bool_i64 (not (Int64.equal (g regs i.b) (g regs i.c))));
      go (ip + 1)
    | CmpSlt ->
      s regs i.a (S.bool_i64 (Int64.compare (g regs i.b) (g regs i.c) < 0));
      go (ip + 1)
    | CmpSle ->
      s regs i.a (S.bool_i64 (Int64.compare (g regs i.b) (g regs i.c) <= 0));
      go (ip + 1)
    | CmpSgt ->
      s regs i.a (S.bool_i64 (Int64.compare (g regs i.b) (g regs i.c) > 0));
      go (ip + 1)
    | CmpSge ->
      s regs i.a (S.bool_i64 (Int64.compare (g regs i.b) (g regs i.c) >= 0));
      go (ip + 1)
    | CmpUlt_i8 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:8 (g regs i.b) (g regs i.c) < 0));
      go (ip + 1)
    | CmpUlt_i16 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:16 (g regs i.b) (g regs i.c) < 0));
      go (ip + 1)
    | CmpUlt_i32 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:32 (g regs i.b) (g regs i.c) < 0));
      go (ip + 1)
    | CmpUlt_i64 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:64 (g regs i.b) (g regs i.c) < 0));
      go (ip + 1)
    | CmpUle_i8 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:8 (g regs i.b) (g regs i.c) <= 0));
      go (ip + 1)
    | CmpUle_i16 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:16 (g regs i.b) (g regs i.c) <= 0));
      go (ip + 1)
    | CmpUle_i32 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:32 (g regs i.b) (g regs i.c) <= 0));
      go (ip + 1)
    | CmpUle_i64 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:64 (g regs i.b) (g regs i.c) <= 0));
      go (ip + 1)
    | CmpUgt_i8 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:8 (g regs i.b) (g regs i.c) > 0));
      go (ip + 1)
    | CmpUgt_i16 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:16 (g regs i.b) (g regs i.c) > 0));
      go (ip + 1)
    | CmpUgt_i32 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:32 (g regs i.b) (g regs i.c) > 0));
      go (ip + 1)
    | CmpUgt_i64 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:64 (g regs i.b) (g regs i.c) > 0));
      go (ip + 1)
    | CmpUge_i8 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:8 (g regs i.b) (g regs i.c) >= 0));
      go (ip + 1)
    | CmpUge_i16 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:16 (g regs i.b) (g regs i.c) >= 0));
      go (ip + 1)
    | CmpUge_i32 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:32 (g regs i.b) (g regs i.c) >= 0));
      go (ip + 1)
    | CmpUge_i64 ->
      s regs i.a (S.bool_i64 (S.ucmp ~width:64 (g regs i.b) (g regs i.c) >= 0));
      go (ip + 1)
    | FCmpEq ->
      s regs i.a (S.bool_i64 (gf regs i.b = gf regs i.c));
      go (ip + 1)
    | FCmpNe ->
      s regs i.a (S.bool_i64 (gf regs i.b <> gf regs i.c));
      go (ip + 1)
    | FCmpLt ->
      s regs i.a (S.bool_i64 (gf regs i.b < gf regs i.c));
      go (ip + 1)
    | FCmpLe ->
      s regs i.a (S.bool_i64 (gf regs i.b <= gf regs i.c));
      go (ip + 1)
    | FCmpGt ->
      s regs i.a (S.bool_i64 (gf regs i.b > gf regs i.c));
      go (ip + 1)
    | FCmpGe ->
      s regs i.a (S.bool_i64 (gf regs i.b >= gf regs i.c));
      go (ip + 1)
    | SelectOp ->
      s regs i.a (if Int64.equal (g regs i.b) 0L then g regs i.d else g regs i.c);
      go (ip + 1)
    | Zext8 ->
      s regs i.a (Int64.logand (g regs i.b) 0xFFL);
      go (ip + 1)
    | Zext16 ->
      s regs i.a (Int64.logand (g regs i.b) 0xFFFFL);
      go (ip + 1)
    | Zext32 ->
      s regs i.a (Int64.logand (g regs i.b) 0xFFFFFFFFL);
      go (ip + 1)
    | Trunc1 ->
      s regs i.a (Int64.logand (g regs i.b) 1L);
      go (ip + 1)
    | Trunc8 ->
      s regs i.a (S.sext8 (g regs i.b));
      go (ip + 1)
    | Trunc16 ->
      s regs i.a (S.sext16 (g regs i.b));
      go (ip + 1)
    | Trunc32 ->
      s regs i.a (S.sext32 (g regs i.b));
      go (ip + 1)
    | SiToFp ->
      sf regs i.a (Int64.to_float (g regs i.b));
      go (ip + 1)
    | FpToSi ->
      s regs i.a (Int64.of_float (gf regs i.b));
      go (ip + 1)
    | Load8 ->
      s regs i.a (S.sext8 (Int64.of_int (A.get_i8 mem (gp regs i.b))));
      go (ip + 1)
    | Load16 ->
      s regs i.a (S.sext16 (Int64.of_int (A.get_i16 mem (gp regs i.b))));
      go (ip + 1)
    | Load32 ->
      s regs i.a (Int64.of_int32 (A.get_i32 mem (gp regs i.b)));
      go (ip + 1)
    | Load64 ->
      s regs i.a (A.get_i64 mem (gp regs i.b));
      go (ip + 1)
    | Store8 ->
      A.set_i8 mem (gp regs i.b) (Int64.to_int (g regs i.a) land 0xff);
      go (ip + 1)
    | Store16 ->
      A.set_i16 mem (gp regs i.b) (Int64.to_int (g regs i.a) land 0xffff);
      go (ip + 1)
    | Store32 ->
      A.set_i32 mem (gp regs i.b) (Int64.to_int32 (g regs i.a));
      go (ip + 1)
    | Store64 ->
      A.set_i64 mem (gp regs i.b) (g regs i.a);
      go (ip + 1)
    | Gep ->
      s regs i.a
        (Int64.add (g regs i.b)
           (Int64.of_int
              ((Int64.to_int (g regs i.c) * Bytecode.unpack_scale i.lit)
              + Bytecode.unpack_offset i.lit)));
      go (ip + 1)
    | GepConst ->
      s regs i.a (Int64.add (g regs i.b) i.lit);
      go (ip + 1)
    | LoadIdx8 ->
      let addr =
        gp regs i.b + (Int64.to_int (g regs i.c) * Bytecode.unpack_scale i.lit)
        + Bytecode.unpack_offset i.lit
      in
      s regs i.a (S.sext8 (Int64.of_int (A.get_i8 mem addr)));
      go (ip + 1)
    | LoadIdx16 ->
      let addr =
        gp regs i.b + (Int64.to_int (g regs i.c) * Bytecode.unpack_scale i.lit)
        + Bytecode.unpack_offset i.lit
      in
      s regs i.a (S.sext16 (Int64.of_int (A.get_i16 mem addr)));
      go (ip + 1)
    | LoadIdx32 ->
      let addr =
        gp regs i.b + (Int64.to_int (g regs i.c) * Bytecode.unpack_scale i.lit)
        + Bytecode.unpack_offset i.lit
      in
      s regs i.a (Int64.of_int32 (A.get_i32 mem addr));
      go (ip + 1)
    | LoadIdx64 ->
      let addr =
        gp regs i.b + (Int64.to_int (g regs i.c) * Bytecode.unpack_scale i.lit)
        + Bytecode.unpack_offset i.lit
      in
      s regs i.a (A.get_i64 mem addr);
      go (ip + 1)
    | StoreIdx8 ->
      let addr =
        gp regs i.b + (Int64.to_int (g regs i.c) * Bytecode.unpack_scale i.lit)
        + Bytecode.unpack_offset i.lit
      in
      A.set_i8 mem addr (Int64.to_int (g regs i.a) land 0xff);
      go (ip + 1)
    | StoreIdx16 ->
      let addr =
        gp regs i.b + (Int64.to_int (g regs i.c) * Bytecode.unpack_scale i.lit)
        + Bytecode.unpack_offset i.lit
      in
      A.set_i16 mem addr (Int64.to_int (g regs i.a) land 0xffff);
      go (ip + 1)
    | StoreIdx32 ->
      let addr =
        gp regs i.b + (Int64.to_int (g regs i.c) * Bytecode.unpack_scale i.lit)
        + Bytecode.unpack_offset i.lit
      in
      A.set_i32 mem addr (Int64.to_int32 (g regs i.a));
      go (ip + 1)
    | StoreIdx64 ->
      let addr =
        gp regs i.b + (Int64.to_int (g regs i.c) * Bytecode.unpack_scale i.lit)
        + Bytecode.unpack_offset i.lit
      in
      A.set_i64 mem addr (g regs i.a);
      go (ip + 1)
    | Jmp -> go i.a
    | CondJmp -> if Int64.equal (g regs i.a) 0L then go i.c else go i.b
    | JmpEq -> if Int64.equal (g regs i.a) (g regs i.b) then go i.c else go i.d
    | JmpNe -> if Int64.equal (g regs i.a) (g regs i.b) then go i.d else go i.c
    | JmpSlt -> if Int64.compare (g regs i.a) (g regs i.b) < 0 then go i.c else go i.d
    | JmpSle -> if Int64.compare (g regs i.a) (g regs i.b) <= 0 then go i.c else go i.d
    | JmpSgt -> if Int64.compare (g regs i.a) (g regs i.b) > 0 then go i.c else go i.d
    | JmpSge -> if Int64.compare (g regs i.a) (g regs i.b) >= 0 then go i.c else go i.d
    | RetVal -> g regs i.a
    | RetVoid -> 0L
    | AbortOp -> raise (Trap.Error p.Bytecode.messages.(i.a))
    | CallV0 ->
      (match Array.unsafe_get tbl (Int64.to_int i.lit) with
      | Rt_fn.F0 f -> ignore (f ())
      | _ -> assert false);
      go (ip + 1)
    | CallV1 ->
      (match Array.unsafe_get tbl (Int64.to_int i.lit) with
      | Rt_fn.F1 f -> ignore (f (g regs i.a))
      | _ -> assert false);
      go (ip + 1)
    | CallV2 ->
      (match Array.unsafe_get tbl (Int64.to_int i.lit) with
      | Rt_fn.F2 f -> ignore (f (g regs i.a) (g regs i.b))
      | _ -> assert false);
      go (ip + 1)
    | CallV3 ->
      (match Array.unsafe_get tbl (Int64.to_int i.lit) with
      | Rt_fn.F3 f -> ignore (f (g regs i.a) (g regs i.b) (g regs i.c))
      | _ -> assert false);
      go (ip + 1)
    | CallV4 ->
      (match Array.unsafe_get tbl (Int64.to_int i.lit) with
      | Rt_fn.F4 f -> ignore (f (g regs i.a) (g regs i.b) (g regs i.c) (g regs i.d))
      | _ -> assert false);
      go (ip + 1)
    | CallV5 ->
      (match Array.unsafe_get tbl (Int64.to_int i.lit) with
      | Rt_fn.F5 f ->
        ignore (f (g regs i.a) (g regs i.b) (g regs i.c) (g regs i.d) (g regs i.e))
      | _ -> assert false);
      go (ip + 1)
    | CallR0 ->
      (match Array.unsafe_get tbl (Int64.to_int i.lit) with
      | Rt_fn.F0 f -> s regs i.a (f ())
      | _ -> assert false);
      go (ip + 1)
    | CallR1 ->
      (match Array.unsafe_get tbl (Int64.to_int i.lit) with
      | Rt_fn.F1 f -> s regs i.a (f (g regs i.b))
      | _ -> assert false);
      go (ip + 1)
    | CallR2 ->
      (match Array.unsafe_get tbl (Int64.to_int i.lit) with
      | Rt_fn.F2 f -> s regs i.a (f (g regs i.b) (g regs i.c))
      | _ -> assert false);
      go (ip + 1)
    | CallR3 ->
      (match Array.unsafe_get tbl (Int64.to_int i.lit) with
      | Rt_fn.F3 f -> s regs i.a (f (g regs i.b) (g regs i.c) (g regs i.d))
      | _ -> assert false);
      go (ip + 1)
    | CallR4 ->
      (match Array.unsafe_get tbl (Int64.to_int i.lit) with
      | Rt_fn.F4 f -> s regs i.a (f (g regs i.b) (g regs i.c) (g regs i.d) (g regs i.e))
      | _ -> assert false);
      go (ip + 1)
  in
  go 0

type strategy = Loop_aware | Window of int | No_reuse

type result = { slot_offset : int array; n_reg_bytes : int; n_dynamic_slots : int }

(* Instruction positions: block b spans [bstart.(b), bend.(b)]; φs sit
   at bstart, instructions follow, the terminator is at bend. *)
let positions (f : Func.t) =
  let n = Func.n_blocks f in
  let bstart = Array.make n 0 and bend = Array.make n 0 in
  let p = ref 0 in
  for b = 0 to n - 1 do
    let blk = Func.block f b in
    bstart.(b) <- !p;
    p := !p + 1 + Array.length blk.Block.instrs;
    bend.(b) <- !p;
    incr p
  done;
  (bstart, bend, !p)

(* Enumerate every definition/use mention of every non-parameter value
   as (value, block, position). φ semantics per the paper: arguments
   are read at the end of the incoming block; the φ destination is
   written there as well and read in its own block. *)
let iter_mentions (f : Func.t) ~bstart ~bend ~(emit : int -> int -> int -> unit) =
  let n_params = Array.length f.Func.params in
  let mention v b p = if v >= n_params then emit v b p in
  let operand b p = function Instr.Vreg v -> mention v b p | Instr.Imm _ | Instr.Fimm _ -> () in
  Array.iter
    (fun (blk : Block.t) ->
      let b = blk.Block.id in
      Array.iter
        (fun (phi : Instr.phi) ->
          mention phi.dst b bstart.(b);
          Array.iter
            (fun (pred, v) ->
              mention phi.dst pred bend.(pred);
              operand pred bend.(pred) v)
            phi.incoming)
        blk.Block.phis;
      Array.iteri
        (fun i instr ->
          let p = bstart.(b) + 1 + i in
          (match Instr.dst_of instr with Some d -> mention d b p | None -> ());
          List.iter (operand b p) (Instr.operands instr))
        blk.Block.instrs;
      (match blk.Block.term with
      | Instr.CondBr { cond; _ } -> operand b bend.(b) cond
      | Instr.Ret (Some v) -> operand b bend.(b) v
      | Instr.Br _ | Instr.Ret None | Instr.Abort _ -> ()))
    f.Func.blocks

type iv = {
  mutable lo_block : int;
  mutable hi_block : int;
  mutable lo_pos : int;
  mutable hi_pos : int;
  mutable cv : int; (* innermost loop containing all mentions (C_v) *)
  mutable seen : bool;
}

let fresh_iv () =
  { lo_block = max_int; hi_block = -1; lo_pos = max_int; hi_pos = -1; cv = -1; seen = false }

(* The two-phase computation of Fig. 11: first find C_v (the least
   common loop of all mention blocks), then lift each mention to the
   outermost loop below C_v that contains it. *)
let compute_intervals (f : Func.t) (loops : Loops.t) ~bstart ~bend =
  let nv = f.Func.n_values in
  let ivs = Array.init nv (fun _ -> fresh_iv ()) in
  iter_mentions f ~bstart ~bend ~emit:(fun v b p ->
      let iv = ivs.(v) in
      if b < iv.lo_block then iv.lo_block <- b;
      if b > iv.hi_block then iv.hi_block <- b;
      if p < iv.lo_pos then iv.lo_pos <- p;
      if p > iv.hi_pos then iv.hi_pos <- p;
      let l = Loops.innermost loops b in
      iv.cv <- (if iv.seen then Loops.lca loops iv.cv l else l);
      iv.seen <- true);
  (* Second pass: loop extension. *)
  iter_mentions f ~bstart ~bend ~emit:(fun v b _ ->
      let iv = ivs.(v) in
      let inner = Loops.innermost loops b in
      if inner <> iv.cv then begin
        let lifted = Loops.outermost_below loops ~ancestor:iv.cv inner in
        let lp = Loops.loop loops lifted in
        if lp.Loops.first < iv.lo_block then iv.lo_block <- lp.Loops.first;
        if lp.Loops.last > iv.hi_block then iv.hi_block <- lp.Loops.last
      end);
  ivs

let block_intervals f loops =
  let bstart, bend, _ = positions f in
  let ivs = compute_intervals f loops ~bstart ~bend in
  Array.map
    (fun iv -> if iv.seen then (iv.lo_block, iv.hi_block) else (0, Func.n_blocks f - 1))
    ivs

let allocate strategy (f : Func.t) (loops : Loops.t) ~base_offset ~param_offsets =
  let nv = f.Func.n_values in
  let n_params = Array.length f.Func.params in
  let slot_offset = Array.make nv (-1) in
  Array.iteri (fun i off -> slot_offset.(i) <- off) param_offsets;
  let bstart, bend, n_pos = positions f in
  let n_blocks = Func.n_blocks f in
  match strategy with
  | No_reuse ->
    let next = ref 0 in
    let ivs = compute_intervals f loops ~bstart ~bend in
    for v = n_params to nv - 1 do
      if ivs.(v).seen then begin
        slot_offset.(v) <- base_offset + (8 * !next);
        incr next
      end
    done;
    { slot_offset; n_reg_bytes = base_offset + (8 * !next); n_dynamic_slots = !next }
  | Loop_aware | Window _ ->
    let ivs = compute_intervals f loops ~bstart ~bend in
    (* Final position ranges: a single-block value keeps its exact
       positions (on-demand allocation / release-at-last-use); a
       multi-block one is live from the start of its first block to
       the end of its last. *)
    let lo = Array.make nv 0 and hi = Array.make nv 0 in
    for v = n_params to nv - 1 do
      let iv = ivs.(v) in
      if iv.seen then begin
        (match strategy with
        | Window k when iv.hi_block - iv.lo_block >= k ->
          iv.lo_block <- 0;
          iv.hi_block <- n_blocks - 1
        | _ -> ());
        if iv.lo_block = iv.hi_block then begin
          lo.(v) <- iv.lo_pos;
          hi.(v) <- iv.hi_pos
        end
        else begin
          lo.(v) <- bstart.(iv.lo_block);
          hi.(v) <- bend.(iv.hi_block)
        end
      end
    done;
    (* Bucketed linear sweep. Allocation happens before release at the
       same position, so boundary-sharing values never alias — this is
       what makes the sequential φ copies safe. *)
    let starts = Array.make (n_pos + 1) [] and ends = Array.make (n_pos + 1) [] in
    for v = n_params to nv - 1 do
      if ivs.(v).seen then begin
        starts.(lo.(v)) <- v :: starts.(lo.(v));
        ends.(hi.(v)) <- v :: ends.(hi.(v))
      end
    done;
    let free = ref [] in
    let next = ref 0 in
    let slot_of = Array.make nv (-1) in
    for p = 0 to n_pos do
      List.iter
        (fun v ->
          let s =
            match !free with
            | s :: rest ->
              free := rest;
              s
            | [] ->
              let s = !next in
              incr next;
              s
          in
          slot_of.(v) <- s)
        starts.(p);
      List.iter (fun v -> free := slot_of.(v) :: !free) ends.(p)
    done;
    for v = n_params to nv - 1 do
      if slot_of.(v) >= 0 then slot_offset.(v) <- base_offset + (8 * slot_of.(v))
    done;
    { slot_offset; n_reg_bytes = base_offset + (8 * !next); n_dynamic_slots = !next }

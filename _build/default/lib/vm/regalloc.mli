(** Register allocation for the bytecode VM — the paper's linear-time
    liveness algorithm (Section IV-C/D, Figs. 9–12).

    The VM uses virtual registers (byte slots in a register file), so
    allocation only has to (1) give every SSA value a slot, (2) share
    slots only between values whose lifetimes cannot overlap, and
    (3) keep the register file small enough to stay L1-resident —
    in linear time even for functions with thousands of blocks.

    Lifetimes are computed as a single [first_block, last_block]
    interval in reverse-postorder block numbering, extended to
    enclosing-loop boundaries exactly as Fig. 10/11 prescribe: a value
    used inside a loop that does not contain its definition must stay
    live for the whole loop (the loop may branch back before the
    definition is re-executed). φ arguments are read at the end of the
    incoming block, and the φ result is also written there — this
    makes all φ sources and destinations of an edge mutually
    overlapping, so the sequential copies the translator emits can
    never clobber each other (no parallel-copy "swap problem").

    Three strategies are provided for the paper's Section IV-C
    ablation. All three are sound; they differ only in how tight the
    computed lifetime is:
    - {!Loop_aware}: the paper's algorithm;
    - {!Window}: values whose lifetime spans [>= k] blocks are treated
      as live for the whole function (the "fixed window of basic
      blocks" strategy of some JITs);
    - {!No_reuse}: every value gets its own slot. *)

type strategy = Loop_aware | Window of int | No_reuse

type result = {
  slot_offset : int array;
      (** value id -> byte offset into the register file; [-1] for
          values that are never mentioned *)
  n_reg_bytes : int;  (** total register-file size in bytes *)
  n_dynamic_slots : int;  (** slots used beyond constants/params *)
}

val block_intervals : Func.t -> Loops.t -> (int * int) array
(** Per-value [ (first_block, last_block) ] lifetime after loop
    extension, for tests and the Section IV-C report. Parameters get
    the whole function. *)

val allocate :
  strategy ->
  Func.t ->
  Loops.t ->
  base_offset:int ->
  param_offsets:int array ->
  result
(** [allocate strategy f loops ~base_offset ~param_offsets] assigns
    dynamic slots starting at byte [base_offset]. Parameters are
    pinned to the supplied offsets (they live in the register-file
    prefix next to the constant pool). Requires [f] RPO-ordered. *)

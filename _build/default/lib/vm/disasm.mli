(** Bytecode disassembler, producing the textual form shown in the
    paper's Fig. 5 ([0x00 load_i64 40 8 0] ...). For debugging and
    golden tests. *)

val insn : Bytecode.insn -> string

val program : Bytecode.t -> string

lib/plan/explain.mli: Physical

lib/plan/physical.mli: Aeq_rt Aeq_storage Scalar

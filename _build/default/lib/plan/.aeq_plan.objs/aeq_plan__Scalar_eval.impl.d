lib/plan/scalar_eval.ml: Aeq_ir Aeq_rt Aeq_sql Aeq_storage Int64 Scalar

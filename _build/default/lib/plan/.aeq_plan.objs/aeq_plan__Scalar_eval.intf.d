lib/plan/scalar_eval.mli: Scalar

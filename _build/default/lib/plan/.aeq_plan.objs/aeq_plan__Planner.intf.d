lib/plan/planner.mli: Aeq_sql Aeq_storage Physical

lib/plan/scalar.mli: Aeq_sql Aeq_storage

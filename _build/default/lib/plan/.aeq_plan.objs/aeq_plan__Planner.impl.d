lib/plan/planner.ml: Aeq_rt Aeq_sql Aeq_storage Array Format Hashtbl Int64 List Option Physical Printf Scalar String

lib/plan/scalar.ml: Aeq_sql Aeq_storage Int64 List Printf String

lib/plan/physical.ml: Aeq_rt Aeq_storage Array List Scalar

lib/plan/explain.ml: Aeq_storage Array Buffer List Physical Printf Scalar String

(** Physical query plans: a list of pipelines over shared runtime
    objects, the unit at which the adaptive framework tracks progress
    and chooses execution modes.

    Runtime object ids (hash tables, aggregation table, output
    buffers, dictionary-predicate bitmaps) are assigned densely at
    planning time; the driver creates the objects in the same order at
    query setup, so generated code can reference them as integer
    constants. *)

type ht_spec = {
  ht_build_tref : int;
  ht_key : Scalar.t;  (** over the build table's columns *)
  ht_payload : (int * int) list;  (** (column index, payload byte offset) *)
  ht_payload_bytes : int;
  ht_expected : int;  (** sizing hint: build-source row count *)
}

type probe = {
  pr_ht : int;
  pr_key : Scalar.t;  (** over columns available at this point *)
  pr_tref : int;  (** table instance this probe makes available *)
  pr_filters : Scalar.t list;  (** evaluated inside the match loop *)
}

type agg_cfg = {
  agg_key_arity : int;  (** 0, 1 or 2 *)
  agg_accs : (Aeq_rt.Agg.acc_kind * Aeq_storage.Dtype.t) list;
}

type out_cfg = {
  out_names : string list;
  out_dtypes : Aeq_storage.Dtype.t list;
  out_row_bytes : int;
}

type sink =
  | S_build of { ht : int; key : Scalar.t; payload : (int * Scalar.t) list }
      (** (payload byte offset, value) *)
  | S_agg of {
      agg : int;
      keys : Scalar.t list;
      accs : (Aeq_rt.Agg.acc_kind * Scalar.t option) list;
    }
  | S_out of { out : int; exprs : Scalar.t list }

type source = Src_scan of { tref : int } | Src_agg_scan of { agg : int }

type pipeline = {
  p_name : string;
  p_source : source;
  p_scan_filters : Scalar.t list;
  p_probes : probe list;
  p_sink : sink;
}

type t = {
  pl_pipelines : pipeline list;  (** in execution order *)
  pl_trefs : (Aeq_storage.Table.t * string) array;
  pl_hts : ht_spec array;
  pl_agg : agg_cfg option;
  pl_out : out_cfg;
  pl_preds : Aeq_rt.Bitmap.t array;
  pl_order_by : (int * bool) list;  (** output column index, desc *)
  pl_limit : int option;
}

(** {1 Query-state layout}

    The state area is an arena region of 8-byte slots holding column
    base pointers; generated code and the driver agree on the layout
    through these functions. *)

type layout

val layout : t -> layout

val slot_of_col : layout -> tref:int -> col:int -> int

val slot_of_agg_col : layout -> int -> int

val n_slots : layout -> int

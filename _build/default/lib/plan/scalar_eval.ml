module S = Aeq_ir.Semantics
module Dtype = Aeq_storage.Dtype
module Ast = Aeq_sql.Ast

let scale = Int64.of_int Dtype.scale

let rec eval ~col ~acol ~pred (s : Scalar.t) : int64 =
  match s with
  | Scalar.Col { tref; col = c; _ } -> col ~tref ~col:c
  | Scalar.Acol { idx; _ } -> acol idx
  | Scalar.Const (n, _) -> n
  | Scalar.Year e -> Aeq_rt.Symbols.year_of_days (eval ~col ~acol ~pred e)
  | Scalar.Dict_match (id, e) ->
    if pred id (eval ~col ~acol ~pred e) then 1L else 0L
  | Scalar.Not e -> if Int64.equal (eval ~col ~acol ~pred e) 0L then 1L else 0L
  | Scalar.Case (whens, els, _) ->
    let rec go = function
      | [] -> eval ~col ~acol ~pred els
      | (c, v) :: rest ->
        if not (Int64.equal (eval ~col ~acol ~pred c) 0L) then eval ~col ~acol ~pred v
        else go rest
    in
    go whens
  | Scalar.Bin (op, a, b, _) -> (
    let da = Scalar.dtype a and db = Scalar.dtype b in
    let va = eval ~col ~acol ~pred a in
    (* AND/OR evaluate both operands (no short-circuit), matching the
       generated code, which computes boolean values bitwise *)
    match op with
    | Ast.And -> Int64.logand va (eval ~col ~acol ~pred b)
    | Ast.Or -> Int64.logor va (eval ~col ~acol ~pred b)
    | _ -> (
      let vb = eval ~col ~acol ~pred b in
      match op with
      | Ast.Add -> S.add_chk ~width:64 va vb
      | Ast.Sub -> S.sub_chk ~width:64 va vb
      | Ast.Mul ->
        let m = S.mul_chk ~width:64 va vb in
        if Dtype.equal da Dtype.Decimal && Dtype.equal db Dtype.Decimal then Int64.div m scale
        else m
      | Ast.Div ->
        if Int64.equal vb 0L then Aeq_ir.Trap.division_by_zero ()
        else if Dtype.equal db Dtype.Decimal then
          Int64.div (S.mul_chk ~width:64 va scale) vb
        else Int64.div va vb
      | Ast.Eq -> S.bool_i64 (Int64.equal va vb)
      | Ast.Ne -> S.bool_i64 (not (Int64.equal va vb))
      | Ast.Lt -> S.bool_i64 (Int64.compare va vb < 0)
      | Ast.Le -> S.bool_i64 (Int64.compare va vb <= 0)
      | Ast.Gt -> S.bool_i64 (Int64.compare va vb > 0)
      | Ast.Ge -> S.bool_i64 (Int64.compare va vb >= 0)
      | Ast.And | Ast.Or -> assert false))

let eval_bool ~col ~acol ~pred s = not (Int64.equal (eval ~col ~acol ~pred s) 0L)

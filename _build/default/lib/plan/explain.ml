let to_string (plan : Physical.t) =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  Array.iteri
    (fun i (tbl, alias) ->
      add "table t%d = %s (%s, %d rows)\n" i alias tbl.Aeq_storage.Table.name
        tbl.Aeq_storage.Table.n_rows)
    plan.Physical.pl_trefs;
  List.iteri
    (fun i (p : Physical.pipeline) ->
      add "pipeline %d: %s\n" i p.Physical.p_name;
      (match p.Physical.p_source with
      | Physical.Src_scan { tref } -> add "  source: scan t%d\n" tref
      | Physical.Src_agg_scan { agg } -> add "  source: aggregate table %d\n" agg);
      List.iter (fun f -> add "  filter: %s\n" (Scalar.to_string f)) p.Physical.p_scan_filters;
      List.iter
        (fun (pr : Physical.probe) ->
          add "  probe ht%d (t%d) on %s\n" pr.Physical.pr_ht pr.Physical.pr_tref
            (Scalar.to_string pr.Physical.pr_key);
          List.iter
            (fun f -> add "    match filter: %s\n" (Scalar.to_string f))
            pr.Physical.pr_filters)
        p.Physical.p_probes;
      match p.Physical.p_sink with
      | Physical.S_build { ht; key; payload } ->
        add "  sink: build ht%d key=%s payload=%d cols\n" ht (Scalar.to_string key)
          (List.length payload)
      | Physical.S_agg { keys; accs; _ } ->
        add "  sink: aggregate keys=[%s] accs=%d\n"
          (String.concat "; " (List.map Scalar.to_string keys))
          (List.length accs)
      | Physical.S_out { exprs; _ } ->
        add "  sink: output [%s]\n" (String.concat "; " (List.map Scalar.to_string exprs)))
    plan.Physical.pl_pipelines;
  (match plan.Physical.pl_order_by with
  | [] -> ()
  | keys ->
    add "order by: %s\n"
      (String.concat ", "
         (List.map (fun (i, d) -> Printf.sprintf "%d%s" i (if d then " desc" else "")) keys)));
  (match plan.Physical.pl_limit with Some n -> add "limit %d\n" n | None -> ());
  Buffer.contents b

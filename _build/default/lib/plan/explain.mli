(** Human-readable plan printer (EXPLAIN). *)

val to_string : Physical.t -> string

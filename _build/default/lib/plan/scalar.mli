(** Typed, fully-resolved scalar expressions — the output of semantic
    analysis and the input of code generation.

    Decimals are fixed-point (× {!Aeq_storage.Dtype.scale}); the
    arithmetic rules that keep the scale consistent (rescaling on
    mixed int/decimal operations, dividing after decimal×decimal) are
    applied by the binder, so codegen can treat every [Bin] node as
    plain (checked) integer arithmetic. *)

type t =
  | Col of { tref : int; col : int; dtype : Aeq_storage.Dtype.t }
      (** column of a joined table instance *)
  | Acol of { idx : int; dtype : Aeq_storage.Dtype.t }
      (** column of the materialised aggregate table *)
  | Const of int64 * Aeq_storage.Dtype.t
  | Bin of Aeq_sql.Ast.binop * t * t * Aeq_storage.Dtype.t
  | Year of t  (** EXTRACT(YEAR FROM date) *)
  | Dict_match of int * t
      (** plan-time-evaluated string predicate (LIKE / IN): bitmap id,
          code expression *)
  | Not of t
  | Case of (t * t) list * t * Aeq_storage.Dtype.t

val dtype : t -> Aeq_storage.Dtype.t

val trefs_used : t -> int list
(** Distinct table instances referenced (sorted). *)

val to_string : t -> string

module Ast = Aeq_sql.Ast
module Dtype = Aeq_storage.Dtype
module Table = Aeq_storage.Table

exception Plan_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Plan_error s)) fmt

(* ---------------------------------------------------------------- *)
(* Binding environment                                                *)
(* ---------------------------------------------------------------- *)

type env = {
  catalog : Aeq_storage.Catalog.t;
  trefs : (Table.t * string) array;
  mutable preds : Aeq_rt.Bitmap.t list; (* reversed *)
  mutable n_preds : int;
}

let resolve_col env qual name =
  let matches =
    Array.to_list env.trefs
    |> List.mapi (fun i (tbl, alias) -> (i, tbl, alias))
    |> List.filter_map (fun (i, tbl, alias) ->
           let qual_ok =
             match qual with
             | Some q -> String.equal q alias || String.equal q tbl.Table.name
             | None -> true
           in
           if not qual_ok then None
           else
             match Table.column_index tbl name with
             | idx -> Some (i, idx, tbl.Table.columns.(idx).Table.dtype)
             | exception Not_found -> None)
  in
  match matches with
  | [ m ] -> m
  | [] ->
    fail "unknown column %s%s"
      (match qual with Some q -> q ^ "." | None -> "")
      name
  | _ -> fail "ambiguous column %s" name

let register_pred env bm =
  env.preds <- bm :: env.preds;
  let id = env.n_preds in
  env.n_preds <- id + 1;
  id

(* SQL LIKE pattern -> predicate on a string ( % and _ wildcards ).
   Evaluated over every dictionary entry at plan time, so the common
   shapes (prefix%, %suffix, %infix%) get allocation-free fast
   paths. *)
let is_plain pattern = String.for_all (fun c -> c <> '%' && c <> '_') pattern

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let like_matcher pattern =
  let n = String.length pattern in
  let prefix_case =
    n > 0 && pattern.[n - 1] = '%' && is_plain (String.sub pattern 0 (n - 1))
  in
  let suffix_case = n > 0 && pattern.[0] = '%' && is_plain (String.sub pattern 1 (n - 1)) in
  let infix_case =
    n > 1 && pattern.[0] = '%' && pattern.[n - 1] = '%'
    && is_plain (String.sub pattern 1 (n - 2))
  in
  if infix_case then begin
    let inner = String.sub pattern 1 (n - 2) in
    fun s -> contains_sub s inner
  end
  else if prefix_case then begin
    let p = String.sub pattern 0 (n - 1) in
    let pl = String.length p in
    fun s -> String.length s >= pl && String.sub s 0 pl = p
  end
  else if suffix_case then begin
    let p = String.sub pattern 1 (n - 1) in
    let pl = String.length p in
    fun s -> String.length s >= pl && String.sub s (String.length s - pl) pl = p
  end
  else
    fun s ->
      let m = String.length s in
      (* memoised recursive match for general patterns *)
      let memo = Hashtbl.create 64 in
      let rec go i j =
        match Hashtbl.find_opt memo (i, j) with
        | Some r -> r
        | None ->
          let r =
            if i >= n then j >= m
            else
              match pattern.[i] with
              | '%' -> go (i + 1) j || (j < m && go i (j + 1))
              | '_' -> j < m && go (i + 1) (j + 1)
              | c -> j < m && s.[j] = c && go (i + 1) (j + 1)
          in
          Hashtbl.replace memo (i, j) r;
          r
      in
      go 0 0

let scale_const = Int64.of_int Dtype.scale

(* Promote int to decimal in mixed arithmetic/comparison. *)
let promote a b =
  let da = Scalar.dtype a and db = Scalar.dtype b in
  let rescale e =
    match e with
    | Scalar.Const (n, Dtype.Int) -> Scalar.Const (Int64.mul n scale_const, Dtype.Decimal)
    | _ -> Scalar.Bin (Ast.Mul, e, Scalar.Const (scale_const, Dtype.Int), Dtype.Decimal)
  in
  match (da, db) with
  | Dtype.Int, Dtype.Decimal -> (rescale a, b, Dtype.Decimal)
  | Dtype.Decimal, Dtype.Int -> (a, rescale b, Dtype.Decimal)
  | Dtype.Int, Dtype.Int -> (a, b, Dtype.Int)
  | Dtype.Decimal, Dtype.Decimal -> (a, b, Dtype.Decimal)
  | Dtype.Date, Dtype.Date -> (a, b, Dtype.Date)
  | Dtype.Date, Dtype.Int | Dtype.Int, Dtype.Date -> (a, b, Dtype.Date)
  | Dtype.Str, Dtype.Str -> (a, b, Dtype.Str)
  | Dtype.Bool, Dtype.Bool -> (a, b, Dtype.Bool)
  | _ -> fail "type mismatch: %s vs %s" (Dtype.to_string da) (Dtype.to_string db)

(* Bind an AST expression that must not contain aggregates. *)
let rec bind env (e : Ast.expr) : Scalar.t =
  match e with
  | Ast.Col (qual, name) ->
    let tref, col, dtype = resolve_col env qual name in
    Scalar.Col { tref; col; dtype }
  | Ast.Lit_int n -> Scalar.Const (n, Dtype.Int)
  | Ast.Lit_dec n -> Scalar.Const (n, Dtype.Decimal)
  | Ast.Lit_date d -> Scalar.Const (Int64.of_int d, Dtype.Date)
  | Ast.Lit_str s ->
    Scalar.Const (Aeq_rt.Dict.encode (Aeq_storage.Catalog.dict env.catalog) s, Dtype.Str)
  | Ast.Neg e -> (
    match bind env e with
    | Scalar.Const (n, dt) -> Scalar.Const (Int64.neg n, dt)
    | s -> Scalar.Bin (Ast.Sub, Scalar.Const (0L, Scalar.dtype s), s, Scalar.dtype s))
  | Ast.Not e -> Scalar.Not (bind env e)
  | Ast.Bin (op, a, b) -> bind_bin env op a b
  | Ast.Between (e, lo, hi) ->
    let ge = bind_bin env Ast.Ge e lo and le = bind_bin env Ast.Le e hi in
    Scalar.Bin (Ast.And, ge, le, Dtype.Bool)
  | Ast.In_list (e, items) -> (
    let s = bind env e in
    match Scalar.dtype s with
    | Dtype.Str ->
      let dict = Aeq_storage.Catalog.dict env.catalog in
      let wanted =
        List.map
          (function
            | Ast.Lit_str x -> x
            | _ -> fail "IN over strings expects string literals")
          items
      in
      let bm = Aeq_rt.Dict.codes_matching dict (fun s -> List.mem s wanted) in
      Scalar.Dict_match (register_pred env bm, s)
    | _ ->
      let eqs = List.map (fun item -> bind_bin env Ast.Eq e item) items in
      List.fold_left
        (fun acc eq -> Scalar.Bin (Ast.Or, acc, eq, Dtype.Bool))
        (List.hd eqs) (List.tl eqs))
  | Ast.Like (e, pattern) -> (
    let s = bind env e in
    match Scalar.dtype s with
    | Dtype.Str ->
      let dict = Aeq_storage.Catalog.dict env.catalog in
      let bm = Aeq_rt.Dict.codes_matching dict (like_matcher pattern) in
      Scalar.Dict_match (register_pred env bm, s)
    | _ -> fail "LIKE requires a string operand")
  | Ast.Extract_year e -> (
    let s = bind env e in
    match Scalar.dtype s with
    | Dtype.Date -> Scalar.Year s
    | _ -> fail "EXTRACT(YEAR ...) requires a date")
  | Ast.Case (whens, els) ->
    let bwhens = List.map (fun (c, v) -> (bind env c, bind env v)) whens in
    let result_dtype = Scalar.dtype (snd (List.hd bwhens)) in
    let bels =
      match els with Some e -> bind env e | None -> Scalar.Const (0L, result_dtype)
    in
    List.iter
      (fun (c, v) ->
        if Scalar.dtype c <> Dtype.Bool then fail "CASE condition must be boolean";
        if Scalar.dtype v <> result_dtype then fail "CASE arms must have one type")
      bwhens;
    Scalar.Case (bwhens, bels, result_dtype)
  | Ast.Agg _ -> fail "aggregate in invalid position"

and bind_bin env op a b =
  let sa = bind env a and sb = bind env b in
  match op with
  | Ast.And | Ast.Or ->
    if Scalar.dtype sa <> Dtype.Bool || Scalar.dtype sb <> Dtype.Bool then
      fail "AND/OR require boolean operands";
    Scalar.Bin (op, sa, sb, Dtype.Bool)
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    let sa, sb, dt = promote sa sb in
    if Dtype.equal dt Dtype.Str && not (op = Ast.Eq || op = Ast.Ne) then
      fail "string comparison supports only = and <>";
    Scalar.Bin (op, sa, sb, Dtype.Bool)
  | Ast.Add | Ast.Sub ->
    let sa, sb, dt = promote sa sb in
    (match dt with
    | Dtype.Int | Dtype.Decimal | Dtype.Date -> ()
    | _ -> fail "arithmetic on non-numeric type");
    Scalar.Bin (op, sa, sb, dt)
  | Ast.Mul | Ast.Div ->
    let sa, sb, dt = promote sa sb in
    (match dt with
    | Dtype.Int | Dtype.Decimal -> ()
    | _ -> fail "arithmetic on non-numeric type");
    Scalar.Bin (op, sa, sb, dt)

(* conjunct splitting *)
let rec conjuncts = function
  | Ast.Bin (Ast.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* ---------------------------------------------------------------- *)
(* Aggregate extraction                                               *)
(* ---------------------------------------------------------------- *)

type agg_acc = { kind : Aeq_rt.Agg.acc_kind; arg : Scalar.t option; dtype : Dtype.t }

type agg_state = {
  mutable accs : agg_acc list; (* reversed *)
  mutable n_accs : int;
  key_scalars : Scalar.t list;
}

let find_or_add_acc st kind arg dtype =
  let rec find i = function
    | [] -> None
    | a :: rest ->
      if a.kind = kind && a.arg = arg then Some (st.n_accs - 1 - i) else find (i + 1) rest
  in
  match find 0 st.accs with
  | Some idx -> idx
  | None ->
    st.accs <- { kind; arg; dtype } :: st.accs;
    st.n_accs <- st.n_accs + 1;
    st.n_accs - 1

let key_arity st = List.length st.key_scalars

let rec has_agg = function
  | Ast.Agg _ -> true
  | Ast.Bin (_, a, b) -> has_agg a || has_agg b
  | Ast.Neg e | Ast.Not e | Ast.Extract_year e -> has_agg e
  | Ast.Between (a, b, c) -> has_agg a || has_agg b || has_agg c
  | Ast.In_list (e, xs) -> has_agg e || List.exists has_agg xs
  | Ast.Like (e, _) -> has_agg e
  | Ast.Case (whens, els) ->
    List.exists (fun (c, v) -> has_agg c || has_agg v) whens
    || (match els with Some e -> has_agg e | None -> false)
  | Ast.Col _ | Ast.Lit_int _ | Ast.Lit_dec _ | Ast.Lit_str _ | Ast.Lit_date _ -> false

(* Rewrite a bound-or-aggregate expression into a scalar over the
   materialised aggregate table: group keys become Acol 0/1, each
   aggregate becomes Acol (key_arity + acc index). *)
let rec rewrite_agg env st (e : Ast.expr) : Scalar.t =
  match e with
  | Ast.Agg (fn, arg) -> (
    let barg = Option.map (bind env) arg in
    let arg_dtype = match barg with Some s -> Scalar.dtype s | None -> Dtype.Int in
    match fn with
    | Ast.Count ->
      let idx = find_or_add_acc st Aeq_rt.Agg.Count None Dtype.Int in
      Scalar.Acol { idx = key_arity st + idx; dtype = Dtype.Int }
    | Ast.Sum ->
      let idx = find_or_add_acc st Aeq_rt.Agg.Sum barg arg_dtype in
      Scalar.Acol { idx = key_arity st + idx; dtype = arg_dtype }
    | Ast.Min ->
      let idx = find_or_add_acc st Aeq_rt.Agg.Min barg arg_dtype in
      Scalar.Acol { idx = key_arity st + idx; dtype = arg_dtype }
    | Ast.Max ->
      let idx = find_or_add_acc st Aeq_rt.Agg.Max barg arg_dtype in
      Scalar.Acol { idx = key_arity st + idx; dtype = arg_dtype }
    | Ast.Avg ->
      let sum_idx = find_or_add_acc st Aeq_rt.Agg.Sum barg arg_dtype in
      let cnt_idx = find_or_add_acc st Aeq_rt.Agg.Count None Dtype.Int in
      Scalar.Bin
        ( Ast.Div,
          Scalar.Acol { idx = key_arity st + sum_idx; dtype = arg_dtype },
          Scalar.Acol { idx = key_arity st + cnt_idx; dtype = Dtype.Int },
          arg_dtype ))
  | _ when has_agg e ->
    (* an expression over aggregates (HAVING sum(..) > c, ratios of
       sums, ...): recurse structurally *)
    rewrite_agg_structural env st e
  | _ -> (
    (* aggregate-free: must be expressible over the group keys *)
    let bound = bind env e in
    match
      List.mapi (fun i k -> (i, k)) st.key_scalars
      |> List.find_opt (fun (_, k) -> k = bound)
    with
    | Some (i, k) -> Scalar.Acol { idx = i; dtype = Scalar.dtype k }
    | None -> rewrite_agg_structural env st e)

(* expressions over aggregates / keys, e.g. sum(a) / sum(b) or
   key-expression arithmetic *)
and rewrite_agg_structural env st (e : Ast.expr) : Scalar.t =
  match e with
  | Ast.Bin (op, a, b) -> (
    let ra = rewrite_agg env st a and rb = rewrite_agg env st b in
    match op with
    | Ast.And | Ast.Or -> Scalar.Bin (op, ra, rb, Dtype.Bool)
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      let ra, rb, _ = promote ra rb in
      Scalar.Bin (op, ra, rb, Dtype.Bool)
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
      let ra, rb, dt = promote ra rb in
      Scalar.Bin (op, ra, rb, dt))
  | Ast.Not e -> Scalar.Not (rewrite_agg env st e)
  | Ast.Lit_int n -> Scalar.Const (n, Dtype.Int)
  | Ast.Lit_dec n -> Scalar.Const (n, Dtype.Decimal)
  | Ast.Lit_date d -> Scalar.Const (Int64.of_int d, Dtype.Date)
  | Ast.Lit_str s ->
    Scalar.Const (Aeq_rt.Dict.encode (Aeq_storage.Catalog.dict env.catalog) s, Dtype.Str)
  | _ -> fail "expression %s is neither an aggregate nor a group key" (Ast.expr_to_string e)

(* ---------------------------------------------------------------- *)
(* Physical planning                                                  *)
(* ---------------------------------------------------------------- *)

let plan catalog (q : Ast.query) : Physical.t =
  (* 1. table references *)
  let trefs =
    List.map
      (fun (name, alias) ->
        let tbl =
          try Aeq_storage.Catalog.table catalog name
          with Not_found -> fail "unknown table %s" name
        in
        (tbl, Option.value alias ~default:name))
      q.Ast.from
    |> Array.of_list
  in
  let aliases = Array.to_list trefs |> List.map snd in
  if List.length (List.sort_uniq compare aliases) <> List.length aliases then
    fail "duplicate table aliases";
  let env = { catalog; trefs; preds = []; n_preds = 0 } in
  let n_trefs = Array.length trefs in
  (* 2. conjuncts: WHERE + ON *)
  let all_conj =
    (match q.Ast.where with Some w -> conjuncts w | None -> [])
    @ List.concat_map conjuncts q.Ast.join_on
  in
  let bound_conj = List.map (fun c -> bind env c) all_conj in
  List.iter
    (fun c ->
      if Scalar.dtype c <> Dtype.Bool then fail "WHERE conjunct is not boolean")
    bound_conj;
  (* split equi-joins from filters *)
  let joins = ref [] in
  let filters = ref [] in
  List.iter
    (fun c ->
      match c with
      | Scalar.Bin (Ast.Eq, Scalar.Col a, Scalar.Col b, _) when a.tref <> b.tref ->
        joins := (a.tref, a.col, b.tref, b.col) :: !joins
      | _ -> filters := c :: !filters)
    bound_conj;
  let joins = List.rev !joins and filters = List.rev !filters in
  (* 3. aggregation analysis *)
  let aggregating = q.Ast.group_by <> [] || List.exists (fun it -> has_agg it.Ast.expr) q.Ast.select in
  let group_keys = List.map (bind env) q.Ast.group_by in
  if List.length group_keys > 2 then fail "at most two GROUP BY keys are supported";
  let agg_st = { accs = []; n_accs = 0; key_scalars = group_keys } in
  let projections, proj_names =
    List.mapi
      (fun i (it : Ast.select_item) ->
        let name =
          match (it.Ast.alias, it.Ast.expr) with
          | Some a, _ -> a
          | None, Ast.Col (_, n) -> n
          | None, _ -> Printf.sprintf "col%d" i
        in
        let s = if aggregating then rewrite_agg env agg_st it.Ast.expr else bind env it.Ast.expr in
        (s, name))
      q.Ast.select
    |> List.split
  in
  let having =
    match q.Ast.having with
    | None -> None
    | Some h ->
      if not aggregating then fail "HAVING without aggregation";
      Some (rewrite_agg env agg_st h)
  in
  (* 4. ORDER BY: match a projection by alias, position, or structure *)
  let order_by =
    List.map
      (fun (o : Ast.order_item) ->
        let idx =
          match o.Ast.key with
          | Ast.Lit_int n when Int64.to_int n >= 1 && Int64.to_int n <= List.length projections
            ->
            Int64.to_int n - 1
          | Ast.Col (None, name)
            when List.exists (fun pn -> String.equal pn name) proj_names ->
            let rec find i = function
              | [] -> assert false
              | pn :: _ when String.equal pn name -> i
              | _ :: rest -> find (i + 1) rest
            in
            find 0 proj_names
          | e -> (
            let s = if aggregating then rewrite_agg env agg_st e else bind env e in
            match
              List.mapi (fun i p -> (i, p)) projections |> List.find_opt (fun (_, p) -> p = s)
            with
            | Some (i, _) -> i
            | None -> fail "ORDER BY key must appear in the SELECT list")
        in
        (idx, o.Ast.desc))
      q.Ast.order_by
  in
  (* 5. join order: BFS from the largest table *)
  let driver =
    let best = ref 0 in
    for i = 1 to n_trefs - 1 do
      if (fst trefs.(i)).Table.n_rows > (fst trefs.(!best)).Table.n_rows then best := i
    done;
    !best
  in
  let available = Array.make n_trefs false in
  available.(driver) <- true;
  let probe_order = ref [] in
  (* (build_tref, build_col, probe_key_tref, probe_key_col) *)
  let remaining = ref joins in
  let extra_join_filters = ref [] in
  (* Greedy expansion with a key-first heuristic: among edges whose one
     side is already reachable, prefer building the hash table on the
     new table's primary key (column 0 by schema convention — e.g.
     join customers through c_custkey, and leave c_nationkey =
     s_nationkey as a residual filter, like a sane optimizer would). *)
  let rec expand () =
    (* drop edges whose both sides are reachable: residual filters *)
    let keep =
      List.filter
        (fun (ta, ca, tb, cb) ->
          if available.(ta) && available.(tb) then begin
            let da = (fst trefs.(ta)).Table.columns.(ca).Table.dtype in
            extra_join_filters :=
              Scalar.Bin
                ( Ast.Eq,
                  Scalar.Col { tref = ta; col = ca; dtype = da },
                  Scalar.Col { tref = tb; col = cb; dtype = da },
                  Dtype.Bool )
              :: !extra_join_filters;
            false
          end
          else true)
        !remaining
    in
    remaining := keep;
    (* candidate edges: exactly one side reachable; normalise to
       (build_tref, build_col, probe_tref, probe_col) *)
    let candidates =
      List.filter_map
        (fun ((ta, ca, tb, cb) as edge) ->
          if available.(ta) && not available.(tb) then Some (edge, (tb, cb, ta, ca))
          else if available.(tb) && not available.(ta) then Some (edge, (ta, ca, tb, cb))
          else None)
        keep
    in
    match candidates with
    | [] -> ()
    | _ ->
      let edge, probe =
        match
          List.find_opt (fun (_, (_, build_col, _, _)) -> build_col = 0) candidates
        with
        | Some c -> c
        | None -> List.hd candidates
      in
      let build_tref, _, _, _ = probe in
      available.(build_tref) <- true;
      probe_order := probe :: !probe_order;
      remaining := List.filter (fun e -> e != edge) !remaining;
      expand ()
  in
  expand ();
  if !remaining <> [] || Array.exists not available then
    fail "query requires a cross product (unconnected join graph)";
  let probe_order = List.rev !probe_order in
  let filters = filters @ List.rev !extra_join_filters in
  (* position of each tref in the probe chain: driver = 0 *)
  let position = Array.make n_trefs (-1) in
  position.(driver) <- 0;
  List.iteri (fun i (tb, _, _, _) -> position.(tb) <- i + 1) probe_order;
  (* 6. needed columns of each build table = columns referenced by
     anything evaluated in or after the driver pipeline *)
  let needed : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let note_col tref col =
    if tref <> driver then begin
      let l =
        match Hashtbl.find_opt needed tref with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace needed tref l;
          l
      in
      if not (List.mem col !l) then l := col :: !l
    end
  in
  let rec note_scalar (s : Scalar.t) =
    match s with
    | Scalar.Col { tref; col; _ } -> note_col tref col
    | Scalar.Acol _ | Scalar.Const _ -> ()
    | Scalar.Bin (_, a, b, _) ->
      note_scalar a;
      note_scalar b
    | Scalar.Year e | Scalar.Dict_match (_, e) | Scalar.Not e -> note_scalar e
    | Scalar.Case (whens, els, _) ->
      List.iter
        (fun (c, v) ->
          note_scalar c;
          note_scalar v)
        whens;
      note_scalar els
  in
  (* things evaluated in the driver pipeline *)
  let driver_filters, local_filters =
    List.partition
      (fun f ->
        match Scalar.trefs_used f with
        | [] -> true
        | [ t ] -> t = driver
        | _ -> true (* multi-tref filters run in the driver pipeline *))
      filters
  in
  let driver_filters, probe_attached_filters =
    List.partition
      (fun f ->
        match Scalar.trefs_used f with [] -> true | [ t ] -> t = driver | _ -> false)
      driver_filters
  in
  List.iter note_scalar probe_attached_filters;
  if not aggregating then List.iter note_scalar projections
  else begin
    List.iter note_scalar group_keys;
    List.iter (fun a -> match a.arg with Some s -> note_scalar s | None -> ()) (List.rev agg_st.accs)
  end;
  (* probe keys reference the probe-side column *)
  List.iter
    (fun (_tb, _cb, ta, ca) -> note_col ta ca)
    probe_order;
  (* 7. hash-table specs; ids follow probe order *)
  let ht_specs =
    List.mapi
      (fun _i (tb, cb, _ta, _ca) ->
        let tbl = fst trefs.(tb) in
        let cols = match Hashtbl.find_opt needed tb with Some l -> List.rev !l | None -> [] in
        let payload = List.mapi (fun k c -> (c, 8 * k)) cols in
        {
          Physical.ht_build_tref = tb;
          ht_key =
            Scalar.Col { tref = tb; col = cb; dtype = tbl.Table.columns.(cb).Table.dtype };
          ht_payload = payload;
          ht_payload_bytes = 8 * List.length payload;
          ht_expected = tbl.Table.n_rows;
        })
      probe_order
  in
  (* 8. probes, with attached filters at the latest needed position *)
  let probes =
    List.mapi
      (fun i (tb, _cb, ta, ca) ->
        let key_dtype = (fst trefs.(ta)).Table.columns.(ca).Table.dtype in
        {
          Physical.pr_ht = i;
          pr_key = Scalar.Col { tref = ta; col = ca; dtype = key_dtype };
          pr_tref = tb;
          pr_filters = [];
        })
      probe_order
  in
  let probes =
    (* attach each multi-tref filter to the last probe it depends on *)
    let arr = Array.of_list probes in
    List.iter
      (fun f ->
        let pos =
          Scalar.trefs_used f |> List.map (fun t -> position.(t)) |> List.fold_left max 0
        in
        if pos = 0 then () (* handled as scan filter below *)
        else begin
          let p = arr.(pos - 1) in
          arr.(pos - 1) <- { p with Physical.pr_filters = p.Physical.pr_filters @ [ f ] }
        end)
      probe_attached_filters;
    Array.to_list arr
  in
  let driver_scan_filters =
    driver_filters
    @ List.filter
        (fun f ->
          Scalar.trefs_used f |> List.map (fun t -> position.(t)) |> List.fold_left max 0
          = 0)
        probe_attached_filters
  in
  (* 9. sinks and pipelines *)
  let accs = List.rev agg_st.accs in
  let agg_cfg =
    if aggregating then
      Some
        {
          Physical.agg_key_arity = List.length group_keys;
          agg_accs = List.map (fun a -> (a.kind, a.dtype)) accs;
        }
    else None
  in
  let out_cfg =
    {
      Physical.out_names = proj_names;
      out_dtypes = List.map Scalar.dtype projections;
      out_row_bytes = 8 * List.length projections;
    }
  in
  let build_pipelines =
    List.mapi
      (fun i spec ->
        let tb = spec.Physical.ht_build_tref in
        let tbl, alias = trefs.(tb) in
        ignore tbl;
        let local =
          List.filter (fun f -> Scalar.trefs_used f = [ tb ]) local_filters
        in
        {
          Physical.p_name = Printf.sprintf "build %s" alias;
          p_source = Physical.Src_scan { tref = tb };
          p_scan_filters = local;
          p_probes = [];
          p_sink =
            Physical.S_build
              {
                ht = i;
                key = spec.Physical.ht_key;
                payload =
                  List.map
                    (fun (c, off) ->
                      ( off,
                        Scalar.Col
                          {
                            tref = tb;
                            col = c;
                            dtype = (fst trefs.(tb)).Table.columns.(c).Table.dtype;
                          } ))
                    spec.Physical.ht_payload;
              };
        })
      ht_specs
  in
  let driver_sink =
    if aggregating then
      Physical.S_agg
        {
          agg = 0;
          keys = group_keys;
          accs = List.map (fun a -> (a.kind, a.arg)) accs;
        }
    else Physical.S_out { out = 0; exprs = projections }
  in
  let driver_pipeline =
    {
      Physical.p_name = Printf.sprintf "scan %s" (snd trefs.(driver));
      p_source = Physical.Src_scan { tref = driver };
      p_scan_filters = driver_scan_filters;
      p_probes = probes;
      p_sink = driver_sink;
    }
  in
  let agg_scan_pipeline =
    if aggregating then
      [
        {
          Physical.p_name = "aggregate scan";
          p_source = Physical.Src_agg_scan { agg = 0 };
          p_scan_filters = (match having with Some h -> [ h ] | None -> []);
          p_probes = [];
          p_sink = Physical.S_out { out = 0; exprs = projections };
        };
      ]
    else []
  in
  {
    Physical.pl_pipelines = build_pipelines @ [ driver_pipeline ] @ agg_scan_pipeline;
    pl_trefs = trefs;
    pl_hts = Array.of_list ht_specs;
    pl_agg = agg_cfg;
    pl_out = out_cfg;
    pl_preds = Array.of_list (List.rev env.preds);
    pl_order_by = order_by;
    pl_limit = q.Ast.limit;
  }

let plan_sql catalog sql = plan catalog (Aeq_sql.Parser.parse sql)

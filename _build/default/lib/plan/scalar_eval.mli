(** Reference interpreter for {!Scalar} expressions.

    Defines the semantics (fixed-point decimal rules, overflow-checked
    arithmetic raising {!Aeq_ir.Trap.Error}) that the code generator
    must reproduce; the Volcano and vectorized baseline engines
    evaluate expressions through this module, which makes result
    comparison across engines a genuine differential test. *)

val eval :
  col:(tref:int -> col:int -> int64) ->
  acol:(int -> int64) ->
  pred:(int -> int64 -> bool) ->
  Scalar.t ->
  int64
(** Booleans are 0/1. [pred id code] consults dictionary bitmap [id].
    @raise Aeq_ir.Trap.Error on overflow / division by zero. *)

val eval_bool :
  col:(tref:int -> col:int -> int64) ->
  acol:(int -> int64) ->
  pred:(int -> int64 -> bool) ->
  Scalar.t ->
  bool

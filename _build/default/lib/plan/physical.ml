type ht_spec = {
  ht_build_tref : int;
  ht_key : Scalar.t;
  ht_payload : (int * int) list;
  ht_payload_bytes : int;
  ht_expected : int;
}

type probe = {
  pr_ht : int;
  pr_key : Scalar.t;
  pr_tref : int;
  pr_filters : Scalar.t list;
}

type agg_cfg = {
  agg_key_arity : int;
  agg_accs : (Aeq_rt.Agg.acc_kind * Aeq_storage.Dtype.t) list;
}

type out_cfg = {
  out_names : string list;
  out_dtypes : Aeq_storage.Dtype.t list;
  out_row_bytes : int;
}

type sink =
  | S_build of { ht : int; key : Scalar.t; payload : (int * Scalar.t) list }
  | S_agg of {
      agg : int;
      keys : Scalar.t list;
      accs : (Aeq_rt.Agg.acc_kind * Scalar.t option) list;
    }
  | S_out of { out : int; exprs : Scalar.t list }

type source = Src_scan of { tref : int } | Src_agg_scan of { agg : int }

type pipeline = {
  p_name : string;
  p_source : source;
  p_scan_filters : Scalar.t list;
  p_probes : probe list;
  p_sink : sink;
}

type t = {
  pl_pipelines : pipeline list;
  pl_trefs : (Aeq_storage.Table.t * string) array;
  pl_hts : ht_spec array;
  pl_agg : agg_cfg option;
  pl_out : out_cfg;
  pl_preds : Aeq_rt.Bitmap.t array;
  pl_order_by : (int * bool) list;
  pl_limit : int option;
}

type layout = { tref_base : int array; agg_base : int; total : int }

let layout plan =
  let n_trefs = Array.length plan.pl_trefs in
  let tref_base = Array.make n_trefs 0 in
  let cursor = ref 0 in
  for i = 0 to n_trefs - 1 do
    tref_base.(i) <- !cursor;
    cursor := !cursor + Array.length (fst plan.pl_trefs.(i)).Aeq_storage.Table.columns
  done;
  let agg_base = !cursor in
  let agg_cols =
    match plan.pl_agg with
    | Some cfg -> cfg.agg_key_arity + List.length cfg.agg_accs
    | None -> 0
  in
  { tref_base; agg_base; total = !cursor + agg_cols }

let slot_of_col l ~tref ~col = l.tref_base.(tref) + col

let slot_of_agg_col l k = l.agg_base + k

let n_slots l = l.total

module Dtype = Aeq_storage.Dtype

type t =
  | Col of { tref : int; col : int; dtype : Dtype.t }
  | Acol of { idx : int; dtype : Dtype.t }
  | Const of int64 * Dtype.t
  | Bin of Aeq_sql.Ast.binop * t * t * Dtype.t
  | Year of t
  | Dict_match of int * t
  | Not of t
  | Case of (t * t) list * t * Dtype.t

let dtype = function
  | Col { dtype; _ } | Acol { dtype; _ } | Const (_, dtype) -> dtype
  | Bin (_, _, _, dtype) -> dtype
  | Year _ -> Dtype.Int
  | Dict_match _ | Not _ -> Dtype.Bool
  | Case (_, _, dtype) -> dtype

let rec collect acc = function
  | Col { tref; _ } -> tref :: acc
  | Acol _ | Const _ -> acc
  | Bin (_, a, b, _) -> collect (collect acc a) b
  | Year e | Dict_match (_, e) | Not e -> collect acc e
  | Case (whens, els, _) ->
    List.fold_left (fun acc (c, v) -> collect (collect acc c) v) (collect acc els) whens

let trefs_used t = List.sort_uniq compare (collect [] t)

let rec to_string = function
  | Col { tref; col; _ } -> Printf.sprintf "t%d.c%d" tref col
  | Acol { idx; _ } -> Printf.sprintf "a%d" idx
  | Const (n, Dtype.Decimal) -> Printf.sprintf "%Ld.%02Ld" (Int64.div n 100L) (Int64.rem (Int64.abs n) 100L)
  | Const (n, _) -> Int64.to_string n
  | Bin (op, a, b, _) ->
    Printf.sprintf "(%s %s %s)" (to_string a) (Aeq_sql.Ast.binop_name op) (to_string b)
  | Year e -> Printf.sprintf "year(%s)" (to_string e)
  | Dict_match (i, e) -> Printf.sprintf "dict%d(%s)" i (to_string e)
  | Not e -> "not " ^ to_string e
  | Case (whens, els, _) ->
    String.concat " "
      (List.map (fun (c, v) -> Printf.sprintf "when %s then %s" (to_string c) (to_string v)) whens)
    ^ " else " ^ to_string els

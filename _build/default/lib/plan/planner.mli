(** Semantic analysis and physical planning.

    Binds a parsed query against the catalog (column resolution, type
    checking with fixed-point decimal rules, plan-time evaluation of
    string predicates over the dictionary), then builds the pipeline
    plan: one build pipeline per non-driver table (the driver is the
    largest table, probes ordered by reachability through the join
    graph — a greedy left-deep plan), a driver pipeline ending in an
    aggregate update or output sink, and an aggregate-scan pipeline
    when grouping.

    Group keys are limited to two expressions; only equi-joins are
    supported (no cross products), which covers the adapted TPC-H
    workload. *)

exception Plan_error of string

val plan : Aeq_storage.Catalog.t -> Aeq_sql.Ast.query -> Physical.t

val plan_sql : Aeq_storage.Catalog.t -> string -> Physical.t
(** Parse + plan. *)

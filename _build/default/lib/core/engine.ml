type cache_entry = {
  ce_plan : Aeq_plan.Physical.t;
  mutable ce_executions : int;
  mutable ce_modes : Aeq_backend.Cost_model.mode list;
      (* pipeline modes at the end of the last execution *)
}

type t = {
  catalog : Aeq_storage.Catalog.t;
  pool : Aeq_exec.Pool.t;
  cost_model : Aeq_backend.Cost_model.t;
  plan_cache : (string, cache_entry) Hashtbl.t;
  mutable cache_enabled : bool;
}

let create ?n_threads ?cost_model ?chunk_size () =
  let n_threads =
    match n_threads with
    | Some n -> Stdlib.max 1 n
    | None -> Stdlib.min 8 (Domain.recommended_domain_count ())
  in
  let cost_model =
    match cost_model with
    | Some m -> m
    | None ->
      (* paper-shaped compile latencies, but the controller's speedup
         expectations come from measurement so adaptive decisions
         reflect this build's real interpreter/compiled gap *)
      let cal = Aeq_backend.Calibration.measure () in
      Aeq_backend.Cost_model.with_speedups Aeq_backend.Cost_model.default
        ~unopt:cal.Aeq_backend.Calibration.speedup_unopt
        ~opt:cal.Aeq_backend.Calibration.speedup_opt
  in
  {
    catalog = Aeq_storage.Catalog.create ?chunk_size ();
    pool = Aeq_exec.Pool.create ~n_threads;
    cost_model;
    plan_cache = Hashtbl.create 64;
    cache_enabled = true;
  }

let load_tpch ?seed t ~scale_factor = Aeq_workload.Tpch.load ?seed ~scale_factor t.catalog

let catalog t = t.catalog

let pool t = t.pool

let n_threads t = Aeq_exec.Pool.n_threads t.pool

let cost_model t = t.cost_model

let plan t sql = Aeq_plan.Planner.plan_sql t.catalog sql

let explain t sql = Aeq_plan.Explain.to_string (plan t sql)

let set_plan_cache t enabled = t.cache_enabled <- enabled

let cached_executions t sql =
  match Hashtbl.find_opt t.plan_cache sql with Some e -> e.ce_executions | None -> 0

let query ?(mode = Aeq_exec.Driver.Adaptive) ?(collect_trace = false) t sql =
  if not t.cache_enabled then begin
    let p = plan t sql in
    Aeq_exec.Driver.execute ~cost_model:t.cost_model ~collect_trace t.catalog p ~mode
      ~pool:t.pool
  end
  else begin
    (* plan cache with per-pipeline mode memory (the paper's Sec. VI
       extension): repeated executions of the same text reuse the plan
       and, in adaptive mode, start pipelines in the mode they had
       converged to last time *)
    let entry =
      match Hashtbl.find_opt t.plan_cache sql with
      | Some e -> e
      | None ->
        let e = { ce_plan = plan t sql; ce_executions = 0; ce_modes = [] } in
        Hashtbl.replace t.plan_cache sql e;
        e
    in
    let initial_modes =
      if entry.ce_executions > 0 && mode = Aeq_exec.Driver.Adaptive then Some entry.ce_modes
      else None
    in
    let r =
      Aeq_exec.Driver.execute ~cost_model:t.cost_model ~collect_trace ?initial_modes
        t.catalog entry.ce_plan ~mode ~pool:t.pool
    in
    entry.ce_executions <- entry.ce_executions + 1;
    if mode = Aeq_exec.Driver.Adaptive then
      entry.ce_modes <- r.Aeq_exec.Driver.final_cm_modes;
    r
  end

let render_rows t (r : Aeq_exec.Driver.result) =
  List.map
    (fun row -> String.concat "\t" (Aeq_exec.Driver.row_to_strings t.catalog r.Aeq_exec.Driver.dtypes row))
    r.Aeq_exec.Driver.rows

let close t = Aeq_exec.Pool.shutdown t.pool

lib/core/engine.ml: Aeq_backend Aeq_exec Aeq_plan Aeq_storage Aeq_workload Domain Hashtbl List Stdlib String

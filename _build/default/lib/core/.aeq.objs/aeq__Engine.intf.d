lib/core/engine.mli: Aeq_backend Aeq_exec Aeq_plan Aeq_storage

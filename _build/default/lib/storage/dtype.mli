(** Column data types.

    Every cell is physically an 8-byte integer in the arena:
    - [Int]: i64;
    - [Decimal]: fixed-point with two fractional digits (value × 100),
      the HyPer-style representation that makes decimal arithmetic
      overflow-checked integer arithmetic;
    - [Date]: days since 1970-01-01;
    - [Str]: dictionary code (see {!Aeq_rt.Dict});
    - [Bool]: 0/1. *)

type t = Int | Decimal | Date | Str | Bool

val equal : t -> t -> bool

val to_string : t -> string

val scale : int
(** Decimal fixed-point scale (100). *)

(** In-memory columnar tables over the arena.

    Columns are dense i64 arrays; pointers into them are handed to
    generated code through the query-state area. *)

type column = { name : string; dtype : Dtype.t; data : Aeq_mem.Arena.ptr }

type t = {
  name : string;
  n_rows : int;
  columns : column array;
}

val create :
  Aeq_mem.Arena.t ->
  Aeq_mem.Arena.allocator ->
  name:string ->
  rows:int ->
  schema:(string * Dtype.t) list ->
  t

val column : t -> string -> column
(** @raise Not_found *)

val column_index : t -> string -> int

val set : Aeq_mem.Arena.t -> t -> col:int -> row:int -> int64 -> unit

val get : Aeq_mem.Arena.t -> t -> col:int -> row:int -> int64

val of_columns :
  name:string -> n_rows:int -> (string * Dtype.t * Aeq_mem.Arena.ptr) list -> t
(** Wrap already-materialised arena columns (aggregate results) as a
    scannable table. *)

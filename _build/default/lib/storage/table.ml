module A = Aeq_mem.Arena

type column = { name : string; dtype : Dtype.t; data : A.ptr }

type t = { name : string; n_rows : int; columns : column array }

let create _arena allocator ~name ~rows ~schema =
  let columns =
    List.map
      (fun (cname, dtype) ->
        { name = cname; dtype; data = A.alloc allocator (8 * Stdlib.max 1 rows) })
      schema
    |> Array.of_list
  in
  { name; n_rows = rows; columns }

let column t cname =
  match Array.find_opt (fun (c : column) -> String.equal c.name cname) t.columns with
  | Some c -> c
  | None -> raise Not_found

let column_index t cname =
  let rec go i =
    if i >= Array.length t.columns then raise Not_found
    else if String.equal t.columns.(i).name cname then i
    else go (i + 1)
  in
  go 0

let set arena t ~col ~row v = A.set_i64 arena (t.columns.(col).data + (8 * row)) v

let get arena t ~col ~row = A.get_i64 arena (t.columns.(col).data + (8 * row))

let of_columns ~name ~n_rows cols =
  {
    name;
    n_rows;
    columns =
      List.map (fun (cname, dtype, data) -> { name = cname; dtype; data }) cols
      |> Array.of_list;
  }

lib/storage/catalog.mli: Aeq_mem Aeq_rt Table

lib/storage/dtype.ml:

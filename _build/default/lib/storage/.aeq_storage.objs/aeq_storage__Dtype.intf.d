lib/storage/dtype.mli:

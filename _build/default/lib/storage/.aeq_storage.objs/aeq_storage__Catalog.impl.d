lib/storage/catalog.ml: Aeq_mem Aeq_rt Hashtbl String Table

lib/storage/table.mli: Aeq_mem Dtype

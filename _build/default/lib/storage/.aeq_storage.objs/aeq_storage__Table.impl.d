lib/storage/table.ml: Aeq_mem Array Dtype List Stdlib String

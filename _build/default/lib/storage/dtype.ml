type t = Int | Decimal | Date | Str | Bool

let equal (a : t) (b : t) = a = b

let to_string = function
  | Int -> "int"
  | Decimal -> "decimal"
  | Date -> "date"
  | Str -> "str"
  | Bool -> "bool"

let scale = 100

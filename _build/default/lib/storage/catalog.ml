type t = {
  arena : Aeq_mem.Arena.t;
  dict : Aeq_rt.Dict.t;
  allocator : Aeq_mem.Arena.allocator;
  tables : (string, Table.t) Hashtbl.t;
}

let create ?chunk_size () =
  let arena = Aeq_mem.Arena.create ?chunk_size () in
  {
    arena;
    dict = Aeq_rt.Dict.create ();
    allocator = Aeq_mem.Arena.allocator arena;
    tables = Hashtbl.create 16;
  }

let arena t = t.arena

let dict t = t.dict

let allocator t = t.allocator

let add_table t tbl = Hashtbl.replace t.tables tbl.Table.name tbl

let table t name =
  match Hashtbl.find_opt t.tables (String.lowercase_ascii name) with
  | Some tbl -> tbl
  | None -> (
    match Hashtbl.find_opt t.tables name with Some tbl -> tbl | None -> raise Not_found)

let tables t = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables []

(** Database catalog: shared arena, dictionary and table registry. *)

type t

val create : ?chunk_size:int -> unit -> t

val arena : t -> Aeq_mem.Arena.t

val dict : t -> Aeq_rt.Dict.t

val allocator : t -> Aeq_mem.Arena.allocator
(** The load-time allocator, for building tables. *)

val add_table : t -> Table.t -> unit

val table : t -> string -> Table.t
(** @raise Not_found *)

val tables : t -> Table.t list

let q1 =
  {|select l_returnflag, l_linestatus,
       sum(l_quantity) as sum_qty,
       sum(l_extendedprice) as sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
       avg(l_quantity) as avg_qty,
       avg(l_extendedprice) as avg_price,
       avg(l_discount) as avg_disc,
       count(*) as count_order
     from lineitem
     where l_shipdate <= date '1998-09-02'
     group by l_returnflag, l_linestatus
     order by l_returnflag, l_linestatus|}

let q2 =
  {|select n_name, min(ps_supplycost) as min_cost
     from partsupp
     join supplier on s_suppkey = ps_suppkey
     join nation on n_nationkey = s_nationkey
     join region on r_regionkey = n_regionkey
     join part on p_partkey = ps_partkey
     where p_size = 15 and p_type like '%BRASS' and r_name = 'EUROPE'
     group by n_name
     order by min_cost, n_name|}

let q3 =
  {|select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue
     from customer
     join orders on c_custkey = o_custkey
     join lineitem on l_orderkey = o_orderkey
     where c_mktsegment = 'BUILDING'
       and o_orderdate < date '1995-03-15'
       and l_shipdate > date '1995-03-15'
     group by l_orderkey
     order by revenue desc, l_orderkey
     limit 10|}

let q4 =
  {|select o_orderpriority, count(*) as order_count
     from orders
     join lineitem on l_orderkey = o_orderkey
     where o_orderdate >= date '1993-07-01'
       and o_orderdate < date '1993-10-01'
       and l_commitdate < l_receiptdate
     group by o_orderpriority
     order by o_orderpriority|}

let q5 =
  {|select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
     from customer
     join orders on c_custkey = o_custkey
     join lineitem on l_orderkey = o_orderkey
     join supplier on l_suppkey = s_suppkey
     join nation on s_nationkey = n_nationkey
     join region on n_regionkey = r_regionkey
     where c_nationkey = s_nationkey
       and r_name = 'ASIA'
       and o_orderdate >= date '1994-01-01'
       and o_orderdate < date '1995-01-01'
     group by n_name
     order by revenue desc|}

let q6 =
  {|select sum(l_extendedprice * l_discount) as revenue
     from lineitem
     where l_shipdate >= date '1994-01-01'
       and l_shipdate < date '1995-01-01'
       and l_discount between 0.05 and 0.07
       and l_quantity < 24|}

let q7 =
  {|select n1.n_name as supp_nation, n2.n_name as cust_nation,
       sum(l_extendedprice * (1 - l_discount)) as revenue
     from supplier
     join lineitem on s_suppkey = l_suppkey
     join orders on o_orderkey = l_orderkey
     join customer on c_custkey = o_custkey
     join nation n1 on s_nationkey = n1.n_nationkey
     join nation n2 on c_nationkey = n2.n_nationkey
     where l_shipdate between date '1995-01-01' and date '1996-12-31'
       and n1.n_name in ('FRANCE', 'GERMANY')
       and n2.n_name in ('FRANCE', 'GERMANY')
     group by n1.n_name, n2.n_name
     order by supp_nation, cust_nation|}

let q8 =
  {|select extract(year from o_orderdate) as o_year,
       sum(l_extendedprice * (1 - l_discount)) as volume
     from part
     join lineitem on p_partkey = l_partkey
     join orders on o_orderkey = l_orderkey
     join customer on c_custkey = o_custkey
     join nation on c_nationkey = n_nationkey
     join region on n_regionkey = r_regionkey
     where r_name = 'AMERICA'
       and o_orderdate between date '1995-01-01' and date '1996-12-31'
       and p_type = 'ECONOMY ANODIZED STEEL'
     group by extract(year from o_orderdate)
     order by o_year|}

let q9 =
  {|select n_name as nation, extract(year from o_orderdate) as o_year
     , sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) as profit
     from lineitem
     join part on p_partkey = l_partkey
     join supplier on s_suppkey = l_suppkey
     join partsupp on ps_partkey = l_partkey
     join orders on o_orderkey = l_orderkey
     join nation on s_nationkey = n_nationkey
     where ps_suppkey = l_suppkey and p_name like '%green%'
     group by n_name, extract(year from o_orderdate)
     order by nation, o_year desc|}

let q10 =
  {|select c_custkey, sum(l_extendedprice * (1 - l_discount)) as revenue
     from customer
     join orders on c_custkey = o_custkey
     join lineitem on l_orderkey = o_orderkey
     where o_orderdate >= date '1993-10-01'
       and o_orderdate < date '1994-01-01'
       and l_returnflag = 'R'
     group by c_custkey
     order by revenue desc, c_custkey
     limit 20|}

let q11 =
  {|select ps_partkey, sum(ps_supplycost * ps_availqty) as value
     from partsupp
     join supplier on ps_suppkey = s_suppkey
     join nation on s_nationkey = n_nationkey
     where n_name = 'GERMANY'
     group by ps_partkey
     having sum(ps_supplycost * ps_availqty) > 7000000.00
     order by value desc, ps_partkey
     limit 100|}

let q12 =
  {|select l_shipmode,
       sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 1 else 0 end) as high_line_count,
       sum(case when o_orderpriority in ('3-MEDIUM', '4-NOT SPECIFIED', '5-LOW') then 1 else 0 end) as low_line_count
     from orders
     join lineitem on o_orderkey = l_orderkey
     where l_shipmode in ('MAIL', 'SHIP')
       and l_commitdate < l_receiptdate
       and l_shipdate < l_commitdate
       and l_receiptdate >= date '1994-01-01'
       and l_receiptdate < date '1995-01-01'
     group by l_shipmode
     order by l_shipmode|}

let q13 =
  {|select c_custkey, count(*) as c_count
     from customer
     join orders on o_custkey = c_custkey
     where o_orderpriority <> '1-URGENT'
     group by c_custkey
     order by c_count desc, c_custkey
     limit 50|}

let q14 =
  {|select 100.00 * sum(case when p_type like 'PROMO%'
                             then l_extendedprice * (1 - l_discount)
                             else 0.00 end)
            / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
     from lineitem
     join part on l_partkey = p_partkey
     where l_shipdate >= date '1995-09-01'
       and l_shipdate < date '1995-10-01'|}

let q15 =
  {|select s_suppkey, sum(l_extendedprice * (1 - l_discount)) as total_revenue
     from lineitem
     join supplier on s_suppkey = l_suppkey
     where l_shipdate >= date '1996-01-01'
       and l_shipdate < date '1996-04-01'
     group by s_suppkey
     order by total_revenue desc, s_suppkey
     limit 1|}

let q16 =
  {|select p_brand, count(*) as supplier_cnt
     from partsupp
     join part on p_partkey = ps_partkey
     where p_brand <> 'Brand#45'
       and p_size in (49, 14, 23, 45, 19, 3, 36, 9)
     group by p_brand
     order by supplier_cnt desc, p_brand|}

let q17 =
  {|select sum(l_extendedprice) / 7.00 as avg_yearly
     from lineitem
     join part on p_partkey = l_partkey
     where p_brand = 'Brand#23'
       and p_container = 'MED BOX'
       and l_quantity < 3|}

let q18 =
  {|select o_orderkey, sum(l_quantity) as total_qty
     from orders
     join lineitem on o_orderkey = l_orderkey
     group by o_orderkey
     having sum(l_quantity) > 300
     order by total_qty desc, o_orderkey
     limit 100|}

let q19 =
  {|select sum(l_extendedprice * (1 - l_discount)) as revenue
     from lineitem
     join part on p_partkey = l_partkey
     where (p_brand = 'Brand#12'
            and p_container in ('SM CASE', 'SM BOX')
            and l_quantity >= 1 and l_quantity <= 11
            and p_size between 1 and 5
            and l_shipmode in ('AIR', 'REG AIR')
            and l_shipinstruct = 'DELIVER IN PERSON')
        or (p_brand = 'Brand#23'
            and p_container in ('MED BAG', 'MED BOX')
            and l_quantity >= 10 and l_quantity <= 20
            and p_size between 1 and 10
            and l_shipmode in ('AIR', 'REG AIR')
            and l_shipinstruct = 'DELIVER IN PERSON')|}

let q20 =
  {|select s_name, count(*) as part_count
     from partsupp
     join supplier on s_suppkey = ps_suppkey
     join nation on n_nationkey = s_nationkey
     join part on p_partkey = ps_partkey
     where p_name like 'forest%' and n_name = 'CANADA'
     group by s_name
     order by s_name|}

let q21 =
  {|select s_name, count(*) as numwait
     from lineitem
     join supplier on s_suppkey = l_suppkey
     join orders on o_orderkey = l_orderkey
     join nation on n_nationkey = s_nationkey
     where o_orderstatus = 'F'
       and l_receiptdate > l_commitdate
       and n_name = 'SAUDI ARABIA'
     group by s_name
     order by numwait desc, s_name
     limit 100|}

let q22 =
  {|select c_nationkey, count(*) as numcust, sum(c_acctbal) as totacctbal
     from customer
     where c_acctbal > 0.00
       and c_nationkey in (13, 31, 23, 29, 30, 18, 17)
     group by c_nationkey
     order by c_nationkey|}

let tpch =
  [
    ("q1", q1); ("q2", q2); ("q3", q3); ("q4", q4); ("q5", q5); ("q6", q6); ("q7", q7);
    ("q8", q8); ("q9", q9); ("q10", q10); ("q11", q11); ("q12", q12); ("q13", q13);
    ("q14", q14); ("q15", q15); ("q16", q16); ("q17", q17); ("q18", q18); ("q19", q19);
    ("q20", q20); ("q21", q21); ("q22", q22);
  ]

let tpch_q n =
  if n < 1 || n > 22 then invalid_arg "Queries.tpch_q: 1..22";
  snd (List.nth tpch (n - 1))

(* pgAdmin-style metadata queries: joins over tiny catalog-like tables *)
let metadata =
  [
    ( "meta1",
      {|select n_name, r_name from nation
         join region on n_regionkey = r_regionkey
         where n_nationkey = 7 order by n_name|} );
    ( "meta2",
      {|select r_name, count(*) as nations from nation
         join region on n_regionkey = r_regionkey
         group by r_name order by r_name|} );
    ( "meta3",
      {|select n_name, count(*) as suppliers from supplier
         join nation on s_nationkey = n_nationkey
         where s_suppkey < 50
         group by n_name order by suppliers desc, n_name|} );
    ( "meta4",
      {|select s_name, n_name, r_name from supplier
         join nation on s_nationkey = n_nationkey
         join region on n_regionkey = r_regionkey
         where s_suppkey = 42|} );
    ( "meta5",
      {|select n_name, min(s_acctbal) as lo, max(s_acctbal) as hi from supplier
         join nation on s_nationkey = n_nationkey
         join region on n_regionkey = r_regionkey
         where r_name = 'EUROPE' and s_suppkey < 100
         group by n_name order by n_name|} );
    ( "meta6",
      {|select r_name, count(*) as cnt from region
         join nation on n_regionkey = r_regionkey
         join supplier on s_nationkey = n_nationkey
         where s_suppkey < 25
         group by r_name order by cnt desc, r_name|} );
  ]

(* Section V-E: machine-generated query with n aggregate expressions *)
let large_query n =
  let b = Buffer.create (n * 64) in
  Buffer.add_string b "select ";
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_string b ", ";
    (* distinct arithmetic per aggregate so nothing folds away *)
    Buffer.add_string b
      (Printf.sprintf
         "sum(l_quantity * %d + l_extendedprice - l_discount * %d + %d) as agg_%d"
         ((i mod 17) + 1)
         ((i mod 7) + 1)
         (i + 1) i)
  done;
  Buffer.add_string b " from lineitem where l_quantity < 100";
  Buffer.contents b

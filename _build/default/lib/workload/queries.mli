(** The query workloads of the evaluation.

    [tpch] is the 22-query TPC-H suite adapted to the engine's SQL
    subset (no correlated subqueries; at most two GROUP BY keys;
    scalar subqueries replaced by constants). Each adaptation keeps
    the original's *pipeline shape* — the property the experiments
    measure. [metadata] mimics the pgAdmin catalog queries of the
    introduction: multi-join queries over tiny tables where
    compilation time would dominate. [large_query n] generates the
    machine-generated mega-query of Section V-E: one table scan with
    [n] aggregate expressions. *)

val tpch : (string * string) list
(** (name, SQL) for q1..q22. *)

val tpch_q : int -> string
(** SQL of query [1..22]. *)

val metadata : (string * string) list
(** Small catalog-style queries (the pgAdmin scenario). *)

val large_query : int -> string
(** [large_query n]: SELECT with [n] distinct aggregate expressions
    over lineitem. *)

(** Deterministic TPC-H-style data generator.

    Builds the eight TPC-H tables at classic cardinalities scaled by
    the scale factor (lineitem ≈ 6M × SF rows), with value
    distributions that preserve what the evaluation depends on:
    realistic join fan-outs, selective date/segment/brand filters,
    decimal columns exercising overflow-checked arithmetic, and skew
    on return flags. Strings are dictionary-encoded at generation
    time. The same seed always yields the same database. *)

val load : ?seed:int64 -> scale_factor:float -> Aeq_storage.Catalog.t -> unit
(** Create and register all eight tables. *)

val table_names : string list

module A = Aeq_mem.Arena
module P = Aeq_util.Prng
module Dtype = Aeq_storage.Dtype
module Table = Aeq_storage.Table
module Catalog = Aeq_storage.Catalog

let table_names =
  [ "region"; "nation"; "supplier"; "customer"; "part"; "partsupp"; "orders"; "lineitem" ]

let region_names = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nation_names =
  [|
    "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA"; "FRANCE"; "GERMANY";
    "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN"; "JORDAN"; "KENYA"; "MOROCCO";
    "MOZAMBIQUE"; "PERU"; "CHINA"; "ROMANIA"; "SAUDI ARABIA"; "VIETNAM"; "RUSSIA";
    "UNITED KINGDOM"; "UNITED STATES";
  |]

let nation_region = [| 0; 1; 1; 1; 4; 0; 3; 3; 2; 2; 4; 4; 2; 4; 0; 0; 0; 1; 2; 3; 4; 2; 3; 3; 1 |]

let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]

let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let ship_modes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]

let ship_instructs = [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]

let containers =
  [| "SM CASE"; "SM BOX"; "MED BAG"; "MED BOX"; "LG CASE"; "LG BOX"; "JUMBO PACK"; "WRAP JAR" |]

let type_syllables_1 = [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]

let type_syllables_2 = [| "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" |]

let type_syllables_3 = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]

let name_words =
  [|
    "almond"; "antique"; "aquamarine"; "azure"; "beige"; "bisque"; "black"; "blanched";
    "blue"; "blush"; "brown"; "burlywood"; "chartreuse"; "chiffon"; "chocolate"; "coral";
    "cornflower"; "cream"; "cyan"; "dark"; "deep"; "dim"; "dodger"; "drab"; "firebrick";
    "floral"; "forest"; "frosted"; "gainsboro"; "ghost"; "goldenrod"; "green"; "grey";
    "honeydew"; "hot"; "indian"; "ivory"; "khaki"; "lace"; "lavender"; "lawn"; "lemon";
    "light"; "lime"; "linen"; "magenta"; "maroon"; "medium"; "metallic"; "midnight";
    "mint"; "misty"; "moccasin"; "navajo"; "navy"; "olive"; "orange"; "orchid"; "pale";
    "papaya"; "peach"; "peru"; "pink"; "plum"; "powder"; "puff"; "purple"; "red"; "rose";
    "rosy"; "royal"; "saddle"; "salmon"; "sandy"; "seashell"; "sienna"; "sky"; "slate";
    "smoke"; "snow"; "spring"; "steel"; "tan"; "thistle"; "tomato"; "turquoise"; "violet";
    "wheat"; "white"; "yellow";
  |]

(* date range 1992-01-01 .. 1998-12-31 as days since 1970-01-01 *)
let date_lo = 8035

let date_hi = 10591

let load ?(seed = 20180416L) ~scale_factor catalog =
  let arena = Catalog.arena catalog in
  let alloc = Catalog.allocator catalog in
  let dict = Catalog.dict catalog in
  let rng = P.create seed in
  let enc s = Aeq_rt.Dict.encode dict s in
  let sf x = Stdlib.max 1 (int_of_float (float_of_int x *. scale_factor)) in
  let mk name rows schema = Table.create arena alloc ~name ~rows ~schema in
  let set tbl col row v = Table.set arena tbl ~col ~row v in
  let seti tbl col row v = set tbl col row (Int64.of_int v) in
  (* region --------------------------------------------------------- *)
  let region = mk "region" 5 [ ("r_regionkey", Dtype.Int); ("r_name", Dtype.Str) ] in
  for i = 0 to 4 do
    seti region 0 i i;
    set region 1 i (enc region_names.(i))
  done;
  Catalog.add_table catalog region;
  (* nation --------------------------------------------------------- *)
  let nation =
    mk "nation" 25
      [ ("n_nationkey", Dtype.Int); ("n_name", Dtype.Str); ("n_regionkey", Dtype.Int) ]
  in
  for i = 0 to 24 do
    seti nation 0 i i;
    set nation 1 i (enc nation_names.(i));
    seti nation 2 i nation_region.(i)
  done;
  Catalog.add_table catalog nation;
  (* supplier -------------------------------------------------------- *)
  let n_supp = sf 10_000 in
  let supplier =
    mk "supplier" n_supp
      [
        ("s_suppkey", Dtype.Int);
        ("s_name", Dtype.Str);
        ("s_nationkey", Dtype.Int);
        ("s_acctbal", Dtype.Decimal);
      ]
  in
  for i = 0 to n_supp - 1 do
    seti supplier 0 i i;
    set supplier 1 i (enc (Printf.sprintf "Supplier#%09d" i));
    seti supplier 2 i (P.int rng 25);
    seti supplier 3 i (P.int_in rng (-99999) 999999)
  done;
  Catalog.add_table catalog supplier;
  (* customer -------------------------------------------------------- *)
  let n_cust = sf 150_000 in
  let customer =
    mk "customer" n_cust
      [
        ("c_custkey", Dtype.Int);
        ("c_name", Dtype.Str);
        ("c_nationkey", Dtype.Int);
        ("c_mktsegment", Dtype.Str);
        ("c_acctbal", Dtype.Decimal);
      ]
  in
  (* pre-encode customer names sparsely: names are unique per key but
     the dictionary should not explode, so reuse a word pool *)
  for i = 0 to n_cust - 1 do
    seti customer 0 i i;
    set customer 1 i
      (enc (Printf.sprintf "Customer#%s-%d" (P.pick rng name_words) (i mod 1000)));
    seti customer 2 i (P.int rng 25);
    set customer 3 i (enc (P.pick rng segments));
    seti customer 4 i (P.int_in rng (-99999) 999999)
  done;
  Catalog.add_table catalog customer;
  (* part ------------------------------------------------------------ *)
  let n_part = sf 200_000 in
  let part =
    mk "part" n_part
      [
        ("p_partkey", Dtype.Int);
        ("p_name", Dtype.Str);
        ("p_brand", Dtype.Str);
        ("p_type", Dtype.Str);
        ("p_size", Dtype.Int);
        ("p_container", Dtype.Str);
        ("p_retailprice", Dtype.Decimal);
      ]
  in
  for i = 0 to n_part - 1 do
    seti part 0 i i;
    set part 1 i (enc (P.pick rng name_words ^ " " ^ P.pick rng name_words));
    set part 2 i (enc (Printf.sprintf "Brand#%d%d" (1 + P.int rng 5) (1 + P.int rng 5)));
    set part 3 i
      (enc
         (P.pick rng type_syllables_1 ^ " " ^ P.pick rng type_syllables_2 ^ " "
        ^ P.pick rng type_syllables_3));
    seti part 4 i (1 + P.int rng 50);
    set part 5 i (enc (P.pick rng containers));
    seti part 6 i (90_000 + P.int rng 10_000 + (i mod 1000))
  done;
  Catalog.add_table catalog part;
  (* partsupp --------------------------------------------------------- *)
  let n_ps = n_part * 4 in
  let partsupp =
    mk "partsupp" n_ps
      [
        ("ps_partkey", Dtype.Int);
        ("ps_suppkey", Dtype.Int);
        ("ps_availqty", Dtype.Int);
        ("ps_supplycost", Dtype.Decimal);
      ]
  in
  for i = 0 to n_ps - 1 do
    seti partsupp 0 i (i / 4);
    seti partsupp 1 i ((i + (i / 4)) mod n_supp);
    seti partsupp 2 i (1 + P.int rng 9999);
    seti partsupp 3 i (100 + P.int rng 99_900)
  done;
  Catalog.add_table catalog partsupp;
  (* orders ----------------------------------------------------------- *)
  let n_orders = sf 1_500_000 in
  let orders =
    mk "orders" n_orders
      [
        ("o_orderkey", Dtype.Int);
        ("o_custkey", Dtype.Int);
        ("o_orderstatus", Dtype.Str);
        ("o_totalprice", Dtype.Decimal);
        ("o_orderdate", Dtype.Date);
        ("o_orderpriority", Dtype.Str);
        ("o_shippriority", Dtype.Int);
      ]
  in
  let status_codes = [| enc "F"; enc "O"; enc "P" |] in
  let priority_codes = Array.map enc priorities in
  for i = 0 to n_orders - 1 do
    seti orders 0 i i;
    seti orders 1 i (P.int rng n_cust);
    set orders 2 i status_codes.(P.int rng 3);
    seti orders 3 i (1_000_00 + P.int rng 45_000_000);
    seti orders 4 i (P.int_in rng date_lo date_hi);
    set orders 5 i priority_codes.(P.int rng 5);
    seti orders 6 i 0
  done;
  Catalog.add_table catalog orders;
  (* lineitem ---------------------------------------------------------- *)
  (* pass 1: count lines per order (1..7) *)
  let lines_rng = P.split rng in
  let line_counts = Array.init n_orders (fun _ -> 1 + P.int lines_rng 7) in
  let n_lines = Array.fold_left ( + ) 0 line_counts in
  let lineitem =
    mk "lineitem" n_lines
      [
        ("l_orderkey", Dtype.Int);
        ("l_partkey", Dtype.Int);
        ("l_suppkey", Dtype.Int);
        ("l_linenumber", Dtype.Int);
        ("l_quantity", Dtype.Decimal);
        ("l_extendedprice", Dtype.Decimal);
        ("l_discount", Dtype.Decimal);
        ("l_tax", Dtype.Decimal);
        ("l_returnflag", Dtype.Str);
        ("l_linestatus", Dtype.Str);
        ("l_shipdate", Dtype.Date);
        ("l_commitdate", Dtype.Date);
        ("l_receiptdate", Dtype.Date);
        ("l_shipinstruct", Dtype.Str);
        ("l_shipmode", Dtype.Str);
      ]
  in
  let flag_r = enc "R" and flag_a = enc "A" and flag_n = enc "N" in
  let status_o = enc "O" and status_f = enc "F" in
  let mode_codes = Array.map enc ship_modes in
  let instruct_codes = Array.map enc ship_instructs in
  let row = ref 0 in
  for o = 0 to n_orders - 1 do
    let odate = Int64.to_int (Table.get arena orders ~col:4 ~row:o) in
    for ln = 0 to line_counts.(o) - 1 do
      let i = !row in
      incr row;
      let partkey = P.int rng n_part in
      seti lineitem 0 i o;
      seti lineitem 1 i partkey;
      seti lineitem 2 i ((partkey + (ln * 13)) mod n_supp);
      seti lineitem 3 i (ln + 1);
      let qty = 1 + P.int rng 50 in
      seti lineitem 4 i (qty * 100);
      let price = Int64.to_int (Table.get arena part ~col:6 ~row:partkey) in
      seti lineitem 5 i (qty * price);
      seti lineitem 6 i (P.int rng 11);
      seti lineitem 7 i (P.int rng 9);
      let shipdate = Stdlib.min date_hi (odate + 1 + P.int rng 120) in
      (* return flag: R/A for old shipments, N for recent — the skew
         Q1's groups rely on *)
      set lineitem 8 i
        (if shipdate > date_hi - 700 then flag_n else if P.bool rng then flag_r else flag_a);
      set lineitem 9 i (if shipdate > date_hi - 700 then status_o else status_f);
      seti lineitem 10 i shipdate;
      seti lineitem 11 i (Stdlib.min date_hi (shipdate + P.int_in rng (-30) 30));
      seti lineitem 12 i (Stdlib.min date_hi (shipdate + 1 + P.int rng 30));
      set lineitem 13 i instruct_codes.(P.int rng (Array.length instruct_codes));
      set lineitem 14 i mode_codes.(P.int rng (Array.length mode_codes))
    done
  done;
  Catalog.add_table catalog lineitem

lib/workload/tpch.mli: Aeq_storage

lib/workload/queries.mli:

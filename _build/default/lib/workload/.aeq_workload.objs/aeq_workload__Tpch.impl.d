lib/workload/tpch.ml: Aeq_mem Aeq_rt Aeq_storage Aeq_util Array Int64 Printf Stdlib

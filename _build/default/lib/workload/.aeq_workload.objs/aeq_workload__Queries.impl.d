lib/workload/queries.ml: Buffer List Printf

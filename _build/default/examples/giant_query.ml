(* Section V-E's nightmare: a machine-generated query (here 600
   aggregate expressions, megabytes of SQL in the real world) whose
   optimized compilation would take seconds — while the bytecode
   translator scales linearly and starts executing immediately.

     dune exec examples/giant_query.exe *)

module CM = Aeq_backend.Cost_model
module Driver = Aeq_exec.Driver

let () =
  let engine = Aeq.Engine.create () in
  Aeq.Engine.load_tpch engine ~scale_factor:0.005;
  let n_aggs = 600 in
  let sql = Aeq_workload.Queries.large_query n_aggs in
  Printf.printf "generated query: %d aggregates, %d bytes of SQL\n" n_aggs (String.length sql);
  let plan = Aeq.Engine.plan engine sql in
  let layout = Aeq_plan.Physical.layout plan in
  let workers = Aeq_codegen.Codegen.all_workers plan layout in
  let n_instrs = List.fold_left (fun a f -> a + Aeq_ir.Func.n_instrs f) 0 workers in
  let model = Aeq.Engine.cost_model engine in
  let t m =
    List.fold_left (fun a f -> a +. CM.compile_time model m (Aeq_ir.Func.n_instrs f)) 0.0 workers
  in
  Printf.printf "IR size: %d instructions\n" n_instrs;
  Printf.printf "modeled compile times:  bytecode %.1f ms | unoptimized %.1f ms | optimized %.1f ms\n"
    (t CM.Bytecode *. 1e3) (t CM.Unopt *. 1e3) (t CM.Opt *. 1e3);
  let r, dt =
    Aeq_util.Clock.time_it (fun () -> Aeq.Engine.query engine ~mode:Driver.Bytecode sql)
  in
  Printf.printf "bytecode end-to-end: %.1f ms (%d result columns)\n" (dt *. 1e3)
    (List.length r.Driver.names);
  let r2 = Aeq.Engine.query engine ~mode:Driver.Adaptive sql in
  Printf.printf "adaptive end-to-end: %.1f ms (modes: %s)\n"
    (r2.Driver.stats.Driver.total_seconds *. 1e3)
    (String.concat ", " r2.Driver.stats.Driver.final_modes);
  Aeq.Engine.close engine

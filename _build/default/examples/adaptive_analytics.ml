(* A mixed dashboard workload: small lookups interleaved with heavy
   analytics. The adaptive engine handles both well — it interprets
   the cheap queries and compiles the hot pipelines of the expensive
   ones, per pipeline, based on runtime feedback.

     dune exec examples/adaptive_analytics.exe *)

module Driver = Aeq_exec.Driver

let workload =
  [
    ("lookup nations", "select n_name from nation join region on n_regionkey = r_regionkey where r_name = 'ASIA' order by n_name");
    ("big aggregation", Aeq_workload.Queries.tpch_q 1);
    ("point-ish query", List.assoc "meta4" Aeq_workload.Queries.metadata);
    ("join heavy", Aeq_workload.Queries.tpch_q 5);
    ("another lookup", List.assoc "meta2" Aeq_workload.Queries.metadata);
    ("filter + sum", Aeq_workload.Queries.tpch_q 6);
  ]

let () =
  let engine = Aeq.Engine.create ~n_threads:4 () in
  Aeq.Engine.load_tpch engine ~scale_factor:0.02;
  Printf.printf "%-18s %10s %12s  %s\n" "query" "total[ms]" "compile[ms]" "pipeline modes at completion";
  List.iter
    (fun (name, sql) ->
      let r = Aeq.Engine.query engine ~mode:Driver.Adaptive sql in
      let st = r.Driver.stats in
      Printf.printf "%-18s %10.2f %12.2f  %s\n" name
        (st.Driver.total_seconds *. 1e3)
        (st.Driver.compile_seconds *. 1e3)
        (String.concat ", " st.Driver.final_modes))
    workload;
  print_endline "\nnote how cheap queries stay on 'bytecode' while expensive pipelines upgrade.";
  Aeq.Engine.close engine

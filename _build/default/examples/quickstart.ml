(* Quickstart: create an engine, load data, run SQL adaptively.

     dune exec examples/quickstart.exe *)

let () =
  let engine = Aeq.Engine.create () in
  Aeq.Engine.load_tpch engine ~scale_factor:0.01;

  let sql =
    {|select l_returnflag, l_linestatus, sum(l_quantity) as total_qty, count(*) as cnt
       from lineitem
       where l_shipdate <= date '1998-09-02'
       group by l_returnflag, l_linestatus
       order by l_returnflag, l_linestatus|}
  in
  print_endline "plan:";
  print_endline (Aeq.Engine.explain engine sql);

  let result = Aeq.Engine.query engine sql in
  print_endline (String.concat "\t" result.Aeq_exec.Driver.names);
  List.iter print_endline (Aeq.Engine.render_rows engine result);

  let st = result.Aeq_exec.Driver.stats in
  Printf.printf
    "\ncodegen %.2f ms | bytecode translation %.2f ms | compilation %.2f ms | execution %.2f ms\n"
    (st.Aeq_exec.Driver.codegen_seconds *. 1e3)
    (st.Aeq_exec.Driver.bc_seconds *. 1e3)
    (st.Aeq_exec.Driver.compile_seconds *. 1e3)
    (st.Aeq_exec.Driver.exec_seconds *. 1e3);
  Printf.printf "final pipeline modes: %s\n"
    (String.concat ", " st.Aeq_exec.Driver.final_modes);
  Aeq.Engine.close engine

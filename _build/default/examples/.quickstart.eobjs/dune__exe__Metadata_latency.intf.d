examples/metadata_latency.mli:

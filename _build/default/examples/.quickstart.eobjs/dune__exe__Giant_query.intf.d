examples/giant_query.mli:

examples/adaptive_analytics.ml: Aeq Aeq_exec Aeq_workload List Printf String

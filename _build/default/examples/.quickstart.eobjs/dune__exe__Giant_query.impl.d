examples/giant_query.ml: Aeq Aeq_backend Aeq_codegen Aeq_exec Aeq_ir Aeq_plan Aeq_util Aeq_workload List Printf String

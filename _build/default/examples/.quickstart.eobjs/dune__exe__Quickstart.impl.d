examples/quickstart.ml: Aeq Aeq_exec List Printf String

examples/adaptive_analytics.mli:

examples/quickstart.mli:

examples/metadata_latency.ml: Aeq Aeq_exec Aeq_workload List Printf

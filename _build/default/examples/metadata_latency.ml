(* The pgAdmin scenario from the paper's introduction: a burst of
   small catalog-style queries where an always-compile engine wastes
   almost all its time in the compiler, while the bytecode interpreter
   and the adaptive mode answer instantly.

     dune exec examples/metadata_latency.exe *)

module Driver = Aeq_exec.Driver

let () =
  let engine = Aeq.Engine.create () in
  Aeq.Engine.load_tpch engine ~scale_factor:0.01;
  Printf.printf "running %d metadata queries per mode:\n\n"
    (List.length Aeq_workload.Queries.metadata);
  Printf.printf "%-14s %12s %14s %14s\n" "mode" "total[ms]" "compile[ms]" "exec[ms]";
  List.iter
    (fun mode ->
      let total = ref 0.0 and compile = ref 0.0 and exec = ref 0.0 in
      List.iter
        (fun (_, sql) ->
          let r = Aeq.Engine.query engine ~mode sql in
          let st = r.Driver.stats in
          total := !total +. st.Driver.total_seconds;
          compile := !compile +. st.Driver.compile_seconds +. st.Driver.bc_seconds;
          exec := !exec +. st.Driver.exec_seconds)
        Aeq_workload.Queries.metadata;
      Printf.printf "%-14s %12.2f %14.2f %14.2f\n" (Driver.mode_name mode) (!total *. 1e3)
        (!compile *. 1e3) (!exec *. 1e3))
    [ Driver.Opt; Driver.Unopt; Driver.Bytecode; Driver.Adaptive ];
  print_endline
    "\nthe adaptive engine answers these like an interpreter: compilation never pays off.";
  Aeq.Engine.close engine

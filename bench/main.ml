(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section V). See EXPERIMENTS.md for the mapping
   and for paper-vs-measured discussion.

   Usage:  main.exe [fig1] [fig2] [fig6] [fig13] [fig14] [fig15]
                    [table1] [table2] [regalloc] [micro]
   No arguments runs everything. Scale factors can be reduced or
   raised with AEQ_SF (default 0.05) and thread count with
   AEQ_THREADS (default = cores, max 8). *)

module Driver = Aeq_exec.Driver
module CM = Aeq_backend.Cost_model
module Clock = Aeq_util.Clock
module Stats = Aeq_util.Stats

let base_sf =
  match Sys.getenv_opt "AEQ_SF" with Some s -> float_of_string s | None -> 0.05

let n_threads =
  match Sys.getenv_opt "AEQ_THREADS" with
  | Some s -> int_of_string s
  | None -> Stdlib.min 8 (Domain.recommended_domain_count ())

let header title =
  Printf.printf "\n================ %s ================\n%!" title

(* engines are cached per scale factor *)
let engines : (float, Aeq.Engine.t) Hashtbl.t = Hashtbl.create 8

let engine_at sf =
  match Hashtbl.find_opt engines sf with
  | Some e -> e
  | None ->
    let e = Aeq.Engine.create ~n_threads () in
    let (), dt = Clock.time_it (fun () -> Aeq.Engine.load_tpch e ~scale_factor:sf) in
    Printf.printf "[load] TPC-H sf=%.3f loaded in %.1f s\n%!" sf dt;
    Hashtbl.replace engines sf e;
    e

let ms x = x *. 1000.0

let time_best ?(n = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to n do
    let r, dt = Clock.time_it f in
    result := Some r;
    if dt < !best then best := dt
  done;
  (Option.get !result, !best)

(* ------------------------------------------------------------------ *)
(* FIG 1 / FIG 3: compilation phases of Q1                             *)
(* ------------------------------------------------------------------ *)
let fig1 () =
  header "FIG 1/3: phase times for TPC-H Q1 (ms)";
  let e = engine_at base_sf in
  let sql = Aeq_workload.Queries.tpch_q 1 in
  let plan, t_plan = time_best (fun () -> Aeq.Engine.plan e sql) in
  let layout = Aeq_plan.Physical.layout plan in
  let workers, t_cdg =
    time_best (fun () -> Aeq_codegen.Codegen.all_workers plan layout)
  in
  let n_instrs = List.fold_left (fun a f -> a + Func.n_instrs f) 0 workers in
  let model = Aeq.Engine.cost_model e in
  let t_bc = List.fold_left (fun a f -> a +. CM.compile_time model CM.Bytecode (Func.n_instrs f)) 0.0 workers in
  let t_unopt = List.fold_left (fun a f -> a +. CM.compile_time model CM.Unopt (Func.n_instrs f)) 0.0 workers in
  let t_opt = List.fold_left (fun a f -> a +. CM.compile_time model CM.Opt (Func.n_instrs f)) 0.0 workers in
  Printf.printf "planning (parse+analyze+optimize) %8.2f\n" (ms t_plan);
  Printf.printf "code generation (%4d IR instrs)  %8.2f\n" n_instrs (ms t_cdg);
  Printf.printf "bytecode translation              %8.2f\n" (ms t_bc);
  Printf.printf "LLVM-comp. unoptimized (modeled)  %8.2f\n" (ms t_unopt);
  Printf.printf "LLVM-comp. optimized   (modeled)  %8.2f\n" (ms t_opt)

(* ------------------------------------------------------------------ *)
(* FIG 2: compile vs execution time per mode, Q1                        *)
(* ------------------------------------------------------------------ *)
let fig2 () =
  header (Printf.sprintf "FIG 2: Q1 compile vs execution time per mode (sf=%.3f, 1 thread equivalent rates)" base_sf);
  let e = engine_at base_sf in
  let sql = Aeq_workload.Queries.tpch_q 1 in
  Printf.printf "%-14s %14s %14s\n" "mode" "compile[ms]" "exec[ms]";
  List.iter
    (fun mode ->
      let r, _ = time_best ~n:2 (fun () -> Aeq.Engine.query e ~mode sql) in
      let st = r.Driver.stats in
      Printf.printf "%-14s %14.2f %14.2f\n" (Driver.mode_name mode)
        (ms (st.Driver.bc_seconds +. st.Driver.compile_seconds))
        (ms st.Driver.exec_seconds))
    [ Driver.Bytecode; Driver.Unopt; Driver.Opt; Driver.Adaptive ];
  (* the LLVM-IR-interpreter point: direct IR interpretation is the
     slow no-translation baseline *)
  let plan = Aeq.Engine.plan e sql in
  ignore plan;
  Printf.printf "(LLVM-IR-interpreter analogue: see micro benchmark 'ir-interp')\n"

(* ------------------------------------------------------------------ *)
(* FIG 6: compile time vs #instructions across the query suite          *)
(* ------------------------------------------------------------------ *)
let fig6 () =
  header "FIG 6: modeled compile time vs IR size, all 22 queries (per query, ms)";
  let e = engine_at base_sf in
  let model = Aeq.Engine.cost_model e in
  Printf.printf "%-5s %9s %12s %12s %12s\n" "query" "#instrs" "bytecode" "unopt" "opt";
  let pts_u = ref [] and pts_o = ref [] in
  List.iter
    (fun (name, sql) ->
      let plan = Aeq.Engine.plan e sql in
      let layout = Aeq_plan.Physical.layout plan in
      let workers = Aeq_codegen.Codegen.all_workers plan layout in
      let n = List.fold_left (fun a f -> a + Func.n_instrs f) 0 workers in
      let t m = List.fold_left (fun a f -> a +. CM.compile_time model m (Func.n_instrs f)) 0.0 workers in
      pts_u := (float_of_int n, t CM.Unopt) :: !pts_u;
      pts_o := (float_of_int n, t CM.Opt) :: !pts_o;
      Printf.printf "%-5s %9d %12.2f %12.2f %12.2f\n" name n (ms (t CM.Bytecode))
        (ms (t CM.Unopt)) (ms (t CM.Opt)))
    Aeq_workload.Queries.tpch;
  let _, slope_u = Stats.linear_fit !pts_u and _, slope_o = Stats.linear_fit !pts_o in
  Printf.printf "near-linear fits: unopt %.2f us/instr, opt %.2f us/instr\n"
    (slope_u *. 1e6) (slope_o *. 1e6)

(* ------------------------------------------------------------------ *)
(* FIG 13: geometric mean over the suite, SF sweep, all modes            *)
(* ------------------------------------------------------------------ *)
let fig13 () =
  let sfs = [ base_sf /. 10.0; base_sf /. 3.0; base_sf ] in
  header
    (Printf.sprintf "FIG 13: geometric mean of 22 queries, total time [ms], %d threads" n_threads);
  Printf.printf "%-8s %12s %12s %12s %12s\n" "sf" "bytecode" "unopt" "opt" "adaptive";
  List.iter
    (fun sf ->
      let e = engine_at sf in
      let per_mode =
        List.map
          (fun mode ->
            let times =
              List.map
                (fun (_, sql) ->
                  let r, dt = Clock.time_it (fun () -> Aeq.Engine.query e ~mode sql) in
                  ignore r;
                  dt)
                Aeq_workload.Queries.tpch
            in
            Stats.geomean times)
          [ Driver.Bytecode; Driver.Unopt; Driver.Opt; Driver.Adaptive ]
      in
      match per_mode with
      | [ b; u; o; a ] ->
        Printf.printf "%-8.3f %12.2f %12.2f %12.2f %12.2f\n%!" sf (ms b) (ms u) (ms o) (ms a)
      | _ -> assert false)
    sfs

(* ------------------------------------------------------------------ *)
(* FIG 14: execution trace of Q11, 4 threads                            *)
(* ------------------------------------------------------------------ *)
let fig14 () =
  header "FIG 14: execution trace of Q11 (4 worker threads)";
  (* a dedicated 4-thread engine: the trace structure (morsel lanes,
     compile bursts) needs several workers even on few cores *)
  let e = Aeq.Engine.create ~n_threads:4 () in
  Aeq.Engine.load_tpch e ~scale_factor:base_sf;
  let sql = Aeq_workload.Queries.tpch_q 11 in
  List.iter
    (fun mode ->
      let r = Aeq.Engine.query e ~mode ~collect_trace:true sql in
      Printf.printf "\n--- %s (%.2f ms total) ---\n" (Driver.mode_name mode)
        (ms r.Driver.stats.Driver.total_seconds);
      Printf.printf "final pipeline modes: %s\n"
        (String.concat ", " r.Driver.stats.Driver.final_modes);
      match r.Driver.trace with
      | Some tr -> print_string (Aeq_exec.Trace.render tr ~n_threads:4)
      | None -> ())
    [ Driver.Bytecode; Driver.Unopt; Driver.Adaptive ];
  Aeq.Engine.close e

(* ------------------------------------------------------------------ *)
(* FIG 15: very large machine-generated queries                          *)
(* ------------------------------------------------------------------ *)
let fig15 () =
  header "FIG 15: machine-generated queries, compilation time [ms]";
  let e = engine_at (base_sf /. 10.0) in
  Printf.printf "%-8s %9s %12s %12s %12s\n" "#aggs" "#instrs" "bytecode" "unopt" "opt";
  List.iter
    (fun n_aggs ->
      let sql = Aeq_workload.Queries.large_query n_aggs in
      let plan = Aeq.Engine.plan e sql in
      let layout = Aeq_plan.Physical.layout plan in
      let workers = Aeq_codegen.Codegen.all_workers plan layout in
      let n = List.fold_left (fun a f -> a + Func.n_instrs f) 0 workers in
      let model = Aeq.Engine.cost_model e in
      let t m =
        List.fold_left (fun a f -> a +. CM.compile_time model m (Func.n_instrs f)) 0.0 workers
      in
      Printf.printf "%-8d %9d %12.2f %12.2f %12.2f\n%!" n_aggs n (ms (t CM.Bytecode))
        (ms (t CM.Unopt)) (ms (t CM.Opt)))
    [ 10; 50; 100; 200; 400; 800; 1900 ];
  (* and demonstrate that the bytecode path actually executes the
     largest query *)
  let sql = Aeq_workload.Queries.large_query 400 in
  let r, dt = Clock.time_it (fun () -> Aeq.Engine.query e ~mode:Driver.Bytecode sql) in
  Printf.printf "bytecode end-to-end on 400 aggregates: %.1f ms (%d rows)\n" (ms dt)
    r.Driver.stats.Driver.rows_out

(* ------------------------------------------------------------------ *)
(* TABLE 1: planning and compilation times                               *)
(* ------------------------------------------------------------------ *)
let table1 () =
  header "TABLE I: planning and compilation times [ms]";
  let e = engine_at base_sf in
  let model = Aeq.Engine.cost_model e in
  Printf.printf "%-5s %8s %8s %8s %8s %8s\n" "query" "plan" "cdg." "bc." "unopt" "opt";
  let maxes = Array.make 5 0.0 in
  List.iteri
    (fun i (name, sql) ->
      let plan, t_plan = time_best ~n:2 (fun () -> Aeq.Engine.plan e sql) in
      let layout = Aeq_plan.Physical.layout plan in
      let workers, t_cdg =
        time_best ~n:2 (fun () -> Aeq_codegen.Codegen.all_workers plan layout)
      in
      let t m =
        List.fold_left (fun a f -> a +. CM.compile_time model m (Func.n_instrs f)) 0.0 workers
      in
      let row = [| t_plan; t_cdg; t CM.Bytecode; t CM.Unopt; t CM.Opt |] in
      Array.iteri (fun k v -> if v > maxes.(k) then maxes.(k) <- v) row;
      if i < 5 then
        Printf.printf "%-5s %8.2f %8.2f %8.2f %8.2f %8.2f\n" name (ms row.(0)) (ms row.(1))
          (ms row.(2)) (ms row.(3)) (ms row.(4)))
    Aeq_workload.Queries.tpch;
  Printf.printf "%-5s %8.2f %8.2f %8.2f %8.2f %8.2f\n" "max" (ms maxes.(0)) (ms maxes.(1))
    (ms maxes.(2)) (ms maxes.(3)) (ms maxes.(4))

(* ------------------------------------------------------------------ *)
(* TABLE 2: execution times, baselines and modes, 1 vs N threads         *)
(* ------------------------------------------------------------------ *)
let table2 () =
  header
    (Printf.sprintf "TABLE II: execution times [ms] (sf=%.3f; pg=volcano, monet=vectorized)"
       base_sf);
  let e = engine_at base_sf in
  let catalog = Aeq.Engine.catalog e in
  let e1 = Aeq.Engine.create ~n_threads:1 () in
  (* share the catalog through a 1-thread pool on the same data: reuse
     the same engine data by running the driver directly *)
  Aeq.Engine.close e1;
  let pool1 = Aeq_exec.Pool.create ~n_threads:1 () in
  Printf.printf "%-5s %9s %9s | %9s %9s %9s | %9s %9s %9s\n" "query" "pg" "monet" "bc(1)"
    "unopt(1)" "opt(1)" (Printf.sprintf "bc(%d)" n_threads)
    (Printf.sprintf "un(%d)" n_threads)
    (Printf.sprintf "opt(%d)" n_threads);
  let acc = Array.make 8 [] in
  let note k v = acc.(k) <- v :: acc.(k) in
  List.iteri
    (fun i (name, sql) ->
      let plan = Aeq.Engine.plan e sql in
      let _, t_pg = time_best ~n:1 (fun () -> Aeq_baseline.Volcano.execute catalog plan) in
      let _, t_mo = time_best ~n:1 (fun () -> Aeq_baseline.Vectorized.execute catalog plan) in
      let exec_time pool mode =
        let r, _ =
          time_best ~n:2 (fun () ->
              Driver.execute ~cost_model:(Aeq.Engine.cost_model e) catalog plan ~mode ~pool)
        in
        r.Driver.stats.Driver.exec_seconds
      in
      let row =
        [|
          t_pg;
          t_mo;
          exec_time pool1 Driver.Bytecode;
          exec_time pool1 Driver.Unopt;
          exec_time pool1 Driver.Opt;
          exec_time (Aeq.Engine.pool e) Driver.Bytecode;
          exec_time (Aeq.Engine.pool e) Driver.Unopt;
          exec_time (Aeq.Engine.pool e) Driver.Opt;
        |]
      in
      Array.iteri (fun k v -> note k v) row;
      if i < 5 then
        Printf.printf "%-5s %9.2f %9.2f | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n%!" name
          (ms row.(0)) (ms row.(1)) (ms row.(2)) (ms row.(3)) (ms row.(4)) (ms row.(5))
          (ms row.(6)) (ms row.(7)))
    Aeq_workload.Queries.tpch;
  let g k = ms (Stats.geomean acc.(k)) in
  Printf.printf "%-5s %9.2f %9.2f | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n" "geo.m"
    (g 0) (g 1) (g 2) (g 3) (g 4) (g 5) (g 6) (g 7);
  Aeq_exec.Pool.shutdown pool1

(* ------------------------------------------------------------------ *)
(* Section IV-C: register allocation ablation                            *)
(* ------------------------------------------------------------------ *)
let regalloc () =
  header "SEC IV-C: register-file size by allocation strategy [bytes]";
  let e = engine_at base_sf in
  Printf.printf "%-5s %10s %10s %10s\n" "query" "loop-aware" "window(4)" "no-reuse";
  let no_symbols = Aeq_rt.Symbols.resolver
      (Aeq_rt.Context.create ~arena:(Aeq_storage.Catalog.arena (Aeq.Engine.catalog e))
         ~dict:(Aeq_storage.Catalog.dict (Aeq.Engine.catalog e)) ~n_threads:1 ())
  in
  List.iter
    (fun qn ->
      let sql = Aeq_workload.Queries.tpch_q qn in
      let plan = Aeq.Engine.plan e sql in
      let layout = Aeq_plan.Physical.layout plan in
      let workers = Aeq_codegen.Codegen.all_workers plan layout in
      let size strategy =
        List.fold_left
          (fun a f ->
            let prog = Aeq_vm.Translate.translate ~strategy ~symbols:no_symbols f in
            a + prog.Aeq_vm.Bytecode.n_reg_bytes)
          0 workers
      in
      Printf.printf "q%-4d %10d %10d %10d\n" qn
        (size Aeq_vm.Regalloc.Loop_aware)
        (size (Aeq_vm.Regalloc.Window 4))
        (size Aeq_vm.Regalloc.No_reuse))
    [ 1; 5; 9; 19 ];
  (* and for a machine-generated mega-query *)
  let sql = Aeq_workload.Queries.large_query 200 in
  let plan = Aeq.Engine.plan e sql in
  let layout = Aeq_plan.Physical.layout plan in
  let workers = Aeq_codegen.Codegen.all_workers plan layout in
  let size strategy =
    List.fold_left
      (fun a f ->
        let prog = Aeq_vm.Translate.translate ~strategy ~symbols:no_symbols f in
        a + prog.Aeq_vm.Bytecode.n_reg_bytes)
      0 workers
  in
  Printf.printf "%-5s %10d %10d %10d\n" "gen"
    (size Aeq_vm.Regalloc.Loop_aware)
    (size (Aeq_vm.Regalloc.Window 4))
    (size Aeq_vm.Regalloc.No_reuse)

(* ------------------------------------------------------------------ *)
(* bechamel micro-benchmarks                                             *)
(* ------------------------------------------------------------------ *)
let micro () =
  header "MICRO: bechamel benchmarks (monotonic-clock ns per run)";
  let open Bechamel in
  let mem = Aeq_mem.Arena.create () in
  let alloc = Aeq_mem.Arena.allocator mem in
  let n = 10_000 in
  let col = Aeq_mem.Arena.alloc alloc (8 * n) in
  for i = 0 to n - 1 do
    Aeq_mem.Arena.set_i64 mem (col + (8 * i)) (Int64.of_int (i land 255))
  done;
  (* reuse the calibration kernel via the public API *)
  let f =
    let b = Builder.create ~name:"bench_kernel" ~params:[ Types.Ptr; Types.I64 ] in
    let head = Builder.new_block b in
    let body = Builder.new_block b in
    let exit = Builder.new_block b in
    Builder.br b head;
    Builder.switch_to b head;
    let i = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
    let acc = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
    let c = Builder.icmp b Instr.Slt Types.I64 i (Builder.param b 1) in
    Builder.condbr b c ~if_true:body ~if_false:exit;
    Builder.switch_to b body;
    let addr = Builder.gep b ~base:(Builder.param b 0) ~index:i ~scale:8 ~offset:0 in
    let v = Builder.load b Types.I64 addr in
    let acc' = Builder.binop b Instr.Add Types.I64 acc v in
    let i' = Builder.binop b Instr.Add Types.I64 i (Instr.Imm 1L) in
    Builder.br b head;
    Builder.add_phi_incoming b ~block:head ~dst:i ~pred:body i';
    Builder.add_phi_incoming b ~block:head ~dst:acc ~pred:body acc';
    Builder.switch_to b exit;
    Builder.ret b acc;
    let f = Builder.finish b in
    Layout.normalize f;
    f
  in
  let no_symbols : Aeq_vm.Rt_fn.resolver = fun _ -> None in
  let args = [| Int64.of_int col; Int64.of_int n |] in
  let prog = Aeq_vm.Translate.translate ~symbols:no_symbols f in
  let regs = Aeq_vm.Interp.scratch prog in
  let unopt =
    Aeq_backend.Compiler.compile ~cost_model:CM.off ~symbols:no_symbols ~mem ~mode:CM.Unopt f
  in
  let uregs = Aeq_backend.Closure_compile.scratch unopt.Aeq_backend.Compiler.exec in
  let opt =
    Aeq_backend.Compiler.compile ~cost_model:CM.off ~symbols:no_symbols ~mem ~mode:CM.Opt f
  in
  let oregs = Aeq_backend.Closure_compile.scratch opt.Aeq_backend.Compiler.exec in
  let tests =
    [
      Test.make ~name:"interp-10k-rows" (Staged.stage (fun () ->
          ignore (Aeq_vm.Interp.run prog mem ~regs ~args ())));
      Test.make ~name:"unopt-closures-10k-rows" (Staged.stage (fun () ->
          ignore
            (Aeq_backend.Closure_compile.run unopt.Aeq_backend.Compiler.exec ~regs:uregs
               ~args ())));
      Test.make ~name:"opt-closures-10k-rows" (Staged.stage (fun () ->
          ignore
            (Aeq_backend.Closure_compile.run opt.Aeq_backend.Compiler.exec ~regs:oregs ~args
               ())));
      Test.make ~name:"ir-interp-10k-rows" (Staged.stage (fun () ->
          ignore (Aeq_vm.Ir_interp.run f mem ~symbols:no_symbols ~args)));
      Test.make ~name:"bytecode-translate" (Staged.stage (fun () ->
          ignore (Aeq_vm.Translate.translate ~symbols:no_symbols f)));
      Test.make ~name:"liveness+regalloc" (Staged.stage (fun () ->
          let dom = Dom.compute f in
          let loops = Loops.compute f dom in
          ignore
            (Aeq_vm.Regalloc.allocate Aeq_vm.Regalloc.Loop_aware f loops ~base_offset:0
               ~param_offsets:[||])));
    ]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all (Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ())
          Toolkit.Instance.[ monotonic_clock ]
          test
      in
      Hashtbl.iter
        (fun name raws ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock raws
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Ablations: macro-op fusion (Sec. IV-F), register-allocation impact   *)
(* on execution, and the plan-cache extension (Sec. VI)                 *)
(* ------------------------------------------------------------------ *)
let ablation () =
  header "ABLATION: fusion (Sec IV-F), regalloc execution impact, plan cache (Sec VI)";
  (* a scan-filter-aggregate kernel with the fusable patterns *)
  let mem = Aeq_mem.Arena.create () in
  let alloc = Aeq_mem.Arena.allocator mem in
  let rows = 200_000 in
  let col = Aeq_mem.Arena.alloc alloc (8 * rows) in
  for i = 0 to rows - 1 do
    Aeq_mem.Arena.set_i64 mem (col + (8 * i)) (Int64.of_int (i land 1023))
  done;
  let f =
    let b = Builder.create ~name:"ablation_kernel" ~params:[ Types.Ptr; Types.I64 ] in
    let head = Builder.new_block b in
    let body = Builder.new_block b in
    let skip = Builder.new_block b in
    let exit = Builder.new_block b in
    Builder.br b head;
    Builder.switch_to b head;
    let i = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
    let acc = Builder.phi b Types.I64 [ (0, Instr.Imm 0L) ] in
    let c = Builder.icmp b Instr.Slt Types.I64 i (Builder.param b 1) in
    Builder.condbr b c ~if_true:body ~if_false:exit;
    Builder.switch_to b body;
    let addr = Builder.gep b ~base:(Builder.param b 0) ~index:i ~scale:8 ~offset:0 in
    let v = Builder.load b Types.I64 addr in
    let keep = Builder.icmp b Instr.Sgt Types.I64 v (Instr.Imm 100L) in
    let masked = Builder.binop b Instr.And Types.I64 v (Instr.Imm 0xFFFFL) in
    let scaled = Builder.checked b Instr.OMul Types.I64 masked (Instr.Imm 3L) in
    let inc = Builder.select b Types.I64 keep scaled (Instr.Imm 1L) in
    let acc' = Builder.binop b Instr.Add Types.I64 acc inc in
    Builder.br b skip;
    Builder.switch_to b skip;
    let i' = Builder.binop b Instr.Add Types.I64 i (Instr.Imm 1L) in
    Builder.br b head;
    Builder.add_phi_incoming b ~block:head ~dst:i ~pred:skip i';
    Builder.add_phi_incoming b ~block:head ~dst:acc ~pred:skip acc';
    Builder.switch_to b exit;
    Builder.ret b acc;
    let f = Builder.finish b in
    Layout.normalize f;
    f
  in
  let no_symbols : Aeq_vm.Rt_fn.resolver = fun _ -> None in
  let args = [| Int64.of_int col; Int64.of_int rows |] in
  let measure ?strategy ?fuse () =
    let prog = Aeq_vm.Translate.translate ?strategy ?fuse ~symbols:no_symbols f in
    let regs = Aeq_vm.Interp.scratch prog in
    let _, dt = time_best (fun () -> Aeq_vm.Interp.run prog mem ~regs ~args ()) in
    (Array.length prog.Aeq_vm.Bytecode.code, prog.Aeq_vm.Bytecode.n_reg_bytes, dt)
  in
  let n_f, _, t_fused = measure ~fuse:true () in
  let n_u, _, t_unfused = measure ~fuse:false () in
  Printf.printf "macro-op fusion  : fused %d ops %.2f ms | unfused %d ops %.2f ms (%.0f%% fewer ops, %.0f%% faster)\n"
    n_f (ms t_fused) n_u (ms t_unfused)
    (100.0 *. (1.0 -. (float_of_int n_f /. float_of_int n_u)))
    (100.0 *. (1.0 -. (t_fused /. t_unfused)));
  let _, b_la, t_la = measure ~strategy:Aeq_vm.Regalloc.Loop_aware () in
  let _, b_nr, t_nr = measure ~strategy:Aeq_vm.Regalloc.No_reuse () in
  Printf.printf "register file    : loop-aware %d B %.2f ms | no-reuse %d B %.2f ms\n"
    b_la (ms t_la) b_nr (ms t_nr);
  (* plan cache: a repeated metadata query's total latency *)
  let e = engine_at base_sf in
  let sql = snd (List.hd Aeq_workload.Queries.metadata) in
  let r1, t1 = Clock.time_it (fun () -> Aeq.Engine.query e sql) in
  let r2, t2 = Clock.time_it (fun () -> Aeq.Engine.query e sql) in
  ignore (r1, r2);
  Printf.printf "plan cache       : cold %.2f ms | warm %.2f ms (plan + mode memory reused)\n"
    (ms t1) (ms t2)

(* ------------------------------------------------------------------ *)
(* Prepared statements: compiled artifacts survive across executions   *)
(* ------------------------------------------------------------------ *)
let prepared () =
  header "PREPARED: compiled-artifact cache across executions (adaptive mode)";
  let e = engine_at base_sf in
  Printf.printf "%-6s %11s %11s %11s %11s %11s\n" "run" "codegen[ms]" "bytecd[ms]"
    "compile[ms]" "exec[ms]" "total[ms]";
  List.iter
    (fun (name, sql) ->
      Printf.printf "--- %s ---\n" name;
      for run = 1 to 3 do
        let r = Aeq.Engine.query e ~mode:Driver.Adaptive sql in
        let st = r.Driver.stats in
        Printf.printf "%-6d %11.3f %11.3f %11.3f %11.3f %11.3f%s\n%!" run
          (ms st.Driver.codegen_seconds) (ms st.Driver.bc_seconds)
          (ms st.Driver.compile_seconds) (ms st.Driver.exec_seconds)
          (ms st.Driver.total_seconds)
          (if st.Driver.prepared_reuse then "   (cached artifacts)" else "")
      done)
    [ ("q1", Aeq_workload.Queries.tpch_q 1); ("q5", Aeq_workload.Queries.tpch_q 5) ];
  let cs = Aeq.Engine.cache_stats e in
  Printf.printf "plan cache: %d entries | %d hits | %d misses | %d evictions\n"
    cs.Aeq.Engine.entries cs.Aeq.Engine.hits cs.Aeq.Engine.misses cs.Aeq.Engine.evictions

(* ------------------------------------------------------------------ *)
(* Concurrent serving: closed-loop clients, with/without admission      *)
(* ------------------------------------------------------------------ *)
let concurrency () =
  header "CONCURRENCY: closed-loop clients, direct locking vs admission control";
  (* closed loop: each client waits for its answer before sending the
     next query, so the offered rate adapts to the engine — when the
     engine slows down, generation slows down with it, and queueing
     delay a fixed arrival process would build up is never measured
     (coordinated omission). The JSON rows record the loop discipline
     and offered == achieved explicitly; the open-loop complement over
     the wire is the [serving] scenario. *)
  (* small data: serving behavior, not scan throughput, is under test *)
  let sf = Stdlib.min base_sf 0.01 in
  let e = engine_at sf in
  let stmts =
    [ Aeq_workload.Queries.tpch_q 1; Aeq_workload.Queries.tpch_q 6;
      snd (List.hd Aeq_workload.Queries.metadata) ]
  in
  (* warm the plan cache so every configuration measures steady state *)
  List.iter (fun sql -> ignore (Aeq.Engine.query e sql)) stmts;
  let iters = 20 in
  let run_clients ~admission ~clients =
    let latencies = Array.make (clients * iters) 0.0 in
    let failures = Atomic.make 0 in
    let before = Aeq.Engine.scheduler_stats e in
    let t0 = Clock.now () in
    let client c () =
      for i = 0 to iters - 1 do
        let sql = List.nth stmts ((c + i) mod List.length stmts) in
        let t = Clock.now () in
        (if admission then (
           match Aeq.Engine.query_concurrent e sql with
           | Ok _ -> ()
           | Error _ -> Atomic.incr failures)
         else
           match Aeq.Engine.query e sql with
           | _ -> ()
           | exception Aeq_exec.Query_error.Error _ -> Atomic.incr failures);
        latencies.((c * iters) + i) <- Clock.now () -. t
      done
    in
    let domains = List.init clients (fun c -> Domain.spawn (client c)) in
    List.iter Domain.join domains;
    let wall = Clock.now () -. t0 in
    let after = Aeq.Engine.scheduler_stats e in
    let lat = Array.to_list latencies in
    let module S = Aeq_exec.Scheduler in
    ( float_of_int (clients * iters) /. wall,
      Stats.percentile 0.5 lat,
      Stats.percentile 0.99 lat,
      Atomic.get failures,
      after.S.shed - before.S.shed,
      after.S.rejected - before.S.rejected,
      after.S.degraded - before.S.degraded )
  in
  let rows = ref [] in
  Printf.printf "%-10s %8s %10s %9s %9s %7s %5s %7s %9s\n" "admission" "clients"
    "thru[q/s]" "p50[ms]" "p99[ms]" "failed" "shed" "reject" "degraded";
  List.iter
    (fun admission ->
      List.iter
        (fun clients ->
          let thru, p50, p99, failed, shed, rejected, degraded =
            run_clients ~admission ~clients
          in
          rows :=
            Printf.sprintf
              {|    {"admission": %b, "clients": %d, "loop": "closed", "throughput_qps": %.2f, "offered_rate_qps": %.2f, "achieved_rate_qps": %.2f, "p50_ms": %.3f, "p99_ms": %.3f, "failed": %d, "shed": %d, "rejected": %d, "degraded": %d}|}
              admission clients thru thru thru (ms p50) (ms p99) failed shed
              rejected degraded
            :: !rows;
          Printf.printf "%-10s %8d %10.1f %9.2f %9.2f %7d %5d %7d %9d\n%!"
            (if admission then "scheduler" else "direct") clients thru (ms p50)
            (ms p99) failed shed rejected degraded)
        [ 1; 4; 8; 16 ])
    [ false; true ];
  let out = open_out "BENCH_concurrency.json" in
  Printf.fprintf out
    "{\n  \"scenario\": \"concurrency\",\n  \"sf\": %.4f,\n  \"threads\": %d,\n  \
     \"iters_per_client\": %d,\n  \"runs\": [\n%s\n  ]\n}\n"
    sf n_threads iters
    (String.concat ",\n" (List.rev !rows));
  close_out out;
  Printf.printf "wrote BENCH_concurrency.json\n%!"

(* ------------------------------------------------------------------ *)
(* Observability: emit trace.json + metrics.prom, validate them, and   *)
(* smoke-check the enabled-vs-disabled overhead                        *)
(* ------------------------------------------------------------------ *)
let obs () =
  header "OBS: observability artifacts (trace.json, metrics.prom) + overhead smoke";
  let sf = Stdlib.min base_sf 0.01 in
  (* artifacts: a fresh engine with observability on from birth, so the
     engine/scheduler gauges register and the spans cover the whole
     lifecycle *)
  Aeq_obs.Control.with_enabled true (fun () ->
      let e = Aeq.Engine.create ~n_threads () in
      Aeq.Engine.load_tpch e ~scale_factor:sf;
      let sql = Aeq_workload.Queries.tpch_q 1 in
      let r = Aeq.Engine.query e ~mode:Driver.Adaptive ~collect_trace:true sql in
      Aeq_exec.Trace_export.write_file ?trace:r.Driver.trace "trace.json";
      Aeq.Engine.dump_metrics "metrics.prom";
      (* validate the Chrome trace: well-formed JSON with morsel, span
         and adaptive-decision events on board *)
      let ic = open_in "trace.json" in
      let len = in_channel_length ic in
      let doc = really_input_string ic len in
      close_in ic;
      (match Aeq_obs.Json.parse doc with
      | Error m -> failwith ("obs: trace.json does not parse: " ^ m)
      | Ok j ->
        let events =
          match Aeq_obs.Json.member "traceEvents" j with
          | Some arr -> Aeq_obs.Json.to_list arr
          | None -> []
        in
        let has cat =
          List.exists
            (fun ev ->
              match Aeq_obs.Json.member "cat" ev with
              | Some (Aeq_obs.Json.Str c) -> c = cat
              | _ -> false)
            events
        in
        Printf.printf
          "trace.json: %d events | morsel %b | span %b | adaptive %b\n"
          (List.length events) (has "morsel") (has "span") (has "adaptive");
        if not (has "morsel" && has "span" && has "adaptive") then
          failwith "obs: trace.json is missing an event class");
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      let metrics = Aeq.Engine.render_metrics () in
      if not (contains metrics "aeq_morsels_total") then
        failwith "obs: metrics.prom lacks aeq_morsels_total";
      Printf.printf "metrics.prom: %d bytes, %d series\n%!"
        (String.length metrics)
        (List.length (Aeq.Engine.metrics ()));
      Aeq.Engine.close e);
  (* overhead smoke: the same warmed statement in a steady loop, with
     the subsystem off and on. Loose thresholds — this guards against
     regressions that make "disabled" expensive, not micro-noise. *)
  let e = Aeq.Engine.create ~n_threads () in
  Aeq.Engine.load_tpch e ~scale_factor:sf;
  let sql = Aeq_workload.Queries.tpch_q 6 in
  ignore (Aeq.Engine.query e sql);
  let iters = 15 in
  let measure () =
    let t0 = Clock.now () in
    for _ = 1 to iters do
      ignore (Aeq.Engine.query e sql)
    done;
    Clock.now () -. t0
  in
  ignore (measure ());
  let t_off = measure () in
  let t_on = Aeq_obs.Control.with_enabled true measure in
  let overhead = 100.0 *. ((t_on -. t_off) /. t_off) in
  Printf.printf
    "overhead smoke: disabled %.1f ms | enabled %.1f ms | %+.1f%% (%d iters)\n"
    (ms t_off) (ms t_on) overhead iters;
  if overhead > 5.0 then
    Printf.printf "WARNING: enabled-observability overhead above the 5%% target\n";
  if overhead > 50.0 then failwith "obs: observability overhead out of bounds";
  Aeq.Engine.close e;
  Printf.printf "wrote trace.json and metrics.prom\n%!"

(* ------------------------------------------------------------------ *)
(* Simulation yield points: cost of the instrumentation when disabled  *)
(* and when enabled with a no-op handler                               *)
(* ------------------------------------------------------------------ *)
let sim () =
  header "SIM: yield-point overhead on the warmed prepared-statement loop";
  let sf = Stdlib.min base_sf 0.01 in
  let e = Aeq.Engine.create ~n_threads () in
  Aeq.Engine.load_tpch e ~scale_factor:sf;
  let sql = Aeq_workload.Queries.tpch_q 6 in
  ignore (Aeq.Engine.query e sql);
  let iters = 25 in
  let measure () =
    let t0 = Clock.now () in
    for _ = 1 to iters do
      ignore (Aeq.Engine.query e sql)
    done;
    Clock.now () -. t0
  in
  ignore (measure ());
  (* best-of to push scheduling noise out of both configurations *)
  let best f =
    let b = ref infinity in
    for _ = 1 to 3 do
      let dt = f () in
      if dt < !b then b := dt
    done;
    !b
  in
  let t_off = best measure in
  let t_on =
    Aeq_util.Yieldpoint.with_handler (fun _site -> ()) (fun () -> best measure)
  in
  let overhead = 100.0 *. ((t_on -. t_off) /. t_off) in
  Printf.printf
    "yield points: disabled %.2f ms | no-op handler %.2f ms | %+.1f%% (%d iters)\n"
    (ms t_off) (ms t_on) overhead iters;
  if overhead > 2.0 then
    Printf.printf "WARNING: disabled-yield-point overhead above the 2%% target\n";
  if overhead > 50.0 then failwith "sim: yield-point overhead out of bounds";
  Aeq.Engine.close e

(* ------------------------------------------------------------------ *)
(* Race detector: cost of the guarded-by instrumentation when the      *)
(* detector is disabled (one atomic load + branch per hook) and when   *)
(* it is armed                                                         *)
(* ------------------------------------------------------------------ *)
let race () =
  header "RACE: detector overhead on the warmed concurrent serving loop";
  let sf = Stdlib.min base_sf 0.01 in
  let e = Aeq.Engine.create ~n_threads () in
  Aeq.Engine.load_tpch e ~scale_factor:sf;
  let sql = Aeq_workload.Queries.tpch_q 6 in
  (* the serving path crosses every instrumented lock: scheduler
     submit/await, engine cache, trace ring, arena, metrics *)
  (match Aeq.Engine.query_concurrent e sql with
  | Ok _ -> ()
  | Error err -> failwith (Aeq_exec.Query_error.to_string err));
  let iters = 25 in
  let measure () =
    let t0 = Clock.now () in
    for _ = 1 to iters do
      match Aeq.Engine.query_concurrent e sql with
      | Ok _ -> ()
      | Error err -> failwith (Aeq_exec.Query_error.to_string err)
    done;
    Clock.now () -. t0
  in
  ignore (measure ());
  let best f =
    let b = ref infinity in
    for _ = 1 to 3 do
      let dt = f () in
      if dt < !b then b := dt
    done;
    !b
  in
  let t_off = best measure in
  let t_on = Aeq_race.Control.with_enabled true (fun () -> best measure) in
  let overhead = 100.0 *. ((t_on -. t_off) /. t_off) in
  Printf.printf
    "race detector: disabled %.2f ms | armed %.2f ms | %+.1f%% (%d iters)\n"
    (ms t_off) (ms t_on) overhead iters;
  if overhead > 2.0 then
    Printf.printf "WARNING: race-detector overhead above the 2%% target\n";
  if overhead > 50.0 then failwith "race: detector overhead out of bounds";
  (* the disabled fast path itself, against a raw mutex: the hook must
     cost one atomic load and a branch, nothing more *)
  let n = 2_000_000 in
  let raw = Mutex.create () in
  let t0 = Clock.now () in
  for _ = 1 to n do
    Mutex.lock raw;
    Mutex.unlock raw
  done;
  let t_raw = Clock.now () -. t0 in
  let instr = Aeq_race.Lock.create "bench.race.lock" in
  let t0 = Clock.now () in
  for _ = 1 to n do
    Aeq_race.Lock.lock instr;
    Aeq_race.Lock.unlock instr
  done;
  let t_instr = Clock.now () -. t0 in
  Printf.printf
    "lock primitive: raw %.1f ns/op | instrumented (disabled) %.1f ns/op\n"
    (1e9 *. t_raw /. float_of_int n)
    (1e9 *. t_instr /. float_of_int n);
  Aeq.Engine.close e

(* ------------------------------------------------------------------ *)
(* Supervision: cost of the crash barriers + supervised spawning on    *)
(* the warmed prepared-statement serving loop                         *)
(* ------------------------------------------------------------------ *)
let supervision () =
  header "SUPERVISION: supervised vs bare domains on the warmed serving loop";
  let sf = Stdlib.min base_sf 0.01 in
  let iters = 25 in
  (* the barrier sits on the dispatcher/worker loops, so measure the
     scheduler path: submit + await of an already-prepared statement *)
  let measure ~supervised =
    let e = Aeq.Engine.create ~n_threads ~supervised () in
    Aeq.Engine.load_tpch e ~scale_factor:sf;
    let sql = Aeq_workload.Queries.tpch_q 6 in
    (match Aeq.Engine.query_concurrent e sql with
    | Ok _ -> ()
    | Error err -> failwith (Aeq_exec.Query_error.to_string err));
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Clock.now () in
      for _ = 1 to iters do
        match Aeq.Engine.query_concurrent e sql with
        | Ok _ -> ()
        | Error err -> failwith (Aeq_exec.Query_error.to_string err)
      done;
      let dt = Clock.now () -. t0 in
      if dt < !best then best := dt
    done;
    Aeq.Engine.close e;
    !best
  in
  let t_bare = measure ~supervised:false in
  let t_supervised = measure ~supervised:true in
  let overhead = 100.0 *. ((t_supervised -. t_bare) /. t_bare) in
  Printf.printf
    "supervision: bare %.2f ms | supervised %.2f ms | %+.1f%% (%d iters)\n"
    (ms t_bare) (ms t_supervised) overhead iters;
  if overhead > 2.0 then
    Printf.printf "WARNING: supervised-spawn overhead above the 2%% target\n";
  if overhead > 50.0 then failwith "supervision: barrier overhead out of bounds"

(* ------------------------------------------------------------------ *)
(* Serving: open-loop load over the wire protocol                      *)
(* ------------------------------------------------------------------ *)
let serving () =
  header "SERVING: open-loop load over the wire (below capacity, then overload)";
  let sf = Stdlib.min base_sf 0.01 in
  (* a dedicated engine: the server owns its lifecycle *)
  let e = Aeq.Engine.create ~n_threads () in
  Aeq.Engine.load_tpch e ~scale_factor:sf;
  (* a small admission queue so the overload run actually sheds *)
  Aeq.Engine.set_scheduler_config e
    { Aeq_exec.Scheduler.default_config with queue_capacity = 8 };
  let config =
    { Aeq_net.Server.default_config with
      port = 0;
      metrics_port = None;
      max_connections = 16 }
  in
  let server = Aeq_net.Server.start ~config e in
  let port = Aeq_net.Server.port server in
  let stmt = snd (List.hd Aeq_workload.Queries.metadata) in
  (* calibrate capacity with a short closed loop over one connection *)
  let cap1 =
    match Aeq_net.Client.connect ~port () with
    | Error err ->
      failwith ("serving: calibration connect: " ^ Aeq_net.Client.error_to_string err)
    | Ok c ->
      let t0 = Clock.now () in
      let n = ref 0 in
      while Clock.now () -. t0 < 0.5 do
        match Aeq_net.Client.execute c stmt with
        | Ok _ -> incr n
        | Error err ->
          failwith ("serving: calibration query: " ^ Aeq_net.Client.error_to_string err)
      done;
      Aeq_net.Client.close c;
      float_of_int !n /. (Clock.now () -. t0)
  in
  Printf.printf "calibration: %.0f qps closed-loop on one connection\n%!" cap1;
  let run ~regime ~rate ~connections ~duration =
    let s =
      Aeq_net.Loadgen.run
        { Aeq_net.Loadgen.default_config with
          port;
          rate;
          duration_seconds = duration;
          connections;
          statements = [ stmt ];
          seed = 7L }
    in
    Printf.printf
      "%-9s offered %7.1f qps -> achieved %7.1f qps  (%d/%d ok, %d shed at \
       connect)\n          p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n%!"
      regime s.Aeq_net.Loadgen.offered_rate s.achieved_rate s.completed
      s.offered s.connect_errors (ms s.p50_seconds) (ms s.p95_seconds)
      (ms s.p99_seconds);
    if s.failed <> [] then begin
      Printf.printf "          errors:";
      List.iter (fun (l, c) -> Printf.printf " %s=%d" l c) s.failed;
      print_newline ()
    end;
    s
  in
  let below =
    run ~regime:"below" ~rate:(Float.max 20.0 (0.4 *. cap1)) ~connections:8
      ~duration:4.0
  in
  let above =
    run ~regime:"overload" ~rate:(8.0 *. Float.max 25.0 cap1) ~connections:24
      ~duration:2.0
  in
  let out = open_out "BENCH_serving.json" in
  let run_json regime s =
    Aeq_net.Loadgen.summary_to_json
      ~extra:[ ("regime", Printf.sprintf "%S" regime) ]
      s
  in
  Printf.fprintf out
    "{\n\
    \  \"scenario\": \"serving\",\n\
    \  \"sf\": %.4f,\n\
    \  \"threads\": %d,\n\
    \  \"calibrated_capacity_qps\": %.1f,\n\
    \  \"connections_shed_at_edge\": %d,\n\
    \  \"runs\": [\n%s,\n%s  ]\n}\n"
    sf n_threads cap1
    (Aeq_net.Server.connections_shed server)
    (run_json "below" below) (run_json "overload" above);
  close_out out;
  Printf.printf "wrote BENCH_serving.json\n%!";
  Aeq_net.Server.stop server;
  Aeq.Engine.close e;
  (* the serving contract, enforced here so CI fails loudly:
     below the shed threshold the server keeps up with the offered
     rate; over it, every lost query is a structured shed, not a
     silent drop *)
  if 100 * below.completed < 95 * below.offered then
    failwith
      (Printf.sprintf "serving: below-capacity run completed %d/%d (< 95%%)"
         below.completed below.offered);
  let structured_sheds =
    above.connect_errors
    + List.fold_left
        (fun acc (l, c) ->
          if l = "overloaded" || l = "rejected" || l = "timeout" then acc + c
          else acc)
        0 above.failed
  in
  if above.completed < above.attempted && structured_sheds = 0 then
    failwith "serving: overload run lost queries without structured shedding"

let all =
  [ "fig1"; "fig2"; "fig6"; "fig13"; "fig14"; "fig15"; "table1"; "table2"; "regalloc";
    "ablation"; "prepared"; "micro"; "concurrency"; "serving"; "obs"; "sim";
    "race"; "supervision" ]

let run_one = function
  | "fig1" -> fig1 ()
  | "fig2" -> fig2 ()
  | "fig6" -> fig6 ()
  | "fig13" -> fig13 ()
  | "fig14" -> fig14 ()
  | "fig15" -> fig15 ()
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "regalloc" -> regalloc ()
  | "ablation" -> ablation ()
  | "prepared" -> prepared ()
  | "micro" -> micro ()
  | "concurrency" -> concurrency ()
  | "serving" -> serving ()
  | "obs" -> obs ()
  | "sim" -> sim ()
  | "race" -> race ()
  | "supervision" -> supervision ()
  | other -> Printf.printf "unknown experiment %s (available: %s)\n" other (String.concat " " all)

let () =
  let requested =
    match Array.to_list Sys.argv with [] | [ _ ] -> all | _ :: rest -> rest
  in
  Printf.printf "adaptive-execution benchmark harness (sf=%.3f, %d threads)\n" base_sf n_threads;
  List.iter run_one requested;
  Hashtbl.iter (fun _ e -> Aeq.Engine.close e) engines

(** Static concurrency-discipline lint over OCaml source.

    A Parsetree walk (compiler-libs) enforcing the locking discipline
    that the dynamic race detector ([Aeq_race]) checks at runtime —
    the two analyses share one declaration registry and one failpoint
    catalog, and CI runs both.

    Per-file rules (selectable via [?rules]):

    - ["raw-mutex"]: no [Mutex.lock]/[unlock]/[try_lock]/[create] and
      no [Condition.wait] outside the detector itself. Locks are taken
      through [Aeq_race.Lock] so every acquire/release feeds the
      lockset and vector-clock state; a raw mutex is invisible to the
      detector and a hole in the analysis.
    - ["yield-in-lock"]: no [Yieldpoint.yield] lexically inside an
      [Aeq_race.Lock.with_] / [with_lock] / [locked] critical section.
      Under simulation a yielded task suspends; suspending while
      holding a lock deadlocks every peer behind it.
    - ["sleep-in-exec"]: no [Unix.sleepf]/[Unix.sleep] — supervised
      paths must block on [Aeq_util.Waiter] so shutdown and crash
      reclaim can interrupt the wait.
    - ["failpoint-literal"]: every [Failpoints.hit] call site must
      pass a string literal, so the site catalog cross-check (CLI
      level) can see it.
    - ["declare-literal"]: every [Aeq_race.declare] must name its
      location with a string literal, for the same reason.

    A finding can be waived for one subtree with
    [(expr [@lint.allow "rule"])]. Whole-tree cross-checks (failpoint
    catalog coverage, registry/DESIGN.md coverage) live in the
    [aeq_lint] executable, which aggregates the per-file scans. *)

type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : string;
  f_msg : string;
}

type scan = {
  sc_findings : finding list; (* source order *)
  sc_hit_sites : (string * int) list;
      (* literal [Failpoints.hit] sites with their lines *)
  sc_declares : (string * int) list;
      (* literal [Aeq_race.declare] location names with their lines *)
}

val all_rules : string list

val finding_to_string : finding -> string
(** [file:line:col: [rule] message] — one line, compiler style. *)

val lint_source : ?rules:string list -> filename:string -> string -> scan
(** Parse [source] and apply [rules] (default: all). A syntax error
    yields a single ["parse"] finding rather than an exception: the
    lint must not crash on a tree it cannot read. *)

val design_table_names : string -> string list
(** Extract the location names (first backticked column cell of each
    table row) from the "Locking discipline" section of DESIGN.md
    content. Used by the CLI for the registry-coverage cross-check. *)

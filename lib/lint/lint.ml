type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : string;
  f_msg : string;
}

type scan = {
  sc_findings : finding list;
  sc_hit_sites : (string * int) list;
  sc_declares : (string * int) list;
}

let all_rules =
  [
    "raw-mutex";
    "yield-in-lock";
    "sleep-in-exec";
    "failpoint-literal";
    "declare-literal";
  ]

let finding_to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.f_file f.f_line f.f_col f.f_rule f.f_msg

(* ---- Parsetree helpers ----------------------------------------------- *)

let flatten lid = try Longident.flatten lid with Invalid_argument _ -> []

let ends_with ~suffix path =
  let lp = List.length path and ls = List.length suffix in
  lp >= ls
  &&
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  drop (lp - ls) path = suffix

(* [@lint.allow "rule"] on an expression waives [rule] for that
   subtree *)
let waived_rules (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "lint.allow" then None
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (r, _, _)); _ },
                      _ );
                _;
              };
            ] ->
          Some r
        | _ -> None)
    attrs

let string_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* the function position of an application opens a critical section if
   it is one of the lock wrappers used across the tree *)
let is_lock_wrapper path =
  ends_with ~suffix:[ "Lock"; "with_" ] path
  ||
  match List.rev path with
  | ("with_lock" | "locked") :: _ -> true
  | _ -> false

(* ---- the walk -------------------------------------------------------- *)

let lint_source ?(rules = all_rules) ~filename source =
  let findings = ref [] in
  let hit_sites = ref [] in
  let declares = ref [] in
  let waived = ref [] in
  let active r = List.mem r rules && not (List.mem r !waived) in
  let add (loc : Location.t) rule msg =
    let p = loc.loc_start in
    findings :=
      {
        f_file = filename;
        f_line = p.pos_lnum;
        f_col = p.pos_cnum - p.pos_bol;
        f_rule = rule;
        f_msg = msg;
      }
      :: !findings
  in
  (* lexical critical-section depth: > 0 inside a lock wrapper's
     argument subtree *)
  let crit = ref 0 in
  let check_ident (loc : Location.t) path =
    (match path with
    | _ when ends_with ~suffix:[ "Mutex"; "lock" ] path
             || ends_with ~suffix:[ "Mutex"; "unlock" ] path
             || ends_with ~suffix:[ "Mutex"; "try_lock" ] path
             || ends_with ~suffix:[ "Mutex"; "create" ] path ->
      if active "raw-mutex" then
        add loc "raw-mutex"
          "raw Mutex use: take locks through Aeq_race.Lock so the race \
           detector sees the acquire/release"
    | _ when ends_with ~suffix:[ "Condition"; "wait" ] path ->
      if active "raw-mutex" then
        add loc "raw-mutex"
          "raw Condition.wait: use Aeq_race.Lock.wait so the detector \
           keeps the release/acquire edges of the wait"
    | _ when ends_with ~suffix:[ "Unix"; "sleepf" ] path
             || ends_with ~suffix:[ "Unix"; "sleep" ] path ->
      if active "sleep-in-exec" then
        add loc "sleep-in-exec"
          "uninterruptible sleep on a supervised path: block on \
           Aeq_util.Waiter so shutdown can cut the wait short"
    | _ when ends_with ~suffix:[ "Yieldpoint"; "yield" ] path ->
      if active "yield-in-lock" && !crit > 0 then
        add loc "yield-in-lock"
          "Yieldpoint.yield inside a critical section: a simulated task \
           suspended while holding a lock deadlocks every peer behind it"
    | _ -> ());
    (* non-literal arguments to hit/declare are caught at the
       application nodes below; a bare reference to either function
       (partial application, higher-order use) defeats the catalog
       cross-check just the same *)
    if ends_with ~suffix:[ "Failpoints"; "hit" ] path then
      if active "failpoint-literal" then
        add loc "failpoint-literal"
          "Failpoints.hit referenced without a literal site string: the \
           catalog lint cannot see this site"
      else ();
    if ends_with ~suffix:[ "Aeq_race"; "declare" ] path then
      if active "declare-literal" then
        add loc "declare-literal"
          "Aeq_race.declare referenced without a literal location name: \
           the registry-coverage lint cannot see this declaration"
  in
  let iter = ref Ast_iterator.default_iterator in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    let newly = waived_rules e.pexp_attributes in
    let saved_waived = !waived in
    waived := newly @ !waived;
    (match e.pexp_desc with
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = fn; _ }; _ }, (_, arg) :: _)
      when ends_with ~suffix:[ "Failpoints"; "hit" ] (flatten fn) -> (
      match string_literal arg with
      | Some site ->
        hit_sites := (site, e.pexp_loc.loc_start.pos_lnum) :: !hit_sites;
        it.expr it arg
      | None ->
        if active "failpoint-literal" then
          add e.pexp_loc "failpoint-literal"
            "Failpoints.hit with a computed site string: pass one literal \
             per call site so the catalog cross-check can see it";
        it.expr it arg)
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = fn; _ }; _ }, (_, arg) :: rest)
      when ends_with ~suffix:[ "Aeq_race"; "declare" ] (flatten fn) ->
      (match string_literal arg with
      | Some name ->
        declares := (name, e.pexp_loc.loc_start.pos_lnum) :: !declares
      | None ->
        if active "declare-literal" then
          add e.pexp_loc "declare-literal"
            "Aeq_race.declare with a computed location name: declare \
             with a literal so the registry-coverage check can see it");
      List.iter (fun (_, a) -> it.expr it a) rest
    | Pexp_apply
        (({ pexp_desc = Pexp_ident { txt = fn; _ }; _ } as f), args)
      when is_lock_wrapper (flatten fn) ->
      it.expr it f;
      incr crit;
      List.iter (fun (_, a) -> it.expr it a) args;
      decr crit
    | Pexp_ident { txt; loc } ->
      check_ident loc (flatten txt);
      Ast_iterator.default_iterator.expr it e
    | _ -> Ast_iterator.default_iterator.expr it e);
    waived := saved_waived
  in
  iter := { Ast_iterator.default_iterator with expr };
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  (match Parse.implementation lexbuf with
  | str -> !iter.structure !iter str
  | exception exn ->
    let loc, msg =
      match Location.error_of_exn exn with
      | Some (`Ok { main = { loc; _ }; _ }) ->
        (loc, "syntax error: the lint cannot read this file")
      | _ -> (Location.none, "syntax error: " ^ Printexc.to_string exn)
    in
    add loc "parse" msg);
  {
    sc_findings = List.rev !findings;
    sc_hit_sites = List.rev !hit_sites;
    sc_declares = List.rev !declares;
  }

(* ---- DESIGN.md table extraction -------------------------------------- *)

let design_table_names content =
  let lines = String.split_on_char '\n' content in
  let in_section = ref false in
  let names = ref [] in
  let backticked cell =
    let cell = String.trim cell in
    let n = String.length cell in
    if n >= 3 && cell.[0] = '`' && cell.[n - 1] = '`' then
      Some (String.sub cell 1 (n - 2))
    else None
  in
  List.iter
    (fun line ->
      let trimmed = String.trim line in
      if String.length trimmed > 0 && trimmed.[0] = '#' then begin
        (* a heading opens or closes the section *)
        let l = String.lowercase_ascii trimmed in
        let needle = "locking discipline" in
        let contains =
          let nl = String.length needle and ll = String.length l in
          let rec at i =
            i + nl <= ll && (String.sub l i nl = needle || at (i + 1))
          in
          at 0
        in
        in_section := contains
      end
      else if !in_section && String.length trimmed > 0 && trimmed.[0] = '|' then
        match String.split_on_char '|' trimmed with
        | _ :: first :: _ -> (
          match backticked first with
          | Some name -> names := name :: !names
          | None -> ())
        | _ -> ())
    lines;
  List.rev !names

(* Deterministic concurrency simulator (loom/shuttle-style, scaled to
   this engine).

   The real engine code runs unmodified on real domains; determinism
   comes from token passing. Exactly one task holds the token at any
   instant. At every instrumented yield point (Aeq_util.Yieldpoint
   sites on the lock-free hot path: lease acquire/release, morsel
   boundaries, context install, job pick, plan-cache lookup,
   single-flight compile) the running task hands the token back to the
   scheduler, which picks the next task — by seeded PRNG, or by a
   forced decision list when replaying. The interleaving is therefore
   a pure function of (seed | schedule), and a failing run is
   replayable bit for bit from two integers and a list.

   Three rules keep this sound:
   - yield points sit OUTSIDE critical sections (suspending a
     lock-holder would deadlock the other tasks behind the lock);
   - code that would block on a condition variable spins through a
     yield instead when the simulator is on (the scheduler cannot see
     real blocking — a blocked token-holder is a hung simulation);
   - tasks must not spawn untracked domains (simulated engines run
     with n_threads = 1 so the pool has no workers; the submitting
     caller executes jobs inline, inside the task).

   Time is virtual: [run] installs a clock source that only the
   scheduler advances (a fixed tick per decision), so timeouts and
   backpressure deadlines are part of the schedule, not of wall time. *)

type state = Fresh | Waiting | Granted | Done

type task = {
  tk_id : int;
  tk_name : string;
  tk_fn : unit -> unit;
  mutable tk_state : state;
  tk_cond : Condition.t; (* signalled when the scheduler grants the token *)
  mutable tk_site : string; (* yield site the task is parked at *)
  mutable tk_exn : exn option;
}

type sched = {
  lock : Mutex.t;
  wake : Condition.t; (* signalled by a task yielding or finishing *)
  tasks : task array;
  free_run : bool Atomic.t;
      (* set when determinism is abandoned (abort / livelock): every
         task is released, yields become no-ops, we just join *)
}

type outcome = {
  seed : int64;
  schedule : int list; (* decisions actually taken, one per step *)
  trace : (string * string) list;
      (* (task name, site) per step, scheduling order — the schedule
         made readable *)
  steps : int;
  invariant_failures : (int * string) list; (* (step, message) *)
  task_exceptions : (string * string) list; (* (task name, exn) *)
  deadlocked : bool; (* hit max_steps without every task finishing *)
}

let failed o =
  o.invariant_failures <> [] || o.task_exceptions <> [] || o.deadlocked

let repro_string o =
  Printf.sprintf "seed=0x%Lx steps=%d schedule=[%s]%s" o.seed o.steps
    (String.concat ";" (List.map string_of_int o.schedule))
    (if o.deadlocked then " DEADLOCKED" else "")

(* which task (if any) the calling domain is simulating *)
let task_key : task option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_sched : sched option Atomic.t = Atomic.make None

let yield_handler site =
  match Atomic.get current_sched with
  | None -> ()
  | Some s ->
    if not (Atomic.get s.free_run) then (
      match Domain.DLS.get task_key with
      | None -> () (* not a simulated task (e.g. the scheduler thread) *)
      | Some tk ->
        Mutex.lock s.lock;
        tk.tk_state <- Waiting;
        tk.tk_site <- site;
        Condition.signal s.wake;
        while tk.tk_state <> Granted && not (Atomic.get s.free_run) do
          Condition.wait tk.tk_cond s.lock
        done;
        Mutex.unlock s.lock)

let task_body s tk () =
  Domain.DLS.set task_key (Some tk);
  (* wait for the first grant *)
  Mutex.lock s.lock;
  while tk.tk_state <> Granted && not (Atomic.get s.free_run) do
    Condition.wait tk.tk_cond s.lock
  done;
  Mutex.unlock s.lock;
  (try tk.tk_fn () with e -> tk.tk_exn <- Some e);
  Mutex.lock s.lock;
  tk.tk_state <- Done;
  Condition.signal s.wake;
  Mutex.unlock s.lock

let default_max_steps = 200_000

(* virtual-time tick per scheduling decision: 10 microseconds. Small
   enough that morsel-rate arithmetic stays sane, large enough that a
   5 ms backpressure deadline resolves within ~500 decisions. *)
let vtick = 1e-5

let run ?(max_steps = default_max_steps) ?schedule ?(checkers = []) ~seed
    ~tasks () =
  if Atomic.get current_sched <> None then
    invalid_arg "Sched.run: a simulation is already running";
  let prng = Aeq_util.Prng.create seed in
  let tasks =
    Array.of_list
      (List.mapi
         (fun i (name, fn) ->
           {
             tk_id = i;
             tk_name = name;
             tk_fn = fn;
             tk_state = Fresh;
             tk_cond = Condition.create ();
             tk_site = "start";
             tk_exn = None;
           })
         tasks)
  in
  let s =
    { lock = Mutex.create (); wake = Condition.create (); tasks;
      free_run = Atomic.make false }
  in
  (* virtual clock: reads auto-advance by 0.1 ns so an un-instrumented
     spin loop (which the scheduler cannot preempt) still terminates
     eventually instead of freezing virtual time forever *)
  let vclock = Atomic.make 1.0e9 in
  let read_clock () =
    let t = Atomic.get vclock in
    Atomic.set vclock (t +. 1e-10);
    t
  in
  (* install the handler first: it raises if another harness is live,
     and at that point nothing needs unwinding yet *)
  Aeq_util.Yieldpoint.install yield_handler;
  Aeq_util.Clock.set_source read_clock;
  Atomic.set current_sched (Some s);
  let decisions = ref [] and trace = ref [] in
  let invariant_failures = ref [] and steps = ref 0 in
  let deadlocked = ref false in
  (* when the race detector is armed, a detected race is just another
     invariant failure: it aborts the run at the next quiescent point,
     so the decision prefix is a deterministic, shrink-able repro. The
     reset clears the dedup table — without it a replay of the same
     race would be silently suppressed and the repro would "pass". *)
  let race_on = Aeq_race.Control.enabled () in
  if race_on then Aeq_race.reset ();
  let drain_races () =
    if race_on then
      List.iter
        (fun r ->
          invariant_failures :=
            (!steps, "race: " ^ Aeq_race.report_to_string r)
            :: !invariant_failures)
        (Aeq_race.take_reports ())
  in
  let forced = ref (Option.value schedule ~default:[]) in
  let forced_mode = schedule <> None in
  Fun.protect
    ~finally:(fun () ->
      (* release everything before joining, whatever happened *)
      Atomic.set s.free_run true;
      Mutex.lock s.lock;
      Array.iter
        (fun tk ->
          if tk.tk_state <> Done then tk.tk_state <- Granted;
          Condition.signal tk.tk_cond)
        s.tasks;
      Mutex.unlock s.lock;
      Aeq_util.Yieldpoint.uninstall ();
      Aeq_util.Clock.reset_source ();
      Atomic.set current_sched None)
    (fun () ->
      let domains =
        Array.map (fun tk -> Domain.spawn (task_body s tk)) s.tasks
      in
      let finished () =
        Array.for_all (fun tk -> tk.tk_state = Done) s.tasks
      in
      let abort = ref false in
      Mutex.lock s.lock;
      while (not (finished ())) && not !abort do
        if !steps >= max_steps then begin
          deadlocked := true;
          abort := true
        end
        else begin
          (* checkers run with no task holding the token: the system is
             quiescent, so taking engine locks here cannot deadlock *)
          Mutex.unlock s.lock;
          drain_races ();
          List.iter
            (fun check ->
              List.iter
                (fun msg ->
                  invariant_failures := (!steps, msg) :: !invariant_failures)
                (check ()))
            checkers;
          Mutex.lock s.lock;
          if !invariant_failures <> [] then abort := true
          else begin
            let runnable =
              Array.to_list s.tasks
              |> List.filter (fun tk ->
                     tk.tk_state = Fresh || tk.tk_state = Waiting)
            in
            match runnable with
            | [] ->
              (* every task Done (loop re-checks) or Granted (cannot
                 happen: we wait for the grantee below) *)
              ()
            | _ ->
              let n = List.length runnable in
              let choice =
                match !forced with
                | d :: rest ->
                  forced := rest;
                  ((d mod n) + n) mod n
                | [] ->
                  if forced_mode then !steps mod n (* deterministic tail *)
                  else Aeq_util.Prng.int prng n
              in
              let tk = List.nth runnable choice in
              decisions := choice :: !decisions;
              trace := (tk.tk_name, tk.tk_site) :: !trace;
              incr steps;
              ignore
                (Atomic.set vclock (Atomic.get vclock +. vtick));
              tk.tk_state <- Granted;
              Condition.signal tk.tk_cond;
              (* wait for the token to come back *)
              while tk.tk_state = Granted do
                Condition.wait s.wake s.lock
              done
          end
        end
      done;
      Mutex.unlock s.lock;
      (* free-run whatever is left (abort paths), then join *)
      Atomic.set s.free_run true;
      Mutex.lock s.lock;
      Array.iter
        (fun tk ->
          if tk.tk_state <> Done then tk.tk_state <- Granted;
          Condition.signal tk.tk_cond)
        s.tasks;
      Mutex.unlock s.lock;
      Array.iter Domain.join domains;
      (* catch races detected after the last quiescent checker pass *)
      drain_races ();
      let task_exceptions =
        Array.to_list s.tasks
        |> List.filter_map (fun tk ->
               Option.map
                 (fun e -> (tk.tk_name, Printexc.to_string e))
                 tk.tk_exn)
      in
      {
        seed;
        schedule = List.rev !decisions;
        trace = List.rev !trace;
        steps = !steps;
        invariant_failures = List.rev !invariant_failures;
        task_exceptions;
        deadlocked = !deadlocked;
      })

(* ---- schedule shrinking --------------------------------------------- *)

(* Minimise a failing decision list: first find the shortest failing
   prefix (binary search — failures are near-monotone in the prefix
   because the deterministic tail pads the rest), then ddmin-lite chunk
   removal. [replay] must re-run the system under [~schedule] and
   report whether it still fails; every candidate replay is a full
   deterministic run, so the budget caps the total cost. *)
let shrink ?(budget = 200) ~replay decisions =
  let spent = ref 0 in
  let try_ d =
    if !spent >= budget then false
    else begin
      incr spent;
      replay d
    end
  in
  let arr = Array.of_list decisions in
  let n = Array.length arr in
  let take k = Array.to_list (Array.sub arr 0 k) in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if try_ (take mid) then hi := mid else lo := mid + 1
  done;
  let best = ref (if !hi < n && try_ (take !hi) then take !hi else decisions) in
  let improved = ref true in
  while !improved && !spent < budget do
    improved := false;
    let cur = Array.of_list !best in
    let len = Array.length cur in
    let chunk = ref (max 1 (len / 2)) in
    let continue_ = ref true in
    while !continue_ do
      let i = ref 0 in
      while (not !improved) && !i + !chunk <= len do
        let cand =
          Array.to_list
            (Array.append (Array.sub cur 0 !i)
               (Array.sub cur (!i + !chunk) (len - !i - !chunk)))
        in
        if try_ cand then begin
          best := cand;
          improved := true
        end
        else i := !i + !chunk
      done;
      if !improved || !chunk = 1 || !spent >= budget then continue_ := false
      else chunk := !chunk / 2
    done
  done;
  !best

(** Deterministic concurrency simulation of the real engine.

    Runs user-supplied tasks (closures over real engine calls) on real
    domains under token passing: exactly one task runs at a time, and
    the token changes hands only at the engine's instrumented yield
    points ([Aeq_util.Yieldpoint] sites — lease acquire/release,
    morsel boundaries, context install, pool job pick, plan-cache
    lookup, single-flight compile, backpressure waits). The scheduler
    picks the next task with a seeded PRNG, so an interleaving is a
    pure function of the seed — and of the forced decision list when
    replaying a failure.

    Constraints on simulated code (see DESIGN.md):
    - engines must run with [n_threads = 1] (no untracked pool
      domains; the submitting task executes pipeline jobs inline);
    - blocking waits on the simulated path spin through yields when
      {!Aeq_util.Yieldpoint.enabled} (already true of the engine's
      single-flight wait and arena backpressure);
    - yield points never sit inside critical sections;
    - use a non-simulating cost model ([Cost_model.off] or
      [simulate = false]): a model that emulates compile latency by
      waiting on the clock crawls under virtual time, which advances
      only at scheduling decisions (plus a tiny epsilon per read).

    Time is virtual while a simulation runs: [Clock.now] reads a
    scheduler-advanced counter (10 µs per decision), so deadlines and
    backpressure timeouts are replayable schedule events. *)

type outcome = {
  seed : int64;
  schedule : int list;  (** decision actually taken at each step *)
  trace : (string * string) list;
      (** (task name, yield site) at each step, in scheduling order *)
  steps : int;
  invariant_failures : (int * string) list;  (** (step, message) *)
  task_exceptions : (string * string) list;
      (** exceptions that escaped a task's closure (tasks catch their
          own expected structured errors) *)
  deadlocked : bool;  (** hit the step bound before every task finished *)
}

val failed : outcome -> bool
(** Any invariant failure, escaped exception, or livelock. *)

val repro_string : outcome -> string
(** One line a human can paste back into a replay: seed, step count,
    decision list. *)

val run :
  ?max_steps:int ->
  ?schedule:int list ->
  ?checkers:(unit -> string list) list ->
  seed:int64 ->
  tasks:(string * (unit -> unit)) list ->
  unit ->
  outcome
(** Run [tasks] to completion under a simulated schedule.

    Without [schedule], decisions come from the PRNG seeded with
    [seed]. With [schedule], its entries are consumed first (each taken
    modulo the number of runnable tasks) and a deterministic
    round-robin tail follows — so a shrunk prefix still replays
    deterministically. [checkers] run between steps, while no task
    holds the token (the system is quiescent; taking engine locks is
    safe); the first non-empty report aborts the simulation. After
    [max_steps] (default 200k) the run is declared livelocked.
    On any abort every task is released to free-run to completion so
    domains can be joined — determinism is already forfeit at that
    point and the failure is already recorded.

    @raise Invalid_argument if a simulation is already running. *)

val shrink : ?budget:int -> replay:(int list -> bool) -> int list -> int list
(** Minimise a failing decision list. [replay d] must re-run the
    failing setup under [~schedule:d] and report whether it still
    fails. Shortest-failing-prefix search first, then ddmin-style
    chunk removal; at most [budget] (default 200) replays. Returns the
    smallest failing list found (the input if nothing smaller fails). *)

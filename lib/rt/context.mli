(** Per-execution runtime context: the arena (plus this execution's
    scratch lease), one allocator per worker thread, and registries of
    runtime objects (join tables, aggregation tables, output buffers,
    dictionary-predicate bitmaps). Generated code refers to objects by
    small integer ids; the {!Symbols} resolver dispatches them through
    the domain's {e current} context, so concurrent executions of the
    same compiled plan each see their own tables. *)

type t = {
  arena : Aeq_mem.Arena.t;
  lease : Aeq_mem.Arena.lease option;
  dict : Dict.t;
  n_threads : int;
  allocators : Aeq_mem.Arena.allocator array;
  mutable hts : Hash_table.t array;
  mutable aggs : Agg.t array;
  mutable outs : Output.t array;
  mutable preds : Bitmap.t array;
}

val create :
  ?lease:Aeq_mem.Arena.lease ->
  arena:Aeq_mem.Arena.t ->
  dict:Dict.t ->
  n_threads:int ->
  unit ->
  t
(** With [lease], thread allocators draw scratch chunks from it (the
    per-query path); without, they draw from the arena's base lease
    (long-lived data, single-threaded tools and tests). *)

val register_ht : t -> Hash_table.t -> int

val register_agg : t -> Agg.t -> int

val register_out : t -> Output.t -> int

val register_pred : t -> Bitmap.t -> int

val allocator : t -> tid:int -> Aeq_mem.Arena.allocator

(** {1 Domain-current context}

    Pipeline workers install the executing query's context in
    domain-local storage for the duration of a job; resolver closures
    read it back per call. *)

val set_current : t -> unit

val clear_current : unit -> unit

val current : unit -> t option

val unsafe_global_current : bool Atomic.t
(** TEST ONLY. When set, the "current context" degenerates to one
    process-global ref instead of a per-domain slot — the historical
    bug from before per-query contexts, where concurrent queries
    stomped each other's installation and wrote into the wrong query's
    runtime objects. The deterministic simulator flips this to prove
    the harness finds that race from a seed. Nothing in the engine
    sets it; leave it alone. *)

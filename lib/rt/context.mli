(** Per-query runtime context: the arena, one allocator per worker
    thread, and registries of runtime objects (join tables,
    aggregation tables, output buffers, dictionary-predicate bitmaps).
    Generated code refers to objects by small integer ids; the
    {!Symbols} resolver closes over the context to dispatch them. *)

type t = {
  arena : Aeq_mem.Arena.t;
  dict : Dict.t;
  n_threads : int;
  allocators : Aeq_mem.Arena.allocator array;
  mutable hts : Hash_table.t array;
  mutable aggs : Agg.t array;
  mutable outs : Output.t array;
  mutable preds : Bitmap.t array;
}

val create : arena:Aeq_mem.Arena.t -> dict:Dict.t -> n_threads:int -> t

val reset : t -> unit
(** Empty the object registries and replace every thread allocator
    with a fresh one. A long-lived context (a prepared statement's)
    is reset at the start of each execution so ids from the new
    registration round line up with planning order again, and so no
    allocator still points into arena chunks released by the previous
    execution's truncation. Code compiled against this context (via
    its {!Symbols.resolver}) stays valid: resolvers index the
    registries at call time, not at compile time. *)

val register_ht : t -> Hash_table.t -> int

val register_agg : t -> Agg.t -> int

val register_out : t -> Output.t -> int

val register_pred : t -> Bitmap.t -> int

val allocator : t -> tid:int -> Aeq_mem.Arena.allocator

module A = Aeq_mem.Arena

(* Civil-date conversion (Howard Hinnant's algorithm), days since
   1970-01-01 -> year. *)
let year_of_days days =
  let z = Int64.to_int days + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  Int64.of_int (if m <= 2 then y + 1 else y)

(* Compiled artifacts (and their resolved closures) are cached in the
   plan cache and shared by every concurrent execution of the
   statement, so the closures must not bake in one execution's tables.
   Each call resolves the domain-current context installed by the
   pipeline worker; [ctx] — the context the code was compiled against —
   is only the fallback for single-threaded callers (tools, tests)
   that invoke compiled code without going through the driver. *)
let resolver (ctx : Context.t) : Aeq_vm.Rt_fn.resolver =
  let cur () = match Context.current () with Some c -> c | None -> ctx in
  fun sym ->
    match sym with
    | "ht_insert" ->
      Some
        (Aeq_vm.Rt_fn.F3
           (fun ht tid key ->
             let c = cur () in
             let t = c.Context.hts.(Int64.to_int ht) in
             let allocator = c.Context.allocators.(Int64.to_int tid) in
             Int64.of_int (Hash_table.insert t ~allocator ~key)))
    | "ht_lookup" ->
      Some
        (Aeq_vm.Rt_fn.F2
           (fun ht key ->
             let t = (cur ()).Context.hts.(Int64.to_int ht) in
             Int64.of_int (Hash_table.lookup t ~key)))
    | "ht_next" ->
      Some
        (Aeq_vm.Rt_fn.F2
           (fun ht entry ->
             let t = (cur ()).Context.hts.(Int64.to_int ht) in
             Int64.of_int (Hash_table.next_match t ~entry:(Int64.to_int entry))))
    | "agg_get" ->
      Some
        (Aeq_vm.Rt_fn.F4
           (fun agg tid k1 k2 ->
             let c = cur () in
             let t = c.Context.aggs.(Int64.to_int agg) in
             let tid = Int64.to_int tid in
             let allocator = c.Context.allocators.(tid) in
             Int64.of_int (Agg.get_group t ~tid ~allocator ~k1 ~k2)))
    | "out_row" ->
      Some
        (Aeq_vm.Rt_fn.F2
           (fun out tid ->
             let c = cur () in
             let t = c.Context.outs.(Int64.to_int out) in
             let tid = Int64.to_int tid in
             let allocator = c.Context.allocators.(tid) in
             Int64.of_int (Output.row t ~tid ~allocator)))
    | "dict_match" ->
      Some
        (Aeq_vm.Rt_fn.F2
           (fun pred code ->
             let bm = (cur ()).Context.preds.(Int64.to_int pred) in
             if Bitmap.get bm (Int64.to_int code) then 1L else 0L))
    | "year_of" -> Some (Aeq_vm.Rt_fn.F1 year_of_days)
    | _ -> None

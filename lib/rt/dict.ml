(* Shared across all queries (codes live in loaded columns), and —
   now that query preparation runs without a global exec lock —
   encode/find race with concurrent plan-time predicate evaluation, so
   every entry point takes the dictionary lock. *)

let () = Aeq_race.declare "dict.table" (Aeq_race.Lock "dict.lock")

type t = {
  lock : Aeq_race.Lock.t;
  by_string : (string, int64) Hashtbl.t;
  mutable by_code : string array;
  mutable n : int;
  loc : Aeq_race.location;
}

let create () =
  {
    lock = Aeq_race.Lock.create "dict.lock";
    by_string = Hashtbl.create 1024;
    by_code = Array.make 1024 "";
    n = 0;
    loc = Aeq_race.locate "dict.table";
  }

let with_lock t f = Aeq_race.Lock.with_ t.lock f

let encode t s =
  with_lock t (fun () ->
      Aeq_race.write ~site:"dict.encode" t.loc;
      match Hashtbl.find_opt t.by_string s with
      | Some c -> c
      | None ->
        let c = t.n in
        if c >= Array.length t.by_code then begin
          let bigger = Array.make (2 * Array.length t.by_code) "" in
          Array.blit t.by_code 0 bigger 0 t.n;
          t.by_code <- bigger
        end;
        t.by_code.(c) <- s;
        t.n <- c + 1;
        let code = Int64.of_int c in
        Hashtbl.replace t.by_string s code;
        code)

let decode t c =
  let i = Int64.to_int c in
  with_lock t (fun () ->
      Aeq_race.read ~site:"dict.decode" t.loc;
      if i < 0 || i >= t.n then invalid_arg "Dict.decode: unknown code";
      t.by_code.(i))

let find t s =
  with_lock t (fun () ->
      Aeq_race.read ~site:"dict.find" t.loc;
      Hashtbl.find_opt t.by_string s)

let size t =
  with_lock t (fun () ->
      Aeq_race.read ~site:"dict.size" t.loc;
      t.n)

let codes_matching t pred =
  (* snapshot under the lock, evaluate the predicate outside it. The
     snapshot pair is safe off-lock: [by_code] entries below [n] are
     written exactly once (on encode) before the code escapes the lock,
     so a reader holding a snapshot never observes a mutation *)
  let by_code, n =
    with_lock t (fun () ->
        Aeq_race.read ~site:"dict.codes_matching" t.loc;
        (t.by_code, t.n))
  in
  let bm = Bitmap.create n in
  for c = 0 to n - 1 do
    if pred by_code.(c) then Bitmap.set bm c
  done;
  bm

(* Shared across all queries (codes live in loaded columns), and —
   now that query preparation runs without a global exec lock —
   encode/find race with concurrent plan-time predicate evaluation, so
   every entry point takes the dictionary lock. *)
type t = {
  lock : Mutex.t;
  by_string : (string, int64) Hashtbl.t;
  mutable by_code : string array;
  mutable n : int;
}

let create () =
  {
    lock = Mutex.create ();
    by_string = Hashtbl.create 1024;
    by_code = Array.make 1024 "";
    n = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let encode t s =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.by_string s with
      | Some c -> c
      | None ->
        let c = t.n in
        if c >= Array.length t.by_code then begin
          let bigger = Array.make (2 * Array.length t.by_code) "" in
          Array.blit t.by_code 0 bigger 0 t.n;
          t.by_code <- bigger
        end;
        t.by_code.(c) <- s;
        t.n <- c + 1;
        let code = Int64.of_int c in
        Hashtbl.replace t.by_string s code;
        code)

let decode t c =
  let i = Int64.to_int c in
  with_lock t (fun () ->
      if i < 0 || i >= t.n then invalid_arg "Dict.decode: unknown code";
      t.by_code.(i))

let find t s = with_lock t (fun () -> Hashtbl.find_opt t.by_string s)

let size t = with_lock t (fun () -> t.n)

let codes_matching t pred =
  (* snapshot under the lock, evaluate the predicate outside it *)
  let by_code, n = with_lock t (fun () -> (t.by_code, t.n)) in
  let bm = Bitmap.create n in
  for c = 0 to n - 1 do
    if pred by_code.(c) then Bitmap.set bm c
  done;
  bm

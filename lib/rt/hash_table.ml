module A = Aeq_mem.Arena

(* bucket heads are written under their stripe lock during the build
   phase; probe-phase reads are lock-free, ordered after every insert
   by the pool barrier between pipelines (so only inserts are
   instrumented — a location per stripe, since stripes guard disjoint
   bucket subsets) *)
let () = Aeq_race.declare "rt.ht.buckets" (Aeq_race.Lock "rt.ht.stripe")

type t = {
  arena : A.t;
  buckets : int array;
  mask : int;
  locks : Aeq_race.Lock.t array;
  locs : Aeq_race.location array; (* one per stripe *)
  payload_bytes : int;
  count : int Atomic.t;
}

let payload_offset = 16

let n_stripes = 64

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 16

let create arena ~expected_entries ~payload_bytes =
  let n = next_pow2 (Stdlib.max 16 (2 * expected_entries)) in
  {
    arena;
    buckets = Array.make n A.null;
    mask = n - 1;
    locks = Array.init n_stripes (fun _ -> Aeq_race.Lock.create "rt.ht.stripe");
    locs = Array.init n_stripes (fun _ -> Aeq_race.locate "rt.ht.buckets");
    payload_bytes;
    count = Atomic.make 0;
  }

(* splitmix-style finalizer *)
let hash key =
  let h = Int64.mul (Int64.logxor key (Int64.shift_right_logical key 33)) 0xFF51AFD7ED558CCDL in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 33)) 0xC4CEB9FE1A85EC53L in
  Int64.to_int (Int64.logxor h (Int64.shift_right_logical h 33)) land max_int

let insert t ~allocator ~key =
  let entry = A.alloc allocator (payload_offset + t.payload_bytes) in
  A.set_i64 t.arena (entry + 8) key;
  let b = hash key land t.mask in
  let s = b land (n_stripes - 1) in
  let stripe = t.locks.(s) in
  Aeq_race.Lock.lock stripe;
  Aeq_race.write ~site:"ht.insert" t.locs.(s);
  A.set_i64 t.arena entry (Int64.of_int t.buckets.(b));
  t.buckets.(b) <- entry;
  Aeq_race.Lock.unlock stripe;
  Atomic.incr t.count;
  entry + payload_offset

let lookup t ~key =
  let b = hash key land t.mask in
  let rec walk e =
    if e = A.null then A.null
    else if Int64.equal (A.get_i64 t.arena (e + 8)) key then e
    else walk (Int64.to_int (A.get_i64 t.arena e))
  in
  walk t.buckets.(b)

let next_match t ~entry =
  let key = A.get_i64 t.arena (entry + 8) in
  let rec walk e =
    if e = A.null then A.null
    else if Int64.equal (A.get_i64 t.arena (e + 8)) key then e
    else walk (Int64.to_int (A.get_i64 t.arena e))
  in
  walk (Int64.to_int (A.get_i64 t.arena entry))

let size t = Atomic.get t.count

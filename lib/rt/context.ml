type t = {
  arena : Aeq_mem.Arena.t;
  lease : Aeq_mem.Arena.lease option;
  dict : Dict.t;
  n_threads : int;
  allocators : Aeq_mem.Arena.allocator array;
  mutable hts : Hash_table.t array;
  mutable aggs : Agg.t array;
  mutable outs : Output.t array;
  mutable preds : Bitmap.t array;
}

let create ?lease ~arena ~dict ~n_threads () =
  let mk _ =
    match lease with
    | Some l -> Aeq_mem.Arena.lease_allocator l
    | None -> Aeq_mem.Arena.allocator arena
  in
  {
    arena;
    lease;
    dict;
    n_threads;
    allocators = Array.init (Stdlib.max 1 n_threads) mk;
    hts = [||];
    aggs = [||];
    outs = [||];
    preds = [||];
  }

let append arr x = Array.append arr [| x |]

let register_ht t ht =
  t.hts <- append t.hts ht;
  Array.length t.hts - 1

let register_agg t a =
  t.aggs <- append t.aggs a;
  Array.length t.aggs - 1

let register_out t o =
  t.outs <- append t.outs o;
  Array.length t.outs - 1

let register_pred t p =
  t.preds <- append t.preds p;
  Array.length t.preds - 1

let allocator t ~tid = t.allocators.(tid)

(* Current execution context of this domain. Compiled artifacts are
   shared across concurrent executions of a cached plan, so their
   runtime closures cannot bake in one context; instead each pipeline
   worker installs its query's context here and the Symbols resolver
   reads it back per call. *)
let current_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* TEST ONLY — resurrect the pre-per-query-context bug. Before
   contexts became domain-local, "the current context" was one global
   ref; two concurrent queries would stomp each other's installation
   and route hash-table inserts / output appends into the wrong
   query's runtime objects. The deterministic simulator flips this
   flag to prove it can find that race from a seed; nothing in the
   engine sets it. *)
let unsafe_global_current = Atomic.make false

let global_current : t option ref = ref None

(* the sound DLS path is domain-local by construction and is NOT
   instrumented; only the deliberately unsound global ref is, so the
   race detector flags exactly the resurrected bug and nothing else *)
let () = Aeq_race.declare "rt.context.global_current" Aeq_race.Domain_local

let global_loc = Aeq_race.locate "rt.context.global_current"

let set_current t =
  if Atomic.get unsafe_global_current then begin
    Aeq_race.write ~site:"context.set_current" global_loc;
    global_current := Some t
  end
  else Domain.DLS.get current_key := Some t

let clear_current () =
  if Atomic.get unsafe_global_current then begin
    Aeq_race.write ~site:"context.clear_current" global_loc;
    global_current := None
  end
  else Domain.DLS.get current_key := None

let current () =
  if Atomic.get unsafe_global_current then begin
    Aeq_race.read ~site:"context.current" global_loc;
    !global_current
  end
  else !(Domain.DLS.get current_key)

type t = {
  arena : Aeq_mem.Arena.t;
  dict : Dict.t;
  n_threads : int;
  allocators : Aeq_mem.Arena.allocator array;
  mutable hts : Hash_table.t array;
  mutable aggs : Agg.t array;
  mutable outs : Output.t array;
  mutable preds : Bitmap.t array;
}

let create ~arena ~dict ~n_threads =
  {
    arena;
    dict;
    n_threads;
    allocators = Array.init (Stdlib.max 1 n_threads) (fun _ -> Aeq_mem.Arena.allocator arena);
    hts = [||];
    aggs = [||];
    outs = [||];
    preds = [||];
  }

let reset t =
  (* Fresh allocators: the arena may have been truncated back past the
     chunks the old ones were bumping into. *)
  Array.iteri (fun i _ -> t.allocators.(i) <- Aeq_mem.Arena.allocator t.arena) t.allocators;
  t.hts <- [||];
  t.aggs <- [||];
  t.outs <- [||];
  t.preds <- [||]

let append arr x = Array.append arr [| x |]

let register_ht t ht =
  t.hts <- append t.hts ht;
  Array.length t.hts - 1

let register_agg t a =
  t.aggs <- append t.aggs a;
  Array.length t.aggs - 1

let register_out t o =
  t.outs <- append t.outs o;
  Array.length t.outs - 1

let register_pred t p =
  t.preds <- append t.preds p;
  Array.length t.preds - 1

let allocator t ~tid = t.allocators.(tid)

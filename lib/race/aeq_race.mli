(** Dynamic data-race detection: a guarded-by registry plus a
    lockset/vector-clock detector.

    Every shared mutable location in the engine declares its concurrency
    discipline in a central registry ({!declare}); code that touches such
    a location calls {!read}/{!write} with a site string. The detector
    maintains per-domain vector clocks and locksets, with happens-before
    edges on instrumented mutexes ({!Lock}), domain spawn/join
    ({!spawn}/{!join}) and single-flight publication, and reports both
    lockset violations (access without the declared guard) and
    happens-before races (two unordered conflicting accesses), naming the
    two conflicting access sites.

    Everything is gated on one atomic flag ({!Control}): with the
    detector disabled, each hook is a single atomic load and branch. *)

module Control : sig
  val enabled : unit -> bool
  (** One atomic load. [AEQ_RACE=1] (or any non-zero value) arms the
      detector at startup; [AEQ_RACE=fatal] additionally makes the first
      report abort the process (exit 70) so chaos soaks fail loudly. *)

  val set_enabled : bool -> unit

  val fatal : unit -> bool

  val set_fatal : bool -> unit

  val with_enabled : bool -> (unit -> 'a) -> 'a
  (** Run [f] with the detector forced on/off; restores on exit. *)
end

(** The concurrency discipline of a shared mutable location. *)
type discipline =
  | Lock of string
      (** Guarded by the named {!Lock.t}: every access must hold it.
          Happens-before is inherited from the lock instance. *)
  | Atomic
      (** An [Atomic.t] (or a field only accessed through atomics):
          sequentially consistent by construction, never checked
          dynamically, declared for the discipline table. *)
  | Domain_local
      (** Owned by one domain at a time; ownership may only transfer
          through a happens-before edge (publication). *)
  | Single_writer
      (** One writer domain; readers must be ordered after the writes
          by an explicit happens-before edge. *)

val declare : string -> discipline -> unit
(** Register a location name with its discipline. Idempotent; raises
    [Invalid_argument] on a conflicting redeclaration. *)

val disciplines : unit -> (string * discipline) list
(** All declared locations, sorted by name (for docs/lint). *)

val discipline_to_string : discipline -> string

type location
(** A per-instance handle for a declared location name. Two engines (or
    two hash-table stripes) each get their own [location] so unrelated
    instances can never alias into a false race. *)

val locate : string -> location
(** Create an instance handle for a declared name. Raises
    [Invalid_argument] if the name was never declared — registry
    coverage is part of the discipline. Cheap (a small record); safe to
    call per-structure at construction time even when disabled. *)

val read : site:string -> location -> unit
(** Record a read of [loc] at source site [site]. No-op when disabled. *)

val write : site:string -> location -> unit
(** Record a write of [loc] at source site [site]. No-op when disabled. *)

(** An instrumented mutex: the only lock type engine code should use.
    Acquire/release maintain the per-domain lockset and the
    release/acquire happens-before edges. *)
module Lock : sig
  type t

  val create : string -> t
  (** [create name] — [name] is what {!Lock} disciplines refer to. *)

  val name : t -> string

  val lock : t -> unit

  val unlock : t -> unit

  val with_ : t -> (unit -> 'a) -> 'a
  (** [with_ l f] runs [f] with [l] held; always releases ([Fun.protect]). *)

  val wait : Condition.t -> t -> unit
  (** [Condition.wait] through the instrumentation: the implicit release
      and re-acquire get their happens-before edges. *)
end

val spawn : (unit -> 'a) -> 'a Domain.t
(** [Domain.spawn] with a fork happens-before edge into the child. *)

val join : 'a Domain.t -> 'a
(** [Domain.join] with a join happens-before edge from the child. *)

val publish : unit -> unit
(** Single-flight publication edge, release half: call after finishing a
    result that another domain will consume without a common lock. *)

val consume : unit -> unit
(** Single-flight publication edge, acquire half: call before using a
    result published by {!publish}. *)

(** A detected violation. *)
type report = {
  r_loc : string;  (** declared location name *)
  r_kind : [ `Lockset | `Race ];
  r_msg : string;  (** human-readable one-liner *)
  r_site_a : string;  (** earlier conflicting access site ("" if none) *)
  r_site_b : string;  (** the access that triggered the report *)
}

val report_to_string : report -> string

val report_count : unit -> int
(** Total reports since the last {!reset} (including deduplicated ones
    beyond the ring capacity). *)

val take_reports : unit -> report list
(** Drain pending reports, oldest first. *)

val reset : unit -> unit
(** Clear reports and dedup state (not clocks); call between runs. *)

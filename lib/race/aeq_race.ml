(* Lockset + vector-clock data-race detector.

   The design follows Eraser (locksets) and FastTrack (epoch-based
   vector clocks), cut down to what a deterministic test harness needs:

   - every domain carries a vector clock and the set of instrumented
     locks it holds (in domain-local state, touched only by its owner);
   - every instrumented lock carries the join of its releasers' clocks,
     protected by the lock's own mutex (it is only read/written while
     the mutex is held);
   - every declared location remembers its last write and a read
     frontier as (tid, epoch, site) triples; those are mutated by
     racing domains, so they live under one global detector mutex.

   The global mutex serializes instrumented accesses when the detector
   is armed — this is a correctness tool, not a production mode. When
   disarmed every hook is one atomic load and a branch. *)

module Control = struct
  let env = Sys.getenv_opt "AEQ_RACE"

  let flag =
    Atomic.make (match env with None | Some "" | Some "0" -> false | Some _ -> true)

  let fatal_flag = Atomic.make (match env with Some "fatal" -> true | _ -> false)

  let enabled () = Atomic.get flag

  let set_enabled b = Atomic.set flag b

  let fatal () = Atomic.get fatal_flag

  let set_fatal b = Atomic.set fatal_flag b

  let with_enabled b f =
    let prev = Atomic.get flag in
    Atomic.set flag b;
    Fun.protect ~finally:(fun () -> Atomic.set flag prev) f
end

type discipline = Lock of string | Atomic | Domain_local | Single_writer

let discipline_to_string = function
  | Lock n -> Printf.sprintf "Lock %S" n
  | Atomic -> "Atomic"
  | Domain_local -> "Domain_local"
  | Single_writer -> "Single_writer"

(* ------------------------------------------------------------------ *)
(* Vector clocks: int arrays indexed by detector tid, grown on demand. *)

let vc_get a i = if i < Array.length a then a.(i) else 0

let vc_ensure a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make n 0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* ------------------------------------------------------------------ *)
(* Per-domain state. Only ever touched by the owning domain.           *)

type lock_inst = {
  li_name : string;
  li_m : Mutex.t;
  mutable li_vc : int array; (* join of releasers' clocks; guarded by li_m *)
}

type dstate = {
  tid : int;
  mutable vc : int array;
  mutable held : lock_inst list;
}

let next_tid = Atomic.make 0

let dstate_key =
  Domain.DLS.new_key (fun () ->
      let tid = Atomic.fetch_and_add next_tid 1 in
      let vc = Array.make (tid + 1) 0 in
      vc.(tid) <- 1;
      { tid; vc; held = [] })

let self () = Domain.DLS.get dstate_key

let join_into st src =
  st.vc <- vc_ensure st.vc (Array.length src);
  Array.iteri (fun i v -> if v > st.vc.(i) then st.vc.(i) <- v) src

let vc_join a b =
  let n = Stdlib.max (Array.length a) (Array.length b) in
  Array.init n (fun i -> Stdlib.max (vc_get a i) (vc_get b i))

let bump st = st.vc.(st.tid) <- st.vc.(st.tid) + 1

(* ------------------------------------------------------------------ *)
(* Detector-global state: locations, reports, registry. One mutex.     *)

let dlock = Mutex.create ()

let locked f =
  Mutex.lock dlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock dlock) f

(* -- registry -- *)

let registry : (string, discipline) Hashtbl.t = Hashtbl.create 64

let declare name disc =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | None -> Hashtbl.add registry name disc
      | Some d when d = disc -> ()
      | Some d ->
          invalid_arg
            (Printf.sprintf
               "Aeq_race.declare: %s redeclared as %s (was %s)" name
               (discipline_to_string disc) (discipline_to_string d)))

let disciplines () =
  locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* -- locations -- *)

type access = { a_tid : int; a_epoch : int; a_site : string }

type location = {
  x_name : string;
  x_disc : discipline;
  mutable x_owner : int; (* Domain_local: owning tid, -1 = unclaimed *)
  mutable x_write : access option;
  mutable x_reads : access list; (* at most one entry per tid *)
}

let locate name =
  let d = locked (fun () -> Hashtbl.find_opt registry name) in
  match d with
  | None -> invalid_arg ("Aeq_race.locate: undeclared location " ^ name)
  | Some d -> { x_name = name; x_disc = d; x_owner = -1; x_write = None; x_reads = [] }

(* -- reports -- *)

type report = {
  r_loc : string;
  r_kind : [ `Lockset | `Race ];
  r_msg : string;
  r_site_a : string;
  r_site_b : string;
}

let report_to_string r =
  Printf.sprintf "%s %s: %s"
    (match r.r_kind with `Lockset -> "lockset-violation" | `Race -> "data-race")
    r.r_loc r.r_msg

let max_reports = 256

let reports : report list ref = ref [] (* newest first; guarded by dlock *)

let n_pending = ref 0

let n_reports = ref 0

let dedup : (string, unit) Hashtbl.t = Hashtbl.create 64

(* called with dlock held *)
let emit ~loc ~kind ~site_a ~site_b msg =
  let k = loc ^ "|" ^ site_a ^ "|" ^ site_b in
  if not (Hashtbl.mem dedup k) then begin
    Hashtbl.add dedup k ();
    incr n_reports;
    let r = { r_loc = loc; r_kind = kind; r_msg = msg; r_site_a = site_a; r_site_b = site_b } in
    if !n_pending < max_reports then begin
      reports := r :: !reports;
      incr n_pending
    end;
    if Control.fatal () then begin
      prerr_endline ("AEQ_RACE fatal: " ^ report_to_string r);
      exit 70
    end
  end

let report_count () = locked (fun () -> !n_reports)

let take_reports () =
  locked (fun () ->
      let rs = List.rev !reports in
      reports := [];
      n_pending := 0;
      rs)

let reset () =
  locked (fun () ->
      reports := [];
      n_pending := 0;
      n_reports := 0;
      Hashtbl.reset dedup)

(* ------------------------------------------------------------------ *)
(* Access checking.                                                    *)

(* did [a] happen before the current state of [st]? (epoch test) *)
let hb a st = a.a_epoch <= vc_get st.vc a.a_tid

let slow_access ~is_write ~site loc =
  let st = self () in
  let what = if is_write then "write" else "read" in
  locked (fun () ->
      (* lockset / discipline-specific checks *)
      (match loc.x_disc with
      | Atomic -> ()
      | Lock lname ->
          if not (List.exists (fun l -> String.equal l.li_name lname) st.held) then
            emit ~loc:loc.x_name ~kind:`Lockset ~site_a:"" ~site_b:site
              (Printf.sprintf "%s at %s without holding lock %S" what site lname)
      | Domain_local ->
          if loc.x_owner = -1 then loc.x_owner <- st.tid
          else if loc.x_owner <> st.tid then begin
            (* ownership may only transfer through happens-before *)
            let ordered =
              (match loc.x_write with Some w -> hb w st | None -> true)
              && List.for_all (fun r -> hb r st) loc.x_reads
            in
            if not ordered then begin
              let prior =
                match loc.x_write with
                | Some w -> w
                | None -> List.hd loc.x_reads
              in
              emit ~loc:loc.x_name ~kind:`Race ~site_a:prior.a_site ~site_b:site
                (Printf.sprintf
                   "domain-local location touched by two domains without \
                    ordering: %s at %s (domain %d) vs %s at %s (domain %d)"
                   (match loc.x_write with Some _ -> "write" | None -> "read")
                   prior.a_site prior.a_tid what site st.tid)
            end;
            (* re-own either way so one bug yields one report, not a flood *)
            loc.x_owner <- st.tid
          end
      | Single_writer -> ());
      (* happens-before conflict checks (write/write, read/write) *)
      (match loc.x_disc with
      | Atomic -> ()
      | _ ->
          (match loc.x_write with
          | Some w when w.a_tid <> st.tid && not (hb w st) ->
              emit ~loc:loc.x_name ~kind:`Race ~site_a:w.a_site ~site_b:site
                (Printf.sprintf
                   "unordered write at %s (domain %d) vs %s at %s (domain %d)"
                   w.a_site w.a_tid what site st.tid)
          | _ -> ());
          if is_write then
            List.iter
              (fun r ->
                if r.a_tid <> st.tid && not (hb r st) then
                  emit ~loc:loc.x_name ~kind:`Race ~site_a:r.a_site ~site_b:site
                    (Printf.sprintf
                       "unordered read at %s (domain %d) vs write at %s (domain %d)"
                       r.a_site r.a_tid site st.tid))
              loc.x_reads);
      (* record this access *)
      let me = { a_tid = st.tid; a_epoch = vc_get st.vc st.tid; a_site = site } in
      if is_write then begin
        loc.x_write <- Some me;
        loc.x_reads <- []
      end
      else loc.x_reads <- me :: List.filter (fun r -> r.a_tid <> st.tid) loc.x_reads)

let[@inline] read ~site loc =
  if Atomic.get Control.flag then slow_access ~is_write:false ~site loc

let[@inline] write ~site loc =
  if Atomic.get Control.flag then slow_access ~is_write:true ~site loc

(* ------------------------------------------------------------------ *)
(* Instrumented locks.                                                 *)

module Lock_impl = struct
  type t = lock_inst

  let create name = { li_name = name; li_m = Mutex.create (); li_vc = [||] }

  let name l = l.li_name

  (* acquire edge: join the releasers' clock. Called with li_m held, so
     li_vc is stable. *)
  let acquired l =
    let st = self () in
    st.held <- l :: st.held;
    join_into st l.li_vc

  (* release edge: fold our clock into the lock, then advance our epoch
     so later accesses are not ordered before this release. Called with
     li_m still held. *)
  let releasing l =
    let st = self () in
    st.held <- (match st.held with m :: rest when m == l -> rest
               | held -> List.filter (fun m -> m != l) held);
    l.li_vc <- vc_join l.li_vc st.vc;
    bump st

  let lock l =
    Mutex.lock l.li_m;
    if Atomic.get Control.flag then acquired l

  let unlock l =
    if Atomic.get Control.flag then releasing l;
    Mutex.unlock l.li_m

  let with_ l f =
    lock l;
    Fun.protect ~finally:(fun () -> unlock l) f

  let wait c l =
    if Atomic.get Control.flag then begin
      (* the wait releases and re-acquires the mutex: mirror both edges,
         keeping the lock in our lockset (we are blocked in between, so
         no access can observe the stale entry). *)
      let st = self () in
      l.li_vc <- vc_join l.li_vc st.vc;
      bump st;
      Condition.wait c l.li_m;
      join_into st l.li_vc
    end
    else Condition.wait c l.li_m
end

module Lock = Lock_impl

(* ------------------------------------------------------------------ *)
(* Domain spawn/join and single-flight publication edges.              *)

(* final clocks of retired instrumented domains, keyed by domain id *)
let finished : (int, int array) Hashtbl.t = Hashtbl.create 16

let spawn f =
  if not (Atomic.get Control.flag) then Domain.spawn f
  else begin
    let st = self () in
    let snap = Array.copy st.vc in
    bump st;
    Domain.spawn (fun () ->
        let cst = self () in
        join_into cst snap;
        Fun.protect
          ~finally:(fun () ->
            let id = (Domain.self () :> int) in
            let final = Array.copy cst.vc in
            locked (fun () -> Hashtbl.replace finished id final))
          f)
  end

let join d =
  let r = Domain.join d in
  if Atomic.get Control.flag then begin
    let id = (Domain.get_id d :> int) in
    let final =
      locked (fun () ->
          match Hashtbl.find_opt finished id with
          | Some vc ->
              Hashtbl.remove finished id;
              Some vc
          | None -> None)
    in
    match final with
    | Some vc -> join_into (self ()) vc
    | None -> ()
  end;
  r

(* one global publication channel: sound (extra edges can only mask
   races, never invent them) and enough for the engine's single-flight
   compile publication *)
let pub_vc = ref [||]

let publish () =
  if Atomic.get Control.flag then begin
    let st = self () in
    locked (fun () -> pub_vc := vc_join !pub_vc st.vc);
    bump st
  end

let consume () =
  if Atomic.get Control.flag then begin
    let st = self () in
    let vc = locked (fun () -> !pub_vc) in
    join_into st vc
  end

type compiled = {
  exec : Closure_compile.t;
  compile_seconds : float;
  n_instrs_after : int;
}

let observe_compile mode seconds =
  if Aeq_obs.Control.enabled () then
    Aeq_obs.Metrics.observe
      (Aeq_obs.Metrics.histogram "aeq_compile_seconds"
         ~help:"Compilation latency per backend invocation (modelled padding included)."
         ~labels:[ ("mode", Cost_model.mode_name mode) ])
      seconds

(* Pad real work up to the modelled latency (when simulation is on). *)
let pad_to model mode n_instrs real_elapsed =
  if model.Cost_model.simulate then begin
    let target = Cost_model.compile_time model mode n_instrs in
    if target > real_elapsed then Aeq_util.Clock.busy_wait (target -. real_elapsed);
    Stdlib.max target real_elapsed
  end
  else real_elapsed

let translate_bytecode ?strategy ~cost_model ~symbols f =
  Aeq_obs.Span.with_span "translate" (fun () ->
      let n = Func.n_instrs f in
      let prog, elapsed =
        Aeq_util.Clock.time_it (fun () ->
            Aeq_vm.Translate.translate ?strategy ~symbols f)
      in
      let seconds = pad_to cost_model Cost_model.Bytecode n elapsed in
      observe_compile Cost_model.Bytecode seconds;
      (prog, seconds))

let compile_unopt_of_bytecode ~cost_model ~mem ~n_instrs prog =
  Aeq_obs.Span.with_span "compile" (fun () ->
      let exec, elapsed =
        Aeq_util.Clock.time_it (fun () -> Closure_compile.compile prog mem)
      in
      let compile_seconds = pad_to cost_model Cost_model.Unopt n_instrs elapsed in
      observe_compile Cost_model.Unopt compile_seconds;
      { exec; compile_seconds; n_instrs_after = n_instrs })

let compile ~cost_model ~symbols ~mem ~mode f =
  Aeq_obs.Span.with_span "compile" (fun () ->
      let n = Func.n_instrs f in
      let (exec, n_after), elapsed =
        Aeq_util.Clock.time_it (fun () ->
            match mode with
            | Cost_model.Bytecode ->
              invalid_arg "Compiler.compile: use translate_bytecode"
            | Cost_model.Unopt ->
              let prog = Aeq_vm.Translate.translate ~symbols f in
              (Closure_compile.compile prog mem, n)
            | Cost_model.Opt ->
              let clone = Func.copy f in
              Aeq_obs.Span.with_span "optimize" (fun () ->
                  Aeq_passes.Pass_manager.optimize Aeq_passes.Pass_manager.O2 clone);
              let prog = Aeq_vm.Translate.translate ~symbols clone in
              (Closure_compile.compile prog mem, Func.n_instrs clone))
      in
      let compile_seconds = pad_to cost_model mode n elapsed in
      observe_compile mode compile_seconds;
      { exec; compile_seconds; n_instrs_after = n_after })

type t = {
  simulate : bool;
  bc_base : float;
  bc_per_instr : float;
  unopt_base : float;
  unopt_per_instr : float;
  opt_base : float;
  opt_per_instr : float;
  opt_quad : float;
  speedup_unopt : float;
  speedup_opt : float;
}

(* Derived from the paper: Table I gives Q1 ≈ 0.4 ms bytecode, 6 ms
   unoptimized, 42 ms optimized at roughly 1,000 IR instructions;
   Fig. 15 shows optimized compilation passing 4 s near 10,000
   instructions in a single function, which fixes the quadratic
   term; unoptimized stays near-linear up to 160,000 instructions. *)
let default =
  {
    simulate = true;
    bc_base = 0.00005;
    bc_per_instr = 3.5e-7;
    unopt_base = 0.0008;
    unopt_per_instr = 5.5e-6;
    opt_base = 0.0015;
    opt_per_instr = 3.6e-5;
    opt_quad = 3.8e-8;
    speedup_unopt = 3.6;
    speedup_opt = 5.0;
  }

let off = { default with simulate = false }

let with_speedups t ~unopt ~opt = { t with speedup_unopt = unopt; speedup_opt = opt }

type mode = Bytecode | Unopt | Opt

let mode_name = function
  | Bytecode -> "bytecode"
  | Unopt -> "unoptimized"
  | Opt -> "optimized"

let compile_time t mode n =
  let n = float_of_int n in
  match mode with
  | Bytecode -> t.bc_base +. (t.bc_per_instr *. n)
  | Unopt -> t.unopt_base +. (t.unopt_per_instr *. n)
  | Opt -> t.opt_base +. (t.opt_per_instr *. n) +. (t.opt_quad *. n *. n)

let speedup t = function
  | Bytecode -> 1.0
  | Unopt -> t.speedup_unopt
  | Opt -> t.speedup_opt

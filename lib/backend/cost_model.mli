(** Compile-latency model.

    Our closure compiler is orders of magnitude cheaper than LLVM's
    backend, so on its own it could not reproduce the latency/
    throughput tradeoff every experiment in the paper rests on. This
    model layers the paper's measured cost *shape* on top of the real
    compilation work (see DESIGN.md, "Substitutions"):

    - bytecode translation: linear, sub-millisecond (kept real; the
      model only provides the controller's estimate);
    - unoptimized machine code: linear in the instruction count,
      roughly 6 µs per IR instruction (Fig. 6 / Table I);
    - optimized machine code: linear + quadratic per function — the
      quadratic term reproduces Fig. 15's explosive growth for
      machine-generated mega-functions while remaining negligible for
      ordinary pipelines.

    The same model feeds the adaptive controller's extrapolation
    (paper Fig. 7), so decisions and simulated costs are consistent.
    [off] disables the simulated delay (tests, micro-benchmarks). *)

type t = {
  simulate : bool;  (** busy-wait to the modelled latency when compiling *)
  bc_base : float;
  bc_per_instr : float;
  unopt_base : float;
  unopt_per_instr : float;
  opt_base : float;
  opt_per_instr : float;
  opt_quad : float;  (** seconds per (instruction count)² *)
  speedup_unopt : float;  (** expected throughput vs bytecode *)
  speedup_opt : float;
}

val default : t
(** Paper-calibrated shape, simulation on. *)

val off : t
(** Same estimates for the controller, but no simulated delay:
    compile times are the real closure-compilation times. *)

val with_speedups : t -> unopt:float -> opt:float -> t
(** Override the expected speedups (e.g. with measured values from
    {!Calibration}). *)

type mode = Bytecode | Unopt | Opt

val mode_name : mode -> string
(** ["bytecode"] / ["unoptimized"] / ["optimized"] — the label used in
    traces, metrics and the decision log. *)

val compile_time : t -> mode -> int -> float
(** [compile_time t mode n_instrs] — the modelled latency in seconds
    for one function of the given size. *)

val speedup : t -> mode -> float
(** Expected throughput multiplier vs bytecode interpretation. *)

(** Compilation driver for the three execution modes of Fig. 3.

    Produces executable variants of an IR worker function:
    - [translate_bytecode]: fast linear translation (Section IV);
    - [compile] with {!Cost_model.Unopt}: no IR passes, closure
      compilation ("fast instruction selection");
    - [compile] with {!Cost_model.Opt}: the full pass pipeline, then
      closure compilation.

    Each call reports the wall-clock compile latency, which includes
    the cost-model delay when simulation is on. The input function is
    never mutated (the optimizer works on a copy). *)

type compiled = {
  exec : Closure_compile.t;
  compile_seconds : float;
  n_instrs_after : int;  (** IR size after passes (Opt shrinks it) *)
}

val translate_bytecode :
  ?strategy:Aeq_vm.Regalloc.strategy ->
  cost_model:Cost_model.t ->
  symbols:Aeq_vm.Rt_fn.resolver ->
  Func.t ->
  Aeq_vm.Bytecode.t * float

val compile :
  cost_model:Cost_model.t ->
  symbols:Aeq_vm.Rt_fn.resolver ->
  mem:Aeq_mem.Arena.t ->
  mode:Cost_model.mode ->
  Func.t ->
  compiled
(** [mode] must be [Unopt] or [Opt].
    @raise Invalid_argument on [Bytecode]. *)

val compile_unopt_of_bytecode :
  cost_model:Cost_model.t ->
  mem:Aeq_mem.Arena.t ->
  n_instrs:int ->
  Aeq_vm.Bytecode.t ->
  compiled
(** Unoptimized closure compilation of an already-translated bytecode
    program, skipping the redundant IR re-translation that [compile]
    with [Unopt] performs. [n_instrs] is the source function's IR size
    (drives the modelled latency). *)

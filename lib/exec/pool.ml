type worker_state = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (tid:int -> unit) option;
  mutable generation : int;
  mutable stop : bool;
}

type t = {
  n_threads : int;
  states : worker_state array; (* one per extra worker (tids 1..n-1) *)
  mutable domains : unit Domain.t array;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
  mutable done_count : int;
  error : exn option Atomic.t;
  closed : bool Atomic.t;
  busy : bool Atomic.t;
}

let signal_done t =
  Mutex.lock t.done_mutex;
  t.done_count <- t.done_count + 1;
  Condition.signal t.done_cond;
  Mutex.unlock t.done_mutex

let worker_loop t state tid =
  let gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock state.mutex;
    while state.generation = !gen && not state.stop do
      Condition.wait state.cond state.mutex
    done;
    let job = state.job and stop = state.stop in
    let this_gen = state.generation in
    Mutex.unlock state.mutex;
    if stop then running := false
    else begin
      gen := this_gen;
      (match job with
      | Some f -> (
        try f ~tid with e -> ignore (Atomic.compare_and_set t.error None (Some e)))
      | None -> ());
      signal_done t
    end
  done

let create ~n_threads =
  let n_threads = Stdlib.max 1 n_threads in
  let states =
    Array.init (n_threads - 1) (fun _ ->
        {
          mutex = Mutex.create ();
          cond = Condition.create ();
          job = None;
          generation = 0;
          stop = false;
        })
  in
  let t =
    {
      n_threads;
      states;
      domains = [||];
      done_mutex = Mutex.create ();
      done_cond = Condition.create ();
      done_count = 0;
      error = Atomic.make None;
      closed = Atomic.make false;
      busy = Atomic.make false;
    }
  in
  t.domains <-
    Array.mapi (fun i state -> Domain.spawn (fun () -> worker_loop t state (i + 1))) states;
  t

let n_threads t = t.n_threads

let closed t = Atomic.get t.closed

let busy t = Atomic.get t.busy

let run t job =
  (* a submission to dead workers would block forever on the barrier *)
  if closed t then invalid_arg "Pool.run: pool has been shut down";
  Atomic.set t.busy true;
  Mutex.lock t.done_mutex;
  t.done_count <- 0;
  Mutex.unlock t.done_mutex;
  Atomic.set t.error None;
  Array.iter
    (fun state ->
      Mutex.lock state.mutex;
      state.job <- Some job;
      state.generation <- state.generation + 1;
      Condition.signal state.cond;
      Mutex.unlock state.mutex)
    t.states;
  (* the caller is thread 0 *)
  (try job ~tid:0 with e -> ignore (Atomic.compare_and_set t.error None (Some e)));
  Mutex.lock t.done_mutex;
  while t.done_count < Array.length t.states do
    Condition.wait t.done_cond t.done_mutex
  done;
  Mutex.unlock t.done_mutex;
  Atomic.set t.busy false;
  match Atomic.get t.error with Some e -> raise e | None -> ()

let shutdown t =
  if Atomic.compare_and_set t.closed false true then begin
    Array.iter
      (fun state ->
        Mutex.lock state.mutex;
        state.stop <- true;
        Condition.signal state.cond;
        Mutex.unlock state.mutex)
      t.states;
    Array.iter Domain.join t.domains
  end

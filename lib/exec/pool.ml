(* Multi-tenant worker pool over OCaml domains.

   The old pool was single-tenant: one job slot per worker and a
   done-count barrier meant a second query's pipeline had to wait for
   the first to finish entirely — the serialization the global exec
   lock then cemented. Here jobs from several in-flight queries
   coexist on one open-job list; each worker picks the job with the
   fewest participants (spreading domains across queries instead of
   ganging up on one), claims the next tid, and runs morsels until the
   job's morsel supply is exhausted.

   A job is a [fn : tid:int -> unit] that returns when it cannot get
   more morsels; tids are claimed 0..max_tids-1 and never reused
   within a job, so per-tid state (allocators, output buffers) stays
   single-writer. The submitting caller always participates as tid 0 —
   a query makes progress even when every worker domain is busy
   elsewhere.

   Workers run under supervision (see [Supervisor]): a crash —
   anything [fn] throws that is not part of the structured-error
   contract, i.e. an [Injected_crash] or a real bug — would otherwise
   leave the job's [active] count permanently high and hang the
   submitting caller in its drain barrier forever. The supervisor's
   reclaim fixes the accounting (decrement [active], record a
   [Worker_crashed] as the job error, wake the barrier) and restarts
   the worker domain. *)

module QE = Query_error

let () =
  Aeq_race.declare "pool.jobs" (Aeq_race.Lock "pool.lock");
  Aeq_race.declare "pool.current" (Aeq_race.Lock "pool.lock");
  Aeq_race.declare "pool.job.state" (Aeq_race.Lock "pool.lock")

type job = {
  fn : tid:int -> unit;
  max_tids : int;
  mutable next_tid : int;
  mutable active : int;
  mutable closed_job : bool; (* caller finished; no new joiners *)
  error : exn option Atomic.t;
  j_loc : Aeq_race.location;
}

type t = {
  n_threads : int;
  supervised : bool;
  lock : Aeq_race.Lock.t;
  work : Condition.t; (* new job posted / job list changed *)
  quiet : Condition.t; (* a participant left some job *)
  mutable jobs : job list;
  mutable stop : bool;
  current : job option array;
      (* per-worker claimed-job slot, written under [lock] — what the
         supervisor's reclaim repairs when worker [w] crashes *)
  mutable domains : unit Domain.t array; (* unsupervised mode *)
  mutable supervisors : Supervisor.t array; (* supervised mode *)
  closed : bool Atomic.t;
  active_jobs : int Atomic.t;
  jobs_loc : Aeq_race.location;
  current_loc : Aeq_race.location;
}

(* under t.lock: the open job with the fewest claimed tids *)
let pick_job t =
  let best = ref None in
  List.iter
    (fun j ->
      if (not j.closed_job) && j.next_tid < j.max_tids then
        match !best with
        | Some b when b.next_tid <= j.next_tid -> ()
        | _ -> best := Some j)
    t.jobs;
  !best

let run_participant j ~tid =
  try
    (* the pick is where a worker commits to a job — faults and
       interleavings here exercise the claimed-but-not-started window *)
    Aeq_util.Failpoints.hit "pool.pick";
    Aeq_util.Yieldpoint.yield "pool.pick";
    j.fn ~tid
  with
  | e when Aeq_util.Failpoints.is_crash e ->
    (* not folded into the job error: a crash must stay lethal to the
       participant's domain so the supervision layer is what handles
       it (worker: reclaim + restart; caller: its own supervisor) *)
    raise e
  | e -> ignore (Atomic.compare_and_set j.error None (Some e))

let worker_loop t w () =
  let running = ref true in
  while !running do
    Aeq_race.Lock.lock t.lock;
    let rec await () =
      Aeq_race.read ~site:"pool.await" t.jobs_loc;
      if t.stop then None
      else
        match pick_job t with
        | Some j -> Some j
        | None ->
          Aeq_race.Lock.wait t.work t.lock;
          await ()
    in
    match await () with
    | None ->
      Aeq_race.Lock.unlock t.lock;
      running := false
    | Some j ->
      Aeq_race.write ~site:"pool.claim" j.j_loc;
      Aeq_race.write ~site:"pool.claim" t.current_loc;
      let tid = j.next_tid in
      j.next_tid <- tid + 1;
      j.active <- j.active + 1;
      t.current.(w) <- Some j;
      Aeq_race.Lock.unlock t.lock;
      run_participant j ~tid;
      Aeq_race.Lock.lock t.lock;
      Aeq_race.write ~site:"pool.leave" j.j_loc;
      Aeq_race.write ~site:"pool.leave" t.current_loc;
      t.current.(w) <- None;
      j.active <- j.active - 1;
      Condition.broadcast t.quiet;
      Aeq_race.Lock.unlock t.lock
  done

(* Supervisor reclaim for worker [w], running in the crashed domain
   after the unwind: the participant never reached its leave-the-job
   accounting, so do it here — and surface the crash as the job's
   error so the submitting caller raises [Worker_crashed] instead of
   silently losing the crashed participant's claimed morsels. *)
let worker_reclaim t w sv_name exn =
  Aeq_race.Lock.with_ t.lock (fun () ->
      Aeq_race.write ~site:"pool.reclaim" t.current_loc;
      match t.current.(w) with
      | Some j ->
        Aeq_race.write ~site:"pool.reclaim" j.j_loc;
        t.current.(w) <- None;
        j.active <- j.active - 1;
        ignore
          (Atomic.compare_and_set j.error None
             (Some
                (QE.Error
                   (QE.Worker_crashed
                      { domain = sv_name; detail = Printexc.to_string exn }))));
        Condition.broadcast t.quiet
      | None -> ())

let create ?(supervised = true) ?(restart_policy = Supervisor.default_policy)
    ~n_threads () =
  let n_threads = Stdlib.max 1 n_threads in
  let t =
    {
      n_threads;
      supervised;
      lock = Aeq_race.Lock.create "pool.lock";
      work = Condition.create ();
      quiet = Condition.create ();
      jobs = [];
      stop = false;
      current = Array.make (Stdlib.max 1 (n_threads - 1)) None;
      domains = [||];
      supervisors = [||];
      closed = Atomic.make false;
      active_jobs = Atomic.make 0;
      jobs_loc = Aeq_race.locate "pool.jobs";
      current_loc = Aeq_race.locate "pool.current";
    }
  in
  if supervised then
    t.supervisors <-
      Array.init (n_threads - 1) (fun w ->
          let sv_name = Printf.sprintf "pool.worker-%d" w in
          Supervisor.spawn ~policy:restart_policy ~name:sv_name
            ~on_crash:(worker_reclaim t w sv_name)
            (worker_loop t w))
  else
    t.domains <-
      Array.init (n_threads - 1) (fun w -> Aeq_race.spawn (worker_loop t w));
  t

let n_threads t = t.n_threads

let closed t = Atomic.get t.closed

let active_jobs t = Atomic.get t.active_jobs

let busy t = active_jobs t > 0

let health_reasons t =
  Array.to_list t.supervisors |> List.filter_map Supervisor.health_reason

let supervisors t = Array.to_list t.supervisors

let run ?max_tids t fn =
  (* a submission to dead workers would never gain helpers *)
  if closed t then invalid_arg "Pool.run: pool has been shut down";
  let max_tids =
    match max_tids with
    | Some m -> Stdlib.max 1 (Stdlib.min m t.n_threads)
    | None -> t.n_threads
  in
  let j =
    {
      fn;
      max_tids;
      next_tid = 1; (* tid 0 is the caller's *)
      active = 1;
      closed_job = false;
      error = Atomic.make None;
      j_loc = Aeq_race.locate "pool.job.state";
    }
  in
  ignore (Atomic.fetch_and_add t.active_jobs 1);
  Aeq_race.Lock.with_ t.lock (fun () ->
      Aeq_race.write ~site:"pool.post" t.jobs_loc;
      t.jobs <- j :: t.jobs;
      Condition.broadcast t.work);
  (* The close-out runs on every exit path — including the caller
     itself crashing as tid 0: the job must leave the open list and
     its barrier must drain, or the pool leaks the job and the
     in-flight gauge sticks. The crash then propagates to the caller's
     own supervisor (the dispatcher's, usually). *)
  let close_out () =
    Aeq_race.Lock.lock t.lock;
    Aeq_race.write ~site:"pool.close_out" t.jobs_loc;
    Aeq_race.write ~site:"pool.close_out" j.j_loc;
    j.closed_job <- true;
    t.jobs <- List.filter (fun j' -> j' != j) t.jobs;
    j.active <- j.active - 1;
    while j.active > 0 do
      Aeq_race.Lock.wait t.quiet t.lock
    done;
    Aeq_race.Lock.unlock t.lock;
    ignore (Atomic.fetch_and_add t.active_jobs (-1))
  in
  Fun.protect ~finally:close_out (fun () -> run_participant j ~tid:0);
  match Atomic.get j.error with Some e -> raise e | None -> ()

(* Accounting coherence probe for the simulator's invariant checker:
   every open job's tid/participant counters must stay inside their
   envelopes whatever interleaving the scheduler forced. *)
let check t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  if Atomic.get t.active_jobs < 0 then
    err "active_jobs negative: %d" (Atomic.get t.active_jobs);
  Aeq_race.Lock.with_ t.lock (fun () ->
      Aeq_race.read ~site:"pool.check" t.jobs_loc;
      List.iter
        (fun j ->
          Aeq_race.read ~site:"pool.check" j.j_loc;
          if j.active < 0 then
            err "job has negative participant count %d" j.active;
          if j.next_tid < 1 || j.next_tid > j.max_tids then
            err "job next_tid=%d outside [1,%d]" j.next_tid j.max_tids;
          if j.active > j.next_tid then
            err "job active=%d exceeds claimed tids=%d" j.active j.next_tid)
        t.jobs;
      if List.length t.jobs > Atomic.get t.active_jobs then
        err "%d open jobs but active_jobs=%d" (List.length t.jobs)
          (Atomic.get t.active_jobs));
  List.rev !errs

let shutdown t =
  if Atomic.compare_and_set t.closed false true then begin
    Aeq_race.Lock.with_ t.lock (fun () ->
        Aeq_race.write ~site:"pool.shutdown" t.jobs_loc;
        t.stop <- true;
        Condition.broadcast t.work);
    Array.iter Supervisor.stop t.supervisors;
    Array.iter (fun d -> Aeq_race.join d) t.domains;
    Array.iter Supervisor.join t.supervisors
  end

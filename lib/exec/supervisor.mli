(** Domain supervision: exception barriers, crash reclaim, and
    self-healing restarts for the engine's long-lived domains.

    Every critical domain — scheduler dispatchers, the watchdog, pool
    workers — runs its loop under a supervisor. An unstructured
    exception escaping the loop (a bug; injected in tests by the
    [Crash] failpoint action) used to kill the domain silently and
    hang every client depending on it. Under supervision the crash is:

    - {b contained}: the barrier catches anything the body throws;
    - {b recorded}: an obs counter per domain plus an entry in the
      process-wide bounded {!crash_log} (what died, on which
      exception, what the supervisor did);
    - {b reclaimed}: the owner's [on_crash] hook completes the crashed
      dispatcher's in-flight ticket with
      [Query_error.Worker_crashed], removes it from the running set,
      fixes pool participant accounting so job barriers still drain,
      and clears single-flight prepare claims — crash-specific state
      the unwind alone cannot restore (arena leases and held mutexes
      are already released by [Fun.protect] on the way up);
    - {b restarted}: the same domain re-enters the body after an
      exponential backoff, under a sliding-window restart budget.

    Exhausting the budget (a crash loop) flips the supervisor to
    {!Failed} and fires [on_give_up]; the owner degrades (surfaced
    through [Engine.health]) instead of restarting forever.

    The supervisor transitions are yield points
    (["supervisor.crash"], ["supervisor.backoff"],
    ["supervisor.restart"]), so crash interleavings replay
    deterministically under [Aeq_sim] — sim tasks use {!run} to keep
    the supervised loop on the simulator's scheduler instead of
    spawning a real domain. *)

type policy = {
  max_restarts : int;
      (** crashes tolerated within [window_seconds] before giving up;
          the (n+1)-th flips to [Failed] *)
  window_seconds : float;  (** sliding budget window *)
  backoff_base : float;
      (** pause before the first restart, seconds; doubles per
          consecutive crash in the window *)
  backoff_max : float;  (** backoff growth cap, seconds *)
}

val default_policy : policy
(** 8 restarts / 10 s window, 2 ms base backoff capped at 250 ms. *)

type state =
  | Running  (** body in (or entering) its loop *)
  | Backing_off  (** crashed; pausing before the restart *)
  | Failed  (** restart budget exhausted; body will not run again *)
  | Stopped  (** body returned normally, or {!stop} was honored *)

val state_name : state -> string

type crash_action = Restarted | Gave_up

type crash = {
  cr_at : float;  (** [Clock.now] at the catch *)
  cr_domain : string;  (** supervisor name *)
  cr_exn : string;  (** printed exception *)
  cr_restarts : int;  (** restarts this supervisor has consumed *)
  cr_action : crash_action;
}

type t

val create :
  ?policy:policy ->
  name:string ->
  ?on_crash:(exn -> unit) ->
  ?on_give_up:(exn -> unit) ->
  (unit -> unit) ->
  t
(** Wrap [body] for supervision without starting anything. [body] must
    return normally when its owner's stop condition is set — that is
    how {!stop} + owner-shutdown terminates the loop. [on_crash] runs
    in the crashed domain after the stack has unwound (so it may take
    the owner's locks) on every catch; [on_give_up] runs once if the
    budget is exhausted. Exceptions from either hook are swallowed —
    reclaim must not kill the supervisor.
    @raise Invalid_argument on a malformed [policy]. *)

val start : t -> unit
(** Spawn the supervised domain.
    @raise Invalid_argument if already started. *)

val run : t -> unit
(** Execute the supervised loop inline in the calling domain — for
    simulator tasks (no untracked domains) and tests. Returns when the
    body exits normally, {!stop} is honored, or the budget is
    exhausted. *)

val spawn :
  ?policy:policy ->
  name:string ->
  ?on_crash:(exn -> unit) ->
  ?on_give_up:(exn -> unit) ->
  (unit -> unit) ->
  t
(** {!create} + {!start}. *)

val stop : t -> unit
(** Forbid further restarts and cut any in-progress backoff short.
    Does not interrupt a running body — the owner's own stop flag
    makes the body return — and does not join; call {!join} after. *)

val join : t -> unit
(** Join the supervised domain (no-op for never-started / inline
    supervisors) and release the backoff waiter. Call after {!stop}
    once the body's stop condition is set. *)

val state : t -> state

val name : t -> string

val crashes : t -> int
(** Crashes caught by this supervisor's barrier (monotone). *)

val restarts : t -> int
(** Restarts performed (crashes minus give-up/stop terminations). *)

val health_reason : t -> string option
(** [None] while healthy ([Running]/[Stopped]); a human-readable
    degradation reason while [Backing_off] or [Failed] — what
    [Engine.health] aggregates into [Degraded]. *)

(** {1 Crash log}

    A process-wide bounded ring (capacity 256) of every supervised
    crash, newest first — the post-mortem timeline. *)

val crash_log : unit -> crash list

val crash_log_dropped : unit -> int
(** Entries overwritten since the last {!clear_crash_log}. *)

val clear_crash_log : unit -> unit

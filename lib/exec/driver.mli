(** End-to-end query execution: the queryStart role of the paper's
    Fig. 4, in OCaml (it runs once per query and never pays off to
    compile).

    Sets up the runtime context and objects, generates and translates
    the pipeline workers, then runs each pipeline with morsel-driven
    parallelism. In [Adaptive] mode every pipeline starts in the
    bytecode interpreter on all threads; after each morsel the
    controller may decide to compile, in which case the deciding
    thread compiles (its lane shows a 'C' burst in the trace) while
    the others keep interpreting, and all threads pick up the new
    variant on their next morsel. Static modes compile every pipeline
    up front, single-threaded, exactly like a classical compiling
    engine.

    Execution is split into {!prepare} (codegen + bytecode
    translation, once per plan) and {!execute_prepared} (everything
    per-execution). A {!prepared} value is a prepared statement: its
    compiled artifacts — bytecode programs and any machine-code
    variants promoted during earlier executions — survive, so repeated
    executions pay no codegen, translation or recompilation cost.
    {!execute} composes the two for one-shot use. *)

type mode = Bytecode | Unopt | Opt | Adaptive

val mode_name : mode -> string

type stats = {
  codegen_seconds : float;
      (** IR generation; 0 on prepared re-executions (already paid) *)
  bc_seconds : float;
      (** bytecode translation, all pipelines; 0 on prepared re-executions *)
  compile_seconds : float;
      (** machine-code compilation paid {e this} execution (incl.
          adaptive); promoting to a variant cached by an earlier
          execution costs 0 *)
  exec_seconds : float;  (** pipeline execution wall time *)
  total_seconds : float;
  rows_out : int;
  final_modes : string list;  (** execution mode of each pipeline at completion *)
  prepared_reuse : bool;
      (** this run reused a previously-executed prepared statement *)
  compile_failures : int;
      (** promotions that failed and degraded this execution (static
          installs, warm starts, and adaptive upgrades); each one
          blacklisted its mode *)
}

type result = {
  names : string list;
  dtypes : Aeq_storage.Dtype.t list;
  rows : int64 array list;  (** ordered, limited *)
  stats : stats;
  trace : Trace.t option;
  final_cm_modes : Aeq_backend.Cost_model.mode list;
      (** machine-readable variant of [stats.final_modes], usable as
          the next execution's [initial_modes] *)
}

type prepared
(** A compiled plan: worker IR, translated bytecode, and promoted
    machine-code variants. Re-executable any number of times,
    including concurrently with itself — each execution builds its own
    runtime context over a private arena lease, and the compiled
    artifacts resolve runtime objects through the domain-current
    context rather than a baked-in one. *)

val prepare :
  ?cost_model:Aeq_backend.Cost_model.t ->
  Aeq_storage.Catalog.t ->
  Aeq_plan.Physical.t ->
  n_threads:int ->
  prepared
(** Generate and bytecode-translate every pipeline worker.
    [n_threads] is the widest pool the statement may later execute
    on. *)

val execute_prepared :
  ?collect_trace:bool ->
  ?initial_modes:Aeq_backend.Cost_model.mode list ->
  ?timeout_seconds:float ->
  ?cancel:Cancel.t ->
  ?memory_budget_bytes:int ->
  ?on_compile_failure:[ `Degrade | `Fail ] ->
  prepared ->
  mode:mode ->
  pool:Pool.t ->
  result
(** Execute a prepared statement. Each execution is self-contained: a
    scratch arena lease, a fresh runtime context, and per-execution
    handle bindings, so concurrent executions (of this or other
    statements) share only immutable state. Static modes install
    their variant first, reusing cached compilations; adaptive
    executions can warm-start from [initial_modes].

    Guardrails (all cooperative, checked at morsel boundaries):
    - [timeout_seconds] bounds the execution's wall time;
    - [cancel] is a token any thread may {!Cancel.cancel};
    - [memory_budget_bytes] bounds the arena scratch this execution
      may allocate;
    - [on_compile_failure] (default [`Degrade]) chooses what a failed
      static compilation does: degrade to the pipeline's current mode
      or fail the query with [Compile_failed]. Adaptive mid-query
      upgrades and warm starts always degrade. Either way the failed
      mode is blacklisted on the handle and never attempted again.

    On any failure the query raises [Query_error.Error] {e after}
    cleanup: the first worker error stops the remaining domains at
    their next morsel boundary, the scratch lease is released back to
    the arena, and the prepared statement stays reusable — concurrent
    and future executions (of this or any other statement) are
    unaffected.

    The execution runs at [min (Pool.n_threads pool) n_threads]
    workers, where [n_threads] is the width the statement was
    prepared with.

    @raise Query_error.Error on trap / timeout / cancellation /
    budget breach / non-degraded compile failure. *)

val prepared_executions : prepared -> int
(** How many times the statement has executed. *)

val prepared_modes : prepared -> Aeq_backend.Cost_model.mode list
(** Best cached variant of each pipeline (what the next execution can
    start in for free). *)

val execute :
  ?cost_model:Aeq_backend.Cost_model.t ->
  ?collect_trace:bool ->
  ?initial_modes:Aeq_backend.Cost_model.mode list ->
  ?timeout_seconds:float ->
  ?cancel:Cancel.t ->
  ?memory_budget_bytes:int ->
  ?on_compile_failure:[ `Degrade | `Fail ] ->
  Aeq_storage.Catalog.t ->
  Aeq_plan.Physical.t ->
  mode:mode ->
  pool:Pool.t ->
  result
(** [prepare] + [execute_prepared]: plan-to-rows in one call, nothing
    cached afterwards. Query scratch memory is released (the arena
    lease returns to the free pool) before returning; result rows are
    decoded into OCaml arrays first.

    [initial_modes] (adaptive mode only) pre-compiles the listed
    pipelines before execution starts — the plan-caching extension of
    the paper's Section VI: when a cached query's pipeline ended in a
    compiled mode last time, later executions start there instead of
    re-learning. *)

val row_to_strings : Aeq_storage.Catalog.t -> Aeq_storage.Dtype.t list -> int64 array -> string list
(** Render one result row (decimal scaling, date and dictionary
    decoding). *)

(** The structured error taxonomy of query execution.

    Everything that can go wrong while a query runs surfaces as one
    [Error] carrying a {!t}; the engine guarantees cleanup (arena
    scratch released, prepared statement reusable, worker pool
    healthy) before the exception reaches the caller, so the next
    query runs unaffected. *)

type t =
  | Trap of string
      (** a runtime trap from query code: division by zero, overflow,
          abort, or an injected fault *)
  | Compile_failed of Aeq_backend.Cost_model.mode * string
      (** a statically-requested compilation failed and degradation
          was disabled ([`Fail]); the detail string carries the
          underlying failure *)
  | Timeout of float
      (** the [~timeout_seconds] deadline passed (payload: the
          allowance) *)
  | Cancelled  (** the query's {!Cancel.t} token was cancelled *)
  | Memory_budget_exceeded of { budget_bytes : int; used_bytes : int }
      (** per-query arena scratch exceeded [~memory_budget_bytes] *)
  | Overloaded of { queue_depth : int; capacity : int }
      (** the scheduler's bounded admission queue was full and nothing
          lower-priority could be shed; submitted work is rejected
          immediately instead of queueing unboundedly *)
  | Rejected of string
      (** the scheduler refused or abandoned the query before it
          produced a result: shed under overload, deadline expired
          while still queued, the scheduler was draining, or it was
          shut down *)
  | Worker_crashed of { domain : string; detail : string }
      (** the serving domain (dispatcher or pool worker) holding this
          query died on an unstructured exception; the supervisor
          reclaimed the query's state and restarted the domain.
          [domain] names the casualty, [detail] carries the printed
          exception. Classified {!transient}: the crash says nothing
          about the query, so retrying it is sound. *)

exception Error of t

val to_string : t -> string

val raise_error : t -> 'a

val transient : t -> bool
(** Is the failure worth retrying? [Trap]s carrying an injected fault
    (the chaos-testing stand-in for transient infrastructure failures)
    and [Worker_crashed] (the domain died, not the query) are
    transient; deterministic query errors — real traps, compile
    failures, timeouts, cancellations, budget breaches, scheduler
    rejections — are not. The scheduler retries transient failures
    with backoff, bounded by the query's deadline. *)

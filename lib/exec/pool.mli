(** Persistent worker pool over OCaml domains.

    One pool lives for the engine's lifetime; each pipeline execution
    submits a job that every worker runs (with its thread id) and
    barriers on completion. Thread 0 is the caller's thread, so a
    1-thread pool runs entirely inline. *)

type t

val create : n_threads:int -> t

val n_threads : t -> int

val run : t -> (tid:int -> unit) -> unit
(** Execute [job ~tid] on every worker concurrently (the caller runs
    tid 0); returns when all are done. Exceptions raised by workers
    are re-raised in the caller (first one wins).
    @raise Invalid_argument if the pool has been {!shutdown} (instead
    of deadlocking on dead workers). *)

val closed : t -> bool

val busy : t -> bool
(** A job is currently executing (between {!run} entry and its
    barrier). A monitoring gauge — racy by nature, do not synchronise
    on it. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. *)

(** Multi-tenant worker pool over OCaml domains.

    One pool lives for the engine's lifetime. Each pipeline execution
    submits a job; worker domains join open jobs — least-staffed
    first, so domains spread across concurrent queries — claim a
    thread id, and run the job function until its morsel supply is
    exhausted. The submitting caller always participates as tid 0, so
    a query progresses even when all workers are busy elsewhere, and a
    1-thread pool runs entirely inline. Unlike the old single-tenant
    barrier pool, several queries' pipelines execute concurrently.

    Workers are supervised (see {!Supervisor}): an unstructured
    exception escaping a job function — a crash — is contained by the
    worker's barrier, the crashed participant's job accounting is
    repaired (so the submitting caller's drain barrier still wakes,
    with the crash surfaced as {!Query_error.Worker_crashed}), and the
    worker domain restarts under a backoff budget. *)

type t

val create :
  ?supervised:bool ->
  ?restart_policy:Supervisor.policy ->
  n_threads:int ->
  unit ->
  t
(** [supervised] defaults to [true]. [false] reverts to bare worker
    domains — for the supervision-overhead benchmark only; a crashed
    worker then stays dead and its job hangs. [restart_policy]
    defaults to {!Supervisor.default_policy}. *)

val n_threads : t -> int

val run : ?max_tids:int -> t -> (tid:int -> unit) -> unit
(** Execute a job: the caller runs [fn ~tid:0]; idle workers join with
    distinct tids [1..max_tids-1] (default [n_threads], clamped to
    it). [fn] must return when it cannot obtain more work — a morsel
    loop over a shared atomic cursor. Returns when the caller's run
    and every joined worker's run have finished. Exceptions raised by
    participants are re-raised in the caller (first one wins).

    Workers may join at any point while the caller is still running;
    after the caller's [fn] returns no new workers join, but the call
    blocks until those already in flight drain.

    If a worker serving this job crashes, the supervisor's reclaim
    records [Query_error.Error (Worker_crashed _)] as the job error —
    re-raised here (the error is transient, so scheduler-managed
    queries retry it). A crash in the caller's own participation (tid
    0) still runs the close-out — the job leaves the open list and the
    barrier drains — and then propagates to the caller's supervisor.
    @raise Invalid_argument if the pool has been {!shutdown}. *)

val closed : t -> bool

val busy : t -> bool
(** At least one job is in flight. A monitoring gauge — racy by
    nature, do not synchronise on it. *)

val active_jobs : t -> int
(** Number of jobs currently in flight (submitted, not yet drained). *)

val check : t -> string list
(** Cross-check per-job participant accounting (claimed tids vs
    active participants vs the in-flight job counter). Empty =
    coherent. Run by the deterministic simulator's invariant checker
    at yield points. Takes the pool lock. *)

val health_reasons : t -> string list
(** One reason per supervised worker currently crashed-and-backing-off
    or failed. Empty = all workers healthy (or pool unsupervised). *)

val supervisors : t -> Supervisor.t list
(** Worker supervisors, for tests and introspection. Empty when
    [supervised = false]. *)

val shutdown : t -> unit
(** Stop and join the worker domains (and their supervisors).
    Idempotent. *)

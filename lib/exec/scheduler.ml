module Clock = Aeq_util.Clock
module Prng = Aeq_util.Prng
module QE = Query_error
module Obs = Aeq_obs

(* Event counters mirrored into the metrics registry. Registration is
   get-or-create and these fire at most once per query, so the lookup
   cost is irrelevant; the registry mutex is a leaf lock, safe to take
   under [t.lock]. *)
let obs_bump name ~help =
  if Obs.Control.enabled () then
    Obs.Metrics.inc (Obs.Metrics.counter ("aeq_scheduler_" ^ name ^ "_total") ~help)

(* Guarded-by declarations for the race detector. [t.lock] covers four
   logical locations so reports say *what* raced, not just "scheduler
   state": the admission queues, the counters, the in-flight set, and
   the circuit breaker. Each ticket's mutable fields are their own
   location under that ticket's lock. *)
let () =
  Aeq_race.declare "sched.queues" (Aeq_race.Lock "sched.lock");
  Aeq_race.declare "sched.counters" (Aeq_race.Lock "sched.lock");
  Aeq_race.declare "sched.running" (Aeq_race.Lock "sched.lock");
  Aeq_race.declare "sched.breaker" (Aeq_race.Lock "sched.lock");
  Aeq_race.declare "sched.ticket" (Aeq_race.Lock "sched.ticket.lock")

type priority = Low | Normal | High

let priority_name = function Low -> "low" | Normal -> "normal" | High -> "high"

(* dispatch order: highest class first, FIFO within a class *)
let queue_index = function High -> 0 | Normal -> 1 | Low -> 2

type config = {
  dispatchers : int; (* dispatcher domains = queries concurrently in flight *)
  queue_capacity : int;
  shed_queue_depth : int;
  shed_resident_bytes : int option;
  deadline_grace : float;
  breaker_threshold : int;
  breaker_window : float;
  breaker_cooldown : float;
  breaker_cooldown_max : float;
  max_retries : int;
  retry_backoff : float;
  watchdog_period : float;
  seed : int64;
  supervised : bool;
  restart_policy : Supervisor.policy;
}

let default_config =
  {
    dispatchers = 1;
    queue_capacity = 64;
    shed_queue_depth = 48;
    shed_resident_bytes = None;
    deadline_grace = 0.25;
    breaker_threshold = 5;
    breaker_window = 30.0;
    breaker_cooldown = 0.5;
    breaker_cooldown_max = 30.0;
    max_retries = 2;
    retry_backoff = 0.01;
    watchdog_period = 0.005;
    seed = 0x5CEDC0FFEEL;
    supervised = true;
    restart_policy = Supervisor.default_policy;
  }

type outcome = (Driver.result, QE.t) result

type state = Queued | Running | Done of outcome

type ticket = {
  tk_id : int;
  tk_sql : string;
  tk_mode : Driver.mode;
  tk_priority : priority;
  tk_deadline_seconds : float option;
  tk_deadline : float option; (* absolute, against Clock.now *)
  tk_submitted : float;
  tk_cancel : Cancel.t;
  tk_lock : Aeq_race.Lock.t;
  tk_cond : Condition.t;
  tk_loc : Aeq_race.location;
  mutable tk_state : state;
  mutable tk_started : float; (* -1. until dispatched *)
  mutable tk_watchdog_fired : bool;
  mutable tk_degraded : bool;
  mutable tk_retries : int;
}

type breaker_state = Closed | Open | Half_open

let breaker_state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type stats = {
  admitted : int;
  rejected : int;
  shed : int;
  expired : int;
  retried : int;
  in_flight : int;
  completed : int;
  failed : int;
  degraded : int;
  watchdog_cancels : int;
  breaker_trips : int;
  breaker_state : breaker_state;
  queue_depth : int;
  max_queue_depth : int;
  avg_wait_seconds : float;
  max_wait_seconds : float;
  crashed_tickets : int;
  domain_crashes : int;
  domain_restarts : int;
}

let zero_stats =
  {
    admitted = 0;
    rejected = 0;
    shed = 0;
    expired = 0;
    retried = 0;
    in_flight = 0;
    completed = 0;
    failed = 0;
    degraded = 0;
    watchdog_cancels = 0;
    breaker_trips = 0;
    breaker_state = Closed;
    queue_depth = 0;
    max_queue_depth = 0;
    avg_wait_seconds = 0.0;
    max_wait_seconds = 0.0;
    crashed_tickets = 0;
    domain_crashes = 0;
    domain_restarts = 0;
  }

(* Lock order, everywhere: [t.lock] before [tk_lock], never the
   reverse. [await] and the ticket accessors take only [tk_lock]. *)
type t = {
  cfg : config;
  exec : mode:Driver.mode -> cancel:Cancel.t -> string -> Driver.result;
  arena : Aeq_mem.Arena.t option;
  lock : Aeq_race.Lock.t;
  work : Condition.t; (* signalled on admit and on shutdown *)
  queues_loc : Aeq_race.location;
  counters_loc : Aeq_race.location;
  running_loc : Aeq_race.location;
  breaker_loc : Aeq_race.location;
  queues : ticket Queue.t array; (* [High; Normal; Low] *)
  ids : int Atomic.t;
  prng : Prng.t; (* jitter; drawn under [lock] *)
  mutable queued : int; (* live (state Queued) tickets across queues *)
  mutable stopped : bool;
  mutable draining : bool; (* admission closed; in-flight may finish *)
  running_tks : (int, ticket) Hashtbl.t;
      (* in-flight tickets by id — what the watchdog supervises; with
         several dispatchers there are up to [cfg.dispatchers] at once *)
  current : ticket option array;
      (* per-dispatcher serving slot, written under [lock]: what the
         supervisor reclaims (completes as [Worker_crashed]) if that
         dispatcher's domain crashes mid-serve *)
  on_domain_crash : name:string -> exn -> unit;
  mutable failed_dispatchers : int; (* dispatchers whose supervisor gave up *)
  (* circuit breaker *)
  mutable brk : breaker_state;
  mutable brk_until : float; (* Open: earliest half-open probe *)
  mutable brk_consecutive : int; (* consecutive opens, drives backoff *)
  mutable probe : int option; (* ticket id of the in-flight half-open probe *)
  failures : float Queue.t; (* compile-failure timestamps, sliding window *)
  (* counters *)
  mutable n_admitted : int;
  mutable n_rejected : int;
  mutable n_shed : int;
  mutable n_expired : int;
  mutable n_retried : int;
  mutable n_completed : int;
  mutable n_failed : int;
  mutable n_degraded : int;
  mutable n_watchdog_cancels : int;
  mutable n_breaker_trips : int;
  mutable n_crashed_tickets : int;
  mutable max_depth : int;
  mutable total_wait : float;
  mutable n_waits : int;
  mutable max_wait : float;
  wd_waiter : Aeq_util.Waiter.t; (* watchdog inter-sweep sleep; woken on shutdown *)
  retry_waiters : Aeq_util.Waiter.t array;
      (* per-dispatcher retry backoff sleep; all woken on shutdown so a
         retrying dispatcher never stalls close by a full backoff *)
  quiet_waiter : Aeq_util.Waiter.t;
      (* poked whenever in-flight work finishes; [drain] sleeps on it *)
  mutable domains : unit Domain.t list; (* unsupervised mode *)
  mutable supervisors : Supervisor.t list; (* supervised mode *)
}

let with_lock m f = Aeq_race.Lock.with_ m f

(* ---- ticket helpers -------------------------------------------------- *)

let is_done tk =
  with_lock tk.tk_lock (fun () ->
      Aeq_race.read ~site:"sched.is_done" tk.tk_loc;
      match tk.tk_state with Done _ -> true | Queued | Running -> false)

let complete tk outcome =
  with_lock tk.tk_lock (fun () ->
      Aeq_race.write ~site:"sched.complete" tk.tk_loc;
      match tk.tk_state with
      | Done _ -> () (* first completion wins *)
      | Queued | Running ->
        tk.tk_state <- Done outcome;
        Condition.broadcast tk.tk_cond)

let await tk =
  with_lock tk.tk_lock (fun () ->
      let rec wait () =
        Aeq_race.read ~site:"sched.await" tk.tk_loc;
        match tk.tk_state with
        | Done o -> o
        | Queued | Running ->
          Aeq_race.Lock.wait tk.tk_cond tk.tk_lock;
          wait ()
      in
      wait ())

let poll tk =
  with_lock tk.tk_lock (fun () ->
      Aeq_race.read ~site:"sched.poll" tk.tk_loc;
      match tk.tk_state with Done o -> Some o | Queued | Running -> None)

let cancel tk = Cancel.cancel tk.tk_cancel

let wait_seconds tk =
  with_lock tk.tk_lock (fun () ->
      Aeq_race.read ~site:"sched.wait_seconds" tk.tk_loc;
      if tk.tk_started < 0.0 then -1.0 else tk.tk_started -. tk.tk_submitted)

let was_degraded tk =
  with_lock tk.tk_lock (fun () ->
      Aeq_race.read ~site:"sched.was_degraded" tk.tk_loc;
      tk.tk_degraded)

let retries tk =
  with_lock tk.tk_lock (fun () ->
      Aeq_race.read ~site:"sched.retries" tk.tk_loc;
      tk.tk_retries)

(* ---- circuit breaker (all under t.lock) ------------------------------ *)

let breaker_trip t now =
  Aeq_race.write ~site:"sched.breaker_trip" t.breaker_loc;
  t.brk <- Open;
  t.probe <- None;
  t.n_breaker_trips <- t.n_breaker_trips + 1;
  obs_bump "breaker_trips" ~help:"Circuit-breaker transitions to open.";
  let cap =
    Stdlib.min t.cfg.breaker_cooldown_max
      (t.cfg.breaker_cooldown *. (2.0 ** float_of_int t.brk_consecutive))
  in
  t.brk_consecutive <- t.brk_consecutive + 1;
  (* full jitter, floored at 10% of the cap so an open breaker is
     observably open (a zero-length cooldown would probe instantly) *)
  t.brk_until <- now +. (0.1 *. cap) +. Prng.float t.prng (0.9 *. cap)

(* May a query dispatched now spend compile budget? Promotes Open →
   Half_open (electing this ticket as the probe) once the cooldown has
   passed. *)
let breaker_allow t tk_id now =
  Aeq_race.write ~site:"sched.breaker_allow" t.breaker_loc;
  match t.brk with
  | Closed -> true
  | Half_open -> false (* a probe is already in flight *)
  | Open ->
    if now >= t.brk_until then begin
      t.brk <- Half_open;
      t.probe <- Some tk_id;
      true
    end
    else false

(* Digest one served query into the breaker. [n_cf] is the number of
   compile failures its attempts reported (degradations from Ok
   results and Compile_failed errors alike — the attempt loop already
   counted both). *)
let breaker_feed t tk outcome n_cf =
  Aeq_race.write ~site:"sched.breaker_feed" t.breaker_loc;
  let now = Clock.now () in
  if t.probe = Some tk.tk_id then begin
    t.probe <- None;
    let probe_ok = match outcome with Ok _ -> n_cf = 0 | Error _ -> false in
    if probe_ok then begin
      t.brk <- Closed;
      t.brk_consecutive <- 0;
      Queue.clear t.failures
    end
    else breaker_trip t now (* re-open, cooldown doubled *)
  end
  else if t.brk = Closed && n_cf > 0 then begin
    for _ = 1 to n_cf do
      Queue.push now t.failures
    done;
    while
      (not (Queue.is_empty t.failures))
      && Queue.peek t.failures < now -. t.cfg.breaker_window
    do
      ignore (Queue.pop t.failures)
    done;
    if Queue.length t.failures >= t.cfg.breaker_threshold then breaker_trip t now
  end

(* ---- execution with retry -------------------------------------------- *)

(* Runs outside t.lock (takes it briefly for jitter draws and retry
   accounting). Returns the outcome plus the compile failures seen
   across attempts, for the breaker. *)
let attempt_loop t rw tk eff_mode =
  let rec go attempt cf_acc =
    match t.exec ~mode:eff_mode ~cancel:tk.tk_cancel tk.tk_sql with
    | r -> (Ok r, cf_acc + r.Driver.stats.Driver.compile_failures)
    | exception e when Aeq_util.Failpoints.is_crash e ->
      (* an injected domain kill must stay lethal: let it unwind out of
         the dispatcher so the supervisor path (reclaim + restart) is
         what answers the client, not this conversion layer *)
      raise e
    | exception QE.Error e ->
      let watchdogged =
        with_lock tk.tk_lock (fun () ->
            Aeq_race.read ~site:"sched.retry" tk.tk_loc;
            tk.tk_watchdog_fired)
      in
      if e = QE.Cancelled && watchdogged then
        (* the watchdog killed it for blowing its deadline: surface the
           reason, not the mechanism *)
        (Error (QE.Timeout (Option.value tk.tk_deadline_seconds ~default:0.0)), cf_acc)
      else begin
        let cf_acc = cf_acc + (match e with QE.Compile_failed _ -> 1 | _ -> 0) in
        let backoff_cap = t.cfg.retry_backoff *. (2.0 ** float_of_int attempt) in
        let deadline_allows =
          match tk.tk_deadline with
          | None -> true
          | Some d -> Clock.now () +. backoff_cap < d
        in
        if
          QE.transient e
          && attempt < t.cfg.max_retries
          && deadline_allows
          && not (Cancel.cancelled tk.tk_cancel)
        then begin
          let jitter =
            with_lock t.lock (fun () ->
                Aeq_race.write ~site:"sched.retry" t.counters_loc;
                t.n_retried <- t.n_retried + 1;
                obs_bump "retried" ~help:"Transient-failure retry attempts.";
                Prng.float t.prng backoff_cap)
          in
          with_lock tk.tk_lock (fun () ->
              Aeq_race.write ~site:"sched.retry" tk.tk_loc;
              tk.tk_retries <- tk.tk_retries + 1);
          (* interruptible backoff: a plain sleep here would hold the
             dispatcher hostage through shutdown for a full backoff *)
          ignore (Aeq_util.Waiter.wait rw jitter);
          go (attempt + 1) cf_acc
        end
        else (Error e, cf_acc)
      end
    | exception e ->
      (* the engine's exec contract is Query_error-only; anything else
         is a bug we still turn into a structured response *)
      (Error (QE.Trap (Printexc.to_string e)), cf_acc)
  in
  go 0 0

(* ---- dispatcher ------------------------------------------------------ *)

(* under t.lock: oldest live ticket of the highest non-empty class *)
let pop_live t =
  let rec from_queue q =
    match Queue.take_opt q with
    | None -> None
    | Some tk -> if is_done tk then from_queue q else Some tk
  in
  let rec scan i = if i >= 3 then None else
      match from_queue t.queues.(i) with Some tk -> Some tk | None -> scan (i + 1)
  in
  scan 0

(* Serve one ticket on dispatcher [di]. Called and returns with t.lock
   NOT held; every critical section inside is [Fun.protect]ed
   ([with_lock]) so no exception — injected crash included — can
   abandon the scheduler mutex. While the query executes, the ticket
   sits in [t.current.(di)]: the dispatcher's supervisor completes it
   with [Worker_crashed] if this domain dies before [finish]. *)
let serve t di tk =
  let decision =
    with_lock t.lock (fun () ->
        Aeq_race.write ~site:"sched.serve" t.counters_loc;
        Aeq_race.write ~site:"sched.serve" t.running_loc;
        let now = Clock.now () in
        match tk.tk_deadline with
        | Some d when now > d ->
          (* expired while queued (between watchdog sweeps) *)
          t.n_expired <- t.n_expired + 1;
          obs_bump "expired" ~help:"Queries whose deadline passed while queued.";
          None
        | _ ->
          let wait = now -. tk.tk_submitted in
          t.total_wait <- t.total_wait +. wait;
          t.n_waits <- t.n_waits + 1;
          if wait > t.max_wait then t.max_wait <- wait;
          (* overload & breaker decide how much this query may spend *)
          let wants_compile = tk.tk_mode <> Driver.Bytecode in
          let overloaded =
            t.queued > t.cfg.shed_queue_depth
            || (match (t.cfg.shed_resident_bytes, t.arena) with
               | Some b, Some a -> Aeq_mem.Arena.resident_bytes a > b
               | _ -> false)
            (* near the scratch cap, compiling (and its scratch spike)
               is the wrong thing to spend memory on: degrade to
               bytecode until backpressure drains *)
            || (match t.arena with
               | Some a -> Aeq_mem.Arena.scratch_under_pressure a
               | None -> false)
          in
          let compile_allowed =
            (not wants_compile)
            || ((not overloaded) && breaker_allow t tk.tk_id now)
          in
          let eff_mode = if compile_allowed then tk.tk_mode else Driver.Bytecode in
          if eff_mode <> tk.tk_mode then begin
            t.n_degraded <- t.n_degraded + 1;
            obs_bump "degraded" ~help:"Executions forced to bytecode-only."
          end;
          Hashtbl.replace t.running_tks tk.tk_id tk;
          t.current.(di) <- Some tk;
          Some eff_mode)
  in
  match decision with
  | None -> complete tk (Error (QE.Rejected "deadline expired in admission queue"))
  | Some eff_mode ->
    (* the ticket is now reclaimable: a crash from here on is the
       supervisor's to answer. The dispatch site sits exactly in that
       window so the [Crash] action exercises the reclaim path. *)
    Aeq_util.Failpoints.hit "sched.dispatch";
    Aeq_util.Yieldpoint.yield "sched.dispatch";
    with_lock tk.tk_lock (fun () ->
        Aeq_race.write ~site:"sched.dispatch" tk.tk_loc;
        tk.tk_state <- Running;
        tk.tk_started <- Clock.now ();
        tk.tk_degraded <- eff_mode <> tk.tk_mode);
    let outcome, n_cf =
      if Cancel.cancelled tk.tk_cancel then (Error QE.Cancelled, 0)
      else attempt_loop t t.retry_waiters.(di) tk eff_mode
    in
    with_lock t.lock (fun () ->
        Aeq_race.write ~site:"sched.finish" t.counters_loc;
        Aeq_race.write ~site:"sched.finish" t.running_loc;
        t.current.(di) <- None;
        Hashtbl.remove t.running_tks tk.tk_id;
        breaker_feed t tk outcome n_cf;
        match outcome with
        | Ok _ ->
          t.n_completed <- t.n_completed + 1;
          obs_bump "completed" ~help:"Queries finished with rows."
        | Error _ ->
          t.n_failed <- t.n_failed + 1;
          obs_bump "failed" ~help:"Queries finished with a structured error.");
    complete tk outcome;
    Aeq_util.Waiter.wake t.quiet_waiter

(* under t.lock: answer every still-queued client now, not a hang *)
let reject_queued t reason =
  Aeq_race.write ~site:"sched.reject_queued" t.queues_loc;
  Aeq_race.write ~site:"sched.reject_queued" t.counters_loc;
  Array.iter
    (fun q ->
      Queue.iter
        (fun tk ->
          if not (is_done tk) then begin
            t.n_rejected <- t.n_rejected + 1;
            obs_bump "rejected" ~help:"Queries refused at submission or shutdown.";
            complete tk (Error (QE.Rejected reason))
          end)
        q;
      Queue.clear q)
    t.queues;
  t.queued <- 0

(* Marks dispatcher domains so the engine's drain admission gate can
   tell a dispatcher-driven [exec] call (already-admitted work that
   must run to completion) from a fresh direct client. Sticky per
   domain — dispatchers are dedicated, and in-domain supervised
   restarts keep the identity. *)
let dispatcher_here : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let executing_here () = !(Domain.DLS.get dispatcher_here)

let dispatcher_loop t di () =
  Domain.DLS.get dispatcher_here := true;
  let running = ref true in
  while !running do
    let next =
      with_lock t.lock (fun () ->
          let rec get () =
            Aeq_race.write ~site:"sched.pop" t.queues_loc;
            if t.stopped then begin
              (* fail-fast drain: pending clients get a structured
                 answer now *)
              reject_queued t "scheduler is shut down";
              None
            end
            else if t.queued > 0 then begin
              match pop_live t with
              | Some tk ->
                t.queued <- t.queued - 1;
                Some tk
              | None ->
                t.queued <- 0;
                (* counter drift guard; unreachable *)
                get ()
            end
            else begin
              Aeq_race.Lock.wait t.work t.lock;
              get ()
            end
          in
          get ())
    in
    match next with
    | Some tk -> serve t di tk
    | None -> running := false
  done

(* ---- watchdog -------------------------------------------------------- *)

let watchdog_loop t () =
  let running = ref true in
  while !running do
    (* interruptible inter-sweep sleep: shutdown wakes the waiter, so
       closing the scheduler never stalls a full watchdog period *)
    ignore (Aeq_util.Waiter.wait t.wd_waiter t.cfg.watchdog_period);
    Aeq_util.Failpoints.hit "sched.watchdog";
    Aeq_util.Yieldpoint.yield "sched.watchdog";
    with_lock t.lock (fun () ->
        Aeq_race.read ~site:"sched.watchdog" t.queues_loc;
        Aeq_race.read ~site:"sched.watchdog" t.running_loc;
        if t.stopped then running := false
        else begin
          let now = Clock.now () in
          (* in-flight queries: cancel past deadline + grace *)
          Hashtbl.iter
            (fun _ tk ->
              match tk.tk_deadline with
              | Some d when now > d +. t.cfg.deadline_grace ->
                let fresh =
                  with_lock tk.tk_lock (fun () ->
                      Aeq_race.write ~site:"sched.watchdog" tk.tk_loc;
                      let fresh = not tk.tk_watchdog_fired in
                      if fresh then tk.tk_watchdog_fired <- true;
                      fresh)
                in
                if fresh then begin
                  Cancel.cancel tk.tk_cancel;
                  Aeq_race.write ~site:"sched.watchdog" t.counters_loc;
                  t.n_watchdog_cancels <- t.n_watchdog_cancels + 1;
                  obs_bump "watchdog_cancels" ~help:"Running queries cancelled past deadline+grace."
                end
              | _ -> ())
            t.running_tks;
          (* queued queries whose deadline already passed: answer now
             instead of wasting a dispatch slot later *)
          Array.iter
            (fun q ->
              Queue.iter
                (fun tk ->
                  match tk.tk_deadline with
                  | Some d when now > d && not (is_done tk) ->
                    t.n_expired <- t.n_expired + 1;
                    obs_bump "expired" ~help:"Queries whose deadline passed while queued.";
                    t.queued <- t.queued - 1;
                    complete tk (Error (QE.Rejected "deadline expired in admission queue"))
                  | _ -> ())
                q)
            t.queues
        end)
  done

(* ---- admission ------------------------------------------------------- *)

(* under t.lock: oldest live ticket of the lowest class strictly below
   [pri], popped out of its queue *)
let shed_victim t pri =
  let candidate_queues =
    match pri with High -> [ 2; 1 ] | Normal -> [ 2 ] | Low -> []
  in
  let rec from_queue q =
    match Queue.take_opt q with
    | None -> None
    | Some tk -> if is_done tk then from_queue q else Some tk
  in
  let rec scan = function
    | [] -> None
    | qi :: rest -> (
      match from_queue t.queues.(qi) with Some tk -> Some tk | None -> scan rest)
  in
  scan candidate_queues

let submit ?(mode = Driver.Adaptive) ?(priority = Normal) ?deadline_seconds ?cancel t
    sql =
  let now = Clock.now () in
  let tk =
    {
      tk_id = Atomic.fetch_and_add t.ids 1;
      tk_sql = sql;
      tk_mode = mode;
      tk_priority = priority;
      tk_deadline_seconds = deadline_seconds;
      tk_deadline = Option.map (fun s -> now +. s) deadline_seconds;
      tk_submitted = now;
      tk_cancel = (match cancel with Some c -> c | None -> Cancel.create ());
      tk_lock = Aeq_race.Lock.create "sched.ticket.lock";
      tk_cond = Condition.create ();
      tk_loc = Aeq_race.locate "sched.ticket";
      tk_state = Queued;
      tk_started = -1.0;
      tk_watchdog_fired = false;
      tk_degraded = false;
      tk_retries = 0;
    }
  in
  let verdict =
    with_lock t.lock (fun () ->
        Aeq_race.write ~site:"sched.submit" t.queues_loc;
        Aeq_race.write ~site:"sched.submit" t.counters_loc;
        if t.stopped then `Rejected (QE.Rejected "scheduler is shut down")
        else if t.draining then begin
          (* drain closes admission first: new work is refused while
             in-flight queries run to completion *)
          t.n_rejected <- t.n_rejected + 1;
          obs_bump "rejected" ~help:"Queries refused at submission or shutdown.";
          `Rejected (QE.Rejected "draining")
        end
        else begin
          let room =
            if t.queued < t.cfg.queue_capacity then `Room None
            else
              match shed_victim t priority with
              | Some v ->
                t.n_shed <- t.n_shed + 1;
                obs_bump "shed" ~help:"Queued queries evicted to admit higher priority.";
                t.queued <- t.queued - 1;
                `Room (Some v)
              | None ->
                (* full, nothing sheddable: fail fast *)
                let depth = t.queued in
                t.n_rejected <- t.n_rejected + 1;
                obs_bump "rejected" ~help:"Queries refused at submission or shutdown.";
                `Rejected
                  (QE.Overloaded
                     { queue_depth = depth; capacity = t.cfg.queue_capacity })
          in
          match room with
          | `Rejected _ as r -> r
          | `Room victim ->
            Queue.push tk t.queues.(queue_index priority);
            t.queued <- t.queued + 1;
            t.n_admitted <- t.n_admitted + 1;
            obs_bump "admitted" ~help:"Queries accepted into the admission queue.";
            if t.queued > t.max_depth then t.max_depth <- t.queued;
            Condition.signal t.work;
            `Admitted victim
        end)
  in
  match verdict with
  | `Rejected e -> QE.raise_error e
  | `Admitted victim ->
    (match victim with
    | Some v ->
      complete v
        (Error
           (QE.Rejected
              (Printf.sprintf "shed under overload (%s priority, queue full)"
                 (priority_name v.tk_priority))))
    | None -> ());
    tk

let run ?mode ?priority ?deadline_seconds ?cancel t sql =
  match submit ?mode ?priority ?deadline_seconds ?cancel t sql with
  | tk -> await tk
  | exception QE.Error e -> Error e

(* ---- lifecycle ------------------------------------------------------- *)

let validate cfg =
  if cfg.dispatchers < 1 then
    invalid_arg "Scheduler: dispatchers must be >= 1";
  if cfg.queue_capacity < 1 then
    invalid_arg "Scheduler: queue_capacity must be >= 1";
  if cfg.breaker_threshold < 1 then
    invalid_arg "Scheduler: breaker_threshold must be >= 1";
  if cfg.max_retries < 0 then invalid_arg "Scheduler: max_retries must be >= 0";
  if cfg.watchdog_period <= 0.0 then
    invalid_arg "Scheduler: watchdog_period must be > 0"

(* Supervisor reclaim for dispatcher [di]: runs in the crashed domain
   after its stack unwound (arena leases and mutexes already released
   by the [Fun.protect]s along the way). What the unwind cannot do is
   answer the client — the ticket this dispatcher was serving would
   otherwise hang its [await] forever — or release a half-open breaker
   probe the crashed query was carrying. Both live in scheduler state,
   so both are reclaimed here, under [t.lock]. *)
let dispatcher_reclaim t di sv_name exn =
  let victim =
    with_lock t.lock (fun () ->
        Aeq_race.write ~site:"sched.reclaim" t.running_loc;
        Aeq_race.write ~site:"sched.reclaim" t.counters_loc;
        match t.current.(di) with
        | None -> None
        | Some tk ->
          t.current.(di) <- None;
          Hashtbl.remove t.running_tks tk.tk_id;
          t.n_crashed_tickets <- t.n_crashed_tickets + 1;
          t.n_failed <- t.n_failed + 1;
          obs_bump "crashed_tickets"
            ~help:"In-flight tickets completed as Worker_crashed by supervisor reclaim.";
          let err =
            QE.Worker_crashed { domain = sv_name; detail = Printexc.to_string exn }
          in
          (* a crashed probe must not wedge the breaker in Half_open:
             feed the failure so it re-trips and re-probes later *)
          breaker_feed t tk (Error err) 0;
          Some (tk, err))
  in
  (match victim with
  | Some (tk, err) ->
    complete tk (Error err);
    Aeq_util.Waiter.wake t.quiet_waiter
  | None -> ());
  t.on_domain_crash ~name:sv_name exn

(* A dispatcher whose restart budget is exhausted stops serving. When
   the LAST one gives up nothing will ever pop the queue again — fail
   its clients now and refuse new ones, instead of hanging them. *)
let dispatcher_gave_up t =
  with_lock t.lock (fun () ->
      Aeq_race.write ~site:"sched.gave_up" t.running_loc;
      t.failed_dispatchers <- t.failed_dispatchers + 1;
      if t.failed_dispatchers >= t.cfg.dispatchers then
        reject_queued t "no serving domains left (restart budget exhausted)")

let create ?(config = default_config) ?arena
    ?(on_domain_crash = fun ~name:_ _ -> ()) ~exec () =
  validate config;
  let t =
    {
      cfg = config;
      exec;
      arena;
      lock = Aeq_race.Lock.create "sched.lock";
      work = Condition.create ();
      queues_loc = Aeq_race.locate "sched.queues";
      counters_loc = Aeq_race.locate "sched.counters";
      running_loc = Aeq_race.locate "sched.running";
      breaker_loc = Aeq_race.locate "sched.breaker";
      queues = Array.init 3 (fun _ -> Queue.create ());
      ids = Atomic.make 0;
      prng = Prng.create config.seed;
      queued = 0;
      stopped = false;
      draining = false;
      running_tks = Hashtbl.create 8;
      current = Array.make config.dispatchers None;
      on_domain_crash;
      failed_dispatchers = 0;
      brk = Closed;
      brk_until = 0.0;
      brk_consecutive = 0;
      probe = None;
      failures = Queue.create ();
      n_admitted = 0;
      n_rejected = 0;
      n_shed = 0;
      n_expired = 0;
      n_retried = 0;
      n_completed = 0;
      n_failed = 0;
      n_degraded = 0;
      n_watchdog_cancels = 0;
      n_breaker_trips = 0;
      n_crashed_tickets = 0;
      max_depth = 0;
      total_wait = 0.0;
      n_waits = 0;
      max_wait = 0.0;
      wd_waiter = Aeq_util.Waiter.create ();
      retry_waiters = Array.init config.dispatchers (fun _ -> Aeq_util.Waiter.create ());
      quiet_waiter = Aeq_util.Waiter.create ();
      domains = [];
      supervisors = [];
    }
  in
  if config.supervised then
    t.supervisors <-
      Supervisor.spawn ~policy:config.restart_policy ~name:"scheduler.watchdog"
        ~on_crash:(fun exn -> t.on_domain_crash ~name:"scheduler.watchdog" exn)
        (watchdog_loop t)
      :: List.init config.dispatchers (fun i ->
             let sv_name = Printf.sprintf "scheduler.dispatcher-%d" i in
             Supervisor.spawn ~policy:config.restart_policy ~name:sv_name
               ~on_crash:(dispatcher_reclaim t i sv_name)
               ~on_give_up:(fun _ -> dispatcher_gave_up t)
               (dispatcher_loop t i))
  else
    (* unsupervised mode exists for the supervision-overhead benchmark
       and as an escape hatch; a crash here kills the domain for good *)
    t.domains <-
      Aeq_race.spawn (watchdog_loop t)
      :: List.init config.dispatchers (fun i ->
             Aeq_race.spawn (dispatcher_loop t i));
  (* gauges registered unconditionally; rendering is what the
     observability switch gates *)
  Obs.Metrics.gauge_fn "aeq_scheduler_queue_depth"
    ~help:"Queries queued right now." (fun () ->
      with_lock t.lock (fun () ->
          Aeq_race.read ~site:"sched.gauge" t.queues_loc;
          t.queued));
  Obs.Metrics.gauge_fn "aeq_scheduler_in_flight"
    ~help:"Queries currently being served by dispatcher domains." (fun () ->
      with_lock t.lock (fun () ->
          Aeq_race.read ~site:"sched.gauge" t.running_loc;
          Hashtbl.length t.running_tks));
  Obs.Metrics.gauge_fn "aeq_scheduler_breaker_state"
    ~help:"Compile-path circuit breaker: 0 closed, 1 half-open, 2 open."
    (fun () ->
      with_lock t.lock (fun () ->
          Aeq_race.read ~site:"sched.gauge" t.breaker_loc;
          match t.brk with Closed -> 0 | Half_open -> 1 | Open -> 2));
  Obs.Metrics.gauge_fn "aeq_scheduler_unhealthy_domains"
    ~help:"Supervised scheduler domains currently backing off or failed."
    (fun () ->
      List.length (List.filter_map Supervisor.health_reason t.supervisors));
  t

let supervisors t = t.supervisors

let health_reasons t = List.filter_map Supervisor.health_reason t.supervisors

let draining t =
  with_lock t.lock (fun () ->
      Aeq_race.read ~site:"sched.draining" t.queues_loc;
      t.draining)

(* Graceful drain: close admission, then wait (bounded) for the queue
   and the in-flight set to empty. Past the deadline, still-queued
   clients are rejected and in-flight queries cancelled — every
   [await] resolves either way. *)
let drain ?(deadline_seconds = 30.0) t =
  with_lock t.lock (fun () ->
      Aeq_race.write ~site:"sched.drain" t.queues_loc;
      t.draining <- true);
  let deadline = Clock.now () +. deadline_seconds in
  let quiesced () =
    with_lock t.lock (fun () ->
        Aeq_race.read ~site:"sched.drain" t.queues_loc;
        Aeq_race.read ~site:"sched.drain" t.running_loc;
        t.queued = 0 && Hashtbl.length t.running_tks = 0)
  in
  let rec poll () =
    if quiesced () then true
    else begin
      let remaining = deadline -. Clock.now () in
      if remaining <= 0.0 then false
      else begin
        (* dispatchers poke [quiet_waiter] as queries finish, so this
           wakes on progress instead of burning a fixed-period poll *)
        ignore
          (Aeq_util.Waiter.wait t.quiet_waiter (Float.min 0.01 remaining));
        poll ()
      end
    end
  in
  let clean = poll () in
  if not clean then begin
    let in_flight =
      with_lock t.lock (fun () ->
          reject_queued t "rejected at drain deadline";
          Hashtbl.fold (fun _ tk acc -> tk :: acc) t.running_tks [])
    in
    List.iter (fun tk -> Cancel.cancel tk.tk_cancel) in_flight
  end;
  clean

let stats t =
  with_lock t.lock (fun () ->
      Aeq_race.read ~site:"sched.stats" t.counters_loc;
      Aeq_race.read ~site:"sched.stats" t.queues_loc;
      Aeq_race.read ~site:"sched.stats" t.running_loc;
      Aeq_race.read ~site:"sched.stats" t.breaker_loc;
      {
      admitted = t.n_admitted;
      rejected = t.n_rejected;
      shed = t.n_shed;
      expired = t.n_expired;
      retried = t.n_retried;
      in_flight = Hashtbl.length t.running_tks;
      completed = t.n_completed;
      failed = t.n_failed;
      degraded = t.n_degraded;
      watchdog_cancels = t.n_watchdog_cancels;
      breaker_trips = t.n_breaker_trips;
      breaker_state = t.brk;
      queue_depth = t.queued;
      max_queue_depth = t.max_depth;
      avg_wait_seconds = (if t.n_waits = 0 then 0.0 else t.total_wait /. float_of_int t.n_waits);
      max_wait_seconds = t.max_wait;
      crashed_tickets = t.n_crashed_tickets;
      (* supervisor counters are monotone over the scheduler's
         lifetime — the restart budget made observable *)
      domain_crashes =
        List.fold_left (fun acc sv -> acc + Supervisor.crashes sv) 0 t.supervisors;
      domain_restarts =
        List.fold_left (fun acc sv -> acc + Supervisor.restarts sv) 0 t.supervisors;
      })

let reset_stats t =
  with_lock t.lock (fun () ->
      Aeq_race.write ~site:"sched.reset_stats" t.counters_loc;
      t.n_admitted <- 0;
  t.n_rejected <- 0;
  t.n_shed <- 0;
  t.n_expired <- 0;
  t.n_retried <- 0;
  t.n_completed <- 0;
  t.n_failed <- 0;
  t.n_degraded <- 0;
  t.n_watchdog_cancels <- 0;
  t.n_breaker_trips <- 0;
  t.n_crashed_tickets <- 0;
  t.max_depth <- t.queued;
      t.total_wait <- 0.0;
      t.n_waits <- 0;
      t.max_wait <- 0.0)

let shutdown t =
  let to_join =
    with_lock t.lock (fun () ->
        if t.stopped then None
        else begin
          Aeq_race.write ~site:"sched.shutdown" t.queues_loc;
          t.stopped <- true;
          Condition.broadcast t.work;
          let ds = t.domains in
          let svs = t.supervisors in
          t.domains <- [];
          Some (ds, svs)
        end)
  in
  match to_join with
  | None -> ()
  | Some (ds, svs) ->
    (* wake the watchdog out of its inter-sweep sleep so close never
       stalls a full period, cut retry backoffs short, and cut any
       supervisor backoff short *)
    Aeq_util.Waiter.wake t.wd_waiter;
    Array.iter Aeq_util.Waiter.wake t.retry_waiters;
    List.iter Supervisor.stop svs;
    List.iter Aeq_race.join ds;
    List.iter Supervisor.join svs;
    Aeq_util.Waiter.dispose t.wd_waiter;
    Array.iter Aeq_util.Waiter.dispose t.retry_waiters;
    Aeq_util.Waiter.dispose t.quiet_waiter

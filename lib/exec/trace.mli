(** Execution trace recording (the data behind the paper's Fig. 14).

    Each morsel and compilation burst is recorded as an interval per
    thread; benchmarks render these as per-thread lanes. *)

type kind =
  | Ev_morsel of Aeq_backend.Cost_model.mode
  | Ev_compile of Aeq_backend.Cost_model.mode
  | Ev_compile_failed of Aeq_backend.Cost_model.mode
      (** a promotion to this mode failed; the pipeline degraded to
          its current mode and blacklisted the target (rendered 'X') *)

type event = {
  pipeline : int;
  tid : int;
  t0 : float;  (** seconds since the trace epoch *)
  t1 : float;
  kind : kind;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the retained event count (default 65536): a
    trace left attached to a long-running serve stays bounded. Events
    past the cap are dropped and counted, not silently lost. *)

val epoch : t -> float

val record : t -> pipeline:int -> tid:int -> t0:float -> t1:float -> kind -> unit
(** Thread-safe. Times are absolute ({!Aeq_util.Clock.now}); stored
    relative to the epoch. *)

val events : t -> event list
(** Sorted by start time. The sort runs once per mutation and is
    cached, so repeated calls (rendering + exporting the same trace)
    do not re-sort. *)

val n_events : t -> int

val dropped : t -> int
(** Events discarded because the trace was at capacity. *)

val mode_name : Aeq_backend.Cost_model.mode -> string

val render : t -> n_threads:int -> string
(** ASCII lanes, one per thread. *)

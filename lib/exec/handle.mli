(** Worker-function handles (paper Fig. 5).

    A handle stores every available representation of one pipeline's
    worker function. Workers pick the current best variant for every
    morsel; switching execution modes is a single atomic store, and
    because all variants operate on the same arena state, remaining
    morsels continue seamlessly in the new mode.

    The handle is split in two:

    - {!compiled} is execution-independent: the IR, the translated
      bytecode program, every machine-code (closure) variant built so
      far, and the per-mode blacklists. It is what a prepared
      statement caches — surviving artifacts make re-executions skip
      codegen, bytecode translation and recompilation entirely.
    - {!t} binds a [compiled] to one execution: cost model, symbol
      resolver, arena, plus the {e installed} variant and the
      compile-in-flight flag. Bindings are cheap throwaway records
      created per execution, so two concurrent executions of the same
      cached plan adapt independently — one promoting to Opt does not
      yank the variant under the other mid-morsel.

    Compiled artifacts stay valid across executions because their
    runtime closures resolve the {e domain-current}
    {!Aeq_rt.Context.t} per call rather than closing over one
    execution's tables. *)

type variant =
  | V_bytecode of Aeq_vm.Bytecode.t
  | V_compiled of Aeq_backend.Cost_model.mode * Aeq_backend.Closure_compile.t

type compiled = {
  func : Func.t;
  bytecode : Aeq_vm.Bytecode.t;
  n_instrs : int;
  bc_translate_seconds : float;
  unopt : Aeq_backend.Closure_compile.t option Atomic.t;  (** cached Unopt variant *)
  opt : Aeq_backend.Closure_compile.t option Atomic.t;  (** cached Opt variant *)
  compile_seconds : float Atomic.t;  (** compilation latency over the artifact's lifetime *)
  unopt_blacklisted : bool Atomic.t;  (** Unopt compilation failed once; never retry *)
  opt_blacklisted : bool Atomic.t;  (** Opt compilation failed once; never retry *)
}

type t = {
  c : compiled;
  cost_model : Aeq_backend.Cost_model.t;
  symbols : Aeq_vm.Rt_fn.resolver;
  mem : Aeq_mem.Arena.t;
  current : variant Atomic.t;  (** the variant run_morsel dispatches to *)
  compiling : bool Atomic.t;  (** a compile task is in flight for this execution *)
}

val compile_worker :
  cost_model:Aeq_backend.Cost_model.t ->
  symbols:Aeq_vm.Rt_fn.resolver ->
  Func.t ->
  compiled
(** Translate to bytecode (always available, fast). The result starts
    with no machine-code variants built. *)

val bind :
  compiled ->
  cost_model:Aeq_backend.Cost_model.t ->
  symbols:Aeq_vm.Rt_fn.resolver ->
  mem:Aeq_mem.Arena.t ->
  t
(** Fresh per-execution binding; starts in the bytecode variant. *)

val create :
  cost_model:Aeq_backend.Cost_model.t ->
  symbols:Aeq_vm.Rt_fn.resolver ->
  mem:Aeq_mem.Arena.t ->
  Func.t ->
  t
(** [compile_worker] + [bind] for single-shot (unprepared) execution. *)

val compiled_part : t -> compiled

val mode : t -> Aeq_backend.Cost_model.mode
(** The variant installed in this binding. *)

val mode_of_compiled : compiled -> Aeq_backend.Cost_model.mode
(** The best variant the artifact has cached (Opt > Unopt > Bytecode):
    what a fresh execution can promote to without compiling. *)

val compiling : t -> bool Atomic.t

val n_instrs : t -> int

val total_compile_seconds : compiled -> float

val install : t -> variant -> unit

val run_morsel : t -> regs:Bytes.t ref -> args:int64 array -> unit
(** Execute one morsel with the current variant, growing the caller's
    scratch register file if the variant needs more space. *)

val blacklisted : t -> Aeq_backend.Cost_model.mode -> bool
(** The mode's compilation failed earlier (this execution or a
    previous one of the same prepared statement); it must not be
    retried. [Bytecode] is never blacklisted — the interpreter is the
    always-available escape hatch. *)

val blacklist : t -> Aeq_backend.Cost_model.mode -> unit
(** Mark a mode as permanently unavailable (no-op for [Bytecode]). *)

val promote : t -> mode:Aeq_backend.Cost_model.mode -> float
(** Install the given mode's variant and return the compile latency
    paid now: 0 if the binding is already in that mode or the variant
    was cached from an earlier execution; otherwise the variant is
    compiled (blocking; run it on the thread that volunteered),
    cached for future executions, and installed. [Bytecode] reinstalls
    the interpreter (free).

    Compilation is fallible: the failpoints ["compile.unopt"] /
    ["compile.opt"] are hit just before compiling, and any exception
    (injected or real) blacklists the mode before propagating — the
    binding stays in its current variant and the mode is never
    attempted again.
    @raise Query_error.Error
      [(Compile_failed _)] when asked to promote to an
      already-blacklisted mode. *)

module CM = Aeq_backend.Cost_model

type decision = Do_nothing | Compile of CM.mode

type t = {
  model : CM.t;
  handle : Handle.t;
  progress : Progress.t;
  n_threads : int;
  evaluating : bool Atomic.t;
}

let min_delay_seconds = 0.001

let create ~model ~handle ~progress ~n_threads =
  { model; handle; progress; n_threads; evaluating = Atomic.make false }

let extrapolate ?(allow_unopt = true) ?(allow_opt = true) ~model ~current_mode
    ~n_instrs ~remaining ~rate ~n_threads () =
  if rate <= 0.0 || remaining <= 0 then Do_nothing
  else begin
    let n = float_of_int remaining in
    let w = float_of_int n_threads in
    let t0 = n /. rate /. w in
    let option mode =
      let c = CM.compile_time model mode n_instrs in
      (* [rate] was measured in [current_mode]; the model's speedups
         are vs bytecode. Scale by the *relative* gain, otherwise an
         already-upgraded pipeline credits the candidate with the full
         vs-bytecode speedup (e.g. Unopt->Opt looked 5x instead of
         5/3.6 = 1.39x) and upgrades far too eagerly. *)
      let r = rate *. (CM.speedup model mode /. CM.speedup model current_mode) in
      (* one thread compiles; the others keep processing during c *)
      let leftover = Stdlib.max (n -. ((w -. 1.0) *. rate *. c)) 0.0 in
      c +. (leftover /. r /. w)
    in
    (* blacklisted candidates (a mode whose compilation failed) are
       priced out rather than special-cased: infinity never beats the
       status quo, so the controller never retries a dead mode *)
    let option mode ~allowed = if allowed then option mode else Float.infinity in
    match current_mode with
    | CM.Opt -> Do_nothing
    | CM.Unopt ->
      let t2 = option CM.Opt ~allowed:allow_opt in
      if t2 < t0 then Compile CM.Opt else Do_nothing
    | CM.Bytecode ->
      let t1 = option CM.Unopt ~allowed:allow_unopt
      and t2 = option CM.Opt ~allowed:allow_opt in
      if t1 <= t2 && t1 < t0 then Compile CM.Unopt
      else if t2 < t1 && t2 < t0 then Compile CM.Opt
      else Do_nothing
  end

let maybe_decide t =
  let now = Aeq_util.Clock.now () in
  if now -. Progress.start_time t.progress < min_delay_seconds then Do_nothing
  else if Atomic.get (Handle.compiling t.handle) then Do_nothing
  else if not (Atomic.compare_and_set t.evaluating false true) then Do_nothing
  else begin
    let d =
      extrapolate ~model:t.model
        ~allow_unopt:(not (Handle.blacklisted t.handle CM.Unopt))
        ~allow_opt:(not (Handle.blacklisted t.handle CM.Opt))
        ~current_mode:(Handle.mode t.handle)
        ~n_instrs:(Handle.n_instrs t.handle)
        ~remaining:(Progress.remaining t.progress)
        ~rate:(Progress.avg_rate t.progress)
        ~n_threads:t.n_threads ()
    in
    match d with
    | Do_nothing ->
      Atomic.set t.evaluating false;
      Do_nothing
    | Compile _ ->
      Atomic.set (Handle.compiling t.handle) true;
      d
  end

let finish_compile t =
  Progress.reset_rates t.progress;
  Atomic.set (Handle.compiling t.handle) false;
  Atomic.set t.evaluating false

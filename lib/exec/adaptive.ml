module CM = Aeq_backend.Cost_model

type decision = Do_nothing | Compile of CM.mode

type candidate = { cand_mode : CM.mode; cand_seconds : float; cand_blacklisted : bool }

type eval = {
  ev_stay_seconds : float;
  ev_candidates : candidate list;
  ev_decision : decision;
}

type t = {
  model : CM.t;
  handle : Handle.t;
  progress : Progress.t;
  n_threads : int;
  pipeline : int;
  evaluating : bool Atomic.t;
}

let min_delay_seconds = 0.001

let create ?(pipeline = 0) ~model ~handle ~progress ~n_threads () =
  { model; handle; progress; n_threads; pipeline; evaluating = Atomic.make false }

let no_eval =
  { ev_stay_seconds = infinity; ev_candidates = []; ev_decision = Do_nothing }

let evaluate ?(allow_unopt = true) ?(allow_opt = true) ~model ~current_mode ~n_instrs
    ~remaining ~rate ~n_threads () =
  if rate <= 0.0 || remaining <= 0 then no_eval
  else begin
    let n = float_of_int remaining in
    let w = float_of_int n_threads in
    let t0 = n /. rate /. w in
    let option mode =
      let c = CM.compile_time model mode n_instrs in
      (* [rate] was measured in [current_mode]; the model's speedups
         are vs bytecode. Scale by the *relative* gain, otherwise an
         already-upgraded pipeline credits the candidate with the full
         vs-bytecode speedup (e.g. Unopt->Opt looked 5x instead of
         5/3.6 = 1.39x) and upgrades far too eagerly. *)
      let r = rate *. (CM.speedup model mode /. CM.speedup model current_mode) in
      (* one thread compiles; the others keep processing during c *)
      let leftover = Stdlib.max (n -. ((w -. 1.0) *. rate *. c)) 0.0 in
      c +. (leftover /. r /. w)
    in
    (* blacklisted candidates (a mode whose compilation failed) are
       priced out rather than special-cased: infinity never beats the
       status quo, so the controller never retries a dead mode *)
    let candidate mode ~allowed =
      {
        cand_mode = mode;
        cand_seconds = (if allowed then option mode else Float.infinity);
        cand_blacklisted = not allowed;
      }
    in
    match current_mode with
    | CM.Opt -> { ev_stay_seconds = t0; ev_candidates = []; ev_decision = Do_nothing }
    | CM.Unopt ->
      let c2 = candidate CM.Opt ~allowed:allow_opt in
      {
        ev_stay_seconds = t0;
        ev_candidates = [ c2 ];
        ev_decision = (if c2.cand_seconds < t0 then Compile CM.Opt else Do_nothing);
      }
    | CM.Bytecode ->
      let c1 = candidate CM.Unopt ~allowed:allow_unopt
      and c2 = candidate CM.Opt ~allowed:allow_opt in
      let t1 = c1.cand_seconds and t2 = c2.cand_seconds in
      {
        ev_stay_seconds = t0;
        ev_candidates = [ c1; c2 ];
        ev_decision =
          (if t1 <= t2 && t1 < t0 then Compile CM.Unopt
           else if t2 < t1 && t2 < t0 then Compile CM.Opt
           else Do_nothing);
      }
  end

let extrapolate ?allow_unopt ?allow_opt ~model ~current_mode ~n_instrs ~remaining ~rate
    ~n_threads () =
  (evaluate ?allow_unopt ?allow_opt ~model ~current_mode ~n_instrs ~remaining ~rate
     ~n_threads ())
    .ev_decision

let mode_name = CM.mode_name

(* Fig. 7 in the flight recorder: what the controller saw, what it
   projected for each option, and what it chose. *)
let log_eval t ~current_mode ~rate ev =
  let open Aeq_obs in
  let action, reason =
    match ev.ev_decision with
    | Compile m -> (Decision_log.Promote (mode_name m), "extrapolated win")
    | Do_nothing ->
      ( Decision_log.Stay,
        if current_mode = CM.Opt then "already optimized"
        else if rate <= 0.0 then "no rate sample yet"
        else if List.for_all (fun c -> c.cand_blacklisted) ev.ev_candidates
                && ev.ev_candidates <> []
        then "all candidates blacklisted"
        else "status quo optimal" )
  in
  Decision_log.log
    {
      Decision_log.d_time = Aeq_util.Clock.now ();
      d_pipeline = t.pipeline;
      d_mode = mode_name current_mode;
      d_processed = Progress.processed t.progress;
      d_remaining = Progress.remaining t.progress;
      d_rate = rate;
      d_stay_seconds = ev.ev_stay_seconds;
      d_candidates =
        List.map
          (fun c ->
            {
              Decision_log.c_mode = mode_name c.cand_mode;
              c_total_seconds = c.cand_seconds;
              c_blacklisted = c.cand_blacklisted;
            })
          ev.ev_candidates;
      d_action = action;
      d_reason = reason;
    }

let maybe_decide t =
  let now = Aeq_util.Clock.now () in
  if now -. Progress.start_time t.progress < min_delay_seconds then Do_nothing
  else if Atomic.get (Handle.compiling t.handle) then Do_nothing
  else if not (Atomic.compare_and_set t.evaluating false true) then Do_nothing
  else begin
    let current_mode = Handle.mode t.handle in
    let rate = Progress.avg_rate t.progress in
    let ev =
      evaluate ~model:t.model
        ~allow_unopt:(not (Handle.blacklisted t.handle CM.Unopt))
        ~allow_opt:(not (Handle.blacklisted t.handle CM.Opt))
        ~current_mode
        ~n_instrs:(Handle.n_instrs t.handle)
        ~remaining:(Progress.remaining t.progress)
        ~rate ~n_threads:t.n_threads ()
    in
    if Aeq_obs.Control.enabled () && rate > 0.0 then log_eval t ~current_mode ~rate ev;
    match ev.ev_decision with
    | Do_nothing ->
      Atomic.set t.evaluating false;
      Do_nothing
    | Compile _ as d ->
      Atomic.set (Handle.compiling t.handle) true;
      d
  end

let finish_compile t =
  Progress.reset_rates t.progress;
  Atomic.set (Handle.compiling t.handle) false;
  Atomic.set t.evaluating false

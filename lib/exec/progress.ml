type t = {
  total_rows : int;
  start : float;
  done_rows : int Atomic.t;
  rates : float Atomic.t array;
      (* per-thread last-morsel rate; 0 = no sample. Written by each
         worker domain and read by whichever domain wins the adaptive
         evaluation — a plain float array would be a data race under
         the multicore memory model. *)
}

let create ~total_rows ~n_threads =
  {
    total_rows;
    start = Aeq_util.Clock.now ();
    done_rows = Atomic.make 0;
    rates = Array.init (Stdlib.max 1 n_threads) (fun _ -> Atomic.make 0.0);
  }

let start_time t = t.start

let note_morsel t ~tid ~rows ~seconds =
  ignore (Atomic.fetch_and_add t.done_rows rows);
  if seconds > 0.0 then Atomic.set t.rates.(tid) (float_of_int rows /. seconds)

let processed t = Atomic.get t.done_rows

let remaining t = Stdlib.max 0 (t.total_rows - processed t)

let avg_rate t =
  let sum = ref 0.0 and n = ref 0 in
  Array.iter
    (fun cell ->
      let r = Atomic.get cell in
      if r > 0.0 then begin
        sum := !sum +. r;
        incr n
      end)
    t.rates;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

let reset_rates t = Array.iter (fun cell -> Atomic.set cell 0.0) t.rates

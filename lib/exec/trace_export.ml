module CT = Aeq_obs.Chrome_trace
module Json = Aeq_obs.Json
module Span = Aeq_obs.Span
module DL = Aeq_obs.Decision_log

let us = 1e6

(* pid 0: worker lanes (morsels, compile bursts, decisions);
   pid 1: lifecycle-span lanes, one per recording domain *)
let workers_pid = 0

let spans_pid = 1

let finite_or_string x =
  if Float.abs x = Float.infinity then Json.Str "inf"
  else if Float.is_nan x then Json.Str "nan"
  else Json.Num x

let chrome_events ?trace () =
  let spans = Span.snapshot () in
  let decisions = DL.snapshot () in
  let trace_events = match trace with Some tr -> Trace.events tr | None -> [] in
  let trace_epoch = match trace with Some tr -> Trace.epoch tr | None -> 0.0 in
  (* one shared epoch: earliest absolute timestamp of any source *)
  let epoch =
    List.fold_left
      (fun acc (sp : Span.span) -> Stdlib.min acc sp.Span.sp_t0)
      (List.fold_left
         (fun acc (d : DL.entry) -> Stdlib.min acc d.DL.d_time)
         (List.fold_left
            (fun acc (e : Trace.event) -> Stdlib.min acc (trace_epoch +. e.Trace.t0))
            infinity trace_events)
         decisions)
      spans
  in
  let epoch = if epoch = infinity then 0.0 else epoch in
  let rel t = (t -. epoch) *. us in
  let exec_events =
    List.map
      (fun (e : Trace.event) ->
        let abs0 = trace_epoch +. e.Trace.t0 and abs1 = trace_epoch +. e.Trace.t1 in
        let args mode =
          [
            ("pipeline", Json.Num (float_of_int e.Trace.pipeline));
            ("mode", Json.Str (Trace.mode_name mode));
          ]
        in
        match e.Trace.kind with
        | Trace.Ev_morsel m ->
          CT.complete
            ~name:("morsel " ^ Trace.mode_name m)
            ~cat:"morsel" ~pid:workers_pid ~tid:e.Trace.tid ~ts_us:(rel abs0)
            ~dur_us:((abs1 -. abs0) *. us) ~args:(args m) ()
        | Trace.Ev_compile m ->
          CT.complete
            ~name:("compile " ^ Trace.mode_name m)
            ~cat:"compile" ~pid:workers_pid ~tid:e.Trace.tid ~ts_us:(rel abs0)
            ~dur_us:((abs1 -. abs0) *. us) ~args:(args m) ()
        | Trace.Ev_compile_failed m ->
          CT.instant
            ~name:("compile failed " ^ Trace.mode_name m)
            ~cat:"compile" ~pid:workers_pid ~tid:e.Trace.tid ~ts_us:(rel abs0)
            ~args:(args m) ())
      trace_events
  in
  let span_events =
    List.map
      (fun (sp : Span.span) ->
        let args =
          if sp.Span.sp_pipeline >= 0 then
            [ ("pipeline", Json.Num (float_of_int sp.Span.sp_pipeline)) ]
          else []
        in
        CT.complete ~name:sp.Span.sp_name ~cat:"span" ~pid:spans_pid
          ~tid:sp.Span.sp_domain ~ts_us:(rel sp.Span.sp_t0)
          ~dur_us:((sp.Span.sp_t1 -. sp.Span.sp_t0) *. us)
          ~args ())
      spans
  in
  let decision_events =
    List.map
      (fun (d : DL.entry) ->
        let action =
          match d.DL.d_action with DL.Stay -> "stay" | DL.Promote m -> "promote " ^ m
        in
        let args =
          [
            ("pipeline", Json.Num (float_of_int d.DL.d_pipeline));
            ("mode", Json.Str d.DL.d_mode);
            ("processed", Json.Num (float_of_int d.DL.d_processed));
            ("remaining", Json.Num (float_of_int d.DL.d_remaining));
            ("rate_tuples_per_s", Json.Num d.DL.d_rate);
            ("stay_seconds", finite_or_string d.DL.d_stay_seconds);
            ("action", Json.Str action);
            ("reason", Json.Str d.DL.d_reason);
          ]
          @ List.map
              (fun (c : DL.candidate) ->
                ( "candidate_" ^ c.DL.c_mode ^ "_seconds",
                  if c.DL.c_blacklisted then Json.Str "blacklisted"
                  else finite_or_string c.DL.c_total_seconds ))
              d.DL.d_candidates
        in
        CT.instant
          ~name:("decision " ^ action)
          ~cat:"adaptive" ~pid:workers_pid ~tid:0 ~ts_us:(rel d.DL.d_time) ~args ())
      decisions
  in
  let tids =
    List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.Trace.tid) trace_events)
  in
  let domains =
    List.sort_uniq compare (List.map (fun (sp : Span.span) -> sp.Span.sp_domain) spans)
  in
  (CT.process_name ~pid:workers_pid "workers" :: CT.process_name ~pid:spans_pid "lifecycle"
   :: List.map
        (fun tid -> CT.thread_name ~pid:workers_pid ~tid (Printf.sprintf "worker %d" tid))
        tids)
  @ List.map
      (fun d -> CT.thread_name ~pid:spans_pid ~tid:d (Printf.sprintf "domain %d" d))
      domains
  @ exec_events @ span_events @ decision_events

let chrome_json ?trace () = CT.render (chrome_events ?trace ())

let write_file ?trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_json ?trace ()))

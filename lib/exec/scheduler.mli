(** Concurrent query serving: admission control, overload shedding,
    and a compile-path circuit breaker in front of the driver.

    The execution core underneath (driver + multi-tenant worker pool +
    per-query arena leases) runs queries concurrently; a configurable
    number of dispatcher domains keep several admitted queries in
    flight at once. What a server needs on top — and what this module
    provides — is a defined behavior when clients outnumber capacity:

    - a {b bounded admission queue} with three priority classes and
      per-query deadlines. A full queue rejects immediately with
      {!Query_error.Overloaded} (fail fast, never queue unboundedly),
      shedding an already-queued lower-priority query first if that
      makes room for a higher-priority newcomer;
    - {b load shedding / graceful degradation}: when queue depth or
      the arena's resident high-water mark crosses its threshold,
      newly dispatched queries are forced to bytecode-only mode — no
      compilation spend under overload;
    - a {b compile-path circuit breaker}: per-statement blacklisting
      (PR 2) stops retry storms within one prepared statement, but
      every new statement still re-pays a broken compile path. The
      breaker aggregates compile failures engine-wide in a sliding
      window; past the threshold it trips to bytecode-only for
      everyone, then recovers through half-open probing — one query is
      allowed to compile; success closes the breaker, failure re-opens
      it with exponentially growing, fully-jittered cooldown;
    - {b retry with backoff} for failures classified transient by
      {!Query_error.transient} (injected faults — the chaos stand-in
      for infrastructure hiccups), bounded by the query's deadline and
      [max_retries];
    - a {b watchdog} domain that cancels queries exceeding
      deadline + grace via their {!Cancel.t} token (surfaced as
      [Timeout]), expires queries whose deadline passed while still
      queued, and keeps the health counters in {!stats} current.

    Clients call {!submit} (asynchronous; returns a {!ticket}) or
    {!run} (submit + await) from any number of domains. Dispatcher
    domains serve the queue highest-priority-first, FIFO within a
    class; with [dispatchers = 1] serving is fully serialized (the
    deterministic mode the scheduler tests rely on). *)

type priority = Low | Normal | High

val priority_name : priority -> string

type config = {
  dispatchers : int;
      (** dispatcher domains — the number of admitted queries served
          concurrently (≥ 1; default 1) *)
  queue_capacity : int;  (** admission queue bound (≥ 1) *)
  shed_queue_depth : int;
      (** queue depth beyond which dispatched queries are forced to
          bytecode-only *)
  shed_resident_bytes : int option;
      (** arena high-water mark (resident bytes) beyond which
          dispatched queries are forced to bytecode-only *)
  deadline_grace : float;
      (** seconds past its deadline a running query is granted before
          the watchdog cancels it *)
  breaker_threshold : int;
      (** compile failures within [breaker_window] that trip the
          breaker *)
  breaker_window : float;  (** sliding-window length, seconds *)
  breaker_cooldown : float;
      (** base open-state cooldown before the first half-open probe;
          doubles per consecutive re-open (full jitter, see module
          doc) *)
  breaker_cooldown_max : float;  (** cooldown growth cap, seconds *)
  max_retries : int;  (** retry budget per query for transient failures *)
  retry_backoff : float;
      (** base retry backoff, seconds; doubles per attempt, full
          jitter, bounded by the query's deadline *)
  watchdog_period : float;  (** watchdog scan interval, seconds *)
  seed : int64;  (** PRNG seed for backoff jitter *)
  supervised : bool;
      (** spawn dispatchers and the watchdog under {!Supervisor}
          barriers (default [true]): a crash completes the victim's
          in-flight ticket with [Worker_crashed] and restarts the
          domain under [restart_policy]. [false] reverts to bare
          domains — for the supervision-overhead benchmark only; a
          crash then kills the domain permanently *)
  restart_policy : Supervisor.policy;
      (** restart budget and backoff for the supervised domains *)
}

val default_config : config

type outcome = (Driver.result, Query_error.t) result

type ticket
(** A submitted query. Await it, cancel it, or inspect it. *)

type t

val create :
  ?config:config ->
  ?arena:Aeq_mem.Arena.t ->
  ?on_domain_crash:(name:string -> exn -> unit) ->
  exec:(mode:Driver.mode -> cancel:Cancel.t -> string -> Driver.result) ->
  unit ->
  t
(** Start a scheduler (spawns [config.dispatchers] dispatcher domains
    and the watchdog domain, supervised by default). [exec] runs one
    query to completion and is called from dispatcher domains — up to
    [dispatchers] calls concurrently, so it must be thread-safe (the
    engine's [query] is); it must raise {!Query_error.Error} on
    failure, and let non-structured exceptions escape (they are
    treated as domain crashes by the supervisor). [arena], when given,
    feeds the [shed_resident_bytes] overload gauge. [on_domain_crash]
    runs in the crashed domain after the scheduler's own reclaim —
    the engine hooks its plan-cache single-flight cleanup here. *)

val submit :
  ?mode:Driver.mode ->
  ?priority:priority ->
  ?deadline_seconds:float ->
  ?cancel:Cancel.t ->
  t ->
  string ->
  ticket
(** Enqueue a query. Returns immediately.

    [deadline_seconds] is end-to-end (queue wait + execution +
    retries): expiring in the queue yields [Rejected], exceeding it
    while running gets the query cancelled by the watchdog after
    [deadline_grace] and yields [Timeout]. [cancel] lets the caller
    abandon the query later ({!cancel} does the same).

    @raise Query_error.Error [(Overloaded _)] when the queue is full
    and no strictly-lower-priority query can be shed — the fail-fast
    admission contract.
    @raise Query_error.Error [(Rejected _)] when the scheduler is shut
    down. *)

val await : ticket -> outcome
(** Block until the query completes (any domain may await). *)

val poll : ticket -> outcome option
(** Non-blocking {!await}: [Some outcome] once the query completed,
    [None] while it is still queued or running. The network session
    loop uses this to multiplex ticket completion with socket reads
    (an out-of-band [Cancel] frame must be seen while the query it
    cancels is in flight). *)

val run :
  ?mode:Driver.mode ->
  ?priority:priority ->
  ?deadline_seconds:float ->
  ?cancel:Cancel.t ->
  t ->
  string ->
  outcome
(** [submit] + [await], with admission errors ([Overloaded] /
    [Rejected] raised by {!submit}) folded into the returned outcome —
    the one-call closed-loop client API. *)

val cancel : ticket -> unit
(** Cancel the query (queued: completes [Cancelled] without running;
    running: stops at the next morsel boundary). *)

val wait_seconds : ticket -> float
(** Time the ticket spent queued before execution started ([-1.] if it
    never started). *)

val was_degraded : ticket -> bool
(** The scheduler forced this query to bytecode-only (overload or open
    breaker). *)

val retries : ticket -> int
(** Transient-failure retries this query consumed. *)

type breaker_state = Closed | Open | Half_open

val breaker_state_name : breaker_state -> string

type stats = {
  admitted : int;  (** accepted into the queue *)
  rejected : int;  (** refused at submission ([Overloaded]) or at shutdown *)
  shed : int;  (** evicted from the queue to admit higher priority *)
  expired : int;  (** deadline passed while still queued *)
  retried : int;  (** transient-failure retry attempts *)
  in_flight : int;  (** gauge: queries being served right now *)
  completed : int;  (** finished with rows *)
  failed : int;  (** finished with a structured error *)
  degraded : int;  (** executions forced to bytecode-only *)
  watchdog_cancels : int;  (** running queries cancelled past deadline+grace *)
  breaker_trips : int;  (** transitions to [Open] *)
  breaker_state : breaker_state;
  queue_depth : int;  (** gauge: queries queued right now *)
  max_queue_depth : int;  (** high-water mark of [queue_depth] *)
  avg_wait_seconds : float;  (** mean queue wait of dispatched queries *)
  max_wait_seconds : float;
  crashed_tickets : int;
      (** in-flight tickets completed as [Worker_crashed] by
          supervisor reclaim after their dispatcher died *)
  domain_crashes : int;
      (** crashes caught by this scheduler's domain supervisors
          (monotone over the scheduler's lifetime; not zeroed by
          {!reset_stats}) *)
  domain_restarts : int;
      (** supervised restarts performed (monotone, like
          [domain_crashes]) — the restart budget made observable *)
}

val zero_stats : stats
(** All counters zero, breaker [Closed] — what an engine reports
    before its scheduler exists. *)

val stats : t -> stats

val reset_stats : t -> unit
(** Zero the accumulated counters ([admitted] … [breaker_trips], wait
    statistics, [max_queue_depth] — which restarts from the current
    depth). Live state — breaker state/cooldown, the queue itself — is
    untouched. Used by [Engine.reset_stats] for windowed scraping. *)

val drain : ?deadline_seconds:float -> t -> bool
(** Graceful drain: stop admission (later {!submit}s raise
    [Rejected "draining"]) and wait up to [deadline_seconds] (default
    30) for the queue and the in-flight set to empty. Past the
    deadline, still-queued clients complete [Rejected] and in-flight
    queries are cancelled, so no [await] is left hanging. Returns
    [true] if quiescence was reached cleanly, [false] if the deadline
    forced it. Does not shut the scheduler down — callers (see
    [Engine.drain]) typically follow with {!shutdown}. *)

val draining : t -> bool

val executing_here : unit -> bool
(** [true] when called from a dispatcher domain — i.e. from inside an
    [exec] callback serving an admitted query. The engine's drain
    admission gate uses this to keep rejecting fresh direct clients
    while letting already-admitted (queued/retrying) work finish. *)

val health_reasons : t -> string list
(** One reason per supervised domain currently crashed-and-backing-off
    or failed (restart budget exhausted). Empty = all serving domains
    healthy. *)

val supervisors : t -> Supervisor.t list
(** The domain supervisors (watchdog first), for tests and
    introspection. Empty when running with [supervised = false]. *)

val shutdown : t -> unit
(** Stop serving: every still-queued query completes with [Rejected],
    in-flight queries finish, then the dispatcher and watchdog domains
    are joined (the watchdog is woken out of its inter-sweep sleep, so
    shutdown does not stall a [watchdog_period]). Idempotent. Later
    {!submit}s raise [Rejected]. *)

type kind =
  | Ev_morsel of Aeq_backend.Cost_model.mode
  | Ev_compile of Aeq_backend.Cost_model.mode
  | Ev_compile_failed of Aeq_backend.Cost_model.mode

type event = { pipeline : int; tid : int; t0 : float; t1 : float; kind : kind }

(* every worker domain records into the shared event list *)
let () = Aeq_race.declare "exec.trace.events" (Aeq_race.Lock "exec.trace.lock")

type t = {
  epoch : float;
  capacity : int;
  lock : Aeq_race.Lock.t;
  loc : Aeq_race.location;
  mutable events : event list;
  mutable n_events : int;
  mutable n_dropped : int;
  mutable sorted : event list option; (* cache; invalidated by [record] *)
}

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) () =
  {
    epoch = Aeq_util.Clock.now ();
    capacity = Stdlib.max 1 capacity;
    lock = Aeq_race.Lock.create "exec.trace.lock";
    loc = Aeq_race.locate "exec.trace.events";
    events = [];
    n_events = 0;
    n_dropped = 0;
    sorted = None;
  }

let epoch t = t.epoch

let record t ~pipeline ~tid ~t0 ~t1 kind =
  let ev = { pipeline; tid; t0 = t0 -. t.epoch; t1 = t1 -. t.epoch; kind } in
  Aeq_race.Lock.with_ t.lock (fun () ->
      Aeq_race.write ~site:"trace.record" t.loc;
      (* bounded: a long-running serve must not grow a trace without limit;
         overflow is counted instead of silently lost *)
      if t.n_events >= t.capacity then t.n_dropped <- t.n_dropped + 1
      else begin
        t.events <- ev :: t.events;
        t.n_events <- t.n_events + 1;
        t.sorted <- None
      end)

let events t =
  Aeq_race.Lock.with_ t.lock (fun () ->
      Aeq_race.write ~site:"trace.events" t.loc;
      match t.sorted with
      | Some evs -> evs (* sorted once on demand, reused until the next record *)
      | None ->
        let evs = List.sort (fun a b -> compare a.t0 b.t0) t.events in
        t.sorted <- Some evs;
        evs)

let dropped t =
  Aeq_race.Lock.with_ t.lock (fun () ->
      Aeq_race.read ~site:"trace.dropped" t.loc;
      t.n_dropped)

let n_events t =
  Aeq_race.Lock.with_ t.lock (fun () ->
      Aeq_race.read ~site:"trace.n_events" t.loc;
      t.n_events)

let mode_char = function
  | Aeq_backend.Cost_model.Bytecode -> 'b'
  | Aeq_backend.Cost_model.Unopt -> 'u'
  | Aeq_backend.Cost_model.Opt -> 'o'

let mode_name = Aeq_backend.Cost_model.mode_name

let render t ~n_threads =
  let evs = events t in
  let t_end = List.fold_left (fun acc e -> Stdlib.max acc e.t1) 0.0 evs in
  let width = 100 in
  let lanes = Array.init n_threads (fun _ -> Bytes.make width '.') in
  List.iter
    (fun e ->
      if e.tid < n_threads && t_end > 0.0 then begin
        let c0 = int_of_float (e.t0 /. t_end *. float_of_int (width - 1)) in
        let c1 = int_of_float (e.t1 /. t_end *. float_of_int (width - 1)) in
        let ch =
          match e.kind with
          | Ev_compile _ -> 'C'
          | Ev_compile_failed _ -> 'X'
          | Ev_morsel m -> mode_char m
        in
        for c = Stdlib.max 0 c0 to Stdlib.min (width - 1) c1 do
          Bytes.set lanes.(e.tid) c ch
        done
      end)
    evs;
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "trace: %.2f ms total ('b' bytecode, 'u' unopt, 'o' opt, 'C' compile)\n"
       (t_end *. 1000.0));
  Array.iteri
    (fun i lane -> Buffer.add_string buf (Printf.sprintf "T%d %s\n" i (Bytes.to_string lane)))
    lanes;
  Buffer.contents buf

(** Cooperative cancellation token.

    Create one, pass it to [Engine.query] / [Driver.execute_prepared],
    and {!cancel} it from any thread; every worker checks the token at
    its next morsel boundary and the query raises
    [Query_error.Error Cancelled] after cleanup. A token is reusable
    only in the trivial sense that once cancelled it cancels every
    query it is passed to — create a fresh one per query. *)

type t

val create : unit -> t

val cancel : t -> unit
(** Thread-safe, idempotent. *)

val cancelled : t -> bool

module CM = Aeq_backend.Cost_model

type t =
  | Trap of string
  | Compile_failed of CM.mode * string
  | Timeout of float
  | Cancelled
  | Memory_budget_exceeded of { budget_bytes : int; used_bytes : int }

exception Error of t

let mode_name = function
  | CM.Bytecode -> "bytecode"
  | CM.Unopt -> "unoptimized"
  | CM.Opt -> "optimized"

let to_string = function
  | Trap m -> "runtime trap: " ^ m
  | Compile_failed (mode, detail) ->
    Printf.sprintf "compilation to %s failed: %s" (mode_name mode) detail
  | Timeout s -> Printf.sprintf "query exceeded its %.3f s timeout" s
  | Cancelled -> "query cancelled"
  | Memory_budget_exceeded { budget_bytes; used_bytes } ->
    Printf.sprintf "query memory budget exceeded: used %d of %d bytes" used_bytes
      budget_bytes

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Aeq_exec.Query_error.Error: " ^ to_string e)
    | _ -> None)

let raise_error e = raise (Error e)

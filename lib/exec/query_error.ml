module CM = Aeq_backend.Cost_model

type t =
  | Trap of string
  | Compile_failed of CM.mode * string
  | Timeout of float
  | Cancelled
  | Memory_budget_exceeded of { budget_bytes : int; used_bytes : int }
  | Overloaded of { queue_depth : int; capacity : int }
  | Rejected of string
  | Worker_crashed of { domain : string; detail : string }

exception Error of t

let mode_name = function
  | CM.Bytecode -> "bytecode"
  | CM.Unopt -> "unoptimized"
  | CM.Opt -> "optimized"

let to_string = function
  | Trap m -> "runtime trap: " ^ m
  | Compile_failed (mode, detail) ->
    Printf.sprintf "compilation to %s failed: %s" (mode_name mode) detail
  | Timeout s -> Printf.sprintf "query exceeded its %.3f s timeout" s
  | Cancelled -> "query cancelled"
  | Memory_budget_exceeded { budget_bytes; used_bytes } ->
    Printf.sprintf "query memory budget exceeded: used %d of %d bytes" used_bytes
      budget_bytes
  | Overloaded { queue_depth; capacity } ->
    Printf.sprintf "engine overloaded: admission queue full (%d of %d)" queue_depth
      capacity
  | Rejected reason -> "query rejected: " ^ reason
  | Worker_crashed { domain; detail } ->
    Printf.sprintf "serving domain %s crashed while holding this query: %s" domain
      detail

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Aeq_exec.Query_error.Error: " ^ to_string e)
    | _ -> None)

let raise_error e = raise (Error e)

(* Injected faults stand in for the transient infrastructure failures
   (an allocation hiccup, a flaky compile worker) that a serving layer
   retries; real query bugs (division by zero, budget breaches) are
   deterministic and must not be retried. *)
let transient = function
  | Trap m ->
    let prefix = "injected fault" in
    String.length m >= String.length prefix
    && String.sub m 0 (String.length prefix) = prefix
  (* a crashed worker says nothing about the query itself: the
     supervisor restarts the domain and a retry is the right response *)
  | Worker_crashed _ -> true
  | Compile_failed _ | Timeout _ | Cancelled | Memory_budget_exceeded _ | Overloaded _
  | Rejected _ ->
    false

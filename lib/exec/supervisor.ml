module Clock = Aeq_util.Clock
module Yieldpoint = Aeq_util.Yieldpoint
module Waiter = Aeq_util.Waiter
module Obs = Aeq_obs

(* A supervised domain is an exception barrier around a long-running
   body plus a restart loop. The body crashing does NOT kill the
   domain: the barrier catches, the owner's [on_crash] reclaims
   whatever the body abandoned (complete its ticket, fix a counter),
   and — within the restart budget — the same domain re-enters the
   body after an exponentially backed-off pause. Restarting in-domain
   rather than re-spawning keeps the domain identity (and any
   domain-local state the body re-establishes itself) and costs
   nothing when no crash ever happens.

   Budget: more than [max_restarts] crashes inside a sliding
   [window_seconds] means the body is not recovering — a crash loop.
   Restarting harder would burn CPU and flood the log, so the
   supervisor gives up: state [Failed], [on_give_up] fires, and the
   owner surfaces a degraded health state instead of a wedge. *)

type policy = {
  max_restarts : int;
  window_seconds : float;
  backoff_base : float;
  backoff_max : float;
}

let default_policy =
  {
    max_restarts = 8;
    window_seconds = 10.0;
    backoff_base = 0.002;
    backoff_max = 0.25;
  }

type state = Running | Backing_off | Failed | Stopped

let state_name = function
  | Running -> "running"
  | Backing_off -> "backing_off"
  | Failed -> "failed"
  | Stopped -> "stopped"

type crash_action = Restarted | Gave_up

type crash = {
  cr_at : float;
  cr_domain : string;
  cr_exn : string;
  cr_restarts : int; (* restarts this supervisor has consumed, incl. this one *)
  cr_action : crash_action;
}

(* Process-wide crash log, decision-log style: a bounded ring so a
   crash loop cannot grow memory, newest-first on read. Every crash in
   the process lands here whatever supervisor caught it — post-mortems
   want one timeline, not one per domain. *)
let log_capacity = 256

let () =
  Aeq_race.declare "supervisor.crash_ring" (Aeq_race.Lock "supervisor.log.lock");
  Aeq_race.declare "supervisor.state" (Aeq_race.Lock "supervisor.lock")

let log_lock = Aeq_race.Lock.create "supervisor.log.lock"

let log_loc = Aeq_race.locate "supervisor.crash_ring"

let log_ring : crash option array = Array.make log_capacity None

let log_next = ref 0

let log_dropped = ref 0

let log_crash c =
  Aeq_race.Lock.with_ log_lock (fun () ->
      Aeq_race.write ~site:"supervisor.log_crash" log_loc;
      if Array.length log_ring > 0 then begin
        if log_ring.(!log_next mod log_capacity) <> None then incr log_dropped;
        log_ring.(!log_next mod log_capacity) <- Some c;
        incr log_next
      end)

let crash_log () =
  Aeq_race.Lock.with_ log_lock (fun () ->
      Aeq_race.read ~site:"supervisor.crash_log" log_loc;
      let out = ref [] in
      for i = 0 to log_capacity - 1 do
        (* oldest → newest, then reversed: newest-first like Decision_log *)
        match log_ring.((!log_next + i) mod log_capacity) with
        | Some c -> out := c :: !out
        | None -> ()
      done;
      !out)

let crash_log_dropped () =
  Aeq_race.Lock.with_ log_lock (fun () ->
      Aeq_race.read ~site:"supervisor.crash_log_dropped" log_loc;
      !log_dropped)

let clear_crash_log () =
  Aeq_race.Lock.with_ log_lock (fun () ->
      Aeq_race.write ~site:"supervisor.clear_crash_log" log_loc;
      Array.fill log_ring 0 log_capacity None;
      log_next := 0;
      log_dropped := 0)

let obs_count name ~help ~domain =
  if Obs.Control.enabled () then
    Obs.Metrics.inc
      (Obs.Metrics.counter name ~help ~labels:[ ("domain", domain) ])

type t = {
  sv_name : string;
  sv_policy : policy;
  sv_body : unit -> unit;
  sv_on_crash : exn -> unit;
  sv_on_give_up : exn -> unit;
  sv_lock : Aeq_race.Lock.t;
  sv_loc : Aeq_race.location;
  mutable sv_state : state;
  mutable sv_crash_times : float list; (* newest-first, pruned to the window *)
  mutable sv_crashes : int;
  mutable sv_restarts : int;
  mutable sv_stop : bool;
  sv_waiter : Waiter.t;
  mutable sv_domain : unit Domain.t option;
}

let validate_policy p =
  if p.max_restarts < 0 then invalid_arg "Supervisor: max_restarts must be >= 0";
  if p.window_seconds <= 0.0 then
    invalid_arg "Supervisor: window_seconds must be > 0";
  if p.backoff_base < 0.0 || p.backoff_max < 0.0 then
    invalid_arg "Supervisor: backoff must be >= 0"

let create ?(policy = default_policy) ~name ?(on_crash = fun _ -> ())
    ?(on_give_up = fun _ -> ()) body =
  validate_policy policy;
  {
    sv_name = name;
    sv_policy = policy;
    sv_body = body;
    sv_on_crash = on_crash;
    sv_on_give_up = on_give_up;
    sv_lock = Aeq_race.Lock.create "supervisor.lock";
    sv_loc = Aeq_race.locate "supervisor.state";
    sv_state = Running;
    sv_crash_times = [];
    sv_crashes = 0;
    sv_restarts = 0;
    sv_stop = false;
    sv_waiter = Waiter.create ();
    sv_domain = None;
  }

let locked t f = Aeq_race.Lock.with_ t.sv_lock f

let state t =
  locked t (fun () ->
      Aeq_race.read ~site:"supervisor.state" t.sv_loc;
      t.sv_state)

let crashes t =
  locked t (fun () ->
      Aeq_race.read ~site:"supervisor.crashes" t.sv_loc;
      t.sv_crashes)

let restarts t =
  locked t (fun () ->
      Aeq_race.read ~site:"supervisor.restarts" t.sv_loc;
      t.sv_restarts)

let name t = t.sv_name

let health_reason t =
  match state t with
  | Running | Stopped -> None
  | Backing_off ->
    Some (Printf.sprintf "%s crashed; restarting under backoff" t.sv_name)
  | Failed ->
    Some (Printf.sprintf "%s failed: restart budget exhausted" t.sv_name)

(* Backoff sleep that stays responsive: a [stop] wakes the waiter, and
   under the deterministic simulator the wait spins through the
   scheduler's yield point instead of blocking the token. *)
let backoff_wait t seconds =
  let deadline = Clock.now () +. seconds in
  let rec go () =
    if
      locked t (fun () ->
          Aeq_race.read ~site:"supervisor.backoff" t.sv_loc;
          t.sv_stop)
    then ()
    else
      let remaining = deadline -. Clock.now () in
      if remaining <= 0.0 then ()
      else if Yieldpoint.enabled () then begin
        Yieldpoint.yield "supervisor.backoff";
        go ()
      end
      else begin
        ignore (Waiter.wait t.sv_waiter remaining);
        go ()
      end
  in
  go ()

(* One crash: record, reclaim, and decide restart vs give-up. Returns
   [true] when the body should run again. Runs in the crashed domain
   itself, after the body's stack has fully unwound — so [on_crash]
   may take the owner's locks (the crash released them on the way up;
   critical sections are [Fun.protect]ed throughout the engine). *)
let handle_crash t exn =
  Yieldpoint.yield "supervisor.crash";
  obs_count "aeq_supervisor_crashes_total"
    ~help:"Unstructured exceptions caught by a domain supervisor barrier."
    ~domain:t.sv_name;
  (* reclaim must never kill the supervisor: a buggy reclaim hook
     downgrades to "crash recorded, nothing reclaimed" *)
  (try t.sv_on_crash exn with _ -> ());
  let now = Clock.now () in
  let restart, n_restarts =
    locked t (fun () ->
        Aeq_race.write ~site:"supervisor.handle_crash" t.sv_loc;
        t.sv_crashes <- t.sv_crashes + 1;
        let horizon = now -. t.sv_policy.window_seconds in
        t.sv_crash_times <-
          now :: List.filter (fun at -> at >= horizon) t.sv_crash_times;
        if t.sv_stop then begin
          t.sv_state <- Stopped;
          (false, t.sv_restarts)
        end
        else if List.length t.sv_crash_times > t.sv_policy.max_restarts then begin
          t.sv_state <- Failed;
          (false, t.sv_restarts)
        end
        else begin
          t.sv_state <- Backing_off;
          t.sv_restarts <- t.sv_restarts + 1;
          (true, t.sv_restarts)
        end)
  in
  let action =
    if restart then Restarted
    else
      match state t with
      | Failed -> Gave_up
      | _ -> Restarted (* stop raced the crash: log it as handled *)
  in
  log_crash
    {
      cr_at = now;
      cr_domain = t.sv_name;
      cr_exn = Printexc.to_string exn;
      cr_restarts = n_restarts;
      cr_action = action;
    };
  if restart then begin
    obs_count "aeq_supervisor_restarts_total"
      ~help:"Supervised domain restarts after a crash." ~domain:t.sv_name;
    (* exponential backoff: 1 restart consumed → base, then doubling *)
    let n = Stdlib.max 0 (List.length t.sv_crash_times - 1) in
    let pause =
      Stdlib.min t.sv_policy.backoff_max
        (t.sv_policy.backoff_base *. (2.0 ** float_of_int n))
    in
    backoff_wait t pause;
    let still_go =
      locked t (fun () ->
          Aeq_race.write ~site:"supervisor.post_backoff" t.sv_loc;
          if t.sv_stop then begin
            t.sv_state <- Stopped;
            false
          end
          else begin
            t.sv_state <- Running;
            true
          end)
    in
    if still_go then Yieldpoint.yield "supervisor.restart";
    still_go
  end
  else begin
    if action = Gave_up then begin
      obs_count "aeq_supervisor_gave_up_total"
        ~help:"Supervisors that exhausted their restart budget." ~domain:t.sv_name;
      try t.sv_on_give_up exn with _ -> ()
    end;
    false
  end

(* The barrier + restart loop. [run] executes it inline in the calling
   domain — what {!start} spawns, and what simulator tasks call
   directly so every supervised step stays on the sim scheduler. *)
let run t =
  let rec loop () =
    match t.sv_body () with
    | () ->
      locked t (fun () ->
          Aeq_race.write ~site:"supervisor.body_done" t.sv_loc;
          t.sv_state <- Stopped)
    | exception exn -> if handle_crash t exn then loop ()
  in
  loop ()

let start t =
  locked t (fun () ->
      Aeq_race.write ~site:"supervisor.start" t.sv_loc;
      if t.sv_domain <> None then invalid_arg "Supervisor.start: already started";
      t.sv_domain <- Some (Aeq_race.spawn (fun () -> run t)))

let spawn ?policy ~name ?on_crash ?on_give_up body =
  let t = create ?policy ~name ?on_crash ?on_give_up body in
  start t;
  t

(* Ask the loop to exit: no restart after the current body run (the
   owner separately makes the body itself return — its stop flag), and
   any in-progress backoff is cut short. *)
let stop t =
  locked t (fun () ->
      Aeq_race.write ~site:"supervisor.stop" t.sv_loc;
      t.sv_stop <- true);
  Waiter.wake t.sv_waiter

let join t =
  let d =
    locked t (fun () ->
        Aeq_race.write ~site:"supervisor.join" t.sv_loc;
        let d = t.sv_domain in
        t.sv_domain <- None;
        d)
  in
  (match d with Some d -> Aeq_race.join d | None -> ());
  Waiter.dispose t.sv_waiter

module CM = Aeq_backend.Cost_model

type variant =
  | V_bytecode of Aeq_vm.Bytecode.t
  | V_compiled of CM.mode * Aeq_backend.Closure_compile.t

type compiled = {
  func : Func.t;
  bytecode : Aeq_vm.Bytecode.t;
  n_instrs : int;
  bc_translate_seconds : float;
  unopt : Aeq_backend.Closure_compile.t option Atomic.t;
  opt : Aeq_backend.Closure_compile.t option Atomic.t;
  compile_seconds : float Atomic.t;
  unopt_blacklisted : bool Atomic.t;
  opt_blacklisted : bool Atomic.t;
}

type t = {
  c : compiled;
  cost_model : CM.t;
  symbols : Aeq_vm.Rt_fn.resolver;
  mem : Aeq_mem.Arena.t;
  current : variant Atomic.t;
  compiling : bool Atomic.t;
}

let compile_worker ~cost_model ~symbols func =
  let bytecode, bc_seconds =
    Aeq_backend.Compiler.translate_bytecode ~cost_model ~symbols func
  in
  {
    func;
    bytecode;
    n_instrs = Func.n_instrs func;
    bc_translate_seconds = bc_seconds;
    unopt = Atomic.make None;
    opt = Atomic.make None;
    compile_seconds = Atomic.make 0.0;
    unopt_blacklisted = Atomic.make false;
    opt_blacklisted = Atomic.make false;
  }

let bind c ~cost_model ~symbols ~mem =
  {
    c;
    cost_model;
    symbols;
    mem;
    current = Atomic.make (V_bytecode c.bytecode);
    compiling = Atomic.make false;
  }

let create ~cost_model ~symbols ~mem func =
  bind (compile_worker ~cost_model ~symbols func) ~cost_model ~symbols ~mem

let compiled_part t = t.c

(* The best variant the artifact has cached: what a fresh execution of
   the prepared statement can promote to for free. (The installed
   variant is per-binding now — concurrent executions of one cached
   plan each adapt independently.) *)
let mode_of_compiled c =
  if Atomic.get c.opt <> None then CM.Opt
  else if Atomic.get c.unopt <> None then CM.Unopt
  else CM.Bytecode

let mode t =
  match Atomic.get t.current with
  | V_bytecode _ -> CM.Bytecode
  | V_compiled (m, _) -> m

let compiling t = t.compiling

let n_instrs t = t.c.n_instrs

let total_compile_seconds c = Atomic.get c.compile_seconds

let install t v = Atomic.set t.current v

let ensure_regs regs n =
  if Bytes.length !regs < n then regs := Bytes.make (Stdlib.max n (2 * Bytes.length !regs)) '\000'

let run_morsel t ~regs ~args =
  match Atomic.get t.current with
  | V_bytecode bc ->
    ensure_regs regs bc.Aeq_vm.Bytecode.n_reg_bytes;
    ignore (Aeq_vm.Interp.run bc t.mem ~regs:!regs ~args ())
  | V_compiled (_, c) ->
    ensure_regs regs (Aeq_backend.Closure_compile.n_reg_bytes c);
    ignore (Aeq_backend.Closure_compile.run c ~regs:!regs ~args ())

let rec atomic_add_float a d =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. d)) then atomic_add_float a d

let blacklist_flag c = function
  | CM.Unopt -> Some c.unopt_blacklisted
  | CM.Opt -> Some c.opt_blacklisted
  | CM.Bytecode -> None

let blacklisted_compiled c mode =
  match blacklist_flag c mode with Some f -> Atomic.get f | None -> false

let blacklisted t mode = blacklisted_compiled t.c mode

let blacklist t mode =
  match blacklist_flag t.c mode with Some f -> Atomic.set f true | None -> ()

let promote t ~mode:m =
  if m = mode t then 0.0
  else
    match m with
    | CM.Bytecode ->
      install t (V_bytecode t.c.bytecode);
      0.0
    | CM.Unopt | CM.Opt -> (
      if blacklisted t m then
        Query_error.raise_error
          (Query_error.Compile_failed (m, "blacklisted after an earlier failure"));
      let slot = match m with CM.Unopt -> t.c.unopt | _ -> t.c.opt in
      match Atomic.get slot with
      | Some exec ->
        (* prepared-statement fast path: the variant survived an
           earlier execution, switching is a single store. The closure
           record behind [exec] was built by whichever domain won the
           compile race — consume its publication edge. *)
        Aeq_race.consume ();
        install t (V_compiled (m, exec));
        0.0
      | None ->
        let compiled =
          try
            (* literal site strings, one per branch: the failpoint
               catalog lint cross-checks every [hit] against
               [Failpoints.builtin_sites] and can't see through a
               mode-to-string helper *)
            (match m with
            | CM.Unopt -> Aeq_util.Failpoints.hit "compile.unopt"
            | _ -> Aeq_util.Failpoints.hit "compile.opt");
            match m with
            | CM.Unopt ->
              (* the bytecode program is already translated; closure-
                 compile it directly instead of re-walking the IR *)
              Aeq_backend.Compiler.compile_unopt_of_bytecode ~cost_model:t.cost_model
                ~mem:t.mem ~n_instrs:t.c.n_instrs t.c.bytecode
            | _ ->
              Aeq_backend.Compiler.compile ~cost_model:t.cost_model ~symbols:t.symbols
                ~mem:t.mem ~mode:m t.c.func
          with e ->
            (* a failed compilation is never retried: the mode is dead
               for the lifetime of the compiled artifact (and thus of
               the prepared statement caching it) *)
            blacklist t m;
            raise e
        in
        (* another execution may have won the compile race; last store
           wins — both artifacts are valid, one is dropped *)
        Aeq_race.publish ();
        Atomic.set slot (Some compiled.Aeq_backend.Compiler.exec);
        install t (V_compiled (m, compiled.Aeq_backend.Compiler.exec));
        atomic_add_float t.c.compile_seconds compiled.Aeq_backend.Compiler.compile_seconds;
        compiled.Aeq_backend.Compiler.compile_seconds)

(** The adaptive controller: Fig. 7's [extrapolatePipelineDurations].

    After every morsel (and no earlier than 1 ms into the pipeline, to
    let the rate estimates stabilise), one thread evaluates the three
    options for the pipeline's worker function:

    + keep the current execution mode: [t0 = n / r0 / w];
    + compile unoptimized: [t1 = c1 + max(n - (w-1)·r0·c1, 0) / r1 / w];
    + compile optimized:   [t2 = c2 + max(n - (w-1)·r0·c2, 0) / r2 / w]

    where [n] is the remaining tuple count, [w] the worker count, [r0]
    the measured rate, [r1/r2 = r0 × speedup(candidate) /
    speedup(current)] (the measured rate is in the *current* mode's
    units, so candidate speedups — which the cost model states
    relative to bytecode — must be rescaled to relative gains before
    applying them), and [c1/c2] the modelled compile latencies for
    the function's instruction count. The
    [(w-1)·r0·c] term accounts for tuples the other threads process
    while one thread compiles. Evaluation is guarded so only one
    thread runs it ("the extrapolation is only performed by a single
    worker thread"). *)

type decision = Do_nothing | Compile of Aeq_backend.Cost_model.mode

type candidate = {
  cand_mode : Aeq_backend.Cost_model.mode;
  cand_seconds : float;
      (** extrapolated total remaining-pipeline seconds if this mode
          were compiled now; [infinity] when blacklisted *)
  cand_blacklisted : bool;
}

type eval = {
  ev_stay_seconds : float;
      (** projected remaining seconds at the current mode's measured
          rate; [infinity] when no rate sample exists yet *)
  ev_candidates : candidate list;
  ev_decision : decision;
}

type t

val create :
  ?pipeline:int ->
  model:Aeq_backend.Cost_model.t ->
  handle:Handle.t ->
  progress:Progress.t ->
  n_threads:int ->
  unit ->
  t
(** [pipeline] (default 0) tags this controller's entries in the
    observability decision log ({!Aeq_obs.Decision_log}). *)

val evaluate :
  ?allow_unopt:bool ->
  ?allow_opt:bool ->
  model:Aeq_backend.Cost_model.t ->
  current_mode:Aeq_backend.Cost_model.mode ->
  n_instrs:int ->
  remaining:int ->
  rate:float ->
  n_threads:int ->
  unit ->
  eval
(** The pure extrapolation with its full working shown: the
    stay-the-course projection and every candidate's projected total,
    alongside the decision. This is what the decision log records. *)

val extrapolate :
  ?allow_unopt:bool ->
  ?allow_opt:bool ->
  model:Aeq_backend.Cost_model.t ->
  current_mode:Aeq_backend.Cost_model.mode ->
  n_instrs:int ->
  remaining:int ->
  rate:float ->
  n_threads:int ->
  unit ->
  decision
(** Pure decision function (unit-testable). [allow_unopt] /
    [allow_opt] (default [true]) exclude blacklisted candidates — a
    mode whose compilation failed is priced at infinity and therefore
    never chosen again. *)

val maybe_decide : t -> decision
(** Thread-safe; returns [Do_nothing] unless this caller won the
    evaluation slot and an upgrade is worthwhile. Marks the handle as
    compiling when it returns [Compile _] — the caller must then run
    {!Handle.promote} and {!finish_compile}. *)

val finish_compile : t -> unit
(** Reinstates evaluation and resets the rate samples. *)

val min_delay_seconds : float
(** First-evaluation delay (1 ms). *)

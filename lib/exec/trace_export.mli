(** Chrome trace-event export: the paper's Fig. 14 timeline as a
    [chrome://tracing] / Perfetto document instead of ASCII lanes.

    Merges three sources onto one timeline:
    - the execution {!Trace} (morsel intervals and compile bursts, one
      lane per worker thread, pid 0);
    - the {!Aeq_obs.Span} lifecycle spans (parse → plan → codegen →
      optimize → translate → compile → execute, one lane per domain,
      pid 1);
    - the {!Aeq_obs.Decision_log} (one instant event per adaptive
      controller evaluation, with the extrapolated totals in [args]).

    All timestamps are rebased to the earliest event so the document
    starts at t=0. *)

val chrome_events : ?trace:Trace.t -> unit -> Aeq_obs.Chrome_trace.event list
(** The merged event list (spans and decisions are read from the
    global observability buffers). *)

val chrome_json : ?trace:Trace.t -> unit -> string
(** {!chrome_events} rendered as a complete JSON document. *)

val write_file : ?trace:Trace.t -> string -> unit
(** [write_file path] — {!chrome_json} to [path]. *)

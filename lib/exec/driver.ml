module A = Aeq_mem.Arena
module P = Aeq_plan.Physical
module CM = Aeq_backend.Cost_model
module Table = Aeq_storage.Table
module Dtype = Aeq_storage.Dtype

type mode = Bytecode | Unopt | Opt | Adaptive

let mode_name = function
  | Bytecode -> "bytecode"
  | Unopt -> "unoptimized"
  | Opt -> "optimized"
  | Adaptive -> "adaptive"

type stats = {
  codegen_seconds : float;
  bc_seconds : float;
  compile_seconds : float;
  exec_seconds : float;
  total_seconds : float;
  rows_out : int;
  final_modes : string list;
  prepared_reuse : bool;
  compile_failures : int;
}

type result = {
  names : string list;
  dtypes : Dtype.t list;
  rows : int64 array list;
  stats : stats;
  trace : Trace.t option;
  final_cm_modes : CM.mode list;
}

type prepared = {
  pr_catalog : Aeq_storage.Catalog.t;
  pr_plan : P.t;
  pr_layout : P.layout;
  pr_cost_model : CM.t;
  pr_n_threads : int;
  pr_symbols : Aeq_vm.Rt_fn.resolver;
  pr_handles : Handle.compiled array;
  pr_codegen_seconds : float;
  pr_bc_seconds : float;
  pr_executions : int Atomic.t;
      (* read by cache bookkeeping on other threads
         (Engine.cached_executions) while executions bump it *)
}

let prepared_executions p = Atomic.get p.pr_executions

let prepared_modes p = Array.to_list (Array.map Handle.mode_of_compiled p.pr_handles)

let cm_mode_name = CM.mode_name

(* dynamically growing morsel size: small at first for dense rate
   samples, larger later to cut scheduling overhead *)
let morsel_size ~processed ~n_threads =
  let grow = processed / (8 * n_threads) in
  Stdlib.min 16384 (Stdlib.max 512 grow)

(* Stat accumulators are bumped from worker domains; a plain [float
   ref] would be a data race under the multicore memory model. *)
let rec atomic_add_float a d =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. d)) then atomic_add_float a d

let prepare ?(cost_model = CM.default) catalog plan ~n_threads =
  let arena = Aeq_storage.Catalog.arena catalog in
  let n_threads = Stdlib.max 1 n_threads in
  (* The fallback context for the resolver: per-execution contexts are
     installed domain-locally by pipeline workers, so the compiled
     artifacts themselves are execution-independent and cacheable. *)
  let fallback_ctx =
    Aeq_rt.Context.create ~arena ~dict:(Aeq_storage.Catalog.dict catalog) ~n_threads ()
  in
  let symbols = Aeq_rt.Symbols.resolver fallback_ctx in
  let layout = P.layout plan in
  let workers, codegen_seconds =
    Aeq_util.Clock.time_it (fun () ->
        Aeq_obs.Span.with_span "codegen" (fun () ->
            Aeq_codegen.Codegen.all_workers plan layout))
  in
  let handles =
    (* per-worker "translate" spans come from Compiler.translate_bytecode *)
    Array.of_list (List.map (Handle.compile_worker ~cost_model ~symbols) workers)
  in
  let bc_seconds =
    Array.fold_left (fun acc c -> acc +. c.Handle.bc_translate_seconds) 0.0 handles
  in
  Aeq_obs.Metrics.observe
    (Aeq_obs.Metrics.histogram "aeq_codegen_seconds"
       ~help:"IR code generation time per prepared statement")
    codegen_seconds;
  {
    pr_catalog = catalog;
    pr_plan = plan;
    pr_layout = layout;
    pr_cost_model = cost_model;
    pr_n_threads = n_threads;
    pr_symbols = symbols;
    pr_handles = handles;
    pr_codegen_seconds = codegen_seconds;
    pr_bc_seconds = bc_seconds;
    pr_executions = Atomic.make 0;
  }

let error_of_exn = function
  | Query_error.Error e -> e
  | Trap.Error m -> Query_error.Trap m
  | A.Scratch_limit_exceeded { limit_bytes; resident_bytes; _ } ->
    (* the global scratch cap, surfaced with the same structured error
       as the per-query budget: callers see one memory-exhaustion
       contract whichever limit tripped *)
    Query_error.Memory_budget_exceeded
      { budget_bytes = limit_bytes; used_bytes = resident_bytes }
  | Aeq_util.Failpoints.Injected site -> Query_error.Trap ("injected fault at " ^ site)
  | e -> Query_error.Trap (Printexc.to_string e)

(* rows small enough that pool wakeups cost more than they buy *)
let inline_threshold = 512

let execute_prepared ?(collect_trace = false) ?initial_modes ?timeout_seconds ?cancel
    ?memory_budget_bytes ?(on_compile_failure = `Degrade) p ~mode ~pool =
  let t_start = Aeq_util.Clock.now () in
  let catalog = p.pr_catalog and plan = p.pr_plan and layout = p.pr_layout in
  let cost_model = p.pr_cost_model in
  let n_threads = Stdlib.min (Pool.n_threads pool) p.pr_n_threads in
  let arena = Aeq_storage.Catalog.arena catalog in
  (* Everything this execution allocates — hash tables, aggregation
     state, output rows, the state area — goes into its own scratch
     lease, released on every exit path. Concurrent executions (even
     of the same cached plan) therefore never share mutable arena
     state; the shared base chunks (loaded columns) are read-only. *)
  let lease =
    (* the [arena.lease] failpoint fires before the lease exists, so an
       injected fault here has nothing to leak — but it must still
       surface as a structured error, not a raw exception *)
    try A.lease arena
    with Aeq_util.Failpoints.Injected site ->
      Query_error.raise_error (Query_error.Trap ("injected fault at " ^ site))
  in
  (* Zero-width leak window: every line from here on runs inside the
     [Fun.protect] at the bottom whose finaliser releases the lease, so
     no exception — injected or real — can strand the lease's chunks. *)
  let guarded () =
  let deadline = Option.map (fun s -> t_start +. s) timeout_seconds in
  (* --- query guardrails --------------------------------------------- *)
  (* The first error (worker trap, cancellation, deadline, budget
     breach) is recorded here; every worker polls it at each morsel
     boundary, so one failing domain stops the others promptly instead
     of letting them drain the remaining morsels. *)
  let failed : Query_error.t option Atomic.t = Atomic.make None in
  let fail e = ignore (Atomic.compare_and_set failed None (Some e)) in
  let check_guards () =
    (match Atomic.get failed with
    | Some _ -> ()
    | None -> (
      (match cancel with
      | Some c when Cancel.cancelled c -> fail Query_error.Cancelled
      | _ -> ());
      (match deadline with
      | Some d when Aeq_util.Clock.now () > d ->
        fail (Query_error.Timeout (Option.get timeout_seconds))
      | _ -> ());
      match memory_budget_bytes with
      | Some b when A.lease_used lease > b ->
        fail
          (Query_error.Memory_budget_exceeded
             { budget_bytes = b; used_bytes = A.lease_used lease })
      | _ -> ()));
    Atomic.get failed <> None
  in
  let raise_if_failed () =
    if check_guards () then
      match Atomic.get failed with
      | Some e -> Query_error.raise_error e
      | None -> ()
  in
  let compile_failures = Atomic.make 0 in
  let trace = if collect_trace then Some (Trace.create ()) else None in
  let record_compile_failure ~pipeline m =
    Atomic.incr compile_failures;
    Aeq_obs.Metrics.inc
      (Aeq_obs.Metrics.counter "aeq_compile_failures_total"
         ~help:"Failed machine-code promotions (degraded or blacklisted)"
         ~labels:[ ("mode", cm_mode_name m) ]);
    match trace with
    | Some tr ->
      let t = Aeq_util.Clock.now () in
      Trace.record tr ~pipeline ~tid:0 ~t0:t ~t1:t (Trace.Ev_compile_failed m)
    | None -> ()
  in
  let record_compile ~pipeline ~t0 ~t1 m =
    match trace with
    | Some tr when t1 > t0 -> Trace.record tr ~pipeline ~tid:0 ~t0 ~t1 (Trace.Ev_compile m)
    | _ -> ()
  in
  (* per-morsel instrumentation: pre-registered so the hot loop pays
     one atomic bump per morsel — and nothing at all (a single branch)
     when observability is disabled *)
  let obs_on = Aeq_obs.Control.enabled () in
  let morsel_counter =
    if not obs_on then [||]
    else
      Array.map
        (fun m ->
          Aeq_obs.Metrics.counter "aeq_morsels_total"
            ~help:"Morsels executed, by the mode they ran in"
            ~labels:[ ("mode", cm_mode_name m) ])
        [| CM.Bytecode; CM.Unopt; CM.Opt |]
  in
  let morsel_hist =
    if not obs_on then None
    else
      Some
        (Aeq_obs.Metrics.histogram "aeq_morsel_seconds"
           ~help:"Wall time per morsel across all worker domains")
  in
  let mode_index = function CM.Bytecode -> 0 | CM.Unopt -> 1 | CM.Opt -> 2 in
  let body () =
    (* per-execution context: fresh registries (ids issued in planning
       order) and per-worker allocators drawing from this execution's
       lease *)
    let ctx =
      Aeq_rt.Context.create ~lease ~arena ~dict:(Aeq_storage.Catalog.dict catalog)
        ~n_threads ()
    in
    let handles =
      Array.map
        (fun c -> Handle.bind c ~cost_model ~symbols:p.pr_symbols ~mem:arena)
        p.pr_handles
    in
    (* codegen and bytecode translation were paid by [prepare]; account
       them to the first execution only *)
    let first_execution = Atomic.get p.pr_executions = 0 in
    let codegen_seconds = if first_execution then p.pr_codegen_seconds else 0.0 in
    let bc_seconds = if first_execution then p.pr_bc_seconds else 0.0 in
    (* --- runtime objects (ids match planning order) ------------------ *)
    Array.iter
      (fun spec ->
        ignore
          (Aeq_rt.Context.register_ht ctx
             (Aeq_rt.Hash_table.create arena ~expected_entries:spec.P.ht_expected
                ~payload_bytes:spec.P.ht_payload_bytes)))
      plan.P.pl_hts;
    (match plan.P.pl_agg with
    | Some cfg ->
      ignore
        (Aeq_rt.Context.register_agg ctx
           (Aeq_rt.Agg.create arena ~n_threads ~key_arity:cfg.P.agg_key_arity
              ~accs:(List.map fst cfg.P.agg_accs)))
    | None -> ());
    let out =
      Aeq_rt.Output.create arena ~n_threads ~row_bytes:plan.P.pl_out.P.out_row_bytes
    in
    ignore (Aeq_rt.Context.register_out ctx out);
    Array.iter (fun bm -> ignore (Aeq_rt.Context.register_pred ctx bm)) plan.P.pl_preds;
    (* --- state area --------------------------------------------------- *)
    let setup_alloc = Aeq_rt.Context.allocator ctx ~tid:0 in
    let state = A.alloc setup_alloc (8 * Stdlib.max 1 (P.n_slots layout)) in
    Array.iteri
      (fun tref (tbl, _) ->
        Array.iteri
          (fun col (c : Table.column) ->
            A.set_i64 arena
              (state + (8 * P.slot_of_col layout ~tref ~col))
              (Int64.of_int c.Table.data))
          tbl.Table.columns)
      plan.P.pl_trefs;
    (* --- install the requested per-pipeline variants ------------------ *)
    let compile_seconds = Atomic.make 0.0 in
    (* A failed static promotion degrades to the handle's current mode
       (bytecode is always available) unless the caller asked to
       [`Fail]; either way the mode is blacklisted and attempted at
       most once per prepared statement. *)
    let static_promote ~pipeline h m =
      let degrade detail =
        match on_compile_failure with
        | `Fail -> Query_error.raise_error (Query_error.Compile_failed (m, detail))
        | `Degrade -> record_compile_failure ~pipeline m
      in
      if Handle.blacklisted h m then degrade "blacklisted after an earlier failure"
      else begin
        let c0 = Aeq_util.Clock.now () in
        match Handle.promote h ~mode:m with
        | dt ->
          record_compile ~pipeline ~t0:c0 ~t1:(Aeq_util.Clock.now ()) m;
          atomic_add_float compile_seconds dt
        | exception e when Aeq_util.Failpoints.is_crash e -> raise e
        | exception e -> degrade (Printexc.to_string e)
      end
    in
    (match mode with
    | Bytecode -> ()
    | Unopt -> Array.iteri (fun i h -> static_promote ~pipeline:i h CM.Unopt) handles
    | Opt -> Array.iteri (fun i h -> static_promote ~pipeline:i h CM.Opt) handles
    | Adaptive -> ());
    (* plan-cache warm start (paper Sec. VI): pipelines that ended
       compiled in an earlier execution of this plan start compiled.
       With a prepared statement the cached variant makes this free.
       Warm starting is opportunistic — a failure here degrades to
       bytecode regardless of [on_compile_failure]. *)
    (match (mode, initial_modes) with
    | Adaptive, Some modes ->
      List.iteri
        (fun i m ->
          match m with
          | CM.Bytecode -> ()
          | CM.Unopt | CM.Opt ->
            if i < Array.length handles && not (Handle.blacklisted handles.(i) m) then (
              match Handle.promote handles.(i) ~mode:m with
              | dt -> atomic_add_float compile_seconds dt
              | exception e when Aeq_util.Failpoints.is_crash e -> raise e
              | exception _ -> record_compile_failure ~pipeline:i m))
        modes
    | _ -> ());
    (* --- pipelines ----------------------------------------------------- *)
    let exec_seconds = Atomic.make 0.0 in
    List.iteri
      (fun pi (p : P.pipeline) ->
        raise_if_failed ();
        let handle = handles.(pi) in
        let total =
          match p.P.p_source with
          | P.Src_scan { tref } -> (fst plan.P.pl_trefs.(tref)).Table.n_rows
          | P.Src_agg_scan { agg } ->
            (* pipeline barrier: merge thread-local groups and expose
               them as a scannable table *)
            let a = ctx.Aeq_rt.Context.aggs.(agg) in
            Aeq_rt.Agg.merge a;
            let n, cols = Aeq_rt.Agg.materialize a ~allocator:setup_alloc in
            Array.iteri
              (fun k col ->
                A.set_i64 arena
                  (state + (8 * P.slot_of_agg_col layout k))
                  (Int64.of_int col))
              cols;
            n
        in
        let progress = Progress.create ~total_rows:total ~n_threads in
        let controller =
          match mode with
          | Adaptive ->
            Some (Adaptive.create ~pipeline:pi ~model:cost_model ~handle ~progress ~n_threads ())
          | Bytecode | Unopt | Opt -> None
        in
        let next = Atomic.make 0 in
        let job ~tid =
          (* compiled code resolves runtime objects through the
             domain-current context; install ours for the duration *)
          Aeq_rt.Context.set_current ctx;
          Aeq_util.Yieldpoint.yield "driver.ctx_install";
          Fun.protect ~finally:Aeq_rt.Context.clear_current @@ fun () ->
          let regs = ref (Bytes.make 256 '\000') in
          let continue_ = ref true in
          while !continue_ do
            if check_guards () then continue_ := false
            else begin
              let size = morsel_size ~processed:(Progress.processed progress) ~n_threads in
              let b = Atomic.fetch_and_add next size in
              if b >= total then continue_ := false
              else begin
                let e = Stdlib.min (b + size) total in
                let t0 = Aeq_util.Clock.now () in
                match
                  Aeq_util.Failpoints.hit "driver.morsel";
                  Aeq_util.Yieldpoint.yield "driver.morsel";
                  Handle.run_morsel handle ~regs
                    ~args:
                      [|
                        Int64.of_int state; Int64.of_int b; Int64.of_int e;
                        Int64.of_int tid;
                      |]
                with
                | exception exn when Aeq_util.Failpoints.is_crash exn ->
                  (* a domain crash is not a query error: let it tear
                     through to the participant's supervision barrier
                     (Pool.run_participant re-raises it too) *)
                  raise exn
                | exception exn ->
                  (* first error wins; peers stop at their next
                     boundary via [check_guards] *)
                  fail (error_of_exn exn);
                  continue_ := false
                | () -> (
                  let t1 = Aeq_util.Clock.now () in
                  Progress.note_morsel progress ~tid ~rows:(e - b) ~seconds:(t1 -. t0);
                  if obs_on then begin
                    Aeq_obs.Metrics.inc
                      morsel_counter.(mode_index (Handle.mode handle));
                    match morsel_hist with
                    | Some h -> Aeq_obs.Metrics.observe h (t1 -. t0)
                    | None -> ()
                  end;
                  (match trace with
                  | Some tr ->
                    Trace.record tr ~pipeline:pi ~tid ~t0 ~t1
                      (Trace.Ev_morsel (Handle.mode handle))
                  | None -> ());
                  match controller with
                  | Some ctl -> (
                    match Adaptive.maybe_decide ctl with
                    | Adaptive.Do_nothing -> ()
                    | Adaptive.Compile m -> (
                      let c0 = Aeq_util.Clock.now () in
                      (* finish_compile must run even if promotion raises:
                         otherwise the handle stays marked compiling forever
                         and all future upgrades are disabled *)
                      match
                        Fun.protect
                          ~finally:(fun () -> Adaptive.finish_compile ctl)
                          (fun () -> Handle.promote handle ~mode:m)
                      with
                      | dt ->
                        let c1 = Aeq_util.Clock.now () in
                        (match trace with
                        | Some tr ->
                          Trace.record tr ~pipeline:pi ~tid ~t0:c0 ~t1:c1
                            (Trace.Ev_compile m)
                        | None -> ());
                        atomic_add_float compile_seconds dt
                      | exception e when Aeq_util.Failpoints.is_crash e ->
                        raise e
                      | exception _ ->
                        (* graceful degradation: [promote] blacklisted
                           the mode, so the controller will not ask
                           again; keep interpreting *)
                        record_compile_failure ~pipeline:pi m))
                  | None -> ())
              end
            end
          done
        in
        let (), dt =
          Aeq_util.Clock.time_it (fun () ->
              if total > 0 then
                Aeq_obs.Span.with_span ~pipeline:pi "execute" (fun () ->
                    (* tiny pipelines run inline: one morsel's worth of
                       rows is not worth waking pool domains for, and
                       under high query concurrency the wakeup storm is
                       pure overhead *)
                    if total <= inline_threshold || n_threads = 1 then job ~tid:0
                    else Pool.run ~max_tids:n_threads pool job))
        in
        atomic_add_float exec_seconds dt;
        raise_if_failed ())
      plan.P.pl_pipelines;
    let handle_list = Array.to_list handles in
    let final_modes = List.map (fun h -> cm_mode_name (Handle.mode h)) handle_list in
    (* --- collect, sort, limit ----------------------------------------- *)
    let n_cols = List.length plan.P.pl_out.P.out_names in
    let raw = Aeq_rt.Output.rows out in
    let rows =
      Array.to_list raw
      |> List.map (fun ptr -> Array.init n_cols (fun k -> A.get_i64 arena (ptr + (8 * k))))
    in
    let dtypes = plan.P.pl_out.P.out_dtypes in
    let dict = Aeq_storage.Catalog.dict catalog in
    let dtype_arr = Array.of_list dtypes in
    let compare_rows (a : int64 array) (b : int64 array) =
      let rec go = function
        | [] -> 0
        | (idx, desc) :: rest ->
          let c =
            match dtype_arr.(idx) with
            | Dtype.Str ->
              String.compare (Aeq_rt.Dict.decode dict a.(idx)) (Aeq_rt.Dict.decode dict b.(idx))
            | _ -> Int64.compare a.(idx) b.(idx)
          in
          if c <> 0 then if desc then -c else c else go rest
      in
      go plan.P.pl_order_by
    in
    let rows = if plan.P.pl_order_by = [] then rows else List.stable_sort compare_rows rows in
    let rows =
      match plan.P.pl_limit with
      | Some n -> List.filteri (fun i _ -> i < n) rows
      | None -> rows
    in
    Atomic.incr p.pr_executions;
    (* the up-front preparation cost belongs to the cold run's total *)
    let total_seconds =
      Aeq_util.Clock.now () -. t_start +. codegen_seconds +. bc_seconds
    in
    {
      names = plan.P.pl_out.P.out_names;
      dtypes;
      rows;
      final_cm_modes = List.map Handle.mode handle_list;
      stats =
        {
          codegen_seconds;
          bc_seconds;
          compile_seconds = Atomic.get compile_seconds;
          exec_seconds = Atomic.get exec_seconds;
          total_seconds;
          rows_out = List.length rows;
          final_modes;
          prepared_reuse = not first_execution;
          compile_failures = Atomic.get compile_failures;
        };
      trace;
    }
  in
  body ()
  in
  (* Guaranteed cleanup: whatever happens above, this execution's
     scratch lease goes back to the arena's free pool, so concurrent
     and future queries see the memory again and the cached prepared
     statement stays reusable. Failures surface as structured
     [Query_error]s. All output rows were copied out of the arena
     before this point. An injected [arena.release] fault is swallowed
     here: reclamation already ran (it is unconditional inside
     [release]) and the fault must not mask the query's own outcome. *)
  Fun.protect
    ~finally:(fun () ->
      try A.release lease with Aeq_util.Failpoints.Injected _ -> ())
    (fun () ->
      try guarded () with
      | Query_error.Error _ as e -> raise e
      | Trap.Error m -> Query_error.raise_error (Query_error.Trap m)
      | A.Scratch_limit_exceeded { limit_bytes; resident_bytes; _ } ->
        Query_error.raise_error
          (Query_error.Memory_budget_exceeded
             { budget_bytes = limit_bytes; used_bytes = resident_bytes })
      | Aeq_util.Failpoints.Injected site ->
        Query_error.raise_error (Query_error.Trap ("injected fault at " ^ site)))

let execute ?cost_model ?collect_trace ?initial_modes ?timeout_seconds ?cancel
    ?memory_budget_bytes ?on_compile_failure catalog plan ~mode ~pool =
  let p = prepare ?cost_model catalog plan ~n_threads:(Pool.n_threads pool) in
  execute_prepared ?collect_trace ?initial_modes ?timeout_seconds ?cancel
    ?memory_budget_bytes ?on_compile_failure p ~mode ~pool

let row_to_strings catalog dtypes row =
  List.mapi
    (fun i dt ->
      let v = row.(i) in
      match dt with
      | Dtype.Int -> Int64.to_string v
      | Dtype.Bool -> if Int64.equal v 0L then "false" else "true"
      | Dtype.Decimal ->
        Printf.sprintf "%Ld.%02Ld" (Int64.div v 100L) (Int64.rem (Int64.abs v) 100L)
      | Dtype.Date -> Printf.sprintf "%Ld" (Aeq_rt.Symbols.year_of_days v)
      | Dtype.Str -> Aeq_rt.Dict.decode (Aeq_storage.Catalog.dict catalog) v)
    dtypes

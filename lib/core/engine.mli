(** The public API of the adaptive query engine.

    An engine owns an in-memory database (catalog + arena), a
    persistent worker pool, and a compile-cost model. SQL queries run
    in one of four execution modes:
    - [Driver.Bytecode]: translate every pipeline to VM bytecode and
      interpret (lowest latency);
    - [Driver.Unopt] / [Driver.Opt]: compile every pipeline up front
      (single-threaded), then execute — the classical compiling engine;
    - [Driver.Adaptive]: start interpreting on all threads and let the
      runtime controller decide per pipeline whether and how far to
      compile (the paper's contribution).

    {[
      let engine = Engine.create ~n_threads:8 () in
      Engine.load_tpch engine ~scale_factor:0.01;
      let r = Engine.query engine ~mode:Aeq_exec.Driver.Adaptive
                "select count(*) from lineitem" in
      List.iter print_endline (Engine.render_rows engine r)
    ]} *)

type t

val create :
  ?n_threads:int ->
  ?cost_model:Aeq_backend.Cost_model.t ->
  ?chunk_size:int ->
  ?supervised:bool ->
  unit ->
  t
(** [n_threads] defaults to the machine's domain count (max 8);
    [cost_model] defaults to the paper-calibrated model with simulated
    LLVM-magnitude compile latencies (pass
    [Aeq_backend.Cost_model.off] for real latencies only).
    [supervised] (default [true]) runs every serving domain — pool
    workers, scheduler dispatchers, the watchdog — under a
    {!Aeq_exec.Supervisor} crash barrier with self-healing restarts;
    [false] reverts to bare domains (the supervision-overhead
    benchmark). *)

val load_tpch : ?seed:int64 -> t -> scale_factor:float -> unit

val set_scratch_limit : ?block_seconds:float -> t -> int option -> unit
(** Cap the arena's query-scratch residency (hash tables, aggregation
    state, output rows — not loaded tables). A chunk grab over the cap
    blocks up to [block_seconds] (default 0.05) for concurrent queries
    to release, then the query fails with a structured
    [Query_error.Memory_budget_exceeded]; it never crashes the engine
    or leaks the query's chunks. [None] (the default) removes the cap.
    The scheduler also sheds compilation while scratch residency sits
    above 90% of the cap (see [Scheduler]). *)

val catalog : t -> Aeq_storage.Catalog.t

val pool : t -> Aeq_exec.Pool.t

val n_threads : t -> int

val cost_model : t -> Aeq_backend.Cost_model.t

val plan : t -> string -> Aeq_plan.Physical.t

val explain : t -> string -> string

val query :
  ?mode:Aeq_exec.Driver.mode ->
  ?collect_trace:bool ->
  ?timeout_seconds:float ->
  ?cancel:Aeq_exec.Cancel.t ->
  ?memory_budget_bytes:int ->
  ?on_compile_failure:[ `Degrade | `Fail ] ->
  t ->
  string ->
  Aeq_exec.Driver.result
(** Plan + execute. [mode] defaults to [Adaptive].

    Thread-safe and concurrent: each execution runs over its own
    runtime context and a private arena lease, so any number of
    callers execute simultaneously — including re-executions of the
    same cached statement. Callers contend only on the plan-cache
    lookup; compiling a statement not yet cached is single-flighted
    (concurrent callers of the same new text wait for the one
    compilation, then all proceed on the cached plan). For serving
    many clients with admission control, fairness, deadlines and
    backpressure, use {!submit} / {!query_concurrent}.

    Guardrails (see {!Aeq_exec.Driver.execute_prepared} for the full
    contract): [timeout_seconds] and [cancel] stop the query at the
    next morsel boundary, [memory_budget_bytes] bounds its arena
    scratch, and [on_compile_failure] (default [`Degrade]) decides
    whether a failed up-front compilation degrades to bytecode or
    fails the query. Failures raise {!Aeq_exec.Query_error.Error}
    after guaranteed cleanup: the cached prepared statement, the
    arena and the worker pool all stay healthy, so the next query —
    including a cache-hit re-execution of the failing text — runs
    normally.

    Queries are cached by text as prepared statements: the physical
    plan, the generated worker IR, the translated bytecode, and every
    machine-code variant promoted during execution all survive, so a
    repeated query pays neither planning, codegen, translation nor
    recompilation (its [stats] report ~0 for those phases). On top of
    the compiled-artifact reuse, adaptive re-executions keep the
    paper's Section VI mode memory: each pipeline starts in the mode
    it converged to previously, so frequently-run queries end up fully
    compiled without ever paying an up-front compilation on a cold
    path. *)

val verify_query : t -> string -> (unit, string) result
(** Translation validation at the query level: run [sql] in every
    execution mode ([Bytecode], [Unopt], [Opt], [Adaptive]) and check
    that all agree with the bytecode interpreter — same column names
    and the same sorted bag of rows, or the same refusal to execute.
    [Error report] describes each diverging mode. Combine with
    [Pass_manager.set_verify_level] (or [AEQ_VERIFY=1]) to also run
    the SSA and bytecode verifiers on every artifact built along the
    way. *)

val submit :
  ?mode:Aeq_exec.Driver.mode ->
  ?priority:Aeq_exec.Scheduler.priority ->
  ?deadline_seconds:float ->
  ?cancel:Aeq_exec.Cancel.t ->
  t ->
  string ->
  Aeq_exec.Scheduler.ticket
(** Enqueue a query on the engine's scheduler (created lazily on first
    use) and return without waiting; await the ticket with
    {!Aeq_exec.Scheduler.await}. Unlike {!query}, which any number of
    callers may invoke but which serializes them on the execution
    core's lock with no queue bound, fairness or deadline, [submit]
    goes through admission control: a full queue rejects with
    {!Aeq_exec.Query_error.Overloaded}, overload degrades execution to
    bytecode-only, compile failures engine-wide can trip the circuit
    breaker, and deadline overruns are cancelled by the watchdog. See
    {!Aeq_exec.Scheduler} for the full contract. *)

val query_concurrent :
  ?mode:Aeq_exec.Driver.mode ->
  ?priority:Aeq_exec.Scheduler.priority ->
  ?deadline_seconds:float ->
  ?cancel:Aeq_exec.Cancel.t ->
  t ->
  string ->
  Aeq_exec.Scheduler.outcome
(** [submit] + await, with admission errors folded into the outcome —
    the blocking per-client call of a concurrent server loop. *)

val scheduler_stats : t -> Aeq_exec.Scheduler.stats
(** Serving-health counters (admitted/rejected/shed/retried, breaker
    state and trips, queue depth and waits).
    {!Aeq_exec.Scheduler.zero_stats} if no query was ever submitted. *)

val set_scheduler_config : t -> Aeq_exec.Scheduler.config -> unit
(** Configure admission control before the first {!submit} /
    {!query_concurrent}.
    @raise Invalid_argument once the scheduler exists. *)

val prepare : t -> string -> unit
(** Plan + compile the statement into the cache without executing it
    (a no-op if already cached). A later {!query} of the same text is
    a cache hit and starts executing immediately. *)

val prepared : t -> string -> bool
(** Is this statement text currently resident in the plan cache? The
    wire server's [Prepare] handler reports this to clients
    (a session-level prepared handle stays valid across an LRU
    eviction — re-executing simply re-prepares — but the flag tells
    clients whether the compile cost was already paid). *)

val set_plan_cache : t -> bool -> unit
(** Disable/enable the plan cache ([true] by default). *)

val set_plan_cache_capacity : t -> int -> unit
(** Bound the number of cached prepared statements (default 128,
    minimum 1). When full, the least-recently-used statement is
    evicted. *)

val cached_executions : t -> string -> int
(** How often the given query text has executed through the cache. *)

type cache_stats = { hits : int; misses : int; evictions : int; entries : int }

val cache_stats : t -> cache_stats
(** Plan-cache counters since engine creation. A [query] or [prepare]
    that finds the statement cached counts one hit; one that compiles
    it counts one miss. *)

val check : t -> string list
(** Plan-cache coherence: capacity respected, LRU stamps within the
    tick range, no text both cached and in-flight preparing, counters
    non-negative. Returns one message per violation (empty = coherent).
    Used as a quiescent-step invariant checker by the deterministic
    simulator ([Aeq_sim]). *)

val render_rows : t -> Aeq_exec.Driver.result -> string list
(** Result rows as tab-separated strings (dictionary decoded). *)

(** {1 Observability}

    The engine reports into the process-wide {!Aeq_obs} registry
    (metrics, lifecycle spans, adaptive decision log) when
    observability is enabled — [AEQ_OBS=1] in the environment, or
    [Aeq_obs.Control.set_enabled true] before the engine is created.
    When disabled, the per-morsel hot path pays a single branch. *)

val metrics : unit -> Aeq_obs.Metrics.sample list
(** Snapshot of the process-wide metrics registry (counters, gauges,
    histograms from every engine, scheduler and pass pipeline in the
    process). *)

val render_metrics : unit -> string
(** The registry in Prometheus text exposition format v0.0.4. *)

val dump_metrics : string -> unit
(** Write {!render_metrics} to a file (e.g. for a textfile-collector
    scrape). *)

val reset_stats : t -> unit
(** Start a fresh observation window: zero all registry counters and
    histograms (gauges keep their value — they describe current state),
    clear the span ring buffers and the decision log, zero this
    engine's plan-cache hit/miss/eviction counters, and zero the
    scheduler's serving counters if a scheduler is running. Cached
    prepared statements, breaker state and queued work are untouched —
    this resets measurement, not behavior. Intended for windowed
    scraping of long-running serves: scrape, reset, serve, scrape. *)

(** {1 Health, drain & self-healing}

    Serving domains run under {!Aeq_exec.Supervisor} barriers: a
    domain crash (an unstructured exception escaping a dispatcher,
    the watchdog, or a pool worker) is contained, its orphaned state
    reclaimed — the affected client gets a structured
    [Query_error.Worker_crashed] instead of a hung [await] — and the
    domain restarts under a backoff budget. The engine aggregates the
    supervisors into one health state. *)

type health =
  | Serving  (** all serving domains healthy *)
  | Degraded of string list
      (** one reason per domain currently crashed-and-backing-off or
          failed (restart budget exhausted) *)
  | Draining  (** {!drain} in progress: admission closed *)
  | Stopped  (** {!close} (or a finished {!drain}) *)

val health : t -> health

val health_name : health -> string
(** ["serving"] / ["degraded"] / ["draining"] / ["stopped"] — the
    [aeq_engine_health] gauge exports the same states as 0–3. *)

val drain : ?deadline_seconds:float -> ?flush:(unit -> unit) -> t -> bool
(** Graceful shutdown: stop admission (new {!query} / {!submit} /
    {!query_concurrent} calls raise or resolve
    [Query_error.Rejected "draining"]), wait up to [deadline_seconds]
    (default 30) for queued and in-flight queries to finish — past the
    deadline they are rejected/cancelled so no client hangs — then run
    [flush] (e.g. a final {!dump_metrics}) and {!close}. Returns
    [true] if quiescence was reached before the deadline. Idempotent
    in effect; the SIGTERM path of [aeq_cli]. *)

val draining : t -> bool

val close : t -> unit
(** Shut down: the scheduler first (queued queries complete with
    [Rejected], the in-flight one finishes), then the worker pool.
    Idempotent; queries on a closed engine raise [Invalid_argument]. *)

val closed : t -> bool

module Obs = Aeq_obs

type cache_entry = {
  ce_prepared : Aeq_exec.Driver.prepared;
  mutable ce_modes : Aeq_backend.Cost_model.mode list;
      (* pipeline modes at the end of the last adaptive execution *)
  mutable ce_last_used : int; (* LRU tick *)
}

type cache_stats = { hits : int; misses : int; evictions : int; entries : int }

let () =
  Aeq_race.declare "engine.plan_cache" (Aeq_race.Lock "engine.cache.lock");
  Aeq_race.declare "engine.scheduler_slot" (Aeq_race.Lock "engine.sched.lock");
  Aeq_race.declare "engine.draining" Aeq_race.Atomic

(* No execution lock: queries run concurrently over per-execution
   contexts and arena leases (the driver owns that isolation). The
   only serialized section is plan-cache lookup/prepare, guarded by
   cache_lock with single-flight de-duplication of concurrent misses
   on the same text. sched_lock is leaf-only and never held across
   cache_lock. *)
type t = {
  catalog : Aeq_storage.Catalog.t;
  pool : Aeq_exec.Pool.t;
  cost_model : Aeq_backend.Cost_model.t;
  plan_cache : (string, cache_entry) Hashtbl.t;
  cache_lock : Aeq_race.Lock.t;
      (* guards plan_cache, its counters, ce_* fields, preparing *)
  cache_loc : Aeq_race.location;
  prep_done : Condition.t; (* signalled when a single-flight prepare finishes *)
  preparing : (string, unit) Hashtbl.t; (* texts with a prepare in flight *)
  sched_lock : Aeq_race.Lock.t; (* guards lazy scheduler creation/config *)
  sched_loc : Aeq_race.location;
  mutable scheduler : Aeq_exec.Scheduler.t option;
  mutable sched_config : Aeq_exec.Scheduler.config;
  mutable cache_enabled : bool;
  mutable cache_capacity : int;
  mutable cache_tick : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
  draining : bool Atomic.t;
}

(* Which plan-cache text THIS domain is single-flight preparing right
   now. A dispatcher crashing mid-prepare would otherwise leave its
   claim in [t.preparing] forever and wedge every peer waiting on
   [prep_done]; the scheduler's [on_domain_crash] hook runs in the
   crashed domain and uses this to find and release the claim. *)
let preparing_here : (t * string) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let default_cache_capacity = 128

let with_lock m f = Aeq_race.Lock.with_ m f

(* ---- health ---------------------------------------------------------- *)

type health = Serving | Degraded of string list | Draining | Stopped

let health_name = function
  | Serving -> "serving"
  | Degraded _ -> "degraded"
  | Draining -> "draining"
  | Stopped -> "stopped"

(* Aggregated from the domain supervisors: any serving domain currently
   crashed-and-backing-off or failed (restart budget exhausted) makes
   the engine [Degraded] with one reason per such domain. Reads only —
   safe from any domain, including exporters scraping mid-crash. *)
let health t =
  if Aeq_exec.Pool.closed t.pool then Stopped
  else if Atomic.get t.draining then Draining
  else begin
    let sched_reasons =
      match
        with_lock t.sched_lock (fun () ->
            Aeq_race.read ~site:"engine.health" t.sched_loc;
            t.scheduler)
      with
      | Some s -> Aeq_exec.Scheduler.health_reasons s
      | None -> []
    in
    match sched_reasons @ Aeq_exec.Pool.health_reasons t.pool with
    | [] -> Serving
    | reasons -> Degraded reasons
  end

let health_code = function
  | Serving -> 0
  | Degraded _ -> 1
  | Draining -> 2
  | Stopped -> 3

(* Engine-level gauges: registered unconditionally — the registry is
   cheap and process-wide, and rendering is what observability gates.
   Registering only when enabled-at-create silently lost the gauges
   for engines created before AEQ_OBS / Control.set_enabled turned
   observability on. *)
let register_gauges t =
  Obs.Metrics.gauge_fn "aeq_arena_resident_bytes"
    ~help:"Arena high-water mark: bytes resident across chunks."
    (fun () ->
      Aeq_mem.Arena.resident_bytes (Aeq_storage.Catalog.arena t.catalog));
  Obs.Metrics.gauge_fn "aeq_pool_active_jobs"
    ~help:"Pipeline jobs currently in flight on the worker pool."
    (fun () -> Aeq_exec.Pool.active_jobs t.pool);
  Obs.Metrics.gauge_fn "aeq_pool_busy"
    ~help:"1 while the worker pool is executing at least one job, else 0."
    (fun () -> if Aeq_exec.Pool.busy t.pool then 1 else 0);
  Obs.Metrics.gauge_fn "aeq_plan_cache_entries"
    ~help:"Prepared statements resident in the plan cache."
    (fun () ->
      with_lock t.cache_lock (fun () ->
          Aeq_race.read ~site:"engine.gauge" t.cache_loc;
          Hashtbl.length t.plan_cache));
  let arena () = Aeq_storage.Catalog.arena t.catalog in
  Obs.Metrics.gauge_fn "aeq_arena_scratch_resident_bytes"
    ~help:"Bytes resident in query-scratch chunks (what the scratch cap meters)."
    (fun () -> Aeq_mem.Arena.scratch_resident_bytes (arena ()));
  Obs.Metrics.gauge_fn "aeq_arena_scratch_limit_bytes"
    ~help:"Configured scratch cap in bytes; -1 when unbounded."
    (fun () ->
      match Aeq_mem.Arena.scratch_limit (arena ()) with
      | Some l -> l
      | None -> -1);
  Obs.Metrics.gauge_fn "aeq_arena_backpressure_waits"
    ~help:"Chunk grabs that had to wait at the scratch cap (monotone)."
    (fun () -> Aeq_mem.Arena.backpressure_waits (arena ()));
  Obs.Metrics.gauge_fn "aeq_arena_limit_rejections"
    ~help:"Chunk grabs that gave up with Memory_budget_exceeded (monotone)."
    (fun () -> Aeq_mem.Arena.limit_rejections (arena ()));
  Obs.Metrics.gauge_fn "aeq_engine_health"
    ~help:"Engine health state: 0 serving, 1 degraded, 2 draining, 3 stopped."
    (fun () -> health_code (health t));
  Obs.Metrics.gauge_fn "aeq_engine_unhealthy_domains"
    ~help:"Supervised domains currently crashed (backing off) or failed."
    (fun () ->
      match health t with Degraded rs -> List.length rs | _ -> 0)

let create ?n_threads ?cost_model ?chunk_size ?(supervised = true) () =
  let n_threads =
    match n_threads with
    | Some n -> Stdlib.max 1 n
    | None -> Stdlib.min 8 (Domain.recommended_domain_count ())
  in
  let cost_model =
    match cost_model with
    | Some m -> m
    | None ->
      (* paper-shaped compile latencies, but the controller's speedup
         expectations come from measurement so adaptive decisions
         reflect this build's real interpreter/compiled gap *)
      let cal = Aeq_backend.Calibration.measure () in
      Aeq_backend.Cost_model.with_speedups Aeq_backend.Cost_model.default
        ~unopt:cal.Aeq_backend.Calibration.speedup_unopt
        ~opt:cal.Aeq_backend.Calibration.speedup_opt
  in
  let t =
    {
      catalog = Aeq_storage.Catalog.create ?chunk_size ();
      pool = Aeq_exec.Pool.create ~supervised ~n_threads ();
      cost_model;
      plan_cache = Hashtbl.create 64;
      cache_lock = Aeq_race.Lock.create "engine.cache.lock";
      cache_loc = Aeq_race.locate "engine.plan_cache";
      prep_done = Condition.create ();
      preparing = Hashtbl.create 8;
      sched_lock = Aeq_race.Lock.create "engine.sched.lock";
      sched_loc = Aeq_race.locate "engine.scheduler_slot";
      scheduler = None;
      sched_config =
        (* several dispatcher domains so the admission path keeps
           multiple accepted queries in flight at once *)
        {
          Aeq_exec.Scheduler.default_config with
          dispatchers = n_threads;
          supervised;
        };
      cache_enabled = true;
      cache_capacity = default_cache_capacity;
      cache_tick = 0;
      cache_hits = 0;
      cache_misses = 0;
      cache_evictions = 0;
      draining = Atomic.make false;
    }
  in
  register_gauges t;
  t

let load_tpch ?seed t ~scale_factor = Aeq_workload.Tpch.load ?seed ~scale_factor t.catalog

let set_scratch_limit ?block_seconds t limit =
  Aeq_mem.Arena.set_scratch_limit
    (Aeq_storage.Catalog.arena t.catalog)
    ?block_seconds limit

let catalog t = t.catalog

let pool t = t.pool

let n_threads t = Aeq_exec.Pool.n_threads t.pool

let cost_model t = t.cost_model

let plan t sql =
  let ast = Obs.Span.with_span "parse" (fun () -> Aeq_sql.Parser.parse sql) in
  Obs.Span.with_span "plan" (fun () -> Aeq_plan.Planner.plan t.catalog ast)

let explain t sql = Aeq_plan.Explain.to_string (plan t sql)

let set_plan_cache t enabled =
  with_lock t.cache_lock (fun () ->
      Aeq_race.write ~site:"engine.set_plan_cache" t.cache_loc;
      t.cache_enabled <- enabled)

(* under cache_lock *)
let evict_down_to t capacity =
  while Hashtbl.length t.plan_cache > capacity do
    let victim = ref None in
    Hashtbl.iter
      (fun sql e ->
        match !victim with
        | Some (_, best) when best <= e.ce_last_used -> ()
        | _ -> victim := Some (sql, e.ce_last_used))
      t.plan_cache;
    match !victim with
    | Some (sql, _) ->
      Hashtbl.remove t.plan_cache sql;
      t.cache_evictions <- t.cache_evictions + 1;
      if Obs.Control.enabled () then
        Obs.Metrics.inc
          (Obs.Metrics.counter "aeq_plan_cache_evictions_total"
             ~help:"Prepared statements evicted from the plan cache (LRU).")
    | None -> ()
  done

let set_plan_cache_capacity t n =
  with_lock t.cache_lock (fun () ->
      Aeq_race.write ~site:"engine.set_capacity" t.cache_loc;
      t.cache_capacity <- Stdlib.max 1 n;
      evict_down_to t t.cache_capacity)

let cache_stats t =
  with_lock t.cache_lock (fun () ->
      Aeq_race.read ~site:"engine.cache_stats" t.cache_loc;
      {
        hits = t.cache_hits;
        misses = t.cache_misses;
        evictions = t.cache_evictions;
        entries = Hashtbl.length t.plan_cache;
      })

(* Plan-cache coherence, for the simulator's quiescent-step checkers:
   the cache respects its capacity, every LRU stamp is within the tick
   range, no text is simultaneously cached and in-flight preparing,
   and no counter has gone negative. Takes cache_lock, so call it only
   while no task is suspended inside a cache critical section (the
   yield points guarantee this under simulation). *)
let check t =
  with_lock t.cache_lock (fun () ->
      Aeq_race.read ~site:"engine.check" t.cache_loc;
      let problems = ref [] in
      let add fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
      let n = Hashtbl.length t.plan_cache in
      if t.cache_enabled && n > t.cache_capacity then
        add "plan cache holds %d entries over capacity %d" n t.cache_capacity;
      Hashtbl.iter
        (fun sql e ->
          if e.ce_last_used < 0 || e.ce_last_used > t.cache_tick then
            add "cache entry %S: LRU stamp %d outside [0, %d]" sql
              e.ce_last_used t.cache_tick;
          if Hashtbl.mem t.preparing sql then
            add "text %S is both cached and in-flight preparing" sql)
        t.plan_cache;
      if t.cache_hits < 0 || t.cache_misses < 0 || t.cache_evictions < 0 then
        add "negative cache counter (hits %d, misses %d, evictions %d)"
          t.cache_hits t.cache_misses t.cache_evictions;
      List.rev !problems)

(* under cache_lock *)
let touch t entry =
  t.cache_tick <- t.cache_tick + 1;
  entry.ce_last_used <- t.cache_tick

let note_hit t e =
  t.cache_hits <- t.cache_hits + 1;
  if Obs.Control.enabled () then
    Obs.Metrics.inc
      (Obs.Metrics.counter "aeq_plan_cache_hits_total"
         ~help:"Plan-cache lookups that reused a prepared statement.");
  touch t e

(* Look the statement up, preparing (and possibly evicting) on miss.
   Planning and codegen run OUTSIDE cache_lock — they are the
   expensive part and touch only thread-safe state (catalog reads,
   dictionary encode under its own lock). Concurrent misses on the
   same text single-flight: the first caller prepares, the rest wait
   on [prep_done] and then take the cache hit. *)
let prepare_entry t sql =
  let rec lookup () =
    (* yield OUTSIDE the lock: the simulator must never suspend a task
       that holds cache_lock, or every peer deadlocks behind it *)
    Aeq_util.Yieldpoint.yield "engine.cache";
    Aeq_race.Lock.lock t.cache_lock;
    Aeq_race.write ~site:"engine.lookup" t.cache_loc;
    match Hashtbl.find_opt t.plan_cache sql with
    | Some e ->
      note_hit t e;
      Aeq_race.Lock.unlock t.cache_lock;
      e
    | None ->
      if Hashtbl.mem t.preparing sql then begin
        (* another caller is preparing this text; joining the wait
           (rather than preparing twice) keeps the cache single-entry
           and the duplicated codegen cost off the serving path *)
        if Aeq_util.Yieldpoint.enabled () then begin
          (* under simulation a real [Condition.wait] would block a
             task the scheduler thinks is runnable; spin through the
             scheduler instead and re-check on resume *)
          Aeq_race.Lock.unlock t.cache_lock;
          Aeq_util.Yieldpoint.yield "engine.singleflight.wait";
          lookup ()
        end
        else begin
          Aeq_race.Lock.wait t.prep_done t.cache_lock;
          Aeq_race.Lock.unlock t.cache_lock;
          lookup ()
        end
      end
      else begin
        t.cache_misses <- t.cache_misses + 1;
        if Obs.Control.enabled () then
          Obs.Metrics.inc
            (Obs.Metrics.counter "aeq_plan_cache_misses_total"
               ~help:"Plan-cache lookups that had to prepare from scratch.");
        Hashtbl.replace t.preparing sql ();
        Aeq_race.Lock.unlock t.cache_lock;
        Domain.DLS.get preparing_here := Some (t, sql);
        let finish () =
          Domain.DLS.get preparing_here := None;
          with_lock t.cache_lock (fun () ->
              Aeq_race.write ~site:"engine.prep_finish" t.cache_loc;
              Hashtbl.remove t.preparing sql;
              Condition.broadcast t.prep_done)
        in
        match
          (* inside the match scrutinee so an injected fault takes the
             exception branch below: [finish] wakes the waiters and the
             preparing claim never leaks *)
          Aeq_util.Failpoints.hit "compile.singleflight";
          Aeq_util.Yieldpoint.yield "engine.singleflight";
          Aeq_exec.Driver.prepare ~cost_model:t.cost_model t.catalog (plan t sql)
            ~n_threads:(n_threads t)
        with
        | prepared ->
          let e = { ce_prepared = prepared; ce_modes = []; ce_last_used = 0 } in
          (* publication edge for the race detector: the entry (and the
             compiled artifacts hanging off it) were built outside
             cache_lock; waiters that pick it up after [prep_done] read
             them without ever holding the builder's locks *)
          Aeq_race.publish ();
          with_lock t.cache_lock (fun () ->
              Aeq_race.write ~site:"engine.prep_install" t.cache_loc;
              touch t e;
              Hashtbl.replace t.plan_cache sql e;
              evict_down_to t t.cache_capacity);
          finish ();
          e
        | exception exn ->
          (* unparseable/unplannable text: wake waiters so they retry,
             fail, and don't hang on a prepare that will never land *)
          finish ();
          raise exn
      end
  in
  lookup ()

let prepare t sql = ignore (prepare_entry t sql)

let prepared t sql =
  with_lock t.cache_lock (fun () ->
      Aeq_race.read ~site:"engine.prepared" t.cache_loc;
      Hashtbl.mem t.plan_cache sql)

let cached_executions t sql =
  let entry =
    with_lock t.cache_lock (fun () ->
        Aeq_race.read ~site:"engine.cached_executions" t.cache_loc;
        Hashtbl.find_opt t.plan_cache sql)
  in
  match entry with
  | Some e -> Aeq_exec.Driver.prepared_executions e.ce_prepared
  | None -> 0

let error_label = function
  | Aeq_exec.Query_error.Trap _ -> "trap"
  | Aeq_exec.Query_error.Compile_failed _ -> "compile_failed"
  | Aeq_exec.Query_error.Timeout _ -> "timeout"
  | Aeq_exec.Query_error.Cancelled -> "cancelled"
  | Aeq_exec.Query_error.Memory_budget_exceeded _ -> "memory_budget"
  | Aeq_exec.Query_error.Overloaded _ -> "overloaded"
  | Aeq_exec.Query_error.Rejected _ -> "rejected"
  | Aeq_exec.Query_error.Worker_crashed _ -> "worker_crashed"

(* Per-query accounting: a completed-query counter per requested mode,
   an end-to-end latency histogram, and an error counter per failure
   class. *)
let with_query_obs mode f =
  if not (Obs.Control.enabled ()) then f ()
  else begin
    let t0 = Aeq_util.Clock.now () in
    let finish outcome =
      Obs.Metrics.observe
        (Obs.Metrics.histogram "aeq_query_seconds"
           ~help:"End-to-end query latency as seen by the caller.")
        (Aeq_util.Clock.now () -. t0);
      Obs.Metrics.inc
        (Obs.Metrics.counter "aeq_queries_total"
           ~help:"Queries executed, by requested mode and outcome."
           ~labels:
             [ ("mode", Aeq_exec.Driver.mode_name mode); ("outcome", outcome) ])
    in
    match f () with
    | r ->
      finish "ok";
      r
    | exception e ->
      finish "error";
      (match e with
      | Aeq_exec.Query_error.Error qe ->
        Obs.Metrics.inc
          (Obs.Metrics.counter "aeq_query_errors_total"
             ~help:"Query failures by structured error class."
             ~labels:[ ("error", error_label qe) ])
      | _ -> ());
      raise e
  end

let query ?(mode = Aeq_exec.Driver.Adaptive) ?(collect_trace = false) ?timeout_seconds
    ?cancel ?memory_budget_bytes ?on_compile_failure t sql =
  (* admission gate: a draining engine takes no new work, but queries
     already executing (including scheduler-dispatched ones marked
     in-flight before the drain began) run to completion *)
  if Atomic.get t.draining && not (Aeq_exec.Scheduler.executing_here ()) then
    Aeq_exec.Query_error.raise_error (Aeq_exec.Query_error.Rejected "draining");
  with_query_obs mode @@ fun () ->
  let cache_enabled =
    with_lock t.cache_lock (fun () ->
        Aeq_race.read ~site:"engine.query" t.cache_loc;
        t.cache_enabled)
  in
  if not cache_enabled then begin
    let p = plan t sql in
    Aeq_exec.Driver.execute ~cost_model:t.cost_model ~collect_trace ?timeout_seconds
      ?cancel ?memory_budget_bytes ?on_compile_failure t.catalog p ~mode ~pool:t.pool
  end
  else begin
    (* prepared-statement cache with per-pipeline mode memory (the
       paper's Sec. VI extension): repeated executions of the same
       text reuse the plan AND the compiled artifacts — codegen,
       bytecode translation and machine-code variants are paid once.
       In adaptive mode, pipelines start in the mode they had
       converged to last time. Execution itself takes no engine-wide
       lock: concurrent callers — even of the same cached entry — run
       in parallel over private contexts and arena leases. A failed
       execution leaves the entry cached and reusable (the driver
       guarantees cleanup); only a successful adaptive run updates
       the mode memory. *)
    let entry =
      (* a fault injected at [compile.singleflight] surfaces with the
         same structured error contract as every other injected site *)
      try prepare_entry t sql
      with Aeq_util.Failpoints.Injected site ->
        Aeq_exec.Query_error.raise_error
          (Aeq_exec.Query_error.Trap ("injected fault at " ^ site))
    in
    let initial_modes =
      with_lock t.cache_lock (fun () ->
          Aeq_race.read ~site:"engine.initial_modes" t.cache_loc;
          (* consume side of the single-flight publication: this caller
             may be reading a prepared entry built by another domain *)
          Aeq_race.consume ();
          if
            Aeq_exec.Driver.prepared_executions entry.ce_prepared > 0
            && mode = Aeq_exec.Driver.Adaptive
          then Some entry.ce_modes
          else None)
    in
    let r =
      Aeq_exec.Driver.execute_prepared ~collect_trace ?initial_modes ?timeout_seconds
        ?cancel ?memory_budget_bytes ?on_compile_failure entry.ce_prepared ~mode
        ~pool:t.pool
    in
    if mode = Aeq_exec.Driver.Adaptive then
      with_lock t.cache_lock (fun () ->
          Aeq_race.write ~site:"engine.mode_memory" t.cache_loc;
          entry.ce_modes <- r.Aeq_exec.Driver.final_cm_modes);
    r
  end

(* Translation validation at the whole-query level: the same statement
   through every execution mode (interpreter-only, both up-front
   compilers, adaptive) must produce the same bag of rows — or fail
   identically. Rows are sorted because morsel scheduling makes the
   output order nondeterministic across threads. *)
let verify_query t sql =
  let run mode =
    match query ~mode t sql with
    | r ->
      Ok
        ( List.sort Stdlib.compare r.Aeq_exec.Driver.rows,
          r.Aeq_exec.Driver.names )
    | exception exn -> Error (Printexc.to_string exn)
  in
  let reference = run Aeq_exec.Driver.Bytecode in
  let check problems (name, mode) =
    match (reference, run mode) with
    | Ok (ref_rows, ref_names), Ok (rows, names) ->
      if names <> ref_names then
        Printf.sprintf "mode %s: column names diverge from bytecode" name
        :: problems
      else if rows <> ref_rows then
        Printf.sprintf
          "mode %s: result diverges from bytecode (%d vs %d sorted rows)" name
          (List.length rows) (List.length ref_rows)
        :: problems
      else problems
    | Error _, Error _ ->
      (* both modes reject the query; agreement is what we verify *)
      problems
    | Ok _, Error e ->
      Printf.sprintf "mode %s fails where bytecode succeeds: %s" name e
      :: problems
    | Error e, Ok _ ->
      Printf.sprintf "mode %s succeeds where bytecode fails: %s" name e
      :: problems
  in
  let problems =
    List.fold_left check []
      [
        ("unopt", Aeq_exec.Driver.Unopt);
        ("opt", Aeq_exec.Driver.Opt);
        ("adaptive", Aeq_exec.Driver.Adaptive);
      ]
  in
  match problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "\n" (List.rev ps))

(* ---- concurrent serving --------------------------------------------- *)

let set_scheduler_config t config =
  with_lock t.sched_lock (fun () ->
      Aeq_race.write ~site:"engine.set_sched_config" t.sched_loc;
      match t.scheduler with
      | Some _ ->
        invalid_arg "Engine.set_scheduler_config: scheduler already running"
      | None -> t.sched_config <- config)

(* Runs in a crashed dispatcher domain (supervisor reclaim, after the
   scheduler completed the victim ticket): release the single-flight
   prepare claim this domain held, if any, so peers blocked on
   [prep_done] wake up and re-prepare instead of waiting forever. *)
let release_preparing_claim ~name:_ _exn =
  let slot = Domain.DLS.get preparing_here in
  match !slot with
  | None -> ()
  | Some (t, sql) ->
    slot := None;
    with_lock t.cache_lock (fun () ->
        Aeq_race.write ~site:"engine.release_claim" t.cache_loc;
        Hashtbl.remove t.preparing sql;
        Condition.broadcast t.prep_done)

let scheduler t =
  with_lock t.sched_lock (fun () ->
      Aeq_race.write ~site:"engine.scheduler" t.sched_loc;
      match t.scheduler with
      | Some s -> s
      | None ->
        let s =
          Aeq_exec.Scheduler.create ~config:t.sched_config
            ~arena:(Aeq_storage.Catalog.arena t.catalog)
            ~on_domain_crash:release_preparing_claim
            ~exec:(fun ~mode ~cancel sql -> query ~mode ~cancel t sql)
            ()
        in
        t.scheduler <- Some s;
        s)

let submit ?mode ?priority ?deadline_seconds ?cancel t sql =
  Aeq_exec.Scheduler.submit ?mode ?priority ?deadline_seconds ?cancel
    (scheduler t) sql

let query_concurrent ?mode ?priority ?deadline_seconds ?cancel t sql =
  Aeq_exec.Scheduler.run ?mode ?priority ?deadline_seconds ?cancel (scheduler t)
    sql

let scheduler_stats t =
  let s =
    with_lock t.sched_lock (fun () ->
        Aeq_race.read ~site:"engine.scheduler_stats" t.sched_loc;
        t.scheduler)
  in
  match s with
  | Some s -> Aeq_exec.Scheduler.stats s
  | None -> Aeq_exec.Scheduler.zero_stats

let render_rows t (r : Aeq_exec.Driver.result) =
  List.map
    (fun row -> String.concat "\t" (Aeq_exec.Driver.row_to_strings t.catalog r.Aeq_exec.Driver.dtypes row))
    r.Aeq_exec.Driver.rows

(* ---- observability --------------------------------------------------- *)

let metrics () = Obs.Metrics.snapshot ()

let render_metrics () = Obs.Metrics.render_prometheus ()

let dump_metrics path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Metrics.render_prometheus ()))

let reset_stats t =
  Obs.Metrics.reset ();
  Obs.Span.clear ();
  Obs.Decision_log.clear ();
  with_lock t.cache_lock (fun () ->
      Aeq_race.write ~site:"engine.reset_stats" t.cache_loc;
      t.cache_hits <- 0;
      t.cache_misses <- 0;
      t.cache_evictions <- 0);
  match
    with_lock t.sched_lock (fun () ->
        Aeq_race.read ~site:"engine.reset_stats" t.sched_loc;
        t.scheduler)
  with
  | Some s -> Aeq_exec.Scheduler.reset_stats s
  | None -> ()

(* Scheduler first (drains queued clients, finishes in-flight
   queries), then the pool. Both are idempotent, so close is. *)
let close t =
  let s =
    with_lock t.sched_lock (fun () ->
        Aeq_race.read ~site:"engine.close" t.sched_loc;
        t.scheduler)
  in
  (match s with Some s -> Aeq_exec.Scheduler.shutdown s | None -> ());
  Aeq_exec.Pool.shutdown t.pool

let closed t = Aeq_exec.Pool.closed t.pool

let draining t = Atomic.get t.draining

(* Graceful drain: close admission (both the scheduler's queue and
   direct [query] callers), let already-admitted work finish, flush,
   then shut down. The SIGTERM path of the CLI. *)
let drain ?(deadline_seconds = 30.0) ?(flush = fun () -> ()) t =
  Atomic.set t.draining true;
  let s =
    with_lock t.sched_lock (fun () ->
        Aeq_race.read ~site:"engine.drain" t.sched_loc;
        t.scheduler)
  in
  let clean =
    match s with
    | Some s -> Aeq_exec.Scheduler.drain ~deadline_seconds s
    | None -> true
  in
  (* exporter flush happens after quiescence so the dump includes the
     final counters, but before close so gauges still read live state *)
  (try flush () with _ -> ());
  close t;
  clean

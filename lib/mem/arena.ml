exception Stale_allocator

(* The chunk table is two-level: slots below the permanent base hold
   loaded tables (the catalog's lease, never released), slots above are
   scratch leased to one query at a time. A released slot drops its
   bytes and its index goes to [free_slots] for the next lease, so the
   table never grows past (base + peak-concurrent-scratch) — the
   replacement for the old serialize-then-truncate reclamation that
   forced single-writer execution. *)
type t = {
  chunk_size : int;
  chunks : Bytes.t array; (* fixed-capacity table; slots filled under lock *)
  mutable n_chunks : int; (* slot high-water mark *)
  mutable free_slots : int list; (* released scratch slots, recyclable *)
  mutable n_live : int; (* slots currently holding memory *)
  resident : int Atomic.t;
      (* running total of live chunk bytes; read lock-free on the
         scheduler's per-submission overload check *)
  total_used : int Atomic.t;
  generation : int Atomic.t; (* bumped by [reset]; staleness fences *)
  lock : Mutex.t;
  mutable base : lease option; (* permanent lease for loaded tables *)
}

and lease = {
  ls_arena : t;
  ls_gen : int; (* arena generation at lease time *)
  mutable ls_slots : int list; (* owned chunk slots; guarded by arena lock *)
  ls_used : int Atomic.t; (* bytes handed out — the per-query budget meter *)
  ls_stale : bool Atomic.t; (* set on release/reset; allocators fail fast *)
}

type ptr = int

type allocator = {
  lease : lease;
  mutable chunk : int; (* index of the chunk we bump into *)
  mutable cursor : int;
  mutable limit : int;
}

let null = 0

let offset_bits = 32

let offset_mask = (1 lsl offset_bits) - 1

let encode chunk off = (chunk lsl offset_bits) lor off

let max_chunks = 1 lsl 16

let make_lease t =
  {
    ls_arena = t;
    ls_gen = Atomic.get t.generation;
    ls_slots = [];
    ls_used = Atomic.make 0;
    ls_stale = Atomic.make false;
  }

let create ?(chunk_size = 1 lsl 20) () =
  let chunks = Array.make max_chunks Bytes.empty in
  chunks.(0) <- Bytes.make chunk_size '\000';
  let t =
    {
      chunk_size;
      chunks;
      n_chunks = 1;
      free_slots = [];
      n_live = 1;
      resident = Atomic.make chunk_size;
      total_used = Atomic.make 0;
      generation = Atomic.make 0;
      lock = Mutex.create ();
      base = None;
    }
  in
  t.base <- Some (make_lease t);
  t

let base_lease t =
  match t.base with Some l -> l | None -> assert false

let lease t = make_lease t

let lease_used l = Atomic.get l.ls_used

let lease_stale l = Atomic.get l.ls_stale

(* Take a slot for [lease] and install a chunk of at least [size]
   bytes; returns the slot index. Slots are recycled indices — the
   memory itself is always a fresh zeroed [Bytes.t], so a recycled
   chunk carries no bytes from the query that released it. A pointer
   into a chunk can only reach another thread through a synchronising
   structure (the pool or a locked hash table), which orders the slot
   write before any access. *)
let lease_chunk ls size =
  (* simulated allocation failure: growing the arena is where a real
     OOM would strike *)
  Aeq_util.Failpoints.hit "arena.alloc";
  let t = ls.ls_arena in
  Mutex.lock t.lock;
  let slot =
    match t.free_slots with
    | s :: rest ->
      t.free_slots <- rest;
      s
    | [] ->
      let n = t.n_chunks in
      if n >= max_chunks then begin
        Mutex.unlock t.lock;
        invalid_arg "Arena: chunk table exhausted"
      end;
      t.n_chunks <- n + 1;
      n
  in
  t.chunks.(slot) <- Bytes.make size '\000';
  t.n_live <- t.n_live + 1;
  ls.ls_slots <- slot :: ls.ls_slots;
  Mutex.unlock t.lock;
  ignore (Atomic.fetch_and_add t.resident size);
  slot

(* Return every owned chunk to the free pool. Idempotent; a no-op if
   the arena was [reset] since the lease was taken (the slots are
   already recycled). Must not run while the lease's allocators are
   still in use — the driver releases only after the pool barrier. *)
let release ls =
  let t = ls.ls_arena in
  Mutex.lock t.lock;
  if (not (Atomic.get ls.ls_stale)) && ls.ls_gen = Atomic.get t.generation
  then begin
    Atomic.set ls.ls_stale true;
    List.iter
      (fun s ->
        ignore (Atomic.fetch_and_add t.resident (-Bytes.length t.chunks.(s)));
        t.chunks.(s) <- Bytes.empty;
        t.n_live <- t.n_live - 1;
        t.free_slots <- s :: t.free_slots)
      ls.ls_slots;
    ls.ls_slots <- []
  end
  else Atomic.set ls.ls_stale true;
  Mutex.unlock t.lock

let lease_allocator ls =
  (* Fresh allocators start with no chunk; the first alloc grabs one.
     Offset 0 of chunk 0 is never handed out (null pointer). *)
  { lease = ls; chunk = -1; cursor = 0; limit = 0 }

let allocator t = lease_allocator (base_lease t)

let align_up v align = (v + align - 1) land lnot (align - 1)

let alloc a ?(align = 8) n =
  assert (n >= 0 && align > 0 && align land (align - 1) = 0);
  let ls = a.lease in
  let t = ls.ls_arena in
  (* fail fast on an allocator whose backing chunks were reclaimed —
     bump-allocating into a freed (Bytes.empty) slot would corrupt
     whichever query holds it now *)
  if Atomic.get ls.ls_stale || ls.ls_gen <> Atomic.get t.generation then
    raise Stale_allocator;
  let start = align_up a.cursor align in
  if a.chunk >= 0 && start + n <= a.limit then begin
    a.cursor <- start + n;
    ignore (Atomic.fetch_and_add t.total_used n);
    ignore (Atomic.fetch_and_add ls.ls_used n);
    encode a.chunk start
  end
  else begin
    let size = Stdlib.max t.chunk_size (n + align + 16) in
    let idx = lease_chunk ls size in
    (* Never return offset 0: pointer 0 must stay null even though
       chunk indices > 0 would disambiguate; being strict is cheap. *)
    let start = align_up 8 align in
    a.chunk <- idx;
    a.cursor <- start + n;
    a.limit <- size;
    ignore (Atomic.fetch_and_add t.total_used n);
    ignore (Atomic.fetch_and_add ls.ls_used n);
    encode idx start
  end

let used t = Atomic.get t.total_used

(* memory actually held right now — maintained as a running total so
   the scheduler's overload check is one atomic load, not an O(chunks)
   scan under the arena mutex *)
let resident_bytes t = Atomic.get t.resident

let live_chunks t =
  Mutex.lock t.lock;
  let n = t.n_live in
  Mutex.unlock t.lock;
  n

let reset t =
  Mutex.lock t.lock;
  (* invalidate every outstanding lease and allocator (base included) *)
  ignore (Atomic.fetch_and_add t.generation 1);
  (match t.base with Some b -> Atomic.set b.ls_stale true | None -> ());
  for i = 1 to t.n_chunks - 1 do
    t.chunks.(i) <- Bytes.empty
  done;
  Bytes.fill t.chunks.(0) 0 (Bytes.length t.chunks.(0)) '\000';
  t.n_chunks <- 1;
  t.free_slots <- [];
  t.n_live <- 1;
  Atomic.set t.resident (Bytes.length t.chunks.(0));
  Atomic.set t.total_used 0;
  t.base <- Some (make_lease t);
  Mutex.unlock t.lock

let[@inline] buf t p = Array.unsafe_get t.chunks (p lsr offset_bits)

let[@inline] off p = p land offset_mask

let get_i8 t p = Char.code (Bytes.unsafe_get (buf t p) (off p))

let set_i8 t p v = Bytes.unsafe_set (buf t p) (off p) (Char.unsafe_chr (v land 0xff))

let get_i16 t p = Bytes.get_uint16_ne (buf t p) (off p)

let set_i16 t p v = Bytes.set_uint16_ne (buf t p) (off p) (v land 0xffff)

let get_i32 t p = Bytes.get_int32_ne (buf t p) (off p)

let set_i32 t p v = Bytes.set_int32_ne (buf t p) (off p) v

let get_i64 t p = Bytes.get_int64_ne (buf t p) (off p)

let set_i64 t p v = Bytes.set_int64_ne (buf t p) (off p) v

let get_f64 t p = Int64.float_of_bits (Bytes.get_int64_ne (buf t p) (off p))

let set_f64 t p v = Bytes.set_int64_ne (buf t p) (off p) (Int64.bits_of_float v)

let blit t ~src ~dst ~len =
  Bytes.blit (buf t src) (off src) (buf t dst) (off dst) len

let fill_zero t p len = Bytes.fill (buf t p) (off p) len '\000'

let chunk_of t p = (buf t p, off p)

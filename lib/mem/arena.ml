type t = {
  chunk_size : int;
  chunks : Bytes.t array; (* fixed-capacity table; slots filled under lock *)
  mutable n_chunks : int;
  total_used : int Atomic.t;
      (* bumped by concurrent allocators and read by the per-query
         memory-budget guard; a plain ref would lose updates *)
  lock : Mutex.t;
}

type ptr = int

type allocator = {
  arena : t;
  mutable chunk : int; (* index of the chunk we bump into *)
  mutable cursor : int;
  mutable limit : int;
  mutable generation : int;
}

let null = 0

let offset_bits = 32

let offset_mask = (1 lsl offset_bits) - 1

let encode chunk off = (chunk lsl offset_bits) lor off

let max_chunks = 1 lsl 16

let create ?(chunk_size = 1 lsl 20) () =
  let chunks = Array.make max_chunks Bytes.empty in
  chunks.(0) <- Bytes.make chunk_size '\000';
  { chunk_size; chunks; n_chunks = 1; total_used = Atomic.make 0; lock = Mutex.create () }

(* Append a chunk of at least [size] bytes; returns its index. Slots
   are filled left to right under the lock; a pointer into a chunk can
   only reach another thread through a synchronising structure (the
   scheduler or a locked hash table), which orders the slot write
   before any access. *)
let add_chunk t size =
  (* simulated allocation failure: growing the arena is where a real
     OOM would strike *)
  Aeq_util.Failpoints.hit "arena.alloc";
  Mutex.lock t.lock;
  let n = t.n_chunks in
  if n >= max_chunks then begin
    Mutex.unlock t.lock;
    invalid_arg "Arena: chunk table exhausted"
  end;
  t.chunks.(n) <- Bytes.make size '\000';
  t.n_chunks <- n + 1;
  Mutex.unlock t.lock;
  n

let allocator t =
  (* Fresh allocators start with no chunk; the first alloc grabs one.
     Offset 0 of chunk 0 is never handed out (null pointer). *)
  { arena = t; chunk = -1; cursor = 0; limit = 0; generation = 0 }

let align_up v align = (v + align - 1) land lnot (align - 1)

let alloc a ?(align = 8) n =
  assert (n >= 0 && align > 0 && align land (align - 1) = 0);
  let t = a.arena in
  let start = align_up a.cursor align in
  if a.chunk >= 0 && start + n <= a.limit then begin
    a.cursor <- start + n;
    ignore (Atomic.fetch_and_add t.total_used n);
    encode a.chunk start
  end
  else begin
    let size = Stdlib.max t.chunk_size (n + align + 16) in
    let idx = add_chunk t size in
    (* Never return offset 0: pointer 0 must stay null even though
       chunk indices > 0 would disambiguate; being strict is cheap. *)
    let start = align_up 8 align in
    a.chunk <- idx;
    a.cursor <- start + n;
    a.limit <- size;
    ignore (Atomic.fetch_and_add t.total_used n);
    encode idx start
  end

let used t = Atomic.get t.total_used

(* memory actually held right now — unlike [used] this shrinks on
   [truncate], so it works as the overload/high-water gauge *)
let resident_bytes t =
  Mutex.lock t.lock;
  let sum = ref 0 in
  for i = 0 to t.n_chunks - 1 do
    sum := !sum + Bytes.length t.chunks.(i)
  done;
  Mutex.unlock t.lock;
  !sum

let reset t =
  Mutex.lock t.lock;
  for i = 1 to t.n_chunks - 1 do
    t.chunks.(i) <- Bytes.empty
  done;
  Bytes.fill t.chunks.(0) 0 (Bytes.length t.chunks.(0)) '\000';
  t.n_chunks <- 1;
  Atomic.set t.total_used 0;
  Mutex.unlock t.lock

let mark_chunks t = t.n_chunks

let truncate t mark =
  Mutex.lock t.lock;
  if mark >= 1 && mark <= t.n_chunks then begin
    for i = mark to t.n_chunks - 1 do
      t.chunks.(i) <- Bytes.empty
    done;
    t.n_chunks <- mark
  end;
  Mutex.unlock t.lock

let[@inline] buf t p = Array.unsafe_get t.chunks (p lsr offset_bits)

let[@inline] off p = p land offset_mask

let get_i8 t p = Char.code (Bytes.unsafe_get (buf t p) (off p))

let set_i8 t p v = Bytes.unsafe_set (buf t p) (off p) (Char.unsafe_chr (v land 0xff))

let get_i16 t p = Bytes.get_uint16_ne (buf t p) (off p)

let set_i16 t p v = Bytes.set_uint16_ne (buf t p) (off p) (v land 0xffff)

let get_i32 t p = Bytes.get_int32_ne (buf t p) (off p)

let set_i32 t p v = Bytes.set_int32_ne (buf t p) (off p) v

let get_i64 t p = Bytes.get_int64_ne (buf t p) (off p)

let set_i64 t p v = Bytes.set_int64_ne (buf t p) (off p) v

let get_f64 t p = Int64.float_of_bits (Bytes.get_int64_ne (buf t p) (off p))

let set_f64 t p v = Bytes.set_int64_ne (buf t p) (off p) (Int64.bits_of_float v)

let blit t ~src ~dst ~len =
  Bytes.blit (buf t src) (off src) (buf t dst) (off dst) len

let fill_zero t p len = Bytes.fill (buf t p) (off p) len '\000'

let chunk_of t p = (buf t p, off p)

exception Stale_allocator

exception
  Scratch_limit_exceeded of {
    limit_bytes : int;
    requested_bytes : int;
    resident_bytes : int;
  }

(* guarded-by declarations: the race detector cross-checks every
   instrumented access below against these (see lib/race) *)
let () =
  Aeq_race.declare "arena.chunk_table" (Aeq_race.Lock "arena.lock");
  Aeq_race.declare "arena.leases" (Aeq_race.Lock "arena.lock");
  Aeq_race.declare "arena.limits" Aeq_race.Atomic;
  Aeq_race.declare "arena.lease.slots" (Aeq_race.Lock "arena.lock");
  Aeq_race.declare "arena.counters" Aeq_race.Atomic;
  Aeq_race.declare "arena.generation" Aeq_race.Atomic;
  Aeq_race.declare "arena.lease.meters" Aeq_race.Atomic;
  Aeq_race.declare "arena.allocator" Aeq_race.Single_writer

(* The chunk table is two-level: slots below the permanent base hold
   loaded tables (the catalog's lease, never released), slots above are
   scratch leased to one query at a time. A released slot drops its
   bytes and its index goes to [free_slots] for the next lease, so the
   table never grows past (base + peak-concurrent-scratch) — the
   replacement for the old serialize-then-truncate reclamation that
   forced single-writer execution. *)
type t = {
  chunk_size : int;
  chunks : Bytes.t array; (* fixed-capacity table; slots filled under lock *)
  mutable n_chunks : int; (* slot high-water mark *)
  mutable free_slots : int list; (* released scratch slots, recyclable *)
  mutable n_live : int; (* slots currently holding memory *)
  resident : int Atomic.t;
      (* running total of live chunk bytes; read lock-free on the
         scheduler's per-submission overload check *)
  total_used : int Atomic.t;
  generation : int Atomic.t; (* bumped by [reset]; staleness fences *)
  lock : Aeq_race.Lock.t;
  mutable base : lease option; (* permanent lease for loaded tables *)
  mutable live_leases : int; (* outstanding scratch leases; guarded by lock *)
  scratch : int Atomic.t;
      (* bytes resident in scratch chunks only (excludes the base
         lease's loaded tables) — what the scratch cap meters *)
  scratch_limit : int option Atomic.t;
      (* cap on [scratch]; None = unbounded. Atomic, not lock-guarded:
         the scheduler's overload probe and the backpressure loop both
         read it off-lock (a plain mutable field here was a real race) *)
  block_seconds : float Atomic.t; (* backpressure deadline before giving up *)
  waits : int Atomic.t; (* chunk grabs that had to wait at the cap *)
  rejects : int Atomic.t; (* Scratch_limit_exceeded raised *)
  bp_waiter : Aeq_util.Waiter.t;
      (* backpressure sleeper; [do_release]/[reset] wake it so a grab
         waiting at the scratch cap reacts to a release immediately
         instead of polling with [Unix.sleepf] *)
  table_loc : Aeq_race.location;
  leases_loc : Aeq_race.location;
  limits_loc : Aeq_race.location;
}

and lease = {
  ls_arena : t;
  ls_gen : int; (* arena generation at lease time *)
  ls_scratch : bool; (* false only for the permanent base lease *)
  mutable ls_slots : int list; (* owned chunk slots; guarded by arena lock *)
  ls_used : int Atomic.t; (* bytes handed out — the per-query budget meter *)
  ls_stale : bool Atomic.t; (* set on release/reset; allocators fail fast *)
  ls_loc : Aeq_race.location;
}

type ptr = int

type allocator = {
  lease : lease;
  mutable chunk : int; (* index of the chunk we bump into *)
  mutable cursor : int;
  mutable limit : int;
}

let null = 0

let offset_bits = 32

let offset_mask = (1 lsl offset_bits) - 1

let encode chunk off = (chunk lsl offset_bits) lor off

let max_chunks = 1 lsl 16

let make_lease ~scratch t =
  {
    ls_arena = t;
    ls_gen = Atomic.get t.generation;
    ls_scratch = scratch;
    ls_slots = [];
    ls_used = Atomic.make 0;
    ls_stale = Atomic.make false;
    ls_loc = Aeq_race.locate "arena.lease.slots";
  }

let create ?(chunk_size = 1 lsl 20) () =
  let chunks = Array.make max_chunks Bytes.empty in
  chunks.(0) <- Bytes.make chunk_size '\000';
  let t =
    {
      chunk_size;
      chunks;
      n_chunks = 1;
      free_slots = [];
      n_live = 1;
      resident = Atomic.make chunk_size;
      total_used = Atomic.make 0;
      generation = Atomic.make 0;
      lock = Aeq_race.Lock.create "arena.lock";
      base = None;
      live_leases = 0;
      scratch = Atomic.make 0;
      scratch_limit = Atomic.make None;
      block_seconds = Atomic.make 0.05;
      waits = Atomic.make 0;
      rejects = Atomic.make 0;
      bp_waiter = Aeq_util.Waiter.create ();
      table_loc = Aeq_race.locate "arena.chunk_table";
      leases_loc = Aeq_race.locate "arena.leases";
      limits_loc = Aeq_race.locate "arena.limits";
    }
  in
  t.base <- Some (make_lease ~scratch:false t);
  t

let base_lease t =
  match t.base with Some l -> l | None -> assert false

let lease t =
  (* fault fires before the lease exists, so an injected failure here
     cannot leak a claim *)
  Aeq_util.Failpoints.hit "arena.lease";
  Aeq_util.Yieldpoint.yield "arena.lease";
  let l = make_lease ~scratch:true t in
  Aeq_race.Lock.with_ t.lock (fun () ->
      Aeq_race.write ~site:"arena.lease" t.leases_loc;
      t.live_leases <- t.live_leases + 1);
  l

let lease_used l = Atomic.get l.ls_used

let lease_stale l = Atomic.get l.ls_stale

(* Take a slot for [lease] and install a chunk of at least [size]
   bytes; returns the slot index. Slots are recycled indices — the
   memory itself is always a fresh zeroed [Bytes.t], so a recycled
   chunk carries no bytes from the query that released it. A pointer
   into a chunk can only reach another thread through a synchronising
   structure (the pool or a locked hash table), which orders the slot
   write before any access. *)
let lease_chunk ls size =
  (* simulated allocation failure: growing the arena is where a real
     OOM would strike *)
  Aeq_util.Failpoints.hit "arena.alloc";
  Aeq_util.Yieldpoint.yield "arena.alloc";
  let t = ls.ls_arena in
  (* Backpressure contract: a scratch grab that would push scratch
     residency past the cap waits (polling, off-lock) for concurrent
     queries to release, up to [block_seconds]; past the deadline it
     raises [Scratch_limit_exceeded], which the driver surfaces as a
     structured [Memory_budget_exceeded] after releasing the lease.
     The admission check and the slot take happen under one lock
     acquisition, so the cap is never overshot by racing grabs. *)
  let deadline = ref None in
  let rec acquire () =
    let outcome =
      Aeq_race.Lock.with_ t.lock (fun () ->
          (* staleness re-checked under the SAME lock that [release]
             stales under: a grab that raced a concurrent release used
             to slip a fresh slot onto the already-reclaimed lease — a
             permanent leak, reachable whenever a peer worker's failure
             released the lease while this worker sat between [alloc]'s
             entry check and here *)
          if Atomic.get ls.ls_stale || ls.ls_gen <> Atomic.get t.generation
          then `Stale
          else begin
            let fits =
              (not ls.ls_scratch)
              ||
              match Atomic.get t.scratch_limit with
              | None -> true
              | Some limit -> Atomic.get t.scratch + size <= limit
            in
            if fits then begin
              Aeq_race.write ~site:"arena.lease_chunk" t.table_loc;
              Aeq_race.write ~site:"arena.lease_chunk" ls.ls_loc;
              let slot =
                match t.free_slots with
                | s :: rest ->
                  t.free_slots <- rest;
                  s
                | [] ->
                  let n = t.n_chunks in
                  if n >= max_chunks then
                    invalid_arg "Arena: chunk table exhausted";
                  t.n_chunks <- n + 1;
                  n
              in
              t.chunks.(slot) <- Bytes.make size '\000';
              t.n_live <- t.n_live + 1;
              if ls.ls_scratch then
                ignore (Atomic.fetch_and_add t.scratch size);
              ls.ls_slots <- slot :: ls.ls_slots;
              `Got slot
            end
            else `Full (Option.value (Atomic.get t.scratch_limit) ~default:0)
          end)
    in
    match outcome with
    | `Stale -> raise Stale_allocator
    | `Got slot ->
      ignore (Atomic.fetch_and_add t.resident size);
      slot
    | `Full limit ->
      (* released mid-wait (peer worker failed, driver reclaimed):
         allocating further would bump-write into recycled memory *)
      if Atomic.get ls.ls_stale then raise Stale_allocator;
      let now = Aeq_util.Clock.now () in
      let dl =
        match !deadline with
        | Some d -> d
        | None ->
          ignore (Atomic.fetch_and_add t.waits 1);
          let d = now +. Atomic.get t.block_seconds in
          deadline := Some d;
          d
      in
      if now >= dl then begin
        ignore (Atomic.fetch_and_add t.rejects 1);
        raise
          (Scratch_limit_exceeded
             {
               limit_bytes = limit;
               requested_bytes = size;
               resident_bytes = Atomic.get t.scratch;
             })
      end;
      (* under simulation the wait must go through the scheduler, not a
         real sleep the simulator cannot preempt. Outside it, sleep on
         the arena's waiter: a concurrent release wakes us at once, and
         the cap bounds the wait if the wake is lost to a disposed pipe *)
      if Aeq_util.Yieldpoint.enabled () then
        Aeq_util.Yieldpoint.yield "arena.backpressure"
      else
        ignore
          (Aeq_util.Waiter.wait t.bp_waiter
             (Float.min 0.002 (Float.max 1e-4 (dl -. now))));
      acquire ()
  in
  acquire ()

(* Return every owned chunk to the free pool. Idempotent; a no-op if
   the arena was [reset] since the lease was taken (the slots are
   already recycled). Must not run while the lease's allocators are
   still in use — the driver releases only after the pool barrier. *)
let do_release ls =
  let t = ls.ls_arena in
  Aeq_race.Lock.with_ t.lock (fun () ->
      if (not (Atomic.get ls.ls_stale)) && ls.ls_gen = Atomic.get t.generation
      then begin
        Aeq_race.write ~site:"arena.release" t.table_loc;
        Aeq_race.write ~site:"arena.release" t.leases_loc;
        Aeq_race.write ~site:"arena.release" ls.ls_loc;
        Atomic.set ls.ls_stale true;
        if ls.ls_scratch then t.live_leases <- t.live_leases - 1;
        List.iter
          (fun s ->
            let sz = Bytes.length t.chunks.(s) in
            ignore (Atomic.fetch_and_add t.resident (-sz));
            if ls.ls_scratch then ignore (Atomic.fetch_and_add t.scratch (-sz));
            t.chunks.(s) <- Bytes.empty;
            t.n_live <- t.n_live - 1;
            t.free_slots <- s :: t.free_slots)
          ls.ls_slots;
        ls.ls_slots <- []
      end
      else Atomic.set ls.ls_stale true);
  (* after dropping the lock: anyone parked at the scratch cap can
     re-examine it now *)
  Aeq_util.Waiter.wake t.bp_waiter

let release ls =
  Aeq_util.Yieldpoint.yield "arena.release";
  (* the failpoint fires, but reclamation is unconditional: an injected
     fault at release must exercise caller error paths, never leak the
     lease's chunks *)
  Fun.protect
    ~finally:(fun () -> do_release ls)
    (fun () -> Aeq_util.Failpoints.hit "arena.release")

let lease_allocator ls =
  (* Fresh allocators start with no chunk; the first alloc grabs one.
     Offset 0 of chunk 0 is never handed out (null pointer). *)
  { lease = ls; chunk = -1; cursor = 0; limit = 0 }

let allocator t = lease_allocator (base_lease t)

let align_up v align = (v + align - 1) land lnot (align - 1)

let alloc a ?(align = 8) n =
  assert (n >= 0 && align > 0 && align land (align - 1) = 0);
  let ls = a.lease in
  let t = ls.ls_arena in
  (* fail fast on an allocator whose backing chunks were reclaimed —
     bump-allocating into a freed (Bytes.empty) slot would corrupt
     whichever query holds it now *)
  if Atomic.get ls.ls_stale || ls.ls_gen <> Atomic.get t.generation then
    raise Stale_allocator;
  let start = align_up a.cursor align in
  if a.chunk >= 0 && start + n <= a.limit then begin
    a.cursor <- start + n;
    ignore (Atomic.fetch_and_add t.total_used n);
    ignore (Atomic.fetch_and_add ls.ls_used n);
    encode a.chunk start
  end
  else begin
    let size = Stdlib.max t.chunk_size (n + align + 16) in
    let idx = lease_chunk ls size in
    (* Never return offset 0: pointer 0 must stay null even though
       chunk indices > 0 would disambiguate; being strict is cheap. *)
    let start = align_up 8 align in
    a.chunk <- idx;
    a.cursor <- start + n;
    a.limit <- size;
    ignore (Atomic.fetch_and_add t.total_used n);
    ignore (Atomic.fetch_and_add ls.ls_used n);
    encode idx start
  end

let used t = Atomic.get t.total_used

(* memory actually held right now — maintained as a running total so
   the scheduler's overload check is one atomic load, not an O(chunks)
   scan under the arena mutex *)
let resident_bytes t = Atomic.get t.resident

let live_chunks t =
  Aeq_race.Lock.with_ t.lock (fun () ->
      Aeq_race.read ~site:"arena.live_chunks" t.table_loc;
      t.n_live)

let scratch_resident_bytes t = Atomic.get t.scratch

let scratch_limit t = Atomic.get t.scratch_limit

let set_scratch_limit t ?block_seconds limit =
  (match limit with
  | Some l when l < 0 -> invalid_arg "Arena.set_scratch_limit: negative limit"
  | _ -> ());
  (match block_seconds with
  | Some s when s >= 0.0 -> Atomic.set t.block_seconds s
  | Some _ -> invalid_arg "Arena.set_scratch_limit: negative block_seconds"
  | None -> ());
  Atomic.set t.scratch_limit limit;
  (* a raised cap unblocks parked grabs *)
  Aeq_util.Waiter.wake t.bp_waiter

let live_leases t =
  Aeq_race.Lock.with_ t.lock (fun () ->
      Aeq_race.read ~site:"arena.live_leases" t.leases_loc;
      t.live_leases)

let backpressure_waits t = Atomic.get t.waits

let limit_rejections t = Atomic.get t.rejects

(* lock-free: one atomic load + a field read, cheap enough for the
   scheduler's per-submission overload probe *)
let scratch_under_pressure t =
  match Atomic.get t.scratch_limit with
  | None -> false
  | Some limit ->
    limit = 0 || float_of_int (Atomic.get t.scratch) > 0.9 *. float_of_int limit

(* Cross-check every counter the lock-free paths maintain against a
   ground-truth scan of the chunk table. Empty list = coherent. The
   simulator runs this at yield points, so any interleaving that lets
   the counters drift from the table is caught at the first quiescent
   instant after the drift, with the schedule in hand. *)
let check t =
  Aeq_race.Lock.with_ t.lock @@ fun () ->
  Aeq_race.read ~site:"arena.check" t.table_loc;
  Aeq_race.read ~site:"arena.check" t.leases_loc;
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let live = ref 0 and bytes = ref 0 in
  for i = 0 to t.n_chunks - 1 do
    if Bytes.length t.chunks.(i) > 0 then begin
      incr live;
      bytes := !bytes + Bytes.length t.chunks.(i)
    end
  done;
  if !live <> t.n_live then
    err "n_live=%d but %d slots hold memory" t.n_live !live;
  if !bytes <> Atomic.get t.resident then
    err "resident=%d but chunk table holds %d bytes" (Atomic.get t.resident)
      !bytes;
  let free = List.sort_uniq compare t.free_slots in
  if List.length free <> List.length t.free_slots then
    err "free_slots has duplicates";
  List.iter
    (fun s ->
      if s < 0 || s >= t.n_chunks then err "free slot %d out of range" s
      else if Bytes.length t.chunks.(s) > 0 then
        err "free slot %d still holds %d bytes" s (Bytes.length t.chunks.(s)))
    t.free_slots;
  if t.n_live + List.length t.free_slots <> t.n_chunks then
    err "n_live=%d + free=%d <> n_chunks=%d" t.n_live
      (List.length t.free_slots) t.n_chunks;
  let scratch = Atomic.get t.scratch in
  if scratch < 0 then err "scratch resident negative: %d" scratch;
  if scratch > Atomic.get t.resident then
    err "scratch=%d exceeds resident=%d" scratch (Atomic.get t.resident);
  (match Atomic.get t.scratch_limit with
  | Some limit when scratch > limit ->
    err "scratch=%d exceeds limit=%d" scratch limit
  | _ -> ());
  if t.live_leases < 0 then err "live_leases negative: %d" t.live_leases;
  List.rev !errs

let reset t =
  Aeq_race.Lock.with_ t.lock (fun () ->
      (* Refuse to pull memory out from under a running query: a reset
         with scratch leases outstanding used to silently invalidate
         them and recycle their slots, turning a maintenance call into
         a data race with whatever those queries wrote next. *)
      if t.live_leases > 0 then begin
        let n = t.live_leases in
        invalid_arg
          (Printf.sprintf "Arena.reset: %d live scratch lease%s outstanding" n
             (if n = 1 then "" else "s"))
      end;
      Aeq_race.write ~site:"arena.reset" t.table_loc;
      Aeq_race.read ~site:"arena.reset" t.leases_loc;
      (* invalidate every outstanding lease and allocator (base included) *)
      ignore (Atomic.fetch_and_add t.generation 1);
      (match t.base with Some b -> Atomic.set b.ls_stale true | None -> ());
      for i = 1 to t.n_chunks - 1 do
        t.chunks.(i) <- Bytes.empty
      done;
      Bytes.fill t.chunks.(0) 0 (Bytes.length t.chunks.(0)) '\000';
      t.n_chunks <- 1;
      t.free_slots <- [];
      t.n_live <- 1;
      Atomic.set t.resident (Bytes.length t.chunks.(0));
      Atomic.set t.total_used 0;
      Atomic.set t.scratch 0;
      t.base <- Some (make_lease ~scratch:false t));
  Aeq_util.Waiter.wake t.bp_waiter

let[@inline] buf t p = Array.unsafe_get t.chunks (p lsr offset_bits)

let[@inline] off p = p land offset_mask

let get_i8 t p = Char.code (Bytes.unsafe_get (buf t p) (off p))

let set_i8 t p v = Bytes.unsafe_set (buf t p) (off p) (Char.unsafe_chr (v land 0xff))

let get_i16 t p = Bytes.get_uint16_ne (buf t p) (off p)

let set_i16 t p v = Bytes.set_uint16_ne (buf t p) (off p) (v land 0xffff)

let get_i32 t p = Bytes.get_int32_ne (buf t p) (off p)

let set_i32 t p v = Bytes.set_int32_ne (buf t p) (off p) v

let get_i64 t p = Bytes.get_int64_ne (buf t p) (off p)

let set_i64 t p v = Bytes.set_int64_ne (buf t p) (off p) v

let get_f64 t p = Int64.float_of_bits (Bytes.get_int64_ne (buf t p) (off p))

let set_f64 t p v = Bytes.set_int64_ne (buf t p) (off p) (Int64.bits_of_float v)

let blit t ~src ~dst ~len =
  Bytes.blit (buf t src) (off src) (buf t dst) (off dst) len

let fill_zero t p len = Bytes.fill (buf t p) (off p) len '\000'

let chunk_of t p = (buf t p, off p)

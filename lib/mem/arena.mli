(** Chunked byte arena backing all query-visible memory.

    The paper's generated machine code operates on raw x86 memory. We
    reproduce that model with a process of chunks of bytes: IR-level
    pointers are 63-bit integers encoding [(chunk_index << 32) | byte_
    offset]. Columns, hash-table entries, aggregation slots and output
    rows all live here, so the bytecode interpreter and the compiled
    backend observe bit-identical state — the invariant that makes
    mid-pipeline mode switching sound.

    Chunks never move once allocated, which makes pointers stable under
    concurrent allocation (worker threads allocate hash-table entries
    while others read columns). Every single allocation is contiguous
    inside one chunk, so generated pointer arithmetic (GEP) never
    crosses a chunk boundary.

    Ownership is two-level. The arena's {e base lease} (what
    {!allocator} draws from) holds long-lived data: loaded tables, the
    dictionary. Each query execution takes its own scratch {!lease}
    and bump-allocates hash tables, aggregation slots and output rows
    into chunks owned by that lease; {!release} returns the chunk
    slots to a free pool when the query completes. Queries therefore
    never contend on reclamation and can run concurrently over the
    shared base chunks — the old [mark_chunks]/[truncate] scheme,
    which assumed one writer at a time, is gone. *)

type t

type ptr = int
(** Encoded pointer; [0] is the null pointer (never allocated). *)

type lease
(** A claim on a set of scratch chunks. Allocations through a lease's
    allocators are metered per-lease (the per-query memory budget) and
    the chunks are reclaimed together by {!release}. *)

type allocator

exception Stale_allocator
(** Raised by {!alloc} when the allocator's lease has been released or
    the arena [reset] — bump-allocating into a reclaimed chunk would
    corrupt whichever query owns that slot now. *)

exception
  Scratch_limit_exceeded of {
    limit_bytes : int;  (** the configured scratch cap *)
    requested_bytes : int;  (** size of the chunk grab that gave up *)
    resident_bytes : int;  (** scratch bytes resident when it gave up *)
  }
(** Raised by {!alloc} through a scratch lease when the grab would
    push scratch residency past {!set_scratch_limit}'s cap and the
    backpressure deadline expired without enough concurrent releases.
    The driver maps this to [Query_error.Memory_budget_exceeded]. *)

val null : ptr

val create : ?chunk_size:int -> unit -> t
(** Fresh arena. [chunk_size] (default 1 MiB) is the granularity at
    which allocators take memory; larger allocations get dedicated
    chunks. *)

val allocator : t -> allocator
(** A new bump allocator on the arena's permanent base lease — for
    long-lived data (catalog columns, dictionary). Not thread-safe;
    create one per worker. *)

val lease : t -> lease
(** Take a fresh scratch lease. Thread-safe. *)

val lease_allocator : lease -> allocator
(** A new bump allocator drawing chunks from [lease]. Not thread-safe;
    create one per worker. *)

val release : lease -> unit
(** Return the lease's chunk slots to the arena's free pool and drop
    their memory. Idempotent, thread-safe. Every allocator of the
    lease becomes stale. The caller must ensure no worker still reads
    or writes the lease's chunks (the driver releases only after all
    pipeline workers have finished). *)

val lease_used : lease -> int
(** Bytes handed out through this lease's allocators — the per-query
    memory budget meter. Thread-safe. *)

val lease_stale : lease -> bool

val alloc : allocator -> ?align:int -> int -> ptr
(** [alloc a n] reserves [n] zeroed bytes aligned to [align]
    (default 8). @raise Stale_allocator on a released lease. *)

val used : t -> int
(** Total bytes handed to allocators since creation / [reset]
    (monotone; [release] does not wind it back). Thread-safe. *)

val resident_bytes : t -> int
(** Bytes currently held in live chunks. Unlike {!used} this falls
    back when [release] reclaims query scratch, so it is the gauge the
    scheduler's overload detector (arena high-water threshold) reads.
    Maintained as an atomic running total: one load, no lock, no chunk
    scan. *)

val live_chunks : t -> int
(** Number of slots currently holding memory. Equal before/after a
    query whose lease was released — the leak check used by tests. *)

val live_leases : t -> int
(** Outstanding scratch leases (taken, not yet released). *)

val reset : t -> unit
(** Drop all chunks except the first and invalidate every outstanding
    lease and allocator (base included). Only call between queries.
    @raise Invalid_argument if scratch leases are still live — a
    reset under a running query would recycle its slots into a data
    race. Release (or fail) every query first. *)

(** {1 Scratch cap and backpressure}

    A global bound on scratch residency — the sum of chunk bytes held
    by query leases, excluding loaded tables. A chunk grab that would
    exceed the cap blocks (polling) up to [block_seconds] waiting for
    concurrent queries to release; past the deadline it raises
    {!Scratch_limit_exceeded}. The cap is enforced inside the grab's
    critical section, so it is never overshot, whatever the
    interleaving. *)

val set_scratch_limit : t -> ?block_seconds:float -> int option -> unit
(** [set_scratch_limit t (Some bytes)] arms the cap; [None] (the
    default) disarms it. [block_seconds] (default 0.05) is how long a
    grab waits at the cap before giving up. Thread-safe; affects
    subsequent grabs only. *)

val scratch_limit : t -> int option

val scratch_resident_bytes : t -> int
(** Scratch bytes currently resident (the quantity the cap meters).
    One atomic load. *)

val backpressure_waits : t -> int
(** Chunk grabs that had to wait at the cap (counted once per grab). *)

val limit_rejections : t -> int
(** Grabs that gave up with {!Scratch_limit_exceeded}. *)

val scratch_under_pressure : t -> bool
(** True when a cap is armed and scratch residency is above 90% of
    it — the scheduler's shedding probe. Lock-free. *)

val check : t -> string list
(** Recount the chunk table and cross-check every counter the
    lock-free paths maintain ([n_live], [resident], [scratch],
    free-slot validity, cap adherence). Empty = coherent. The
    deterministic simulator runs this at yield points; tests run it
    after fault injection. Takes the arena lock. *)

(** {1 Typed access}

    Native endianness. No bounds checks beyond [Bytes]'s; generated
    code is trusted the same way machine code is. *)

val get_i8 : t -> ptr -> int

val set_i8 : t -> ptr -> int -> unit

val get_i16 : t -> ptr -> int

val set_i16 : t -> ptr -> int -> unit

val get_i32 : t -> ptr -> int32

val set_i32 : t -> ptr -> int32 -> unit

val get_i64 : t -> ptr -> int64

val set_i64 : t -> ptr -> int64 -> unit

val get_f64 : t -> ptr -> float

val set_f64 : t -> ptr -> float -> unit

val blit : t -> src:ptr -> dst:ptr -> len:int -> unit
(** Copy [len] bytes between (possibly different) chunks. *)

val fill_zero : t -> ptr -> int -> unit

val chunk_of : t -> ptr -> Bytes.t * int
(** [chunk_of t p] is the backing buffer and the byte offset of [p]
    within it. Lets hot loops cache the buffer for a column they
    stream over. *)

(** Chunked byte arena backing all query-visible memory.

    The paper's generated machine code operates on raw x86 memory. We
    reproduce that model with a process of chunks of bytes: IR-level
    pointers are 63-bit integers encoding [(chunk_index << 32) | byte_
    offset]. Columns, hash-table entries, aggregation slots and output
    rows all live here, so the bytecode interpreter and the compiled
    backend observe bit-identical state — the invariant that makes
    mid-pipeline mode switching sound.

    Chunks never move once allocated, which makes pointers stable under
    concurrent allocation (worker threads allocate hash-table entries
    while others read columns). Every single allocation is contiguous
    inside one chunk, so generated pointer arithmetic (GEP) never
    crosses a chunk boundary.

    An {!Arena.t} is the shared chunk store; cheap single-threaded
    {!allocator}s bump-allocate inside chunks they own and take new
    chunks from the store under a mutex. *)

type t

type ptr = int
(** Encoded pointer; [0] is the null pointer (never allocated). *)

type allocator

val null : ptr

val create : ?chunk_size:int -> unit -> t
(** Fresh arena. [chunk_size] (default 1 MiB) is the granularity at
    which allocators take memory; larger allocations get dedicated
    chunks. *)

val allocator : t -> allocator
(** A new bump allocator. Not thread-safe; create one per worker. *)

val alloc : allocator -> ?align:int -> int -> ptr
(** [alloc a n] reserves [n] zeroed bytes aligned to [align]
    (default 8). *)

val used : t -> int
(** Total bytes handed to allocators since creation / [reset]
    (monotone during a query — the delta across an execution is what
    the per-query memory budget meters; [truncate] does not wind it
    back). Thread-safe. *)

val resident_bytes : t -> int
(** Bytes currently held in live chunks. Unlike {!used} this falls
    back when [truncate] releases query scratch, so it is the gauge
    the scheduler's overload detector (arena high-water threshold)
    reads. Thread-safe. *)

val reset : t -> unit
(** Drop all chunks except the first and invalidate outstanding
    allocators. Only call between queries. *)

val mark_chunks : t -> int
(** Current chunk count; pass to [truncate] to release everything
    allocated afterwards. *)

val truncate : t -> int -> unit
(** [truncate t mark] drops every chunk added after [mark_chunks]
    returned [mark]. Earlier allocations (the loaded database) stay
    valid; allocators created after the mark must be discarded. Used
    to reclaim per-query scratch between queries. *)

(** {1 Typed access}

    Native endianness. No bounds checks beyond [Bytes]'s; generated
    code is trusted the same way machine code is. *)

val get_i8 : t -> ptr -> int

val set_i8 : t -> ptr -> int -> unit

val get_i16 : t -> ptr -> int

val set_i16 : t -> ptr -> int -> unit

val get_i32 : t -> ptr -> int32

val set_i32 : t -> ptr -> int32 -> unit

val get_i64 : t -> ptr -> int64

val set_i64 : t -> ptr -> int64 -> unit

val get_f64 : t -> ptr -> float

val set_f64 : t -> ptr -> float -> unit

val blit : t -> src:ptr -> dst:ptr -> len:int -> unit
(** Copy [len] bytes between (possibly different) chunks. *)

val fill_zero : t -> ptr -> int -> unit

val chunk_of : t -> ptr -> Bytes.t * int
(** [chunk_of t p] is the backing buffer and the byte offset of [p]
    within it. Lets hot loops cache the buffer for a column they
    stream over. *)

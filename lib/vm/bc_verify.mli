(** Bytecode verification.

    Three layers, from cheapest to deepest:

    - {!check_program}: structural checks over the whole code array
      (jump targets in bounds — instruction boundaries are free in
      this encoding since code is an insn array —, register offsets
      aligned and inside the register file, no write to a
      constant-pool slot, abort-message and runtime-call indices
      valid, call arity matching the function table, no fall-through
      past the end), then a forward abstract interpretation of per-pc
      register type-states: a read no write reaches on some path is
      reported (the register file is reused across morsels, so such a
      read sees the previous morsel's stale data), as is an integer
      opcode consuming a definite float or vice versa.

    - {!check_allocation}: the liveness cross-check of the paper's
      Figs. 9–12 allocator. Recomputes {e precise} SSA liveness on the
      {!Aeq_ir.Dataflow} framework (same φ-as-parallel-copies model as
      [Regalloc]) and reports any definition that writes a slot while
      a different value sharing it is still live (or is read/defined
      at the same position) — i.e. any case the conservative
      per-value [first_block, last_block] interval should have kept
      apart.

    - {!check_translation}: both of the above against a function and
      its translated program, recomputing the allocation
      deterministically.

    [Translate.translate] runs these automatically when
    [Aeq_util.Verify_mode] is enabled. *)

type diagnostic = { pc : int option; message : string }

exception Rejected of string

val diagnostic_to_string : string -> diagnostic -> string
(** [diagnostic_to_string name d] renders [d] for program [name]. *)

val report : string -> diagnostic list -> string

val check_program : Bytecode.t -> diagnostic list
(** Structural checks and the abstract interpretation. The abstract
    interpretation only runs when the structural checks pass (its
    transfer functions index by the fields the structural pass
    validates). *)

val check_allocation : Func.t -> slot_offset:int array -> diagnostic list
(** [slot_offset] maps value id to register-file byte offset ([-1] =
    no slot), as produced by [Regalloc.allocate]. *)

val check_translation :
  ?strategy:Regalloc.strategy -> Func.t -> Bytecode.t -> diagnostic list
(** [check_translation f p] = [check_program p] plus
    [check_allocation] with the allocation recomputed from [f] (the
    allocator is deterministic, so this is the allocation [p] was
    built with — pass [strategy] if the translation used one other
    than [Loop_aware]). *)

val verify : ?name:string -> Bytecode.t -> unit
(** @raise Rejected with the full report if {!check_program} finds
    anything. *)

(* Bytecode verification: structural checks, an abstract interpretation
   of the register file, and a liveness cross-check on the register
   allocation.

   The structural pass and the abstract interpreter work on the
   [Bytecode.t] alone and certify what the interpreter and the closure
   backend assume: jump targets in bounds (instruction boundaries are
   free in this encoding — code is an insn array, not a byte stream),
   register offsets aligned and inside the register file, constants
   never overwritten, runtime-call arities matching the function table,
   and — per pc, as a forward dataflow over slot type-states — no read
   of a register no path has written (the register file is reused
   across morsels, so a read-before-write sees stale data from the
   previous morsel) and no integer opcode consuming a definite float or
   vice versa.

   [check_allocation] is the cross-check against the paper's
   linear-time liveness (Figs. 9–12): it recomputes *precise* SSA
   liveness on the dataflow framework (in the same φ-as-copies model
   Regalloc uses) and verifies that no definition writes a slot while a
   different value sharing that slot is still live — i.e. that the
   conservative [first_block, last_block] intervals really did cover
   every simultaneous lifetime before the allocator let two values
   share a slot. *)

type diagnostic = { pc : int option; message : string }

exception Rejected of string

let diagnostic_to_string name d =
  match d.pc with
  | Some pc -> Printf.sprintf "%s: pc %d: %s" name pc d.message
  | None -> Printf.sprintf "%s: %s" name d.message

let report name ds = String.concat "\n" (List.map (diagnostic_to_string name) ds)

(* ---- opcode shape table ---------------------------------------------- *)

(* What an instruction does to the register file, derived from the
   interpreter's semantics. [ireads]/[freads] are reads that must be
   integer/float (or unknown); [areads] only require initialization.
   [write] is [Some (reg, state)] with the abstract state stored. *)
type shape = {
  ireads : int list;
  freads : int list;
  areads : int list;
  write : (int * int) option;
  jumps : int list;
  falls : bool;
}

(* abstract slot states *)
let uninit = 0

let tint = 1

let tfloat = 2

let tany = 3

let join a b = if a = b then a else if a = uninit || b = uninit then uninit else tany

let state_name = function
  | 0 -> "uninitialized"
  | 1 -> "integer"
  | 2 -> "float"
  | _ -> "unknown"

let no_shape =
  { ireads = []; freads = []; areads = []; write = None; jumps = []; falls = true }

(* [state_of] reads the abstract in-state, for the copy semantics of
   Mov and Select. *)
let shape_of (i : Bytecode.insn) ~state_of : shape =
  let int3 = { no_shape with ireads = [ i.b; i.c ]; write = Some (i.a, tint) } in
  let float3 = { no_shape with freads = [ i.b; i.c ]; write = Some (i.a, tfloat) } in
  let fcmp = { no_shape with freads = [ i.b; i.c ]; write = Some (i.a, tint) } in
  let icast = { no_shape with ireads = [ i.b ]; write = Some (i.a, tint) } in
  let callv arity =
    let fields = [ i.a; i.b; i.c; i.d; i.e ] in
    { no_shape with areads = List.filteri (fun k _ -> k < arity) fields }
  in
  let callr arity =
    let fields = [ i.b; i.c; i.d; i.e ] in
    {
      no_shape with
      areads = List.filteri (fun k _ -> k < arity) fields;
      write = Some (i.a, tany);
    }
  in
  match i.op with
  | Opcode.Mov -> { no_shape with areads = [ i.b ]; write = Some (i.a, state_of i.b) }
  | Add_i8 | Add_i16 | Add_i32 | Add_i64 | Sub_i8 | Sub_i16 | Sub_i32 | Sub_i64 | Mul_i8
  | Mul_i16 | Mul_i32 | Mul_i64 | Div_i8 | Div_i16 | Div_i32 | Div_i64 | Rem_i8 | Rem_i16
  | Rem_i32 | Rem_i64 | And64 | Or64 | Xor64 | Shl_i8 | Shl_i16 | Shl_i32 | Shl_i64
  | LShr_i8 | LShr_i16 | LShr_i32 | LShr_i64 | AShr64 | AddChk_i32 | AddChk_i64
  | SubChk_i32 | SubChk_i64 | MulChk_i32 | MulChk_i64 | OvfAdd_i32 | OvfAdd_i64
  | OvfSub_i32 | OvfSub_i64 | OvfMul_i32 | OvfMul_i64 | CmpEq | CmpNe | CmpSlt | CmpSle
  | CmpSgt | CmpSge | CmpUlt_i8 | CmpUlt_i16 | CmpUlt_i32 | CmpUlt_i64 | CmpUle_i8
  | CmpUle_i16 | CmpUle_i32 | CmpUle_i64 | CmpUgt_i8 | CmpUgt_i16 | CmpUgt_i32
  | CmpUgt_i64 | CmpUge_i8 | CmpUge_i16 | CmpUge_i32 | CmpUge_i64 ->
    int3
  | FAdd | FSub | FMul | FDiv -> float3
  | FCmpEq | FCmpNe | FCmpLt | FCmpLe | FCmpGt | FCmpGe -> fcmp
  | SelectOp ->
    {
      no_shape with
      ireads = [ i.b ];
      areads = [ i.c; i.d ];
      write = Some (i.a, join (state_of i.c) (state_of i.d));
    }
  | Zext8 | Zext16 | Zext32 | Trunc1 | Trunc8 | Trunc16 | Trunc32 -> icast
  | SiToFp -> { no_shape with ireads = [ i.b ]; write = Some (i.a, tfloat) }
  | FpToSi -> { no_shape with freads = [ i.b ]; write = Some (i.a, tint) }
  | Load8 | Load16 | Load32 -> { no_shape with ireads = [ i.b ]; write = Some (i.a, tint) }
  | Load64 -> { no_shape with ireads = [ i.b ]; write = Some (i.a, tany) }
  | Store8 | Store16 | Store32 | Store64 -> { no_shape with areads = [ i.a ]; ireads = [ i.b ] }
  | Gep -> { no_shape with ireads = [ i.b; i.c ]; write = Some (i.a, tint) }
  | GepConst -> { no_shape with ireads = [ i.b ]; write = Some (i.a, tint) }
  | LoadIdx8 | LoadIdx16 | LoadIdx32 ->
    { no_shape with ireads = [ i.b; i.c ]; write = Some (i.a, tint) }
  | LoadIdx64 -> { no_shape with ireads = [ i.b; i.c ]; write = Some (i.a, tany) }
  | StoreIdx8 | StoreIdx16 | StoreIdx32 | StoreIdx64 ->
    { no_shape with areads = [ i.a ]; ireads = [ i.b; i.c ] }
  | Jmp -> { no_shape with jumps = [ i.a ]; falls = false }
  | CondJmp -> { no_shape with ireads = [ i.a ]; jumps = [ i.b; i.c ]; falls = false }
  | JmpEq | JmpNe | JmpSlt | JmpSle | JmpSgt | JmpSge ->
    { no_shape with ireads = [ i.a; i.b ]; jumps = [ i.c; i.d ]; falls = false }
  | RetVal -> { no_shape with areads = [ i.a ]; falls = false }
  | RetVoid -> { no_shape with falls = false }
  | AbortOp -> { no_shape with falls = false }
  | CallV0 -> callv 0
  | CallV1 -> callv 1
  | CallV2 -> callv 2
  | CallV3 -> callv 3
  | CallV4 -> callv 4
  | CallV5 -> callv 5
  | CallR0 -> callr 0
  | CallR1 -> callr 1
  | CallR2 -> callr 2
  | CallR3 -> callr 3
  | CallR4 -> callr 4

let call_arity (op : Opcode.t) =
  match op with
  | CallV0 | CallR0 -> Some 0
  | CallV1 | CallR1 -> Some 1
  | CallV2 | CallR2 -> Some 2
  | CallV3 | CallR3 -> Some 3
  | CallV4 | CallR4 -> Some 4
  | CallV5 -> Some 5
  | _ -> None

(* ---- structural + abstract interpretation ---------------------------- *)

let check_program (p : Bytecode.t) : diagnostic list =
  let diags = ref [] in
  let emit ?pc fmt =
    Format.kasprintf (fun message -> diags := { pc; message } :: !diags) fmt
  in
  let n_code = Array.length p.Bytecode.code in
  let n_slots = p.Bytecode.n_reg_bytes / 8 in
  let n_consts = Array.length p.Bytecode.const_pool in
  if n_code = 0 then begin
    emit "program has no instructions";
    List.rev !diags
  end
  else begin
    if p.Bytecode.n_reg_bytes mod 8 <> 0 then
      emit "register file size %d is not a multiple of 8" p.Bytecode.n_reg_bytes;
    if n_slots < n_consts + Array.length p.Bytecode.param_offsets then
      emit "register file (%d slots) cannot hold %d constants + %d parameters" n_slots
        n_consts
        (Array.length p.Bytecode.param_offsets);
    Array.iteri
      (fun k off ->
        if off < 0 || off mod 8 <> 0 || off + 8 > p.Bytecode.n_reg_bytes then
          emit "parameter %d offset %d invalid for a %d-byte register file" k off
            p.Bytecode.n_reg_bytes)
      p.Bytecode.param_offsets;
    (* per-insn structural checks over the whole code array, reachable
       or not *)
    let zero_state _ = tany in
    Array.iteri
      (fun pc (i : Bytecode.insn) ->
        let sh = shape_of i ~state_of:zero_state in
        let check_reg what off =
          if off < 0 || off mod 8 <> 0 || off + 8 > p.Bytecode.n_reg_bytes then
            emit ~pc "%s register offset %d out of bounds (register file is %d bytes)" what
              off p.Bytecode.n_reg_bytes
        in
        List.iter (check_reg "read") (sh.ireads @ sh.freads @ sh.areads);
        (match sh.write with
        | Some (off, _) ->
          check_reg "write" off;
          if off >= 0 && off mod 8 = 0 && off / 8 < n_consts then
            emit ~pc "write to constant-pool slot %d" (off / 8)
        | None -> ());
        List.iter
          (fun t ->
            if t < 0 || t >= n_code then
              emit ~pc "jump target %d out of bounds (code length %d)" t n_code)
          sh.jumps;
        if sh.falls && pc + 1 >= n_code then emit ~pc "control falls off the end of the code";
        (match i.op with
        | Opcode.AbortOp ->
          if i.a < 0 || i.a >= Array.length p.Bytecode.messages then
            emit ~pc "abort message index %d out of bounds" i.a
        | _ -> ());
        match call_arity i.op with
        | Some arity -> (
          let idx = Int64.to_int i.lit in
          if idx < 0 || idx >= Array.length p.Bytecode.rt_table then
            emit ~pc "runtime-call index %d out of bounds (table has %d entries)" idx
              (Array.length p.Bytecode.rt_table)
          else
            let actual = Rt_fn.arity p.Bytecode.rt_table.(idx) in
            if actual <> arity then
              emit ~pc "%s expects a %d-ary runtime function but table entry %d is %d-ary"
                (Opcode.to_string i.op) arity idx actual)
        | None -> ())
      p.Bytecode.code;
    (* abstract interpretation of slot type-states — only meaningful if
       the structure held up *)
    if !diags = [] then begin
      let param_slots = Array.map (fun off -> off / 8) p.Bytecode.param_offsets in
      let initial =
        Array.init n_slots (fun s ->
            if s < n_consts || Array.exists (Int.equal s) param_slots then tany else uninit)
      in
      let states = Array.make n_code [||] in
      let reached = Array.make n_code false in
      let queue = Queue.create () in
      let join_into pc st =
        if not reached.(pc) then begin
          reached.(pc) <- true;
          states.(pc) <- Array.copy st;
          Queue.add pc queue
        end
        else begin
          let cur = states.(pc) in
          let changed = ref false in
          Array.iteri
            (fun s v ->
              let j = join cur.(s) v in
              if j <> cur.(s) then begin
                cur.(s) <- j;
                changed := true
              end)
            st;
          if !changed then Queue.add pc queue
        end
      in
      join_into 0 initial;
      while not (Queue.is_empty queue) do
        let pc = Queue.take queue in
        let st = states.(pc) in
        let i = p.Bytecode.code.(pc) in
        let sh = shape_of i ~state_of:(fun off -> st.(off / 8)) in
        let out = Array.copy st in
        (match sh.write with Some (off, v) -> out.(off / 8) <- v | None -> ());
        List.iter (fun t -> join_into t out) sh.jumps;
        if sh.falls then join_into (pc + 1) out
      done;
      (* one reporting pass over the fixpoint *)
      Array.iteri
        (fun pc (i : Bytecode.insn) ->
          if reached.(pc) then begin
            let st = states.(pc) in
            let sh = shape_of i ~state_of:(fun off -> st.(off / 8)) in
            let read kind bad off =
              let v = st.(off / 8) in
              if v = uninit then
                emit ~pc "%s reads register %d before any write reaches it"
                  (Opcode.to_string i.op) off
              else if v = bad then
                emit ~pc "%s (%s operand) reads a definite %s in register %d"
                  (Opcode.to_string i.op) kind (state_name v) off
            in
            List.iter (read "integer" tfloat) sh.ireads;
            List.iter (read "float" tint) sh.freads;
            List.iter (read "any" (-1)) sh.areads
          end)
        p.Bytecode.code
    end;
    List.rev !diags
  end

(* ---- liveness cross-check on the allocation --------------------------- *)

let check_allocation (f : Func.t) ~slot_offset : diagnostic list =
  let diags = ref [] in
  let emit fmt =
    Format.kasprintf (fun message -> diags := { pc = None; message } :: !diags) fmt
  in
  let slot v = if v >= 0 && v < Array.length slot_offset then slot_offset.(v) else -1 in
  let live = (Analysis.liveness f).Analysis.live_out in
  let vreg_uses acc = function Instr.Vreg r -> acc := r :: !acc | _ -> () in
  Array.iter
    (fun (blk : Block.t) ->
      let lv = Dataflow.Bitset.copy live.(blk.Block.id) in
      (* A definition may not write a slot that any *other* value
         needs at or after this point: values still live past the
         position, values read at the same position (the instruction
         reads before it writes — but two different values sharing the
         slot means one of them holds the wrong bits), and co-located
         definitions (parallel φ copies). *)
      let check_point where defs uses =
        let defs = List.sort_uniq compare defs in
        List.iter
          (fun d ->
            let sd = slot d in
            if sd >= 0 then begin
              Dataflow.Bitset.iter
                (fun v ->
                  if v <> d && slot v = sd then
                    emit
                      "%s, block %d: write of %%%d clobbers %%%d (still live), shared \
                       slot offset %d"
                      where blk.Block.id d v sd)
                lv;
              List.iter
                (fun u ->
                  if u <> d && (not (Dataflow.Bitset.mem lv u)) && slot u = sd then
                    emit
                      "%s, block %d: write of %%%d clobbers %%%d (read at the same \
                       position), shared slot offset %d"
                      where blk.Block.id d u sd)
                uses;
              List.iter
                (fun d' ->
                  if d' > d && slot d' = sd then
                    emit
                      "%s, block %d: %%%d and %%%d are defined at the same position \
                       but share slot offset %d"
                      where blk.Block.id d d' sd)
                defs
            end)
          defs;
        List.iter (Dataflow.Bitset.remove lv) defs;
        List.iter (Dataflow.Bitset.add lv) uses
      in
      (* terminator position: φ copies of the outgoing edges + the
         branch condition / return operand *)
      let defs = ref [] and uses = ref [] in
      Analysis.edge_copies f blk ~def:(fun d -> defs := d :: !defs) ~use:(vreg_uses uses);
      Analysis.term_uses blk ~use:(vreg_uses uses);
      check_point "terminator" !defs !uses;
      let instrs = blk.Block.instrs in
      for i = Array.length instrs - 1 downto 0 do
        let uses = ref [] in
        List.iter (vreg_uses uses) (Instr.operands instrs.(i));
        let defs = match Instr.dst_of instrs.(i) with Some d -> [ d ] | None -> [] in
        check_point (Printf.sprintf "instr %d" i) defs !uses
      done)
    f.Func.blocks;
  List.rev !diags

let check_translation ?(strategy = Regalloc.Loop_aware) (f : Func.t) (p : Bytecode.t) :
    diagnostic list =
  let structural = check_program p in
  let base_offset =
    8 * (Array.length p.Bytecode.const_pool + Array.length p.Bytecode.param_offsets)
  in
  let dom = Dom.compute f in
  let loops = Loops.compute f dom in
  let alloc =
    Regalloc.allocate strategy f loops ~base_offset ~param_offsets:p.Bytecode.param_offsets
  in
  structural @ check_allocation f ~slot_offset:alloc.Regalloc.slot_offset

let verify ?(name = "bytecode") p =
  match check_program p with [] -> () | ds -> raise (Rejected (report name ds))
